//! Control and status register (CSR) addresses used by the Snitch core.
//!
//! Besides the standard machine-mode CSRs, Snitch exposes the SSR enable
//! bit through a custom CSR (`ssr`, `0x7C0`): while set, reads and writes
//! of the mapped floating-point registers are redirected to the streamer.
//! Two additional simulator-visible CSRs delimit the measured region of
//! interest of a kernel without perturbing its timing.

/// Standard and custom CSR addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Csr {
    /// `mhartid` (0xF14): hardware thread id, read-only.
    MHartId,
    /// `mcycle` (0xB00): cycle counter, read-only in this model.
    MCycle,
    /// `minstret` (0xB02): retired-instruction counter, read-only.
    MInstret,
    /// `ssr` (0x7C0, custom): bit 0 enables stream-register redirection.
    Ssr,
    /// `fmode` (0x7C1, custom): reserved FPU mode bits (unused, reads zero).
    FMode,
    /// `roi` (0x7C4, custom, simulator-only): writing 1 opens the region of
    /// interest for metric collection, writing 0 closes it. Timing-neutral.
    Roi,
    /// `barrier` (0x7C5, custom): reading stalls the core until all cluster
    /// cores have read it (hardware barrier). Reads zero on a single core.
    Barrier,
    /// Any other address, kept for decode round-trips.
    Other(u16),
}

impl Csr {
    /// Returns the 12-bit CSR address.
    #[must_use]
    pub fn addr(self) -> u16 {
        match self {
            Csr::MHartId => 0xF14,
            Csr::MCycle => 0xB00,
            Csr::MInstret => 0xB02,
            Csr::Ssr => 0x7C0,
            Csr::FMode => 0x7C1,
            Csr::Roi => 0x7C4,
            Csr::Barrier => 0x7C5,
            Csr::Other(a) => a & 0xFFF,
        }
    }

    /// Builds a CSR from a 12-bit address, mapping known addresses onto
    /// their named variants.
    #[must_use]
    pub fn from_addr(addr: u16) -> Self {
        match addr & 0xFFF {
            0xF14 => Csr::MHartId,
            0xB00 => Csr::MCycle,
            0xB02 => Csr::MInstret,
            0x7C0 => Csr::Ssr,
            0x7C1 => Csr::FMode,
            0x7C4 => Csr::Roi,
            0x7C5 => Csr::Barrier,
            other => Csr::Other(other),
        }
    }
}

impl std::fmt::Display for Csr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Csr::MHartId => write!(f, "mhartid"),
            Csr::MCycle => write!(f, "mcycle"),
            Csr::MInstret => write!(f, "minstret"),
            Csr::Ssr => write!(f, "ssr"),
            Csr::FMode => write!(f, "fmode"),
            Csr::Roi => write!(f, "roi"),
            Csr::Barrier => write!(f, "barrier"),
            Csr::Other(a) => write!(f, "csr{a:#05x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_named() {
        for csr in
            [Csr::MHartId, Csr::MCycle, Csr::MInstret, Csr::Ssr, Csr::FMode, Csr::Roi, Csr::Barrier]
        {
            assert_eq!(Csr::from_addr(csr.addr()), csr);
        }
    }

    #[test]
    fn round_trip_other() {
        assert_eq!(Csr::from_addr(0x123), Csr::Other(0x123));
        assert_eq!(Csr::Other(0x123).addr(), 0x123);
    }

    #[test]
    fn display_names() {
        assert_eq!(Csr::Ssr.to_string(), "ssr");
        assert_eq!(Csr::Other(0x42).to_string(), "csr0x042");
    }
}
