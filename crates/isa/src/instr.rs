//! The typed instruction set executed by the simulator.
//!
//! This covers the RV32I + M + D subset that the paper's kernels use,
//! plus the three Snitch extensions the paper builds on:
//!
//! * **Xssr** — streamer configuration reads/writes (`scfgri`/`scfgwi`)
//!   and the `ssr` CSR enabling register redirection,
//! * **Xfrep** — floating-point repetition hardware loops with register
//!   staggering (`frep.o`/`frep.i`),
//! * **Xdma** — the cluster DMA front end (`dmsrc`, `dmdst`, `dmstr`,
//!   `dmrep`, `dmcpyi`, `dmstati`).
//!
//! Every instruction has a 32-bit binary encoding (see [`crate::encode`])
//! so that programs round-trip through machine code; the simulator executes
//! the typed form directly for speed.

use crate::csr::Csr;
use crate::reg::{FpReg, IntReg};
use std::fmt;

/// Branch comparison condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Integer load width and sign treatment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoadWidth {
    /// `lb`: sign-extended byte.
    B,
    /// `lh`: sign-extended halfword.
    H,
    /// `lw`: word.
    W,
    /// `lbu`: zero-extended byte.
    Bu,
    /// `lhu`: zero-extended halfword.
    Hu,
}

impl LoadWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W => 4,
        }
    }
}

/// Integer store width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StoreWidth {
    B,
    H,
    W,
}

impl StoreWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
        }
    }
}

/// Register-immediate ALU operation (`OP-IMM`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
}

/// Register-register ALU operation (`OP`), including the M extension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// Two-operand double-precision FPU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOp2 {
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    FsgnjD,
    FsgnjnD,
    FsgnjxD,
    FminD,
    FmaxD,
}

/// Fused three-operand double-precision FPU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOp3 {
    /// `rd = rs1 * rs2 + rs3`
    FmaddD,
    /// `rd = rs1 * rs2 - rs3`
    FmsubD,
    /// `rd = -(rs1 * rs2) + rs3`
    FnmsubD,
    /// `rd = -(rs1 * rs2) - rs3`
    FnmaddD,
}

/// Double-precision comparison writing an integer register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpCmp {
    FeqD,
    FltD,
    FleD,
}

/// CSR access operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CsrOp {
    /// Read/write.
    Rw,
    /// Read and set bits.
    Rs,
    /// Read and clear bits.
    Rc,
}

/// Which FREP loop flavour: `frep.o` repeats the whole body sequentially,
/// `frep.i` repeats each instruction of the body in place, and `frep.s`
/// repeats the body until the streams it reads raise their terminate
/// flag (data-dependent trip count, no `max_rpt` operand).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrepKind {
    Outer,
    Inner,
    /// Stream-terminated outer loop: the sequencer replays the body while
    /// any stream source of the body is still live, and retires the loop
    /// once every such stream has raised `done` and drained. The
    /// `max_rpt` operand is ignored (assemblers pass `zero`).
    Stream,
}

/// Register-stagger configuration of an FREP loop.
///
/// On iteration `i`, operands selected by `mask` have their register index
/// incremented by `i mod (count + 1)`. Mask bits: 0 → `rd`, 1 → `rs1`,
/// 2 → `rs2`, 3 → `rs3` (the encoding the paper's Listing 1 uses,
/// e.g. `0b1001` staggers the accumulator read and write of an `fmadd.d`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Stagger {
    /// Number of *additional* registers to rotate through (0 = no stagger).
    pub count: u8,
    /// Operand-select mask (bits rd/rs1/rs2/rs3).
    pub mask: u8,
}

impl Stagger {
    /// No staggering.
    pub const NONE: Self = Self { count: 0, mask: 0 };

    /// Staggers the accumulator of an `fmadd`-style op (`rd` and `rs3`)
    /// over `n_regs` registers.
    ///
    /// # Panics
    /// Panics if `n_regs` is zero or exceeds 16.
    #[must_use]
    pub fn accumulator(n_regs: u8) -> Self {
        assert!((1..=16).contains(&n_regs), "stagger depth {n_regs} out of range");
        Self { count: n_regs - 1, mask: 0b1001 }
    }

    /// Register offset applied on iteration `i` to operands selected by the
    /// mask.
    #[must_use]
    pub fn offset_at(&self, i: u32) -> u8 {
        if self.count == 0 {
            0
        } else {
            (i % (u32::from(self.count) + 1)) as u8
        }
    }
}

/// One machine instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    // ---- RV32I ----
    /// `lui rd, imm20` — load upper immediate (`imm` is the final 32-bit
    /// value with low 12 bits zero).
    Lui { rd: IntReg, imm: u32 },
    /// `auipc rd, imm20`.
    Auipc { rd: IntReg, imm: u32 },
    /// `jal rd, offset` (byte offset relative to this instruction).
    Jal { rd: IntReg, offset: i32 },
    /// `jalr rd, offset(rs1)`.
    Jalr { rd: IntReg, rs1: IntReg, offset: i32 },
    /// Conditional branch, byte offset relative to this instruction.
    Branch { cond: BranchCond, rs1: IntReg, rs2: IntReg, offset: i32 },
    /// Integer load.
    Load { width: LoadWidth, rd: IntReg, rs1: IntReg, offset: i32 },
    /// Integer store.
    Store { width: StoreWidth, rs2: IntReg, rs1: IntReg, offset: i32 },
    /// Register-immediate ALU operation.
    OpImm { op: AluImmOp, rd: IntReg, rs1: IntReg, imm: i32 },
    /// Register-register ALU operation.
    Op { op: AluOp, rd: IntReg, rs1: IntReg, rs2: IntReg },
    /// CSR access with register source.
    CsrR { op: CsrOp, rd: IntReg, rs1: IntReg, csr: Csr },
    /// CSR access with 5-bit immediate source.
    CsrI { op: CsrOp, rd: IntReg, uimm: u8, csr: Csr },
    /// Environment call; the simulator treats `ecall` as a no-op trap hook.
    Ecall,
    /// `fence` — memory ordering; a timing no-op in this model.
    Fence,

    // ---- RV32D (subset) ----
    /// `fld rd, offset(rs1)`.
    Fld { rd: FpReg, rs1: IntReg, offset: i32 },
    /// `fsd rs2, offset(rs1)`.
    Fsd { rs2: FpReg, rs1: IntReg, offset: i32 },
    /// Two-operand FP op.
    FpuOp2 { op: FpOp2, rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// Fused multiply-add family.
    FpuOp3 { op: FpOp3, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg },
    /// FP comparison into an integer register.
    FpuCmp { op: FpCmp, rd: IntReg, rs1: FpReg, rs2: FpReg },
    /// `fcvt.d.w rd, rs1` — signed 32-bit integer to double.
    FcvtDW { rd: FpReg, rs1: IntReg },
    /// `fcvt.w.d rd, rs1` — double to signed 32-bit integer (RTZ).
    FcvtWD { rd: IntReg, rs1: FpReg },
    /// `fmv.d rd, rs1` (canonical `fsgnj.d rd, rs1, rs1`); kept distinct so
    /// the FPU can treat it as a cheap move and so streams pop exactly once.
    FmvD { rd: FpReg, rs1: FpReg },

    // ---- Xssr ----
    /// `scfgwi rs1, addr` — write streamer configuration word `addr`.
    ///
    /// The 12-bit address is `reg << 5 | lane` as in Snitch's memory-mapped
    /// layout (see `issr-core`).
    Scfgwi { rs1: IntReg, addr: u16 },
    /// `scfgri rd, addr` — read streamer configuration word `addr`.
    Scfgri { rd: IntReg, addr: u16 },

    // ---- Xfrep ----
    /// Floating-point repetition loop over the next `n_insns` FP
    /// instructions, executed `rs1 + 1` times (`frep.o`/`frep.i`) or
    /// until stream termination (`frep.s`, `rs1` ignored).
    Frep { kind: FrepKind, max_rpt: IntReg, n_insns: u8, stagger: Stagger },

    // ---- Xdma ----
    /// `dmsrc rs1, rs2` — set DMA source address (low word in `rs1`).
    DmSrc { rs1: IntReg, rs2: IntReg },
    /// `dmdst rs1, rs2` — set DMA destination address (low word in `rs1`).
    DmDst { rs1: IntReg, rs2: IntReg },
    /// `dmstr rs1, rs2` — set 2D source (`rs1`) and destination (`rs2`)
    /// strides in bytes.
    DmStr { rs1: IntReg, rs2: IntReg },
    /// `dmrep rs1` — set 2D repetition count.
    DmRep { rs1: IntReg },
    /// `dmcpyi rd, rs1, cfg` — start a transfer of `rs1` bytes per row;
    /// `cfg` bit 0 enables 2D mode. Returns the transfer id in `rd`.
    DmCpyI { rd: IntReg, rs1: IntReg, cfg: u8 },
    /// `dmstati rd, which` — read DMA status. `which = 0`: number of
    /// completed transfers (monotonic); `which = 1`: 1 while busy.
    DmStatI { rd: IntReg, which: u8 },

    // ---- Simulator control (custom-2 space) ----
    /// Stops the issuing core; simulation ends when all cores halt.
    Halt,
}

impl Instr {
    /// Returns `true` if the instruction executes in the FPU subsystem
    /// (and is therefore eligible for FREP bodies and pseudo-dual-issue).
    #[must_use]
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Instr::Fld { .. }
                | Instr::Fsd { .. }
                | Instr::FpuOp2 { .. }
                | Instr::FpuOp3 { .. }
                | Instr::FpuCmp { .. }
                | Instr::FcvtDW { .. }
                | Instr::FcvtWD { .. }
                | Instr::FmvD { .. }
        )
    }

    /// Returns `true` for control-flow instructions (branches and jumps).
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch { cond, rs1, rs2, offset } => {
                let name = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, {offset}")
            }
            Instr::Load { width, rd, rs1, offset } => {
                let name = match width {
                    LoadWidth::B => "lb",
                    LoadWidth::H => "lh",
                    LoadWidth::W => "lw",
                    LoadWidth::Bu => "lbu",
                    LoadWidth::Hu => "lhu",
                };
                write!(f, "{name} {rd}, {offset}({rs1})")
            }
            Instr::Store { width, rs2, rs1, offset } => {
                let name = match width {
                    StoreWidth::B => "sb",
                    StoreWidth::H => "sh",
                    StoreWidth::W => "sw",
                };
                write!(f, "{name} {rs2}, {offset}({rs1})")
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let name = match op {
                    AluImmOp::Addi => "addi",
                    AluImmOp::Slti => "slti",
                    AluImmOp::Sltiu => "sltiu",
                    AluImmOp::Xori => "xori",
                    AluImmOp::Ori => "ori",
                    AluImmOp::Andi => "andi",
                    AluImmOp::Slli => "slli",
                    AluImmOp::Srli => "srli",
                    AluImmOp::Srai => "srai",
                };
                write!(f, "{name} {rd}, {rs1}, {imm}")
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                    AluOp::Mul => "mul",
                    AluOp::Mulh => "mulh",
                    AluOp::Mulhsu => "mulhsu",
                    AluOp::Mulhu => "mulhu",
                    AluOp::Div => "div",
                    AluOp::Divu => "divu",
                    AluOp::Rem => "rem",
                    AluOp::Remu => "remu",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Instr::CsrR { op, rd, rs1, csr } => {
                let name = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                };
                write!(f, "{name} {rd}, {csr}, {rs1}")
            }
            Instr::CsrI { op, rd, uimm, csr } => {
                let name = match op {
                    CsrOp::Rw => "csrrwi",
                    CsrOp::Rs => "csrrsi",
                    CsrOp::Rc => "csrrci",
                };
                write!(f, "{name} {rd}, {csr}, {uimm}")
            }
            Instr::Ecall => write!(f, "ecall"),
            Instr::Fence => write!(f, "fence"),
            Instr::Fld { rd, rs1, offset } => write!(f, "fld {rd}, {offset}({rs1})"),
            Instr::Fsd { rs2, rs1, offset } => write!(f, "fsd {rs2}, {offset}({rs1})"),
            Instr::FpuOp2 { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpOp2::FaddD => "fadd.d",
                    FpOp2::FsubD => "fsub.d",
                    FpOp2::FmulD => "fmul.d",
                    FpOp2::FdivD => "fdiv.d",
                    FpOp2::FsgnjD => "fsgnj.d",
                    FpOp2::FsgnjnD => "fsgnjn.d",
                    FpOp2::FsgnjxD => "fsgnjx.d",
                    FpOp2::FminD => "fmin.d",
                    FpOp2::FmaxD => "fmax.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Instr::FpuOp3 { op, rd, rs1, rs2, rs3 } => {
                let name = match op {
                    FpOp3::FmaddD => "fmadd.d",
                    FpOp3::FmsubD => "fmsub.d",
                    FpOp3::FnmsubD => "fnmsub.d",
                    FpOp3::FnmaddD => "fnmadd.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Instr::FpuCmp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpCmp::FeqD => "feq.d",
                    FpCmp::FltD => "flt.d",
                    FpCmp::FleD => "fle.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Instr::FcvtDW { rd, rs1 } => write!(f, "fcvt.d.w {rd}, {rs1}"),
            Instr::FcvtWD { rd, rs1 } => write!(f, "fcvt.w.d {rd}, {rs1}"),
            Instr::FmvD { rd, rs1 } => write!(f, "fmv.d {rd}, {rs1}"),
            Instr::Scfgwi { rs1, addr } => write!(f, "scfgwi {rs1}, {addr:#x}"),
            Instr::Scfgri { rd, addr } => write!(f, "scfgri {rd}, {addr:#x}"),
            Instr::Frep { kind, max_rpt, n_insns, stagger } => {
                let name = match kind {
                    FrepKind::Outer => "frep.o",
                    FrepKind::Inner => "frep.i",
                    FrepKind::Stream => "frep.s",
                };
                write!(f, "{name} {max_rpt}, {n_insns}, {}, {:#06b}", stagger.count, stagger.mask)
            }
            Instr::DmSrc { rs1, rs2 } => write!(f, "dmsrc {rs1}, {rs2}"),
            Instr::DmDst { rs1, rs2 } => write!(f, "dmdst {rs1}, {rs2}"),
            Instr::DmStr { rs1, rs2 } => write!(f, "dmstr {rs1}, {rs2}"),
            Instr::DmRep { rs1 } => write!(f, "dmrep {rs1}"),
            Instr::DmCpyI { rd, rs1, cfg } => write!(f, "dmcpyi {rd}, {rs1}, {cfg}"),
            Instr::DmStatI { rd, which } => write!(f, "dmstati {rd}, {which}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stagger_rotation() {
        let s = Stagger::accumulator(4);
        assert_eq!(s.count, 3);
        assert_eq!(s.mask, 0b1001);
        let offsets: Vec<u8> = (0..9).map(|i| s.offset_at(i)).collect();
        assert_eq!(offsets, [0, 1, 2, 3, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn stagger_none_is_identity() {
        assert_eq!(Stagger::NONE.offset_at(17), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stagger_zero_depth_panics() {
        let _ = Stagger::accumulator(0);
    }

    #[test]
    fn fp_classification() {
        let fmadd = Instr::FpuOp3 {
            op: FpOp3::FmaddD,
            rd: FpReg::FT2,
            rs1: FpReg::FT0,
            rs2: FpReg::FT1,
            rs3: FpReg::FT2,
        };
        assert!(fmadd.is_fp());
        assert!(!fmadd.is_control_flow());
        let bne =
            Instr::Branch { cond: BranchCond::Ne, rs1: IntReg::T0, rs2: IntReg::T1, offset: -4 };
        assert!(bne.is_control_flow());
        assert!(!bne.is_fp());
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Load { width: LoadWidth::W, rd: IntReg::T0, rs1: IntReg::A0, offset: 8 };
        assert_eq!(i.to_string(), "lw t0, 8(a0)");
        let f = Instr::Frep {
            kind: FrepKind::Outer,
            max_rpt: IntReg::T0,
            n_insns: 1,
            stagger: Stagger::accumulator(4),
        };
        assert_eq!(f.to_string(), "frep.o t0, 1, 3, 0b1001");
    }

    #[test]
    fn load_store_widths() {
        assert_eq!(LoadWidth::Hu.bytes(), 2);
        assert_eq!(LoadWidth::W.bytes(), 4);
        assert_eq!(StoreWidth::B.bytes(), 1);
    }
}
