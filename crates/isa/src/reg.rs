//! Architectural register newtypes.
//!
//! The Snitch core implements the RV32 integer register file (`x0`–`x31`)
//! and, in its FPU subsystem, the RV64-double register file (`f0`–`f31`).
//! Newtypes keep integer and floating-point register operands statically
//! distinct (C-NEWTYPE).

use std::fmt;

/// An integer (`x`) register index.
///
/// # Examples
/// ```
/// use issr_isa::reg::IntReg;
/// assert_eq!(IntReg::A0.index(), 10);
/// assert_eq!(IntReg::new(5), IntReg::T0);
/// assert_eq!(IntReg::T0.to_string(), "t0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct IntReg(u8);

/// A floating-point (`f`) register index.
///
/// # Examples
/// ```
/// use issr_isa::reg::FpReg;
/// assert_eq!(FpReg::FT0.index(), 0);
/// assert_eq!(FpReg::FT2.offset(3).to_string(), "ft5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FpReg(u8);

impl IntReg {
    /// Creates a register from its index.
    ///
    /// # Panics
    /// Panics if `index > 31`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "integer register index {index} out of range");
        Self(index)
    }

    /// Returns the register index (0–31).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` for `x0`, which always reads zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub const ZERO: Self = Self(0);
    pub const RA: Self = Self(1);
    pub const SP: Self = Self(2);
    pub const GP: Self = Self(3);
    pub const TP: Self = Self(4);
    pub const T0: Self = Self(5);
    pub const T1: Self = Self(6);
    pub const T2: Self = Self(7);
    pub const S0: Self = Self(8);
    pub const S1: Self = Self(9);
    pub const A0: Self = Self(10);
    pub const A1: Self = Self(11);
    pub const A2: Self = Self(12);
    pub const A3: Self = Self(13);
    pub const A4: Self = Self(14);
    pub const A5: Self = Self(15);
    pub const A6: Self = Self(16);
    pub const A7: Self = Self(17);
    pub const S2: Self = Self(18);
    pub const S3: Self = Self(19);
    pub const S4: Self = Self(20);
    pub const S5: Self = Self(21);
    pub const S6: Self = Self(22);
    pub const S7: Self = Self(23);
    pub const S8: Self = Self(24);
    pub const S9: Self = Self(25);
    pub const S10: Self = Self(26);
    pub const S11: Self = Self(27);
    pub const T3: Self = Self(28);
    pub const T4: Self = Self(29);
    pub const T5: Self = Self(30);
    pub const T6: Self = Self(31);
}

const INT_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(INT_NAMES[self.0 as usize])
    }
}

impl From<IntReg> for u8 {
    fn from(reg: IntReg) -> Self {
        reg.0
    }
}

impl FpReg {
    /// Creates a register from its index.
    ///
    /// # Panics
    /// Panics if `index > 31`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "fp register index {index} out of range");
        Self(index)
    }

    /// Returns the register index (0–31).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns the register `self + n`, used to address staggered
    /// accumulator groups.
    ///
    /// # Panics
    /// Panics if the result exceeds `f31`.
    #[must_use]
    pub fn offset(self, n: u8) -> Self {
        Self::new(self.0 + n)
    }

    pub const FT0: Self = Self(0);
    pub const FT1: Self = Self(1);
    pub const FT2: Self = Self(2);
    pub const FT3: Self = Self(3);
    pub const FT4: Self = Self(4);
    pub const FT5: Self = Self(5);
    pub const FT6: Self = Self(6);
    pub const FT7: Self = Self(7);
    pub const FS0: Self = Self(8);
    pub const FS1: Self = Self(9);
    pub const FA0: Self = Self(10);
    pub const FA1: Self = Self(11);
    pub const FA2: Self = Self(12);
    pub const FA3: Self = Self(13);
    pub const FA4: Self = Self(14);
    pub const FA5: Self = Self(15);
    pub const FA6: Self = Self(16);
    pub const FA7: Self = Self(17);
    pub const FS2: Self = Self(18);
    pub const FS3: Self = Self(19);
    pub const FS4: Self = Self(20);
    pub const FS5: Self = Self(21);
    pub const FS6: Self = Self(22);
    pub const FS7: Self = Self(23);
    pub const FS8: Self = Self(24);
    pub const FS9: Self = Self(25);
    pub const FS10: Self = Self(26);
    pub const FS11: Self = Self(27);
    pub const FT8: Self = Self(28);
    pub const FT9: Self = Self(29);
    pub const FT10: Self = Self(30);
    pub const FT11: Self = Self(31);
}

const FP_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(FP_NAMES[self.0 as usize])
    }
}

impl From<FpReg> for u8 {
    fn from(reg: FpReg) -> Self {
        reg.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_abi_names() {
        assert_eq!(IntReg::ZERO.to_string(), "zero");
        assert_eq!(IntReg::A0.to_string(), "a0");
        assert_eq!(IntReg::T6.to_string(), "t6");
        assert_eq!(IntReg::new(8), IntReg::S0);
    }

    #[test]
    fn fp_reg_abi_names() {
        assert_eq!(FpReg::FT0.to_string(), "ft0");
        assert_eq!(FpReg::FT11.to_string(), "ft11");
        assert_eq!(FpReg::FA0.index(), 10);
    }

    #[test]
    fn fp_offset_addresses_accumulator_group() {
        assert_eq!(FpReg::FT2.offset(0), FpReg::FT2);
        assert_eq!(FpReg::FT2.offset(5), FpReg::FT7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        let _ = IntReg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_offset_past_f31_panics() {
        let _ = FpReg::FT11.offset(1);
    }

    #[test]
    fn zero_detection() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::A0.is_zero());
    }
}
