//! Decoding of 32-bit machine words back into [`Instr`].
//!
//! `decode(encode(i)) == Ok(i)` holds for every instruction the encoder
//! produces, with one canonical alias: `fsgnj.d rd, rs, rs` decodes as
//! [`Instr::FmvD`] (the architectural move alias).

use crate::csr::Csr;
use crate::encode::*;
use crate::instr::*;
use crate::reg::{FpReg, IntReg};

/// Error returned when a word is not a recognized instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unrecognized instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1F) as u8
}
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1F) as u8
}
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1F) as u8
}
fn rs3(w: u32) -> u8 {
    ((w >> 27) & 0x1F) as u8
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    (w >> 25) & 0x7F
}
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}
fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | (((w >> 7) & 0x1F) as i32)
}
fn imm_b(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 12
    (sign << 12)
        | ((((w >> 7) & 0x1) as i32) << 11)
        | ((((w >> 25) & 0x3F) as i32) << 5)
        | ((((w >> 8) & 0xF) as i32) << 1)
}
fn imm_j(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 20
    (sign << 20)
        | ((((w >> 12) & 0xFF) as i32) << 12)
        | ((((w >> 20) & 0x1) as i32) << 11)
        | ((((w >> 21) & 0x3FF) as i32) << 1)
}

fn int(r: u8) -> IntReg {
    IntReg::new(r)
}
fn fp(r: u8) -> FpReg {
    FpReg::new(r)
}

/// Decodes one machine word.
///
/// # Errors
/// Returns [`DecodeError`] if the word does not correspond to any
/// instruction in the supported subset.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word });
    let w = word;
    Ok(match w & 0x7F {
        OPC_LUI => Instr::Lui { rd: int(rd(w)), imm: w & 0xFFFF_F000 },
        OPC_AUIPC => Instr::Auipc { rd: int(rd(w)), imm: w & 0xFFFF_F000 },
        OPC_JAL => Instr::Jal { rd: int(rd(w)), offset: imm_j(w) },
        OPC_JALR => Instr::Jalr { rd: int(rd(w)), rs1: int(rs1(w)), offset: imm_i(w) },
        OPC_BRANCH => {
            let cond = match funct3(w) {
                0b000 => BranchCond::Eq,
                0b001 => BranchCond::Ne,
                0b100 => BranchCond::Lt,
                0b101 => BranchCond::Ge,
                0b110 => BranchCond::Ltu,
                0b111 => BranchCond::Geu,
                _ => return err,
            };
            Instr::Branch { cond, rs1: int(rs1(w)), rs2: int(rs2(w)), offset: imm_b(w) }
        }
        OPC_LOAD => {
            let width = match funct3(w) {
                0b000 => LoadWidth::B,
                0b001 => LoadWidth::H,
                0b010 => LoadWidth::W,
                0b100 => LoadWidth::Bu,
                0b101 => LoadWidth::Hu,
                _ => return err,
            };
            Instr::Load { width, rd: int(rd(w)), rs1: int(rs1(w)), offset: imm_i(w) }
        }
        OPC_STORE => {
            let width = match funct3(w) {
                0b000 => StoreWidth::B,
                0b001 => StoreWidth::H,
                0b010 => StoreWidth::W,
                _ => return err,
            };
            Instr::Store { width, rs2: int(rs2(w)), rs1: int(rs1(w)), offset: imm_s(w) }
        }
        OPC_OP_IMM => {
            let (op, imm) = match funct3(w) {
                0b000 => (AluImmOp::Addi, imm_i(w)),
                0b010 => (AluImmOp::Slti, imm_i(w)),
                0b011 => (AluImmOp::Sltiu, imm_i(w)),
                0b100 => (AluImmOp::Xori, imm_i(w)),
                0b110 => (AluImmOp::Ori, imm_i(w)),
                0b111 => (AluImmOp::Andi, imm_i(w)),
                0b001 => (AluImmOp::Slli, i32::from(rs2(w))),
                0b101 if funct7(w) == 0 => (AluImmOp::Srli, i32::from(rs2(w))),
                0b101 if funct7(w) == 0x20 => (AluImmOp::Srai, i32::from(rs2(w))),
                _ => return err,
            };
            Instr::OpImm { op, rd: int(rd(w)), rs1: int(rs1(w)), imm }
        }
        OPC_OP => {
            let op = match (funct3(w), funct7(w)) {
                (0b000, 0x00) => AluOp::Add,
                (0b000, 0x20) => AluOp::Sub,
                (0b001, 0x00) => AluOp::Sll,
                (0b010, 0x00) => AluOp::Slt,
                (0b011, 0x00) => AluOp::Sltu,
                (0b100, 0x00) => AluOp::Xor,
                (0b101, 0x00) => AluOp::Srl,
                (0b101, 0x20) => AluOp::Sra,
                (0b110, 0x00) => AluOp::Or,
                (0b111, 0x00) => AluOp::And,
                (0b000, 0x01) => AluOp::Mul,
                (0b001, 0x01) => AluOp::Mulh,
                (0b010, 0x01) => AluOp::Mulhsu,
                (0b011, 0x01) => AluOp::Mulhu,
                (0b100, 0x01) => AluOp::Div,
                (0b101, 0x01) => AluOp::Divu,
                (0b110, 0x01) => AluOp::Rem,
                (0b111, 0x01) => AluOp::Remu,
                _ => return err,
            };
            Instr::Op { op, rd: int(rd(w)), rs1: int(rs1(w)), rs2: int(rs2(w)) }
        }
        OPC_SYSTEM => {
            if w == OPC_SYSTEM {
                return Ok(Instr::Ecall);
            }
            let csr = Csr::from_addr(((w >> 20) & 0xFFF) as u16);
            match funct3(w) {
                0b001 => Instr::CsrR { op: CsrOp::Rw, rd: int(rd(w)), rs1: int(rs1(w)), csr },
                0b010 => Instr::CsrR { op: CsrOp::Rs, rd: int(rd(w)), rs1: int(rs1(w)), csr },
                0b011 => Instr::CsrR { op: CsrOp::Rc, rd: int(rd(w)), rs1: int(rs1(w)), csr },
                0b101 => Instr::CsrI { op: CsrOp::Rw, rd: int(rd(w)), uimm: rs1(w), csr },
                0b110 => Instr::CsrI { op: CsrOp::Rs, rd: int(rd(w)), uimm: rs1(w), csr },
                0b111 => Instr::CsrI { op: CsrOp::Rc, rd: int(rd(w)), uimm: rs1(w), csr },
                _ => return err,
            }
        }
        OPC_FENCE => Instr::Fence,
        OPC_LOAD_FP if funct3(w) == 0b011 => {
            Instr::Fld { rd: fp(rd(w)), rs1: int(rs1(w)), offset: imm_i(w) }
        }
        OPC_STORE_FP if funct3(w) == 0b011 => {
            Instr::Fsd { rs2: fp(rs2(w)), rs1: int(rs1(w)), offset: imm_s(w) }
        }
        OPC_MADD | OPC_MSUB | OPC_NMSUB | OPC_NMADD => {
            if (w >> 25) & 0x3 != 0b01 {
                return err; // only double precision supported
            }
            let op = match w & 0x7F {
                OPC_MADD => FpOp3::FmaddD,
                OPC_MSUB => FpOp3::FmsubD,
                OPC_NMSUB => FpOp3::FnmsubD,
                _ => FpOp3::FnmaddD,
            };
            Instr::FpuOp3 { op, rd: fp(rd(w)), rs1: fp(rs1(w)), rs2: fp(rs2(w)), rs3: fp(rs3(w)) }
        }
        OPC_OP_FP => match funct7(w) {
            0x01 => fp2(w, FpOp2::FaddD)?,
            0x05 => fp2(w, FpOp2::FsubD)?,
            0x09 => fp2(w, FpOp2::FmulD)?,
            0x0D => fp2(w, FpOp2::FdivD)?,
            0x11 => match funct3(w) {
                0b000 if rs1(w) == rs2(w) => Instr::FmvD { rd: fp(rd(w)), rs1: fp(rs1(w)) },
                0b000 => fp2(w, FpOp2::FsgnjD)?,
                0b001 => fp2(w, FpOp2::FsgnjnD)?,
                0b010 => fp2(w, FpOp2::FsgnjxD)?,
                _ => return err,
            },
            0x15 => match funct3(w) {
                0b000 => fp2(w, FpOp2::FminD)?,
                0b001 => fp2(w, FpOp2::FmaxD)?,
                _ => return err,
            },
            0x51 => {
                let op = match funct3(w) {
                    0b010 => FpCmp::FeqD,
                    0b001 => FpCmp::FltD,
                    0b000 => FpCmp::FleD,
                    _ => return err,
                };
                Instr::FpuCmp { op, rd: int(rd(w)), rs1: fp(rs1(w)), rs2: fp(rs2(w)) }
            }
            0x61 if rs2(w) == 0 => Instr::FcvtWD { rd: int(rd(w)), rs1: fp(rs1(w)) },
            0x69 if rs2(w) == 0 => Instr::FcvtDW { rd: fp(rd(w)), rs1: int(rs1(w)) },
            _ => return err,
        },
        OPC_CUSTOM1 => match funct3(w) {
            0b001 => Instr::Scfgri { rd: int(rd(w)), addr: (imm_i(w) as u32 & 0xFFF) as u16 },
            0b010 => Instr::Scfgwi { rs1: int(rs1(w)), addr: (imm_i(w) as u32 & 0xFFF) as u16 },
            _ => return err,
        },
        OPC_CUSTOM2 => match funct3(w) {
            0b000..=0b010 => {
                let imm = imm_i(w) as u32;
                let kind = match funct3(w) {
                    0b000 => FrepKind::Outer,
                    0b001 => FrepKind::Inner,
                    _ => FrepKind::Stream,
                };
                Instr::Frep {
                    kind,
                    max_rpt: int(rs1(w)),
                    n_insns: (imm & 0xF) as u8,
                    stagger: Stagger {
                        count: ((imm >> 4) & 0xF) as u8,
                        mask: ((imm >> 8) & 0xF) as u8,
                    },
                }
            }
            0b111 => Instr::Halt,
            _ => return err,
        },
        OPC_CUSTOM0 => match funct3(w) {
            0b000 => Instr::DmSrc { rs1: int(rs1(w)), rs2: int(rs2(w)) },
            0b001 => Instr::DmDst { rs1: int(rs1(w)), rs2: int(rs2(w)) },
            0b010 => Instr::DmStr { rs1: int(rs1(w)), rs2: int(rs2(w)) },
            0b011 => Instr::DmRep { rs1: int(rs1(w)) },
            0b100 => {
                Instr::DmCpyI { rd: int(rd(w)), rs1: int(rs1(w)), cfg: (imm_i(w) & 0xFF) as u8 }
            }
            0b101 => Instr::DmStatI { rd: int(rd(w)), which: (imm_i(w) & 0xFF) as u8 },
            _ => return err,
        },
        _ => return err,
    })
}

fn fp2(w: u32, op: FpOp2) -> Result<Instr, DecodeError> {
    Ok(Instr::FpuOp2 {
        op,
        rd: FpReg::new(rd(w)),
        rs1: FpReg::new(rs1(w)),
        rs2: FpReg::new(rs2(w)),
    })
}

/// Decodes a whole program.
///
/// # Errors
/// Returns the first [`DecodeError`] encountered.
pub fn decode_all(words: &[u32]) -> Result<Vec<Instr>, DecodeError> {
    words.iter().map(|&w| decode(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0).is_err());
    }

    #[test]
    fn fmv_alias_is_canonical() {
        let mv = Instr::FmvD { rd: FpReg::FT3, rs1: FpReg::FT4 };
        assert_eq!(decode(encode(&mv)).unwrap(), mv);
        // fsgnj.d with equal sources decodes as the move alias.
        let sgnj =
            Instr::FpuOp2 { op: FpOp2::FsgnjD, rd: FpReg::FT3, rs1: FpReg::FT4, rs2: FpReg::FT4 };
        assert_eq!(decode(encode(&sgnj)).unwrap(), Instr::FmvD { rd: FpReg::FT3, rs1: FpReg::FT4 });
    }

    #[test]
    fn negative_offsets_round_trip() {
        for offset in [-4096, -2048, -4, -2, 0, 2, 4, 2046, 4094] {
            let b = Instr::Branch {
                cond: BranchCond::Ltu,
                rs1: IntReg::A0,
                rs2: IntReg::A1,
                offset: offset.clamp(-4096, 4094) & !1,
            };
            assert_eq!(decode(encode(&b)).unwrap(), b, "offset {offset}");
        }
        for offset in [-2048, -8, 0, 8, 2047] {
            let l = Instr::Load { width: LoadWidth::W, rd: IntReg::T1, rs1: IntReg::SP, offset };
            assert_eq!(decode(encode(&l)).unwrap(), l);
            let s = Instr::Store { width: StoreWidth::H, rs2: IntReg::T1, rs1: IntReg::SP, offset };
            assert_eq!(decode(encode(&s)).unwrap(), s);
        }
    }

    #[test]
    fn extension_round_trips() {
        let cases = [
            Instr::Scfgwi { rs1: IntReg::T0, addr: 0x7A1 },
            Instr::Scfgri { rd: IntReg::A5, addr: 0x020 },
            Instr::Frep {
                kind: FrepKind::Outer,
                max_rpt: IntReg::T2,
                n_insns: 1,
                stagger: Stagger { count: 7, mask: 0b1001 },
            },
            Instr::Frep {
                kind: FrepKind::Inner,
                max_rpt: IntReg::A0,
                n_insns: 3,
                stagger: Stagger::NONE,
            },
            Instr::DmSrc { rs1: IntReg::A0, rs2: IntReg::A1 },
            Instr::DmDst { rs1: IntReg::A2, rs2: IntReg::A3 },
            Instr::DmStr { rs1: IntReg::A4, rs2: IntReg::A5 },
            Instr::DmRep { rs1: IntReg::A6 },
            Instr::DmCpyI { rd: IntReg::T0, rs1: IntReg::A0, cfg: 1 },
            Instr::DmStatI { rd: IntReg::T1, which: 0 },
            Instr::Halt,
        ];
        for i in cases {
            assert_eq!(decode(encode(&i)).unwrap(), i, "{i}");
        }
    }
}
