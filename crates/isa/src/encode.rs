//! Binary encoding of [`Instr`] into 32-bit RISC-V machine words.
//!
//! Standard instructions use their canonical RV32 encodings. The Snitch
//! extensions occupy the custom opcode spaces reserved by the RISC-V
//! specification:
//!
//! | Extension | Opcode | Space |
//! |---|---|---|
//! | Xdma | `0x0B` | custom-0 |
//! | Xssr (`scfgri`/`scfgwi`) | `0x2B` | custom-1 |
//! | Xfrep + simulator control | `0x5B` | custom-2 |
//!
//! These assignments follow the same spaces the upstream Snitch RTL uses,
//! though bit-level layouts of the extension words are this project's own
//! (documented per instruction below) and are validated by decode
//! round-trip property tests.

use crate::instr::*;
use crate::reg::{FpReg, IntReg};

pub(crate) const OPC_LUI: u32 = 0x37;
pub(crate) const OPC_AUIPC: u32 = 0x17;
pub(crate) const OPC_JAL: u32 = 0x6F;
pub(crate) const OPC_JALR: u32 = 0x67;
pub(crate) const OPC_BRANCH: u32 = 0x63;
pub(crate) const OPC_LOAD: u32 = 0x03;
pub(crate) const OPC_STORE: u32 = 0x23;
pub(crate) const OPC_OP_IMM: u32 = 0x13;
pub(crate) const OPC_OP: u32 = 0x33;
pub(crate) const OPC_SYSTEM: u32 = 0x73;
pub(crate) const OPC_FENCE: u32 = 0x0F;
pub(crate) const OPC_LOAD_FP: u32 = 0x07;
pub(crate) const OPC_STORE_FP: u32 = 0x27;
pub(crate) const OPC_MADD: u32 = 0x43;
pub(crate) const OPC_MSUB: u32 = 0x47;
pub(crate) const OPC_NMSUB: u32 = 0x4B;
pub(crate) const OPC_NMADD: u32 = 0x4F;
pub(crate) const OPC_OP_FP: u32 = 0x53;
pub(crate) const OPC_CUSTOM0: u32 = 0x0B;
pub(crate) const OPC_CUSTOM1: u32 = 0x2B;
pub(crate) const OPC_CUSTOM2: u32 = 0x5B;

fn r_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct7: u32) -> u32 {
    opcode
        | (u32::from(rd) << 7)
        | (funct3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (funct7 << 25)
}

fn i_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, imm: i32) -> u32 {
    let imm = (imm as u32) & 0xFFF;
    opcode | (u32::from(rd) << 7) | (funct3 << 12) | (u32::from(rs1) << 15) | (imm << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1F) << 7)
        | (funct3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, offset: i32) -> u32 {
    debug_assert_eq!(offset % 2, 0, "branch offsets must be even");
    let imm = offset as u32;
    opcode
        | (((imm >> 11) & 0x1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (funct3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 0x1) << 31)
}

fn u_type(opcode: u32, rd: u8, imm: u32) -> u32 {
    opcode | (u32::from(rd) << 7) | (imm & 0xFFFF_F000)
}

fn j_type(opcode: u32, rd: u8, offset: i32) -> u32 {
    debug_assert_eq!(offset % 2, 0, "jump offsets must be even");
    let imm = offset as u32;
    opcode
        | (u32::from(rd) << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 0x1) << 31)
}

fn r4_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct2: u32, rs3: u8) -> u32 {
    opcode
        | (u32::from(rd) << 7)
        | (funct3 << 12)
        | (u32::from(rs1) << 15)
        | (u32::from(rs2) << 20)
        | (funct2 << 25)
        | (u32::from(rs3) << 27)
}

fn ir(r: IntReg) -> u8 {
    r.index()
}
fn fr(r: FpReg) -> u8 {
    r.index()
}

pub(crate) fn branch_funct3(cond: BranchCond) -> u32 {
    match cond {
        BranchCond::Eq => 0b000,
        BranchCond::Ne => 0b001,
        BranchCond::Lt => 0b100,
        BranchCond::Ge => 0b101,
        BranchCond::Ltu => 0b110,
        BranchCond::Geu => 0b111,
    }
}

pub(crate) fn load_funct3(width: LoadWidth) -> u32 {
    match width {
        LoadWidth::B => 0b000,
        LoadWidth::H => 0b001,
        LoadWidth::W => 0b010,
        LoadWidth::Bu => 0b100,
        LoadWidth::Hu => 0b101,
    }
}

pub(crate) fn store_funct3(width: StoreWidth) -> u32 {
    match width {
        StoreWidth::B => 0b000,
        StoreWidth::H => 0b001,
        StoreWidth::W => 0b010,
    }
}

pub(crate) fn csr_funct3(op: CsrOp, imm: bool) -> u32 {
    let base = match op {
        CsrOp::Rw => 0b001,
        CsrOp::Rs => 0b010,
        CsrOp::Rc => 0b011,
    };
    if imm {
        base | 0b100
    } else {
        base
    }
}

/// Encodes one instruction into its 32-bit machine word.
///
/// # Examples
/// ```
/// use issr_isa::instr::{Instr, AluImmOp};
/// use issr_isa::reg::IntReg;
/// use issr_isa::encode::encode;
/// // addi t0, zero, 1  ==  0x00100293
/// let word = encode(&Instr::OpImm {
///     op: AluImmOp::Addi,
///     rd: IntReg::T0,
///     rs1: IntReg::ZERO,
///     imm: 1,
/// });
/// assert_eq!(word, 0x0010_0293);
/// ```
#[must_use]
pub fn encode(instr: &Instr) -> u32 {
    match *instr {
        Instr::Lui { rd, imm } => u_type(OPC_LUI, ir(rd), imm),
        Instr::Auipc { rd, imm } => u_type(OPC_AUIPC, ir(rd), imm),
        Instr::Jal { rd, offset } => j_type(OPC_JAL, ir(rd), offset),
        Instr::Jalr { rd, rs1, offset } => i_type(OPC_JALR, ir(rd), 0, ir(rs1), offset),
        Instr::Branch { cond, rs1, rs2, offset } => {
            b_type(OPC_BRANCH, branch_funct3(cond), ir(rs1), ir(rs2), offset)
        }
        Instr::Load { width, rd, rs1, offset } => {
            i_type(OPC_LOAD, ir(rd), load_funct3(width), ir(rs1), offset)
        }
        Instr::Store { width, rs2, rs1, offset } => {
            s_type(OPC_STORE, store_funct3(width), ir(rs1), ir(rs2), offset)
        }
        Instr::OpImm { op, rd, rs1, imm } => match op {
            AluImmOp::Addi => i_type(OPC_OP_IMM, ir(rd), 0b000, ir(rs1), imm),
            AluImmOp::Slti => i_type(OPC_OP_IMM, ir(rd), 0b010, ir(rs1), imm),
            AluImmOp::Sltiu => i_type(OPC_OP_IMM, ir(rd), 0b011, ir(rs1), imm),
            AluImmOp::Xori => i_type(OPC_OP_IMM, ir(rd), 0b100, ir(rs1), imm),
            AluImmOp::Ori => i_type(OPC_OP_IMM, ir(rd), 0b110, ir(rs1), imm),
            AluImmOp::Andi => i_type(OPC_OP_IMM, ir(rd), 0b111, ir(rs1), imm),
            AluImmOp::Slli => r_type(OPC_OP_IMM, ir(rd), 0b001, ir(rs1), (imm & 0x1F) as u8, 0),
            AluImmOp::Srli => r_type(OPC_OP_IMM, ir(rd), 0b101, ir(rs1), (imm & 0x1F) as u8, 0),
            AluImmOp::Srai => r_type(OPC_OP_IMM, ir(rd), 0b101, ir(rs1), (imm & 0x1F) as u8, 0x20),
        },
        Instr::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0b000, 0x00),
                AluOp::Sub => (0b000, 0x20),
                AluOp::Sll => (0b001, 0x00),
                AluOp::Slt => (0b010, 0x00),
                AluOp::Sltu => (0b011, 0x00),
                AluOp::Xor => (0b100, 0x00),
                AluOp::Srl => (0b101, 0x00),
                AluOp::Sra => (0b101, 0x20),
                AluOp::Or => (0b110, 0x00),
                AluOp::And => (0b111, 0x00),
                AluOp::Mul => (0b000, 0x01),
                AluOp::Mulh => (0b001, 0x01),
                AluOp::Mulhsu => (0b010, 0x01),
                AluOp::Mulhu => (0b011, 0x01),
                AluOp::Div => (0b100, 0x01),
                AluOp::Divu => (0b101, 0x01),
                AluOp::Rem => (0b110, 0x01),
                AluOp::Remu => (0b111, 0x01),
            };
            r_type(OPC_OP, ir(rd), funct3, ir(rs1), ir(rs2), funct7)
        }
        Instr::CsrR { op, rd, rs1, csr } => i_type(
            OPC_SYSTEM,
            ir(rd),
            csr_funct3(op, false),
            ir(rs1),
            i32::from(csr.addr() as i16 & 0xFFFu16 as i16),
        ),
        Instr::CsrI { op, rd, uimm, csr } => i_type(
            OPC_SYSTEM,
            ir(rd),
            csr_funct3(op, true),
            uimm & 0x1F,
            i32::from(csr.addr() as i16 & 0xFFFu16 as i16),
        ),
        Instr::Ecall => OPC_SYSTEM,
        Instr::Fence => OPC_FENCE,
        Instr::Fld { rd, rs1, offset } => i_type(OPC_LOAD_FP, fr(rd), 0b011, ir(rs1), offset),
        Instr::Fsd { rs2, rs1, offset } => s_type(OPC_STORE_FP, 0b011, ir(rs1), fr(rs2), offset),
        Instr::FpuOp2 { op, rd, rs1, rs2 } => {
            let (funct7, funct3) = match op {
                FpOp2::FaddD => (0x01, 0b111),
                FpOp2::FsubD => (0x05, 0b111),
                FpOp2::FmulD => (0x09, 0b111),
                FpOp2::FdivD => (0x0D, 0b111),
                FpOp2::FsgnjD => (0x11, 0b000),
                FpOp2::FsgnjnD => (0x11, 0b001),
                FpOp2::FsgnjxD => (0x11, 0b010),
                FpOp2::FminD => (0x15, 0b000),
                FpOp2::FmaxD => (0x15, 0b001),
            };
            r_type(OPC_OP_FP, fr(rd), funct3, fr(rs1), fr(rs2), funct7)
        }
        Instr::FpuOp3 { op, rd, rs1, rs2, rs3 } => {
            let opcode = match op {
                FpOp3::FmaddD => OPC_MADD,
                FpOp3::FmsubD => OPC_MSUB,
                FpOp3::FnmsubD => OPC_NMSUB,
                FpOp3::FnmaddD => OPC_NMADD,
            };
            // funct3 = rm (dynamic), funct2 = 01 for double precision.
            r4_type(opcode, fr(rd), 0b111, fr(rs1), fr(rs2), 0b01, fr(rs3))
        }
        Instr::FpuCmp { op, rd, rs1, rs2 } => {
            let funct3 = match op {
                FpCmp::FeqD => 0b010,
                FpCmp::FltD => 0b001,
                FpCmp::FleD => 0b000,
            };
            r_type(OPC_OP_FP, ir(rd), funct3, fr(rs1), fr(rs2), 0x51)
        }
        Instr::FcvtDW { rd, rs1 } => r_type(OPC_OP_FP, fr(rd), 0b000, ir(rs1), 0, 0x69),
        Instr::FcvtWD { rd, rs1 } => r_type(OPC_OP_FP, ir(rd), 0b001, fr(rs1), 0, 0x61),
        // fmv.d rd, rs1 is the canonical alias for fsgnj.d rd, rs1, rs1.
        Instr::FmvD { rd, rs1 } => r_type(OPC_OP_FP, fr(rd), 0b000, fr(rs1), fr(rs1), 0x11),
        // Xssr: I-type in custom-1. scfgri: funct3 = 1; scfgwi: funct3 = 2.
        Instr::Scfgri { rd, addr } => {
            i_type(OPC_CUSTOM1, ir(rd), 0b001, 0, i32::from(addr as i16 & 0xFFFu16 as i16))
        }
        Instr::Scfgwi { rs1, addr } => {
            i_type(OPC_CUSTOM1, 0, 0b010, ir(rs1), i32::from(addr as i16 & 0xFFFu16 as i16))
        }
        // Xfrep: custom-2, funct3 selects outer/inner; the 12-bit immediate
        // packs {stagger_mask[3:0], stagger_count[3:0], n_insns[3:0]}.
        Instr::Frep { kind, max_rpt, n_insns, stagger } => {
            let funct3 = match kind {
                FrepKind::Outer => 0b000,
                FrepKind::Inner => 0b001,
                FrepKind::Stream => 0b010,
            };
            let imm = (u32::from(stagger.mask & 0xF) << 8)
                | (u32::from(stagger.count & 0xF) << 4)
                | u32::from(n_insns & 0xF);
            i_type(OPC_CUSTOM2, 0, funct3, ir(max_rpt), imm as i32)
        }
        // Xdma: custom-0, funct3 selects the operation.
        Instr::DmSrc { rs1, rs2 } => r_type(OPC_CUSTOM0, 0, 0b000, ir(rs1), ir(rs2), 0),
        Instr::DmDst { rs1, rs2 } => r_type(OPC_CUSTOM0, 0, 0b001, ir(rs1), ir(rs2), 0),
        Instr::DmStr { rs1, rs2 } => r_type(OPC_CUSTOM0, 0, 0b010, ir(rs1), ir(rs2), 0),
        Instr::DmRep { rs1 } => r_type(OPC_CUSTOM0, 0, 0b011, ir(rs1), 0, 0),
        Instr::DmCpyI { rd, rs1, cfg } => {
            i_type(OPC_CUSTOM0, ir(rd), 0b100, ir(rs1), i32::from(cfg))
        }
        Instr::DmStatI { rd, which } => i_type(OPC_CUSTOM0, ir(rd), 0b101, 0, i32::from(which)),
        // Simulator control: custom-2, funct3 = 7.
        Instr::Halt => i_type(OPC_CUSTOM2, 0, 0b111, 0, 0),
    }
}

/// Encodes a whole program into machine words.
#[must_use]
pub fn encode_all(instrs: &[Instr]) -> Vec<u32> {
    instrs.iter().map(encode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn canonical_rv32i_words() {
        // Cross-checked against the RISC-V spec examples / GNU as output.
        assert_eq!(
            encode(&Instr::OpImm { op: AluImmOp::Addi, rd: IntReg::T0, rs1: IntReg::ZERO, imm: 1 }),
            0x0010_0293
        );
        assert_eq!(
            encode(&Instr::Op { op: AluOp::Add, rd: IntReg::A0, rs1: IntReg::A1, rs2: IntReg::A2 }),
            0x00C5_8533
        );
        assert_eq!(
            encode(&Instr::Load {
                width: LoadWidth::W,
                rd: IntReg::T0,
                rs1: IntReg::A0,
                offset: 8
            }),
            0x0085_2283
        );
        assert_eq!(
            encode(&Instr::Store {
                width: StoreWidth::W,
                rs2: IntReg::T0,
                rs1: IntReg::A0,
                offset: 12
            }),
            0x0055_2623
        );
        assert_eq!(encode(&Instr::Ecall), 0x0000_0073);
    }

    #[test]
    fn branch_offset_bits() {
        // bne t0, t1, -4 == 0xfe629ee3
        let w = encode(&Instr::Branch {
            cond: BranchCond::Ne,
            rs1: IntReg::T0,
            rs2: IntReg::T1,
            offset: -4,
        });
        assert_eq!(w, 0xFE62_9EE3);
    }

    #[test]
    fn jal_offset_bits() {
        // jal ra, 16 == 0x010000ef
        let w = encode(&Instr::Jal { rd: IntReg::RA, offset: 16 });
        assert_eq!(w, 0x0100_00EF);
    }

    #[test]
    fn fmadd_d_word() {
        // fmadd.d ft2, ft0, ft1, ft2, dyn == 0x121071c3? compute: rs3=2 funct2=01
        let w = encode(&Instr::FpuOp3 {
            op: FpOp3::FmaddD,
            rd: FpReg::FT2,
            rs1: FpReg::FT0,
            rs2: FpReg::FT1,
            rs3: FpReg::FT2,
        });
        assert_eq!(w & 0x7F, OPC_MADD);
        assert_eq!((w >> 7) & 0x1F, 2); // rd
        assert_eq!((w >> 15) & 0x1F, 0); // rs1
        assert_eq!((w >> 20) & 0x1F, 1); // rs2
        assert_eq!((w >> 25) & 0x3, 1); // fmt = D
        assert_eq!((w >> 27) & 0x1F, 2); // rs3
    }

    #[test]
    fn csr_words() {
        // csrrsi zero, 0x7c0, 1
        let w = encode(&Instr::CsrI { op: CsrOp::Rs, rd: IntReg::ZERO, uimm: 1, csr: Csr::Ssr });
        assert_eq!(w & 0x7F, OPC_SYSTEM);
        assert_eq!((w >> 20) & 0xFFF, 0x7C0);
        assert_eq!((w >> 12) & 0x7, 0b110);
        assert_eq!((w >> 15) & 0x1F, 1);
    }

    #[test]
    fn extension_opcodes_are_custom() {
        let frep = Instr::Frep {
            kind: FrepKind::Outer,
            max_rpt: IntReg::T0,
            n_insns: 1,
            stagger: Stagger::accumulator(4),
        };
        assert_eq!(encode(&frep) & 0x7F, OPC_CUSTOM2);
        assert_eq!(encode(&Instr::Scfgwi { rs1: IntReg::T0, addr: 0x21 }) & 0x7F, OPC_CUSTOM1);
        assert_eq!(encode(&Instr::DmRep { rs1: IntReg::A0 }) & 0x7F, OPC_CUSTOM0);
        assert_eq!(encode(&Instr::Halt) & 0x7F, OPC_CUSTOM2);
    }
}
