//! # issr-isa
//!
//! The RISC-V instruction set used by the ISSR reproduction: a typed
//! RV32I + M + D subset plus the three Snitch extensions the DATE 2021
//! paper builds on — **Xssr** (streamer configuration), **Xfrep**
//! (floating-point repetition with register staggering) and **Xdma**
//! (the cluster DMA front end).
//!
//! The crate provides:
//!
//! * [`instr::Instr`] — the typed instruction set the simulator executes,
//! * [`encode`]/[`decode`] — 32-bit binary encodings (round-trip tested),
//! * [`asm::Assembler`] — a programmatic assembler with labels, used by
//!   `issr-kernels` to generate the paper's kernels per workload.
//!
//! # Examples
//!
//! The paper's ISSR SpVV inner loop is a single `fmadd.d` under an FREP
//! hardware loop with a staggered accumulator:
//!
//! ```
//! use issr_isa::asm::Assembler;
//! use issr_isa::instr::Stagger;
//! use issr_isa::reg::{FpReg, IntReg};
//!
//! let mut a = Assembler::new();
//! a.frep_outer(IntReg::T0, 1, Stagger::accumulator(4));
//! a.fmadd_d(FpReg::FT2, FpReg::FT0, FpReg::FT1, FpReg::FT2);
//! let program = a.finish()?;
//! assert_eq!(program.len(), 2);
//! # Ok::<(), issr_isa::asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]

pub mod asm;
pub mod csr;
pub mod decode;
pub mod encode;
pub mod instr;
pub mod reg;

pub use asm::{Assembler, Label, Program};
pub use csr::Csr;
pub use decode::{decode, decode_all, DecodeError};
pub use encode::{encode, encode_all};
pub use instr::{Instr, Stagger};
pub use reg::{FpReg, IntReg};
