//! A small programmatic assembler.
//!
//! Kernels in this project are generated per workload (addresses and trip
//! counts are baked in the way a linker would), so the assembler is a
//! builder over [`Instr`] with label fix-ups rather than a text parser.
//!
//! # Examples
//! ```
//! use issr_isa::asm::Assembler;
//! use issr_isa::reg::IntReg;
//!
//! let mut a = Assembler::new();
//! a.li(IntReg::T0, 3);
//! let loop_head = a.bind_label();
//! a.addi(IntReg::T0, IntReg::T0, -1);
//! a.bnez(IntReg::T0, loop_head);
//! a.halt();
//! let program = a.finish().expect("labels resolved");
//! assert_eq!(program.len(), 4);
//! ```

use crate::csr::Csr;
use crate::instr::*;
use crate::reg::{FpReg, IntReg};
use std::collections::HashMap;
use std::fmt;

/// A branch/jump target created by [`Assembler::new_label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Error produced when finishing a program with unresolved or misused
/// labels.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A computed branch offset does not fit its encoding.
    OffsetOutOfRange { at: usize, offset: i64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            AsmError::OffsetOutOfRange { at, offset } => {
                write!(f, "branch at instruction {at} has out-of-range offset {offset}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// An assembled program: a flat instruction sequence starting at PC 0.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    instrs: Vec<Instr>,
    /// Named positions, for traces and tests.
    symbols: HashMap<String, usize>,
}

impl Program {
    /// The instructions, indexed by `pc / 4`.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction index bound to `name`, if any.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<usize> {
        self.symbols.get(name).copied()
    }

    /// Encodes the program to machine words.
    #[must_use]
    pub fn to_words(&self) -> Vec<u32> {
        crate::encode::encode_all(&self.instrs)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: HashMap<usize, &str> = HashMap::new();
        for (name, &at) in &self.symbols {
            names.insert(at, name);
        }
        for (i, instr) in self.instrs.iter().enumerate() {
            if let Some(name) = names.get(&i) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {:4}: {instr}", i * 4)?;
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug)]
enum Fixup {
    Branch,
    Jal,
}

/// The program builder. Emitter methods append one instruction each and
/// mirror assembly mnemonics; pseudo-instructions (`li`, `mv`, `nop`,
/// `bnez`, …) expand exactly like the standard assembler would.
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    bound: Vec<Option<usize>>,
    fixups: Vec<(usize, Label, Fixup)>,
    symbols: HashMap<String, usize>,
}

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (the position the next emit lands at).
    #[must_use]
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label bound twice");
        self.bound[label.0] = Some(self.instrs.len());
    }

    /// Creates a label bound to the current position.
    pub fn bind_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Records a named symbol at the current position (for traces/tests).
    pub fn symbol(&mut self, name: &str) {
        self.symbols.insert(name.to_owned(), self.instrs.len());
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    /// Appends all instructions of `other` (labels must already be
    /// resolved, i.e. `other` is a finished [`Program`]).
    pub fn extend(&mut self, other: &Program) {
        self.instrs.extend_from_slice(other.instrs());
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    /// Returns [`AsmError`] if a referenced label is unbound or an offset
    /// does not fit the encoding.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for &(at, label, kind) in &self.fixups {
            let Some(target) = self.bound[label.0] else {
                return Err(AsmError::UnboundLabel(label));
            };
            let offset = (target as i64 - at as i64) * 4;
            match (kind, &mut self.instrs[at]) {
                (Fixup::Branch, Instr::Branch { offset: o, .. }) => {
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange { at, offset });
                    }
                    *o = offset as i32;
                }
                (Fixup::Jal, Instr::Jal { offset: o, .. }) => {
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::OffsetOutOfRange { at, offset });
                    }
                    *o = offset as i32;
                }
                _ => unreachable!("fixup kind mismatch"),
            }
        }
        Ok(Program { instrs: self.instrs, symbols: self.symbols })
    }

    // ---- RV32I emitters ----

    pub fn lui(&mut self, rd: IntReg, imm: u32) {
        self.push(Instr::Lui { rd, imm: imm & 0xFFFF_F000 });
    }

    pub fn auipc(&mut self, rd: IntReg, imm: u32) {
        self.push(Instr::Auipc { rd, imm: imm & 0xFFFF_F000 });
    }

    pub fn jal(&mut self, rd: IntReg, target: Label) {
        self.fixups.push((self.instrs.len(), target, Fixup::Jal));
        self.push(Instr::Jal { rd, offset: 0 });
    }

    pub fn jalr(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Jalr { rd, rs1, offset });
    }

    fn branch(&mut self, cond: BranchCond, rs1: IntReg, rs2: IntReg, target: Label) {
        self.fixups.push((self.instrs.len(), target, Fixup::Branch));
        self.push(Instr::Branch { cond, rs1, rs2, offset: 0 });
    }

    pub fn beq(&mut self, rs1: IntReg, rs2: IntReg, target: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, target);
    }
    pub fn bne(&mut self, rs1: IntReg, rs2: IntReg, target: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, target);
    }
    pub fn blt(&mut self, rs1: IntReg, rs2: IntReg, target: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, target);
    }
    pub fn bge(&mut self, rs1: IntReg, rs2: IntReg, target: Label) {
        self.branch(BranchCond::Ge, rs1, rs2, target);
    }
    pub fn bltu(&mut self, rs1: IntReg, rs2: IntReg, target: Label) {
        self.branch(BranchCond::Ltu, rs1, rs2, target);
    }
    pub fn bgeu(&mut self, rs1: IntReg, rs2: IntReg, target: Label) {
        self.branch(BranchCond::Geu, rs1, rs2, target);
    }

    pub fn lw(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Load { width: LoadWidth::W, rd, rs1, offset });
    }
    pub fn lh(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Load { width: LoadWidth::H, rd, rs1, offset });
    }
    pub fn lhu(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Load { width: LoadWidth::Hu, rd, rs1, offset });
    }
    pub fn lb(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Load { width: LoadWidth::B, rd, rs1, offset });
    }
    pub fn lbu(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Load { width: LoadWidth::Bu, rd, rs1, offset });
    }
    pub fn sw(&mut self, rs2: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Store { width: StoreWidth::W, rs2, rs1, offset });
    }
    pub fn sh(&mut self, rs2: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Store { width: StoreWidth::H, rs2, rs1, offset });
    }
    pub fn sb(&mut self, rs2: IntReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Store { width: StoreWidth::B, rs2, rs1, offset });
    }

    pub fn addi(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Addi, rd, rs1, imm });
    }
    pub fn andi(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Andi, rd, rs1, imm });
    }
    pub fn ori(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Ori, rd, rs1, imm });
    }
    pub fn xori(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Xori, rd, rs1, imm });
    }
    pub fn slti(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Slti, rd, rs1, imm });
    }
    pub fn sltiu(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Sltiu, rd, rs1, imm });
    }
    pub fn slli(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Slli, rd, rs1, imm: shamt & 0x1F });
    }
    pub fn srli(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Srli, rd, rs1, imm: shamt & 0x1F });
    }
    pub fn srai(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.push(Instr::OpImm { op: AluImmOp::Srai, rd, rs1, imm: shamt & 0x1F });
    }

    pub fn add(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Add, rd, rs1, rs2 });
    }
    pub fn sub(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Sub, rd, rs1, rs2 });
    }
    pub fn sll(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Sll, rd, rs1, rs2 });
    }
    pub fn and(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::And, rd, rs1, rs2 });
    }
    pub fn or(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Or, rd, rs1, rs2 });
    }
    pub fn xor(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Xor, rd, rs1, rs2 });
    }
    pub fn sltu(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Sltu, rd, rs1, rs2 });
    }
    pub fn mul(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Mul, rd, rs1, rs2 });
    }
    pub fn divu(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Divu, rd, rs1, rs2 });
    }
    pub fn remu(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::Op { op: AluOp::Remu, rd, rs1, rs2 });
    }

    pub fn csrrw(&mut self, rd: IntReg, csr: Csr, rs1: IntReg) {
        self.push(Instr::CsrR { op: CsrOp::Rw, rd, rs1, csr });
    }
    pub fn csrrs(&mut self, rd: IntReg, csr: Csr, rs1: IntReg) {
        self.push(Instr::CsrR { op: CsrOp::Rs, rd, rs1, csr });
    }
    pub fn csrr(&mut self, rd: IntReg, csr: Csr) {
        self.csrrs(rd, csr, IntReg::ZERO);
    }
    pub fn csrsi(&mut self, csr: Csr, uimm: u8) {
        self.push(Instr::CsrI { op: CsrOp::Rs, rd: IntReg::ZERO, uimm, csr });
    }
    pub fn csrci(&mut self, csr: Csr, uimm: u8) {
        self.push(Instr::CsrI { op: CsrOp::Rc, rd: IntReg::ZERO, uimm, csr });
    }
    pub fn csrwi(&mut self, csr: Csr, uimm: u8) {
        self.push(Instr::CsrI { op: CsrOp::Rw, rd: IntReg::ZERO, uimm, csr });
    }

    pub fn ecall(&mut self) {
        self.push(Instr::Ecall);
    }
    pub fn fence(&mut self) {
        self.push(Instr::Fence);
    }

    // ---- pseudo-instructions ----

    /// `li rd, imm` — loads a 32-bit constant (1 or 2 instructions).
    pub fn li(&mut self, rd: IntReg, imm: i64) {
        let imm = imm as i32;
        let lo = (imm << 20) >> 20; // sign-extended low 12 bits
        let hi = imm.wrapping_sub(lo) as u32;
        if hi == 0 {
            self.addi(rd, IntReg::ZERO, lo);
        } else if lo == 0 {
            self.lui(rd, hi);
        } else {
            self.lui(rd, hi);
            self.addi(rd, rd, lo);
        }
    }

    /// `li` for an unsigned address constant.
    pub fn li_addr(&mut self, rd: IntReg, addr: u32) {
        self.li(rd, i64::from(addr as i32));
    }

    pub fn mv(&mut self, rd: IntReg, rs1: IntReg) {
        self.addi(rd, rs1, 0);
    }
    pub fn nop(&mut self) {
        self.addi(IntReg::ZERO, IntReg::ZERO, 0);
    }
    pub fn j(&mut self, target: Label) {
        self.jal(IntReg::ZERO, target);
    }
    pub fn bnez(&mut self, rs1: IntReg, target: Label) {
        self.bne(rs1, IntReg::ZERO, target);
    }
    pub fn beqz(&mut self, rs1: IntReg, target: Label) {
        self.beq(rs1, IntReg::ZERO, target);
    }
    pub fn blez(&mut self, rs1: IntReg, target: Label) {
        self.bge(IntReg::ZERO, rs1, target);
    }
    pub fn bgtz(&mut self, rs1: IntReg, target: Label) {
        self.blt(IntReg::ZERO, rs1, target);
    }

    // ---- RV32D emitters ----

    pub fn fld(&mut self, rd: FpReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Fld { rd, rs1, offset });
    }
    pub fn fsd(&mut self, rs2: FpReg, rs1: IntReg, offset: i32) {
        self.push(Instr::Fsd { rs2, rs1, offset });
    }
    pub fn fadd_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.push(Instr::FpuOp2 { op: FpOp2::FaddD, rd, rs1, rs2 });
    }
    pub fn fsub_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.push(Instr::FpuOp2 { op: FpOp2::FsubD, rd, rs1, rs2 });
    }
    pub fn fmul_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.push(Instr::FpuOp2 { op: FpOp2::FmulD, rd, rs1, rs2 });
    }
    pub fn fmadd_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg) {
        self.push(Instr::FpuOp3 { op: FpOp3::FmaddD, rd, rs1, rs2, rs3 });
    }
    pub fn fmv_d(&mut self, rd: FpReg, rs1: FpReg) {
        self.push(Instr::FmvD { rd, rs1 });
    }
    pub fn fcvt_d_w(&mut self, rd: FpReg, rs1: IntReg) {
        self.push(Instr::FcvtDW { rd, rs1 });
    }
    pub fn fcvt_w_d(&mut self, rd: IntReg, rs1: FpReg) {
        self.push(Instr::FcvtWD { rd, rs1 });
    }

    // ---- extension emitters ----

    pub fn scfgwi(&mut self, rs1: IntReg, addr: u16) {
        self.push(Instr::Scfgwi { rs1, addr });
    }
    pub fn scfgri(&mut self, rd: IntReg, addr: u16) {
        self.push(Instr::Scfgri { rd, addr });
    }

    /// `frep.o max_rpt, n_insns, stagger` — hardware loop over the next
    /// `n_insns` FP instructions, `max_rpt + 1` iterations.
    pub fn frep_outer(&mut self, max_rpt: IntReg, n_insns: u8, stagger: Stagger) {
        self.push(Instr::Frep { kind: FrepKind::Outer, max_rpt, n_insns, stagger });
    }
    pub fn frep_inner(&mut self, max_rpt: IntReg, n_insns: u8, stagger: Stagger) {
        self.push(Instr::Frep { kind: FrepKind::Inner, max_rpt, n_insns, stagger });
    }
    /// `frep.s n_insns, stagger` — stream-terminated hardware loop: the
    /// body replays until every stream it reads has raised its terminate
    /// flag and drained (data-dependent trip count, no `max_rpt`).
    pub fn frep_stream(&mut self, n_insns: u8, stagger: Stagger) {
        self.push(Instr::Frep { kind: FrepKind::Stream, max_rpt: IntReg::ZERO, n_insns, stagger });
    }

    pub fn dmsrc(&mut self, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::DmSrc { rs1, rs2 });
    }
    pub fn dmdst(&mut self, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::DmDst { rs1, rs2 });
    }
    pub fn dmstr(&mut self, rs1: IntReg, rs2: IntReg) {
        self.push(Instr::DmStr { rs1, rs2 });
    }
    pub fn dmrep(&mut self, rs1: IntReg) {
        self.push(Instr::DmRep { rs1 });
    }
    pub fn dmcpyi(&mut self, rd: IntReg, rs1: IntReg, cfg: u8) {
        self.push(Instr::DmCpyI { rd, rs1, cfg });
    }
    pub fn dmstati(&mut self, rd: IntReg, which: u8) {
        self.push(Instr::DmStatI { rd, which });
    }

    pub fn halt(&mut self) {
        self.push(Instr::Halt);
    }

    /// Opens the measured region of interest.
    pub fn roi_begin(&mut self) {
        self.csrsi(Csr::Roi, 1);
    }

    /// Closes the measured region of interest.
    pub fn roi_end(&mut self) {
        self.csrci(Csr::Roi, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        let fwd = a.new_label();
        a.beqz(IntReg::A0, fwd); // at 0 -> offset +12
        let back = a.bind_label();
        a.addi(IntReg::A0, IntReg::A0, -1);
        a.bnez(IntReg::A0, back); // at 2 -> offset -4
        a.bind(fwd);
        a.halt();
        let p = a.finish().unwrap();
        match p.instrs()[0] {
            Instr::Branch { offset, .. } => assert_eq!(offset, 12),
            ref other => panic!("unexpected {other:?}"),
        }
        match p.instrs()[2] {
            Instr::Branch { offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.j(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn li_expansions() {
        let mut a = Assembler::new();
        a.li(IntReg::T0, 42); // addi
        a.li(IntReg::T0, 0x10000); // lui only
        a.li(IntReg::T0, 0x12345); // lui + addi
        a.li(IntReg::T0, -1); // addi
        let p = a.finish().unwrap();
        assert_eq!(p.len(), 5);
        assert!(matches!(p.instrs()[0], Instr::OpImm { imm: 42, .. }));
        assert!(matches!(p.instrs()[1], Instr::Lui { imm: 0x10000, .. }));
        assert!(matches!(p.instrs()[2], Instr::Lui { .. }));
        assert!(matches!(p.instrs()[3], Instr::OpImm { .. }));
        assert!(matches!(p.instrs()[4], Instr::OpImm { imm: -1, .. }));
    }

    #[test]
    fn li_matches_semantics() {
        // lui+addi must reconstruct the constant for tricky sign cases.
        for value in [0x12345_i64, 0x7FFFF800, 0x7FF, -2048, -1, 0, 0xFFFF_i64, 0x8000_i64] {
            let mut a = Assembler::new();
            a.li(IntReg::T0, value);
            let p = a.finish().unwrap();
            let mut acc: i64 = 0;
            for instr in p.instrs() {
                match *instr {
                    Instr::Lui { imm, .. } => acc = i64::from(imm as i32),
                    Instr::OpImm { op: AluImmOp::Addi, imm, rs1, .. } => {
                        let base = if rs1.is_zero() { 0 } else { acc };
                        acc = (base + i64::from(imm)) as i32 as i64;
                    }
                    ref other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(acc as i32, value as i32, "value {value:#x}");
        }
    }

    #[test]
    fn symbols_recorded() {
        let mut a = Assembler::new();
        a.nop();
        a.symbol("body");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.symbol("body"), Some(1));
        assert_eq!(p.symbol("missing"), None);
    }

    #[test]
    fn display_includes_symbols() {
        let mut a = Assembler::new();
        a.symbol("entry");
        a.nop();
        let p = a.finish().unwrap();
        let text = p.to_string();
        assert!(text.contains("entry:"));
        assert!(text.contains("addi"));
    }
}
