//! Property tests: every instruction round-trips through its binary
//! encoding, and the decoder never panics on arbitrary words.

use issr_isa::csr::Csr;
use issr_isa::decode::decode;
use issr_isa::encode::encode;
use issr_isa::instr::*;
use issr_isa::reg::{FpReg, IntReg};
use proptest::prelude::*;

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(IntReg::new)
}

fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(FpReg::new)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn branch_offset() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|units| units * 2)
}

fn jal_offset() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1 << 19)).prop_map(|units| units * 2)
}

fn csr() -> impl Strategy<Value = Csr> {
    prop_oneof![
        Just(Csr::MHartId),
        Just(Csr::MCycle),
        Just(Csr::Ssr),
        Just(Csr::Roi),
        Just(Csr::Barrier),
        (0u16..0x1000).prop_map(Csr::from_addr),
    ]
}

fn branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn fp_op2() -> impl Strategy<Value = FpOp2> {
    prop_oneof![
        Just(FpOp2::FaddD),
        Just(FpOp2::FsubD),
        Just(FpOp2::FmulD),
        Just(FpOp2::FdivD),
        Just(FpOp2::FsgnjnD),
        Just(FpOp2::FsgnjxD),
        Just(FpOp2::FminD),
        Just(FpOp2::FmaxD),
    ]
}

fn fp_op3() -> impl Strategy<Value = FpOp3> {
    prop_oneof![
        Just(FpOp3::FmaddD),
        Just(FpOp3::FmsubD),
        Just(FpOp3::FnmsubD),
        Just(FpOp3::FnmaddD),
    ]
}

fn fp_cmp() -> impl Strategy<Value = FpCmp> {
    prop_oneof![Just(FpCmp::FeqD), Just(FpCmp::FltD), Just(FpCmp::FleD)]
}

fn csr_op() -> impl Strategy<Value = CsrOp> {
    prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)]
}

fn load_width() -> impl Strategy<Value = LoadWidth> {
    prop_oneof![
        Just(LoadWidth::B),
        Just(LoadWidth::H),
        Just(LoadWidth::W),
        Just(LoadWidth::Bu),
        Just(LoadWidth::Hu),
    ]
}

fn store_width() -> impl Strategy<Value = StoreWidth> {
    prop_oneof![Just(StoreWidth::B), Just(StoreWidth::H), Just(StoreWidth::W)]
}

fn stagger() -> impl Strategy<Value = Stagger> {
    (0u8..16, 0u8..16).prop_map(|(count, mask)| Stagger { count, mask })
}

/// All instructions, avoiding the one intentional alias
/// (`fsgnj.d rd, r, r` ≡ `fmv.d`, which decodes canonically as the move).
fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (int_reg(), any::<u32>()).prop_map(|(rd, v)| Instr::Lui { rd, imm: v & 0xFFFF_F000 }),
        (int_reg(), any::<u32>()).prop_map(|(rd, v)| Instr::Auipc { rd, imm: v & 0xFFFF_F000 }),
        (int_reg(), jal_offset()).prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (int_reg(), int_reg(), imm12()).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (branch_cond(), int_reg(), int_reg(), branch_offset())
            .prop_map(|(cond, rs1, rs2, offset)| Instr::Branch { cond, rs1, rs2, offset }),
        (load_width(), int_reg(), int_reg(), imm12())
            .prop_map(|(width, rd, rs1, offset)| Instr::Load { width, rd, rs1, offset }),
        (store_width(), int_reg(), int_reg(), imm12())
            .prop_map(|(width, rs2, rs1, offset)| Instr::Store { width, rs2, rs1, offset }),
        (alu_imm_op(), int_reg(), int_reg(), imm12()).prop_map(|(op, rd, rs1, imm)| {
            let imm = if matches!(op, AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai) {
                imm & 0x1F
            } else {
                imm
            };
            Instr::OpImm { op, rd, rs1, imm }
        }),
        (alu_op(), int_reg(), int_reg(), int_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (csr_op(), int_reg(), int_reg(), csr()).prop_map(|(op, rd, rs1, csr)| Instr::CsrR {
            op,
            rd,
            rs1,
            csr
        }),
        (csr_op(), int_reg(), 0u8..32, csr()).prop_map(|(op, rd, uimm, csr)| Instr::CsrI {
            op,
            rd,
            uimm,
            csr
        }),
        Just(Instr::Ecall),
        Just(Instr::Fence),
        (fp_reg(), int_reg(), imm12()).prop_map(|(rd, rs1, offset)| Instr::Fld { rd, rs1, offset }),
        (fp_reg(), int_reg(), imm12()).prop_map(|(rs2, rs1, offset)| Instr::Fsd {
            rs2,
            rs1,
            offset
        }),
        (fp_op2(), fp_reg(), fp_reg(), fp_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::FpuOp2 {
            op,
            rd,
            rs1,
            rs2
        }),
        (fp_op3(), fp_reg(), fp_reg(), fp_reg(), fp_reg())
            .prop_map(|(op, rd, rs1, rs2, rs3)| Instr::FpuOp3 { op, rd, rs1, rs2, rs3 }),
        (fp_cmp(), int_reg(), fp_reg(), fp_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::FpuCmp {
            op,
            rd,
            rs1,
            rs2
        }),
        (fp_reg(), int_reg()).prop_map(|(rd, rs1)| Instr::FcvtDW { rd, rs1 }),
        (int_reg(), fp_reg()).prop_map(|(rd, rs1)| Instr::FcvtWD { rd, rs1 }),
        (fp_reg(), fp_reg()).prop_map(|(rd, rs1)| Instr::FmvD { rd, rs1 }),
        (int_reg(), 0u16..0x1000).prop_map(|(rs1, addr)| Instr::Scfgwi { rs1, addr }),
        (int_reg(), 0u16..0x1000).prop_map(|(rd, addr)| Instr::Scfgri { rd, addr }),
        (int_reg(), 0u8..16, stagger()).prop_map(|(max_rpt, n_insns, stagger)| Instr::Frep {
            kind: FrepKind::Outer,
            max_rpt,
            n_insns,
            stagger
        }),
        (int_reg(), 0u8..16, stagger()).prop_map(|(max_rpt, n_insns, stagger)| Instr::Frep {
            kind: FrepKind::Inner,
            max_rpt,
            n_insns,
            stagger
        }),
        (int_reg(), 0u8..16, stagger()).prop_map(|(max_rpt, n_insns, stagger)| Instr::Frep {
            kind: FrepKind::Stream,
            max_rpt,
            n_insns,
            stagger
        }),
        (int_reg(), int_reg()).prop_map(|(rs1, rs2)| Instr::DmSrc { rs1, rs2 }),
        (int_reg(), int_reg()).prop_map(|(rs1, rs2)| Instr::DmDst { rs1, rs2 }),
        (int_reg(), int_reg()).prop_map(|(rs1, rs2)| Instr::DmStr { rs1, rs2 }),
        int_reg().prop_map(|rs1| Instr::DmRep { rs1 }),
        (int_reg(), int_reg(), 0u8..2).prop_map(|(rd, rs1, cfg)| Instr::DmCpyI { rd, rs1, cfg }),
        (int_reg(), 0u8..2).prop_map(|(rd, which)| Instr::DmStatI { rd, which }),
        Just(Instr::Halt),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(i in instr()) {
        let word = encode(&i);
        let back = decode(word);
        prop_assert_eq!(back, Ok(i), "word {:#010x}", word);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_instrs_reencode_identically(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            // The decoded instruction must denote the same operation:
            // re-encoding and re-decoding is a fixed point.
            let word2 = encode(&i);
            prop_assert_eq!(decode(word2), Ok(i));
        }
    }
}
