//! The cluster prefix-sum barrier: a log-tree (Hillis–Steele) scan over
//! per-worker totals, built from the hardware barrier.
//!
//! Device-owned two-pass allocation needs packed output offsets whose
//! prefix sums span *all* workers' data-dependent row counts. Each
//! worker publishes its stripe total, then `⌈log2 n⌉` barrier-separated
//! rounds fold lower-indexed totals in, yielding the inclusive scan;
//! subtracting the local total gives each worker its exclusive packed
//! base. The two scratch arrays ping-pong between rounds so reads of
//! round *r−1* never race writes of round *r* (the barrier separates
//! them), and workers whose stripe is empty may simply have halted —
//! the barrier masks halted harts out and the host zero-fills their
//! slots.

use issr_isa::asm::Assembler;
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;

/// Bytes of scratch one scan array needs for `n_workers` workers
/// (u32 slots, padded to whole 64-bit words for host zero-fill).
#[must_use]
pub fn scan_array_bytes(n_workers: u32) -> u32 {
    (n_workers.max(1) * 4 + 7) & !7
}

/// Emits the barrier-synchronized inclusive scan and converts it to an
/// exclusive offset.
///
/// Register contract: on entry `a7` holds the worker index and `s10`
/// the worker's local total; on exit `s3` holds the exclusive prefix
/// (the sum of all lower-indexed workers' totals). Clobbers `t0`–`t4`.
/// `totals` are the two host-zeroed ping-pong scratch arrays
/// ([`scan_array_bytes`] each); every participating worker must execute
/// this emission (halted workers are masked out by the barrier and
/// contribute their zero-filled slots).
pub fn emit_exclusive_prefix(asm: &mut Assembler, n_workers: u32, totals: [u32; 2]) {
    // Publish the local total into slot h of the first array.
    asm.slli(R::T0, R::A7, 2);
    asm.li_addr(R::T1, totals[0]);
    asm.add(R::T0, R::T0, R::T1);
    asm.sw(R::S10, R::T0, 0);
    asm.csrr(R::ZERO, Csr::Barrier);
    // ⌈log2 n⌉ fold rounds, ping-ponging between the two arrays.
    let mut src = 0usize;
    let mut d = 1u32;
    while d < n_workers {
        let skip = asm.new_label();
        asm.slli(R::T0, R::A7, 2);
        asm.li_addr(R::T1, totals[src]);
        asm.add(R::T0, R::T0, R::T1);
        asm.lw(R::T2, R::T0, 0); //     src[h]
        asm.li(R::T3, i64::from(d));
        asm.blt(R::A7, R::T3, skip);
        asm.lw(R::T4, R::T0, -((d * 4) as i32)); // src[h - d]
        asm.add(R::T2, R::T2, R::T4);
        asm.bind(skip);
        asm.slli(R::T0, R::A7, 2);
        asm.li_addr(R::T1, totals[1 - src]);
        asm.add(R::T0, R::T0, R::T1);
        asm.sw(R::T2, R::T0, 0); //     dst[h]
        asm.csrr(R::ZERO, Csr::Barrier);
        src = 1 - src;
        d *= 2;
    }
    // Inclusive scan of worker h sits in its own final slot (its own
    // last-round write, so no further barrier is needed to read it);
    // subtract the local total for the exclusive packed base.
    asm.slli(R::T0, R::A7, 2);
    asm.li_addr(R::T1, totals[src]);
    asm.add(R::T0, R::T0, R::T1);
    asm.lw(R::T2, R::T0, 0);
    asm.sub(R::S3, R::T2, R::S10);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterParams};
    use issr_mem::map::TCDM_BASE;

    /// Every worker computes its exclusive prefix over data-dependent
    /// totals and stores it; the result must equal the host scan. Also
    /// exercises the halted-worker barrier masking (workers past
    /// `active` halt before the scan).
    #[test]
    fn scan_matches_host_prefix_sum() {
        for active in [1u32, 3, 5, 8] {
            let totals = [TCDM_BASE + 0x100, TCDM_BASE + 0x100 + scan_array_bytes(8)];
            let out = TCDM_BASE + 0x200;
            let mut a = Assembler::new();
            a.csrr(R::A7, Csr::MHartId);
            let work = a.new_label();
            a.li(R::T0, i64::from(active));
            a.blt(R::A7, R::T0, work);
            a.halt(); // DMCC and inactive workers sit the scan out
            a.bind(work);
            // Local total: h * h + 1 (data-dependent stand-in).
            a.mul(R::S10, R::A7, R::A7);
            a.addi(R::S10, R::S10, 1);
            emit_exclusive_prefix(&mut a, 8, totals);
            a.slli(R::T0, R::A7, 2);
            a.li_addr(R::T1, out);
            a.add(R::T0, R::T0, R::T1);
            a.sw(R::S3, R::T0, 0);
            a.halt();
            let mut cluster = Cluster::new(a.finish().unwrap(), ClusterParams::default());
            // Host zero-fills the scratch arrays (inactive slots stay 0).
            for addr in totals {
                for j in 0..8u32 {
                    cluster.tcdm.array_mut().store_u32(addr + j * 4, 0);
                }
            }
            let summary = cluster.run(100_000).unwrap();
            assert!(summary.traps.is_empty(), "{:?}", summary.traps);
            let mut expect = 0u32;
            for h in 0..active {
                assert_eq!(
                    cluster.tcdm.array().load_u32(out + h * 4),
                    expect,
                    "worker {h} of {active}"
                );
                expect += h * h + 1;
            }
        }
    }
}
