//! # issr-cluster
//!
//! The Snitch cluster of §II-C: eight worker core complexes in two
//! hives with shared L1 instruction caches, a lightweight data-movement
//! core complex (DMCC) driving the 512-bit DMA engine, a 32-bank /
//! 256 KiB word-interleaved TCDM, a hardware barrier, and an ideal
//! 512-bit duplex main memory behind the cluster crossbar.
//!
//! This is the system-level setup of §IV-B: all data starts in main
//! memory, the DMA double-buffers matrix blocks into the TCDM, workers
//! share rows, and bank conflicts from indirection's random access
//! patterns lower the ISSR's peak utilization from 0.80 to ≈ 0.71.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod scan;

pub use cluster::{Cluster, ClusterAttribution, ClusterParams, ClusterSummary, ClusterTracks};
pub use scan::{emit_exclusive_prefix, scan_array_bytes};
