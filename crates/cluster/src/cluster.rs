//! The cluster model and its run harness.

use issr_core::lane::LaneStats;
use issr_core::spacc::SpAccStats;
use issr_isa::asm::Program;
use issr_mem::dma::{Dma, DmaStats};
use issr_mem::icache::{ICacheParams, L0Buffer, L1ICache};
use issr_mem::main_mem::MainMemory;
use issr_mem::map::{region_of, Region, MAIN_BASE, MAIN_SIZE, TCDM_BANKS, TCDM_BASE, TCDM_SIZE};
use issr_mem::port::MemPort;
use issr_mem::tcdm::{Tcdm, TcdmStats};
use issr_snitch::attr::CcAttribution;
use issr_snitch::cc::{CoreComplex, SimTimeout};
use issr_snitch::core::Trap;
use issr_snitch::metrics::Metrics;
use issr_snitch::params::CcParams;
use issr_trace::blackbox::DEFAULT_BLACKBOX_CAP;
use issr_trace::waitgraph::UnitClass;
use issr_trace::{
    host, BlackBox, CounterId, CriticalPath, CycleBreakdown, PostMortem, StallCause, StatMerge,
    StuckUnit, TraceRecorder, TrackId, UnitId, WaitGraph,
};

/// Cluster configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterParams {
    /// Worker core complexes (the paper's cluster has 8 in two hives).
    pub n_workers: usize,
    /// Per-core microarchitecture.
    pub cc: CcParams,
    /// Model instruction caches (L0 + per-hive shared L1); when false,
    /// instruction fetch is ideal.
    pub icache: bool,
    /// Give every worker the sparse-sparse streamer (index joiner +
    /// SpAcc) instead of the paper's plain SSR + ISSR pair — the
    /// configuration the cluster SpMSpV/SpGEMM kernels run on.
    pub sssr: bool,
    /// Double-buffered SpAcc row storage (a row's drain overlaps the
    /// next row's first feed). On by default; the benchmark disables it
    /// to report the overlap delta.
    pub spacc_double_buffer: bool,
}

impl Default for ClusterParams {
    fn default() -> Self {
        Self {
            n_workers: 8,
            cc: CcParams::default(),
            icache: true,
            sssr: false,
            spacc_double_buffer: true,
        }
    }
}

/// ROI stall-cause breakdowns for a whole cluster: every core complex
/// plus the DMA engine. The DMA table is sampled once per *cluster*
/// cycle (the engine has no ROI), so it totals to the cluster's elapsed
/// cycles, while each core's tables total to that core's ROI cycles.
#[derive(Clone, Debug, Default)]
pub struct ClusterAttribution {
    /// Per-worker breakdowns.
    pub workers: Vec<CcAttribution>,
    /// The data-mover core's breakdown.
    pub dmcc: CcAttribution,
    /// The DMA engine's breakdown (totals to the cluster cycles).
    pub dma: CycleBreakdown,
}

impl ClusterAttribution {
    /// All worker breakdowns folded into one [`CcAttribution`] — the
    /// cluster-wide view the reports and JSON emitters print.
    #[must_use]
    pub fn merged_workers(&self) -> CcAttribution {
        issr_trace::merge::merge_all(self.workers.iter())
    }

    /// The whole cluster's wait graph: every worker's, the DMCC's and
    /// the DMA engine's blocked cycles folded into per-edge-class cycle
    /// counts. Derived from the attribution tables, so it is exactly as
    /// timing-neutral and thread-invariant as they are.
    #[must_use]
    pub fn wait_graph(&self) -> WaitGraph {
        let mut g = WaitGraph::new();
        for w in &self.workers {
            g.merge_from(&w.wait_graph());
        }
        g.merge_from(&self.dmcc.wait_graph());
        g.add_breakdown(UnitClass::Dma, &self.dma);
        g
    }

    /// The cluster's critical path: the backward blame walk starts at
    /// the worker with the longest ROI (the one end-of-ROI waits on),
    /// then descends into its busiest lane. Falls back to the DMCC when
    /// no worker opened an ROI (pure data-movement runs).
    #[must_use]
    pub fn critical_path(&self) -> CriticalPath {
        let mut best: Option<&CcAttribution> = None;
        for w in &self.workers {
            // Strictly greater: ties keep the earlier hart.
            if w.roi_cycles() > 0 && best.is_none_or(|b| w.roi_cycles() > b.roi_cycles()) {
                best = Some(w);
            }
        }
        best.unwrap_or(&self.dmcc).critical_path()
    }

    /// Labelled rows (workers, DMCC, DMA) for
    /// [`issr_trace::breakdown_table`], with `prefix` prepended.
    #[must_use]
    pub fn rows(&self, prefix: &str) -> Vec<(String, CycleBreakdown)> {
        let mut rows = Vec::new();
        for (i, w) in self.workers.iter().enumerate() {
            rows.extend(w.rows(&format!("{prefix}hart{i}/")));
        }
        rows.push((format!("{prefix}dmcc"), self.dmcc.hart));
        rows.push((format!("{prefix}dma"), self.dma));
        rows
    }
}

impl StatMerge for ClusterAttribution {
    fn merge_from(&mut self, other: &Self) {
        if self.workers.len() < other.workers.len() {
            self.workers.resize(other.workers.len(), CcAttribution::default());
        }
        for (mine, theirs) in self.workers.iter_mut().zip(other.workers.iter()) {
            mine.merge_from(theirs);
        }
        self.dmcc.merge_from(&other.dmcc);
        self.dma.merge_from(&other.dma);
    }
}

/// Result of a completed cluster run.
#[derive(Clone, Debug)]
pub struct ClusterSummary {
    /// Total cycles until the whole cluster went quiescent.
    pub cycles: u64,
    /// Per-worker metrics (ROI counters included).
    pub worker_metrics: Vec<Metrics>,
    /// DMCC metrics.
    pub dmcc_metrics: Metrics,
    /// Per-worker streamer lane statistics.
    pub lane_stats: Vec<Vec<LaneStats>>,
    /// Per-worker sparse-accumulator statistics (all zero without SpAcc
    /// hardware).
    pub spacc_stats: Vec<SpAccStats>,
    /// TCDM statistics (grants, conflicts).
    pub tcdm_stats: TcdmStats,
    /// DMA statistics.
    pub dma_stats: DmaStats,
    /// ROI stall-cause breakdowns (every core + the DMA engine).
    pub attr: ClusterAttribution,
    /// Decode/fetch traps that parked cores (workers and DMCC alike);
    /// empty on a clean run.
    pub traps: Vec<Trap>,
    /// Post-mortem assembled automatically when the run ended with
    /// latched traps (a clean, trap-free run carries `None`; a timeout
    /// carries its post-mortem on the [`SimTimeout`] instead).
    pub post_mortem: Option<PostMortem>,
}

impl ClusterSummary {
    /// Total multiply-accumulates retired by the workers (in their ROIs).
    #[must_use]
    pub fn total_fmadds(&self) -> u64 {
        self.worker_metrics.iter().map(|m| m.roi.fmadds).sum()
    }

    /// Cluster-aggregate FPU utilization: retired MACs over
    /// `cycles × workers` — the figure compared against CPUs/GPUs in §V.
    #[must_use]
    pub fn cluster_utilization(&self) -> f64 {
        if self.cycles == 0 || self.worker_metrics.is_empty() {
            return 0.0;
        }
        self.total_fmadds() as f64 / (self.cycles as f64 * self.worker_metrics.len() as f64)
    }

    /// Peak per-worker FPU utilization within worker ROIs.
    #[must_use]
    pub fn peak_worker_utilization(&self) -> f64 {
        self.worker_metrics.iter().map(Metrics::fpu_utilization).fold(0.0, f64::max)
    }
}

/// Activity snapshot of one cluster tick. The system harness reads it
/// to attribute DMA/compute overlap across clusters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TickActivity {
    /// Words the DMA engine moved across the main-memory interface
    /// this cycle (local TCDM→TCDM copies excluded).
    pub dma_words_moved: u64,
    /// Whether any worker was inside its region of interest.
    pub workers_in_roi: bool,
}

/// The pre-tick idle census of one cluster cycle, computed every cycle
/// from the same `is_idle()` predicates the dirty-set skipper acts on —
/// PR 7's profiler-gated read-only census promoted to an always-on
/// input that the skipping logic and the host profiler now share.
#[derive(Clone, Copy, Debug, Default)]
pub struct TickCensus {
    /// Worker CCs that were provably idle before this tick (and were
    /// therefore ticked through the cheap bookkeeping path).
    pub idle_workers: u64,
    /// Whether the DMCC was provably idle.
    pub idle_dmcc: bool,
    /// Whether the DMA engine had nothing queued or in flight.
    pub idle_dma: bool,
}

/// One cluster's always-cheap flight recorder: a bounded ring of
/// recent per-unit state transitions (workers, DMCC, DMA), sampled from
/// the classifications the tick already latched — never from live
/// machine state, so recording cannot perturb timing.
#[derive(Clone, Debug)]
struct FlightRecorder {
    bb: BlackBox,
    /// Unit handles: workers `0..n_workers`, then the DMCC.
    harts: Vec<UnitId>,
    dma: UnitId,
}

/// The eight-worker Snitch cluster plus DMCC.
#[derive(Debug)]
pub struct Cluster {
    /// Worker core complexes (harts `0..n_workers`).
    pub workers: Vec<CoreComplex>,
    /// The data-mover core (hart `n_workers`), no FPU work, drives the DMA.
    pub dmcc: CoreComplex,
    /// Banked scratchpad.
    pub tcdm: Tcdm,
    /// Main memory behind the crossbar. A standalone cluster owns a
    /// private one; clusters built with [`Cluster::new_for_system`]
    /// keep an empty stub here and are ticked against the shared memory
    /// via [`Cluster::tick_shared`].
    pub main: MainMemory,
    /// The 512-bit DMA engine.
    pub dma: Dma,
    ports: Vec<Vec<MemPort>>,
    l1: Vec<L1ICache>,
    dma_claimed: Vec<bool>,
    dma_attr: CycleBreakdown,
    /// Persistent scratch for the DMA fairness yield: banks contested by
    /// core ports this cycle. Only (re)filled while the engine is busy —
    /// [`Dma::tick`] never reads it when idle.
    contested: Vec<bool>,
    /// Flat port slots routed to main memory this cycle, latched by
    /// [`Cluster::tick_interconnect`] so [`Cluster::tick_mem`] excludes
    /// exactly those slots from TCDM arbitration (served or not).
    main_routed: u64,
    dma_words_moved: u64,
    workers_in_roi: bool,
    census: TickCensus,
    idle_mem: bool,
    /// Post-mortem flight recorder; [`Cluster::run`] arms a default one
    /// so every timeout dump carries recent history.
    flight: Option<FlightRecorder>,
    /// Opt-in live wait-graph recorder. Provably redundant — it must
    /// (and property-tested does) equal the graph derived from the
    /// attribution tables — but it lets harnesses watch edges grow
    /// mid-run without waiting for a summary.
    live_graph: Option<WaitGraph>,
    /// Declared synchronization words `(addr, owner_hart)` — e.g. flag
    /// words one hart writes and others spin on. Post-mortem deadlock
    /// classification builds its blame edges from these.
    sync_words: Vec<(u32, u32)>,
    now: u64,
}

/// Track handles for one cluster's units in a [`TraceRecorder`]: one
/// per hart (workers then DMCC), one per worker lane, one for the DMA
/// engine.
#[derive(Clone, Debug)]
pub struct ClusterTracks {
    /// The Chrome-trace process these tracks live under — kept so
    /// sampling can drop instant markers (traps) on the right process.
    pub pid: u32,
    /// Hart tracks: workers `0..n_workers`, then the DMCC.
    pub harts: Vec<TrackId>,
    /// Per-worker lane tracks.
    pub lanes: Vec<Vec<TrackId>>,
    /// The DMA engine's track.
    pub dma: TrackId,
    /// Per-worker, per-lane data-FIFO occupancy counters.
    pub lane_fifo: Vec<Vec<CounterId>>,
    /// Outstanding-words counter for the DMA engine.
    pub dma_words: CounterId,
}

impl Cluster {
    /// Builds the cluster; every core runs `program` and dispatches on
    /// `mhartid` (workers `0..n_workers`, DMCC = `n_workers`).
    #[must_use]
    pub fn new(program: Program, params: ClusterParams) -> Self {
        let icache_params = ICacheParams::default();
        let mut workers = Vec::with_capacity(params.n_workers);
        for hart in 0..params.n_workers {
            let streamer = if params.sssr {
                let mut s = issr_core::streamer::Streamer::sssr_config();
                s.set_spacc_double_buffered(params.spacc_double_buffer);
                s
            } else {
                issr_core::streamer::Streamer::paper_config()
            };
            let mut cc =
                CoreComplex::with_streamer(hart as u32, program.clone(), params.cc, streamer);
            if params.icache {
                cc.set_l0(L0Buffer::new(icache_params));
            }
            workers.push(cc);
        }
        // The DMCC has no FPU subsystem worth modelling and a single
        // (SSR-less would be ideal; one plain lane keeps the port math
        // uniform) memory port.
        let dmcc = CoreComplex::with_streamer(
            params.n_workers as u32,
            program,
            params.cc,
            issr_core::streamer::Streamer::new(&[issr_core::lane::LaneKind::Ssr]),
        );
        let mut ports = Vec::new();
        for cc in &workers {
            ports.push((0..cc.n_ports()).map(|_| MemPort::new()).collect::<Vec<_>>());
        }
        ports.push((0..dmcc.n_ports()).map(|_| MemPort::new()).collect());
        // Two hives of four workers share an L1 each; the DMCC fetches
        // ideally (control code only).
        let n_hives = params.n_workers.div_ceil(4).max(1);
        let l1 = (0..n_hives).map(|_| L1ICache::new(icache_params)).collect();
        Self {
            workers,
            dmcc,
            tcdm: Tcdm::banked(TCDM_BASE, TCDM_SIZE, TCDM_BANKS),
            main: MainMemory::new(MAIN_BASE, MAIN_SIZE),
            dma: Dma::new(TCDM_BASE, TCDM_SIZE),
            ports,
            l1,
            dma_claimed: vec![false; TCDM_BANKS],
            dma_attr: CycleBreakdown::default(),
            contested: vec![false; TCDM_BANKS],
            main_routed: 0,
            dma_words_moved: 0,
            workers_in_roi: false,
            census: TickCensus::default(),
            idle_mem: true,
            flight: None,
            live_graph: None,
            sync_words: Vec::new(),
            now: 0,
        }
    }

    /// [`Cluster::new`] for a cluster embedded in a multi-cluster
    /// system: the private main memory is an empty stub (the system
    /// owns the shared one and drives [`Cluster::tick_shared`]).
    #[must_use]
    pub fn new_for_system(program: Program, params: ClusterParams) -> Self {
        let mut cluster = Self::new(program, params);
        cluster.main = MainMemory::new(MAIN_BASE, 0);
        cluster
    }

    /// Whether every core halted and all queues drained.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.workers.iter().all(CoreComplex::quiescent) && self.dmcc.quiescent() && !self.dma.busy()
    }

    fn release_barrier_if_all_arrived(&mut self) {
        // Halted cores count as arrived: the hardware barrier masks out
        // inactive harts, so a worker whose stripe is empty (or the
        // DMCC sitting out a resident workload) cannot deadlock the
        // cores that still synchronize — the property the device-owned
        // prefix-sum phases rely on.
        let arrived = |cc: &CoreComplex| cc.core.at_barrier() || cc.core.halted();
        let any = self.workers.iter().any(|cc| cc.core.at_barrier()) || self.dmcc.core.at_barrier();
        let all = self.workers.iter().all(arrived) && arrived(&self.dmcc);
        if any && all {
            for cc in &mut self.workers {
                cc.core.release_barrier();
            }
            self.dmcc.core.release_barrier();
        }
    }

    /// Advances the whole cluster one cycle against its private main
    /// memory, resetting the memory's per-cycle DMA bandwidth budget.
    pub fn tick(&mut self) {
        host::cycle();
        self.main.begin_dma_cycle();
        let mut main = std::mem::replace(&mut self.main, MainMemory::new(MAIN_BASE, 0));
        self.tick_shared(&mut main);
        self.main = main;
    }

    /// Advances the whole cluster one cycle against an external
    /// (possibly shared) main memory. The caller owns the memory's
    /// per-cycle DMA budget: reset it once per system cycle with
    /// [`MainMemory::begin_dma_cycle`] before ticking the clusters that
    /// share it — their tick order is the bandwidth grant order.
    ///
    /// The tick is three phases. Compute and memory touch only
    /// cluster-local state; every access to the shared main memory is
    /// confined to [`Cluster::tick_interconnect`], which is why the
    /// system harness can run the other two phases of different
    /// clusters on a thread pool and still replay the interconnect
    /// serially in grant order — bit-identical to this serial
    /// composition regardless of thread count.
    pub fn tick_shared(&mut self, main: &mut MainMemory) -> TickActivity {
        self.tick_compute();
        self.tick_interconnect(main);
        self.tick_mem()
    }

    /// Phase 1 — cluster-local compute: barrier release, worker CCs,
    /// DMCC. Provably idle units (per [`CoreComplex::is_idle`]) take the
    /// cheap bookkeeping path instead of a full tick; the census of who
    /// was skipped is latched for [`Cluster::last_census`].
    pub fn tick_compute(&mut self) {
        let now = self.now;
        // Host self-profiler (opt-in, read-only): bill each phase's
        // wall-clock to its unit class. Gated on one thread-local
        // check; `host_t = None` means zero further cost.
        let mut host_t = host::phase_start();
        self.release_barrier_if_all_arrived();
        let n_workers = self.workers.len();
        let mut idle_workers = 0u64;
        let mut in_roi = false;
        for (i, cc) in self.workers.iter_mut().enumerate() {
            if cc.is_idle() {
                idle_workers += 1;
                cc.tick_idle();
            } else {
                let hive = i / 4;
                cc.tick(now, &mut self.ports[i], None, Some(&mut self.l1[hive.min(1)]));
            }
            in_roi |= cc.metrics.roi_active;
        }
        self.workers_in_roi = in_roi;
        host::phase(&mut host_t, "workers", n_workers as u64, idle_workers);
        let idle_dmcc = self.dmcc.is_idle();
        if idle_dmcc {
            self.dmcc.tick_idle();
        } else {
            self.dmcc.tick(now, &mut self.ports[n_workers], Some(&mut self.dma), None);
        }
        host::phase(&mut host_t, "dmcc", 1, u64::from(idle_dmcc));
        self.census = TickCensus { idle_workers, idle_dmcc, idle_dma: !self.dma.busy() };
    }

    /// Phase 2 — the only phase that touches the (possibly shared) main
    /// memory: the DMA engine moves a beat and claims banks, then
    /// narrow main-region requests are served. Under the thread pool
    /// this phase runs serially, cluster by cluster in grant order.
    pub fn tick_interconnect(&mut self, main: &mut MainMemory) {
        let now = self.now;
        let mut host_t = host::phase_start();
        // DMA moves a beat and claims its banks, yielding contested
        // banks to core ports every other cycle (fair interconnect).
        self.dma_claimed.fill(false);
        if self.dma.busy() {
            // Only a busy engine reads the contested map; skip the
            // banks scan (and tolerate stale contents) otherwise.
            self.contested.fill(false);
            for port in self.ports.iter().flatten() {
                if let Some(req) = port.pending() {
                    if region_of(req.addr) == Region::Tcdm {
                        self.contested[self.tcdm.bank_of(req.addr)] = true;
                    }
                }
            }
        }
        let yield_to_cores = now % 2 == 0;
        // Attribute only words that crossed the main-memory interface
        // (TCDM→TCDM local copies draw no shared bandwidth and say
        // nothing about main-memory double buffering).
        let moved_before = main.stats.wide_beats;
        self.dma.tick(
            self.tcdm.array_mut(),
            main,
            &mut self.dma_claimed,
            &self.contested,
            yield_to_cores,
        );
        self.dma_words_moved = main.stats.wide_beats - moved_before;
        self.dma_attr.record(self.dma.last_cause());
        host::phase(&mut host_t, "dma", 1, u64::from(self.census.idle_dma));
        // Route main-region requests and latch the routing: the TCDM
        // phase must exclude exactly these slots — served or not — so
        // its round-robin port positions match the pre-split order.
        debug_assert!(self.ports.iter().map(Vec::len).sum::<usize>() <= 64, "port mask width");
        let mut main_routed: u64 = 0;
        let mut any_pending = false;
        let mut main_ports: Vec<&mut MemPort> = Vec::new();
        for (slot, port) in self.ports.iter_mut().flatten().enumerate() {
            match port.pending().map(|r| region_of(r.addr)) {
                None => {}
                Some(Region::Tcdm) => any_pending = true,
                Some(Region::Main) => {
                    any_pending = true;
                    main_routed |= 1 << slot;
                    main_ports.push(port);
                }
                Some(other) => panic!("cluster request to unsupported region {other:?}"),
            }
        }
        self.main_routed = main_routed;
        // The memories are idle when no port carries a request and the
        // DMA claimed no bank this cycle.
        self.idle_mem = !any_pending && !self.dma_claimed.iter().any(|&c| c);
        main.tick(now, &mut main_ports);
        // Billed to "mem" with zero units: tick_mem records the class's
        // one unit-tick per cycle.
        host::phase(&mut host_t, "mem", 0, 0);
    }

    /// Phase 3 — cluster-local memory: TCDM bank arbitration, then the
    /// cycle counter advances and the tick's activity is reported.
    pub fn tick_mem(&mut self) -> TickActivity {
        let now = self.now;
        let mut host_t = host::phase_start();
        let mut main_routed = self.main_routed;
        let mut tcdm_ports: Vec<&mut MemPort> = Vec::new();
        for port in self.ports.iter_mut().flatten() {
            let routed_main = main_routed & 1 != 0;
            main_routed >>= 1;
            if !routed_main {
                tcdm_ports.push(port);
            }
        }
        self.tcdm.tick(now, &mut tcdm_ports, &self.dma_claimed);
        host::phase(&mut host_t, "mem", 1, u64::from(self.idle_mem));
        self.sample_recorders(now);
        self.now += 1;
        TickActivity { dma_words_moved: self.dma_words_moved, workers_in_roi: self.workers_in_roi }
    }

    /// Feeds the cycle that just completed into whichever recorders are
    /// armed. Runs at the end of phase 3 — per-cluster state only, so
    /// the thread-pool harness keeps its bit-identical replay — and
    /// reads only latched classifications, so recording is invisible to
    /// the simulated machine.
    fn sample_recorders(&mut self, now: u64) {
        if let Some(fr) = self.flight.as_mut() {
            for (i, cc) in self.workers.iter().enumerate() {
                fr.bb.sample(fr.harts[i], now, cc.last_causes().hart);
            }
            fr.bb.sample(fr.harts[self.workers.len()], now, self.dmcc.last_causes().hart);
            fr.bb.sample(fr.dma, now, self.dma.last_cause());
        }
        if let Some(g) = self.live_graph.as_mut() {
            // Mirror the attribution gating exactly: cores count edges
            // only inside their ROI, the DMA engine every cluster cycle
            // — that is what makes live == derived provable.
            for cc in self.workers.iter().chain(std::iter::once(&self.dmcc)) {
                if cc.metrics.roi_active {
                    let causes = cc.last_causes();
                    g.record(UnitClass::Hart, causes.hart);
                    for &c in &causes.streamer.lanes {
                        g.record(UnitClass::Lane, c);
                    }
                    g.record(UnitClass::Joiner, causes.streamer.joiner);
                    g.record(UnitClass::SpAcc, causes.streamer.spacc);
                }
            }
            g.record(UnitClass::Dma, self.dma.last_cause());
        }
    }

    /// The idle census taken by the last [`Cluster::tick_compute`]: how
    /// many units were provably idle (and therefore skipped) that cycle.
    #[must_use]
    pub fn last_census(&self) -> TickCensus {
        self.census
    }

    /// The activity of the last completed tick — what
    /// [`Cluster::tick_mem`] returned. The thread-pool harness reads it
    /// after the barrier (the return value stays on the worker thread).
    #[must_use]
    pub fn last_activity(&self) -> TickActivity {
        TickActivity { dma_words_moved: self.dma_words_moved, workers_in_roi: self.workers_in_roi }
    }

    /// Arms the post-mortem flight recorder with a ring of `cap` recent
    /// per-unit transitions, naming units for cluster `cluster` (e.g.
    /// `"c0 hart 3"`). Re-arming resets the ring. The recorder samples
    /// only the classifications the tick already latched, so arming it
    /// changes no simulated bit and no cycle count.
    pub fn enable_flight_recorder(&mut self, cap: usize, cluster: usize) {
        let mut bb = BlackBox::new(cap);
        let mut harts = Vec::with_capacity(self.workers.len() + 1);
        for i in 0..self.workers.len() {
            harts.push(bb.add_unit(format!("c{cluster} hart {i}")));
        }
        harts.push(bb.add_unit(format!("c{cluster} dmcc")));
        let dma = bb.add_unit(format!("c{cluster} dma"));
        self.flight = Some(FlightRecorder { bb, harts, dma });
    }

    /// Whether a flight recorder is armed ([`Cluster::run`] and the
    /// system harness arm a default one before running).
    #[must_use]
    pub fn flight_recorder_armed(&self) -> bool {
        self.flight.is_some()
    }

    /// Arms the live wait-graph recorder (edges accumulate as the run
    /// ticks). Redundant with the graph derived from the summary's
    /// attribution — the two must be equal — and just as timing-neutral.
    pub fn enable_waitgraph(&mut self) {
        self.live_graph = Some(WaitGraph::new());
    }

    /// The live wait graph accumulated so far (`None` until
    /// [`Cluster::enable_waitgraph`]).
    #[must_use]
    pub fn live_wait_graph(&self) -> Option<&WaitGraph> {
        self.live_graph.as_ref()
    }

    /// Declares `addr` a synchronization word owned (written) by
    /// `owner_hart`. The post-mortem uses these to turn "hart X last
    /// loaded `addr`" into a blame edge toward the owner, which is what
    /// lets it tell a deadlocked spin from a merely slow one.
    pub fn declare_sync_word(&mut self, addr: u32, owner_hart: u32) {
        self.sync_words.push((addr, owner_hart));
    }

    /// Every hart (workers, then the DMCC as hart `n_workers`) that has
    /// not gone quiescent, with its current PC and dominant lifetime
    /// stall cause — the timeout diagnostic.
    #[must_use]
    pub fn stuck_harts(&self, cluster: usize) -> Vec<issr_snitch::cc::StuckHart> {
        let mut stuck = Vec::new();
        for (i, cc) in self.workers.iter().enumerate() {
            if !cc.quiescent() {
                stuck.push(issr_snitch::cc::StuckHart {
                    cluster,
                    hart: i as u32,
                    pc: cc.core.pc(),
                    cause: cc.cause_tally.dominant(),
                });
            }
        }
        if !self.dmcc.quiescent() {
            stuck.push(issr_snitch::cc::StuckHart {
                cluster,
                hart: self.workers.len() as u32,
                pc: self.dmcc.core.pc(),
                cause: self.dmcc.cause_tally.dominant(),
            });
        }
        stuck
    }

    /// Assembles the post-mortem for the cluster's current state: stuck
    /// harts with their dominant stall cause and last-polled address,
    /// the frozen wait graph, deadlock-vs-slow classification over the
    /// declared sync words, and whatever the flight recorder holds.
    #[must_use]
    pub fn post_mortem(&self, cluster: usize) -> PostMortem {
        let mut stuck = Vec::new();
        let name = |i: usize| {
            if i == self.workers.len() {
                format!("c{cluster} dmcc")
            } else {
                format!("c{cluster} hart {i}")
            }
        };
        for (i, cc) in self.workers.iter().chain(std::iter::once(&self.dmcc)).enumerate() {
            if !cc.quiescent() {
                stuck.push(StuckUnit {
                    name: name(i),
                    hart: i as u32,
                    pc: cc.core.pc(),
                    dominant: cc.cause_tally.dominant(),
                    polls: cc.core.last_load_addr(),
                });
            }
        }
        // The post-mortem graph uses the whole-lifetime hart tallies,
        // not the ROI-gated tables: a hung run often never opened (or
        // never closed) an ROI, and the dump must still show where the
        // harts waited. Streamer units and the DMA keep their tables.
        let mut graph = WaitGraph::new();
        for cc in self.workers.iter().chain(std::iter::once(&self.dmcc)) {
            graph.add_breakdown(UnitClass::Hart, &cc.cause_tally);
            for lane in &cc.attr.lanes {
                graph.add_breakdown(UnitClass::Lane, lane);
            }
            graph.add_breakdown(UnitClass::Joiner, &cc.attr.joiner);
            graph.add_breakdown(UnitClass::SpAcc, &cc.attr.spacc);
        }
        graph.add_breakdown(UnitClass::Dma, &self.dma_attr);
        PostMortem::assemble(
            self.now,
            stuck,
            &self.sync_words,
            graph,
            self.flight.as_ref().map(|f| &f.bb),
        )
    }

    /// Runs to quiescence.
    ///
    /// # Errors
    /// Returns [`SimTimeout`] if the cluster does not finish in
    /// `max_cycles` (deadlock or bug).
    pub fn run(&mut self, max_cycles: u64) -> Result<ClusterSummary, SimTimeout> {
        // Arm a default flight recorder so any timeout dump carries
        // recent history; recording reads only latched state, so this
        // changes no simulated bit and no cycle count.
        if self.flight.is_none() {
            self.enable_flight_recorder(DEFAULT_BLACKBOX_CAP, 0);
        }
        let deadline = self.now + max_cycles;
        while self.now < deadline {
            self.tick();
            if self.quiescent() {
                return Ok(self.summary());
            }
        }
        Err(SimTimeout::new(max_cycles, self.stuck_harts(0)).with_post_mortem(self.post_mortem(0)))
    }

    /// Registers one track per hart (workers then DMCC), per worker
    /// lane and for the DMA engine under process `pid`, plus counter
    /// tracks for each lane's data-FIFO occupancy and the DMA engine's
    /// outstanding words — the system harness calls this once per
    /// cluster before tracing starts.
    #[must_use]
    pub fn register_tracks(&self, rec: &mut TraceRecorder, pid: u32) -> ClusterTracks {
        let mut harts = Vec::with_capacity(self.workers.len() + 1);
        let mut lanes = Vec::with_capacity(self.workers.len());
        let mut lane_fifo = Vec::with_capacity(self.workers.len());
        for (i, cc) in self.workers.iter().enumerate() {
            harts.push(rec.add_track(pid, format!("hart {i}")));
            lanes.push(
                (0..cc.streamer.n_lanes())
                    .map(|l| rec.add_track(pid, format!("hart {i} ft{l}")))
                    .collect(),
            );
            lane_fifo.push(
                (0..cc.streamer.n_lanes())
                    .map(|l| rec.add_counter(pid, format!("hart {i} ft{l} fifo")))
                    .collect(),
            );
        }
        harts.push(rec.add_track(pid, "dmcc"));
        let dma = rec.add_track(pid, "dma");
        let dma_words = rec.add_counter(pid, "dma outstanding words");
        ClusterTracks { pid, harts, lanes, dma, lane_fifo, dma_words }
    }

    /// Feeds one cycle's occupancy of every unit into the recorder.
    /// Reads only the classification latched by the tick that just ran,
    /// so sampling (or not sampling) cannot change simulated behavior.
    pub fn trace_sample(&self, rec: &mut TraceRecorder, tracks: &ClusterTracks, now: u64) {
        for (i, cc) in self.workers.iter().enumerate() {
            let causes = cc.last_causes();
            rec.sample(tracks.harts[i], now, causes.hart == StallCause::Active);
            for (l, &track) in tracks.lanes[i].iter().enumerate() {
                let busy = causes.streamer.lanes.get(l) == Some(&StallCause::Active);
                rec.sample(track, now, busy);
            }
            for (l, &ctr) in tracks.lane_fifo[i].iter().enumerate() {
                rec.sample_counter(ctr, now, cc.streamer.lane(l).fifo_len() as u64);
            }
        }
        let dmcc_busy = self.dmcc.last_causes().hart == StallCause::Active;
        rec.sample(tracks.harts[self.workers.len()], now, dmcc_busy);
        rec.sample(tracks.dma, now, self.dma.last_cause() == StallCause::Active);
        rec.sample_counter(tracks.dma_words, now, self.dma.outstanding_words());
        // Instant markers for latched traps: `mark` dedups on
        // `(pid, name)`, so each trap lands once at its first sighting.
        for (i, cc) in self.workers.iter().chain(std::iter::once(&self.dmcc)).enumerate() {
            if let Some(trap) = cc.core.trap() {
                rec.mark(tracks.pid, format!("trap hart {i}: {trap}"), now);
            }
        }
    }

    /// Snapshot of the run statistics.
    #[must_use]
    pub fn summary(&self) -> ClusterSummary {
        let mut summary = ClusterSummary {
            cycles: self.now,
            worker_metrics: self.workers.iter().map(|cc| cc.metrics).collect(),
            dmcc_metrics: self.dmcc.metrics,
            lane_stats: self.workers.iter().map(|cc| cc.streamer.stats()).collect(),
            spacc_stats: self.workers.iter().map(|cc| cc.streamer.spacc_stats()).collect(),
            tcdm_stats: self.tcdm.stats(),
            dma_stats: self.dma.stats(),
            attr: ClusterAttribution {
                workers: self.workers.iter().map(|cc| cc.attr.clone()).collect(),
                dmcc: self.dmcc.attr.clone(),
                dma: self.dma_attr,
            },
            traps: self
                .workers
                .iter()
                .chain(std::iter::once(&self.dmcc))
                .filter_map(|cc| cc.core.trap())
                .collect(),
            post_mortem: None,
        };
        if !summary.traps.is_empty() {
            summary.post_mortem = Some(self.post_mortem(0));
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_isa::asm::Assembler;
    use issr_isa::reg::IntReg as R;
    use issr_isa::Csr;

    /// Every core writes its hartid² to a TCDM slot.
    #[test]
    fn harts_execute_independently() {
        let mut a = Assembler::new();
        a.csrr(R::T0, Csr::MHartId);
        a.mul(R::T1, R::T0, R::T0);
        a.slli(R::T2, R::T0, 3);
        a.li_addr(R::T3, TCDM_BASE);
        a.add(R::T2, R::T2, R::T3);
        a.sw(R::T1, R::T2, 0);
        a.halt();
        let mut cluster = Cluster::new(a.finish().unwrap(), ClusterParams::default());
        let summary = cluster.run(10_000).unwrap();
        for hart in 0..9u32 {
            assert_eq!(
                cluster.tcdm.array().load_u32(TCDM_BASE + hart * 8),
                hart * hart,
                "hart {hart}"
            );
        }
        assert!(summary.cycles < 200);
    }

    /// The hardware barrier holds early cores until the slowest arrives.
    #[test]
    fn barrier_synchronizes_all_cores() {
        let mut a = Assembler::new();
        a.csrr(R::T0, Csr::MHartId);
        // Stagger arrival: hart h burns 20·h cycles first.
        a.li(R::T1, 20);
        a.mul(R::T1, R::T1, R::T0);
        let spin = a.bind_label();
        a.addi(R::T1, R::T1, -1);
        a.bgtz(R::T1, spin);
        a.csrr(R::ZERO, Csr::Barrier);
        // After the barrier, every core stamps the cycle counter.
        a.csrr(R::T2, Csr::MCycle);
        a.slli(R::T3, R::T0, 3);
        a.li_addr(R::T4, TCDM_BASE + 0x100);
        a.add(R::T3, R::T3, R::T4);
        a.sw(R::T2, R::T3, 0);
        a.halt();
        let mut cluster = Cluster::new(a.finish().unwrap(), ClusterParams::default());
        cluster.run(10_000).unwrap();
        let stamps: Vec<u32> =
            (0..9).map(|h| cluster.tcdm.array().load_u32(TCDM_BASE + 0x100 + h * 8)).collect();
        let min = *stamps.iter().min().unwrap();
        let max = *stamps.iter().max().unwrap();
        // All cores resumed within a couple of cycles of each other,
        // despite arrival skew of ~160 cycles.
        assert!(max - min <= 4, "stamps {stamps:?}");
    }

    /// DMCC copies data in via DMA; a worker consumes it after a flag.
    #[test]
    fn dma_flag_handshake() {
        let n = 64u32;
        let src = MAIN_BASE;
        let dst = TCDM_BASE + 0x1000;
        let flag = TCDM_BASE + 0x8;
        let out = TCDM_BASE + 0x10;
        let mut a = Assembler::new();
        a.csrr(R::T0, Csr::MHartId);
        let worker = a.new_label();
        a.li(R::T1, 8);
        a.bne(R::T0, R::T1, worker);
        // DMCC: copy n words, poll completion, raise the flag.
        a.li_addr(R::A0, src);
        a.li_addr(R::A1, dst);
        a.dmsrc(R::A0, R::ZERO);
        a.dmdst(R::A1, R::ZERO);
        a.li(R::A2, i64::from(n) * 8);
        a.dmcpyi(R::A3, R::A2, 0);
        let poll = a.bind_label();
        a.dmstati(R::T2, 0);
        a.beqz(R::T2, poll);
        a.li(R::T3, 1);
        a.li_addr(R::T4, flag);
        a.sw(R::T3, R::T4, 0);
        a.halt();
        // Workers: hart 0 sums the data after the flag; others halt.
        a.bind(worker);
        let hart0 = a.new_label();
        a.beqz(R::T0, hart0);
        a.halt();
        a.bind(hart0);
        a.li_addr(R::T4, flag);
        let spin = a.bind_label();
        a.lw(R::T2, R::T4, 0);
        a.beqz(R::T2, spin);
        a.li_addr(R::A0, dst);
        a.li(R::T5, i64::from(n));
        a.li(R::T6, 0);
        let head = a.bind_label();
        a.lw(R::T2, R::A0, 0);
        a.addi(R::A0, R::A0, 8);
        a.add(R::T6, R::T6, R::T2);
        a.addi(R::T5, R::T5, -1);
        a.bnez(R::T5, head);
        a.li_addr(R::T4, out);
        a.sw(R::T6, R::T4, 0);
        a.halt();

        let mut cluster = Cluster::new(a.finish().unwrap(), ClusterParams::default());
        for i in 0..n {
            cluster.main.array_mut().store_u64(src + i * 8, u64::from(i));
        }
        cluster.run(50_000).unwrap();
        let expect: u32 = (0..n).sum();
        assert_eq!(cluster.tcdm.array().load_u32(out), expect);
        assert_eq!(cluster.summary().dma_stats.words_in, u64::from(n));
    }

    #[test]
    fn bank_conflicts_are_observed_under_contention() {
        // All workers hammer the same bank (same address).
        let mut a = Assembler::new();
        a.csrr(R::T0, Csr::MHartId);
        let end = a.new_label();
        a.li(R::T1, 8);
        a.beq(R::T0, R::T1, end); // DMCC idles
        a.li_addr(R::A0, TCDM_BASE + 0x2000);
        a.li(R::T2, 64);
        let head = a.bind_label();
        a.lw(R::T3, R::A0, 0);
        a.addi(R::T2, R::T2, -1);
        a.bnez(R::T2, head);
        a.bind(end);
        a.halt();
        let mut cluster = Cluster::new(a.finish().unwrap(), ClusterParams::default());
        cluster.run(50_000).unwrap();
        assert!(
            cluster.summary().tcdm_stats.conflicts > 100,
            "expected conflicts, got {:?}",
            cluster.summary().tcdm_stats
        );
    }

    #[test]
    fn deterministic_runs() {
        let build = || {
            let mut a = Assembler::new();
            a.csrr(R::T0, Csr::MHartId);
            a.li(R::T1, 50);
            let head = a.bind_label();
            a.addi(R::T1, R::T1, -1);
            a.bnez(R::T1, head);
            a.halt();
            a.finish().unwrap()
        };
        let c1 = Cluster::new(build(), ClusterParams::default()).run(10_000).unwrap().cycles;
        let c2 = Cluster::new(build(), ClusterParams::default()).run(10_000).unwrap().cycles;
        assert_eq!(c1, c2);
    }
}
