//! Post-mortem flight-recorder fixtures: a forced deadlock (two harts
//! spinning on each other's flag words) must be classified `deadlock`
//! with the right blame cycle, and a one-sided spin must stay `slow`.

use issr_cluster::cluster::{Cluster, ClusterParams};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;
use issr_mem::map::TCDM_BASE;
use issr_trace::Classification;

/// Flag word hart 0 owns (would write; never does in the deadlock).
const FLAG_A: u32 = TCDM_BASE + 0x20;
/// Flag word hart 1 owns.
const FLAG_B: u32 = TCDM_BASE + 0x28;

/// Hart 0 spins on hart 1's flag; hart 1 spins on hart 0's flag (when
/// `cross` is set; otherwise hart 1 halts and only hart 0 spins —
/// stuck, but not deadlocked). Everyone else halts immediately.
fn spin_program(cross: bool) -> Program {
    let mut a = Assembler::new();
    a.csrr(R::T0, Csr::MHartId);
    let h0 = a.new_label();
    let h1 = a.new_label();
    a.beqz(R::T0, h0);
    a.li(R::T1, 1);
    a.beq(R::T0, R::T1, h1);
    a.halt();
    a.bind(h0);
    a.li_addr(R::T4, FLAG_B);
    let spin0 = a.bind_label();
    a.lw(R::T2, R::T4, 0);
    a.beqz(R::T2, spin0);
    a.halt();
    a.bind(h1);
    if cross {
        a.li_addr(R::T4, FLAG_A);
        let spin1 = a.bind_label();
        a.lw(R::T2, R::T4, 0);
        a.beqz(R::T2, spin1);
    }
    a.halt();
    a.finish().unwrap()
}

fn declare_flags(cluster: &mut Cluster) {
    cluster.declare_sync_word(FLAG_A, 0);
    cluster.declare_sync_word(FLAG_B, 1);
}

#[test]
fn crossed_spins_classify_as_deadlock_with_blame_cycle() {
    let mut cluster = Cluster::new(spin_program(true), ClusterParams::default());
    declare_flags(&mut cluster);
    let timeout = cluster.run(2_000).expect_err("the crossed spin can never finish");
    let pm = timeout.post_mortem.as_ref().expect("run() arms the recorder and dumps");
    assert_eq!(pm.classification, Classification::Deadlock);
    assert_eq!(
        pm.blame_cycle,
        vec!["c0 hart 0".to_string(), "c0 hart 1".to_string()],
        "the blame cycle is exactly the two crossed spinners, min-first"
    );
    // Both spinners are reported stuck with the address they poll.
    let h0 = pm.stuck.iter().find(|s| s.hart == 0).expect("hart 0 stuck");
    let h1 = pm.stuck.iter().find(|s| s.hart == 1).expect("hart 1 stuck");
    assert_eq!(h0.polls, Some(FLAG_B));
    assert_eq!(h1.polls, Some(FLAG_A));
    // A busy-wait spin is not hardware-blocked (the hart alternates
    // issuing the poll and waiting for its load), so the wait graph
    // carries no edges here — the deadlock shows up in the poll edges
    // above — and the recorder ring carries the Active/Idle heartbeat.
    assert_eq!(pm.wait_graph.total(), 0, "spin loops are not hardware-blocked");
    assert!(!pm.transitions.is_empty(), "the flight recorder saw transitions");
    // The human rendering carries the verdict, and the Perfetto sidecar
    // is a well-formed trace document.
    let text = format!("{timeout}");
    assert!(text.contains("deadlock"), "timeout display must carry the verdict:\n{text}");
    assert!(text.contains("c0 hart 0"), "display names the blamed units:\n{text}");
    let sidecar = pm.sidecar_json();
    assert!(sidecar.get("traceEvents").is_some());
}

#[test]
fn one_sided_spin_classifies_as_slow() {
    let mut cluster = Cluster::new(spin_program(false), ClusterParams::default());
    declare_flags(&mut cluster);
    let timeout = cluster.run(2_000).expect_err("the orphan spin can never finish");
    let pm = timeout.post_mortem.as_ref().expect("post-mortem present");
    // Hart 0 polls hart 1's flag, but hart 1 halted: no edge among the
    // stuck set, hence no cycle — stuck, but not provably deadlocked.
    assert_eq!(pm.classification, Classification::Slow);
    assert!(pm.blame_cycle.is_empty());
    assert_eq!(pm.stuck.len(), 1);
    assert_eq!(pm.stuck[0].name, "c0 hart 0");
}

#[test]
fn post_mortem_is_timing_neutral() {
    // The same deadlock with and without an explicit (larger) recorder
    // times out at the same cycle with identical stuck sets: recording
    // reads only latched state.
    let run = |arm: bool| {
        let mut cluster = Cluster::new(spin_program(true), ClusterParams::default());
        declare_flags(&mut cluster);
        if arm {
            cluster.enable_flight_recorder(1 << 16, 0);
        }
        cluster.run(1_500).expect_err("deadlock")
    };
    let plain = run(false);
    let armed = run(true);
    assert_eq!(plain.stuck, armed.stuck);
    assert_eq!(plain.post_mortem.as_ref().unwrap().at, armed.post_mortem.as_ref().unwrap().at);
}
