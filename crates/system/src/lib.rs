//! Multi-cluster scale-out of the ISSR cluster.
//!
//! The paper's single Snitch cluster is the building block of its
//! successor systems: Occamy scales the same SSR/ISSR cores to hundreds
//! of harts across many clusters behind shared HBM, and at that scale
//! main-memory bandwidth — not the FPU — becomes the binding
//! constraint. This crate provides that system level: a [`System`] of N
//! [`issr_cluster::cluster::Cluster`]s sharing one
//! [`issr_mem::main_mem::MainMemory`] behind a bandwidth-arbitrated
//! interconnect model, with contention counted and surfaced through
//! [`SystemSummary`].

pub mod system;
