//! The multi-cluster system model and its run harness.
//!
//! N clusters — each the paper's eight-worker Snitch cluster with its
//! private TCDM and 512-bit DMA engine — share one main memory behind a
//! bandwidth-arbitrated interconnect. Arbitration is a rotating
//! round-robin grant: every system cycle the shared memory's per-cycle
//! word budget is reset and the clusters tick in rotated order, so the
//! first cluster in this cycle's order draws bandwidth first and the
//! rotation makes the grant fair over time. Denied word requests stall
//! the requesting DMA engine for the cycle and are counted
//! ([`issr_mem::main_mem::MainMemStats::dma_denied`],
//! [`issr_mem::dma::DmaStats::stall_cycles`]) — the contention signal
//! the scaling benchmarks report.
//!
//! Inter-cluster synchronization uses main-memory words: ordinary flag
//! words over the narrow (core) path, plus one hardware fetch-and-add
//! ticket counter ([`System::set_work_queue`]) from which the clusters'
//! DMCCs claim row-panel tiles of a shared work queue.

use issr_cluster::cluster::{Cluster, ClusterParams, ClusterSummary, ClusterTracks};
use issr_isa::asm::Program;
use issr_mem::dma::DmaStats;
use issr_mem::main_mem::{MainMemStats, MainMemory};
use issr_mem::map::{MAIN_BASE, MAIN_SIZE};
use issr_snitch::cc::{SimTimeout, StuckHart};
use issr_snitch::core::Trap;
use issr_trace::blackbox::DEFAULT_BLACKBOX_CAP;
use issr_trace::{merge::merge_all, PostMortem, StatMerge, TraceRecorder, WaitGraph};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// System configuration.
#[derive(Clone, Copy, Debug)]
pub struct SystemParams {
    /// Clusters sharing the main memory.
    pub n_clusters: usize,
    /// Per-cluster configuration (all clusters identical).
    pub cluster: ClusterParams,
    /// Aggregate main-memory bandwidth in words per cycle per direction,
    /// shared by all clusters. The default (16) is two cluster ports'
    /// worth: one cluster cannot saturate it alone, four contend — the
    /// regime the scaling studies probe.
    pub dma_words_per_cycle: u32,
    /// Per-transfer main-memory access latency in cycles (burst setup).
    pub dma_latency: u64,
    /// Host threads ticking the clusters. `0` resolves the process-wide
    /// default ([`set_default_threads`], then the `ISSR_THREADS`
    /// environment variable, then the machine's available parallelism);
    /// any value is clamped to `[1, n_clusters]`. Results are
    /// bit-identical at every thread count: only the cluster-local
    /// phases run concurrently, the shared interconnect is always
    /// replayed serially in grant order.
    pub threads: usize,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self {
            n_clusters: 2,
            cluster: ClusterParams::default(),
            dma_words_per_cycle: 16,
            dma_latency: 8,
            threads: 0,
        }
    }
}

/// Process-wide default for [`SystemParams::threads] `== 0`, set once
/// by a bench binary's `--threads` flag (0 = unset, fall through to
/// `ISSR_THREADS` / available parallelism).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default host thread count that
/// [`SystemParams::threads`]` == 0` resolves to. The bench binaries'
/// `--threads` flag calls this once at startup.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Resolves a [`SystemParams::threads`] value: explicit > process-wide
/// default > `ISSR_THREADS` > available parallelism, clamped to
/// `[1, n_clusters]` (more threads than clusters cannot help).
#[must_use]
pub fn resolve_threads(explicit: usize, n_clusters: usize) -> usize {
    let picked = if explicit > 0 {
        explicit
    } else {
        let global = DEFAULT_THREADS.load(Ordering::Relaxed);
        if global > 0 {
            global
        } else {
            let env = std::env::var("ISSR_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(0);
            if env > 0 {
                env
            } else {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
        }
    };
    picked.clamp(1, n_clusters.max(1))
}

/// A phase job for the cluster thread pool.
#[derive(Clone, Copy, Debug)]
enum Job {
    /// Run [`Cluster::tick_compute`] on the worker's clusters.
    Compute,
    /// Run [`Cluster::tick_mem`] on the worker's clusters.
    Mem,
    /// Shut the worker down.
    Exit,
}

/// Raw cluster pointers handed to one pool worker for one phase.
///
/// Safety: the batches of one phase cover pairwise-disjoint clusters
/// (static assignment by index), `Cluster` owns all its state (no
/// shared interior mutability), the clusters outlive the phase (the
/// dispatching thread blocks until every worker reports done), and the
/// backing `Vec<Cluster>` is not resized while a phase is in flight.
struct ClusterBatch(Vec<*mut Cluster>);
unsafe impl Send for ClusterBatch {}

/// A persistent pool of `threads - 1` worker threads (the dispatching
/// thread is worker 0) that tick the cluster-local phases in parallel.
/// Cluster `i` is always handled by thread `i % threads`: assignment is
/// static, and since the phases it runs are cluster-local, results do
/// not depend on the assignment or the thread count at all.
struct TickPool {
    txs: Vec<mpsc::Sender<(Job, ClusterBatch)>>,
    done_rx: mpsc::Receiver<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
    n_threads: usize,
}

impl std::fmt::Debug for TickPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickPool").field("n_threads", &self.n_threads).finish()
    }
}

impl TickPool {
    fn new(n_threads: usize) -> Self {
        assert!(n_threads >= 2, "a pool below two threads is the inline path");
        let (done_tx, done_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(n_threads - 1);
        let mut handles = Vec::with_capacity(n_threads - 1);
        for _ in 1..n_threads {
            let (tx, rx) = mpsc::channel::<(Job, ClusterBatch)>();
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok((job, batch)) = rx.recv() {
                    match job {
                        Job::Compute => {
                            for &c in &batch.0 {
                                unsafe { (*c).tick_compute() };
                            }
                        }
                        Job::Mem => {
                            for &c in &batch.0 {
                                unsafe { (*c).tick_mem() };
                            }
                        }
                        Job::Exit => break,
                    }
                    if done.send(()).is_err() {
                        break;
                    }
                }
            }));
            txs.push(tx);
        }
        Self { txs, done_rx, handles, n_threads }
    }

    /// Runs one cluster-local phase across the pool: dispatches every
    /// other thread's share, ticks this thread's own share, then blocks
    /// until all workers report done (the barrier the serial
    /// interconnect phase relies on).
    fn phase(&self, clusters: &mut [Cluster], job: Job) {
        let t = self.n_threads;
        let base = clusters.as_mut_ptr();
        for (w, tx) in self.txs.iter().enumerate() {
            let batch: Vec<*mut Cluster> = (0..clusters.len())
                .filter(|i| i % t == w + 1)
                .map(|i| unsafe { base.add(i) })
                .collect();
            tx.send((job, ClusterBatch(batch))).expect("pool worker alive");
        }
        for i in (0..clusters.len()).step_by(t) {
            let c = unsafe { &mut *base.add(i) };
            match job {
                Job::Compute => c.tick_compute(),
                Job::Mem => {
                    c.tick_mem();
                }
                Job::Exit => unreachable!("Exit is sent only on drop"),
            }
        }
        for _ in &self.txs {
            self.done_rx.recv().expect("pool worker alive");
        }
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send((Job::Exit, ClusterBatch(Vec::new())));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Result of a completed system run.
#[derive(Clone, Debug)]
pub struct SystemSummary {
    /// Total cycles until every cluster went quiescent.
    pub cycles: u64,
    /// Per-cluster summaries (cycles, worker metrics, DMA/TCDM stats).
    pub clusters: Vec<ClusterSummary>,
    /// Shared main-memory interface counters (contention included).
    pub main: MainMemStats,
    /// Cycles in which at least one cluster moved DMA words while at
    /// least one worker (any cluster) was inside its ROI — the
    /// DMA/compute overlap the double-buffered kernels exist for.
    pub overlap_cycles: u64,
}

impl SystemSummary {
    /// Total multiply-accumulates retired across all clusters' workers.
    #[must_use]
    pub fn total_fmadds(&self) -> u64 {
        self.clusters.iter().map(ClusterSummary::total_fmadds).sum()
    }

    /// All traps across the system, tagged with their cluster index.
    #[must_use]
    pub fn traps(&self) -> Vec<(usize, Trap)> {
        self.clusters
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.traps.iter().map(move |t| (i, *t)))
            .collect()
    }

    /// All clusters' DMA statistics folded into one (the single
    /// aggregation path every total below reads from).
    #[must_use]
    pub fn merged_dma_stats(&self) -> DmaStats {
        merge_all(self.clusters.iter().map(|c| &c.dma_stats))
    }

    /// Total DMA words moved by all clusters (both directions).
    #[must_use]
    pub fn total_dma_words(&self) -> u64 {
        let dma = self.merged_dma_stats();
        dma.words_in + dma.words_out
    }

    /// Total cycles DMA engines stalled on denied main-memory bandwidth.
    #[must_use]
    pub fn total_dma_stalls(&self) -> u64 {
        self.merged_dma_stats().stall_cycles
    }

    /// Fraction of DMA word requests denied by the shared interface —
    /// zero on an uncontended run, grows with cluster count.
    #[must_use]
    pub fn contention_ratio(&self) -> f64 {
        let served = self.main.wide_beats;
        if served + self.main.dma_denied == 0 {
            return 0.0;
        }
        self.main.dma_denied as f64 / (served + self.main.dma_denied) as f64
    }
}

/// N clusters behind one bandwidth-arbitrated main memory.
#[derive(Debug)]
pub struct System {
    /// The clusters (identical programs; `mhartid` dispatches within a
    /// cluster, the work queue distinguishes clusters dynamically).
    pub clusters: Vec<Cluster>,
    /// The shared main memory.
    pub main: MainMemory,
    /// Round-robin rotation pointer (this cycle's first-granted cluster).
    rr: usize,
    now: u64,
    overlap_cycles: u64,
    trace: Option<SystemTrace>,
    /// Worker pool for the cluster-local phases; `None` below two
    /// resolved threads (the zero-overhead inline path).
    pool: Option<TickPool>,
    /// Resolved host thread count (≥ 1).
    n_threads: usize,
    /// Per-cluster quiescence, memoized by [`System::run`]: halting is
    /// terminal, so a cluster once quiescent is never re-checked.
    done: Vec<bool>,
}

/// The opt-in interval recorder plus the per-cluster track handles.
#[derive(Debug)]
struct SystemTrace {
    rec: TraceRecorder,
    tracks: Vec<ClusterTracks>,
}

impl System {
    /// Builds the system; every cluster runs `program` (SPMD within the
    /// cluster via `mhartid`, dynamic tile claims across clusters).
    #[must_use]
    pub fn new(program: Program, params: SystemParams) -> Self {
        assert!(params.n_clusters >= 1, "a system needs at least one cluster");
        let clusters = (0..params.n_clusters)
            .map(|_| Cluster::new_for_system(program.clone(), params.cluster))
            .collect();
        let main = MainMemory::new(MAIN_BASE, MAIN_SIZE)
            .with_dma_bandwidth(params.dma_words_per_cycle)
            .with_dma_latency(params.dma_latency);
        let n_threads = resolve_threads(params.threads, params.n_clusters);
        let pool = (n_threads >= 2).then(|| TickPool::new(n_threads));
        Self {
            clusters,
            main,
            rr: 0,
            now: 0,
            overlap_cycles: 0,
            trace: None,
            pool,
            n_threads,
            done: vec![false; params.n_clusters],
        }
    }

    /// The resolved host thread count this system ticks with.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Enables interval tracing with a ring of at most `cap` spans:
    /// registers one track per hart, per worker lane and per DMA engine
    /// in every cluster (cluster index = Perfetto process id) and
    /// samples them each cycle from then on. The recorder only *reads*
    /// latched per-tick state, so enabling it cannot change timing.
    pub fn enable_tracing(&mut self, cap: usize) {
        let mut rec = TraceRecorder::new(cap);
        let tracks = self
            .clusters
            .iter()
            .enumerate()
            .map(|(pid, c)| c.register_tracks(&mut rec, pid as u32))
            .collect();
        self.trace = Some(SystemTrace { rec, tracks });
    }

    /// Closes all open spans and returns the Chrome trace-event
    /// document, or `None` if tracing was never enabled. Tracing
    /// continues if the system keeps running afterwards.
    pub fn trace_json(&mut self) -> Option<issr_trace::Json> {
        let now = self.now;
        self.trace.as_mut().map(|t| {
            t.rec.finish(now);
            t.rec.to_chrome_json()
        })
    }

    /// The live recorder, if tracing is enabled (tests inspect track
    /// and span counts through this).
    #[must_use]
    pub fn trace_recorder(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref().map(|t| &t.rec)
    }

    /// Designates `addr` (in main memory) as the hardware fetch-and-add
    /// ticket counter of the shared work queue and zeroes it.
    pub fn set_work_queue(&mut self, addr: u32) {
        self.main.array_mut().store_u64(addr, 0);
        self.main.set_fetch_add_word(addr);
    }

    /// Arms every cluster's post-mortem flight recorder with a ring of
    /// `cap` recent transitions each ([`System::run`] does this
    /// automatically with the default capacity). Timing-neutral.
    pub fn enable_flight_recorders(&mut self, cap: usize) {
        for (ci, cluster) in self.clusters.iter_mut().enumerate() {
            cluster.enable_flight_recorder(cap, ci);
        }
    }

    /// Arms every cluster's live wait-graph recorder (see
    /// [`Cluster::enable_waitgraph`]). Timing-neutral and provably
    /// redundant with the summary-derived graph — property-tested equal.
    pub fn enable_waitgraphs(&mut self) {
        for cluster in &mut self.clusters {
            cluster.enable_waitgraph();
        }
    }

    /// Declares `addr` a synchronization word owned by `owner_hart` of
    /// cluster `cluster` — see [`Cluster::declare_sync_word`].
    pub fn declare_sync_word(&mut self, cluster: usize, addr: u32, owner_hart: u32) {
        self.clusters[cluster].declare_sync_word(addr, owner_hart);
    }

    /// The system-wide post-mortem: every cluster's report merged (stuck
    /// units, wait graphs, recorder contents, blame cycles).
    #[must_use]
    pub fn post_mortem(&self) -> PostMortem {
        PostMortem::merge(
            self.clusters.iter().enumerate().map(|(ci, c)| c.post_mortem(ci)).collect(),
        )
    }

    /// The system's wait graph so far: every cluster's live recorder
    /// merged. Empty unless the clusters' live recorders are armed.
    #[must_use]
    pub fn live_wait_graph(&self) -> WaitGraph {
        let mut g = WaitGraph::new();
        for c in &self.clusters {
            if let Some(cg) = c.live_wait_graph() {
                g.merge_from(cg);
            }
        }
        g
    }

    /// Whether every cluster halted and drained.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.clusters.iter().all(Cluster::quiescent)
    }

    /// Advances the whole system one cycle: one shared-bandwidth window,
    /// clusters granted in rotating round-robin order.
    ///
    /// The cycle is three phases. Compute (cores) and memory (TCDM) are
    /// cluster-local and run on the thread pool when one is configured;
    /// the interconnect phase — the only one that touches the shared
    /// main memory — always runs serially on this thread, cluster by
    /// cluster in the rotated grant order. Serial and pooled ticks are
    /// therefore bit-identical: the phases commute across clusters, the
    /// single serialization point replays in the same order.
    pub fn tick(&mut self) {
        issr_trace::host::cycle();
        self.main.begin_dma_cycle();
        let n = self.clusters.len();
        let mut dma_moved = false;
        let mut in_roi = false;
        if let Some(pool) = &self.pool {
            // Pooled: cluster-internal profiler phases no-op on worker
            // threads, so bill the dispatch barriers here instead.
            let mut host_t = issr_trace::host::phase_start();
            pool.phase(&mut self.clusters, Job::Compute);
            issr_trace::host::phase(&mut host_t, "pool_compute", n as u64, 0);
            for i in 0..n {
                let k = (self.rr + i) % n;
                self.clusters[k].tick_interconnect(&mut self.main);
            }
            issr_trace::host::phase(&mut host_t, "pool_interconnect", n as u64, 0);
            pool.phase(&mut self.clusters, Job::Mem);
            issr_trace::host::phase(&mut host_t, "pool_mem", n as u64, 0);
            for cluster in &self.clusters {
                let activity = cluster.last_activity();
                dma_moved |= activity.dma_words_moved > 0;
                in_roi |= activity.workers_in_roi;
            }
        } else {
            for i in 0..n {
                let k = (self.rr + i) % n;
                let activity = self.clusters[k].tick_shared(&mut self.main);
                dma_moved |= activity.dma_words_moved > 0;
                in_roi |= activity.workers_in_roi;
            }
        }
        if dma_moved && in_roi {
            self.overlap_cycles += 1;
        }
        if let Some(trace) = &mut self.trace {
            // A saturated recorder accepts nothing: skip the walk over
            // every track of every cluster (pure overhead then).
            if !trace.rec.saturated() {
                for (cluster, tracks) in self.clusters.iter().zip(trace.tracks.iter()) {
                    cluster.trace_sample(&mut trace.rec, tracks, self.now);
                }
            }
        }
        self.rr = (self.rr + 1) % n;
        self.now += 1;
    }

    /// Runs to quiescence.
    ///
    /// # Errors
    /// Returns [`SimTimeout`] if the system does not finish in
    /// `max_cycles` (deadlock or bug); the error lists every hart that
    /// was not quiescent, with its cluster index and current PC.
    pub fn run(&mut self, max_cycles: u64) -> Result<SystemSummary, SimTimeout> {
        // Arm default flight recorders so a timeout dump always carries
        // recent history (recording is timing-neutral; see the cluster).
        // Only unarmed clusters: re-arming would reset a caller's ring.
        for (ci, cluster) in self.clusters.iter_mut().enumerate() {
            if !cluster.flight_recorder_armed() {
                cluster.enable_flight_recorder(DEFAULT_BLACKBOX_CAP, ci);
            }
        }
        let deadline = self.now + max_cycles;
        while self.now < deadline {
            self.tick();
            // Quiescence is terminal (halting is sticky, queues only
            // drain), so clusters already seen quiescent are skipped.
            let mut all = true;
            for (done, cluster) in self.done.iter_mut().zip(&self.clusters) {
                if !*done {
                    *done = cluster.quiescent();
                }
                all &= *done;
            }
            if all {
                return Ok(self.summary());
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.rec.mark(0, format!("sim timeout after {max_cycles} cycles"), self.now);
        }
        let stuck: Vec<StuckHart> =
            self.clusters.iter().enumerate().flat_map(|(ci, c)| c.stuck_harts(ci)).collect();
        let pm = self.post_mortem();
        Err(SimTimeout::new(max_cycles, stuck).with_post_mortem(pm))
    }

    /// Snapshot of the run statistics.
    #[must_use]
    pub fn summary(&self) -> SystemSummary {
        SystemSummary {
            cycles: self.now,
            clusters: self.clusters.iter().map(Cluster::summary).collect(),
            main: self.main.stats,
            overlap_cycles: self.overlap_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_isa::asm::Assembler;
    use issr_isa::reg::IntReg as R;
    use issr_isa::Csr;
    use issr_mem::map::TCDM_BASE;

    fn params(n_clusters: usize) -> SystemParams {
        SystemParams { n_clusters, ..SystemParams::default() }
    }

    /// Every cluster runs the same SPMD program against its private
    /// TCDM; the system reaches quiescence with all results in place.
    #[test]
    fn clusters_execute_independently() {
        let mut a = Assembler::new();
        a.csrr(R::T0, Csr::MHartId);
        a.mul(R::T1, R::T0, R::T0);
        a.slli(R::T2, R::T0, 3);
        a.li_addr(R::T3, TCDM_BASE);
        a.add(R::T2, R::T2, R::T3);
        a.sw(R::T1, R::T2, 0);
        a.halt();
        let mut sys = System::new(a.finish().unwrap(), params(3));
        let summary = sys.run(10_000).unwrap();
        for cluster in &sys.clusters {
            for hart in 0..9u32 {
                assert_eq!(cluster.tcdm.array().load_u32(TCDM_BASE + hart * 8), hart * hart);
            }
        }
        assert_eq!(summary.clusters.len(), 3);
        assert!(summary.traps().is_empty());
    }

    /// Builds a program whose DMCCs copy `words` words from main memory
    /// into their cluster's TCDM; workers halt immediately.
    fn dma_pull_program(words: u32, n_workers: u32) -> Program {
        let mut a = Assembler::new();
        a.csrr(R::T0, Csr::MHartId);
        let dmcc = a.new_label();
        a.li(R::T1, i64::from(n_workers));
        a.beq(R::T0, R::T1, dmcc);
        a.halt();
        a.bind(dmcc);
        a.li_addr(R::A0, MAIN_BASE);
        a.li_addr(R::A1, TCDM_BASE + 0x1000);
        a.dmsrc(R::A0, R::ZERO);
        a.dmdst(R::A1, R::ZERO);
        a.li(R::A2, i64::from(words) * 8);
        a.dmcpyi(R::ZERO, R::A2, 0);
        let poll = a.bind_label();
        a.dmstati(R::T2, 0);
        a.beqz(R::T2, poll);
        a.halt();
        a.finish().unwrap()
    }

    /// Two clusters pulling concurrently over a one-port budget each see
    /// roughly half the solo throughput, and the contention counters
    /// move.
    #[test]
    fn shared_bandwidth_contention_is_measured() {
        let words = 512u32;
        let n_workers = ClusterParams::default().n_workers as u32;
        let solo = {
            let mut p = params(1);
            p.dma_words_per_cycle = 8;
            p.dma_latency = 0;
            let mut sys = System::new(dma_pull_program(words, n_workers), p);
            sys.run(100_000).unwrap().cycles
        };
        let mut p = params(2);
        p.dma_words_per_cycle = 8;
        p.dma_latency = 0;
        let mut sys = System::new(dma_pull_program(words, n_workers), p);
        let summary = sys.run(100_000).unwrap();
        assert!(
            summary.cycles as f64 > 1.7 * solo as f64,
            "two clusters on one port must nearly halve throughput \
             (solo {solo}, contended {})",
            summary.cycles
        );
        assert!(summary.main.dma_denied > 0, "denials must be counted");
        assert!(summary.total_dma_stalls() > 0, "stalled engines must be counted");
        assert!(summary.contention_ratio() > 0.1);
        // Both clusters pulled the full block.
        for c in &sys.clusters {
            assert_eq!(c.dma.stats().words_in, u64::from(words));
        }
    }

    /// DMCCs across clusters claim unique, gap-free tickets from the
    /// hardware fetch-and-add work queue.
    #[test]
    fn work_queue_tickets_are_unique() {
        let n_workers = ClusterParams::default().n_workers as u32;
        let queue = MAIN_BASE + 0x100;
        let claims = 4u32;
        let mut a = Assembler::new();
        a.csrr(R::T0, Csr::MHartId);
        let dmcc = a.new_label();
        a.li(R::T1, i64::from(n_workers));
        a.beq(R::T0, R::T1, dmcc);
        a.halt();
        a.bind(dmcc);
        // Claim `claims` tickets, store each to a TCDM log slot.
        a.li(R::S0, 0);
        a.li_addr(R::S1, TCDM_BASE + 0x40);
        a.li_addr(R::S2, queue);
        let head = a.bind_label();
        a.lw(R::T2, R::S2, 0); // fetch-and-add claim
        a.sw(R::T2, R::S1, 0);
        a.addi(R::S1, R::S1, 8);
        a.addi(R::S0, R::S0, 1);
        a.li(R::T3, i64::from(claims));
        a.blt(R::S0, R::T3, head);
        a.halt();
        let mut sys = System::new(a.finish().unwrap(), params(3));
        sys.set_work_queue(queue);
        sys.run(100_000).unwrap();
        let mut seen: Vec<u32> = sys
            .clusters
            .iter()
            .flat_map(|c| (0..claims).map(|i| c.tcdm.array().load_u32(TCDM_BASE + 0x40 + i * 8)))
            .collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..3 * claims).collect();
        assert_eq!(seen, expect, "tickets must be unique and gap-free");
        assert_eq!(sys.main.array().load_u64(queue), u64::from(3 * claims));
    }

    /// Tracing is observational: enabling it changes no cycle counts,
    /// and the export carries one named track per hart, per lane and
    /// per DMA engine in every cluster.
    #[test]
    fn tracing_is_timing_neutral_and_tracks_every_unit() {
        let n_workers = ClusterParams::default().n_workers;
        let build = || dma_pull_program(128, n_workers as u32);
        let plain = System::new(build(), params(2)).run(100_000).unwrap();
        let mut sys = System::new(build(), params(2));
        sys.enable_tracing(4096);
        let traced = sys.run(100_000).unwrap();
        assert_eq!(traced.cycles, plain.cycles, "tracing must not alter timing");
        assert_eq!(traced.total_dma_words(), plain.total_dma_words());
        // Tracks: per cluster, one per worker hart + 2 lanes each,
        // the DMCC and the DMA engine.
        let per_cluster = n_workers + 2 * n_workers + 1 + 1;
        let rec = sys.trace_recorder().expect("tracing enabled");
        assert_eq!(rec.n_tracks(), 2 * per_cluster);
        assert!(rec.n_spans() > 0, "the DMA pull must produce busy spans");
        // Per-cluster DMA attribution covers every cluster cycle.
        for c in &traced.clusters {
            assert_eq!(c.attr.dma.total(), c.cycles);
        }
        let doc = sys.trace_json().expect("export");
        let events = doc.get("traceEvents").and_then(issr_trace::Json::as_arr).expect("events");
        let metas = events
            .iter()
            .filter(|e| e.get("ph").and_then(issr_trace::Json::as_str) == Some("M"))
            .count();
        assert_eq!(metas, 2 * per_cluster, "every track must be named");
    }

    #[test]
    fn deterministic_runs() {
        let build = || dma_pull_program(64, ClusterParams::default().n_workers as u32);
        let c1 = System::new(build(), params(4)).run(100_000).unwrap().cycles;
        let c2 = System::new(build(), params(4)).run(100_000).unwrap().cycles;
        assert_eq!(c1, c2);
    }
}
