//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses.
//!
//! The build environment has no access to a crate registry, so the
//! workload generators depend on this minimal, API-compatible
//! implementation instead of the real `rand`. Only what the repository
//! calls is provided: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! ranges, and [`seq::SliceRandom`] shuffles. The generator is a
//! xoshiro256** stream seeded through SplitMix64 — statistically solid
//! for test workloads and fully deterministic, though its output differs
//! from the real `StdRng` (every consumer seeds explicitly, so only
//! determinism matters).

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: [0; 4].map(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Shuffling methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the whole slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Partial Fisher–Yates: after the call, the first `amount`
        /// elements are a uniform random sample of the slice (in random
        /// order). Returns the sampled prefix and the remainder.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            let len = self.len();
            let _ = self.partial_shuffle(rng, len);
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let amount = amount.min(len);
            for i in 0..amount {
                let j = (i..len).sample_single(rng);
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..64).all(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn uniform_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "counts {counts:?}");
    }

    #[test]
    fn partial_shuffle_prefix_is_a_sample() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut pool: Vec<usize> = (0..100).collect();
        let (prefix, _) = pool.partial_shuffle(&mut rng, 10);
        let mut sorted = prefix.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "sampled elements must be distinct");
    }
}
