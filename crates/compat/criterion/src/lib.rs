//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build environment has no access to a crate registry, so
//! `benches/figures.rs` runs on this minimal implementation: benchmark
//! groups, `bench_function`, `iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of statistical analysis it runs
//! each benchmark `sample_size` times and prints the mean wall-clock
//! time per iteration.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { samples: 10 }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iters: 0, start: Instant::now() };
        bencher.start = Instant::now();
        for _ in 0..self.samples {
            f(&mut bencher);
        }
        let elapsed = bencher.start.elapsed();
        let per_iter = elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!("  {id}: {:.3} ms/iter ({} iters)", per_iter * 1e3, bencher.iters);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    start: Instant,
}

impl Bencher {
    /// Runs the benchmarked routine once per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.iters += 1;
        black_box(f());
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.sample_size(3).bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
