//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! The build environment has no access to a crate registry, so the
//! property tests run on this minimal, API-compatible implementation:
//! a [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range/tuple/[`strategy::Just`]/[`any`] strategies, the
//! [`collection`] builders, and the [`proptest!`]/[`prop_oneof!`]/
//! `prop_assert*` macros. Unlike the real crate there is **no input
//! shrinking** — a failing case panics with its case number, and the
//! deterministic per-test seed makes every failure reproducible.

#![forbid(unsafe_code)]

pub use strategy::{any, Just, Strategy};

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The deterministic generator driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates the generator for one property, seeded from its name
        /// so failures reproduce across runs.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (built by
    /// [`prop_oneof!`]).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Creates the union of the given alternatives.
        ///
        /// # Panics
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let k = rng.gen_range(0..self.arms.len());
            self.arms[k].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait ArbValue {
        /// Samples an unconstrained value.
        fn arb(rng: &mut TestRng) -> Self;
    }

    impl ArbValue for bool {
        fn arb(rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl ArbValue for $t {
                fn arb(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbValue> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// The full-domain strategy for `T` (`any::<u32>()`, `any::<bool>()`).
    #[must_use]
    pub fn any<T: ArbValue>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by the collection builders.
    pub trait SizeRange {
        /// Samples a target length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>` (distinct elements).
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample_len(rng);
            let mut set = BTreeSet::new();
            // Bounded retries: a narrow element domain may not be able to
            // supply `target` distinct values.
            for _ in 0..(target * 10 + 32) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }

    /// Generates sets of distinct `element` values with a size in `size`.
    pub fn btree_set<S, L>(element: S, size: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `name(binding in strategy, ..)` runs
/// `cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Tag {
        X,
        Y,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u32..17, b in -4i32..4, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..4).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![Just(Tag::X), Just(Tag::Y)],
                         v in (0u8..4, 0u8..4).prop_map(|(x, y)| x + y)) {
            prop_assert!(t == Tag::X || t == Tag::Y);
            prop_assert!(v < 7);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..100, 2..9),
            s in crate::collection::btree_set(0usize..1000, 0..=5),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(s.len() <= 5);
        }

        #[test]
        fn flat_map_links_values(
            pair in (1usize..8).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u8..255, n))
            }),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u32..1000, 0u32..1000);
        let mut r1 = TestRng::deterministic("t");
        let mut r2 = TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
