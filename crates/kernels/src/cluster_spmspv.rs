//! Multicore cluster SpMSpV: sparse matrix × sparse vector on the
//! sparse-sparse streamer cluster.
//!
//! Mirrors [`crate::cluster_csrmv`]'s static row striping: `nrows` is
//! split into contiguous stripes of `⌈nrows / workers⌉` rows, worker *h*
//! owning stripe *h*; the shared sparse operand `x` stays resident.
//! Unlike CsrMV's DMA experiment the workload is TCDM-resident end to
//! end (the sparse-sparse kernels are latency-, not bandwidth-bound),
//! so no DMCC choreography is needed — every worker runs its stripe
//! independently and the cluster drains to quiescence.
//!
//! Per worker the row loop is the single-core kernel's
//! ([`crate::spmspv`]): BASE re-scans `x` with the software two-pointer
//! merge per row; ISSR launches one gather-A joiner job per row against
//! the statically configured B side (`x`), with the one-deep shadow
//! queue overlapping consecutive rows.

use crate::common::{emit_reduction_tree, emit_zero_accumulators, ACC0, FZ};
use crate::layout::{csr_addrs, fiber_addrs, store_csr, store_fiber, Arena, CsrAddrs, FiberAddrs};
use crate::variant::{issr_accumulators, log_width, KernelIndex, Variant};
use issr_cluster::cluster::{Cluster, ClusterParams, ClusterSummary};
use issr_core::cfg::{cfg_addr, join_cfg_word, reg as sreg, JoinerMode};
use issr_isa::asm::{Assembler, Program};
use issr_isa::instr::Stagger;
use issr_isa::reg::{FpReg, IntReg as R};
use issr_isa::Csr;
use issr_mem::map::TCDM_BASE;
use issr_snitch::cc::SimTimeout;
use issr_sparse::csr::CsrMatrix;
use issr_sparse::fiber::SparseFiber;

/// Start of the data region (above the flag/peripheral low addresses
/// the DMA experiments use, so layouts stay comparable).
const DATA_BASE: u32 = TCDM_BASE + 0x100;
/// Data region size (the rest of the TCDM).
const DATA_SIZE: u32 = issr_mem::map::TCDM_SIZE - 0x100;

/// The planned layout of one cluster SpMSpV run.
#[derive(Clone, Debug)]
pub struct ClusterSpmspvPlan {
    a: CsrAddrs,
    x: FiberAddrs,
    y: u32,
    nrows: u32,
    rows_per_worker: u32,
    n_workers: u32,
}

impl ClusterSpmspvPlan {
    /// Plans the TCDM-resident layout and the row striping.
    ///
    /// # Panics
    /// Panics if the workload does not fit the TCDM.
    #[must_use]
    pub fn new<I: KernelIndex>(m: &CsrMatrix<I>, x: &SparseFiber<I>, n_workers: u32) -> Self {
        let mut arena = Arena::new(DATA_BASE, DATA_SIZE);
        let a = csr_addrs::<I>(&mut arena, m.nrows() as u32, m.nnz() as u32);
        let x_addrs = fiber_addrs::<I>(&mut arena, x.nnz() as u32);
        let nrows = m.nrows() as u32;
        let y = arena.alloc(nrows.max(1) * 8, 8);
        Self {
            a,
            x: x_addrs,
            y,
            nrows,
            rows_per_worker: nrows.div_ceil(n_workers.max(1)),
            n_workers,
        }
    }

    /// Writes the workload into the cluster TCDM.
    pub fn marshal<I: KernelIndex>(
        &self,
        cluster: &mut Cluster,
        m: &CsrMatrix<I>,
        x: &SparseFiber<I>,
    ) {
        let mem = cluster.tcdm.array_mut();
        store_csr(mem, self.a, m);
        store_fiber(mem, self.x, x);
    }

    /// Reads the result vector back from the TCDM.
    #[must_use]
    pub fn read_y(&self, cluster: &Cluster) -> Vec<f64> {
        cluster.tcdm.array().load_f64_slice(self.y, self.nrows as usize)
    }
}

/// Emits the row-striped worker prologue shared by the cluster kernels:
/// computes the stripe `[a0, a0 + s2)` from the hartid (halting harts
/// with no rows), points `s0` at `&a.ptr[start + 1]`, seeds the A
/// cursors `s4`/`s5` from `ptr[start]` and `s1` at the worker's output
/// cursor `out_base + (start << out_shift)` (the dense `y` row for
/// SpMSpV, the resident `c.ptr` entry for SpGEMM).
pub(crate) fn emit_stripe_prologue<I: KernelIndex>(
    asm: &mut Assembler,
    rows_per_worker: u32,
    nrows: u32,
    a: CsrAddrs,
    out_base: u32,
    out_shift: i32,
) {
    let log_w = log_width::<I>();
    asm.li(R::T0, i64::from(rows_per_worker));
    asm.mul(R::A0, R::A7, R::T0); //    start row
    asm.li(R::T1, i64::from(nrows));
    let some_rows = asm.new_label();
    asm.blt(R::A0, R::T1, some_rows);
    asm.halt(); //                      stripe past the end
    asm.bind(some_rows);
    asm.sub(R::S2, R::T1, R::A0); //    rows remaining after start
    let clamp_ok = asm.new_label();
    asm.blt(R::S2, R::T0, clamp_ok);
    asm.mv(R::S2, R::T0); //            my row count = min(rpw, remaining)
    asm.bind(clamp_ok);
    asm.slli(R::T2, R::A0, 2);
    asm.li_addr(R::T3, a.ptr);
    asm.add(R::T2, R::T2, R::T3); //    &ptr[start]
    asm.lw(R::T4, R::T2, 0); //         ptr[start]
    asm.addi(R::S0, R::T2, 4);
    asm.slli(R::T5, R::T4, log_w);
    asm.li_addr(R::S4, a.idcs);
    asm.add(R::S4, R::S4, R::T5); //    A index cursor
    asm.slli(R::T5, R::T4, 3);
    asm.li_addr(R::S5, a.vals);
    asm.add(R::S5, R::S5, R::T5); //    A value cursor
    asm.slli(R::T5, R::A0, out_shift);
    asm.li_addr(R::S1, out_base);
    asm.add(R::S1, R::S1, R::T5); //    output cursor at `start`
}

/// Builds the SPMD cluster program (workers `0..n`; the DMCC, hart `n`,
/// halts immediately — the workload is resident).
///
/// # Panics
/// Panics for [`Variant::Ssr`] (see [`crate::spmspv::build_spvv_ss`]).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_cluster_spmspv<I: KernelIndex>(variant: Variant, plan: &ClusterSpmspvPlan) -> Program {
    assert!(
        matches!(variant, Variant::Base | Variant::Issr),
        "cluster SpMSpV defines BASE and ISSR variants only"
    );
    let log_w = log_width::<I>();
    let n_acc = issr_accumulators(I::IDX_SIZE);
    let mut asm = Assembler::new();
    asm.csrr(R::A7, Csr::MHartId);
    let worker = asm.new_label();
    asm.li(R::T0, i64::from(plan.n_workers));
    asm.blt(R::A7, R::T0, worker);
    asm.halt(); // the DMCC has nothing to move
    asm.bind(worker);
    asm.symbol("worker");
    emit_stripe_prologue::<I>(&mut asm, plan.rows_per_worker, plan.nrows, plan.a, plan.y, 3);
    match variant {
        Variant::Issr => {
            // Static joiner configuration: mode and the shared B side (x).
            asm.li(R::T0, i64::from(join_cfg_word(JoinerMode::GatherA, I::IDX_SIZE)));
            asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
            asm.li_addr(R::T0, plan.x.idcs);
            asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_IDX_B, 0));
            asm.li_addr(R::T0, plan.x.vals);
            asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_DATA_B, 0));
            asm.li(R::T0, i64::from(plan.x.nnz));
            asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_B, 0));
            asm.fcvt_d_w(FZ, R::ZERO);
            asm.csrsi(Csr::Ssr, 1);
            asm.roi_begin();
            let outer = asm.bind_label();
            asm.symbol("issr_row");
            let zero_row = asm.new_label();
            let row_done = asm.new_label();
            asm.lw(R::T5, R::S0, 0); //          ptr[i+1]
            asm.addi(R::S0, R::S0, 4);
            // Row nnz from the byte distance to the cursor's element.
            asm.slli(R::T1, R::T5, log_w);
            asm.li_addr(R::T2, plan.a.idcs);
            asm.add(R::T1, R::T1, R::T2); //     row end address
            asm.sub(R::T1, R::T1, R::S4); //     row bytes
            asm.srli(R::T1, R::T1, log_w); //    row nnz
            asm.beqz(R::T1, zero_row);
            asm.scfgwi(R::T1, cfg_addr(sreg::JOIN_NNZ_A, 0));
            asm.scfgwi(R::S5, cfg_addr(sreg::DATA_BASE, 0));
            asm.scfgwi(R::S4, cfg_addr(sreg::RPTR[0], 0)); // launch (retries)
            emit_zero_accumulators(&mut asm, ACC0, n_acc);
            asm.addi(R::T2, R::T1, -1);
            asm.frep_outer(R::T2, 1, Stagger::accumulator(n_acc));
            asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
            emit_reduction_tree(&mut asm, ACC0, n_acc);
            asm.fsd(ACC0, R::S1, 0);
            // Advance the A cursors behind the launch.
            asm.slli(R::T2, R::T1, log_w);
            asm.add(R::S4, R::S4, R::T2);
            asm.slli(R::T2, R::T1, 3);
            asm.add(R::S5, R::S5, R::T2);
            asm.j(row_done);
            asm.bind(zero_row);
            asm.fsd(FZ, R::S1, 0);
            asm.bind(row_done);
            asm.addi(R::S1, R::S1, 8);
            asm.addi(R::S2, R::S2, -1);
            asm.bnez(R::S2, outer);
            asm.roi_end();
            asm.csrci(Csr::Ssr, 1);
        }
        _ => {
            // BASE: the software two-pointer merge, x re-scanned per row.
            asm.li_addr(R::S6, plan.x.idcs);
            asm.li_addr(R::S7, plan.x.vals);
            asm.li_addr(R::S8, plan.x.idcs + plan.x.nnz * I::BYTES);
            let acc = FpReg::FS0;
            let (va, vx) = (FpReg::FT6, FpReg::FT7);
            asm.roi_begin();
            let outer = asm.bind_label();
            asm.symbol("base_row");
            asm.lw(R::T5, R::S0, 0); //          ptr[i+1]
            asm.addi(R::S0, R::S0, 4);
            asm.fcvt_d_w(acc, R::ZERO);
            asm.slli(R::T4, R::T5, log_w); //    row index end
            asm.li_addr(R::T6, plan.a.idcs);
            asm.add(R::T4, R::T4, R::T6);
            asm.mv(R::T2, R::S6); //             x cursors rewind per row
            asm.mv(R::T3, R::S7);
            let inner = asm.bind_label();
            let row_skip = asm.new_label();
            let row_done = asm.new_label();
            let adv_a = asm.new_label();
            let adv_x = asm.new_label();
            asm.beq(R::S4, R::T4, row_done); //  row exhausted
            asm.beq(R::T2, R::S8, row_skip); //  x exhausted
            I::emit_index_load(&mut asm, R::T0, R::S4, 0);
            I::emit_index_load(&mut asm, R::T1, R::T2, 0);
            asm.blt(R::T0, R::T1, adv_a);
            asm.blt(R::T1, R::T0, adv_x);
            asm.fld(va, R::S5, 0);
            asm.fld(vx, R::T3, 0);
            asm.fmadd_d(acc, va, vx, acc);
            asm.addi(R::S4, R::S4, I::BYTES as i32);
            asm.addi(R::S5, R::S5, 8);
            asm.bind(adv_x);
            asm.addi(R::T2, R::T2, I::BYTES as i32);
            asm.addi(R::T3, R::T3, 8);
            asm.j(inner);
            asm.bind(adv_a);
            asm.addi(R::S4, R::S4, I::BYTES as i32);
            asm.addi(R::S5, R::S5, 8);
            asm.j(inner);
            // x drained early: skip the rest of the row's fiber.
            asm.bind(row_skip);
            asm.sub(R::T0, R::T4, R::S4);
            asm.slli(R::T0, R::T0, 3 - log_w); // index bytes → value bytes
            asm.add(R::S5, R::S5, R::T0);
            asm.mv(R::S4, R::T4);
            asm.bind(row_done);
            asm.fsd(acc, R::S1, 0);
            asm.addi(R::S1, R::S1, 8);
            asm.addi(R::S2, R::S2, -1);
            asm.bnez(R::S2, outer);
            asm.roi_end();
        }
    }
    asm.halt();
    asm.finish().expect("cluster SpMSpV program assembles")
}

/// Result of one cluster SpMSpV run.
#[derive(Clone, Debug)]
pub struct ClusterSpmspvRun {
    /// The computed result vector (dense, `nrows` elements).
    pub y: Vec<f64>,
    /// Cluster-wide summary.
    pub summary: ClusterSummary,
}

/// Runs cluster SpMSpV end to end (marshal → simulate → read back) on
/// the sparse-sparse streamer cluster.
///
/// # Errors
/// Returns [`SimTimeout`] if the cluster deadlocks or exceeds its cycle
/// budget (a bug).
pub fn run_cluster_spmspv<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &SparseFiber<I>,
) -> Result<ClusterSpmspvRun, SimTimeout> {
    let params = ClusterParams { sssr: true, ..ClusterParams::default() };
    let plan = ClusterSpmspvPlan::new(m, x, params.n_workers as u32);
    let program = build_cluster_spmspv::<I>(variant, &plan);
    let mut cluster = Cluster::new(program, params);
    plan.marshal(&mut cluster, m, x);
    let merge_steps = m.nnz() as u64 + m.nrows() as u64 * (x.nnz() as u64 + 8);
    let summary = cluster.run(1_000_000 + 64 * merge_steps)?;
    assert!(summary.traps.is_empty(), "cluster cores trapped: {:?}", summary.traps);
    Ok(ClusterSpmspvRun { y: plan.read_y(&cluster), summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::dense::allclose;
    use issr_sparse::{gen, reference};

    fn check<I: KernelIndex>(
        variant: Variant,
        nrows: usize,
        ncols: usize,
        nnz: usize,
        x_nnz: usize,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let m = gen::csr_uniform::<I>(&mut rng, nrows, ncols, nnz);
        let x = gen::sparse_vector::<I>(&mut rng, ncols, x_nnz);
        let run = run_cluster_spmspv(variant, &m, &x).expect("cluster run finishes");
        assert!(run.summary.traps.is_empty(), "unexpected traps: {:?}", run.summary.traps);
        let expect = reference::spmspv(&m, &x);
        assert!(
            allclose(&run.y, &expect, 1e-12, 1e-12),
            "{variant} cluster {nrows}x{ncols} nnz={nnz} x_nnz={x_nnz}"
        );
    }

    #[test]
    fn base_cluster_spmspv_matches_reference() {
        check::<u16>(Variant::Base, 64, 256, 1200, 48, 300);
        check::<u32>(Variant::Base, 64, 256, 1200, 48, 301);
        check::<u16>(Variant::Base, 5, 64, 80, 16, 302); // fewer rows than workers
    }

    #[test]
    fn issr_cluster_spmspv_matches_reference() {
        check::<u16>(Variant::Issr, 64, 256, 1200, 48, 310);
        check::<u32>(Variant::Issr, 64, 256, 1200, 48, 311);
        check::<u16>(Variant::Issr, 5, 64, 80, 16, 312); // fewer rows than workers
        check::<u16>(Variant::Issr, 40, 128, 200, 0, 313); // empty x
        check::<u32>(Variant::Issr, 24, 96, 0, 12, 314); // empty matrix
    }

    /// The joiner cluster beats the software-merge cluster once rows
    /// carry enough nonzeros.
    #[test]
    fn cluster_joiner_beats_software_merge() {
        let mut rng = gen::rng(320);
        let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, 128, 1024, 48);
        let x = gen::sparse_vector::<u16>(&mut rng, 1024, 256);
        let base = run_cluster_spmspv(Variant::Base, &m, &x).unwrap();
        let issr = run_cluster_spmspv(Variant::Issr, &m, &x).unwrap();
        let speedup = issr_trace::ratio(base.summary.cycles as f64, issr.summary.cycles as f64);
        assert!(speedup > 2.0, "cluster SpMSpV speedup {speedup:.2}");
    }
}
