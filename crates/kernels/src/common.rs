//! Shared assembly idioms: streamer job setup, reduction trees, and the
//! marshal-then-reprogram harness helpers.

use crate::variant::KernelIndex;
use issr_core::cfg::{cfg_addr, idx_cfg_word, join_cfg_word, reg as sreg, JoinerMode};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::{FpReg, IntReg};
use issr_snitch::cc::SingleCcSim;

/// Scratch register used by the setup emitters (clobbered).
pub const SETUP_SCRATCH: IntReg = IntReg::T0;

/// Rebuilds the single-CC harness (paper streamer) around a new
/// program, keeping memory — the marshal-first-then-bake-addresses
/// idiom every kernel harness uses.
pub(crate) fn reprogram(sim: SingleCcSim, program: Program) -> SingleCcSim {
    let mut fresh = SingleCcSim::new(program);
    fresh.mem = sim.mem;
    fresh
}

/// [`reprogram`] for the sparse-sparse harness (joiner + SpAcc
/// streamer).
pub(crate) fn reprogram_joiner(sim: SingleCcSim, program: Program) -> SingleCcSim {
    let mut fresh = SingleCcSim::with_joiner(program);
    fresh.mem = sim.mem;
    fresh
}

/// Emits `t0 = base + (seq & 1) * 8` — the parity-slot addressing of
/// the system kernels' double-buffer flag protocols (`seq_reg` holds
/// the sequence number). Clobbers `t1`.
pub(crate) fn emit_parity_slot(asm: &mut Assembler, base: u32, seq_reg: IntReg) {
    asm.andi(IntReg::T0, seq_reg, 1);
    asm.slli(IntReg::T0, IntReg::T0, 3);
    asm.li_addr(IntReg::T1, base);
    asm.add(IntReg::T0, IntReg::T0, IntReg::T1);
}

/// Emits spins until every worker's monotonic done flag (8-byte slots
/// from `done_base`) reaches the value held in `need` (must not be
/// `t1`/`t2`, which are clobbered).
pub(crate) fn emit_wait_all_done(
    asm: &mut Assembler,
    done_base: u32,
    n_workers: u32,
    need: IntReg,
) {
    for c in 0..n_workers {
        let spin = asm.bind_label();
        asm.li_addr(IntReg::T1, done_base + c * 8);
        asm.lw(IntReg::T2, IntReg::T1, 0);
        asm.blt(IntReg::T2, need, spin);
    }
}

/// The constant-zero FP register kernels keep (`fz`), used to seed
/// accumulators without explicit zeroing (the CsrMV head unrolling).
pub const FZ: FpReg = FpReg::FT8; // f28

/// First accumulator register (`ft2`, as in Listing 1).
pub const ACC0: FpReg = FpReg::FT2;

/// Emits the configuration of an affine read job on `lane`:
/// `count` elements of `stride` bytes from `base`. Clobbers
/// [`SETUP_SCRATCH`]. The job launches at the final pointer write.
pub fn emit_affine_read(asm: &mut Assembler, lane: u8, base: u32, count: u32, stride: i32) {
    assert!(count > 0, "affine job needs at least one element");
    let t = SETUP_SCRATCH;
    asm.li(t, i64::from(count) - 1);
    asm.scfgwi(t, cfg_addr(sreg::BOUNDS[0], lane));
    asm.li(t, i64::from(stride));
    asm.scfgwi(t, cfg_addr(sreg::STRIDES[0], lane));
    asm.li_addr(t, base);
    asm.scfgwi(t, cfg_addr(sreg::RPTR[0], lane));
}

/// Emits the configuration of an indirection read job on `lane`:
/// `count` elements gathered from `data_base` at the indices stored at
/// `idx_base` (width `I`), with an optional extra `shift` for
/// power-of-two-strided axes. Clobbers [`SETUP_SCRATCH`].
pub fn emit_indirect_read<I: KernelIndex>(
    asm: &mut Assembler,
    lane: u8,
    idx_base: u32,
    count: u32,
    shift: u32,
    data_base: u32,
) {
    assert!(count > 0, "indirection job needs at least one element");
    let t = SETUP_SCRATCH;
    asm.li(t, i64::from(count) - 1);
    asm.scfgwi(t, cfg_addr(sreg::BOUNDS[0], lane));
    asm.li(t, i64::from(idx_cfg_word(I::IDX_SIZE, shift)));
    asm.scfgwi(t, cfg_addr(sreg::IDX_CFG, lane));
    asm.li_addr(t, data_base);
    asm.scfgwi(t, cfg_addr(sreg::DATA_BASE, lane));
    asm.li_addr(t, idx_base);
    asm.scfgwi(t, cfg_addr(sreg::RPTR[0], lane));
}

/// Emits the indirection *write* (scatter) job configuration on `lane`.
pub fn emit_indirect_write<I: KernelIndex>(
    asm: &mut Assembler,
    lane: u8,
    idx_base: u32,
    count: u32,
    shift: u32,
    data_base: u32,
) {
    assert!(count > 0, "indirection job needs at least one element");
    let t = SETUP_SCRATCH;
    asm.li(t, i64::from(count) - 1);
    asm.scfgwi(t, cfg_addr(sreg::BOUNDS[0], lane));
    asm.li(t, i64::from(idx_cfg_word(I::IDX_SIZE, shift)));
    asm.scfgwi(t, cfg_addr(sreg::IDX_CFG, lane));
    asm.li_addr(t, data_base);
    asm.scfgwi(t, cfg_addr(sreg::DATA_BASE, lane));
    asm.li_addr(t, idx_base);
    asm.scfgwi(t, cfg_addr(sreg::WPTR[0], lane));
}

/// Emits the configuration and launch of an index-joiner job (lanes 0
/// and 1): stream A's `nnz_a` indices at `idx_a` select values at
/// `vals_a`, stream B likewise, matched under `mode`. Counts may be
/// zero. Clobbers [`SETUP_SCRATCH`].
#[allow(clippy::too_many_arguments)]
pub fn emit_joiner_read<I: KernelIndex>(
    asm: &mut Assembler,
    mode: JoinerMode,
    idx_a: u32,
    vals_a: u32,
    nnz_a: u32,
    idx_b: u32,
    vals_b: u32,
    nnz_b: u32,
) {
    emit_joiner_job(
        asm,
        join_cfg_word(mode, I::IDX_SIZE),
        idx_a,
        vals_a,
        nnz_a,
        idx_b,
        vals_b,
        nnz_b,
    );
}

/// Emits an index-joiner job launch with an explicit `JOIN_CFG` word —
/// count-only pre-passes pass [`issr_core::cfg::join_count_cfg_word`].
/// Clobbers [`SETUP_SCRATCH`].
#[allow(clippy::too_many_arguments)]
pub fn emit_joiner_job(
    asm: &mut Assembler,
    cfg_word: u32,
    idx_a: u32,
    vals_a: u32,
    nnz_a: u32,
    idx_b: u32,
    vals_b: u32,
    nnz_b: u32,
) {
    let t = SETUP_SCRATCH;
    asm.li(t, i64::from(cfg_word));
    asm.scfgwi(t, cfg_addr(sreg::JOIN_CFG, 0));
    asm.li_addr(t, vals_a);
    asm.scfgwi(t, cfg_addr(sreg::DATA_BASE, 0));
    asm.li_addr(t, idx_b);
    asm.scfgwi(t, cfg_addr(sreg::JOIN_IDX_B, 0));
    asm.li_addr(t, vals_b);
    asm.scfgwi(t, cfg_addr(sreg::JOIN_DATA_B, 0));
    asm.li(t, i64::from(nnz_a));
    asm.scfgwi(t, cfg_addr(sreg::JOIN_NNZ_A, 0));
    asm.li(t, i64::from(nnz_b));
    asm.scfgwi(t, cfg_addr(sreg::JOIN_NNZ_B, 0));
    asm.li_addr(t, idx_a);
    asm.scfgwi(t, cfg_addr(sreg::RPTR[0], 0));
}

/// Emits the static sparse-accumulator configuration (index width).
/// Feed/drain launches are register-driven and stay in the kernels.
/// Clobbers [`SETUP_SCRATCH`].
pub fn emit_spacc_cfg<I: KernelIndex>(asm: &mut Assembler) {
    let t = SETUP_SCRATCH;
    asm.li(t, i64::from(issr_core::cfg::acc_cfg_word(I::IDX_SIZE)));
    asm.scfgwi(t, cfg_addr(sreg::ACC_CFG, 0));
}

/// Emits an affine *write* job on `lane` (unit-stride store stream).
pub fn emit_affine_write(asm: &mut Assembler, lane: u8, base: u32, count: u32, stride: i32) {
    assert!(count > 0, "affine job needs at least one element");
    let t = SETUP_SCRATCH;
    asm.li(t, i64::from(count) - 1);
    asm.scfgwi(t, cfg_addr(sreg::BOUNDS[0], lane));
    asm.li(t, i64::from(stride));
    asm.scfgwi(t, cfg_addr(sreg::STRIDES[0], lane));
    asm.li_addr(t, base);
    asm.scfgwi(t, cfg_addr(sreg::WPTR[0], lane));
}

/// Emits a pairwise reduction tree over the accumulator group
/// `base .. base + n`, leaving the sum in `base`. Uses gap doubling, so
/// the depth is `ceil(log2 n)` — the dependent-add latency the 16-bit
/// kernels pay for their larger accumulator group.
pub fn emit_reduction_tree(asm: &mut Assembler, base: FpReg, n: u8) {
    let mut gap = 1u8;
    while gap < n {
        let mut k = 0;
        while k + gap < n {
            asm.fadd_d(base.offset(k), base.offset(k), base.offset(k + gap));
            k += 2 * gap;
        }
        gap *= 2;
    }
}

/// Emits zero-initialization of the accumulator group via `fcvt.d.w`
/// (Listing 1's `fcvt.d.w ft2, zero`).
pub fn emit_zero_accumulators(asm: &mut Assembler, base: FpReg, n: u8) {
    for k in 0..n {
        asm.fcvt_d_w(base.offset(k), IntReg::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_tree_shape() {
        // n = 8: 7 adds; n = 4: 3; n = 3: 2; n = 1: 0.
        for (n, expect) in [(8u8, 7usize), (4, 3), (3, 2), (2, 1), (1, 0)] {
            let mut a = Assembler::new();
            emit_reduction_tree(&mut a, ACC0, n);
            assert_eq!(a.finish().unwrap().len(), expect, "n = {n}");
        }
    }

    #[test]
    fn reduction_tree_sums_correctly() {
        // Execute the tree on the FPU model via a tiny program.
        use issr_snitch::cc::{SingleCcSim, SINGLE_CC_ARENA};
        let n = 8u8;
        let mut a = Assembler::new();
        // Materialize acc_k = k + 1 via integer converts.
        for k in 0..n {
            a.li(IntReg::T1, i64::from(k) + 1);
            a.push(issr_isa::instr::Instr::FcvtDW { rd: ACC0.offset(k), rs1: IntReg::T1 });
        }
        emit_reduction_tree(&mut a, ACC0, n);
        a.li_addr(IntReg::A0, SINGLE_CC_ARENA);
        a.fsd(ACC0, IntReg::A0, 0);
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        sim.run(1000).unwrap();
        assert_eq!(sim.mem.array().load_f64(SINGLE_CC_ARENA), 36.0);
    }

    #[test]
    fn setup_emitters_produce_launches() {
        let mut a = Assembler::new();
        emit_affine_read(&mut a, 0, 0x0030_0000, 64, 8);
        emit_indirect_read::<u16>(&mut a, 1, 0x0030_4000, 64, 0, 0x0030_8000);
        let p = a.finish().unwrap();
        let launches = p
            .instrs()
            .iter()
            .filter(|i| {
                matches!(i, issr_isa::instr::Instr::Scfgwi { addr, .. }
                    if issr_core::cfg::split_addr(*addr).0 == sreg::RPTR[0])
            })
            .count();
        assert_eq!(launches, 2);
    }
}
