//! Sparse-stencil convolution (§III-C, "improved convolutions").
//!
//! SSRs accelerate rectangular stencils; the paper proposes extending
//! this to **arbitrarily-shaped sparse stencils** by streaming an offset
//! index array through the ISSR while the core increments the data base
//! address per output element:
//!
//! ```text
//! for each output position p:
//!     y[p] = Σ_s w[s] · x[p + offsets[s]]
//! ```
//!
//! The stencil weights stream through the SSR (with the element `REPEAT`
//! feature unused — the job is relaunched per position, which the
//! shadowed configuration makes a two-write affair), the gathered taps
//! through the ISSR whose `DATA_BASE` the core bumps by one element per
//! output position.

use crate::common::{emit_reduction_tree, emit_zero_accumulators, ACC0};
use crate::layout::{alloc_result, place_f64s, Arena};
use crate::variant::KernelIndex;
use issr_core::cfg::{cfg_addr, idx_cfg_word, reg as sreg};
use issr_isa::asm::{Assembler, Program};
use issr_isa::instr::Stagger;
use issr_isa::reg::{FpReg, IntReg as R};
use issr_snitch::cc::{RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};

/// A sparse 1-D stencil: tap offsets (in elements, relative to the
/// output position) and their weights.
#[derive(Clone, Debug)]
pub struct SparseStencil {
    /// Non-negative tap offsets (the kernel slides left-to-right; the
    /// host shifts the input so offsets start at zero).
    pub offsets: Vec<u32>,
    /// One weight per tap.
    pub weights: Vec<f64>,
}

impl SparseStencil {
    /// Number of taps.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.offsets.len()
    }

    /// Largest offset (determines the valid output length).
    #[must_use]
    pub fn reach(&self) -> u32 {
        self.offsets.iter().copied().max().unwrap_or(0)
    }

    /// Host reference: valid (no-padding) sparse-stencil convolution.
    #[must_use]
    pub fn reference(&self, x: &[f64]) -> Vec<f64> {
        let out_len = x.len().saturating_sub(self.reach() as usize);
        (0..out_len)
            .map(|p| {
                self.offsets.iter().zip(&self.weights).map(|(&o, &w)| w * x[p + o as usize]).sum()
            })
            .collect()
    }
}

/// Result of a stencil run.
#[derive(Clone, Debug)]
pub struct StencilRun {
    /// The convolved output.
    pub out: Vec<f64>,
    /// Cycle-level summary.
    pub summary: RunSummary,
}

/// Runs the ISSR sparse-stencil convolution over `x` (valid mode).
///
/// # Errors
/// Returns [`SimTimeout`] on a simulation bug.
///
/// # Panics
/// Panics on empty stencils or mismatched weight counts.
pub fn run_stencil<I: KernelIndex>(
    stencil: &SparseStencil,
    x: &[f64],
) -> Result<StencilRun, SimTimeout> {
    assert!(!stencil.offsets.is_empty(), "stencil needs at least one tap");
    assert_eq!(stencil.offsets.len(), stencil.weights.len(), "weights per tap");
    let taps = stencil.taps() as u32;
    let out_len = (x.len() as u32).saturating_sub(stencil.reach());
    let n_acc: u8 = 4;

    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut staged = SingleCcSim::new(Program::default());
    let x_addr = place_f64s(&mut arena, staged.mem.array_mut(), x);
    let w_addr = place_f64s(&mut arena, staged.mem.array_mut(), &stencil.weights);
    let idx_bytes = (taps * I::BYTES + 7) & !7;
    let off_addr = arena.alloc(idx_bytes, 8);
    let offsets: Vec<I> = stencil.offsets.iter().map(|&o| I::from_usize(o as usize)).collect();
    I::store_slice(staged.mem.array_mut(), off_addr, &offsets);
    let out = alloc_result(&mut arena, out_len.max(1));

    let mut asm = Assembler::new();
    asm.roi_begin();
    if out_len > 0 {
        // Invariant lane state: bounds (taps) and index configuration.
        asm.li(R::T0, i64::from(taps) - 1);
        asm.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 0));
        asm.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 1));
        asm.li(R::T0, 8);
        asm.scfgwi(R::T0, cfg_addr(sreg::STRIDES[0], 0));
        asm.li(R::T0, i64::from(idx_cfg_word(I::IDX_SIZE, 0)));
        asm.scfgwi(R::T0, cfg_addr(sreg::IDX_CFG, 1));
        asm.csrsi(issr_isa::Csr::Ssr, 1);
        // Position loop registers.
        asm.li_addr(R::S4, w_addr); // weights (relaunched per position)
        asm.li_addr(R::S5, off_addr); // offset array
        asm.li_addr(R::S6, x_addr); // sliding data base
        asm.li_addr(R::S1, out);
        asm.li(R::S2, i64::from(out_len));
        asm.li(R::T2, i64::from(taps) - 1);
        let pos = asm.bind_label();
        asm.symbol("position");
        // Relaunch: weights affine job + taps gather at the current base.
        asm.scfgwi(R::S4, cfg_addr(sreg::RPTR[0], 0));
        asm.scfgwi(R::S6, cfg_addr(sreg::DATA_BASE, 1));
        asm.scfgwi(R::S5, cfg_addr(sreg::RPTR[0], 1));
        emit_zero_accumulators(&mut asm, ACC0, n_acc);
        asm.frep_outer(R::T2, 1, Stagger::accumulator(n_acc));
        asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
        emit_reduction_tree(&mut asm, ACC0, n_acc);
        asm.fsd(ACC0, R::S1, 0);
        // Slide the window one element; next output slot.
        asm.addi(R::S6, R::S6, 8);
        asm.addi(R::S1, R::S1, 8);
        asm.addi(R::S2, R::S2, -1);
        asm.bnez(R::S2, pos);
    }
    asm.roi_end();
    if out_len > 0 {
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
    asm.halt();

    let mut sim = SingleCcSim::new(asm.finish().expect("stencil assembles"));
    sim.mem = staged.mem;
    let summary = sim.run(200_000 + 64 * u64::from(out_len) * u64::from(taps))?.expect_clean();
    Ok(StencilRun { out: sim.mem.array().load_f64_slice(out, out_len as usize), summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::{dense::allclose, gen};

    #[test]
    fn dense_three_tap_matches_reference() {
        let stencil = SparseStencil { offsets: vec![0, 1, 2], weights: vec![0.25, 0.5, 0.25] };
        let mut rng = gen::rng(80);
        let x = gen::dense_vector(&mut rng, 256);
        let run = run_stencil::<u16>(&stencil, &x).unwrap();
        assert!(allclose(&run.out, &stencil.reference(&x), 1e-12, 1e-12));
    }

    #[test]
    fn irregular_sparse_stencil_matches_reference() {
        // An arbitrarily-shaped stencil: scattered taps with gaps.
        let stencil = SparseStencil {
            offsets: vec![0, 3, 4, 11, 17, 29],
            weights: vec![1.0, -2.0, 0.5, 0.125, -0.75, 3.0],
        };
        let mut rng = gen::rng(81);
        let x = gen::dense_vector(&mut rng, 200);
        let run = run_stencil::<u32>(&stencil, &x).unwrap();
        assert!(allclose(&run.out, &stencil.reference(&x), 1e-12, 1e-12));
    }

    #[test]
    fn single_tap_is_a_shifted_copy() {
        let stencil = SparseStencil { offsets: vec![5], weights: vec![2.0] };
        let x: Vec<f64> = (0..32).map(f64::from).collect();
        let run = run_stencil::<u16>(&stencil, &x).unwrap();
        let expect: Vec<f64> = (0..27).map(|p| 2.0 * f64::from(p + 5)).collect();
        assert_eq!(run.out, expect);
    }

    #[test]
    fn stencil_too_wide_for_input_yields_empty() {
        let stencil = SparseStencil { offsets: vec![0, 100], weights: vec![1.0, 1.0] };
        let run = run_stencil::<u16>(&stencil, &[1.0; 50]).unwrap();
        assert!(run.out.is_empty());
    }
}
