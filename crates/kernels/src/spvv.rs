//! Sparse-dense dot product kernels (SpVV, §III-B and Listing 1).
//!
//! Three variants, each for 16- and 32-bit indices:
//!
//! * **BASE** — the paper's nine-instruction indirection loop, scheduled
//!   so no iteration stalls (1/9 peak FPU utilization);
//! * **SSR** — the sparse values stream through `ft0`, indirection stays
//!   in software: seven instructions per nonzero (1/7 peak);
//! * **ISSR** — both operands stream (`ft0` values, `ft1` gathered dense
//!   elements); the loop body is a single staggered `fmadd.d` under
//!   FREP, peaking at the arbitration limits 0.80 (16-bit) and
//!   0.67 (32-bit).

use crate::common::{
    emit_indirect_read, emit_reduction_tree, emit_zero_accumulators, reprogram, ACC0,
};
use crate::layout::{alloc_result, place_f64s, place_fiber, Arena, FiberAddrs};
use crate::variant::{issr_accumulators, KernelIndex, Variant};
use issr_isa::asm::{Assembler, Program};
use issr_isa::instr::Stagger;
use issr_isa::reg::{FpReg, IntReg as R};
use issr_snitch::cc::{RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};
use issr_sparse::fiber::SparseFiber;

/// Addresses the SpVV builders bake into the program.
#[derive(Clone, Copy, Debug)]
pub struct SpvvAddrs {
    /// The sparse fiber.
    pub a: FiberAddrs,
    /// Dense operand base.
    pub b: u32,
    /// Result slot (one double).
    pub out: u32,
}

/// Builds the SpVV program for `variant` with `I`-width indices.
#[must_use]
pub fn build_spvv<I: KernelIndex>(variant: Variant, addrs: SpvvAddrs) -> Program {
    let mut asm = Assembler::new();
    match variant {
        Variant::Base => emit_base::<I>(&mut asm, addrs),
        Variant::Ssr => emit_ssr::<I>(&mut asm, addrs),
        Variant::Issr => emit_issr::<I>(&mut asm, addrs),
    }
    asm.halt();
    asm.finish().expect("SpVV program assembles")
}

/// BASE: the paper's §I loop, reordered so the index load's result is
/// consumed two instructions later (no load-use stall).
fn emit_base<I: KernelIndex>(asm: &mut Assembler, addrs: SpvvAddrs) {
    let acc = FpReg::FS0;
    let (va, vi) = (FpReg::FT6, FpReg::FT7);
    asm.li_addr(R::S4, addrs.a.idcs);
    asm.li_addr(R::S5, addrs.a.vals);
    asm.li_addr(R::S6, addrs.b);
    asm.li_addr(R::S7, addrs.a.vals + addrs.a.nnz * 8); // vals end
    asm.li_addr(R::A2, addrs.out);
    asm.roi_begin();
    asm.fcvt_d_w(acc, R::ZERO);
    let done = asm.new_label();
    if addrs.a.nnz == 0 {
        asm.j(done);
    }
    let head = asm.bind_label();
    asm.symbol("base_loop");
    I::emit_index_load(asm, R::T0, R::S4, 0); // idx
    asm.fld(va, R::S5, 0); //                    a_vals[j]
    asm.slli(R::T0, R::T0, 3); //                word offset
    asm.add(R::T0, R::T0, R::S6); //             &b[idx]
    asm.fld(vi, R::T0, 0); //                    b[idx]
    asm.addi(R::S4, R::S4, I::BYTES as i32); //  index pointer
    asm.addi(R::S5, R::S5, 8); //                value pointer
    asm.fmadd_d(acc, va, vi, acc); //            the one useful op
    asm.bne(R::S5, R::S7, head); //              loop branch
    asm.bind(done);
    asm.fsd(acc, R::A2, 0);
    asm.roi_end();
}

/// SSR: `ft0` streams the sparse values; the seven-instruction software
/// indirection remains.
fn emit_ssr<I: KernelIndex>(asm: &mut Assembler, addrs: SpvvAddrs) {
    let acc = FpReg::FS0;
    let vi = FpReg::FT3; // not a stream register
    asm.li_addr(R::S4, addrs.a.idcs);
    asm.li_addr(R::S6, addrs.b);
    asm.li_addr(R::S7, addrs.a.idcs + addrs.a.nnz * I::BYTES); // idcs end
    asm.li_addr(R::A2, addrs.out);
    asm.roi_begin();
    asm.fcvt_d_w(acc, R::ZERO);
    let done = asm.new_label();
    if addrs.a.nnz == 0 {
        asm.j(done);
    } else {
        crate::common::emit_affine_read(asm, 0, addrs.a.vals, addrs.a.nnz, 8);
        asm.csrsi(issr_isa::Csr::Ssr, 1);
        let head = asm.bind_label();
        asm.symbol("ssr_loop");
        I::emit_index_load(asm, R::T0, R::S4, 0);
        asm.addi(R::S4, R::S4, I::BYTES as i32);
        asm.slli(R::T0, R::T0, 3);
        asm.add(R::T0, R::T0, R::S6);
        asm.fld(vi, R::T0, 0);
        asm.fmadd_d(acc, FpReg::FT0, vi, acc);
        asm.bne(R::S4, R::S7, head);
    }
    asm.bind(done);
    asm.fsd(acc, R::A2, 0);
    asm.roi_end();
    if addrs.a.nnz > 0 {
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
}

/// ISSR: Listing 1 — configure both streams, zero the staggered
/// accumulators, one `fmadd.d` under FREP, reduce, store.
fn emit_issr<I: KernelIndex>(asm: &mut Assembler, addrs: SpvvAddrs) {
    let n_acc = issr_accumulators(I::IDX_SIZE);
    asm.li_addr(R::A2, addrs.out);
    asm.roi_begin();
    if addrs.a.nnz == 0 {
        asm.fcvt_d_w(ACC0, R::ZERO);
        asm.fsd(ACC0, R::A2, 0);
        asm.roi_end();
        return;
    }
    // i) Setup (SSR over a_vals, ISSR gathering b at a_idcs).
    crate::common::emit_affine_read(asm, 0, addrs.a.vals, addrs.a.nnz, 8);
    emit_indirect_read::<I>(asm, 1, addrs.a.idcs, addrs.a.nnz, 0, addrs.b);
    asm.csrsi(issr_isa::Csr::Ssr, 1);
    emit_zero_accumulators(asm, ACC0, n_acc);
    // ii) Compute: single staggered fmadd under FREP.
    asm.li(R::T1, i64::from(addrs.a.nnz) - 1);
    asm.frep_outer(R::T1, 1, Stagger::accumulator(n_acc));
    asm.symbol("issr_body");
    asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
    // iii) Teardown: reduce and store.
    emit_reduction_tree(asm, ACC0, n_acc);
    asm.fsd(ACC0, R::A2, 0);
    asm.roi_end();
    asm.csrci(issr_isa::Csr::Ssr, 1);
}

/// Result of one SpVV run on the single-CC harness.
#[derive(Clone, Debug)]
pub struct SpvvRun {
    /// The computed dot product.
    pub result: f64,
    /// Cycle-level summary.
    pub summary: RunSummary,
}

/// Marshals the workload, runs the kernel on the §IV-A single-CC setup,
/// and returns the result with its metrics.
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
pub fn run_spvv<I: KernelIndex>(
    variant: Variant,
    a: &SparseFiber<I>,
    b: &[f64],
) -> Result<SpvvRun, SimTimeout> {
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::new(Program::default());
    let fiber_addrs = place_fiber(&mut arena, sim.mem.array_mut(), a);
    let b_addr = place_f64s(&mut arena, sim.mem.array_mut(), b);
    let out = alloc_result(&mut arena, 1);
    let addrs = SpvvAddrs { a: fiber_addrs, b: b_addr, out };
    let program = build_spvv::<I>(variant, addrs);
    sim = reprogram(sim, program);
    let summary = sim.run(100_000 + 64 * u64::from(addrs.a.nnz))?.expect_clean();
    Ok(SpvvRun { result: sim.mem.array().load_f64(out), summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::{gen, reference};

    fn check_variant<I: KernelIndex>(variant: Variant, nnz: usize) {
        let mut rng = gen::rng(100 + nnz as u64);
        let dim = 512;
        let a = gen::sparse_vector::<I>(&mut rng, dim, nnz);
        let b = gen::dense_vector(&mut rng, dim);
        let run = run_spvv(variant, &a, &b).expect("kernel finishes");
        let expect = reference::spvv(&a, &b);
        let tol = 1e-12 * expect.abs().max(1.0);
        assert!(
            (run.result - expect).abs() <= tol,
            "{variant} nnz={nnz}: got {} expected {expect}",
            run.result
        );
    }

    #[test]
    fn base_matches_reference() {
        for nnz in [0, 1, 3, 17, 128] {
            check_variant::<u32>(Variant::Base, nnz);
            check_variant::<u16>(Variant::Base, nnz);
        }
    }

    #[test]
    fn ssr_matches_reference() {
        for nnz in [0, 1, 5, 64, 200] {
            check_variant::<u32>(Variant::Ssr, nnz);
            check_variant::<u16>(Variant::Ssr, nnz);
        }
    }

    #[test]
    fn issr_matches_reference() {
        for nnz in [0, 1, 2, 7, 8, 9, 100, 333] {
            check_variant::<u32>(Variant::Issr, nnz);
            check_variant::<u16>(Variant::Issr, nnz);
        }
    }

    /// Fig. 4a's asymptotes: BASE → 1/9, SSR → 1/7, ISSR-32 → 2/3,
    /// ISSR-16 → 4/5 (excluding reductions).
    #[test]
    fn utilization_limits_match_paper() {
        let mut rng = gen::rng(7);
        let dim = 2048;
        let nnz = 1500;
        let a32 = gen::sparse_vector::<u32>(&mut rng, dim, nnz);
        let a16 = a32.with_index_width::<u16>();
        let b = gen::dense_vector(&mut rng, dim);

        let util = |v: Variant, wide: bool| -> f64 {
            let summary = if wide {
                run_spvv(v, &a32, &b).unwrap().summary
            } else {
                run_spvv(v, &a16, &b).unwrap().summary
            };
            summary.metrics.fpu_utilization()
        };
        let base = util(Variant::Base, true);
        assert!((base - 1.0 / 9.0).abs() < 0.01, "BASE utilization {base:.4}");
        // 16- and 32-bit non-ISSR kernels perform identically.
        let base16 = util(Variant::Base, false);
        assert!((base - base16).abs() < 1e-3, "BASE 16 vs 32: {base16:.4} vs {base:.4}");
        let ssr = util(Variant::Ssr, true);
        assert!((ssr - 1.0 / 7.0).abs() < 0.01, "SSR utilization {ssr:.4}");
        let issr32 = util(Variant::Issr, true);
        assert!(issr32 > 0.6 && issr32 <= 2.0 / 3.0 + 0.01, "ISSR-32 utilization {issr32:.4}");
        let issr16 = util(Variant::Issr, false);
        assert!(issr16 > 0.72 && issr16 <= 0.8 + 0.01, "ISSR-16 utilization {issr16:.4}");
    }

    /// Low-nnz behaviour: ISSR pays setup + reduction, so its advantage
    /// needs nnz to amortize (the left side of Fig. 4a).
    #[test]
    fn issr_overhead_dominates_tiny_inputs() {
        let mut rng = gen::rng(9);
        let a = gen::sparse_vector::<u16>(&mut rng, 256, 2);
        let b = gen::dense_vector(&mut rng, 256);
        let issr = run_spvv(Variant::Issr, &a, &b).unwrap();
        let util = issr.summary.metrics.fpu_utilization();
        assert!(util < 0.15, "tiny-nnz ISSR utilization should collapse, got {util:.3}");
    }
}
