//! Memory layout planning and workload marshalling.
//!
//! Kernels are generated per workload with base addresses baked in as a
//! linker would; the [`Arena`] hands out aligned regions and the
//! placement helpers copy sparse structures into simulated memory.

use crate::variant::KernelIndex;
use issr_mem::array::MemArray;
use issr_sparse::csr::CsrMatrix;
use issr_sparse::dense::DenseMatrix;
use issr_sparse::fiber::SparseFiber;

/// A bump allocator over a memory region.
#[derive(Clone, Debug)]
pub struct Arena {
    next: u32,
    limit: u32,
}

impl Arena {
    /// Creates an arena over `[base, base + size)`.
    #[must_use]
    pub fn new(base: u32, size: u32) -> Self {
        Self { next: base, limit: base + size }
    }

    /// Allocates `bytes` with the given power-of-two alignment.
    ///
    /// # Panics
    /// Panics if the arena is exhausted or alignment is not a power of
    /// two.
    pub fn alloc(&mut self, bytes: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        assert!(
            u64::from(base) + u64::from(bytes) <= u64::from(self.limit),
            "arena exhausted: need {bytes} bytes at {base:#x}, limit {:#x}",
            self.limit
        );
        self.next = base + bytes;
        base
    }

    /// Next free address (for fit checks).
    #[must_use]
    pub fn watermark(&self) -> u32 {
        self.next
    }

    /// Remaining capacity in bytes.
    #[must_use]
    pub fn remaining(&self) -> u32 {
        self.limit - self.next
    }
}

/// Addresses of a placed sparse fiber.
#[derive(Clone, Copy, Debug)]
pub struct FiberAddrs {
    /// Value array (8-byte aligned).
    pub vals: u32,
    /// Index array (element aligned).
    pub idcs: u32,
    /// Nonzero count.
    pub nnz: u32,
}

/// Allocates a fiber's arrays without storing data (cluster plans
/// compute addresses before the target memory exists); index storage is
/// padded to whole words so DMA transfers stay word-aligned.
pub fn fiber_addrs<I: KernelIndex>(arena: &mut Arena, nnz: u32) -> FiberAddrs {
    let vals = arena.alloc(nnz.max(1) * 8, 8);
    let idx_bytes = (nnz.max(1) * I::BYTES + 7) & !7;
    let idcs = arena.alloc(idx_bytes, 8);
    FiberAddrs { vals, idcs, nnz }
}

/// Stores a fiber at previously planned addresses.
pub fn store_fiber<I: KernelIndex>(mem: &mut MemArray, addrs: FiberAddrs, fiber: &SparseFiber<I>) {
    mem.store_f64_slice(addrs.vals, fiber.vals());
    I::store_slice(mem, addrs.idcs, fiber.idcs());
}

/// Places a fiber's arrays (allocate + store).
pub fn place_fiber<I: KernelIndex>(
    arena: &mut Arena,
    mem: &mut MemArray,
    fiber: &SparseFiber<I>,
) -> FiberAddrs {
    let addrs = fiber_addrs::<I>(arena, fiber.nnz() as u32);
    store_fiber(mem, addrs, fiber);
    addrs
}

/// Addresses of a placed CSR matrix.
#[derive(Clone, Copy, Debug)]
pub struct CsrAddrs {
    /// Row pointer array (32-bit entries).
    pub ptr: u32,
    /// Column index array.
    pub idcs: u32,
    /// Value array.
    pub vals: u32,
    /// Rows.
    pub nrows: u32,
    /// Nonzero count.
    pub nnz: u32,
}

/// Allocates a CSR matrix's arrays without storing data.
pub fn csr_addrs<I: KernelIndex>(arena: &mut Arena, nrows: u32, nnz: u32) -> CsrAddrs {
    let ptr = arena.alloc(((nrows + 1) * 4 + 7) & !7, 8);
    let vals = arena.alloc(nnz.max(1) * 8, 8);
    let idx_bytes = (nnz.max(1) * I::BYTES + 7) & !7;
    let idcs = arena.alloc(idx_bytes, 8);
    CsrAddrs { ptr, idcs, vals, nrows, nnz }
}

/// Stores a CSR matrix at previously planned addresses.
pub fn store_csr<I: KernelIndex>(mem: &mut MemArray, addrs: CsrAddrs, m: &CsrMatrix<I>) {
    mem.store_u32_slice(addrs.ptr, m.ptr());
    mem.store_f64_slice(addrs.vals, m.vals());
    I::store_slice(mem, addrs.idcs, m.idcs());
}

/// Places a CSR matrix (allocate + store).
pub fn place_csr<I: KernelIndex>(
    arena: &mut Arena,
    mem: &mut MemArray,
    m: &CsrMatrix<I>,
) -> CsrAddrs {
    let addrs = csr_addrs::<I>(arena, m.nrows() as u32, m.nnz() as u32);
    store_csr(mem, addrs, m);
    addrs
}

/// Addresses of a CSR *output* region (a sparse result a kernel builds
/// row by row — the SpGEMM product).
#[derive(Clone, Copy, Debug)]
pub struct CsrOutAddrs {
    /// Row pointer array (32-bit entries; `ptr[0]` pre-set to 0).
    pub ptr: u32,
    /// Column index array (capacity `nnz_cap` entries, tightly packed).
    pub idcs: u32,
    /// Value array (capacity `nnz_cap` doubles).
    pub vals: u32,
    /// Allocated nonzero capacity.
    pub nnz_cap: u32,
}

/// Allocates a CSR output region for `nrows` rows and up to `nnz_cap`
/// nonzeros and zeroes `ptr[0]` (the two-pass/alloc side of the sparse
/// output builder: the caller sizes `nnz_cap` from a symbolic pass or an
/// expansion upper bound, the kernel grow-and-packs rows into it).
pub fn alloc_csr_out<I: KernelIndex>(
    arena: &mut Arena,
    mem: &mut MemArray,
    nrows: u32,
    nnz_cap: u32,
) -> CsrOutAddrs {
    let ptr = arena.alloc(((nrows + 1) * 4 + 7) & !7, 8);
    mem.store_u32(ptr, 0);
    let vals = arena.alloc(nnz_cap.max(1) * 8, 8);
    let idcs = arena.alloc((nnz_cap.max(1) * I::BYTES + 7) & !7, 8);
    CsrOutAddrs { ptr, idcs, vals, nnz_cap }
}

/// Reads a kernel-built CSR output back into a host matrix, validating
/// the format invariants on the way.
///
/// # Panics
/// Panics if the stored structure is not a valid CSR matrix or exceeds
/// the allocated capacity.
#[must_use]
pub fn read_csr_out<I: KernelIndex>(
    mem: &MemArray,
    addrs: CsrOutAddrs,
    nrows: usize,
    ncols: usize,
) -> issr_sparse::csr::CsrMatrix<I> {
    let ptr = mem.load_u32_slice(addrs.ptr, nrows + 1);
    let nnz = *ptr.last().expect("ptr has nrows + 1 entries") as usize;
    assert!(nnz <= addrs.nnz_cap as usize, "kernel overflowed the output capacity");
    let idcs = I::load_slice(mem, addrs.idcs, nnz);
    let vals = mem.load_f64_slice(addrs.vals, nnz);
    issr_sparse::csr::CsrMatrix::new(nrows, ncols, ptr, idcs, vals)
        .expect("kernel-built CSR output is well formed")
}

/// Places a dense f64 slice (8-byte aligned).
pub fn place_f64s(arena: &mut Arena, mem: &mut MemArray, data: &[f64]) -> u32 {
    let addr = arena.alloc((data.len() as u32).max(1) * 8, 8);
    mem.store_f64_slice(addr, data);
    addr
}

/// Places a dense matrix including its stride padding; returns the base
/// address (row `r` at `base + r * stride * 8`).
pub fn place_dense_matrix(arena: &mut Arena, mem: &mut MemArray, m: &DenseMatrix) -> u32 {
    place_f64s(arena, mem, m.data())
}

/// Allocates an uninitialized result buffer of `len` doubles.
pub fn alloc_result(arena: &mut Arena, len: u32) -> u32 {
    arena.alloc(len.max(1) * 8, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::fiber::SparseFiber;

    #[test]
    fn arena_alignment_and_exhaustion() {
        let mut a = Arena::new(0x1000, 0x100);
        assert_eq!(a.alloc(4, 8), 0x1000);
        assert_eq!(a.alloc(8, 8), 0x1008);
        let unaligned = a.alloc(2, 2);
        assert_eq!(unaligned, 0x1010);
        assert_eq!(a.alloc(8, 8), 0x1018);
        assert!(a.remaining() < 0x100);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn arena_overflow_panics() {
        let mut a = Arena::new(0, 16);
        let _ = a.alloc(32, 8);
    }

    #[test]
    fn fiber_placement_round_trips() {
        let mut arena = Arena::new(0x2000, 0x1000);
        let mut mem = MemArray::new(0x2000, 0x1000);
        let f = SparseFiber::<u16>::new(100, vec![3, 50, 99], vec![1.0, 2.0, 3.0]).unwrap();
        let addrs = place_fiber(&mut arena, &mut mem, &f);
        assert_eq!(addrs.nnz, 3);
        assert_eq!(mem.load_f64(addrs.vals + 8), 2.0);
        assert_eq!(mem.load_u16(addrs.idcs + 2), 50);
        assert_eq!(addrs.vals % 8, 0);
    }

    #[test]
    fn csr_placement_round_trips() {
        let mut arena = Arena::new(0x2000, 0x4000);
        let mut mem = MemArray::new(0x2000, 0x4000);
        let m = issr_sparse::csr::CsrMatrix::<u32>::from_triplets(
            2,
            4,
            &[(0, 1, 5.0), (1, 0, -1.0), (1, 3, 2.0)],
        );
        let addrs = place_csr(&mut arena, &mut mem, &m);
        assert_eq!(mem.load_u32(addrs.ptr), 0);
        assert_eq!(mem.load_u32(addrs.ptr + 4), 1);
        assert_eq!(mem.load_u32(addrs.ptr + 8), 3);
        assert_eq!(mem.load_f64(addrs.vals + 16), 2.0);
        assert_eq!(mem.load_u32(addrs.idcs + 8), 3);
    }
}
