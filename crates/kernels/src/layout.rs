//! Memory layout planning and workload marshalling.
//!
//! Kernels are generated per workload with base addresses baked in as a
//! linker would; the [`Arena`] hands out aligned regions and the
//! placement helpers copy sparse structures into simulated memory.

use crate::variant::KernelIndex;
use issr_mem::array::MemArray;
use issr_sparse::csr::CsrMatrix;
use issr_sparse::dense::DenseMatrix;
use issr_sparse::fiber::SparseFiber;

/// A bump allocator over a memory region.
#[derive(Clone, Debug)]
pub struct Arena {
    next: u32,
    limit: u32,
}

impl Arena {
    /// Creates an arena over `[base, base + size)`.
    #[must_use]
    pub fn new(base: u32, size: u32) -> Self {
        Self { next: base, limit: base + size }
    }

    /// Allocates `bytes` with the given power-of-two alignment.
    ///
    /// # Panics
    /// Panics if the arena is exhausted or alignment is not a power of
    /// two.
    pub fn alloc(&mut self, bytes: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        assert!(
            u64::from(base) + u64::from(bytes) <= u64::from(self.limit),
            "arena exhausted: need {bytes} bytes at {base:#x}, limit {:#x}",
            self.limit
        );
        self.next = base + bytes;
        base
    }

    /// Next free address (for fit checks).
    #[must_use]
    pub fn watermark(&self) -> u32 {
        self.next
    }

    /// Remaining capacity in bytes.
    #[must_use]
    pub fn remaining(&self) -> u32 {
        self.limit - self.next
    }
}

/// Addresses of a placed sparse fiber.
#[derive(Clone, Copy, Debug)]
pub struct FiberAddrs {
    /// Value array (8-byte aligned).
    pub vals: u32,
    /// Index array (element aligned).
    pub idcs: u32,
    /// Nonzero count.
    pub nnz: u32,
}

/// Places a fiber's arrays; index storage is padded to whole words so
/// DMA transfers stay word-aligned.
pub fn place_fiber<I: KernelIndex>(
    arena: &mut Arena,
    mem: &mut MemArray,
    fiber: &SparseFiber<I>,
) -> FiberAddrs {
    let nnz = fiber.nnz() as u32;
    let vals = arena.alloc(nnz.max(1) * 8, 8);
    let idx_bytes = (nnz.max(1) * I::BYTES + 7) & !7;
    let idcs = arena.alloc(idx_bytes, 8);
    mem.store_f64_slice(vals, fiber.vals());
    I::store_slice(mem, idcs, fiber.idcs());
    FiberAddrs { vals, idcs, nnz }
}

/// Addresses of a placed CSR matrix.
#[derive(Clone, Copy, Debug)]
pub struct CsrAddrs {
    /// Row pointer array (32-bit entries).
    pub ptr: u32,
    /// Column index array.
    pub idcs: u32,
    /// Value array.
    pub vals: u32,
    /// Rows.
    pub nrows: u32,
    /// Nonzero count.
    pub nnz: u32,
}

/// Places a CSR matrix.
pub fn place_csr<I: KernelIndex>(
    arena: &mut Arena,
    mem: &mut MemArray,
    m: &CsrMatrix<I>,
) -> CsrAddrs {
    let ptr = arena.alloc(((m.nrows() as u32 + 1) * 4 + 7) & !7, 8);
    mem.store_u32_slice(ptr, m.ptr());
    let nnz = m.nnz() as u32;
    let vals = arena.alloc(nnz.max(1) * 8, 8);
    mem.store_f64_slice(vals, m.vals());
    let idx_bytes = (nnz.max(1) * I::BYTES + 7) & !7;
    let idcs = arena.alloc(idx_bytes, 8);
    I::store_slice(mem, idcs, m.idcs());
    CsrAddrs { ptr, idcs, vals, nrows: m.nrows() as u32, nnz }
}

/// Places a dense f64 slice (8-byte aligned).
pub fn place_f64s(arena: &mut Arena, mem: &mut MemArray, data: &[f64]) -> u32 {
    let addr = arena.alloc((data.len() as u32).max(1) * 8, 8);
    mem.store_f64_slice(addr, data);
    addr
}

/// Places a dense matrix including its stride padding; returns the base
/// address (row `r` at `base + r * stride * 8`).
pub fn place_dense_matrix(arena: &mut Arena, mem: &mut MemArray, m: &DenseMatrix) -> u32 {
    place_f64s(arena, mem, m.data())
}

/// Allocates an uninitialized result buffer of `len` doubles.
pub fn alloc_result(arena: &mut Arena, len: u32) -> u32 {
    arena.alloc(len.max(1) * 8, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::fiber::SparseFiber;

    #[test]
    fn arena_alignment_and_exhaustion() {
        let mut a = Arena::new(0x1000, 0x100);
        assert_eq!(a.alloc(4, 8), 0x1000);
        assert_eq!(a.alloc(8, 8), 0x1008);
        let unaligned = a.alloc(2, 2);
        assert_eq!(unaligned, 0x1010);
        assert_eq!(a.alloc(8, 8), 0x1018);
        assert!(a.remaining() < 0x100);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn arena_overflow_panics() {
        let mut a = Arena::new(0, 16);
        let _ = a.alloc(32, 8);
    }

    #[test]
    fn fiber_placement_round_trips() {
        let mut arena = Arena::new(0x2000, 0x1000);
        let mut mem = MemArray::new(0x2000, 0x1000);
        let f = SparseFiber::<u16>::new(100, vec![3, 50, 99], vec![1.0, 2.0, 3.0]).unwrap();
        let addrs = place_fiber(&mut arena, &mut mem, &f);
        assert_eq!(addrs.nnz, 3);
        assert_eq!(mem.load_f64(addrs.vals + 8), 2.0);
        assert_eq!(mem.load_u16(addrs.idcs + 2), 50);
        assert_eq!(addrs.vals % 8, 0);
    }

    #[test]
    fn csr_placement_round_trips() {
        let mut arena = Arena::new(0x2000, 0x4000);
        let mut mem = MemArray::new(0x2000, 0x4000);
        let m = issr_sparse::csr::CsrMatrix::<u32>::from_triplets(
            2,
            4,
            &[(0, 1, 5.0), (1, 0, -1.0), (1, 3, 2.0)],
        );
        let addrs = place_csr(&mut arena, &mut mem, &m);
        assert_eq!(mem.load_u32(addrs.ptr), 0);
        assert_eq!(mem.load_u32(addrs.ptr + 4), 1);
        assert_eq!(mem.load_u32(addrs.ptr + 8), 3);
        assert_eq!(mem.load_f64(addrs.vals + 16), 2.0);
        assert_eq!(mem.load_u32(addrs.idcs + 8), 3);
    }
}
