//! Sparse-sparse kernels on the index joiner: SpVV∩ and SpMSpV.
//!
//! Two variants each, for 16- and 32-bit indices:
//!
//! * **BASE** — the classic software two-pointer merge: load both head
//!   indices, branch three ways, advance cursors — around ten
//!   instructions per merge step for a single `fmadd` per match;
//! * **ISSR** — the joiner (lanes 0/1, gather-A mode) matches the index
//!   streams in hardware and the loop collapses to one staggered
//!   `fmadd.d` under FREP, with a *static* trip count (the A-side
//!   length) because the absent side zero-fills.
//!
//! SpMSpV runs the same merge once per CSR row against the shared
//! sparse vector: BASE re-scans `x` in software; ISSR relaunches the
//! joiner per row through the one-deep shadow queue, overlapping the
//! next row's setup with the current row's drain.
//!
//! True `Intersect` streaming (data-dependent emission count) comes in
//! two flavours: the two-pass `JOIN_COUNT` length-prefix handshake
//! ([`build_spvv_ss_dyn`], walks both index streams twice) and the
//! single-pass **stream-terminate** loop ([`build_spvv_ss_term`],
//! `frep.s`): the joiner raises `done` into the FREP sequencer, so the
//! loop ends when the matched-pair stream dries up — one walk, zero
//! pre-passes.

use crate::common::{
    emit_joiner_job, emit_joiner_read, emit_reduction_tree, emit_zero_accumulators,
    reprogram_joiner, ACC0, FZ,
};
use crate::layout::{alloc_result, place_csr, place_fiber, Arena, CsrAddrs, FiberAddrs};
use crate::variant::{issr_accumulators, log_width, KernelIndex, Variant};
use issr_core::cfg::{cfg_addr, join_cfg_word, join_count_cfg_word, reg as sreg, JoinerMode};
use issr_isa::asm::{Assembler, Program};
use issr_isa::instr::Stagger;
use issr_isa::reg::{FpReg, IntReg as R};
use issr_snitch::cc::{RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};
use issr_sparse::csr::CsrMatrix;
use issr_sparse::fiber::SparseFiber;

/// Addresses the sparse-sparse SpVV builders bake into the program.
#[derive(Clone, Copy, Debug)]
pub struct SpvvSsAddrs {
    /// The A-side sparse fiber.
    pub a: FiberAddrs,
    /// The B-side sparse fiber.
    pub b: FiberAddrs,
    /// Result slot (one double).
    pub out: u32,
}

/// Builds the sparse-sparse SpVV program for `variant` with `I`-width
/// indices.
///
/// # Panics
/// Panics for [`Variant::Ssr`]: with both operands sparse there is no
/// meaningful half-streamed variant — the paper's taxonomy degenerates
/// to BASE vs. joiner.
#[must_use]
pub fn build_spvv_ss<I: KernelIndex>(variant: Variant, addrs: SpvvSsAddrs) -> Program {
    let mut asm = Assembler::new();
    match variant {
        Variant::Base => emit_base_spvv_ss::<I>(&mut asm, addrs),
        Variant::Issr => emit_issr_spvv_ss::<I>(&mut asm, addrs),
        Variant::Ssr => panic!("sparse-sparse kernels define BASE and ISSR variants only"),
    }
    asm.halt();
    asm.finish().expect("SpVV∩ program assembles")
}

/// BASE: the software two-pointer merge.
fn emit_base_spvv_ss<I: KernelIndex>(asm: &mut Assembler, addrs: SpvvSsAddrs) {
    let acc = FpReg::FS0;
    let (va, vb) = (FpReg::FT6, FpReg::FT7);
    asm.li_addr(R::S4, addrs.a.idcs);
    asm.li_addr(R::S5, addrs.a.vals);
    asm.li_addr(R::S6, addrs.b.idcs);
    asm.li_addr(R::S7, addrs.b.vals);
    asm.li_addr(R::T4, addrs.a.idcs + addrs.a.nnz * I::BYTES);
    asm.li_addr(R::T5, addrs.b.idcs + addrs.b.nnz * I::BYTES);
    asm.li_addr(R::A2, addrs.out);
    asm.roi_begin();
    asm.fcvt_d_w(acc, R::ZERO);
    let done = asm.new_label();
    if addrs.a.nnz == 0 || addrs.b.nnz == 0 {
        asm.j(done);
    }
    let head = asm.bind_label();
    asm.symbol("merge_loop");
    let adv_a = asm.new_label();
    let adv_b = asm.new_label();
    asm.beq(R::S4, R::T4, done); //      A exhausted
    asm.beq(R::S6, R::T5, done); //      B exhausted
    I::emit_index_load(asm, R::T0, R::S4, 0);
    I::emit_index_load(asm, R::T1, R::S6, 0);
    asm.blt(R::T0, R::T1, adv_a);
    asm.blt(R::T1, R::T0, adv_b);
    asm.fld(va, R::S5, 0); //            match: one useful fmadd
    asm.fld(vb, R::S7, 0);
    asm.fmadd_d(acc, va, vb, acc);
    asm.addi(R::S4, R::S4, I::BYTES as i32);
    asm.addi(R::S5, R::S5, 8);
    asm.bind(adv_b);
    asm.addi(R::S6, R::S6, I::BYTES as i32);
    asm.addi(R::S7, R::S7, 8);
    asm.j(head);
    asm.bind(adv_a);
    asm.addi(R::S4, R::S4, I::BYTES as i32);
    asm.addi(R::S5, R::S5, 8);
    asm.j(head);
    asm.bind(done);
    asm.fsd(acc, R::A2, 0);
    asm.roi_end();
}

/// ISSR: joiner in gather-A mode, one staggered `fmadd` under FREP with
/// the static A-side trip count.
fn emit_issr_spvv_ss<I: KernelIndex>(asm: &mut Assembler, addrs: SpvvSsAddrs) {
    let n_acc = issr_accumulators(I::IDX_SIZE);
    asm.li_addr(R::A2, addrs.out);
    asm.roi_begin();
    if addrs.a.nnz == 0 {
        asm.fcvt_d_w(ACC0, R::ZERO);
        asm.fsd(ACC0, R::A2, 0);
        asm.roi_end();
        return;
    }
    emit_joiner_read::<I>(
        asm,
        JoinerMode::GatherA,
        addrs.a.idcs,
        addrs.a.vals,
        addrs.a.nnz,
        addrs.b.idcs,
        addrs.b.vals,
        addrs.b.nnz,
    );
    asm.csrsi(issr_isa::Csr::Ssr, 1);
    emit_zero_accumulators(asm, ACC0, n_acc);
    asm.li(R::T1, i64::from(addrs.a.nnz) - 1);
    asm.frep_outer(R::T1, 1, Stagger::accumulator(n_acc));
    asm.symbol("issr_ss_body");
    asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
    emit_reduction_tree(asm, ACC0, n_acc);
    asm.fsd(ACC0, R::A2, 0);
    asm.roi_end();
    asm.csrci(issr_isa::Csr::Ssr, 1);
}

/// Builds the *dynamic-trip* ISSR SpVV∩: true `Intersect` streaming via
/// the `JOIN_COUNT` length-prefix handshake. A **count-only** intersect
/// pre-pass runs the comparator without any value traffic and leaves the
/// match count in `JOIN_COUNT`; the core reads it back and uses it as
/// the FREP trip count of a second, real `Intersect` job — so the
/// compute loop executes exactly one `fmadd` per *match*, with no
/// gather-A zero-fill padding. Worthwhile when matches are much rarer
/// than A-side elements; the price is walking both index streams twice.
#[must_use]
pub fn build_spvv_ss_dyn<I: KernelIndex>(addrs: SpvvSsAddrs) -> Program {
    let n_acc = issr_accumulators(I::IDX_SIZE);
    let mut asm = Assembler::new();
    asm.li_addr(R::A2, addrs.out);
    asm.roi_begin();
    if addrs.a.nnz == 0 || addrs.b.nnz == 0 {
        asm.fcvt_d_w(ACC0, R::ZERO);
        asm.fsd(ACC0, R::A2, 0);
        asm.roi_end();
        asm.halt();
        return asm.finish().expect("dynamic SpVV∩ program assembles");
    }
    let launch = |asm: &mut Assembler, cfg_word: u32| {
        emit_joiner_job(
            asm,
            cfg_word,
            addrs.a.idcs,
            addrs.a.vals,
            addrs.a.nnz,
            addrs.b.idcs,
            addrs.b.vals,
            addrs.b.nnz,
        );
    };
    // Pre-pass: count-only intersect, then poll lane 0 until it retires.
    launch(&mut asm, join_count_cfg_word(JoinerMode::Intersect, I::IDX_SIZE));
    let spin = asm.bind_label();
    asm.symbol("count_spin");
    asm.scfgri(R::T1, cfg_addr(sreg::STATUS, 0));
    asm.andi(R::T1, R::T1, 1);
    asm.beqz(R::T1, spin);
    asm.scfgri(R::T2, cfg_addr(sreg::JOIN_COUNT, 0));
    let compute = asm.new_label();
    let end = asm.new_label();
    asm.bnez(R::T2, compute);
    asm.fcvt_d_w(ACC0, R::ZERO);
    asm.fsd(ACC0, R::A2, 0);
    asm.roi_end();
    asm.j(end);
    // Real pass: the matched-pair count is now a static trip count.
    asm.bind(compute);
    asm.symbol("dyn_intersect");
    launch(&mut asm, join_cfg_word(JoinerMode::Intersect, I::IDX_SIZE));
    asm.csrsi(issr_isa::Csr::Ssr, 1);
    emit_zero_accumulators(&mut asm, ACC0, n_acc);
    asm.addi(R::T2, R::T2, -1);
    asm.frep_outer(R::T2, 1, Stagger::accumulator(n_acc));
    asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
    emit_reduction_tree(&mut asm, ACC0, n_acc);
    asm.fsd(ACC0, R::A2, 0);
    asm.roi_end();
    asm.csrci(issr_isa::Csr::Ssr, 1);
    asm.bind(end);
    asm.halt();
    asm.finish().expect("dynamic SpVV∩ program assembles")
}

/// Builds the *single-pass* dynamic SpVV∩: a true `Intersect` job with
/// the **stream-terminate flag** instead of the two-pass `JOIN_COUNT`
/// handshake. The joiner streams matched pairs of data-dependent count
/// and raises `done` into the FREP sequencer; the compute loop is one
/// staggered `fmadd` under `frep.s`, which replays until the streams
/// terminate — each index stream is walked **once**, and the loop runs
/// exactly one `fmadd` per match (zero for disjoint operands) without
/// any pre-counted trip.
#[must_use]
pub fn build_spvv_ss_term<I: KernelIndex>(addrs: SpvvSsAddrs) -> Program {
    let n_acc = issr_accumulators(I::IDX_SIZE);
    let mut asm = Assembler::new();
    asm.li_addr(R::A2, addrs.out);
    asm.roi_begin();
    // No zero-operand special case: an empty side terminates the joiner
    // immediately and the frep.s body runs zero times.
    emit_joiner_read::<I>(
        &mut asm,
        JoinerMode::Intersect,
        addrs.a.idcs,
        addrs.a.vals,
        addrs.a.nnz,
        addrs.b.idcs,
        addrs.b.vals,
        addrs.b.nnz,
    );
    asm.csrsi(issr_isa::Csr::Ssr, 1);
    emit_zero_accumulators(&mut asm, ACC0, n_acc);
    asm.frep_stream(1, Stagger::accumulator(n_acc));
    asm.symbol("issr_term_body");
    asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
    emit_reduction_tree(&mut asm, ACC0, n_acc);
    asm.fsd(ACC0, R::A2, 0);
    asm.roi_end();
    asm.csrci(issr_isa::Csr::Ssr, 1);
    asm.halt();
    asm.finish().expect("stream-terminated SpVV∩ program assembles")
}

/// Marshals the two fibers and runs the single-pass stream-terminated
/// SpVV∩ ([`build_spvv_ss_term`]) on the joiner hardware.
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
pub fn run_spvv_ss_term<I: KernelIndex>(
    a: &SparseFiber<I>,
    b: &SparseFiber<I>,
) -> Result<SpvvSsRun, SimTimeout> {
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::with_joiner(Program::default());
    let a_addrs = place_fiber(&mut arena, sim.mem.array_mut(), a);
    let b_addrs = place_fiber(&mut arena, sim.mem.array_mut(), b);
    let out = alloc_result(&mut arena, 1);
    let program = build_spvv_ss_term::<I>(SpvvSsAddrs { a: a_addrs, b: b_addrs, out });
    sim = reprogram_joiner(sim, program);
    let budget = 100_000 + 64 * u64::from(a_addrs.nnz + b_addrs.nnz);
    let summary = sim.run(budget)?.expect_clean();
    Ok(SpvvSsRun { result: sim.mem.array().load_f64(out), summary })
}

/// Marshals the two fibers and runs the dynamic-trip (JOIN_COUNT
/// handshake) SpVV∩ on the joiner hardware.
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
pub fn run_spvv_ss_dyn<I: KernelIndex>(
    a: &SparseFiber<I>,
    b: &SparseFiber<I>,
) -> Result<SpvvSsRun, SimTimeout> {
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::with_joiner(Program::default());
    let a_addrs = place_fiber(&mut arena, sim.mem.array_mut(), a);
    let b_addrs = place_fiber(&mut arena, sim.mem.array_mut(), b);
    let out = alloc_result(&mut arena, 1);
    let program = build_spvv_ss_dyn::<I>(SpvvSsAddrs { a: a_addrs, b: b_addrs, out });
    sim = reprogram_joiner(sim, program);
    let budget = 100_000 + 128 * u64::from(a_addrs.nnz + b_addrs.nnz);
    let summary = sim.run(budget)?.expect_clean();
    Ok(SpvvSsRun { result: sim.mem.array().load_f64(out), summary })
}

/// Addresses the SpMSpV builders bake into the program.
#[derive(Clone, Copy, Debug)]
pub struct SpmspvAddrs {
    /// The CSR matrix.
    pub a: CsrAddrs,
    /// The sparse vector operand.
    pub x: FiberAddrs,
    /// Result vector base (`nrows` doubles, dense).
    pub y: u32,
}

/// Builds the SpMSpV program.
///
/// # Panics
/// Panics for [`Variant::Ssr`] (see [`build_spvv_ss`]).
#[must_use]
pub fn build_spmspv<I: KernelIndex>(variant: Variant, addrs: SpmspvAddrs) -> Program {
    let mut asm = Assembler::new();
    match variant {
        Variant::Base => emit_base_spmspv::<I>(&mut asm, addrs),
        Variant::Issr => emit_issr_spmspv::<I>(&mut asm, addrs),
        Variant::Ssr => panic!("sparse-sparse kernels define BASE and ISSR variants only"),
    }
    asm.halt();
    asm.finish().expect("SpMSpV program assembles")
}

/// BASE: the two-pointer merge of each row against `x`, re-scanned per
/// row.
///
/// Register roles: `s0` `&ptr[i+1]`, `s1` `&y[i]`, `s2` rows remaining,
/// `s3` A index base, `s4`/`s5` running A index/value cursors, `s6`/`s7`
/// `x` index/value bases, `s8` `x` index end; `t*` per-row scratch.
fn emit_base_spmspv<I: KernelIndex>(asm: &mut Assembler, addrs: SpmspvAddrs) {
    let acc = FpReg::FS0;
    let (va, vx) = (FpReg::FT6, FpReg::FT7);
    let log_w = log_width::<I>();
    asm.li_addr(R::S0, addrs.a.ptr + 4);
    asm.li_addr(R::S1, addrs.y);
    asm.li(R::S2, i64::from(addrs.a.nrows));
    asm.li_addr(R::S3, addrs.a.idcs);
    asm.li_addr(R::S4, addrs.a.idcs);
    asm.li_addr(R::S5, addrs.a.vals);
    asm.li_addr(R::S6, addrs.x.idcs);
    asm.li_addr(R::S7, addrs.x.vals);
    asm.li_addr(R::S8, addrs.x.idcs + addrs.x.nnz * I::BYTES);
    asm.roi_begin();
    if addrs.a.nrows > 0 {
        let outer = asm.bind_label();
        asm.symbol("base_row");
        asm.lw(R::T5, R::S0, 0); //          ptr[i+1]
        asm.addi(R::S0, R::S0, 4);
        asm.fcvt_d_w(acc, R::ZERO);
        asm.slli(R::T4, R::T5, log_w); //    row index end
        asm.add(R::T4, R::T4, R::S3);
        asm.mv(R::T2, R::S6); //             x cursors rewind per row
        asm.mv(R::T3, R::S7);
        let inner = asm.bind_label();
        let row_skip = asm.new_label();
        let row_done = asm.new_label();
        let adv_a = asm.new_label();
        let adv_x = asm.new_label();
        asm.beq(R::S4, R::T4, row_done); //  row exhausted
        asm.beq(R::T2, R::S8, row_skip); //  x exhausted
        I::emit_index_load(asm, R::T0, R::S4, 0);
        I::emit_index_load(asm, R::T1, R::T2, 0);
        asm.blt(R::T0, R::T1, adv_a);
        asm.blt(R::T1, R::T0, adv_x);
        asm.fld(va, R::S5, 0);
        asm.fld(vx, R::T3, 0);
        asm.fmadd_d(acc, va, vx, acc);
        asm.addi(R::S4, R::S4, I::BYTES as i32);
        asm.addi(R::S5, R::S5, 8);
        asm.bind(adv_x);
        asm.addi(R::T2, R::T2, I::BYTES as i32);
        asm.addi(R::T3, R::T3, 8);
        asm.j(inner);
        asm.bind(adv_a);
        asm.addi(R::S4, R::S4, I::BYTES as i32);
        asm.addi(R::S5, R::S5, 8);
        asm.j(inner);
        // x drained early: skip the rest of the row's fiber.
        asm.bind(row_skip);
        asm.sub(R::T0, R::T4, R::S4);
        asm.slli(R::T0, R::T0, 3 - log_w); // index bytes → value bytes
        asm.add(R::S5, R::S5, R::T0);
        asm.mv(R::S4, R::T4);
        asm.bind(row_done);
        asm.fsd(acc, R::S1, 0);
        asm.addi(R::S1, R::S1, 8);
        asm.addi(R::S2, R::S2, -1);
        asm.bnez(R::S2, outer);
    }
    asm.roi_end();
}

/// ISSR: one joiner job per row (gather-A against the shared `x`); the
/// B side stays configured, each row rewrites only its A-side count,
/// value base and launch pointer. The one-deep shadow queue overlaps
/// row *i+1*'s launch with row *i*'s drain.
///
/// Register roles: `s0` `&ptr[i+1]`, `s1` `&y[i]`, `s2` rows remaining,
/// `s3` previous row start `ptr[i]`, `s6` A index base, `s7` A value
/// base; `t*` per-row scratch.
fn emit_issr_spmspv<I: KernelIndex>(asm: &mut Assembler, addrs: SpmspvAddrs) {
    let n_acc = issr_accumulators(I::IDX_SIZE);
    let log_w = log_width::<I>();
    asm.li_addr(R::S0, addrs.a.ptr + 4);
    asm.li_addr(R::S1, addrs.y);
    asm.li(R::S2, i64::from(addrs.a.nrows));
    asm.li(R::S3, 0);
    asm.li_addr(R::S6, addrs.a.idcs);
    asm.li_addr(R::S7, addrs.a.vals);
    asm.roi_begin();
    if addrs.a.nrows > 0 {
        // Static joiner configuration: mode and the shared B side (x).
        asm.li(R::T0, i64::from(join_cfg_word(JoinerMode::GatherA, I::IDX_SIZE)));
        asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
        asm.li_addr(R::T0, addrs.x.idcs);
        asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_IDX_B, 0));
        asm.li_addr(R::T0, addrs.x.vals);
        asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_DATA_B, 0));
        asm.li(R::T0, i64::from(addrs.x.nnz));
        asm.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_B, 0));
        asm.fcvt_d_w(FZ, R::ZERO);
        asm.csrsi(issr_isa::Csr::Ssr, 1);
        let outer = asm.bind_label();
        asm.symbol("issr_row");
        let zero_row = asm.new_label();
        let row_done = asm.new_label();
        asm.lw(R::T5, R::S0, 0); //          ptr[i+1]
        asm.addi(R::S0, R::S0, 4);
        asm.sub(R::T1, R::T5, R::S3); //     row nnz
        asm.beqz(R::T1, zero_row);
        asm.slli(R::T2, R::S3, log_w); //    row index base
        asm.add(R::T2, R::T2, R::S6);
        asm.slli(R::T3, R::S3, 3); //        row value base
        asm.add(R::T3, R::T3, R::S7);
        asm.scfgwi(R::T1, cfg_addr(sreg::JOIN_NNZ_A, 0));
        asm.scfgwi(R::T3, cfg_addr(sreg::DATA_BASE, 0));
        asm.scfgwi(R::T2, cfg_addr(sreg::RPTR[0], 0)); // launch (retries)
        emit_zero_accumulators(asm, ACC0, n_acc);
        asm.addi(R::T1, R::T1, -1);
        asm.frep_outer(R::T1, 1, Stagger::accumulator(n_acc));
        asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
        emit_reduction_tree(asm, ACC0, n_acc);
        asm.fsd(ACC0, R::S1, 0);
        asm.j(row_done);
        asm.bind(zero_row);
        asm.fsd(FZ, R::S1, 0);
        asm.bind(row_done);
        asm.mv(R::S3, R::T5);
        asm.addi(R::S1, R::S1, 8);
        asm.addi(R::S2, R::S2, -1);
        asm.bnez(R::S2, outer);
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
    asm.roi_end();
}

/// Result of one sparse-sparse SpVV run.
#[derive(Clone, Debug)]
pub struct SpvvSsRun {
    /// The computed dot product.
    pub result: f64,
    /// Cycle-level summary.
    pub summary: RunSummary,
}

/// Marshals the two fibers, runs SpVV∩ on the single-CC setup (with the
/// joiner streamer for the ISSR variant), and returns the result.
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
pub fn run_spvv_ss<I: KernelIndex>(
    variant: Variant,
    a: &SparseFiber<I>,
    b: &SparseFiber<I>,
) -> Result<SpvvSsRun, SimTimeout> {
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::with_joiner(Program::default());
    let a_addrs = place_fiber(&mut arena, sim.mem.array_mut(), a);
    let b_addrs = place_fiber(&mut arena, sim.mem.array_mut(), b);
    let out = alloc_result(&mut arena, 1);
    let program = build_spvv_ss::<I>(variant, SpvvSsAddrs { a: a_addrs, b: b_addrs, out });
    sim = reprogram_joiner(sim, program);
    let budget = 100_000 + 64 * u64::from(a_addrs.nnz + b_addrs.nnz);
    let summary = sim.run(budget)?.expect_clean();
    Ok(SpvvSsRun { result: sim.mem.array().load_f64(out), summary })
}

/// Result of one SpMSpV run.
#[derive(Clone, Debug)]
pub struct SpmspvRun {
    /// The computed result vector (dense, `nrows` elements).
    pub y: Vec<f64>,
    /// Cycle-level summary.
    pub summary: RunSummary,
}

/// Marshals the workload, runs SpMSpV, and returns `y` with metrics.
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
pub fn run_spmspv<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &SparseFiber<I>,
) -> Result<SpmspvRun, SimTimeout> {
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::with_joiner(Program::default());
    let a = place_csr(&mut arena, sim.mem.array_mut(), m);
    let x_addrs = place_fiber(&mut arena, sim.mem.array_mut(), x);
    let y = alloc_result(&mut arena, a.nrows.max(1));
    let program = build_spmspv::<I>(variant, SpmspvAddrs { a, x: x_addrs, y });
    sim = reprogram_joiner(sim, program);
    // BASE re-scans x once per row; size the budget to the merge volume.
    let merge_steps = u64::from(a.nnz) + u64::from(a.nrows) * u64::from(x_addrs.nnz + 4);
    let summary = sim.run(200_000 + 64 * merge_steps)?.expect_clean();
    Ok(SpmspvRun { y: sim.mem.array().load_f64_slice(y, m.nrows()), summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::dense::allclose;
    use issr_sparse::{gen, reference};

    fn check_spvv_ss<I: KernelIndex>(
        variant: Variant,
        nnz_a: usize,
        nnz_b: usize,
        overlap: f64,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let dim = 1024;
        let (a, b) = gen::overlapping_pair::<I>(&mut rng, dim, nnz_a, nnz_b, overlap);
        let run = run_spvv_ss(variant, &a, &b).expect("kernel finishes");
        let expect = reference::spvv_ss(&a, &b);
        let tol = 1e-12 * expect.abs().max(1.0);
        assert!(
            (run.result - expect).abs() <= tol,
            "{variant} nnz=({nnz_a},{nnz_b}) overlap={overlap}: got {} expected {expect}",
            run.result
        );
    }

    #[test]
    fn base_spvv_ss_matches_reference() {
        for (nnz_a, nnz_b, overlap) in [(1, 1, 1.0), (17, 90, 0.4), (128, 128, 0.0), (60, 30, 0.9)]
        {
            check_spvv_ss::<u16>(Variant::Base, nnz_a, nnz_b, overlap, 50 + nnz_a as u64);
            check_spvv_ss::<u32>(Variant::Base, nnz_a, nnz_b, overlap, 51 + nnz_b as u64);
        }
    }

    #[test]
    fn issr_spvv_ss_matches_reference() {
        for (nnz_a, nnz_b, overlap) in
            [(1, 1, 0.0), (2, 7, 1.0), (33, 200, 0.5), (100, 100, 0.25), (256, 64, 0.75)]
        {
            check_spvv_ss::<u16>(Variant::Issr, nnz_a, nnz_b, overlap, 60 + nnz_a as u64);
            check_spvv_ss::<u32>(Variant::Issr, nnz_a, nnz_b, overlap, 61 + nnz_b as u64);
        }
    }

    #[test]
    fn spvv_ss_empty_operands() {
        let empty = SparseFiber::<u16>::new(64, vec![], vec![]).unwrap();
        let some = SparseFiber::<u16>::new(64, vec![3, 9], vec![2.0, -1.0]).unwrap();
        for variant in [Variant::Base, Variant::Issr] {
            for (a, b) in [(&empty, &some), (&some, &empty), (&empty, &empty)] {
                let run = run_spvv_ss(variant, a, b).expect("kernel finishes");
                assert_eq!(run.result, 0.0, "{variant}");
            }
        }
    }

    fn check_spmspv<I: KernelIndex>(
        variant: Variant,
        nrows: usize,
        ncols: usize,
        nnz: usize,
        x_nnz: usize,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let m = gen::csr_uniform::<I>(&mut rng, nrows, ncols, nnz);
        let x = gen::sparse_vector::<I>(&mut rng, ncols, x_nnz);
        let run = run_spmspv(variant, &m, &x).expect("kernel finishes");
        let expect = reference::spmspv(&m, &x);
        assert!(
            allclose(&run.y, &expect, 1e-12, 1e-12),
            "{variant} {nrows}x{ncols} nnz={nnz} x_nnz={x_nnz} mismatch"
        );
    }

    #[test]
    fn base_spmspv_matches_reference() {
        check_spmspv::<u16>(Variant::Base, 24, 64, 300, 20, 70);
        check_spmspv::<u32>(Variant::Base, 24, 64, 300, 20, 71);
        check_spmspv::<u16>(Variant::Base, 10, 32, 60, 0, 72); // empty x
        check_spmspv::<u32>(Variant::Base, 12, 16, 0, 8, 73); // empty matrix
    }

    #[test]
    fn issr_spmspv_matches_reference() {
        check_spmspv::<u16>(Variant::Issr, 24, 64, 300, 20, 80);
        check_spmspv::<u32>(Variant::Issr, 24, 64, 300, 20, 81);
        check_spmspv::<u16>(Variant::Issr, 10, 32, 60, 0, 82); // empty x
        check_spmspv::<u32>(Variant::Issr, 12, 16, 0, 8, 83); // empty matrix
        check_spmspv::<u16>(Variant::Issr, 40, 128, 40, 64, 84); // sparse rows
    }

    /// Rows of every length around the accumulator group size exercise
    /// the zero path, sub-group FREP counts and the full pipeline.
    #[test]
    fn issr_spmspv_row_length_edge_cases() {
        let ncols = 64;
        let n_acc = 8usize;
        let mut triplets = Vec::new();
        for (r, len) in (0..=2 * n_acc).enumerate() {
            for j in 0..len {
                triplets.push((r, (j * 5 + r) % ncols, (r + j) as f64 * 0.5 + 1.0));
            }
        }
        let m = CsrMatrix::<u16>::from_triplets(2 * n_acc + 1, ncols, &triplets);
        let x = SparseFiber::<u16>::new(
            ncols,
            (0..ncols as u16).step_by(2).collect(),
            (0..ncols).step_by(2).map(|i| i as f64 * 0.25 - 2.0).collect(),
        )
        .unwrap();
        let run = run_spmspv(Variant::Issr, &m, &x).unwrap();
        assert!(allclose(&run.y, &reference::spmspv(&m, &x), 1e-12, 1e-12));
    }

    /// The joiner variant must beat the software merge by a wide margin
    /// once rows carry enough nonzeros (the headline of the subsystem).
    #[test]
    fn issr_beats_base_merge() {
        let mut rng = gen::rng(90);
        let (a, b) = gen::overlapping_pair::<u16>(&mut rng, 4096, 600, 600, 0.5);
        let base = run_spvv_ss(Variant::Base, &a, &b).unwrap().summary.metrics.roi.cycles;
        let issr = run_spvv_ss(Variant::Issr, &a, &b).unwrap().summary.metrics.roi.cycles;
        let speedup = issr_trace::ratio(base as f64, issr as f64);
        assert!(speedup > 3.0, "SpVV∩ joiner speedup {speedup:.2} (base {base}, issr {issr})");
    }

    /// The dynamic-trip (JOIN_COUNT handshake) variant matches the
    /// oracle across overlaps, widths and empty operands.
    #[test]
    fn dyn_spvv_ss_matches_reference() {
        for (nnz_a, nnz_b, overlap) in
            [(1, 1, 1.0), (2, 7, 0.0), (33, 200, 0.5), (100, 100, 0.25), (256, 64, 1.0)]
        {
            for wide in [false, true] {
                let mut rng = gen::rng(140 + nnz_a as u64 + u64::from(wide));
                let (a32, b32) =
                    gen::overlapping_pair::<u32>(&mut rng, 1024, nnz_a, nnz_b, overlap);
                let (run, expect) = if wide {
                    (
                        run_spvv_ss_dyn(&a32, &b32).expect("kernel finishes"),
                        reference::spvv_ss(&a32, &b32),
                    )
                } else {
                    let (a, b) = (a32.with_index_width::<u16>(), b32.with_index_width::<u16>());
                    (run_spvv_ss_dyn(&a, &b).expect("kernel finishes"), reference::spvv_ss(&a, &b))
                };
                let tol = 1e-12 * expect.abs().max(1.0);
                assert!(
                    (run.result - expect).abs() <= tol,
                    "dyn nnz=({nnz_a},{nnz_b}) overlap={overlap} wide={wide}: \
                     got {} expected {expect}",
                    run.result
                );
            }
        }
        let empty = SparseFiber::<u16>::new(64, vec![], vec![]).unwrap();
        let some = SparseFiber::<u16>::new(64, vec![3, 9], vec![2.0, -1.0]).unwrap();
        for (a, b) in [(&empty, &some), (&some, &empty), (&empty, &empty)] {
            assert_eq!(run_spvv_ss_dyn(a, b).unwrap().result, 0.0);
        }
    }

    /// The single-pass stream-terminated (`frep.s`) variant matches the
    /// oracle across overlaps, widths and empty operands — with ONE
    /// joiner job and one `fmadd` per match.
    #[test]
    fn term_spvv_ss_matches_reference_single_pass() {
        for (nnz_a, nnz_b, overlap) in
            [(1, 1, 1.0), (2, 7, 0.0), (33, 200, 0.5), (100, 100, 0.25), (256, 64, 1.0)]
        {
            for wide in [false, true] {
                let mut rng = gen::rng(150 + nnz_a as u64 + u64::from(wide));
                let (a32, b32) =
                    gen::overlapping_pair::<u32>(&mut rng, 1024, nnz_a, nnz_b, overlap);
                let (run, expect) = if wide {
                    (
                        run_spvv_ss_term(&a32, &b32).expect("kernel finishes"),
                        reference::spvv_ss(&a32, &b32),
                    )
                } else {
                    let (a, b) = (a32.with_index_width::<u16>(), b32.with_index_width::<u16>());
                    (run_spvv_ss_term(&a, &b).expect("kernel finishes"), reference::spvv_ss(&a, &b))
                };
                let tol = 1e-12 * expect.abs().max(1.0);
                assert!(
                    (run.result - expect).abs() <= tol,
                    "term nnz=({nnz_a},{nnz_b}) overlap={overlap} wide={wide}: \
                     got {} expected {expect}",
                    run.result
                );
                let stats = run.summary.joiner_stats;
                assert_eq!(stats.jobs, 1, "single pass: exactly one joiner job");
                assert_eq!(
                    run.summary.metrics.roi.fmadds, stats.matches,
                    "one fmadd per match, no zero-fill padding"
                );
            }
        }
        let empty = SparseFiber::<u16>::new(64, vec![], vec![]).unwrap();
        let some = SparseFiber::<u16>::new(64, vec![3, 9], vec![2.0, -1.0]).unwrap();
        for (a, b) in [(&empty, &some), (&some, &empty), (&empty, &empty)] {
            let run = run_spvv_ss_term(a, b).unwrap();
            assert_eq!(run.result, 0.0);
            assert_eq!(run.summary.metrics.roi.fmadds, 0, "zero-trip stream loop");
        }
    }

    /// The terminate flag halves the index traffic of the two-pass
    /// handshake: same result, one walk instead of two.
    #[test]
    fn term_spvv_ss_walks_streams_once() {
        let mut rng = gen::rng(155);
        let (a, b) = gen::overlapping_pair::<u16>(&mut rng, 512, 64, 64, 0.25);
        let dynamic = run_spvv_ss_dyn(&a, &b).unwrap();
        let term = run_spvv_ss_term(&a, &b).unwrap();
        assert_eq!(term.result, dynamic.result);
        assert_eq!(term.summary.joiner_stats.jobs, 1);
        assert_eq!(dynamic.summary.joiner_stats.jobs, 2);
        assert!(
            term.summary.joiner_stats.idx_words * 2 <= dynamic.summary.joiner_stats.idx_words + 2,
            "single pass fetches about half the index words ({} vs {})",
            term.summary.joiner_stats.idx_words,
            dynamic.summary.joiner_stats.idx_words
        );
        assert!(
            term.summary.metrics.roi.cycles < dynamic.summary.metrics.roi.cycles,
            "single pass is faster ({} vs {})",
            term.summary.metrics.roi.cycles,
            dynamic.summary.metrics.roi.cycles
        );
    }

    /// The handshake runs two joiner jobs (count pass + real pass) when
    /// matches exist, and the compute loop sees exactly the match count.
    #[test]
    fn dyn_spvv_ss_uses_count_prepass() {
        let mut rng = gen::rng(145);
        let (a, b) = gen::overlapping_pair::<u16>(&mut rng, 512, 64, 64, 0.25);
        let run = run_spvv_ss_dyn(&a, &b).unwrap();
        let stats = run.summary.joiner_stats;
        assert_eq!(stats.jobs, 2, "count-only pre-pass plus real pass");
        assert_eq!(stats.emissions, 32, "16 counted + 16 emitted");
        assert_eq!(run.summary.metrics.roi.fmadds, 16, "one fmadd per match");
        // Disjoint operands: the real pass is skipped entirely.
        let (a, b) = gen::overlapping_pair::<u16>(&mut rng, 512, 32, 32, 0.0);
        let run = run_spvv_ss_dyn(&a, &b).unwrap();
        assert_eq!(run.summary.joiner_stats.jobs, 1);
        assert_eq!(run.summary.joiner_stats.val_reads, 0);
        assert_eq!(run.result, 0.0);
    }

    /// Joiner activity is reported through the run summary.
    #[test]
    fn joiner_stats_surface_in_summary() {
        let mut rng = gen::rng(91);
        let (a, b) = gen::overlapping_pair::<u16>(&mut rng, 512, 64, 64, 0.5);
        let run = run_spvv_ss(Variant::Issr, &a, &b).unwrap();
        let stats = run.summary.joiner_stats;
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.emissions, 64);
        assert_eq!(stats.matches, 32);
        // BASE runs on plain hardware: no joiner activity.
        let base = run_spvv_ss(Variant::Base, &a, &b).unwrap();
        assert_eq!(base.summary.joiner_stats.jobs, 0);
    }
}
