//! Kernel variant taxonomy (§III-B).

use issr_core::serializer::IndexSize;
use issr_isa::asm::Assembler;
use issr_isa::reg::IntReg;
use issr_mem::array::MemArray;
use issr_sparse::index::IndexValue;

/// The three implementations the paper compares for every kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Stock RISC-V optimized baseline (9-instruction indirection loop).
    Base,
    /// FREP + SSR streaming the sparse values; indirection in software.
    Ssr,
    /// FREP + SSR + ISSR: indirection in hardware (the contribution).
    Issr,
}

impl Variant {
    /// All variants in presentation order.
    pub const ALL: [Variant; 3] = [Variant::Base, Variant::Ssr, Variant::Issr];

    /// Display name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Base => "BASE",
            Variant::Ssr => "SSR",
            Variant::Issr => "ISSR",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Index widths usable by the generated kernels: ties the sparse-side
/// [`IndexValue`] to the streamer's [`IndexSize`] and to the right
/// load instruction / store routine.
pub trait KernelIndex: IndexValue {
    /// Streamer index-size configuration.
    const IDX_SIZE: IndexSize;

    /// Emits the zero-extending load of one index: `rd = [rs1 + offset]`.
    fn emit_index_load(asm: &mut Assembler, rd: IntReg, rs1: IntReg, offset: i32);

    /// Emits the store of one index: `[rs1 + offset] = rs2` (`sh`/`sw`).
    fn emit_index_store(asm: &mut Assembler, rs2: IntReg, rs1: IntReg, offset: i32);

    /// Stores an index slice into simulated memory.
    fn store_slice(mem: &mut MemArray, addr: u32, idcs: &[Self]);

    /// Reads an index slice back from simulated memory.
    fn load_slice(mem: &MemArray, addr: u32, len: usize) -> Vec<Self>;
}

impl KernelIndex for u16 {
    const IDX_SIZE: IndexSize = IndexSize::U16;

    fn emit_index_load(asm: &mut Assembler, rd: IntReg, rs1: IntReg, offset: i32) {
        asm.lhu(rd, rs1, offset);
    }

    fn emit_index_store(asm: &mut Assembler, rs2: IntReg, rs1: IntReg, offset: i32) {
        asm.sh(rs2, rs1, offset);
    }

    fn store_slice(mem: &mut MemArray, addr: u32, idcs: &[Self]) {
        mem.store_u16_slice(addr, idcs);
    }

    fn load_slice(mem: &MemArray, addr: u32, len: usize) -> Vec<Self> {
        mem.load_u16_slice(addr, len)
    }
}

impl KernelIndex for u32 {
    const IDX_SIZE: IndexSize = IndexSize::U32;

    fn emit_index_load(asm: &mut Assembler, rd: IntReg, rs1: IntReg, offset: i32) {
        asm.lw(rd, rs1, offset);
    }

    fn emit_index_store(asm: &mut Assembler, rs2: IntReg, rs1: IntReg, offset: i32) {
        asm.sw(rs2, rs1, offset);
    }

    fn store_slice(mem: &mut MemArray, addr: u32, idcs: &[Self]) {
        mem.store_u32_slice(addr, idcs);
    }

    fn load_slice(mem: &MemArray, addr: u32, len: usize) -> Vec<Self> {
        mem.load_u32_slice(addr, len)
    }
}

/// Log2 of the index width in bytes (row-pointer to byte-offset shifts
/// in the generated kernels).
#[must_use]
pub fn log_width<I: KernelIndex>() -> i32 {
    if I::BYTES == 2 {
        1
    } else {
        2
    }
}

/// Accumulator depth of the staggered ISSR FREP loop: the 16-bit kernel
/// sustains a higher issue rate and needs more accumulators to cover FMA
/// latency, which also lengthens its reduction — the source of the
/// 16/32-bit crossover around nnz ≈ 20 in Figs. 4a/4b.
#[must_use]
pub fn issr_accumulators(size: IndexSize) -> u8 {
    match size {
        IndexSize::U16 => 8,
        IndexSize::U32 => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Variant::Base.name(), "BASE");
        assert_eq!(Variant::Ssr.to_string(), "SSR");
        assert_eq!(Variant::ALL.len(), 3);
    }

    #[test]
    fn index_bridge() {
        assert_eq!(<u16 as KernelIndex>::IDX_SIZE, IndexSize::U16);
        assert_eq!(<u32 as KernelIndex>::IDX_SIZE, IndexSize::U32);
        assert!(issr_accumulators(IndexSize::U16) > issr_accumulators(IndexSize::U32));
    }
}
