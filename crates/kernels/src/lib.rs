//! # issr-kernels
//!
//! The paper's kernels (§III): SpVV, CsrMV and CsrMM in BASE / SSR /
//! ISSR variants for 16- and 32-bit indices, the multicore cluster
//! CsrMV, the further indirection applications of §III-C (codebook
//! decoding, scatter/gather streaming), the sparse-sparse SpVV∩ /
//! SpMSpV kernels on the index joiner ([`spmspv`]), row-wise Gustavson
//! SpGEMM on the sparse-output subsystem ([`spgemm`]), their multicore
//! cluster versions ([`cluster_spmspv`], [`cluster_spgemm`]), and the
//! multi-cluster tiled out-of-TCDM drivers ([`system_csrmv`],
//! [`system_spgemm`]) that claim row panels from a shared main-memory
//! work queue.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod cluster_csrmv;
pub mod cluster_spgemm;
pub mod cluster_spmspv;
pub mod common;
pub mod csf_ttv;
pub mod csrmm;
pub mod csrmv;
pub mod layout;
pub mod spgemm;
pub mod spmspv;
pub mod spvv;
pub mod stencil;
pub mod streaming;
pub mod system_csrmv;
pub mod system_spgemm;
pub mod variant;

pub use catalog::{catalog, CatalogEntry};
pub use cluster_csrmv::{
    build_cluster_csrmv, run_cluster_csrmv, ClusterCsrmvPlan, ClusterCsrmvRun,
};
pub use cluster_spgemm::{
    build_cluster_spgemm, run_cluster_spgemm, run_cluster_spgemm_recover, ClusterSpgemmPlan,
    ClusterSpgemmRecovery, ClusterSpgemmRun,
};
pub use cluster_spmspv::{
    build_cluster_spmspv, run_cluster_spmspv, ClusterSpmspvPlan, ClusterSpmspvRun,
};
pub use csf_ttv::{run_csf_ttv, CsfTtvRun};
pub use csrmm::{build_csrmm, run_csrmm, CsrmmAddrs, CsrmmRun};
pub use csrmv::{build_csrmv, run_csrmv, CsrmvAddrs, CsrmvRun};
pub use spgemm::{
    build_spgemm, build_spgemm_capped, run_spgemm, run_spgemm_recover, SpgemmAddrs, SpgemmRecovery,
    SpgemmRun,
};
pub use spmspv::{
    build_spmspv, build_spvv_ss, build_spvv_ss_dyn, run_spmspv, run_spvv_ss, run_spvv_ss_dyn,
    SpmspvAddrs, SpmspvRun, SpvvSsAddrs, SpvvSsRun,
};
pub use spvv::{build_spvv, run_spvv, SpvvAddrs, SpvvRun};
pub use stencil::{run_stencil, SparseStencil, StencilRun};
pub use streaming::{run_codebook_spvv, run_gather, run_scatter, StreamRun};
pub use system_csrmv::{build_system_csrmv, run_system_csrmv, SystemCsrmvRun};
pub use system_spgemm::{
    build_system_spgemm, run_system_spgemm, SystemSpgemmPlan, SystemSpgemmRun,
};
pub use variant::{issr_accumulators, KernelIndex, Variant};
