//! Multi-cluster CsrMV: the cluster DMA experiment (§IV-B) scaled out
//! to N clusters behind one bandwidth-arbitrated main memory.
//!
//! The row-block partition is [`crate::cluster_csrmv`]'s, but blocks
//! are no longer walked in sequence by one DMCC: every cluster's DMCC
//! **claims** blocks dynamically from a shared work queue — a hardware
//! fetch-and-add ticket word in main memory
//! ([`issr_system::system::System::set_work_queue`]) — so load balance
//! falls out of the claim order instead of a static split. Within a
//! cluster the choreography is the single-cluster kernel's: the DMCC
//! double-buffers each claimed block's values + indices into the TCDM
//! while the workers process the previous block, rows statically
//! striped among them. Two deltas:
//!
//! * the ready handshake carries the **claimed block id** next to the
//!   monotonic sequence flag (`BLK_ID[seq & 1]`), since block ids no
//!   longer equal sequence numbers; a negative id is the termination
//!   sentinel;
//! * the result is written back **per block**: after the workers finish
//!   a block, the DMCC DMAs that block's contiguous `y` rows to main
//!   memory (rows are disjoint across blocks, so clusters never write
//!   the same words), overlapping the write-back with the next block's
//!   compute.
//!
//! Per row the arithmetic is the single-cluster kernel's, in the same
//! order — the result is bit-identical to [`crate::cluster_csrmv`]
//! whatever the cluster count or claim interleaving.

use crate::cluster_csrmv::{
    emit_worker_block_body, emit_worker_issr_cfg, ClusterCsrmvPlan, CsrmvWorkerGeom, BUF_A,
    FLAG_DONE, FLAG_META, FLAG_READY, VALS_CAP,
};
use crate::common::{emit_parity_slot, emit_wait_all_done};
use crate::variant::{KernelIndex, Variant};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;
use issr_mem::map::TCDM_BASE;
use issr_snitch::cc::SimTimeout;
use issr_sparse::csr::CsrMatrix;
use issr_system::system::{System, SystemParams, SystemSummary};

/// Claimed-block-id slots of the ready handshake (one per buffer), in
/// the flag area below the data region. A negative id terminates the
/// workers.
const BLK_ID: u32 = TCDM_BASE + 0x60;

/// Builds the SPMD system program (identical on every cluster; harts
/// dispatch on `mhartid`, clusters on the work-queue tickets).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_system_csrmv<I: KernelIndex>(variant: Variant, plan: &ClusterCsrmvPlan) -> Program {
    assert!(plan.n_workers.is_power_of_two(), "the static row split shifts by log2(workers)");
    assert!(
        matches!(variant, Variant::Base | Variant::Issr),
        "system CsrMV is evaluated for BASE and ISSR"
    );
    let nblocks = plan.blocks.len() as u32;
    let mut asm = Assembler::new();
    asm.csrr(R::A7, Csr::MHartId);
    let dmcc_entry = asm.new_label();
    asm.li(R::T0, i64::from(plan.n_workers));
    asm.beq(R::A7, R::T0, dmcc_entry);

    // ---------------- worker ----------------
    asm.symbol("worker");
    // Wait for resident data (x, ptr, descriptors).
    asm.li_addr(R::T0, FLAG_META);
    let spin_meta = asm.bind_label();
    asm.lw(R::T1, R::T0, 0);
    asm.beqz(R::T1, spin_meta);
    // Static state: descriptor base, sequence counter, y stride (the
    // row loops advance `s1` by `s8`), done-flag slot.
    asm.li_addr(R::S9, plan.tcdm_desc);
    asm.li(R::S10, 0);
    asm.li(R::S8, 8);
    asm.li_addr(R::A6, FLAG_DONE);
    asm.slli(R::T0, R::A7, 3);
    asm.add(R::A6, R::A6, R::T0);
    if variant == Variant::Issr {
        emit_worker_issr_cfg::<I>(&mut asm, plan.tcdm_x);
    }
    asm.roi_begin();
    let worker_end = asm.new_label();
    let block_loop = asm.bind_label();
    asm.symbol("worker_block");
    // Wait ready[seq & 1] >= seq + 1, then read the claimed block id.
    emit_parity_slot(&mut asm, FLAG_READY, R::S10);
    asm.addi(R::T3, R::S10, 1);
    let spin_ready = asm.bind_label();
    asm.lw(R::T2, R::T0, 0);
    asm.blt(R::T2, R::T3, spin_ready);
    emit_parity_slot(&mut asm, BLK_ID, R::S10);
    asm.lw(R::T4, R::T0, 0);
    asm.blt(R::T4, R::ZERO, worker_end); // sentinel: no more blocks
    let signal_done = asm.new_label();
    emit_worker_block_body::<I>(&mut asm, variant, &CsrmvWorkerGeom::of(plan), R::T4, signal_done);
    asm.bind(signal_done);
    asm.addi(R::T0, R::S10, 1);
    asm.sw(R::T0, R::A6, 0);
    asm.addi(R::S10, R::S10, 1);
    asm.j(block_loop);
    asm.bind(worker_end);
    asm.roi_end();
    if variant == Variant::Issr {
        asm.csrci(Csr::Ssr, 1);
    }
    asm.halt();

    // ---------------- DMCC ----------------
    asm.bind(dmcc_entry);
    asm.symbol("dmcc");
    // Meta transfer: x | ptr | descriptors in one DMA.
    asm.li_addr(R::A0, plan.main_meta);
    asm.li_addr(R::A1, plan.tcdm_x);
    asm.dmsrc(R::A0, R::ZERO);
    asm.dmdst(R::A1, R::ZERO);
    asm.li(R::A2, i64::from(plan.meta_bytes));
    asm.dmcpyi(R::ZERO, R::A2, 0);
    let poll_meta = asm.bind_label();
    asm.dmstati(R::T0, 0);
    asm.beqz(R::T0, poll_meta);
    asm.li(R::T1, 1);
    asm.li_addr(R::T2, FLAG_META);
    asm.sw(R::T1, R::T2, 0);
    asm.li(R::S7, 1); //  DMA transfers issued so far
    asm.li(R::S10, 0); // local block sequence number
    asm.li(R::S1, -1); // previously claimed block id (none yet)
    let dmcc_finish = asm.new_label();
    let claim_loop = asm.bind_label();
    asm.symbol("dmcc_claim");
    // Claim the next block from the shared ticket counter.
    asm.li_addr(R::T0, plan.queue_addr());
    asm.lw(R::S0, R::T0, 0); // hardware fetch-and-add
    asm.li(R::T1, i64::from(nblocks));
    asm.bge(R::S0, R::T1, dmcc_finish); // queue drained
                                        // Before overwriting buffer seq & 1, wait for every worker to be
                                        // done with local block seq - 2 (monotonic: done >= seq - 1).
    let no_wait = asm.new_label();
    asm.addi(R::T0, R::S10, -2);
    asm.blt(R::T0, R::ZERO, no_wait);
    asm.addi(R::T3, R::S10, -1);
    emit_wait_all_done(&mut asm, FLAG_DONE, plan.n_workers, R::T3);
    asm.bind(no_wait);
    // Descriptor: DMA sources and lengths of the claimed block.
    asm.slli(R::T4, R::S0, 5);
    asm.li_addr(R::T5, plan.tcdm_desc);
    asm.add(R::T4, R::T4, R::T5);
    asm.lw(R::A0, R::T4, 16); // vals_src
    asm.lw(R::A1, R::T4, 20); // vals_len
    asm.lw(R::A2, R::T4, 24); // idcs_src
    asm.lw(R::A3, R::T4, 28); // idcs_len
                              // Destination buffer seq & 1.
    asm.andi(R::T0, R::S10, 1);
    asm.slli(R::T0, R::T0, 16);
    asm.li_addr(R::T1, BUF_A);
    asm.add(R::T0, R::T0, R::T1);
    asm.dmsrc(R::A0, R::ZERO);
    asm.dmdst(R::T0, R::ZERO);
    asm.dmcpyi(R::ZERO, R::A1, 0);
    asm.li(R::T2, i64::from(VALS_CAP));
    asm.add(R::T2, R::T2, R::T0);
    asm.dmsrc(R::A2, R::ZERO);
    asm.dmdst(R::T2, R::ZERO);
    asm.dmcpyi(R::ZERO, R::A3, 0);
    asm.addi(R::S7, R::S7, 2);
    let poll_block = asm.bind_label();
    asm.dmstati(R::T3, 0);
    asm.blt(R::T3, R::S7, poll_block);
    // Publish: the claimed id first, then the monotonic ready flag.
    emit_parity_slot(&mut asm, BLK_ID, R::S10);
    asm.sw(R::S0, R::T0, 0);
    emit_parity_slot(&mut asm, FLAG_READY, R::S10);
    asm.addi(R::T2, R::S10, 1);
    asm.sw(R::T2, R::T0, 0);
    // Write back the previous block's y panel while the workers chew on
    // the block just published (they already have its ready flag).
    let no_prev = asm.new_label();
    asm.blt(R::S1, R::ZERO, no_prev);
    emit_wait_all_done(&mut asm, FLAG_DONE, plan.n_workers, R::S10); // prev block finished
    emit_y_writeback(&mut asm, plan);
    asm.bind(no_prev);
    asm.mv(R::S1, R::S0);
    asm.addi(R::S10, R::S10, 1);
    asm.j(claim_loop);
    asm.bind(dmcc_finish);
    asm.symbol("dmcc_finish");
    // Drain: write back the last claimed block, then terminate workers.
    let no_last = asm.new_label();
    asm.blt(R::S1, R::ZERO, no_last);
    emit_wait_all_done(&mut asm, FLAG_DONE, plan.n_workers, R::S10);
    emit_y_writeback(&mut asm, plan);
    asm.bind(no_last);
    emit_parity_slot(&mut asm, BLK_ID, R::S10);
    asm.li(R::T2, -1);
    asm.sw(R::T2, R::T0, 0);
    emit_parity_slot(&mut asm, FLAG_READY, R::S10);
    asm.addi(R::T2, R::S10, 1);
    asm.sw(R::T2, R::T0, 0);
    asm.halt();
    asm.finish().expect("system CsrMV program assembles")
}

/// Emits the y-panel write-back of the block whose id sits in `s1`:
/// reads its `row_start`/`row_count` from the resident descriptor and
/// DMAs the contiguous y rows to main memory, polling to completion
/// (`s7` tracks issued transfers). Clobbers `t0`–`t5`, `a0`, `a1`.
fn emit_y_writeback(asm: &mut Assembler, plan: &ClusterCsrmvPlan) {
    asm.slli(R::T4, R::S1, 5);
    asm.li_addr(R::T5, plan.tcdm_desc);
    asm.add(R::T4, R::T4, R::T5);
    asm.lw(R::A0, R::T4, 0); // row_start
    asm.lw(R::A1, R::T4, 4); // row_count
    asm.slli(R::T0, R::A0, 3);
    asm.li_addr(R::T1, plan.tcdm_y);
    asm.add(R::T0, R::T0, R::T1); // TCDM source
    asm.slli(R::T2, R::A0, 3);
    asm.li_addr(R::T3, plan.main_y);
    asm.add(R::T2, R::T2, R::T3); // main destination
    asm.dmsrc(R::T0, R::ZERO);
    asm.dmdst(R::T2, R::ZERO);
    asm.slli(R::A1, R::A1, 3);
    asm.dmcpyi(R::ZERO, R::A1, 0);
    asm.addi(R::S7, R::S7, 1);
    let poll = asm.bind_label();
    asm.dmstati(R::T3, 0);
    asm.blt(R::T3, R::S7, poll);
}

/// Result of one system CsrMV run.
#[derive(Clone, Debug)]
pub struct SystemCsrmvRun {
    /// The result vector, read back from the shared main memory.
    pub y: Vec<f64>,
    /// System-wide summary (per-cluster summaries + contention stats).
    pub summary: SystemSummary,
}

/// Runs system CsrMV end to end on `n_clusters` default clusters
/// (plan → marshal → simulate → read back).
///
/// # Errors
/// Returns [`SimTimeout`] if the system deadlocks or exceeds its cycle
/// budget (a bug).
///
/// # Panics
/// Panics if any core traps (the workload is trap-free by
/// construction).
pub fn run_system_csrmv<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
    n_clusters: usize,
) -> Result<SystemCsrmvRun, SimTimeout> {
    run_system_csrmv_with(variant, m, x, SystemParams { n_clusters, ..SystemParams::default() })
}

/// [`run_system_csrmv`] with explicit system parameters (bandwidth and
/// latency sweeps, cluster scaling studies).
///
/// # Errors
/// Returns [`SimTimeout`] if the system deadlocks or exceeds its cycle
/// budget (a bug).
///
/// # Panics
/// As [`run_system_csrmv`].
pub fn run_system_csrmv_with<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
    params: SystemParams,
) -> Result<SystemCsrmvRun, SimTimeout> {
    Ok(run_system_csrmv_inner(variant, m, x, params, None)?.0)
}

/// [`run_system_csrmv_with`] with the interval recorder enabled
/// (`trace_cap` spans per track): returns the run plus the Chrome
/// trace-event export — one track per hart, stream lane and DMA engine
/// of every cluster, loadable at `ui.perfetto.dev`. Tracing only reads
/// state the simulation latches anyway, so the run is cycle-identical
/// to the untraced one.
///
/// # Errors
/// As [`run_system_csrmv_with`].
///
/// # Panics
/// As [`run_system_csrmv`].
pub fn run_system_csrmv_traced<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
    params: SystemParams,
    trace_cap: usize,
) -> Result<(SystemCsrmvRun, issr_trace::Json), SimTimeout> {
    let (run, trace) = run_system_csrmv_inner(variant, m, x, params, Some(trace_cap))?;
    Ok((run, trace.expect("tracing was enabled")))
}

/// [`run_system_csrmv_with`] with every observability recorder armed:
/// per-cluster post-mortem flight recorders (`recorder_cap` transitions
/// each) plus the live wait-graph recorders. Returns the run and the
/// system's merged live wait graph. All recorders read only latched
/// per-tick state, so the run is bit- and cycle-identical to the plain
/// one — the property the observability tests pin down.
///
/// # Errors
/// As [`run_system_csrmv_with`].
///
/// # Panics
/// As [`run_system_csrmv`].
pub fn run_system_csrmv_recorded<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
    params: SystemParams,
    recorder_cap: usize,
) -> Result<(SystemCsrmvRun, issr_trace::WaitGraph), SimTimeout> {
    let plan = ClusterCsrmvPlan::new(m, params.cluster.n_workers as u32);
    let program = build_system_csrmv::<I>(variant, &plan);
    let mut system = System::new(program, params);
    system.enable_flight_recorders(recorder_cap);
    system.enable_waitgraphs();
    plan.marshal_into(system.main.array_mut(), m, x);
    system.set_work_queue(plan.queue_addr());
    let budget = 1_000_000 + 64 * m.nnz() as u64 + 1024 * m.nrows() as u64;
    let summary = system.run(budget)?;
    assert!(summary.traps().is_empty(), "system cores trapped: {:?}", summary.traps());
    let graph = system.live_wait_graph();
    Ok((SystemCsrmvRun { y: plan.read_y_from(system.main.array()), summary }, graph))
}

fn run_system_csrmv_inner<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
    params: SystemParams,
    trace_cap: Option<usize>,
) -> Result<(SystemCsrmvRun, Option<issr_trace::Json>), SimTimeout> {
    let plan = ClusterCsrmvPlan::new(m, params.cluster.n_workers as u32);
    let program = build_system_csrmv::<I>(variant, &plan);
    let mut system = System::new(program, params);
    if let Some(cap) = trace_cap {
        system.enable_tracing(cap);
    }
    plan.marshal_into(system.main.array_mut(), m, x);
    system.set_work_queue(plan.queue_addr());
    let budget = 1_000_000 + 64 * m.nnz() as u64 + 1024 * m.nrows() as u64;
    let summary = system.run(budget)?;
    assert!(summary.traps().is_empty(), "system cores trapped: {:?}", summary.traps());
    let trace = system.trace_json();
    Ok((SystemCsrmvRun { y: plan.read_y_from(system.main.array()), summary }, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_csrmv::run_cluster_csrmv;
    use issr_sparse::dense::allclose;
    use issr_sparse::{gen, reference};

    fn bits(y: &[f64]) -> Vec<u64> {
        y.iter().map(|v| v.to_bits()).collect()
    }

    fn check_identity<I: KernelIndex>(
        variant: Variant,
        nrows: usize,
        ncols: usize,
        nnz: usize,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let m = gen::csr_uniform::<I>(&mut rng, nrows, ncols, nnz);
        let x = gen::dense_vector(&mut rng, ncols);
        let single = run_cluster_csrmv(variant, &m, &x).expect("cluster run finishes");
        for n_clusters in [1usize, 2, 4] {
            let sys = run_system_csrmv(variant, &m, &x, n_clusters).expect("system run finishes");
            assert_eq!(
                bits(&sys.y),
                bits(&single.y),
                "{variant} {n_clusters} clusters must be bit-identical to the cluster kernel"
            );
        }
        assert!(allclose(&single.y, &reference::csrmv(&m, &x), 1e-12, 1e-12));
    }

    #[test]
    fn issr_system_bit_identical_to_cluster() {
        check_identity::<u16>(Variant::Issr, 96, 128, 900, 70);
        check_identity::<u32>(Variant::Issr, 96, 128, 900, 71);
    }

    #[test]
    fn base_system_bit_identical_to_cluster() {
        check_identity::<u16>(Variant::Base, 96, 128, 900, 72);
    }

    /// Multi-block workloads force both buffers and the dynamic claim
    /// path on every cluster.
    #[test]
    fn multi_block_claims_stay_bit_identical() {
        check_identity::<u16>(Variant::Issr, 400, 256, 16_000, 73);
    }

    /// Degenerate shapes: empty matrix, fewer rows than workers.
    #[test]
    fn degenerate_shapes() {
        let m = CsrMatrix::<u16>::from_triplets(6, 64, &[(0, 3, 2.0), (5, 60, -1.0)]);
        let x: Vec<f64> = (0..64).map(|i| f64::from(i as u32) * 0.5).collect();
        let single = run_cluster_csrmv(Variant::Issr, &m, &x).unwrap();
        let sys = run_system_csrmv(Variant::Issr, &m, &x, 2).unwrap();
        assert_eq!(bits(&sys.y), bits(&single.y));
    }

    /// With several clusters and plenty of blocks, more than one cluster
    /// must actually claim work (the queue balances, not starves).
    #[test]
    fn work_spreads_across_clusters() {
        let mut rng = gen::rng(74);
        let m = gen::csr_uniform::<u16>(&mut rng, 400, 256, 16_000);
        let x = gen::dense_vector(&mut rng, 256);
        let sys = run_system_csrmv(Variant::Issr, &m, &x, 2).unwrap();
        let active = sys
            .summary
            .clusters
            .iter()
            .filter(|c| c.dma_stats.words_in > c.dma_stats.words_out)
            .count();
        assert_eq!(active, 2, "both clusters must pull matrix blocks");
        assert!(sys.summary.overlap_cycles > 0, "DMA must overlap compute");
    }
}
