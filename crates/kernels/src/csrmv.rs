//! CSR matrix-vector product kernels (CsrMV, §III-B).
//!
//! All variants walk the row pointer array with the integer core; the
//! inner per-row product is the corresponding SpVV loop. The ISSR
//! variant applies the paper's two optimizations:
//!
//! * the **entire matrix fiber** (values + indices) streams in a single
//!   SSR job and a single ISSR job, eliminating per-row setup;
//! * the first accumulator-group's worth of `fmadd`s in each row is
//!   **unrolled** against the constant-zero register (no re-zeroing),
//!   with a branch ladder to shorter reductions for rows with fewer
//!   elements — FREP and the full reduction are issued only when a row
//!   is long enough to need them.
//!
//! The same row-loop generator is reused by CsrMM (`csrmm.rs`), which
//! wraps it in a dense-column loop with register-held bases.

use crate::common::{emit_reduction_tree, ACC0, FZ};
use crate::layout::{alloc_result, place_csr, place_f64s, Arena, CsrAddrs};
use crate::variant::{issr_accumulators, KernelIndex, Variant};
use issr_isa::asm::{Assembler, Program};
use issr_isa::instr::Stagger;
use issr_isa::reg::{FpReg, IntReg as R};
use issr_snitch::cc::{RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};
use issr_sparse::csr::CsrMatrix;

/// Addresses the CsrMV builders bake into the program.
#[derive(Clone, Copy, Debug)]
pub struct CsrmvAddrs {
    /// The CSR matrix.
    pub a: CsrAddrs,
    /// Dense vector base.
    pub x: u32,
    /// Result vector base.
    pub y: u32,
}

/// Register conventions of the row loop (shared with CsrMM):
///
/// | reg | role |
/// |---|---|
/// | `s0` | `&ptr[i+1]` cursor |
/// | `s1` | `&y[i]` cursor |
/// | `s2` | rows remaining |
/// | `s3` | `ptr[i]` (previous row end) |
/// | `s4` | index-array cursor (BASE/SSR) |
/// | `s5` | value-array cursor (BASE) |
/// | `s6` | dense base for software indirection (BASE/SSR) |
/// | `s7` | index/value array base for row-end computation |
/// | `s8` | result stride in bytes (y cursor bump) |
/// | `t0..t5` | scratch |
pub struct RowLoopCtx {
    /// Left-shift applied to an index to reach the dense element:
    /// 3 for a vector, `3 + log2(stride)` for a matrix column.
    pub idx_shift: u32,
    /// Whether this is one column of a CsrMM (bases live in registers).
    pub restore_cursors: bool,
}

/// Builds the CsrMV program.
#[must_use]
pub fn build_csrmv<I: KernelIndex>(variant: Variant, addrs: CsrmvAddrs) -> Program {
    let mut asm = Assembler::new();
    // Static prologue: materialize cursors.
    asm.li_addr(R::S0, addrs.a.ptr + 4);
    asm.li_addr(R::S1, addrs.y);
    asm.li(R::S2, i64::from(addrs.a.nrows));
    asm.li(R::S3, 0);
    asm.li_addr(R::S4, addrs.a.idcs);
    asm.li_addr(R::S5, addrs.a.vals);
    asm.li_addr(R::S6, addrs.x);
    asm.li_addr(
        R::S7,
        match variant {
            Variant::Base => addrs.a.vals,
            _ => addrs.a.idcs,
        },
    );
    asm.li(R::S8, 8);
    asm.roi_begin();
    if addrs.a.nrows > 0 {
        match variant {
            Variant::Issr => {
                if addrs.a.nnz > 0 {
                    crate::common::emit_affine_read(&mut asm, 0, addrs.a.vals, addrs.a.nnz, 8);
                    crate::common::emit_indirect_read::<I>(
                        &mut asm,
                        1,
                        addrs.a.idcs,
                        addrs.a.nnz,
                        0,
                        addrs.x,
                    );
                }
                asm.csrsi(issr_isa::Csr::Ssr, 1);
                asm.fcvt_d_w(FZ, R::ZERO);
                emit_issr_row_loop::<I>(
                    &mut asm,
                    &RowLoopCtx { idx_shift: 3, restore_cursors: false },
                );
            }
            Variant::Ssr => {
                if addrs.a.nnz > 0 {
                    crate::common::emit_affine_read(&mut asm, 0, addrs.a.vals, addrs.a.nnz, 8);
                }
                asm.csrsi(issr_isa::Csr::Ssr, 1);
                emit_sw_row_loop::<I>(
                    &mut asm,
                    variant,
                    &RowLoopCtx { idx_shift: 3, restore_cursors: false },
                );
            }
            Variant::Base => {
                emit_sw_row_loop::<I>(
                    &mut asm,
                    variant,
                    &RowLoopCtx { idx_shift: 3, restore_cursors: false },
                );
            }
        }
    }
    asm.roi_end();
    if !matches!(variant, Variant::Base) {
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
    asm.halt();
    asm.finish().expect("CsrMV program assembles")
}

/// Emits the BASE / SSR row loop (software indirection inner loops).
pub(crate) fn emit_sw_row_loop<I: KernelIndex>(
    asm: &mut Assembler,
    variant: Variant,
    ctx: &RowLoopCtx,
) {
    let acc = FpReg::FS0;
    let (va, vi) = (FpReg::FT6, FpReg::FT3);
    let idx_shift = ctx.idx_shift as i32;
    let outer = asm.bind_label();
    asm.symbol(if variant == Variant::Base { "base_row" } else { "ssr_row" });
    asm.lw(R::T5, R::S0, 0); // ptr[i+1]
    asm.addi(R::S0, R::S0, 4);
    asm.fcvt_d_w(acc, R::ZERO);
    let store = asm.new_label();
    match variant {
        Variant::Base => {
            // Row end in the value array: t4 = vals_base + 8*ptr[i+1].
            asm.slli(R::T4, R::T5, 3);
            asm.add(R::T4, R::T4, R::S7);
            asm.beq(R::S5, R::T4, store); // empty row
            let inner = asm.bind_label();
            I::emit_index_load(asm, R::T0, R::S4, 0);
            asm.fld(va, R::S5, 0);
            asm.slli(R::T0, R::T0, idx_shift);
            asm.add(R::T0, R::T0, R::S6);
            asm.fld(vi, R::T0, 0);
            asm.addi(R::S4, R::S4, I::BYTES as i32);
            asm.addi(R::S5, R::S5, 8);
            asm.fmadd_d(acc, va, vi, acc);
            asm.bne(R::S5, R::T4, inner);
        }
        Variant::Ssr | Variant::Issr => {
            // Row end in the index array: t4 = idcs_base + W*ptr[i+1].
            let log_w = if I::BYTES == 2 { 1 } else { 2 };
            asm.slli(R::T4, R::T5, log_w);
            asm.add(R::T4, R::T4, R::S7);
            asm.beq(R::S4, R::T4, store); // empty row
            let inner = asm.bind_label();
            I::emit_index_load(asm, R::T0, R::S4, 0);
            asm.addi(R::S4, R::S4, I::BYTES as i32);
            asm.slli(R::T0, R::T0, idx_shift);
            asm.add(R::T0, R::T0, R::S6);
            asm.fld(vi, R::T0, 0);
            asm.fmadd_d(acc, FpReg::FT0, vi, acc);
            asm.bne(R::S4, R::T4, inner);
        }
    }
    asm.bind(store);
    asm.fsd(acc, R::S1, 0);
    asm.add(R::S1, R::S1, R::S8);
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, outer);
}

/// Emits the optimized ISSR row loop: head unrolling against `fz`, a
/// branch ladder for short rows, FREP + full reduction for long ones.
pub(crate) fn emit_issr_row_loop<I: KernelIndex>(asm: &mut Assembler, ctx: &RowLoopCtx) {
    let n_acc = issr_accumulators(I::IDX_SIZE);
    let _ = ctx;
    let outer = asm.bind_label();
    asm.symbol("issr_row");
    asm.lw(R::T5, R::S0, 0); // ptr[i+1]
    asm.addi(R::S0, R::S0, 4);
    asm.sub(R::T1, R::T5, R::S3); // count
    let row_done = asm.new_label();
    let ladder = asm.new_label();
    let zero_row = asm.new_label();
    let reduce_full = asm.new_label();
    asm.beqz(R::T1, zero_row);
    asm.addi(R::T2, R::T1, -i32::from(n_acc));
    asm.blt(R::T2, R::ZERO, ladder); // count < n_acc → short-row ladder
                                     // Long row: unrolled head fills every accumulator from fz.
    for k in 0..n_acc {
        asm.fmadd_d(ACC0.offset(k), FpReg::FT0, FpReg::FT1, FZ);
    }
    asm.beqz(R::T2, reduce_full); // count == n_acc → no FREP needed
    asm.addi(R::T2, R::T2, -1); // FREP iterations = count - n_acc
    asm.frep_outer(R::T2, 1, Stagger::accumulator(n_acc));
    asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
    asm.bind(reduce_full);
    emit_reduction_tree(asm, ACC0, n_acc);
    asm.fsd(ACC0, R::S1, 0);
    asm.j(row_done);
    // Short rows: dispatch on the exact count (1 ..= n_acc-1) to the
    // minimal unroll + reduction.
    asm.bind(ladder);
    let mut cases = Vec::new();
    for _ in 1..n_acc {
        cases.push(asm.new_label());
    }
    for (k, &case) in cases.iter().enumerate() {
        let count = k as i32 + 1;
        if count < i32::from(n_acc) - 1 {
            asm.addi(R::T3, R::T1, -count);
            asm.beqz(R::T3, case);
        } else {
            // The last case is the only remaining possibility.
            asm.j(case);
        }
    }
    for (k, &case) in cases.iter().enumerate() {
        let count = k as u8 + 1;
        asm.bind(case);
        for j in 0..count {
            asm.fmadd_d(ACC0.offset(j), FpReg::FT0, FpReg::FT1, FZ);
        }
        emit_reduction_tree(asm, ACC0, count);
        asm.fsd(ACC0, R::S1, 0);
        if k + 1 != cases.len() {
            asm.j(row_done);
        }
    }
    asm.j(row_done);
    asm.bind(zero_row);
    asm.fsd(FZ, R::S1, 0);
    asm.bind(row_done);
    asm.mv(R::S3, R::T5);
    asm.add(R::S1, R::S1, R::S8);
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, outer);
}

/// Result of one CsrMV run on the single-CC harness.
#[derive(Clone, Debug)]
pub struct CsrmvRun {
    /// The computed result vector.
    pub y: Vec<f64>,
    /// Cycle-level summary.
    pub summary: RunSummary,
}

/// Marshals the workload, runs the kernel, returns `y` and metrics.
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
pub fn run_csrmv<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
) -> Result<CsrmvRun, SimTimeout> {
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::new(Program::default());
    let a = place_csr(&mut arena, sim.mem.array_mut(), m);
    let x_addr = place_f64s(&mut arena, sim.mem.array_mut(), x);
    let y = alloc_result(&mut arena, a.nrows.max(1));
    let program = build_csrmv::<I>(variant, CsrmvAddrs { a, x: x_addr, y });
    let mut fresh = SingleCcSim::new(program);
    fresh.mem = sim.mem;
    sim = fresh;
    let budget = 200_000 + 64 * u64::from(a.nnz) + 64 * u64::from(a.nrows);
    let summary = sim.run(budget)?.expect_clean();
    Ok(CsrmvRun { y: sim.mem.array().load_f64_slice(y, m.nrows()), summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::dense::allclose;
    use issr_sparse::{gen, reference};

    fn check<I: KernelIndex>(variant: Variant, nrows: usize, ncols: usize, nnz: usize, seed: u64) {
        let mut rng = gen::rng(seed);
        let m = gen::csr_uniform::<I>(&mut rng, nrows, ncols, nnz);
        let x = gen::dense_vector(&mut rng, ncols);
        let run = run_csrmv(variant, &m, &x).expect("kernel finishes");
        let expect = reference::csrmv(&m, &x);
        assert!(
            allclose(&run.y, &expect, 1e-12, 1e-12),
            "{variant} {nrows}x{ncols} nnz={nnz} mismatch"
        );
    }

    #[test]
    fn base_matches_reference() {
        check::<u32>(Variant::Base, 40, 64, 400, 1);
        check::<u16>(Variant::Base, 40, 64, 400, 2);
        check::<u32>(Variant::Base, 10, 16, 0, 3); // all-empty rows
    }

    #[test]
    fn ssr_matches_reference() {
        check::<u32>(Variant::Ssr, 40, 64, 400, 4);
        check::<u16>(Variant::Ssr, 33, 100, 700, 5);
    }

    #[test]
    fn issr_matches_reference() {
        check::<u32>(Variant::Issr, 40, 64, 400, 6);
        check::<u16>(Variant::Issr, 40, 64, 400, 7);
    }

    /// Rows of every length 0..=2·n_acc exercise the zero path, the
    /// whole branch ladder, the exact-n_acc path, and FREP.
    #[test]
    fn issr_row_length_edge_cases() {
        for (width16, n_acc) in [(false, 4usize), (true, 8)] {
            let ncols = 64;
            let mut triplets = Vec::new();
            for (r, len) in (0..=2 * n_acc).enumerate() {
                for j in 0..len {
                    triplets.push((r, (j * 7 + r) % ncols, (r + j) as f64 * 0.25 + 1.0));
                }
            }
            let nrows = 2 * n_acc + 1;
            if width16 {
                let m = CsrMatrix::<u16>::from_triplets(nrows, ncols, &triplets);
                let x: Vec<f64> = (0..ncols).map(|i| i as f64 * 0.5 - 3.0).collect();
                let run = run_csrmv(Variant::Issr, &m, &x).unwrap();
                assert!(allclose(&run.y, &reference::csrmv(&m, &x), 1e-12, 1e-12));
            } else {
                let m = CsrMatrix::<u32>::from_triplets(nrows, ncols, &triplets);
                let x: Vec<f64> = (0..ncols).map(|i| i as f64 * 0.5 - 3.0).collect();
                let run = run_csrmv(Variant::Issr, &m, &x).unwrap();
                assert!(allclose(&run.y, &reference::csrmv(&m, &x), 1e-12, 1e-12));
            }
        }
    }

    /// Fig. 4b's asymptote: ISSR-16 speedup over BASE approaches 7.2×
    /// on dense rows; ISSR-32 approaches 6.0×.
    #[test]
    fn speedup_limits_on_dense_rows() {
        let mut rng = gen::rng(11);
        let m32 = gen::csr_fixed_row_nnz::<u32>(&mut rng, 24, 512, 128);
        let m16 = m32.with_index_width::<u16>();
        let x = gen::dense_vector(&mut rng, 512);
        let base = run_csrmv(Variant::Base, &m32, &x).unwrap().summary.metrics.roi.cycles;
        let issr16 = run_csrmv(Variant::Issr, &m16, &x).unwrap().summary.metrics.roi.cycles;
        let issr32 = run_csrmv(Variant::Issr, &m32, &x).unwrap().summary.metrics.roi.cycles;
        let s16 = issr_trace::ratio(base as f64, issr16 as f64);
        let s32 = issr_trace::ratio(base as f64, issr32 as f64);
        assert!(s16 > 5.5 && s16 <= 7.3, "ISSR-16 speedup {s16:.2}");
        assert!(s32 > 4.8 && s32 <= 6.1, "ISSR-32 speedup {s32:.2}");
        assert!(s16 > s32, "16-bit must win on dense rows");
    }
}
