//! The shipped-kernel catalog: one representative assembled program per
//! kernel builder, for tools that sweep "every kernel this crate can
//! emit" — the `issr-lint` binary and its clean-kernel gate, above all.
//!
//! Programs are generated per workload (addresses and counts are baked
//! in), so the catalog instantiates each builder on a small nonzero
//! workload laid out in the single-core arena. The cluster and system
//! kernels are excluded: their builders take plan structures that are
//! computed from placed workloads, not hand-constructible addresses.

use crate::csrmm::CsrmmAddrs;
use crate::csrmv::CsrmvAddrs;
use crate::layout::{csr_addrs, fiber_addrs, Arena, CsrOutAddrs};
use crate::spgemm::{build_spgemm, SpgemmAddrs};
use crate::spmspv::{build_spmspv, build_spvv_ss, build_spvv_ss_dyn, build_spvv_ss_term};
use crate::spvv::SpvvAddrs;
use crate::variant::{KernelIndex, Variant};
use crate::{build_csrmm, build_csrmv, build_spvv, SpmspvAddrs, SpvvSsAddrs};
use issr_isa::asm::Program;

/// One shipped kernel program.
pub struct CatalogEntry {
    /// Kernel, variant and index width, e.g. `"spvv/issr/u16"`.
    pub name: String,
    /// The assembled program.
    pub program: Program,
    /// Whether the program targets the sparse-sparse stream units
    /// (index joiner / sparse accumulator) and therefore needs the
    /// SSSR hardware configuration rather than the paper's.
    pub needs_sparse_units: bool,
}

impl CatalogEntry {
    fn new(name: impl Into<String>, program: Program, needs_sparse_units: bool) -> Self {
        Self { name: name.into(), program, needs_sparse_units }
    }
}

fn spvv_entries<I: KernelIndex>(tag: &str, out: &mut Vec<CatalogEntry>) {
    for variant in Variant::ALL {
        let mut arena = Arena::new(0x0030_0000, 0x0010_0000);
        let a = fiber_addrs::<I>(&mut arena, 12);
        let b = arena.alloc(64 * 8, 8);
        let out_slot = arena.alloc(8, 8);
        let program = build_spvv::<I>(variant, SpvvAddrs { a, b, out: out_slot });
        out.push(CatalogEntry::new(
            format!("spvv/{}/{tag}", variant.name().to_lowercase()),
            program,
            false,
        ));
    }
}

fn csrmv_entries<I: KernelIndex>(tag: &str, out: &mut Vec<CatalogEntry>) {
    for variant in Variant::ALL {
        let mut arena = Arena::new(0x0030_0000, 0x0010_0000);
        let a = csr_addrs::<I>(&mut arena, 8, 24);
        let x = arena.alloc(64 * 8, 8);
        let y = arena.alloc(8 * 8, 8);
        let program = build_csrmv::<I>(variant, CsrmvAddrs { a, x, y });
        out.push(CatalogEntry::new(
            format!("csrmv/{}/{tag}", variant.name().to_lowercase()),
            program,
            false,
        ));
    }
}

fn csrmm_entries<I: KernelIndex>(tag: &str, out: &mut Vec<CatalogEntry>) {
    for variant in Variant::ALL {
        let mut arena = Arena::new(0x0030_0000, 0x0010_0000);
        let a = csr_addrs::<I>(&mut arena, 8, 24);
        let b = arena.alloc(64 * 4 * 8, 8);
        let y = arena.alloc(8 * 4 * 8, 8);
        let program =
            build_csrmm::<I>(variant, CsrmmAddrs { a, b, b_cols: 4, b_stride: 4, y, y_stride: 4 });
        out.push(CatalogEntry::new(
            format!("csrmm/{}/{tag}", variant.name().to_lowercase()),
            program,
            false,
        ));
    }
}

fn spgemm_entries<I: KernelIndex>(tag: &str, out: &mut Vec<CatalogEntry>) {
    for variant in [Variant::Base, Variant::Issr] {
        let mut arena = Arena::new(0x0030_0000, 0x0010_0000);
        let nrows = 4;
        let a = csr_addrs::<I>(&mut arena, nrows, 8);
        let b = csr_addrs::<I>(&mut arena, 4, 8);
        // Hand-allocated output region: `alloc_csr_out` also zeroes
        // `ptr[0]` in simulated memory, which the catalog doesn't have.
        let nnz_cap = 16u32;
        let c = CsrOutAddrs {
            ptr: arena.alloc((nrows + 1) * 4 + 4, 8),
            vals: arena.alloc(nnz_cap * 8, 8),
            idcs: arena.alloc(nnz_cap * 4, 8),
            nnz_cap,
        };
        let scratch_idx = [arena.alloc(64, 8), arena.alloc(64, 8)];
        let scratch_vals = [arena.alloc(64 * 8, 8), arena.alloc(64 * 8, 8)];
        let program =
            build_spgemm::<I>(variant, nrows, SpgemmAddrs { a, b, c, scratch_idx, scratch_vals });
        out.push(CatalogEntry::new(
            format!("spgemm/{}/{tag}", variant.name().to_lowercase()),
            program,
            variant == Variant::Issr,
        ));
    }
}

fn spmspv_entries<I: KernelIndex>(tag: &str, out: &mut Vec<CatalogEntry>) {
    for variant in [Variant::Base, Variant::Issr] {
        let mut arena = Arena::new(0x0030_0000, 0x0010_0000);
        let a = csr_addrs::<I>(&mut arena, 8, 24);
        let x = fiber_addrs::<I>(&mut arena, 6);
        let y = arena.alloc(8 * 8, 8);
        let program = build_spmspv::<I>(variant, SpmspvAddrs { a, x, y });
        out.push(CatalogEntry::new(
            format!("spmspv/{}/{tag}", variant.name().to_lowercase()),
            program,
            variant == Variant::Issr,
        ));
    }
}

fn spvv_ss_entries<I: KernelIndex>(tag: &str, out: &mut Vec<CatalogEntry>) {
    let make_addrs = || {
        let mut arena = Arena::new(0x0030_0000, 0x0010_0000);
        let a = fiber_addrs::<I>(&mut arena, 10);
        let b = fiber_addrs::<I>(&mut arena, 14);
        let out_slot = arena.alloc(8, 8);
        SpvvSsAddrs { a, b, out: out_slot }
    };
    for variant in [Variant::Base, Variant::Issr] {
        let program = build_spvv_ss::<I>(variant, make_addrs());
        out.push(CatalogEntry::new(
            format!("spvv_ss/{}/{tag}", variant.name().to_lowercase()),
            program,
            variant == Variant::Issr,
        ));
    }
    out.push(CatalogEntry::new(
        format!("spvv_ss_dyn/issr/{tag}"),
        build_spvv_ss_dyn::<I>(make_addrs()),
        true,
    ));
    out.push(CatalogEntry::new(
        format!("spvv_ss_term/issr/{tag}"),
        build_spvv_ss_term::<I>(make_addrs()),
        true,
    ));
}

/// Builds every shipped single-core kernel program on a representative
/// nonzero workload.
#[must_use]
pub fn catalog() -> Vec<CatalogEntry> {
    let mut out = Vec::new();
    spvv_entries::<u16>("u16", &mut out);
    spvv_entries::<u32>("u32", &mut out);
    csrmv_entries::<u16>("u16", &mut out);
    csrmv_entries::<u32>("u32", &mut out);
    csrmm_entries::<u16>("u16", &mut out);
    spgemm_entries::<u16>("u16", &mut out);
    spgemm_entries::<u32>("u32", &mut out);
    spmspv_entries::<u16>("u16", &mut out);
    spmspv_entries::<u32>("u32", &mut out);
    spvv_ss_entries::<u16>("u16", &mut out);
    spvv_ss_entries::<u32>("u32", &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nonempty_and_named_uniquely() {
        let entries = catalog();
        assert!(entries.len() >= 20, "expected a substantial catalog, got {}", entries.len());
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "catalog names must be unique");
        for e in &entries {
            assert!(!e.program.is_empty(), "{} assembled empty", e.name);
        }
    }
}
