//! Row-wise Gustavson SpGEMM: `C = A·B` with both operands (and the
//! output) sparse — the workload the sparse-output subsystem exists for.
//!
//! `C[i,:] = Σ_k A[i,k] · B[k,:]` accumulates a *sparse row*: scaled B
//! rows whose column sets overlap arbitrarily must union-merge into a
//! sorted, duplicate-free result of data-dependent length. Two variants:
//!
//! * **BASE** — software merge accumulation: per `(i, k)` the scaled row
//!   `A[i,k] · B[k,:]` two-way merges with the accumulator through a
//!   pair of ping-pong scratch buffers (three-way branch, index
//!   loads/stores and an `fmadd` per merge step — a dozen-odd
//!   instructions each), then the finished row is copied into the packed
//!   CSR output;
//! * **ISSR** — the same dataflow in hardware: the SSR streams `B[k,:]`
//!   values into a single `fmul.d` under FREP (static trip count
//!   `nnz(B[k,:])`, read from B's row pointers), whose write stream
//!   feeds the **SpAcc** ([`issr_core::spacc`]); the SpAcc fetches the
//!   matching column-index stream itself and union-merges into its row
//!   buffer at one step per cycle. At row end the core reads the
//!   data-dependent row length back (`ACC_NNZ`), extends the CSR row
//!   pointer, and launches a drain that packs the row straight into the
//!   output arrays (grow-and-pack) while the next row's expansion
//!   already configures.
//!
//! Output capacity comes from the host-side symbolic pass
//! ([`issr_sparse::reference::spgemm_ptr`]) or an expansion upper bound
//! — the two-pass/alloc side of the builder ([`crate::layout`]).

use crate::common::{emit_spacc_cfg, reprogram_joiner, SETUP_SCRATCH};
use crate::layout::{alloc_csr_out, place_csr, read_csr_out, Arena, CsrAddrs, CsrOutAddrs};
use crate::variant::{log_width, KernelIndex, Variant};
use issr_core::cfg::{cfg_addr, reg as sreg, SPACC_ROW_CAP_RESET};
use issr_core::fault::StreamFaultKind;
use issr_isa::asm::{Assembler, Label, Program};
use issr_isa::instr::Stagger;
use issr_isa::reg::{FpReg, IntReg as R};
use issr_snitch::cc::{RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};
use issr_snitch::core::TrapCause;
use issr_sparse::csr::CsrMatrix;

/// Addresses the SpGEMM builders bake into the program.
#[derive(Clone, Copy, Debug)]
pub struct SpgemmAddrs {
    /// The left CSR operand.
    pub a: CsrAddrs,
    /// The right CSR operand.
    pub b: CsrAddrs,
    /// The CSR output region (`ptr[0]` pre-set to 0).
    pub c: CsrOutAddrs,
    /// BASE ping-pong merge scratch: index buffers (capacity `b.ncols`).
    pub scratch_idx: [u32; 2],
    /// BASE ping-pong merge scratch: value buffers (capacity `b.ncols`).
    pub scratch_vals: [u32; 2],
}

/// Builds the SpGEMM program for `variant` with `I`-width indices and
/// the SpAcc row buffer at its reset capacity.
///
/// # Panics
/// Panics for [`Variant::Ssr`]: with sparse output there is no
/// meaningful half-streamed variant — the taxonomy degenerates to BASE
/// vs. the full subsystem.
#[must_use]
pub fn build_spgemm<I: KernelIndex>(variant: Variant, nrows: u32, addrs: SpgemmAddrs) -> Program {
    build_spgemm_capped::<I>(variant, nrows, addrs, SPACC_ROW_CAP_RESET)
}

/// [`build_spgemm`] with an explicit SpAcc row-buffer capacity baked
/// into the program (`ACC_BUF_CAP`). An optimistic capacity arms the
/// overflow trap the grow-and-retry harness recovers from; BASE ignores
/// it (its merge scratch is sized by the output width).
///
/// # Panics
/// As [`build_spgemm`].
#[must_use]
pub fn build_spgemm_capped<I: KernelIndex>(
    variant: Variant,
    nrows: u32,
    addrs: SpgemmAddrs,
    acc_cap: u32,
) -> Program {
    let mut asm = Assembler::new();
    match variant {
        Variant::Base => emit_base_spgemm::<I>(&mut asm, nrows, addrs),
        Variant::Issr => emit_issr_spgemm::<I>(&mut asm, nrows, addrs, acc_cap),
        Variant::Ssr => panic!("SpGEMM defines BASE and ISSR variants only"),
    }
    asm.halt();
    asm.finish().expect("SpGEMM program assembles")
}

/// BASE: software union-merge accumulation through ping-pong scratch.
///
/// Register roles: `s0` `&a.ptr[i+1]`, `s1` `&c.ptr[i+1]`, `s2` rows
/// remaining, `s3` output nnz so far, `s4`/`s5` A index/value cursors,
/// `s6`/`s7` acc-in index/value base, `s8`/`s9` acc-out index/value
/// base, `s10` acc length, `s11` `b.ptr`; `t*`/`a*` per-k merge cursors.
fn emit_base_spgemm<I: KernelIndex>(asm: &mut Assembler, nrows: u32, addrs: SpgemmAddrs) {
    let log_w = log_width::<I>();
    asm.li_addr(R::S0, addrs.a.ptr + 4);
    asm.li_addr(R::S1, addrs.c.ptr + 4);
    asm.li(R::S2, i64::from(nrows));
    asm.li(R::S3, 0);
    asm.li_addr(R::S4, addrs.a.idcs);
    asm.li_addr(R::S5, addrs.a.vals);
    asm.li_addr(R::S6, addrs.scratch_idx[0]);
    asm.li_addr(R::S7, addrs.scratch_vals[0]);
    asm.li_addr(R::S8, addrs.scratch_idx[1]);
    asm.li_addr(R::S9, addrs.scratch_vals[1]);
    asm.li_addr(R::S11, addrs.b.ptr);
    asm.roi_begin();
    if nrows > 0 {
        let row = asm.bind_label();
        asm.symbol("base_row");
        let flush = asm.new_label();
        asm.li(R::S10, 0); // the row accumulator starts empty
        asm.lw(R::T5, R::S0, 0); // a.ptr[i+1]
        asm.addi(R::S0, R::S0, 4);
        asm.slli(R::A6, R::T5, log_w); // A-row end address
        asm.li_addr(R::T6, addrs.a.idcs);
        asm.add(R::A6, R::A6, R::T6);
        emit_base_k_merge::<I>(asm, addrs.b.idcs, addrs.b.vals, flush);
        // Row finished: pack the accumulator into the CSR output at the
        // running element offset, then extend the row pointer.
        asm.bind(flush);
        asm.symbol("base_flush");
        asm.slli(R::T0, R::S3, log_w);
        asm.li_addr(R::T6, addrs.c.idcs);
        asm.add(R::T0, R::T0, R::T6); // C index cursor
        asm.slli(R::T1, R::S3, 3);
        asm.li_addr(R::T6, addrs.c.vals);
        asm.add(R::T1, R::T1, R::T6); // C value cursor
        emit_base_row_copy::<I>(asm);
        asm.add(R::S3, R::S3, R::S10);
        asm.sw(R::S3, R::S1, 0);
        asm.addi(R::S1, R::S1, 4);
        asm.addi(R::S2, R::S2, -1);
        asm.bnez(R::S2, row);
    }
    asm.roi_end();
}

/// The shared BASE per-k loop: walk the current A row (`s4`/`s5`
/// cursors, `a6` end address), and for each `A[i,k]` three-way
/// union-merge the scaled B row into the ping-pong accumulator
/// (`s6`/`s7` in, `s8`/`s9` out, `s10` length, `s11` = `b.ptr`),
/// swapping buffers per k. Branches to `flush` once the row is
/// exhausted. Register roles as documented on [`emit_base_spgemm`];
/// shared with the cluster worker, whose only differences are the
/// cursor prologue and the output offsets.
#[allow(clippy::too_many_lines)]
pub(crate) fn emit_base_k_merge<I: KernelIndex>(
    asm: &mut Assembler,
    b_idcs: u32,
    b_vals: u32,
    flush: Label,
) {
    let log_w = log_width::<I>();
    let ib = I::BYTES as i32;
    let (va, vb) = (FpReg::FT6, FpReg::FT7);
    let scale = FpReg::FA0;
    let k_loop = asm.bind_label();
    asm.symbol("base_k");
    asm.beq(R::S4, R::A6, flush);
    I::emit_index_load(asm, R::A7, R::S4, 0); // column k
    asm.fld(scale, R::S5, 0); //                a_ik
    asm.addi(R::S4, R::S4, ib);
    asm.addi(R::S5, R::S5, 8);
    // B row k bounds and cursors.
    asm.slli(R::T5, R::A7, 2);
    asm.add(R::T5, R::T5, R::S11);
    asm.lw(R::T3, R::T5, 0); //  b.ptr[k]
    asm.lw(R::T5, R::T5, 4); //  b.ptr[k+1]
    asm.slli(R::T4, R::T3, 3);
    asm.li_addr(R::T6, b_vals);
    asm.add(R::T4, R::T4, R::T6); // B value cursor
    asm.slli(R::A0, R::T5, log_w);
    asm.slli(R::T3, R::T3, log_w);
    asm.li_addr(R::T6, b_idcs);
    asm.add(R::A0, R::A0, R::T6); // B index end
    asm.add(R::T3, R::T3, R::T6); // B index cursor
                                  // Accumulator and output cursors.
    asm.mv(R::T0, R::S6);
    asm.mv(R::T1, R::S7);
    asm.slli(R::T2, R::S10, log_w);
    asm.add(R::T2, R::T2, R::S6); // acc index end
    asm.mv(R::A1, R::S8);
    asm.mv(R::A2, R::S9);
    asm.li(R::A3, 0);
    // Three-way merge of the accumulator with the scaled B row.
    let merge = asm.bind_label();
    asm.symbol("base_merge");
    let copy_acc = asm.new_label();
    let copy_b = asm.new_label();
    let acc_done = asm.new_label();
    let b_done = asm.new_label();
    let merge_done = asm.new_label();
    asm.beq(R::T0, R::T2, acc_done);
    asm.beq(R::T3, R::A0, b_done);
    I::emit_index_load(asm, R::T5, R::T0, 0);
    I::emit_index_load(asm, R::T6, R::T3, 0);
    asm.blt(R::T5, R::T6, copy_acc);
    asm.blt(R::T6, R::T5, copy_b);
    asm.fld(va, R::T1, 0); //     match: acc + a_ik * b
    asm.fld(vb, R::T4, 0);
    asm.fmadd_d(va, vb, scale, va);
    asm.fsd(va, R::A2, 0);
    I::emit_index_store(asm, R::T5, R::A1, 0);
    asm.addi(R::T0, R::T0, ib);
    asm.addi(R::T1, R::T1, 8);
    asm.addi(R::T3, R::T3, ib);
    asm.addi(R::T4, R::T4, 8);
    asm.addi(R::A1, R::A1, ib);
    asm.addi(R::A2, R::A2, 8);
    asm.addi(R::A3, R::A3, 1);
    asm.j(merge);
    asm.bind(copy_acc);
    asm.fld(va, R::T1, 0);
    asm.fsd(va, R::A2, 0);
    I::emit_index_store(asm, R::T5, R::A1, 0);
    asm.addi(R::T0, R::T0, ib);
    asm.addi(R::T1, R::T1, 8);
    asm.addi(R::A1, R::A1, ib);
    asm.addi(R::A2, R::A2, 8);
    asm.addi(R::A3, R::A3, 1);
    asm.j(merge);
    asm.bind(copy_b);
    asm.fld(vb, R::T4, 0);
    asm.fmul_d(vb, vb, scale);
    asm.fsd(vb, R::A2, 0);
    I::emit_index_store(asm, R::T6, R::A1, 0);
    asm.addi(R::T3, R::T3, ib);
    asm.addi(R::T4, R::T4, 8);
    asm.addi(R::A1, R::A1, ib);
    asm.addi(R::A2, R::A2, 8);
    asm.addi(R::A3, R::A3, 1);
    asm.j(merge);
    // Accumulator exhausted: copy the B tail, scaled.
    asm.bind(acc_done);
    asm.symbol("base_b_tail");
    asm.beq(R::T3, R::A0, merge_done);
    I::emit_index_load(asm, R::T6, R::T3, 0);
    asm.fld(vb, R::T4, 0);
    asm.fmul_d(vb, vb, scale);
    asm.fsd(vb, R::A2, 0);
    I::emit_index_store(asm, R::T6, R::A1, 0);
    asm.addi(R::T3, R::T3, ib);
    asm.addi(R::T4, R::T4, 8);
    asm.addi(R::A1, R::A1, ib);
    asm.addi(R::A2, R::A2, 8);
    asm.addi(R::A3, R::A3, 1);
    asm.j(acc_done);
    // B exhausted: copy the accumulator tail.
    asm.bind(b_done);
    asm.symbol("base_acc_tail");
    asm.beq(R::T0, R::T2, merge_done);
    I::emit_index_load(asm, R::T5, R::T0, 0);
    asm.fld(va, R::T1, 0);
    asm.fsd(va, R::A2, 0);
    I::emit_index_store(asm, R::T5, R::A1, 0);
    asm.addi(R::T0, R::T0, ib);
    asm.addi(R::T1, R::T1, 8);
    asm.addi(R::A1, R::A1, ib);
    asm.addi(R::A2, R::A2, 8);
    asm.addi(R::A3, R::A3, 1);
    asm.j(b_done);
    asm.bind(merge_done);
    // Ping-pong swap; the merged row becomes the accumulator.
    asm.mv(R::T5, R::S6);
    asm.mv(R::S6, R::S8);
    asm.mv(R::S8, R::T5);
    asm.mv(R::T5, R::S7);
    asm.mv(R::S7, R::S9);
    asm.mv(R::S9, R::T5);
    asm.mv(R::S10, R::A3);
    asm.j(k_loop);
}

/// The shared BASE row pack-out: copies the accumulator (`s6`/`s7`,
/// `s10` elements) to the C cursors preset in `t0`/`t1`, falling
/// through with the row copied.
pub(crate) fn emit_base_row_copy<I: KernelIndex>(asm: &mut Assembler) {
    let ib = I::BYTES as i32;
    let va = FpReg::FT6;
    let copy = asm.new_label();
    let row_done = asm.new_label();
    asm.mv(R::T2, R::S6);
    asm.mv(R::T3, R::S7);
    asm.mv(R::T4, R::S10);
    asm.bind(copy);
    asm.beqz(R::T4, row_done);
    I::emit_index_load(asm, R::T5, R::T2, 0);
    I::emit_index_store(asm, R::T5, R::T0, 0);
    asm.fld(va, R::T3, 0);
    asm.fsd(va, R::T1, 0);
    asm.addi(R::T2, R::T2, ib);
    asm.addi(R::T3, R::T3, 8);
    asm.addi(R::T0, R::T0, ib);
    asm.addi(R::T1, R::T1, 8);
    asm.addi(R::T4, R::T4, -1);
    asm.j(copy);
    asm.bind(row_done);
}

/// ISSR: SSR + FREP expansion feeding the SpAcc; grow-and-pack drains.
///
/// Register roles: `s0` `&a.ptr[i+1]`, `s1` `&c.ptr[i+1]`, `s2` rows
/// remaining, `s3` output nnz so far, `s4`/`s5` A index/value cursors,
/// `s6` `b.ptr`, `s7` `b.idcs`, `s8` `b.vals`, `s9` A-row end, `a2`/`a3`
/// C index/value byte cursors; `t*` per-k scratch.
fn emit_issr_spgemm<I: KernelIndex>(
    asm: &mut Assembler,
    nrows: u32,
    addrs: SpgemmAddrs,
    acc_cap: u32,
) {
    let log_w = log_width::<I>();
    asm.li_addr(R::S0, addrs.a.ptr + 4);
    asm.li_addr(R::S1, addrs.c.ptr + 4);
    asm.li(R::S2, i64::from(nrows));
    asm.li(R::S3, 0);
    asm.li_addr(R::S4, addrs.a.idcs);
    asm.li_addr(R::S5, addrs.a.vals);
    asm.li_addr(R::S6, addrs.b.ptr);
    asm.li_addr(R::S7, addrs.b.idcs);
    asm.li_addr(R::S8, addrs.b.vals);
    asm.li_addr(R::A2, addrs.c.idcs);
    asm.li_addr(R::A3, addrs.c.vals);
    // Static streamer state: SSR value stride, SpAcc index width and
    // row-buffer capacity (optimistic caps arm the overflow trap).
    asm.li(SETUP_SCRATCH, 8);
    asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::STRIDES[0], 0));
    emit_spacc_cfg::<I>(asm);
    asm.li(SETUP_SCRATCH, i64::from(acc_cap));
    asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::ACC_BUF_CAP, 0));
    asm.csrsi(issr_isa::Csr::Ssr, 1);
    asm.roi_begin();
    if nrows > 0 {
        let row = asm.bind_label();
        asm.symbol("issr_row");
        let flush = asm.new_label();
        asm.lw(R::T5, R::S0, 0); // a.ptr[i+1]
        asm.addi(R::S0, R::S0, 4);
        asm.slli(R::S9, R::T5, log_w); // A-row end address
        asm.li_addr(R::T6, addrs.a.idcs);
        asm.add(R::S9, R::S9, R::T6);
        emit_issr_k_expand::<I>(asm, flush);
        // Row finished: wait for the *feeds* only (bit 2) — a previous
        // row's drain may still be writing out of the second buffer —
        // then read the data-dependent length and drain.
        asm.bind(flush);
        asm.symbol("issr_flush");
        let spin = asm.bind_label();
        asm.scfgri(R::T0, cfg_addr(sreg::ACC_STATUS, 0));
        asm.andi(R::T0, R::T0, 4);
        asm.beqz(R::T0, spin);
        asm.scfgri(R::T1, cfg_addr(sreg::ACC_NNZ, 0));
        let row_done = asm.new_label();
        asm.add(R::S3, R::S3, R::T1);
        asm.sw(R::S3, R::S1, 0); // c.ptr[i+1]
        asm.addi(R::S1, R::S1, 4);
        asm.beqz(R::T1, row_done);
        asm.scfgwi(R::A3, cfg_addr(sreg::ACC_VAL_OUT, 0));
        asm.scfgwi(R::A2, cfg_addr(sreg::ACC_DRAIN, 0)); // launch (retries)
        asm.slli(R::T2, R::T1, log_w);
        asm.add(R::A2, R::A2, R::T2);
        asm.slli(R::T2, R::T1, 3);
        asm.add(R::A3, R::A3, R::T2);
        asm.bind(row_done);
        asm.addi(R::S2, R::S2, -1);
        asm.bnez(R::S2, row);
        // Let the last drain retire inside the measured region.
        let fin = asm.bind_label();
        asm.scfgri(R::T0, cfg_addr(sreg::ACC_STATUS, 0));
        asm.andi(R::T0, R::T0, 1);
        asm.beqz(R::T0, fin);
    }
    asm.roi_end();
    asm.csrci(issr_isa::Csr::Ssr, 1);
}

/// The shared ISSR per-k loop: walk the current A row (`s4`/`s5`
/// cursors, `s9` end address), and for each `A[i,k]` launch the SSR
/// read over `B[k,:]` values plus the SpAcc feed over its column
/// indices (`s6`/`s7`/`s8` = `b.{ptr,idcs,vals}`), driving the whole
/// expansion through one `fmul` under FREP. Branches to `flush` once
/// the row is exhausted. Shared with the cluster worker.
pub(crate) fn emit_issr_k_expand<I: KernelIndex>(asm: &mut Assembler, flush: Label) {
    let log_w = log_width::<I>();
    let ib = I::BYTES as i32;
    let k_loop = asm.bind_label();
    asm.symbol("issr_k");
    asm.beq(R::S4, R::S9, flush);
    I::emit_index_load(asm, R::T0, R::S4, 0); // column k
    asm.fld(FpReg::FA0, R::S5, 0); //            a_ik
    asm.addi(R::S4, R::S4, ib);
    asm.addi(R::S5, R::S5, 8);
    asm.slli(R::T1, R::T0, 2);
    asm.add(R::T1, R::T1, R::S6);
    asm.lw(R::T2, R::T1, 0); //  b.ptr[k]
    asm.lw(R::T3, R::T1, 4); //  b.ptr[k+1]
    asm.sub(R::T4, R::T3, R::T2); // nnz(B[k,:])
    asm.beqz(R::T4, k_loop);
    // SSR read job over B row k's values.
    asm.addi(R::T6, R::T4, -1);
    asm.scfgwi(R::T6, cfg_addr(sreg::BOUNDS[0], 0));
    asm.slli(R::T6, R::T2, 3);
    asm.add(R::T6, R::T6, R::S8);
    asm.scfgwi(R::T6, cfg_addr(sreg::RPTR[0], 0)); // launch (retries)
                                                   // SpAcc feed over B row k's column indices.
    asm.scfgwi(R::T4, cfg_addr(sreg::ACC_COUNT, 0));
    asm.slli(R::T6, R::T2, log_w);
    asm.add(R::T6, R::T6, R::S7);
    asm.scfgwi(R::T6, cfg_addr(sreg::ACC_FEED, 0)); // launch (retries)
                                                    // The whole expansion: one fmul per nonzero, streamed end to end.
    asm.addi(R::T6, R::T4, -1);
    asm.frep_outer(R::T6, 1, Stagger::NONE);
    asm.fmul_d(FpReg::FT1, FpReg::FT0, FpReg::FA0);
    asm.j(k_loop);
}

/// Result of one SpGEMM run.
#[derive(Clone, Debug)]
pub struct SpgemmRun {
    /// The computed sparse product, read back and format-validated.
    pub c: CsrMatrix<u32>,
    /// Cycle-level summary (SpAcc statistics included).
    pub summary: RunSummary,
}

/// Total Gustavson expansion volume `Σ_i Σ_{k∈A[i,:]} nnz(B[k,:])` —
/// the multiply count, and the budget/capacity driver.
pub(crate) fn expansion_volume<I: KernelIndex>(a: &CsrMatrix<I>, b: &CsrMatrix<I>) -> u64 {
    (0..a.nrows()).map(|r| a.row(r).map(|(k, _)| b.row_range(k).len() as u64).sum::<u64>()).sum()
}

/// Marshals the operands, runs SpGEMM on the single-CC setup (SpAcc
/// streamer for the ISSR variant), and returns the product with metrics.
/// The output region is sized by the symbolic pass (two-pass alloc).
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
///
/// # Panics
/// Panics if the inner dimensions disagree, on [`Variant::Ssr`], or if
/// the kernel builds a malformed output (a bug the readback validates).
pub fn run_spgemm<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
) -> Result<SpgemmRun, SimTimeout> {
    run_spgemm_buffered(variant, a, b, true)
}

/// [`run_spgemm`] with an explicit SpAcc row-buffer mode:
/// `double_buffer = false` reverts to the single-buffer unit (a row's
/// drain blocks the next row's first feed), which the benchmark runs to
/// report the overlap delta.
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
///
/// # Panics
/// As [`run_spgemm`].
pub fn run_spgemm_buffered<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    double_buffer: bool,
) -> Result<SpgemmRun, SimTimeout> {
    let (summary, c) = spgemm_attempt(variant, a, b, double_buffer, SPACC_ROW_CAP_RESET)?;
    let summary = summary.expect_clean();
    Ok(SpgemmRun { c: c.expect("clean run reads back"), summary })
}

/// One marshalled simulation on a fresh harness with an explicit SpAcc
/// row-buffer capacity. A trapped run returns `None` for the product
/// (the partially written output region is not a valid CSR matrix).
fn spgemm_attempt<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    double_buffer: bool,
    acc_cap: u32,
) -> Result<(RunSummary, Option<CsrMatrix<u32>>), SimTimeout> {
    assert_eq!(b.nrows(), a.ncols(), "inner dimensions must agree");
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::with_joiner(Program::default());
    let a_addrs = place_csr(&mut arena, sim.mem.array_mut(), a);
    let b_addrs = place_csr(&mut arena, sim.mem.array_mut(), b);
    let nnz_cap = issr_sparse::reference::spgemm_ptr(a, b).last().copied().unwrap_or(0);
    let c = alloc_csr_out::<I>(&mut arena, sim.mem.array_mut(), a.nrows() as u32, nnz_cap);
    let row_cap = (b.ncols() as u32).max(1);
    let scratch_idx = [
        arena.alloc((row_cap * I::BYTES + 7) & !7, 8),
        arena.alloc((row_cap * I::BYTES + 7) & !7, 8),
    ];
    let scratch_vals = [arena.alloc(row_cap * 8, 8), arena.alloc(row_cap * 8, 8)];
    let addrs = SpgemmAddrs { a: a_addrs, b: b_addrs, c, scratch_idx, scratch_vals };
    let program = build_spgemm_capped::<I>(variant, a.nrows() as u32, addrs, acc_cap);
    sim = reprogram_joiner(sim, program);
    sim.cc.streamer.set_spacc_double_buffered(double_buffer);
    let volume = expansion_volume(a, b) + u64::from(nnz_cap) + a.nnz() as u64;
    let budget = 300_000 + 256 * (volume + a.nrows() as u64);
    let summary = sim.run(budget)?;
    if summary.trap.is_some() {
        return Ok((summary, None));
    }
    let c =
        read_csr_out::<I>(sim.mem.array(), addrs.c, a.nrows(), b.ncols()).with_index_width::<u32>();
    Ok((summary, Some(c)))
}

/// The shared grow-and-retry policy of the SpGEMM harnesses: every
/// trap of a faulted attempt must be a *recoverable* SpAcc overflow
/// (anything else panics with the trap's diagnostics), the capacity
/// must still have headroom, and the next attempt doubles it, clamped
/// to `max_cap` (the output width, where overflow is impossible).
pub(crate) fn grow_after_overflow<'a>(
    traps: impl IntoIterator<Item = &'a issr_snitch::core::Trap>,
    cap: u32,
    max_cap: u32,
) -> u32 {
    for trap in traps {
        let overflow = matches!(
            trap.cause,
            TrapCause::StreamFault(fault)
                if matches!(fault.kind, StreamFaultKind::Overflow { .. })
        );
        assert!(overflow, "SpGEMM trapped on a non-recoverable fault: {trap}");
        assert!(cap < max_cap, "overflow at the full row capacity: {trap}");
    }
    cap.saturating_mul(2).min(max_cap)
}

/// Result of a grow-and-retry SpGEMM run ([`run_spgemm_recover`]).
#[derive(Clone, Debug)]
pub struct SpgemmRecovery {
    /// The final, clean run (oracle-identical product).
    pub run: SpgemmRun,
    /// Overflow traps taken before the capacity sufficed.
    pub retries: u32,
    /// The capacity the clean run used.
    pub final_cap: u32,
}

/// Runs SpGEMM with an *optimistic* SpAcc row-buffer capacity and
/// trap-driven recovery: a `StreamFault::Overflow` latched mid-stream
/// restores the SpAcc's row-buffer checkpoint and parks the core; this
/// harness doubles `ACC_BUF_CAP` (clamped to the output width, where
/// overflow is impossible) and replays — SparseZipper's
/// size-optimistically-recover-on-overflow strategy, so an adversarial
/// row no longer needs a worst-case expansion bound up front.
///
/// # Errors
/// Returns [`SimTimeout`] if an attempt fails to finish (a bug).
///
/// # Panics
/// Panics on zero `initial_cap`, on a non-overflow trap (those are not
/// recoverable), or if the kernel still misbehaves at the full row
/// capacity (a model bug).
pub fn run_spgemm_recover<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    initial_cap: u32,
) -> Result<SpgemmRecovery, SimTimeout> {
    assert!(initial_cap > 0, "a zero-capacity row buffer is a configuration fault");
    let max_cap = u32::try_from(b.ncols().max(1)).expect("ncols fits u32");
    let mut cap = initial_cap.min(max_cap);
    let mut retries = 0u32;
    loop {
        let (summary, c) = spgemm_attempt(variant, a, b, true, cap)?;
        let Some(trap) = summary.trap else {
            let c = c.expect("clean run reads back");
            return Ok(SpgemmRecovery { run: SpgemmRun { c, summary }, retries, final_cap: cap });
        };
        retries += 1;
        cap = grow_after_overflow(std::iter::once(&trap), cap, max_cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::{gen, reference};

    fn check<I: KernelIndex>(
        variant: Variant,
        nrows: usize,
        inner: usize,
        ncols: usize,
        nnz_a: usize,
        nnz_b: usize,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let a = gen::csr_uniform::<I>(&mut rng, nrows, inner, nnz_a);
        let b = gen::csr_uniform::<I>(&mut rng, inner, ncols, nnz_b);
        let run = run_spgemm(variant, &a, &b).expect("kernel finishes");
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        assert_eq!(run.c.ptr(), expect.ptr(), "{variant} {nrows}x{inner}x{ncols} row pointers");
        assert_eq!(run.c.idcs(), expect.idcs(), "{variant} column indices");
        for (got, want) in run.c.vals().iter().zip(expect.vals()) {
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "{variant} {nrows}x{inner}x{ncols}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn base_spgemm_matches_reference() {
        check::<u16>(Variant::Base, 12, 24, 20, 60, 90, 200);
        check::<u32>(Variant::Base, 12, 24, 20, 60, 90, 201);
        check::<u16>(Variant::Base, 8, 8, 8, 0, 20, 202); // empty A
        check::<u16>(Variant::Base, 8, 8, 8, 20, 0, 203); // empty B
        check::<u16>(Variant::Base, 5, 3, 40, 10, 60, 204); // wide, dense rows
    }

    #[test]
    fn issr_spgemm_matches_reference() {
        check::<u16>(Variant::Issr, 12, 24, 20, 60, 90, 210);
        check::<u32>(Variant::Issr, 12, 24, 20, 60, 90, 211);
        check::<u16>(Variant::Issr, 8, 8, 8, 0, 20, 212); // empty A
        check::<u16>(Variant::Issr, 8, 8, 8, 20, 0, 213); // empty B
        check::<u16>(Variant::Issr, 5, 3, 40, 10, 60, 214); // wide, dense rows
        check::<u32>(Variant::Issr, 1, 64, 64, 32, 256, 215); // one heavy row
    }

    /// Unaligned packed index rows: odd row lengths force the drain's
    /// strobed partial words at every row boundary (16-bit indices).
    #[test]
    fn issr_spgemm_odd_row_boundaries() {
        let mut triplets = Vec::new();
        for r in 0..7usize {
            for j in 0..=r {
                triplets.push((r, (j * 3 + r) % 16, 1.0 + r as f64 * 0.5 + j as f64));
            }
        }
        let a = CsrMatrix::<u16>::from_triplets(7, 16, &triplets);
        let b_triplets: Vec<(usize, usize, f64)> = (0..16)
            .flat_map(|k| (0..3).map(move |j| (k, (k * 5 + j * 7) % 9, 0.25 * (k + j + 1) as f64)))
            .collect();
        let b = CsrMatrix::<u16>::from_triplets(16, 9, &b_triplets);
        let run = run_spgemm(Variant::Issr, &a, &b).unwrap();
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        assert_eq!(run.c.ptr(), expect.ptr());
        assert_eq!(run.c.idcs(), expect.idcs());
    }

    /// The headline: hardware expansion + SpAcc beats the software merge
    /// by a wide margin once rows carry real work.
    #[test]
    fn issr_beats_base_merge() {
        let mut rng = gen::rng(220);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 24, 64, 4);
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 64, 256, 24);
        let base = run_spgemm(Variant::Base, &a, &b).unwrap().summary.metrics.roi.cycles;
        let issr = run_spgemm(Variant::Issr, &a, &b).unwrap().summary.metrics.roi.cycles;
        let speedup = issr_trace::ratio(base as f64, issr as f64);
        assert!(speedup > 3.0, "SpGEMM speedup {speedup:.2} (base {base}, issr {issr})");
    }

    /// SpAcc activity surfaces in the run summary: one feed per scalar
    /// with a nonempty B row, one drain per nonempty output row.
    #[test]
    fn spacc_stats_surface_in_summary() {
        let mut rng = gen::rng(221);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 8, 16, 3);
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 16, 32, 8);
        let run = run_spgemm(Variant::Issr, &a, &b).unwrap();
        let stats = run.summary.spacc_stats;
        assert_eq!(stats.feeds, 24, "one feed per A nonzero");
        assert_eq!(stats.pairs_in, 24 * 8, "one pair per expanded product");
        assert_eq!(stats.drains, 8, "one drain per nonempty C row");
        assert!(stats.merges > 0, "duplicate columns must merge");
        // BASE runs the same workload without touching the SpAcc.
        let base = run_spgemm(Variant::Base, &a, &b).unwrap();
        assert_eq!(base.summary.spacc_stats.feeds, 0);
    }
}
