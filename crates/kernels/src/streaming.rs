//! Further indirection applications (§III-C): codebook decoding and
//! scatter-gather streaming.
//!
//! * **Gather / codebook decode** — the ISSR streams `data[idcs[j]]`
//!   while a plain SSR write job streams the results back out; the loop
//!   body is a single `fmv.d` under FREP. Decoding a
//!   codebook-compressed array *is* a gather with the codebook as the
//!   dense operand.
//! * **Scatter** — the roles flip: an affine SSR read streams values in
//!   and the ISSR *write* job places each at `out[idcs[j]]`
//!   (densification of a sparse vector, the building block of radix
//!   sort and sparse transpose).
//! * **Codebook SpVV** — a streamer with *two ISSRs* multiplies a
//!   codebook-compressed sparse vector with a dense one using the same
//!   single-`fmadd` loop as Listing 1, as the paper proposes.

use crate::common::{
    emit_affine_read, emit_affine_write, emit_indirect_read, emit_indirect_write,
    emit_reduction_tree, emit_zero_accumulators, ACC0,
};
use crate::layout::{alloc_result, place_f64s, Arena};
use crate::variant::KernelIndex;
use issr_core::lane::LaneKind;
use issr_core::streamer::Streamer;
use issr_isa::asm::{Assembler, Program};
use issr_isa::instr::Stagger;
use issr_isa::reg::{FpReg, IntReg as R};
use issr_snitch::cc::{CoreComplex, RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};
use issr_snitch::params::CcParams;

/// Result of a streaming-application run.
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// The produced array.
    pub out: Vec<f64>,
    /// Cycle-level summary.
    pub summary: RunSummary,
}

/// Gather: `out[j] = data[idcs[j]]` — a streaming scatter-gather unit
/// in action. Also the codebook decoder when `data` is a codebook.
///
/// # Errors
/// Returns [`SimTimeout`] on a simulation bug.
pub fn run_gather<I: KernelIndex>(data: &[f64], idcs: &[I]) -> Result<StreamRun, SimTimeout> {
    let n = idcs.len() as u32;
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut staged = SingleCcSim::new(Program::default());
    let data_addr = place_f64s(&mut arena, staged.mem.array_mut(), data);
    let idx_bytes = (n.max(1) * I::BYTES + 7) & !7;
    let idcs_addr = arena.alloc(idx_bytes, 8);
    I::store_slice(staged.mem.array_mut(), idcs_addr, idcs);
    let out = alloc_result(&mut arena, n.max(1));

    let mut asm = Assembler::new();
    asm.roi_begin();
    if n > 0 {
        // Lane 0 (SSR): affine write stream over out; lane 1 (ISSR):
        // gather read stream.
        emit_affine_write(&mut asm, 0, out, n, 8);
        emit_indirect_read::<I>(&mut asm, 1, idcs_addr, n, 0, data_addr);
        asm.csrsi(issr_isa::Csr::Ssr, 1);
        asm.li(R::T1, i64::from(n) - 1);
        asm.frep_outer(R::T1, 1, Stagger::NONE);
        asm.fmv_d(FpReg::FT0, FpReg::FT1); // write stream <- gather stream
    }
    asm.roi_end();
    if n > 0 {
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
    asm.halt();
    let mut sim = SingleCcSim::new(asm.finish().expect("gather assembles"));
    sim.mem = staged.mem;
    let summary = sim.run(100_000 + 16 * u64::from(n))?.expect_clean();
    Ok(StreamRun { out: sim.mem.array().load_f64_slice(out, idcs.len()), summary })
}

/// Scatter: `out[idcs[j]] = vals[j]` over a zeroed output of `dim`
/// elements (sparse densification).
///
/// # Errors
/// Returns [`SimTimeout`] on a simulation bug.
pub fn run_scatter<I: KernelIndex>(
    dim: usize,
    idcs: &[I],
    vals: &[f64],
) -> Result<StreamRun, SimTimeout> {
    assert_eq!(idcs.len(), vals.len(), "index/value length mismatch");
    let n = idcs.len() as u32;
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut staged = SingleCcSim::new(Program::default());
    let vals_addr = place_f64s(&mut arena, staged.mem.array_mut(), vals);
    let idx_bytes = (n.max(1) * I::BYTES + 7) & !7;
    let idcs_addr = arena.alloc(idx_bytes, 8);
    I::store_slice(staged.mem.array_mut(), idcs_addr, idcs);
    let out = alloc_result(&mut arena, dim.max(1) as u32);

    let mut asm = Assembler::new();
    asm.roi_begin();
    if n > 0 {
        emit_affine_read(&mut asm, 0, vals_addr, n, 8);
        emit_indirect_write::<I>(&mut asm, 1, idcs_addr, n, 0, out);
        asm.csrsi(issr_isa::Csr::Ssr, 1);
        asm.li(R::T1, i64::from(n) - 1);
        asm.frep_outer(R::T1, 1, Stagger::NONE);
        asm.fmv_d(FpReg::FT1, FpReg::FT0); // scatter stream <- value stream
    }
    asm.roi_end();
    if n > 0 {
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
    asm.halt();
    let mut sim = SingleCcSim::new(asm.finish().expect("scatter assembles"));
    sim.mem = staged.mem;
    let summary = sim.run(100_000 + 16 * u64::from(n))?.expect_clean();
    Ok(StreamRun { out: sim.mem.array().load_f64_slice(out, dim), summary })
}

/// Dot product of a codebook-compressed sparse vector with a dense one,
/// on a streamer with **two ISSRs**: lane 0 decodes
/// `codebook[codes[j]]`, lane 1 gathers `dense[idcs[j]]` — same code
/// shape and performance as the ordinary ISSR SpVV, as §III-C argues.
///
/// # Errors
/// Returns [`SimTimeout`] on a simulation bug.
pub fn run_codebook_spvv<I: KernelIndex>(
    codebook: &[f64],
    codes: &[I],
    idcs: &[I],
    dense: &[f64],
) -> Result<(f64, RunSummary), SimTimeout> {
    assert_eq!(codes.len(), idcs.len(), "codes/indices length mismatch");
    let n = codes.len() as u32;
    let n_acc = crate::variant::issr_accumulators(I::IDX_SIZE);
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let make_cc = |program: Program| {
        CoreComplex::with_streamer(
            0,
            program,
            CcParams::default(),
            Streamer::new(&[LaneKind::Issr, LaneKind::Issr]),
        )
    };
    let mut staged = SingleCcSim::with_cc(make_cc(Program::default()));
    let book_addr = place_f64s(&mut arena, staged.mem.array_mut(), codebook);
    let dense_addr = place_f64s(&mut arena, staged.mem.array_mut(), dense);
    let idx_bytes = (n.max(1) * I::BYTES + 7) & !7;
    let codes_addr = arena.alloc(idx_bytes, 8);
    I::store_slice(staged.mem.array_mut(), codes_addr, codes);
    let idcs_addr = arena.alloc(idx_bytes, 8);
    I::store_slice(staged.mem.array_mut(), idcs_addr, idcs);
    let out = alloc_result(&mut arena, 1);

    let mut asm = Assembler::new();
    asm.li_addr(R::A2, out);
    asm.roi_begin();
    if n == 0 {
        asm.fcvt_d_w(ACC0, R::ZERO);
        asm.fsd(ACC0, R::A2, 0);
        asm.roi_end();
    } else {
        emit_indirect_read::<I>(&mut asm, 0, codes_addr, n, 0, book_addr);
        emit_indirect_read::<I>(&mut asm, 1, idcs_addr, n, 0, dense_addr);
        asm.csrsi(issr_isa::Csr::Ssr, 1);
        emit_zero_accumulators(&mut asm, ACC0, n_acc);
        asm.li(R::T1, i64::from(n) - 1);
        asm.frep_outer(R::T1, 1, Stagger::accumulator(n_acc));
        asm.fmadd_d(ACC0, FpReg::FT0, FpReg::FT1, ACC0);
        emit_reduction_tree(&mut asm, ACC0, n_acc);
        asm.fsd(ACC0, R::A2, 0);
        asm.roi_end();
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
    asm.halt();
    let mut sim = SingleCcSim::with_cc(make_cc(asm.finish().expect("codebook spvv assembles")));
    sim.mem = staged.mem;
    let summary = sim.run(100_000 + 64 * u64::from(n))?.expect_clean();
    Ok((sim.mem.array().load_f64(out), summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::{gen, reference};

    #[test]
    fn gather_matches_reference() {
        let mut rng = gen::rng(70);
        let data = gen::dense_vector(&mut rng, 512);
        let idcs: Vec<u16> = (0..300u16).map(|i| (i * 11) % 512).collect();
        let run = run_gather(&data, &idcs).unwrap();
        assert_eq!(run.out, reference::gather(&data, &idcs));
    }

    #[test]
    fn gather_streams_at_indirection_rate() {
        let mut rng = gen::rng(71);
        let data = gen::dense_vector(&mut rng, 1024);
        let idcs: Vec<u16> = (0..2000u16).map(|i| (i * 7) % 1024).collect();
        let run = run_gather(&data, &idcs).unwrap();
        // One element per fmv; data side capped at 4/5 by the shared
        // index/data port.
        let rate = issr_trace::ratio(idcs.len() as f64, run.summary.metrics.roi.cycles as f64);
        assert!(rate > 0.7, "gather rate {rate:.3}");
    }

    #[test]
    fn scatter_matches_reference() {
        let mut rng = gen::rng(72);
        let fiber = gen::sparse_vector::<u16>(&mut rng, 400, 64);
        let run = run_scatter(400, fiber.idcs(), fiber.vals()).unwrap();
        assert_eq!(run.out, reference::scatter(400, fiber.idcs(), fiber.vals()));
    }

    #[test]
    fn scatter_32bit_indices() {
        let mut rng = gen::rng(73);
        let fiber = gen::sparse_vector::<u32>(&mut rng, 256, 32);
        let run = run_scatter(256, fiber.idcs(), fiber.vals()).unwrap();
        assert_eq!(run.out, reference::scatter(256, fiber.idcs(), fiber.vals()));
    }

    #[test]
    fn codebook_spvv_matches_reference() {
        let mut rng = gen::rng(74);
        let (book, codes) = gen::codebook_vector::<u16>(&mut rng, 500, 16);
        let fiber = gen::sparse_vector::<u16>(&mut rng, 2048, 500);
        let dense = gen::dense_vector(&mut rng, 2048);
        let (got, _) = run_codebook_spvv(&book, &codes, fiber.idcs(), &dense).unwrap();
        let expect = reference::codebook_spvv(&book, &codes, fiber.idcs(), &dense);
        assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    /// §III-C: codebook SpVV on two ISSRs performs near-identically to
    /// the plain ISSR SpVV.
    #[test]
    fn codebook_spvv_utilization_matches_plain_spvv() {
        let mut rng = gen::rng(75);
        let nnz = 1200;
        let (book, codes) = gen::codebook_vector::<u16>(&mut rng, nnz, 32);
        let fiber = gen::sparse_vector::<u16>(&mut rng, 2048, nnz);
        let dense = gen::dense_vector(&mut rng, 2048);
        let (_, summary) = run_codebook_spvv(&book, &codes, fiber.idcs(), &dense).unwrap();
        let util = summary.metrics.fpu_utilization();
        // Both operands now ride 4/5-capped indirection lanes.
        assert!(util > 0.7, "codebook SpVV utilization {util:.3}");
    }

    #[test]
    fn empty_inputs() {
        let run = run_gather::<u16>(&[1.0], &[]).unwrap();
        assert!(run.out.is_empty());
        let run = run_scatter::<u16>(8, &[], &[]).unwrap();
        assert_eq!(run.out, vec![0.0; 8]);
    }
}
