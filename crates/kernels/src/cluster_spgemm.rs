//! Multicore cluster SpGEMM: `C = A·B` with all three matrices sparse,
//! row-striped over the sparse-output streamer cluster.
//!
//! Row-wise Gustavson parallelizes embarrassingly over C rows — worker
//! *h* owns the contiguous stripe of `⌈nrows / workers⌉` rows, exactly
//! [`crate::cluster_csrmv`]'s static split. What does *not* parallelize
//! trivially is the packed output: row offsets depend on every earlier
//! row's data-dependent length. The plan therefore runs the host-side
//! **symbolic phase** ([`issr_sparse::reference::spgemm_ptr`]) and
//! places the finished row pointer in the TCDM (the two-pass/alloc side
//! of the output builder); workers read `c.ptr[r]` and write their rows
//! straight into the exact packed slots. Adjacent rows from different
//! workers may share a 64-bit index word at their boundary — both the
//! SpAcc drain (ISSR) and the core's halfword stores (BASE) write with
//! byte strobes, so the races compose.
//!
//! Per row the worker body is the single-core kernel's
//! ([`crate::spgemm`]): BASE software union-merge through per-worker
//! ping-pong scratch; ISSR the SSR + FREP `fmul` expansion feeding the
//! SpAcc, drained per row. The in-order SpAcc job queue sequences each
//! row's feeds before its drain without any polling.

use crate::common::{emit_spacc_cfg, SETUP_SCRATCH};
use crate::layout::{csr_addrs, store_csr, Arena, CsrAddrs};
use crate::spgemm::{emit_base_k_merge, emit_base_row_copy, emit_issr_k_expand, expansion_volume};
use crate::variant::{log_width, KernelIndex, Variant};
use issr_cluster::cluster::{Cluster, ClusterParams, ClusterSummary};
use issr_core::cfg::{cfg_addr, reg as sreg};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;
use issr_mem::map::TCDM_BASE;
use issr_snitch::cc::SimTimeout;
use issr_sparse::csr::CsrMatrix;
use issr_sparse::reference::spgemm_ptr;

const DATA_BASE: u32 = TCDM_BASE + 0x100;
const DATA_SIZE: u32 = issr_mem::map::TCDM_SIZE - 0x100;

/// The planned layout of one cluster SpGEMM run.
#[derive(Clone, Debug)]
pub struct ClusterSpgemmPlan {
    a: CsrAddrs,
    b: CsrAddrs,
    /// C region; `nnz` comes from the symbolic phase.
    c: CsrAddrs,
    /// Host-computed row pointer (stored resident for the workers).
    c_ptr: Vec<u32>,
    /// Per-worker BASE scratch block base (see `scratch` layout below).
    scratch_base: u32,
    /// One worker's scratch block size in bytes.
    scratch_stride: u32,
    /// Bytes of one scratch index array within a block.
    scratch_idx_bytes: u32,
    /// Row capacity of one scratch array (elements).
    row_cap: u32,
    nrows: u32,
    ncols: u32,
    rows_per_worker: u32,
    n_workers: u32,
}

impl ClusterSpgemmPlan {
    /// Plans the TCDM-resident layout: operands, the exact packed output
    /// (sized by the symbolic pass), and per-worker merge scratch.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or the workload does not
    /// fit the TCDM.
    #[must_use]
    pub fn new<I: KernelIndex>(a: &CsrMatrix<I>, b: &CsrMatrix<I>, n_workers: u32) -> Self {
        assert_eq!(b.nrows(), a.ncols(), "inner dimensions must agree");
        let c_ptr = spgemm_ptr(a, b);
        let c_nnz = *c_ptr.last().expect("symbolic phase yields nrows + 1 entries");
        let mut arena = Arena::new(DATA_BASE, DATA_SIZE);
        let a_addrs = csr_addrs::<I>(&mut arena, a.nrows() as u32, a.nnz() as u32);
        let b_addrs = csr_addrs::<I>(&mut arena, b.nrows() as u32, b.nnz() as u32);
        let c_addrs = csr_addrs::<I>(&mut arena, a.nrows() as u32, c_nnz);
        // Per-worker ping-pong merge scratch (BASE only, always planned):
        // [idx0 | idx1 | val0 | val1], each row_cap elements.
        let row_cap = (b.ncols() as u32).max(1);
        let scratch_idx_bytes = (row_cap * I::BYTES + 7) & !7;
        let scratch_stride = 2 * scratch_idx_bytes + 2 * row_cap * 8;
        let scratch_base = arena.alloc(n_workers * scratch_stride, 8);
        Self {
            a: a_addrs,
            b: b_addrs,
            c: c_addrs,
            c_ptr,
            scratch_base,
            scratch_stride,
            scratch_idx_bytes,
            row_cap,
            nrows: a.nrows() as u32,
            ncols: b.ncols() as u32,
            rows_per_worker: (a.nrows() as u32).div_ceil(n_workers.max(1)),
            n_workers,
        }
    }

    /// Number of output nonzeros the symbolic phase predicts.
    #[must_use]
    pub fn c_nnz(&self) -> u32 {
        *self.c_ptr.last().expect("non-empty")
    }

    /// Writes the operands and the symbolic row pointer into the TCDM.
    pub fn marshal<I: KernelIndex>(
        &self,
        cluster: &mut Cluster,
        a: &CsrMatrix<I>,
        b: &CsrMatrix<I>,
    ) {
        let mem = cluster.tcdm.array_mut();
        store_csr(mem, self.a, a);
        store_csr(mem, self.b, b);
        mem.store_u32_slice(self.c.ptr, &self.c_ptr);
    }

    /// Reads the product back from the TCDM (row pointer included, so a
    /// worker bug that skips rows shows up as garbage values, not a
    /// silently reused host pointer).
    ///
    /// # Panics
    /// Panics if the stored structure is not a valid CSR matrix.
    #[must_use]
    pub fn read_c<I: KernelIndex>(&self, cluster: &Cluster) -> CsrMatrix<I> {
        crate::layout::read_csr_out::<I>(
            cluster.tcdm.array(),
            crate::layout::CsrOutAddrs {
                ptr: self.c.ptr,
                idcs: self.c.idcs,
                vals: self.c.vals,
                nnz_cap: self.c.nnz,
            },
            self.nrows as usize,
            self.ncols as usize,
        )
    }
}

/// Builds the SPMD cluster program (workers `0..n`; the DMCC, hart `n`,
/// halts immediately — the workload is resident).
///
/// # Panics
/// Panics for [`Variant::Ssr`] (see [`crate::spgemm::build_spgemm`]).
#[must_use]
pub fn build_cluster_spgemm<I: KernelIndex>(variant: Variant, plan: &ClusterSpgemmPlan) -> Program {
    assert!(
        matches!(variant, Variant::Base | Variant::Issr),
        "cluster SpGEMM defines BASE and ISSR variants only"
    );
    let mut asm = Assembler::new();
    asm.csrr(R::A7, Csr::MHartId);
    let worker = asm.new_label();
    asm.li(R::T0, i64::from(plan.n_workers));
    asm.blt(R::A7, R::T0, worker);
    asm.halt(); // the DMCC has nothing to move
    asm.bind(worker);
    asm.symbol("worker");
    // Stripe + A cursors; s1 lands on the resident &c.ptr[start].
    crate::cluster_spmspv::emit_stripe_prologue::<I>(
        &mut asm,
        plan.rows_per_worker,
        plan.nrows,
        plan.a,
        plan.c.ptr,
        2,
    );
    match variant {
        Variant::Issr => emit_issr_worker::<I>(&mut asm, plan),
        _ => emit_base_worker::<I>(&mut asm, plan),
    }
    asm.halt();
    asm.finish().expect("cluster SpGEMM program assembles")
}

/// ISSR worker row loop: SSR + FREP expansion into the SpAcc, one drain
/// per row at the host-planned packed offsets.
///
/// Register roles: `s0` `&a.ptr[r+1]`, `s1` `&c.ptr[r]`, `s2` rows
/// remaining, `s4`/`s5` A cursors, `s6` `b.ptr`, `s7` `b.idcs`, `s8`
/// `b.vals`, `s9` A-row end, `a2`/`a3` C output cursors for the row.
fn emit_issr_worker<I: KernelIndex>(asm: &mut Assembler, plan: &ClusterSpgemmPlan) {
    let log_w = log_width::<I>();
    asm.li_addr(R::S6, plan.b.ptr);
    asm.li_addr(R::S7, plan.b.idcs);
    asm.li_addr(R::S8, plan.b.vals);
    asm.li(SETUP_SCRATCH, 8);
    asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::STRIDES[0], 0));
    emit_spacc_cfg::<I>(asm);
    asm.csrsi(Csr::Ssr, 1);
    asm.roi_begin();
    let row = asm.bind_label();
    asm.symbol("issr_row");
    let flush = asm.new_label();
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::S9, R::T5, log_w);
    asm.li_addr(R::T6, plan.a.idcs);
    asm.add(R::S9, R::S9, R::T6); // A-row end address
                                  // Packed output cursors from the resident symbolic pointer.
    asm.lw(R::A4, R::S1, 0); //     c.ptr[r]
    asm.addi(R::S1, R::S1, 4);
    asm.slli(R::A2, R::A4, log_w);
    asm.li_addr(R::T6, plan.c.idcs);
    asm.add(R::A2, R::A2, R::T6);
    asm.slli(R::A3, R::A4, 3);
    asm.li_addr(R::T6, plan.c.vals);
    asm.add(R::A3, R::A3, R::T6);
    emit_issr_k_expand::<I>(asm, flush);
    asm.bind(flush);
    asm.symbol("issr_flush");
    // The in-order job queue sequences the drain after this row's feeds.
    asm.scfgwi(R::A3, cfg_addr(sreg::ACC_VAL_OUT, 0));
    asm.scfgwi(R::A2, cfg_addr(sreg::ACC_DRAIN, 0)); // drain launch (retries)
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, row);
    // Let the last drain retire inside the measured region.
    let fin = asm.bind_label();
    asm.scfgri(R::T0, cfg_addr(sreg::ACC_STATUS, 0));
    asm.andi(R::T0, R::T0, 1);
    asm.beqz(R::T0, fin);
    asm.roi_end();
    asm.csrci(Csr::Ssr, 1);
}

/// BASE worker row loop: the single-core software union-merge through
/// this worker's private ping-pong scratch, packed out at `c.ptr[r]`.
///
/// Register roles as in [`crate::spgemm`]'s BASE emitter, plus `s1`
/// `&c.ptr[r]` and `a4` the row's packed element offset; `s11` `b.ptr`.
fn emit_base_worker<I: KernelIndex>(asm: &mut Assembler, plan: &ClusterSpgemmPlan) {
    let log_w = log_width::<I>();
    // Per-worker scratch block: base + hart * stride.
    asm.li(R::T0, i64::from(plan.scratch_stride));
    asm.mul(R::T0, R::T0, R::A7);
    asm.li_addr(R::T1, plan.scratch_base);
    asm.add(R::S6, R::T0, R::T1); // idx0
    asm.li(R::T2, i64::from(plan.scratch_idx_bytes));
    asm.add(R::S8, R::S6, R::T2); // idx1
    asm.add(R::S7, R::S8, R::T2); // val0
    asm.li(R::T2, i64::from(plan.row_cap) * 8);
    asm.add(R::S9, R::S7, R::T2); // val1
    asm.li_addr(R::S11, plan.b.ptr);
    asm.roi_begin();
    let row = asm.bind_label();
    asm.symbol("base_row");
    let flush = asm.new_label();
    asm.li(R::S10, 0);
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::A6, R::T5, log_w);
    asm.li_addr(R::T6, plan.a.idcs);
    asm.add(R::A6, R::A6, R::T6);
    asm.lw(R::A4, R::S1, 0); // c.ptr[r]
    asm.addi(R::S1, R::S1, 4);
    emit_base_k_merge::<I>(asm, plan.b.idcs, plan.b.vals, flush);
    // Row finished: pack the accumulator at the host-planned offsets.
    asm.bind(flush);
    asm.symbol("base_flush");
    asm.slli(R::T0, R::A4, log_w);
    asm.li_addr(R::T6, plan.c.idcs);
    asm.add(R::T0, R::T0, R::T6); // C index cursor
    asm.slli(R::T1, R::A4, 3);
    asm.li_addr(R::T6, plan.c.vals);
    asm.add(R::T1, R::T1, R::T6); // C value cursor
    emit_base_row_copy::<I>(asm);
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, row);
    asm.roi_end();
}

/// Result of one cluster SpGEMM run.
#[derive(Clone, Debug)]
pub struct ClusterSpgemmRun {
    /// The computed sparse product, read back and format-validated.
    pub c: CsrMatrix<u32>,
    /// Cluster-wide summary (per-worker SpAcc statistics included).
    pub summary: ClusterSummary,
}

/// Runs cluster SpGEMM end to end (symbolic plan → marshal → simulate →
/// read back) on the sparse-output streamer cluster.
///
/// # Errors
/// Returns [`SimTimeout`] if the cluster deadlocks or exceeds its cycle
/// budget (a bug).
///
/// # Panics
/// Panics if the inner dimensions disagree, on [`Variant::Ssr`], or if
/// the workers build a malformed output (the readback validates).
pub fn run_cluster_spgemm<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
) -> Result<ClusterSpgemmRun, SimTimeout> {
    let params = ClusterParams { sssr: true, ..ClusterParams::default() };
    let plan = ClusterSpgemmPlan::new(a, b, params.n_workers as u32);
    let program = build_cluster_spgemm::<I>(variant, &plan);
    let mut cluster = Cluster::new(program, params);
    plan.marshal(&mut cluster, a, b);
    let volume = expansion_volume(a, b);
    let budget = 2_000_000 + 512 * (volume + u64::from(plan.c_nnz()) + a.nrows() as u64);
    let summary = cluster.run(budget)?;
    assert!(summary.traps.is_empty(), "cluster cores trapped: {:?}", summary.traps);
    let c = plan.read_c::<I>(&cluster).with_index_width::<u32>();
    Ok(ClusterSpgemmRun { c, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::{gen, reference};

    fn check<I: KernelIndex>(
        variant: Variant,
        nrows: usize,
        inner: usize,
        ncols: usize,
        nnz_a: usize,
        nnz_b: usize,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let a = gen::csr_uniform::<I>(&mut rng, nrows, inner, nnz_a);
        let b = gen::csr_uniform::<I>(&mut rng, inner, ncols, nnz_b);
        let run = run_cluster_spgemm(variant, &a, &b).expect("cluster run finishes");
        assert!(run.summary.traps.is_empty(), "unexpected traps: {:?}", run.summary.traps);
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        assert_eq!(run.c.ptr(), expect.ptr(), "{variant} {nrows}x{inner}x{ncols} row pointers");
        assert_eq!(run.c.idcs(), expect.idcs(), "{variant} column indices");
        for (got, want) in run.c.vals().iter().zip(expect.vals()) {
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "{variant} {nrows}x{inner}x{ncols}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn base_cluster_spgemm_matches_reference() {
        check::<u16>(Variant::Base, 24, 32, 48, 120, 160, 400);
        check::<u32>(Variant::Base, 24, 32, 48, 120, 160, 401);
        check::<u16>(Variant::Base, 5, 16, 16, 20, 40, 402); // fewer rows than workers
    }

    #[test]
    fn issr_cluster_spgemm_matches_reference() {
        check::<u16>(Variant::Issr, 24, 32, 48, 120, 160, 410);
        check::<u32>(Variant::Issr, 24, 32, 48, 120, 160, 411);
        check::<u16>(Variant::Issr, 5, 16, 16, 20, 40, 412); // fewer rows than workers
        check::<u16>(Variant::Issr, 16, 16, 16, 0, 40, 413); // empty A
        check::<u32>(Variant::Issr, 16, 16, 16, 40, 0, 414); // empty B
    }

    /// Odd row lengths at worker stripe boundaries exercise the strobed
    /// shared-word writes between adjacent workers (16-bit indices).
    #[test]
    fn issr_cluster_spgemm_odd_worker_boundaries() {
        let mut triplets = Vec::new();
        for r in 0..17usize {
            for j in 0..=(r % 3) {
                triplets.push((r, (j * 5 + r) % 24, 1.0 + (r + j) as f64 * 0.25));
            }
        }
        let a = CsrMatrix::<u16>::from_triplets(17, 24, &triplets);
        let b_triplets: Vec<(usize, usize, f64)> = (0..24)
            .flat_map(|k| (0..5).map(move |j| (k, (k * 3 + j * 7) % 13, 0.5 * (k + j + 1) as f64)))
            .collect();
        let b = CsrMatrix::<u16>::from_triplets(24, 13, &b_triplets);
        let run = run_cluster_spgemm(Variant::Issr, &a, &b).unwrap();
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        assert_eq!(run.c.ptr(), expect.ptr());
        assert_eq!(run.c.idcs(), expect.idcs());
        // Every worker with rows must have drained through its SpAcc.
        let active = run.summary.spacc_stats.iter().filter(|s| s.drains > 0).count();
        assert!(active >= 2, "row striping must engage multiple SpAcc units");
    }

    /// The hardware cluster beats the software-merge cluster.
    #[test]
    fn cluster_spgemm_issr_beats_base() {
        let mut rng = gen::rng(420);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 32, 48, 4);
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 48, 160, 20);
        let base = run_cluster_spgemm(Variant::Base, &a, &b).unwrap();
        let issr = run_cluster_spgemm(Variant::Issr, &a, &b).unwrap();
        let speedup = base.summary.cycles as f64 / issr.summary.cycles as f64;
        assert!(speedup > 2.0, "cluster SpGEMM speedup {speedup:.2}");
    }
}
