//! Multicore cluster SpGEMM: `C = A·B` with all three matrices sparse,
//! row-striped over the sparse-output streamer cluster.
//!
//! Row-wise Gustavson parallelizes embarrassingly over C rows — worker
//! *h* owns the contiguous stripe of `⌈nrows / workers⌉` rows, exactly
//! [`crate::cluster_csrmv`]'s static split. What does *not* parallelize
//! trivially is the packed output: row offsets depend on every earlier
//! row's data-dependent length.
//!
//! # Device-owned allocation
//!
//! The device owns the two-pass allocation end to end — the host only
//! provides a capacity upper bound (the Gustavson expansion volume) for
//! the output region; every packed offset is computed on-device:
//!
//! 1. **Symbolic phase** — each worker walks its stripe once and counts
//!    every row's output nonzeros. The ISSR variant runs **count-only
//!    SpAcc feeds** ([`issr_core::cfg::acc_count_cfg_word`]): the unit
//!    union-merges each `B[k,:]` column-index stream into its row
//!    buffer with *no value traffic at all* — no SSR job, no FREP, no
//!    FPU — then the worker reads `ACC_NNZ` and resets the buffer with
//!    `ACC_CLEAR`. The BASE variant runs its software union-merge and
//!    takes the accumulator length. Either way the worker stores the
//!    *stripe-local inclusive prefix* into `c.ptr[r+1]` as it goes.
//! 2. **Prefix-sum barrier** — the cluster-wide packed offsets come
//!    from [`issr_cluster::scan::emit_exclusive_prefix`]: a log-tree
//!    (Hillis–Steele) scan over the per-worker stripe totals, built
//!    from the hardware barrier, after which each worker adds its
//!    exclusive base to its stripe's `c.ptr` entries. One more barrier
//!    publishes the finished row pointer.
//! 3. **Numeric phase** — the original row loop, reading the now
//!    device-resident `c.ptr[r]` and writing rows straight into their
//!    exact packed slots. Adjacent rows from different workers may
//!    share a 64-bit index word at their boundary — both the SpAcc
//!    drain (ISSR) and the core's halfword stores (BASE) write with
//!    byte strobes, so the races compose.
//!
//! Per row the numeric body is the single-core kernel's
//! ([`crate::spgemm`]): BASE software union-merge through per-worker
//! ping-pong scratch; ISSR the SSR + FREP `fmul` expansion feeding the
//! SpAcc, drained per row. The in-order SpAcc job queue sequences each
//! row's feeds before its drain without any polling, and the
//! double-buffered row storage overlaps a row's drain with the next
//! row's first feed.

use crate::common::{emit_spacc_cfg, SETUP_SCRATCH};
use crate::layout::{csr_addrs, store_csr, Arena, CsrAddrs};
use crate::spgemm::{emit_base_k_merge, emit_base_row_copy, emit_issr_k_expand, expansion_volume};
use crate::variant::{log_width, KernelIndex, Variant};
use issr_cluster::cluster::{Cluster, ClusterParams, ClusterSummary};
use issr_cluster::scan::{emit_exclusive_prefix, scan_array_bytes};
use issr_core::cfg::{acc_count_cfg_word, cfg_addr, reg as sreg, SPACC_ROW_CAP_RESET};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;
use issr_mem::map::TCDM_BASE;
use issr_snitch::cc::SimTimeout;
use issr_sparse::csr::CsrMatrix;

const DATA_BASE: u32 = TCDM_BASE + 0x100;
const DATA_SIZE: u32 = issr_mem::map::TCDM_SIZE - 0x100;

/// The planned layout of one cluster SpGEMM run.
#[derive(Clone, Debug)]
pub struct ClusterSpgemmPlan {
    a: CsrAddrs,
    b: CsrAddrs,
    /// C region; `nnz` is a *capacity upper bound* (expansion volume) —
    /// the exact packed offsets are computed on-device.
    c: CsrAddrs,
    /// Ping-pong scratch of the prefix-sum barrier (host-zeroed).
    totals: [u32; 2],
    /// Per-worker BASE scratch block base (see `scratch` layout below).
    scratch_base: u32,
    /// One worker's scratch block size in bytes.
    scratch_stride: u32,
    /// Bytes of one scratch index array within a block.
    scratch_idx_bytes: u32,
    /// Row capacity of one scratch array (elements).
    row_cap: u32,
    /// SpAcc row-buffer capacity each ISSR worker programs
    /// (`ACC_BUF_CAP`); the reset value by default, optimistic for the
    /// grow-and-retry flow.
    acc_cap: u32,
    nrows: u32,
    ncols: u32,
    rows_per_worker: u32,
    n_workers: u32,
}

impl ClusterSpgemmPlan {
    /// Plans the TCDM-resident layout: operands, the output region
    /// (sized by the expansion-volume upper bound — no host symbolic
    /// pass), prefix-scan scratch, and per-worker merge scratch.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or the workload does not
    /// fit the TCDM.
    #[must_use]
    pub fn new<I: KernelIndex>(a: &CsrMatrix<I>, b: &CsrMatrix<I>, n_workers: u32) -> Self {
        assert_eq!(b.nrows(), a.ncols(), "inner dimensions must agree");
        let cap = expansion_volume(a, b).min(a.nrows() as u64 * b.ncols() as u64);
        let cap = u32::try_from(cap).expect("expansion volume fits u32");
        let mut arena = Arena::new(DATA_BASE, DATA_SIZE);
        let a_addrs = csr_addrs::<I>(&mut arena, a.nrows() as u32, a.nnz() as u32);
        let b_addrs = csr_addrs::<I>(&mut arena, b.nrows() as u32, b.nnz() as u32);
        let c_addrs = csr_addrs::<I>(&mut arena, a.nrows() as u32, cap);
        let totals = [
            arena.alloc(scan_array_bytes(n_workers), 8),
            arena.alloc(scan_array_bytes(n_workers), 8),
        ];
        // Per-worker ping-pong merge scratch (BASE only, always planned):
        // [idx0 | idx1 | val0 | val1], each row_cap elements.
        let row_cap = (b.ncols() as u32).max(1);
        let scratch_idx_bytes = (row_cap * I::BYTES + 7) & !7;
        let scratch_stride = 2 * scratch_idx_bytes + 2 * row_cap * 8;
        let scratch_base = arena.alloc(n_workers * scratch_stride, 8);
        Self {
            a: a_addrs,
            b: b_addrs,
            c: c_addrs,
            totals,
            scratch_base,
            scratch_stride,
            scratch_idx_bytes,
            row_cap,
            acc_cap: SPACC_ROW_CAP_RESET,
            nrows: a.nrows() as u32,
            ncols: b.ncols() as u32,
            rows_per_worker: (a.nrows() as u32).div_ceil(n_workers.max(1)),
            n_workers,
        }
    }

    /// Allocated output capacity (the expansion-volume upper bound).
    #[must_use]
    pub fn c_cap(&self) -> u32 {
        self.c.nnz
    }

    /// Overrides the SpAcc row-buffer capacity the ISSR workers
    /// program. An optimistic capacity arms the overflow trap the
    /// grow-and-retry harness ([`run_cluster_spgemm_recover`]) recovers
    /// from.
    #[must_use]
    pub fn with_acc_cap(mut self, acc_cap: u32) -> Self {
        self.acc_cap = acc_cap.max(1);
        self
    }

    /// Writes the operands into the TCDM and zeroes the device-computed
    /// row pointer's anchor and the prefix-scan scratch. Nothing
    /// data-dependent about C crosses the host/device boundary.
    pub fn marshal<I: KernelIndex>(
        &self,
        cluster: &mut Cluster,
        a: &CsrMatrix<I>,
        b: &CsrMatrix<I>,
    ) {
        let mem = cluster.tcdm.array_mut();
        store_csr(mem, self.a, a);
        store_csr(mem, self.b, b);
        mem.store_u32(self.c.ptr, 0);
        for base in self.totals {
            for j in 0..scan_array_bytes(self.n_workers) / 4 {
                mem.store_u32(base + j * 4, 0);
            }
        }
    }

    /// Reads the product back from the TCDM — row pointer included, so
    /// the device-computed counts, scan offsets and packed rows are all
    /// validated by the CSR readback.
    ///
    /// # Panics
    /// Panics if the stored structure is not a valid CSR matrix.
    #[must_use]
    pub fn read_c<I: KernelIndex>(&self, cluster: &Cluster) -> CsrMatrix<I> {
        crate::layout::read_csr_out::<I>(
            cluster.tcdm.array(),
            crate::layout::CsrOutAddrs {
                ptr: self.c.ptr,
                idcs: self.c.idcs,
                vals: self.c.vals,
                nnz_cap: self.c.nnz,
            },
            self.nrows as usize,
            self.ncols as usize,
        )
    }
}

/// Builds the SPMD cluster program (workers `0..n`; the DMCC, hart `n`,
/// halts immediately — the workload is resident).
///
/// # Panics
/// Panics for [`Variant::Ssr`] (see [`crate::spgemm::build_spgemm`]).
#[must_use]
pub fn build_cluster_spgemm<I: KernelIndex>(variant: Variant, plan: &ClusterSpgemmPlan) -> Program {
    assert!(
        matches!(variant, Variant::Base | Variant::Issr),
        "cluster SpGEMM defines BASE and ISSR variants only"
    );
    let mut asm = Assembler::new();
    asm.csrr(R::A7, Csr::MHartId);
    let worker = asm.new_label();
    asm.li(R::T0, i64::from(plan.n_workers));
    asm.blt(R::A7, R::T0, worker);
    asm.halt(); // the DMCC has nothing to move
    asm.bind(worker);
    asm.symbol("worker");
    match variant {
        Variant::Issr => emit_issr_worker::<I>(&mut asm, plan),
        _ => emit_base_worker::<I>(&mut asm, plan),
    }
    asm.halt();
    asm.finish().expect("cluster SpGEMM program assembles")
}

/// Emits the shared symbolic epilogue: local stripe total in `s10` →
/// log-tree scan → add the exclusive base `s3` to this stripe's
/// `c.ptr[r+1]` entries → barrier publishing the finished row pointer.
/// Clobbers `t0`–`t6` and `a7` (re-read from `mhartid`).
fn emit_scan_and_apply(asm: &mut Assembler, plan: &ClusterSpgemmPlan) {
    asm.symbol("scan");
    asm.csrr(R::A7, Csr::MHartId); // BASE's merge clobbers a7
    emit_exclusive_prefix(asm, plan.n_workers, plan.totals);
    // Re-derive the stripe bounds and add the packed base.
    asm.symbol("apply_offsets");
    asm.li(R::T0, i64::from(plan.rows_per_worker));
    asm.mul(R::T1, R::A7, R::T0); // start row
    asm.li(R::T2, i64::from(plan.nrows));
    asm.sub(R::T3, R::T2, R::T1); // rows remaining after start
    let clamped = asm.new_label();
    asm.blt(R::T3, R::T0, clamped);
    asm.mv(R::T3, R::T0);
    asm.bind(clamped);
    asm.slli(R::T4, R::T1, 2);
    asm.li_addr(R::T5, plan.c.ptr + 4);
    asm.add(R::T4, R::T4, R::T5); // &c.ptr[start + 1]
    let head = asm.bind_label();
    asm.lw(R::T6, R::T4, 0);
    asm.add(R::T6, R::T6, R::S3);
    asm.sw(R::T6, R::T4, 0);
    asm.addi(R::T4, R::T4, 4);
    asm.addi(R::T3, R::T3, -1);
    asm.bnez(R::T3, head);
    // Publish: the numeric phase reads c.ptr[start], which the
    // *previous* worker's apply loop wrote.
    asm.csrr(R::ZERO, Csr::Barrier);
}

/// ISSR worker: count-only symbolic pass, prefix-sum barrier, then the
/// SSR + FREP expansion into the SpAcc with one drain per row at the
/// device-computed packed offsets.
///
/// Register roles (both phases): `s0` `&a.ptr[r+1]`, `s1` c.ptr cursor,
/// `s2` rows remaining, `s4`/`s5` A cursors, `s6` `b.ptr`, `s7`
/// `b.idcs`, `s8` `b.vals`, `s9` A-row end, `s10` local prefix, `s3`
/// scan base; numeric adds `a2`/`a3` C output cursors.
#[allow(clippy::too_many_lines)]
fn emit_issr_worker<I: KernelIndex>(asm: &mut Assembler, plan: &ClusterSpgemmPlan) {
    let log_w = log_width::<I>();
    let ib = I::BYTES as i32;
    // Stripe + A cursors; s1 lands on &c.ptr[start] (halts empty harts).
    crate::cluster_spmspv::emit_stripe_prologue::<I>(
        asm,
        plan.rows_per_worker,
        plan.nrows,
        plan.a,
        plan.c.ptr,
        2,
    );
    asm.li_addr(R::S6, plan.b.ptr);
    asm.li_addr(R::S7, plan.b.idcs);
    asm.li_addr(R::S8, plan.b.vals);
    asm.li(SETUP_SCRATCH, 8);
    asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::STRIDES[0], 0));
    // Row-buffer capacity for both passes (count-only symbolic feeds
    // merge into the same buffer, so an optimistic capacity traps
    // there first — before any value traffic is wasted).
    asm.li(SETUP_SCRATCH, i64::from(plan.acc_cap));
    asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::ACC_BUF_CAP, 0));
    asm.roi_begin();
    // --- symbolic: count-only SpAcc feeds, no value traffic ---
    asm.li(SETUP_SCRATCH, i64::from(acc_count_cfg_word(I::IDX_SIZE)));
    asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::ACC_CFG, 0));
    asm.li(R::S10, 0);
    let sym_row = asm.bind_label();
    asm.symbol("issr_sym_row");
    let sym_row_end = asm.new_label();
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::S9, R::T5, log_w);
    asm.li_addr(R::T6, plan.a.idcs);
    asm.add(R::S9, R::S9, R::T6); // A-row end address
    let sym_k = asm.bind_label();
    asm.symbol("issr_sym_k");
    asm.beq(R::S4, R::S9, sym_row_end);
    I::emit_index_load(asm, R::T0, R::S4, 0); // column k
    asm.addi(R::S4, R::S4, ib);
    asm.slli(R::T1, R::T0, 2);
    asm.add(R::T1, R::T1, R::S6);
    asm.lw(R::T2, R::T1, 0); //  b.ptr[k]
    asm.lw(R::T3, R::T1, 4); //  b.ptr[k+1]
    asm.sub(R::T4, R::T3, R::T2); // nnz(B[k,:])
    asm.beqz(R::T4, sym_k);
    asm.scfgwi(R::T4, cfg_addr(sreg::ACC_COUNT, 0));
    asm.slli(R::T6, R::T2, log_w);
    asm.add(R::T6, R::T6, R::S7);
    asm.scfgwi(R::T6, cfg_addr(sreg::ACC_FEED, 0)); // launch (retries)
    asm.j(sym_k);
    asm.bind(sym_row_end);
    // Wait for the row's feeds, read the count, reset the buffer.
    let spin = asm.bind_label();
    asm.scfgri(R::T0, cfg_addr(sreg::ACC_STATUS, 0));
    asm.andi(R::T0, R::T0, 1);
    asm.beqz(R::T0, spin);
    asm.scfgri(R::T1, cfg_addr(sreg::ACC_NNZ, 0));
    asm.add(R::S10, R::S10, R::T1);
    asm.sw(R::S10, R::S1, 4); // c.ptr[r+1] = stripe-local prefix
    asm.addi(R::S1, R::S1, 4);
    asm.scfgwi(R::ZERO, cfg_addr(sreg::ACC_CLEAR, 0));
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, sym_row);
    // --- prefix-sum barrier + offset apply ---
    emit_scan_and_apply(asm, plan);
    // --- numeric: re-seed the cursors, restore value mode ---
    crate::cluster_spmspv::emit_stripe_prologue::<I>(
        asm,
        plan.rows_per_worker,
        plan.nrows,
        plan.a,
        plan.c.ptr,
        2,
    );
    emit_spacc_cfg::<I>(asm);
    asm.csrsi(Csr::Ssr, 1);
    let row = asm.bind_label();
    asm.symbol("issr_row");
    let flush = asm.new_label();
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::S9, R::T5, log_w);
    asm.li_addr(R::T6, plan.a.idcs);
    asm.add(R::S9, R::S9, R::T6); // A-row end address
                                  // Packed output cursors from the device-computed row pointer.
    asm.lw(R::A4, R::S1, 0); //     c.ptr[r]
    asm.addi(R::S1, R::S1, 4);
    asm.slli(R::A2, R::A4, log_w);
    asm.li_addr(R::T6, plan.c.idcs);
    asm.add(R::A2, R::A2, R::T6);
    asm.slli(R::A3, R::A4, 3);
    asm.li_addr(R::T6, plan.c.vals);
    asm.add(R::A3, R::A3, R::T6);
    emit_issr_k_expand::<I>(asm, flush);
    asm.bind(flush);
    asm.symbol("issr_flush");
    // The in-order job queue sequences the drain after this row's feeds
    // — and the double-buffered SpAcc overlaps it with the next row.
    asm.scfgwi(R::A3, cfg_addr(sreg::ACC_VAL_OUT, 0));
    asm.scfgwi(R::A2, cfg_addr(sreg::ACC_DRAIN, 0)); // drain launch (retries)
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, row);
    // Let the last drain retire inside the measured region.
    let fin = asm.bind_label();
    asm.scfgri(R::T0, cfg_addr(sreg::ACC_STATUS, 0));
    asm.andi(R::T0, R::T0, 1);
    asm.beqz(R::T0, fin);
    asm.roi_end();
    asm.csrci(Csr::Ssr, 1);
}

/// Emits the BASE per-worker scratch-pointer setup (`s6`–`s9` ping-pong
/// buffers from the hart id, `s11` = `b.ptr`). Clobbers `t0`–`t2`.
fn emit_base_scratch_setup(asm: &mut Assembler, plan: &ClusterSpgemmPlan) {
    asm.li(R::T0, i64::from(plan.scratch_stride));
    asm.mul(R::T0, R::T0, R::A7);
    asm.li_addr(R::T1, plan.scratch_base);
    asm.add(R::S6, R::T0, R::T1); // idx0
    asm.li(R::T2, i64::from(plan.scratch_idx_bytes));
    asm.add(R::S8, R::S6, R::T2); // idx1
    asm.add(R::S7, R::S8, R::T2); // val0
    asm.li(R::T2, i64::from(plan.row_cap) * 8);
    asm.add(R::S9, R::S7, R::T2); // val1
    asm.li_addr(R::S11, plan.b.ptr);
}

/// BASE worker: the software union-merge runs twice — a counting pass
/// (accumulator length only) feeding the prefix-sum barrier, then the
/// numeric pass packing rows at the device-computed offsets.
///
/// Register roles as in [`crate::spgemm`]'s BASE emitter, plus `s1` the
/// c.ptr cursor, `a5` the symbolic pass's running local prefix and `a4`
/// the numeric row's packed element offset; `s11` `b.ptr`.
fn emit_base_worker<I: KernelIndex>(asm: &mut Assembler, plan: &ClusterSpgemmPlan) {
    let log_w = log_width::<I>();
    crate::cluster_spmspv::emit_stripe_prologue::<I>(
        asm,
        plan.rows_per_worker,
        plan.nrows,
        plan.a,
        plan.c.ptr,
        2,
    );
    emit_base_scratch_setup(asm, plan);
    asm.roi_begin();
    // --- symbolic: merge each row, keep only the length ---
    asm.li(R::A5, 0);
    let sym_row = asm.bind_label();
    asm.symbol("base_sym_row");
    let sym_flush = asm.new_label();
    asm.li(R::S10, 0);
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::A6, R::T5, log_w);
    asm.li_addr(R::T6, plan.a.idcs);
    asm.add(R::A6, R::A6, R::T6);
    emit_base_k_merge::<I>(asm, plan.b.idcs, plan.b.vals, sym_flush);
    asm.bind(sym_flush);
    asm.symbol("base_sym_flush");
    asm.add(R::A5, R::A5, R::S10);
    asm.sw(R::A5, R::S1, 4); // c.ptr[r+1] = stripe-local prefix
    asm.addi(R::S1, R::S1, 4);
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, sym_row);
    asm.mv(R::S10, R::A5); // the scan takes the local total in s10
                           // --- prefix-sum barrier + offset apply ---
    emit_scan_and_apply(asm, plan);
    // --- numeric: re-seed cursors (scratch pointers stay valid; the
    // ping-pong swaps leave them pointing at the two buffers) ---
    crate::cluster_spmspv::emit_stripe_prologue::<I>(
        asm,
        plan.rows_per_worker,
        plan.nrows,
        plan.a,
        plan.c.ptr,
        2,
    );
    let row = asm.bind_label();
    asm.symbol("base_row");
    let flush = asm.new_label();
    asm.li(R::S10, 0);
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::A6, R::T5, log_w);
    asm.li_addr(R::T6, plan.a.idcs);
    asm.add(R::A6, R::A6, R::T6);
    asm.lw(R::A4, R::S1, 0); // c.ptr[r] (device-computed)
    asm.addi(R::S1, R::S1, 4);
    emit_base_k_merge::<I>(asm, plan.b.idcs, plan.b.vals, flush);
    // Row finished: pack the accumulator at the device-owned offsets.
    asm.bind(flush);
    asm.symbol("base_flush");
    asm.slli(R::T0, R::A4, log_w);
    asm.li_addr(R::T6, plan.c.idcs);
    asm.add(R::T0, R::T0, R::T6); // C index cursor
    asm.slli(R::T1, R::A4, 3);
    asm.li_addr(R::T6, plan.c.vals);
    asm.add(R::T1, R::T1, R::T6); // C value cursor
    emit_base_row_copy::<I>(asm);
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, row);
    asm.roi_end();
}

/// Result of one cluster SpGEMM run.
#[derive(Clone, Debug)]
pub struct ClusterSpgemmRun {
    /// The computed sparse product, read back and format-validated.
    pub c: CsrMatrix<u32>,
    /// Cluster-wide summary (per-worker SpAcc statistics included).
    pub summary: ClusterSummary,
}

/// Runs cluster SpGEMM end to end on the default eight-worker,
/// double-buffered cluster (plan → marshal → simulate → read back).
/// Both passes of the two-pass allocation run on-device.
///
/// # Errors
/// Returns [`SimTimeout`] if the cluster deadlocks or exceeds its cycle
/// budget (a bug).
///
/// # Panics
/// Panics if the inner dimensions disagree, on [`Variant::Ssr`], or if
/// the workers build a malformed output (the readback validates).
pub fn run_cluster_spgemm<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
) -> Result<ClusterSpgemmRun, SimTimeout> {
    run_cluster_spgemm_on(variant, a, b, ClusterParams::default().n_workers, true)
}

/// [`run_cluster_spgemm`] with an explicit worker count and SpAcc
/// buffer mode (the property suite sweeps 1/2/4/8 workers; the
/// benchmark compares single- vs. double-buffered drains).
///
/// # Errors
/// Returns [`SimTimeout`] if the cluster deadlocks or exceeds its cycle
/// budget (a bug).
///
/// # Panics
/// As [`run_cluster_spgemm`].
pub fn run_cluster_spgemm_on<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    n_workers: usize,
    double_buffer: bool,
) -> Result<ClusterSpgemmRun, SimTimeout> {
    let (summary, c) =
        cluster_spgemm_attempt(variant, a, b, n_workers, double_buffer, SPACC_ROW_CAP_RESET)?;
    assert!(summary.traps.is_empty(), "cluster cores trapped: {:?}", summary.traps);
    Ok(ClusterSpgemmRun { c: c.expect("clean run reads back"), summary })
}

/// One marshalled cluster run on a fresh cluster with an explicit SpAcc
/// row-buffer capacity. A run with traps returns `None` for the product
/// (faulted stripes leave the output region partially written).
fn cluster_spgemm_attempt<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    n_workers: usize,
    double_buffer: bool,
    acc_cap: u32,
) -> Result<(ClusterSummary, Option<CsrMatrix<u32>>), SimTimeout> {
    let params = ClusterParams {
        sssr: true,
        n_workers,
        spacc_double_buffer: double_buffer,
        ..ClusterParams::default()
    };
    let plan = ClusterSpgemmPlan::new(a, b, params.n_workers as u32).with_acc_cap(acc_cap);
    let program = build_cluster_spgemm::<I>(variant, &plan);
    let mut cluster = Cluster::new(program, params);
    plan.marshal(&mut cluster, a, b);
    // Both passes walk the expansion; budget the symbolic pass like a
    // second numeric one.
    let volume = expansion_volume(a, b);
    let budget = 4_000_000 + 1024 * (2 * volume + u64::from(plan.c_cap()) + a.nrows() as u64);
    let summary = cluster.run(budget)?;
    if !summary.traps.is_empty() {
        return Ok((summary, None));
    }
    let c = plan.read_c::<I>(&cluster).with_index_width::<u32>();
    Ok((summary, Some(c)))
}

/// Result of a grow-and-retry cluster SpGEMM run
/// ([`run_cluster_spgemm_recover`]).
#[derive(Clone, Debug)]
pub struct ClusterSpgemmRecovery {
    /// The final, clean run (oracle-identical product).
    pub run: ClusterSpgemmRun,
    /// Attempts that trapped on SpAcc overflow before the capacity
    /// sufficed (any worker trapping counts once).
    pub retries: u32,
    /// The capacity the clean run used.
    pub final_cap: u32,
}

/// Cluster SpGEMM with an optimistic per-worker SpAcc capacity and
/// trap-driven grow-and-retry: a worker whose stripe holds an
/// overflowing row latches the overflow, parks, and is masked out of
/// the barrier while its siblings drain; the harness doubles
/// `ACC_BUF_CAP` (clamped to the output width) and replays. The
/// symbolic (count-only) pass shares the row buffer, so oversized rows
/// trap before any numeric value traffic is spent on them.
///
/// # Errors
/// Returns [`SimTimeout`] if an attempt deadlocks (a bug).
///
/// # Panics
/// Panics on zero `initial_cap`, on any non-overflow trap, or if
/// overflow persists at the full row capacity (a model bug).
pub fn run_cluster_spgemm_recover<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    n_workers: usize,
    initial_cap: u32,
) -> Result<ClusterSpgemmRecovery, SimTimeout> {
    assert!(initial_cap > 0, "a zero-capacity row buffer is a configuration fault");
    let max_cap = u32::try_from(b.ncols().max(1)).expect("ncols fits u32");
    let mut cap = initial_cap.min(max_cap);
    let mut retries = 0u32;
    loop {
        let (summary, c) = cluster_spgemm_attempt(variant, a, b, n_workers, true, cap)?;
        if summary.traps.is_empty() {
            let c = c.expect("clean run reads back");
            return Ok(ClusterSpgemmRecovery {
                run: ClusterSpgemmRun { c, summary },
                retries,
                final_cap: cap,
            });
        }
        retries += 1;
        cap = crate::spgemm::grow_after_overflow(&summary.traps, cap, max_cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::{gen, reference};

    fn check<I: KernelIndex>(
        variant: Variant,
        nrows: usize,
        inner: usize,
        ncols: usize,
        nnz_a: usize,
        nnz_b: usize,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let a = gen::csr_uniform::<I>(&mut rng, nrows, inner, nnz_a);
        let b = gen::csr_uniform::<I>(&mut rng, inner, ncols, nnz_b);
        let run = run_cluster_spgemm(variant, &a, &b).expect("cluster run finishes");
        assert!(run.summary.traps.is_empty(), "unexpected traps: {:?}", run.summary.traps);
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        assert_eq!(run.c.ptr(), expect.ptr(), "{variant} {nrows}x{inner}x{ncols} row pointers");
        assert_eq!(run.c.idcs(), expect.idcs(), "{variant} column indices");
        for (got, want) in run.c.vals().iter().zip(expect.vals()) {
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "{variant} {nrows}x{inner}x{ncols}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn base_cluster_spgemm_matches_reference() {
        check::<u16>(Variant::Base, 24, 32, 48, 120, 160, 400);
        check::<u32>(Variant::Base, 24, 32, 48, 120, 160, 401);
        check::<u16>(Variant::Base, 5, 16, 16, 20, 40, 402); // fewer rows than workers
    }

    #[test]
    fn issr_cluster_spgemm_matches_reference() {
        check::<u16>(Variant::Issr, 24, 32, 48, 120, 160, 410);
        check::<u32>(Variant::Issr, 24, 32, 48, 120, 160, 411);
        check::<u16>(Variant::Issr, 5, 16, 16, 20, 40, 412); // fewer rows than workers
        check::<u16>(Variant::Issr, 16, 16, 16, 0, 40, 413); // empty A
        check::<u32>(Variant::Issr, 16, 16, 16, 40, 0, 414); // empty B
    }

    /// Odd row lengths at worker stripe boundaries exercise the strobed
    /// shared-word writes between adjacent workers (16-bit indices).
    #[test]
    fn issr_cluster_spgemm_odd_worker_boundaries() {
        let mut triplets = Vec::new();
        for r in 0..17usize {
            for j in 0..=(r % 3) {
                triplets.push((r, (j * 5 + r) % 24, 1.0 + (r + j) as f64 * 0.25));
            }
        }
        let a = CsrMatrix::<u16>::from_triplets(17, 24, &triplets);
        let b_triplets: Vec<(usize, usize, f64)> = (0..24)
            .flat_map(|k| (0..5).map(move |j| (k, (k * 3 + j * 7) % 13, 0.5 * (k + j + 1) as f64)))
            .collect();
        let b = CsrMatrix::<u16>::from_triplets(24, 13, &b_triplets);
        let run = run_cluster_spgemm(Variant::Issr, &a, &b).unwrap();
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        assert_eq!(run.c.ptr(), expect.ptr());
        assert_eq!(run.c.idcs(), expect.idcs());
        // Every worker with rows must have drained through its SpAcc.
        let active = run.summary.spacc_stats.iter().filter(|s| s.drains > 0).count();
        assert!(active >= 2, "row striping must engage multiple SpAcc units");
    }

    /// The symbolic phase runs on the workers: count-only feeds show up
    /// in the SpAcc statistics, no host row pointer exists, and the
    /// device-computed one matches the oracle.
    #[test]
    fn symbolic_phase_is_device_owned() {
        let mut rng = gen::rng(430);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 16, 24, 3);
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 24, 40, 6);
        let run = run_cluster_spgemm(Variant::Issr, &a, &b).unwrap();
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        assert_eq!(run.c.ptr(), expect.ptr(), "device-owned row pointer");
        let count_feeds: u64 = run.summary.spacc_stats.iter().map(|s| s.count_feeds).sum();
        let feeds: u64 = run.summary.spacc_stats.iter().map(|s| s.feeds).sum();
        // One count-only feed and one numeric feed per A nonzero with a
        // nonempty B row (every B row has 6 nonzeros here).
        assert_eq!(count_feeds, a.nnz() as u64, "one symbolic feed per expansion");
        assert_eq!(feeds, 2 * a.nnz() as u64, "symbolic + numeric passes");
    }

    /// The hardware cluster beats the software-merge cluster, both
    /// running the fully device-owned two-pass flow.
    #[test]
    fn cluster_spgemm_issr_beats_base() {
        let mut rng = gen::rng(420);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 32, 48, 4);
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 48, 160, 20);
        let base = run_cluster_spgemm(Variant::Base, &a, &b).unwrap();
        let issr = run_cluster_spgemm(Variant::Issr, &a, &b).unwrap();
        let speedup = issr_trace::ratio(base.summary.cycles as f64, issr.summary.cycles as f64);
        assert!(speedup > 2.0, "cluster SpGEMM speedup {speedup:.2}");
    }

    /// Double-buffered SpAcc drains overlap the next row's feeds: the
    /// overlap counter moves and the cluster does not get slower.
    #[test]
    fn double_buffering_overlaps_drains() {
        let mut rng = gen::rng(421);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 16, 32, 4);
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 32, 96, 16);
        let double = run_cluster_spgemm_on(Variant::Issr, &a, &b, 8, true).unwrap();
        let single = run_cluster_spgemm_on(Variant::Issr, &a, &b, 8, false).unwrap();
        assert_eq!(double.c.ptr(), single.c.ptr(), "buffer mode cannot change the result");
        assert_eq!(double.c.idcs(), single.c.idcs());
        let overlap: u64 = double.summary.spacc_stats.iter().map(|s| s.overlap_cycles).sum();
        assert!(overlap > 0, "double buffering must win overlap cycles");
        let single_overlap: u64 = single.summary.spacc_stats.iter().map(|s| s.overlap_cycles).sum();
        assert_eq!(single_overlap, 0, "single-buffer mode serializes drain and feed");
        assert!(
            double.summary.cycles <= single.summary.cycles,
            "double buffering must not slow the cluster ({} vs {})",
            double.summary.cycles,
            single.summary.cycles
        );
    }
}
