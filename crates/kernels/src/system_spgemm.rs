//! Multi-cluster SpGEMM: `C = A·B` with a full-size (larger-than-TCDM)
//! left operand, row panels of `A` claimed dynamically by N clusters.
//!
//! The partition generalizes [`crate::cluster_csrmv`]'s ping-pong
//! scheme to a sparse *output*: `B` stays TCDM-resident on every
//! cluster (Gustavson needs random access to its rows), `A`'s full row
//! pointer is resident too, and `A`'s values + indices stream through
//! per-cluster double buffers panel by panel. Each cluster's DMCC
//! claims panels from the shared main-memory work queue (hardware
//! fetch-and-add ticket, as in [`crate::system_csrmv`]), DMAs the
//! panel's `A` data in, and — one panel behind the workers — drains the
//! finished *output panel* (`c.ptr` window, packed indices, values)
//! back to per-panel main-memory regions. Output regions are word-
//! aligned with padding, so the whole-word DMA stores are strobe-safe
//! by construction: no transfer can clobber a neighbouring panel.
//!
//! Within a cluster each panel runs the device-owned two-pass flow of
//! [`crate::cluster_spgemm`], with one structural change: the
//! prefix-sum barrier is replaced by a **flag-based offset exchange**
//! (per-worker stripe totals in parity-buffered TCDM arrays, each
//! worker summing its predecessors') because the hardware barrier would
//! have to include the DMCC, whose claim loop has a data-dependent
//! iteration count. The exchange is race-free under the ready/done/
//! drained flag protocol: a totals slot of parity `p` is only rewritten
//! after every worker passed the numeric phase that read it.
//!
//! Per row the numeric body is the single-core kernel's — the SSR +
//! FREP `fmul` expansion feeding the SpAcc (ISSR) or the software
//! union-merge (BASE) — in the same per-row order, so the product is
//! bit-identical to the single-cluster kernels whatever the cluster
//! count or claim interleaving. The host stitches the per-panel regions
//! into one CSR matrix and validates the format on readback.

use crate::common::{emit_parity_slot, emit_spacc_cfg, emit_wait_all_done, SETUP_SCRATCH};
use crate::layout::{csr_addrs, store_csr, Arena, CsrAddrs};
use crate::spgemm::{emit_base_k_merge, emit_base_row_copy, emit_issr_k_expand};
use crate::variant::{log_width, KernelIndex, Variant};
use issr_core::cfg::{acc_count_cfg_word, cfg_addr, reg as sreg};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::{FpReg, IntReg as R};
use issr_isa::Csr;
use issr_mem::map::{MAIN_BASE, MAIN_SIZE, TCDM_BASE, TCDM_SIZE};
use issr_snitch::cc::SimTimeout;
use issr_sparse::csr::CsrMatrix;
use issr_system::system::{System, SystemParams, SystemSummary};

// ---- flag area (below the data region, per cluster) ----
const S_META: u32 = TCDM_BASE;
const S_READY: u32 = TCDM_BASE + 0x08; // 2 slots
const S_BLK: u32 = TCDM_BASE + 0x18; //   2 slots (claimed panel id; < 0 ends)
const S_DONE: u32 = TCDM_BASE + 0x28; //  8 slots (monotonic per worker)
const S_DRAINED: u32 = TCDM_BASE + 0x68; // 2 slots (output buffer freed)

const DATA_BASE: u32 = TCDM_BASE + 0x100;
const DATA_SIZE: u32 = TCDM_SIZE - 0x100;

/// Descriptor stride in bytes (12 u32 fields, padded).
const DESC_BYTES: u32 = 48;
/// Per-worker spill slot stride (7 words, padded).
const SPILL_BYTES: u32 = 64;

fn align8(bytes: u32) -> u32 {
    (bytes + 7) & !7
}

/// One claimed unit of work: a contiguous run of `A` rows whose data
/// fits the panel buffers and whose expansion fits the output buffer.
#[derive(Clone, Copy, Debug)]
struct Panel {
    row_start: u32,
    row_count: u32,
    nnz_start: u32,
    /// Gustavson expansion volume of the panel (output capacity bound).
    exp: u32,
    // Main-memory sources of the A data (filled once bases are known).
    vals_src: u32,
    vals_len: u32,
    idcs_src: u32,
    idcs_len: u32,
    // Main-memory destinations of the output panel.
    c_ptr_dst: u32,
    c_idcs_dst: u32,
    c_vals_dst: u32,
}

/// The planned layout of one system SpGEMM run.
#[derive(Clone, Debug)]
pub struct SystemSpgemmPlan {
    n_workers: u32,
    nrows: u32,
    ncols: u32,
    panels: Vec<Panel>,
    // Main memory.
    main_a_vals: u32,
    main_a_idcs: u32,
    main_meta: u32,
    meta_bytes: u32,
    main_queue: u32,
    // TCDM (identical on every cluster).
    t_b: CsrAddrs,
    t_aptr: u32,
    t_desc: u32,
    t_totval: u32,
    t_totflag: u32,
    t_spill: u32,
    t_scratch: u32,
    scratch_stride: u32,
    scratch_idx_bytes: u32,
    // A panel double buffer: [vals | idcs] × 2.
    abuf: u32,
    abuf_stride: u32,
    a_vals_cap: u32,
    // C panel double buffer: [ptr window | vals | idcs] × 2.
    cbuf: u32,
    cbuf_stride: u32,
    cptrw_bytes: u32,
    cvals_bytes: u32,
    /// Panel capacity limits the greedy partition enforced.
    a_elem_cap: u32,
    c_elem_cap: u32,
    max_rows: u32,
}

impl SystemSpgemmPlan {
    /// Plans the partition and both memory layouts for `variant`
    /// (BASE additionally reserves its per-worker merge scratch, which
    /// scales with `B`'s width — ISSR plans skip it, so wide resident
    /// operands stay in reach of the hardware variant). `B` (and `A`'s
    /// row pointer) must be TCDM-resident; `A`'s values/indices and
    /// the output may be arbitrarily larger than the TCDM.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree, the resident data does
    /// not fit, or a single row exceeds the panel capacities.
    #[must_use]
    pub fn new<I: KernelIndex>(
        variant: Variant,
        a: &CsrMatrix<I>,
        b: &CsrMatrix<I>,
        n_workers: u32,
    ) -> Self {
        Self::with_panel_caps(variant, a, b, n_workers, u32::MAX, u32::MAX)
    }

    /// [`SystemSpgemmPlan::new`] with explicit upper bounds on the
    /// per-panel element and expansion capacities (the tests and the
    /// smoke bench force multi-panel runs on small inputs with this).
    ///
    /// # Panics
    /// As [`SystemSpgemmPlan::new`].
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn with_panel_caps<I: KernelIndex>(
        variant: Variant,
        a: &CsrMatrix<I>,
        b: &CsrMatrix<I>,
        n_workers: u32,
        a_elem_cap_limit: u32,
        c_elem_cap_limit: u32,
    ) -> Self {
        assert_eq!(b.nrows(), a.ncols(), "inner dimensions must agree");
        let nrows = a.nrows() as u32;
        let ncols = b.ncols() as u32;
        // ---- resident TCDM allocations ----
        let mut arena = Arena::new(DATA_BASE, DATA_SIZE);
        let t_b = csr_addrs::<I>(&mut arena, b.nrows() as u32, b.nnz() as u32);
        let t_aptr = arena.alloc(align8((nrows + 1) * 4), 8);
        // Descriptor region: the panel count is bounded by the row count
        // (every panel holds at least one row); allocate after the
        // partition below. Reserve the offset-exchange arrays first.
        let t_totval = arena.alloc(2 * 64, 8);
        let t_totflag = arena.alloc(2 * 64, 8);
        let t_spill = arena.alloc(n_workers * SPILL_BYTES, 8);
        // BASE ping-pong merge scratch, as in the cluster kernel; the
        // ISSR variant accumulates in the SpAcc and skips it (its size
        // scales with B's width and would crowd out the panel buffers).
        let row_cap = ncols.max(1);
        let scratch_idx_bytes = align8(row_cap * I::BYTES);
        let scratch_stride = 2 * scratch_idx_bytes + 2 * row_cap * 8;
        let t_scratch = if variant == Variant::Issr {
            arena.alloc(8, 8)
        } else {
            arena.alloc(n_workers * scratch_stride, 8)
        };
        // ---- greedy panel partition under the remaining space ----
        // Reserve room for descriptors pessimistically, then split what
        // is left: a third to the A double buffer, the rest to the C
        // double buffer (output elements are wider than inputs).
        let per_row_exp: Vec<u64> = (0..a.nrows())
            .map(|r| a.row(r).map(|(k, _)| b.row_range(k).len() as u64).sum::<u64>())
            .collect();
        // Bound the descriptor table (and with it the row-pointer
        // window) instead of reserving one descriptor per row — the
        // pessimistic reserve would crowd out the panel buffers on
        // tall operands.
        let max_panels = nrows.clamp(1, 1024);
        let max_rows_global = nrows.clamp(1, 512);
        let desc_reserve = align8(max_panels * DESC_BYTES);
        let free = arena.remaining().saturating_sub(desc_reserve + 64);
        let a_bytes = free / 6; //           × 2 buffers
        let c_bytes = free / 3; //           × 2 buffers
        let a_elem_cap =
            ((a_bytes.saturating_sub(16)) / (8 + I::BYTES)).min(a_elem_cap_limit).max(1);
        let cptrw_bytes = align8((max_rows_global + 1) * 4);
        let c_elem_cap = ((c_bytes.saturating_sub(cptrw_bytes + 16)) / (8 + I::BYTES))
            .min(c_elem_cap_limit)
            .max(1);
        let ptr = a.ptr();
        let mut panels: Vec<Panel> = Vec::new();
        let mut row = 0u32;
        while row < nrows {
            let nnz_start = ptr[row as usize];
            let mut end = row;
            let mut exp = 0u64;
            while end < nrows {
                let row_elems = ptr[end as usize + 1] - nnz_start;
                let row_exp = exp + per_row_exp[end as usize];
                let rows = end - row + 1;
                if rows > max_rows_global
                    || row_elems > a_elem_cap
                    || row_exp > u64::from(c_elem_cap)
                {
                    break;
                }
                exp = row_exp;
                end += 1;
            }
            assert!(
                end > row,
                "row {row} alone exceeds the panel capacity \
                 ({a_elem_cap} elements / {c_elem_cap} expansion)"
            );
            panels.push(Panel {
                row_start: row,
                row_count: end - row,
                nnz_start,
                exp: u32::try_from(exp).expect("panel expansion fits u32"),
                vals_src: 0,
                vals_len: 0,
                idcs_src: 0,
                idcs_len: 0,
                c_ptr_dst: 0,
                c_idcs_dst: 0,
                c_vals_dst: 0,
            });
            row = end;
        }
        // ---- finish the TCDM layout ----
        let n_desc = (panels.len() as u32).max(1);
        assert!(
            n_desc <= max_panels,
            "partition produced {n_desc} panels, above the {max_panels}-descriptor bound \
             (inputs this tall need a larger descriptor budget)"
        );
        let t_desc = arena.alloc(align8(n_desc * DESC_BYTES), 8);
        let a_vals_cap = a_elem_cap * 8 + 8;
        let a_idcs_cap = align8(a_elem_cap * I::BYTES) + 16;
        let abuf_stride = a_vals_cap + a_idcs_cap;
        let abuf = arena.alloc(2 * abuf_stride, 8);
        let cvals_bytes = c_elem_cap * 8 + 8;
        let cidcs_bytes = align8(c_elem_cap * I::BYTES) + 16;
        let cbuf_stride = cptrw_bytes + cvals_bytes + cidcs_bytes;
        let cbuf = arena.alloc(2 * cbuf_stride, 8);
        // ---- main-memory layout ----
        let mut main = Arena::new(MAIN_BASE, MAIN_SIZE);
        let nnz = a.nnz() as u32;
        let main_a_vals = main.alloc(nnz.max(1) * 8 + 8, 8);
        let main_a_idcs = main.alloc(align8(nnz.max(1) * I::BYTES) + 8, 8);
        let main_meta = main.alloc(arena_span(t_desc + align8(n_desc * DESC_BYTES)), 8);
        let main_queue = main.alloc(8, 8);
        for p in &mut panels {
            let nnz_end = ptr[(p.row_start + p.row_count) as usize];
            p.vals_src = main_a_vals + p.nnz_start * 8;
            p.vals_len = ((nnz_end - p.nnz_start) * 8).max(8);
            let idx_begin = main_a_idcs + p.nnz_start * I::BYTES;
            let idx_end = main_a_idcs + nnz_end * I::BYTES;
            p.idcs_src = idx_begin & !7;
            p.idcs_len = (align8(idx_end) - p.idcs_src).max(8);
            // Word-aligned, padded per-panel output regions: whole-word
            // DMA stores stay strobe-safe (no inter-panel sharing).
            p.c_ptr_dst = main.alloc(align8((p.row_count + 1) * 4) + 8, 8);
            p.c_vals_dst = main.alloc(p.exp.max(1) * 8 + 8, 8);
            p.c_idcs_dst = main.alloc(align8(p.exp.max(1) * I::BYTES) + 8, 8);
        }
        Self {
            n_workers,
            nrows,
            ncols,
            panels,
            main_a_vals,
            main_a_idcs,
            main_meta,
            meta_bytes: arena_span(t_desc + align8(n_desc * DESC_BYTES)),
            main_queue,
            t_b,
            t_aptr,
            t_desc,
            t_totval,
            t_totflag,
            t_spill,
            t_scratch,
            scratch_stride,
            scratch_idx_bytes,
            abuf,
            abuf_stride,
            a_vals_cap,
            cbuf,
            cbuf_stride,
            cptrw_bytes,
            cvals_bytes,
            a_elem_cap,
            c_elem_cap,
            max_rows: max_rows_global,
        }
    }

    /// Number of planned panels.
    #[must_use]
    pub fn n_panels(&self) -> usize {
        self.panels.len()
    }

    /// The partition's effective capacities `(a_elems, c_elems,
    /// max_rows)` per panel (scaling diagnostics).
    #[must_use]
    pub fn panel_caps(&self) -> (u32, u32, u32) {
        (self.a_elem_cap, self.c_elem_cap, self.max_rows)
    }

    /// Address of the work-queue ticket word in main memory.
    #[must_use]
    pub fn queue_addr(&self) -> u32 {
        self.main_queue
    }

    /// Translates a resident TCDM address to its main-memory staging
    /// slot inside the meta block.
    fn meta_addr(&self, tcdm_addr: u32) -> u32 {
        self.main_meta + (tcdm_addr - DATA_BASE)
    }

    /// Writes the workload into the shared main memory: `A`'s arrays,
    /// and the meta block (`B`, `A`'s row pointer, panel descriptors)
    /// that every cluster DMAs into its TCDM once.
    pub fn marshal<I: KernelIndex>(
        &self,
        mem: &mut issr_mem::array::MemArray,
        a: &CsrMatrix<I>,
        b: &CsrMatrix<I>,
    ) {
        mem.store_f64_slice(self.main_a_vals, a.vals());
        I::store_slice(mem, self.main_a_idcs, a.idcs());
        let staged_b = CsrAddrs {
            ptr: self.meta_addr(self.t_b.ptr),
            idcs: self.meta_addr(self.t_b.idcs),
            vals: self.meta_addr(self.t_b.vals),
            nrows: self.t_b.nrows,
            nnz: self.t_b.nnz,
        };
        store_csr(mem, staged_b, b);
        mem.store_u32_slice(self.meta_addr(self.t_aptr), a.ptr());
        for (i, p) in self.panels.iter().enumerate() {
            let d = self.meta_addr(self.t_desc) + (i as u32) * DESC_BYTES;
            mem.store_u32_slice(
                d,
                &[
                    p.row_start,
                    p.row_count,
                    p.nnz_start,
                    p.exp,
                    p.vals_src,
                    p.vals_len,
                    p.idcs_src,
                    p.idcs_len,
                    p.c_ptr_dst,
                    p.c_idcs_dst,
                    p.c_vals_dst,
                    0,
                ],
            );
        }
    }

    /// Stitches the per-panel output regions back into one CSR product,
    /// validating the format on the way.
    ///
    /// # Panics
    /// Panics if a panel's stored structure is malformed.
    #[must_use]
    pub fn stitch<I: KernelIndex>(&self, mem: &issr_mem::array::MemArray) -> CsrMatrix<u32> {
        let mut ptr: Vec<u32> = vec![0];
        let mut idcs: Vec<u32> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        for p in &self.panels {
            let win = mem.load_u32_slice(p.c_ptr_dst, p.row_count as usize + 1);
            assert_eq!(win[0], 0, "panel-local row pointer starts at zero");
            let nnz_p = *win.last().expect("window nonempty") as usize;
            assert!(nnz_p <= p.exp.max(1) as usize, "panel overflowed its output region");
            let base = *ptr.last().expect("ptr nonempty");
            ptr.extend(win[1..].iter().map(|&o| base + o));
            idcs.extend(
                I::load_slice(mem, p.c_idcs_dst, nnz_p)
                    .into_iter()
                    .map(|i| u32::try_from(i.to_usize()).expect("index fits u32")),
            );
            vals.extend(mem.load_f64_slice(p.c_vals_dst, nnz_p));
        }
        CsrMatrix::new(self.nrows as usize, self.ncols as usize, ptr, idcs, vals)
            .expect("stitched system SpGEMM output is well formed")
    }
}

/// Bytes of the resident meta block `[B | a.ptr | descriptors]`.
fn arena_span(end: u32) -> u32 {
    end - DATA_BASE
}

// ---------------------------------------------------------------------
// Program builder
// ---------------------------------------------------------------------

/// Emits `rd = SPILL + hart * SPILL_BYTES` (`a7` holds the hart id).
/// Clobbers `t5` (must differ from `rd`).
fn emit_spill_base(asm: &mut Assembler, plan: &SystemSpgemmPlan, rd: R) {
    asm.slli(rd, R::A7, 6);
    asm.li_addr(R::T5, plan.t_spill);
    asm.add(rd, rd, R::T5);
}

/// Emits `t6 = done[hart]` — the worker's panel sequence number lives
/// in its monotonic done flag (`a7` holds the hart id). Clobbers `t0`,
/// `t1`.
fn emit_load_seq(asm: &mut Assembler) {
    asm.slli(R::T0, R::A7, 3);
    asm.li_addr(R::T1, S_DONE);
    asm.add(R::T0, R::T0, R::T1);
    asm.lw(R::T6, R::T0, 0);
}

/// Emits `t0 = array + (seq & 1) * 64 + idx_reg * 8` for the parity-
/// buffered offset-exchange arrays. Clobbers `t1`, `t2`.
fn emit_tot_slot(asm: &mut Assembler, array: u32, seq_reg: R, idx_reg: R) {
    asm.andi(R::T0, seq_reg, 1);
    asm.slli(R::T0, R::T0, 6);
    asm.slli(R::T2, idx_reg, 3);
    asm.add(R::T0, R::T0, R::T2);
    asm.li_addr(R::T1, array);
    asm.add(R::T0, R::T0, R::T1);
}

/// Spill-slot offsets (per worker, per panel).
mod spill {
    /// C output buffer base of this panel's parity.
    pub const CBUF: i32 = 0;
    /// Virtual A index base: `abuf_idcs - align8(nnz_start * W)`.
    pub const VIDX: i32 = 8;
    /// Virtual A value base: `abuf_vals - nnz_start * 8`.
    pub const VVAL: i32 = 16;
    /// Panel-local first row of this worker's stripe.
    pub const OFF: i32 = 24;
    /// `&a.ptr[global first row]` (resident row pointer cursor).
    pub const APTR: i32 = 32;
    /// Stripe row count.
    pub const CNT: i32 = 40;
    /// Panel row count (last-stripe detection in the exchange).
    pub const ROWS: i32 = 48;
}

/// Builds the SPMD system program for `variant`.
///
/// # Panics
/// Panics for [`Variant::Ssr`] (SpGEMM defines BASE and ISSR only) or a
/// non-power-of-two worker count.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_system_spgemm<I: KernelIndex>(variant: Variant, plan: &SystemSpgemmPlan) -> Program {
    assert!(plan.n_workers.is_power_of_two(), "the stripe split shifts by log2(workers)");
    assert!(
        matches!(variant, Variant::Base | Variant::Issr),
        "system SpGEMM defines BASE and ISSR variants only"
    );
    let mut asm = Assembler::new();
    asm.csrr(R::A7, Csr::MHartId);
    let dmcc_entry = asm.new_label();
    asm.li(R::T0, i64::from(plan.n_workers));
    asm.beq(R::A7, R::T0, dmcc_entry);
    emit_worker::<I>(&mut asm, variant, plan);
    asm.bind(dmcc_entry);
    emit_dmcc(&mut asm, plan, log_width::<I>());
    asm.finish().expect("system SpGEMM program assembles")
}

/// Emits the worker loop (both variants share the panel choreography;
/// the symbolic/numeric bodies dispatch on `variant`).
#[allow(clippy::too_many_lines)]
fn emit_worker<I: KernelIndex>(asm: &mut Assembler, variant: Variant, plan: &SystemSpgemmPlan) {
    let log_w = log_width::<I>();
    asm.symbol("worker");
    // Wait for resident data.
    asm.li_addr(R::T0, S_META);
    let spin_meta = asm.bind_label();
    asm.lw(R::T1, R::T0, 0);
    asm.beqz(R::T1, spin_meta);
    if variant == Variant::Issr {
        // Static SpAcc/SSR state: value stride, row-buffer capacity (the
        // full output width — no overflow possible; the trap-driven
        // optimistic sizing stays a single-cluster feature for now).
        asm.li(SETUP_SCRATCH, 8);
        asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::STRIDES[0], 0));
        asm.li(SETUP_SCRATCH, i64::from(plan.ncols.max(1)));
        asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::ACC_BUF_CAP, 0));
    }
    asm.roi_begin();
    let worker_end = asm.new_label();
    let panel_done = asm.new_label();
    let wloop = asm.bind_label();
    asm.symbol("worker_panel");
    asm.csrr(R::A7, Csr::MHartId);
    emit_load_seq(asm); // t6 = seq
                        // Wait ready[seq & 1] >= seq + 1, then read the claimed panel.
    emit_parity_slot(asm, S_READY, R::T6);
    asm.addi(R::T3, R::T6, 1);
    let spin_ready = asm.bind_label();
    asm.lw(R::T2, R::T0, 0);
    asm.blt(R::T2, R::T3, spin_ready);
    emit_parity_slot(asm, S_BLK, R::T6);
    asm.lw(R::T4, R::T0, 0);
    asm.blt(R::T4, R::ZERO, worker_end); // sentinel
                                         // Descriptor address: t_desc + g * 48.
    asm.slli(R::T5, R::T4, 4);
    asm.slli(R::T4, R::T4, 5);
    asm.add(R::T4, R::T4, R::T5);
    asm.li_addr(R::T5, plan.t_desc);
    asm.add(R::T4, R::T4, R::T5);
    asm.lw(R::A0, R::T4, 0); // row_start
    asm.lw(R::A1, R::T4, 4); // row_count
    asm.lw(R::A2, R::T4, 8); // nnz_start
                             // Wait for the DMCC to have drained the output buffer this
                             // panel writes (drained[seq & 1] >= seq - 1; trivially true
                             // for the first two panels).
    asm.addi(R::T3, R::T6, -1);
    let no_drain_wait = asm.new_label();
    asm.blez(R::T3, no_drain_wait);
    emit_parity_slot(asm, S_DRAINED, R::T6);
    let spin_drained = asm.bind_label();
    asm.lw(R::T2, R::T0, 0);
    asm.blt(R::T2, R::T3, spin_drained);
    asm.bind(no_drain_wait);
    // ---- per-panel spills (this worker's stripe geometry) ----
    emit_spill_base(asm, plan, R::A6);
    // C buffer base of this parity.
    asm.andi(R::T0, R::T6, 1);
    asm.li(R::T1, i64::from(plan.cbuf_stride));
    asm.mul(R::T0, R::T0, R::T1);
    asm.li_addr(R::T1, plan.cbuf);
    asm.add(R::T0, R::T0, R::T1);
    asm.sw(R::T0, R::A6, spill::CBUF);
    // A buffer base of this parity; virtual value/index bases.
    asm.andi(R::T1, R::T6, 1);
    asm.li(R::T2, i64::from(plan.abuf_stride));
    asm.mul(R::T1, R::T1, R::T2);
    asm.li_addr(R::T2, plan.abuf);
    asm.add(R::T1, R::T1, R::T2); // abuf vals base
    asm.slli(R::T3, R::A2, 3);
    asm.sub(R::T3, R::T1, R::T3);
    asm.sw(R::T3, R::A6, spill::VVAL);
    asm.slli(R::T3, R::A2, log_w);
    asm.andi(R::T3, R::T3, -8);
    asm.li(R::T2, i64::from(plan.a_vals_cap));
    asm.add(R::T2, R::T2, R::T1);
    asm.sub(R::T2, R::T2, R::T3);
    asm.sw(R::T2, R::A6, spill::VIDX);
    // Stripe: rpw = ceil(row_count / workers), off = hart * rpw.
    asm.addi(R::T5, R::A1, i32::try_from(plan.n_workers - 1).expect("small"));
    asm.srli(R::T5, R::T5, plan.n_workers.trailing_zeros() as i32);
    asm.mul(R::T3, R::T5, R::A7);
    asm.sub(R::T2, R::A1, R::T3); // rows remaining after my offset
    let zero_stripe = asm.new_label();
    asm.blez(R::T2, zero_stripe);
    let clamp_ok = asm.new_label();
    asm.bge(R::T2, R::T5, clamp_ok);
    asm.mv(R::T5, R::T2);
    asm.bind(clamp_ok);
    asm.sw(R::T3, R::A6, spill::OFF);
    asm.sw(R::T5, R::A6, spill::CNT);
    asm.sw(R::A1, R::A6, spill::ROWS);
    asm.add(R::T0, R::A0, R::T3);
    asm.slli(R::T0, R::T0, 2);
    asm.li_addr(R::T1, plan.t_aptr);
    asm.add(R::T0, R::T0, R::T1);
    asm.sw(R::T0, R::A6, spill::APTR);
    // ---- symbolic phase: stripe-local output counts ----
    match variant {
        Variant::Issr => emit_issr_symbolic::<I>(asm, plan),
        _ => emit_base_symbolic::<I>(asm, plan),
    }
    // ---- offset exchange (replaces the cluster's scan barrier) ----
    emit_offset_exchange(asm, plan);
    // ---- numeric phase at the exchanged packed offsets ----
    match variant {
        Variant::Issr => emit_issr_numeric::<I>(asm, plan),
        _ => emit_base_numeric::<I>(asm, plan),
    }
    asm.j(panel_done);
    // Zero-stripe path: publish a zero total for the exchange, skip
    // both phases (nothing read, nothing written).
    asm.bind(zero_stripe);
    asm.symbol("worker_zero_stripe");
    emit_tot_slot(asm, plan.t_totval, R::T6, R::A7);
    asm.sw(R::ZERO, R::T0, 0);
    emit_tot_slot(asm, plan.t_totflag, R::T6, R::A7);
    asm.addi(R::T2, R::T6, 1);
    asm.sw(R::T2, R::T0, 0);
    asm.bind(panel_done);
    asm.symbol("worker_panel_done");
    asm.csrr(R::A7, Csr::MHartId);
    emit_load_seq(asm); // t6 = seq (t0 holds the done slot address)
    asm.addi(R::T6, R::T6, 1);
    asm.sw(R::T6, R::T0, 0);
    asm.j(wloop);
    asm.bind(worker_end);
    asm.roi_end();
    asm.halt();
}

/// ISSR symbolic: count-only SpAcc feeds over the panel stripe, the
/// stripe-local inclusive prefix written into the C-buffer row-pointer
/// window. Mirrors the cluster kernel's symbolic loop with runtime
/// (virtual) A bases.
fn emit_issr_symbolic<I: KernelIndex>(asm: &mut Assembler, plan: &SystemSpgemmPlan) {
    let log_w = log_width::<I>();
    let ib = I::BYTES as i32;
    asm.symbol("issr_sym");
    asm.li(SETUP_SCRATCH, i64::from(acc_count_cfg_word(I::IDX_SIZE)));
    asm.scfgwi(SETUP_SCRATCH, cfg_addr(sreg::ACC_CFG, 0));
    asm.li_addr(R::S6, plan.t_b.ptr);
    asm.li_addr(R::S7, plan.t_b.idcs);
    // Cursors from the spill slots.
    asm.lw(R::S0, R::A6, spill::APTR);
    asm.lw(R::T1, R::S0, 0); // a.ptr[my first row] (global elements)
    asm.addi(R::S0, R::S0, 4);
    asm.lw(R::A5, R::A6, spill::VIDX);
    asm.slli(R::T2, R::T1, log_w);
    asm.add(R::S4, R::A5, R::T2); // A index cursor
    asm.lw(R::T2, R::A6, spill::CBUF);
    asm.lw(R::T3, R::A6, spill::OFF);
    asm.slli(R::T3, R::T3, 2);
    asm.add(R::S1, R::T2, R::T3); // &cptr_win[off] (entries at +4)
    asm.lw(R::S2, R::A6, spill::CNT);
    asm.li(R::S10, 0);
    let sym_row = asm.bind_label();
    asm.symbol("issr_sym_row");
    let sym_row_end = asm.new_label();
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::S9, R::T5, log_w);
    asm.add(R::S9, R::S9, R::A5); // A-row end address (virtual base)
    let sym_k = asm.bind_label();
    asm.symbol("issr_sym_k");
    asm.beq(R::S4, R::S9, sym_row_end);
    I::emit_index_load(asm, R::T0, R::S4, 0); // column k
    asm.addi(R::S4, R::S4, ib);
    asm.slli(R::T1, R::T0, 2);
    asm.add(R::T1, R::T1, R::S6);
    asm.lw(R::T2, R::T1, 0); //  b.ptr[k]
    asm.lw(R::T3, R::T1, 4); //  b.ptr[k+1]
    asm.sub(R::T4, R::T3, R::T2); // nnz(B[k,:])
    asm.beqz(R::T4, sym_k);
    asm.scfgwi(R::T4, cfg_addr(sreg::ACC_COUNT, 0));
    asm.slli(R::T6, R::T2, log_w);
    asm.add(R::T6, R::T6, R::S7);
    asm.scfgwi(R::T6, cfg_addr(sreg::ACC_FEED, 0)); // launch (retries)
    asm.j(sym_k);
    asm.bind(sym_row_end);
    let spin = asm.bind_label();
    asm.scfgri(R::T0, cfg_addr(sreg::ACC_STATUS, 0));
    asm.andi(R::T0, R::T0, 1);
    asm.beqz(R::T0, spin);
    asm.scfgri(R::T1, cfg_addr(sreg::ACC_NNZ, 0));
    asm.add(R::S10, R::S10, R::T1);
    asm.sw(R::S10, R::S1, 4); // cptr_win[r+1] = stripe-local prefix
    asm.addi(R::S1, R::S1, 4);
    asm.scfgwi(R::ZERO, cfg_addr(sreg::ACC_CLEAR, 0));
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, sym_row);
}

/// BASE symbolic: the software union-merge per row, keeping only the
/// accumulator length (running prefix in `s3`, moved to `s10` for the
/// exchange).
fn emit_base_symbolic<I: KernelIndex>(asm: &mut Assembler, plan: &SystemSpgemmPlan) {
    let log_w = log_width::<I>();
    asm.symbol("base_sym");
    emit_base_scratch(asm, plan);
    // Cursors from the spill slots (a6 is consumed: the merge needs it
    // as the A-row end register).
    asm.lw(R::S0, R::A6, spill::APTR);
    asm.lw(R::T1, R::S0, 0);
    asm.addi(R::S0, R::S0, 4);
    asm.lw(R::A5, R::A6, spill::VIDX);
    asm.slli(R::T2, R::T1, log_w);
    asm.add(R::S4, R::A5, R::T2);
    asm.lw(R::T3, R::A6, spill::VVAL);
    asm.slli(R::T2, R::T1, 3);
    asm.add(R::S5, R::T3, R::T2);
    asm.lw(R::T2, R::A6, spill::CBUF);
    asm.lw(R::T3, R::A6, spill::OFF);
    asm.slli(R::T3, R::T3, 2);
    asm.add(R::S1, R::T2, R::T3);
    asm.lw(R::S2, R::A6, spill::CNT);
    asm.li(R::S3, 0); // running stripe prefix
    let sym_row = asm.bind_label();
    asm.symbol("base_sym_row");
    let sym_flush = asm.new_label();
    asm.li(R::S10, 0);
    asm.lw(R::T5, R::S0, 0);
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::A6, R::T5, log_w);
    asm.add(R::A6, R::A6, R::A5); // A-row end (virtual base)
    emit_base_k_merge::<I>(asm, plan.t_b.idcs, plan.t_b.vals, sym_flush);
    asm.bind(sym_flush);
    asm.symbol("base_sym_flush");
    asm.add(R::S3, R::S3, R::S10);
    asm.sw(R::S3, R::S1, 4);
    asm.addi(R::S1, R::S1, 4);
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, sym_row);
    asm.mv(R::S10, R::S3); // the exchange takes the stripe total in s10
}

/// Emits the BASE per-worker scratch pointers (`s6`–`s9` ping-pong,
/// `s11` = `b.ptr`) from the hart id. Clobbers `t0`–`t2`.
fn emit_base_scratch(asm: &mut Assembler, plan: &SystemSpgemmPlan) {
    asm.li(R::T0, i64::from(plan.scratch_stride));
    asm.mul(R::T0, R::T0, R::A7);
    asm.li_addr(R::T1, plan.t_scratch);
    asm.add(R::S6, R::T0, R::T1); // idx0
    asm.li(R::T2, i64::from(plan.scratch_idx_bytes));
    asm.add(R::S8, R::S6, R::T2); // idx1
    asm.add(R::S7, R::S8, R::T2); // val0
    asm.li(R::T2, i64::from((plan.scratch_stride - 2 * plan.scratch_idx_bytes) / 2));
    asm.add(R::S9, R::S7, R::T2); // val1
    asm.li_addr(R::S11, plan.t_b.ptr);
}

/// The flag-based offset exchange: publish this worker's stripe total
/// (`s10`) into the parity-buffered arrays, sum every predecessor's
/// total into the exclusive base `s3`, seed the stripe's row-pointer
/// boundary entry with it and add it to the stripe's inclusive
/// entries. Writers of a parity slot are gated by the drained/ready
/// flags, so a slot is never rewritten before every reader has passed.
fn emit_offset_exchange(asm: &mut Assembler, plan: &SystemSpgemmPlan) {
    asm.symbol("offset_exchange");
    asm.csrr(R::A7, Csr::MHartId); // BASE's merge clobbers a7
    emit_load_seq(asm); //            t6 = seq
    emit_tot_slot(asm, plan.t_totval, R::T6, R::A7);
    asm.sw(R::S10, R::T0, 0);
    emit_tot_slot(asm, plan.t_totflag, R::T6, R::A7);
    asm.addi(R::T2, R::T6, 1);
    asm.sw(R::T2, R::T0, 0);
    // Exclusive base: sum totals of workers 0 .. hart.
    asm.li(R::S3, 0);
    asm.li(R::T3, 0); // j
    let j_loop = asm.bind_label();
    let j_done = asm.new_label();
    asm.bge(R::T3, R::A7, j_done);
    emit_tot_slot(asm, plan.t_totflag, R::T6, R::T3);
    asm.addi(R::T4, R::T6, 1);
    let spin = asm.bind_label();
    asm.lw(R::T2, R::T0, 0);
    asm.blt(R::T2, R::T4, spin);
    emit_tot_slot(asm, plan.t_totval, R::T6, R::T3);
    asm.lw(R::T2, R::T0, 0);
    asm.add(R::S3, R::S3, R::T2);
    asm.addi(R::T3, R::T3, 1);
    asm.j(j_loop);
    asm.bind(j_done);
    // Apply — every window entry has exactly one writer (the interior
    // adds are read-modify-writes, so a shared boundary entry would
    // race): this worker stores its own boundary `win[off] = base`,
    // adds the base to its interior entries `win[off+1 .. off+cnt-1]`,
    // and only the *last* stripe writes the panel total
    // `win[row_count] = base + stripe total` (it has no successor).
    emit_spill_base(asm, plan, R::A6);
    asm.lw(R::T2, R::A6, spill::CBUF);
    asm.lw(R::T3, R::A6, spill::OFF);
    asm.slli(R::T3, R::T3, 2);
    asm.add(R::T4, R::T2, R::T3); // &cptr_win[off]
    asm.sw(R::S3, R::T4, 0); //      my boundary (sole writer)
    asm.lw(R::T5, R::A6, spill::CNT);
    asm.addi(R::T5, R::T5, -1); //   interior entries
    let apply = asm.bind_label();
    let apply_done = asm.new_label();
    asm.blez(R::T5, apply_done);
    asm.lw(R::T0, R::T4, 4);
    asm.add(R::T0, R::T0, R::S3);
    asm.sw(R::T0, R::T4, 4);
    asm.addi(R::T4, R::T4, 4);
    asm.addi(R::T5, R::T5, -1);
    asm.j(apply);
    asm.bind(apply_done);
    // t4 = &win[off + cnt - 1]; the successor boundary sits at t4 + 4.
    let not_last = asm.new_label();
    asm.lw(R::T0, R::A6, spill::ROWS);
    asm.lw(R::T2, R::A6, spill::OFF);
    asm.lw(R::T3, R::A6, spill::CNT);
    asm.add(R::T2, R::T2, R::T3);
    asm.bne(R::T2, R::T0, not_last);
    asm.add(R::T1, R::S3, R::S10);
    asm.sw(R::T1, R::T4, 4); //      panel total (sole writer)
    asm.bind(not_last);
}

/// ISSR numeric: the SSR + FREP expansion into the SpAcc, drained per
/// row at the exchanged packed offsets into the C panel buffer.
fn emit_issr_numeric<I: KernelIndex>(asm: &mut Assembler, plan: &SystemSpgemmPlan) {
    let log_w = log_width::<I>();
    asm.symbol("issr_num");
    emit_spacc_cfg::<I>(asm); // back to value mode
    asm.csrsi(Csr::Ssr, 1);
    asm.li_addr(R::S6, plan.t_b.ptr);
    asm.li_addr(R::S7, plan.t_b.idcs);
    asm.li_addr(R::S8, plan.t_b.vals);
    emit_spill_base(asm, plan, R::A6);
    asm.lw(R::S0, R::A6, spill::APTR);
    asm.lw(R::T1, R::S0, 0);
    asm.addi(R::S0, R::S0, 4);
    asm.lw(R::A5, R::A6, spill::VIDX);
    asm.slli(R::T2, R::T1, log_w);
    asm.add(R::S4, R::A5, R::T2);
    asm.lw(R::T3, R::A6, spill::VVAL);
    asm.slli(R::T2, R::T1, 3);
    asm.add(R::S5, R::T3, R::T2);
    asm.lw(R::T2, R::A6, spill::CBUF);
    asm.lw(R::T3, R::A6, spill::OFF);
    asm.slli(R::T3, R::T3, 2);
    asm.add(R::S1, R::T2, R::T3); // c.ptr window cursor (reads [s1])
    asm.li(R::T4, i64::from(plan.cptrw_bytes));
    asm.add(R::S3, R::T2, R::T4); // C value base
    asm.li(R::T4, i64::from(plan.cptrw_bytes + plan.cvals_bytes));
    asm.add(R::S11, R::T2, R::T4); // C index base
    asm.lw(R::S2, R::A6, spill::CNT);
    let row = asm.bind_label();
    asm.symbol("issr_num_row");
    let flush = asm.new_label();
    asm.lw(R::T5, R::S0, 0); // a.ptr[r+1]
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::S9, R::T5, log_w);
    asm.add(R::S9, R::S9, R::A5); // A-row end (virtual base)
    asm.lw(R::A4, R::S1, 0); //      packed element offset (panel-local)
    asm.addi(R::S1, R::S1, 4);
    asm.slli(R::A2, R::A4, log_w);
    asm.add(R::A2, R::A2, R::S11);
    asm.slli(R::A3, R::A4, 3);
    asm.add(R::A3, R::A3, R::S3);
    emit_issr_k_expand::<I>(asm, flush);
    asm.bind(flush);
    asm.symbol("issr_num_flush");
    // The in-order job queue sequences the drain after this row's
    // feeds; double-buffered row storage overlaps it with the next row.
    asm.scfgwi(R::A3, cfg_addr(sreg::ACC_VAL_OUT, 0));
    asm.scfgwi(R::A2, cfg_addr(sreg::ACC_DRAIN, 0)); // launch (retries)
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, row);
    // Wait for the last drain before signalling done: the DMCC's
    // output DMA reads this buffer right after it sees the flag (its
    // descriptor reads, address arithmetic and transfer startup give
    // the final strobed words a wide landing margin on top of this).
    let fin = asm.bind_label();
    asm.scfgri(R::T0, cfg_addr(sreg::ACC_STATUS, 0));
    asm.andi(R::T0, R::T0, 1);
    asm.beqz(R::T0, fin);
    asm.csrci(Csr::Ssr, 1);
}

/// BASE numeric: the software union-merge per row, packed at the
/// exchanged offsets through [`emit_base_row_copy`].
fn emit_base_numeric<I: KernelIndex>(asm: &mut Assembler, plan: &SystemSpgemmPlan) {
    let log_w = log_width::<I>();
    asm.symbol("base_num");
    asm.csrr(R::A7, Csr::MHartId);
    emit_base_scratch(asm, plan);
    emit_spill_base(asm, plan, R::A6);
    asm.lw(R::S0, R::A6, spill::APTR);
    asm.lw(R::T1, R::S0, 0);
    asm.addi(R::S0, R::S0, 4);
    asm.lw(R::A5, R::A6, spill::VIDX);
    asm.slli(R::T2, R::T1, log_w);
    asm.add(R::S4, R::A5, R::T2);
    asm.lw(R::T3, R::A6, spill::VVAL);
    asm.slli(R::T2, R::T1, 3);
    asm.add(R::S5, R::T3, R::T2);
    asm.lw(R::T2, R::A6, spill::CBUF);
    asm.lw(R::T3, R::A6, spill::OFF);
    asm.slli(R::T3, R::T3, 2);
    asm.add(R::S1, R::T2, R::T3);
    asm.lw(R::S2, R::A6, spill::CNT);
    let row = asm.bind_label();
    asm.symbol("base_num_row");
    let flush = asm.new_label();
    asm.li(R::S10, 0);
    asm.lw(R::T5, R::S0, 0);
    asm.addi(R::S0, R::S0, 4);
    asm.slli(R::A6, R::T5, log_w);
    asm.add(R::A6, R::A6, R::A5);
    asm.lw(R::A4, R::S1, 0); // packed element offset (panel-local)
    asm.addi(R::S1, R::S1, 4);
    emit_base_k_merge::<I>(asm, plan.t_b.idcs, plan.t_b.vals, flush);
    asm.bind(flush);
    asm.symbol("base_num_flush");
    // C cursors from the parity buffer (a7/spill re-derived per row —
    // the merge clobbers them).
    asm.csrr(R::A7, Csr::MHartId);
    emit_spill_base(asm, plan, R::T6);
    asm.lw(R::T1, R::T6, spill::CBUF);
    asm.li(R::T0, i64::from(plan.cptrw_bytes + plan.cvals_bytes));
    asm.add(R::T0, R::T0, R::T1);
    asm.slli(R::T2, R::A4, log_w);
    asm.add(R::T0, R::T0, R::T2); // C index cursor
    asm.li(R::T2, i64::from(plan.cptrw_bytes));
    asm.add(R::T1, R::T1, R::T2);
    asm.slli(R::T2, R::A4, 3);
    asm.add(R::T1, R::T1, R::T2); // C value cursor
    emit_base_row_copy::<I>(asm);
    asm.addi(R::S2, R::S2, -1);
    asm.bnez(R::S2, row);
    // Value-store fence: the row copies store C values through the FPU
    // LSU while the done flag goes through the core LSU; pull one value
    // word back through the FPU (ordered behind every store) and sync
    // it before signalling.
    asm.csrr(R::A7, Csr::MHartId);
    emit_spill_base(asm, plan, R::T6);
    asm.lw(R::T1, R::T6, spill::CBUF);
    asm.fld(FpReg::FT6, R::T1, i32::try_from(plan.cptrw_bytes).expect("small"));
    asm.fcvt_w_d(R::T0, FpReg::FT6);
    asm.add(R::ZERO, R::T0, R::T0);
}

/// Emits the DMCC: claim panels from the shared queue, double-buffer
/// the A panel data in, drain finished output panels to their main-
/// memory regions one panel behind the workers.
#[allow(clippy::too_many_lines)]
fn emit_dmcc(asm: &mut Assembler, plan: &SystemSpgemmPlan, log_w: i32) {
    asm.symbol("dmcc");
    let npanels = plan.panels.len() as u32;
    // Meta transfer: B | a.ptr | descriptors in one DMA.
    asm.li_addr(R::A0, plan.main_meta);
    asm.li_addr(R::A1, DATA_BASE);
    asm.dmsrc(R::A0, R::ZERO);
    asm.dmdst(R::A1, R::ZERO);
    asm.li(R::A2, i64::from(plan.meta_bytes));
    asm.dmcpyi(R::ZERO, R::A2, 0);
    let poll_meta = asm.bind_label();
    asm.dmstati(R::T0, 0);
    asm.beqz(R::T0, poll_meta);
    asm.li(R::T1, 1);
    asm.li_addr(R::T2, S_META);
    asm.sw(R::T1, R::T2, 0);
    asm.li(R::S7, 1); //  DMA transfers issued so far
    asm.li(R::S10, 0); // local panel sequence number
    asm.li(R::S1, -1); // previously claimed panel id
    let dmcc_finish = asm.new_label();
    let claim_loop = asm.bind_label();
    asm.symbol("dmcc_claim");
    asm.li_addr(R::T0, plan.main_queue);
    asm.lw(R::S0, R::T0, 0); // hardware fetch-and-add
    asm.li(R::T1, i64::from(npanels));
    asm.bge(R::S0, R::T1, dmcc_finish);
    // Buffer guard: before overwriting A buffer seq & 1 (used by local
    // panel seq - 2), wait done >= seq - 1.
    let no_wait = asm.new_label();
    asm.addi(R::T0, R::S10, -2);
    asm.blt(R::T0, R::ZERO, no_wait);
    asm.addi(R::T3, R::S10, -1);
    emit_wait_all_done(asm, S_DONE, plan.n_workers, R::T3);
    asm.bind(no_wait);
    // DMA the claimed panel's A data into buffer seq & 1.
    emit_desc_addr(asm, plan, R::S0);
    asm.lw(R::A0, R::T4, 16); // vals_src
    asm.lw(R::A1, R::T4, 20); // vals_len
    asm.lw(R::A2, R::T4, 24); // idcs_src
    asm.lw(R::A3, R::T4, 28); // idcs_len
    asm.andi(R::T0, R::S10, 1);
    asm.li(R::T1, i64::from(plan.abuf_stride));
    asm.mul(R::T0, R::T0, R::T1);
    asm.li_addr(R::T1, plan.abuf);
    asm.add(R::T0, R::T0, R::T1);
    asm.dmsrc(R::A0, R::ZERO);
    asm.dmdst(R::T0, R::ZERO);
    asm.dmcpyi(R::ZERO, R::A1, 0);
    asm.li(R::T2, i64::from(plan.a_vals_cap));
    asm.add(R::T2, R::T2, R::T0);
    asm.dmsrc(R::A2, R::ZERO);
    asm.dmdst(R::T2, R::ZERO);
    asm.dmcpyi(R::ZERO, R::A3, 0);
    asm.addi(R::S7, R::S7, 2);
    let poll_panel = asm.bind_label();
    asm.dmstati(R::T3, 0);
    asm.blt(R::T3, R::S7, poll_panel);
    // Publish the claimed id, then the ready flag.
    emit_parity_slot(asm, S_BLK, R::S10);
    asm.sw(R::S0, R::T0, 0);
    emit_parity_slot(asm, S_READY, R::S10);
    asm.addi(R::T2, R::S10, 1);
    asm.sw(R::T2, R::T0, 0);
    // Drain the previous panel's output while the workers chew on the
    // panel just published.
    let no_prev = asm.new_label();
    asm.blt(R::S1, R::ZERO, no_prev);
    asm.mv(R::T3, R::S10); // need done >= seq (previous panel finished)
    emit_wait_all_done(asm, S_DONE, plan.n_workers, R::T3);
    emit_panel_drain(asm, plan, log_w);
    asm.bind(no_prev);
    asm.mv(R::S1, R::S0);
    asm.addi(R::S10, R::S10, 1);
    asm.j(claim_loop);
    asm.bind(dmcc_finish);
    asm.symbol("dmcc_finish");
    let no_last = asm.new_label();
    asm.blt(R::S1, R::ZERO, no_last);
    asm.mv(R::T3, R::S10);
    emit_wait_all_done(asm, S_DONE, plan.n_workers, R::T3);
    emit_panel_drain(asm, plan, log_w);
    asm.bind(no_last);
    emit_parity_slot(asm, S_BLK, R::S10);
    asm.li(R::T2, -1);
    asm.sw(R::T2, R::T0, 0);
    emit_parity_slot(asm, S_READY, R::S10);
    asm.addi(R::T2, R::S10, 1);
    asm.sw(R::T2, R::T0, 0);
    asm.halt();
}

/// Emits `t4 = t_desc + id * 48` from the panel id in `id_reg`
/// (`id * 48 = id * 16 + id * 32`). Clobbers `t5`.
fn emit_desc_addr(asm: &mut Assembler, plan: &SystemSpgemmPlan, id_reg: R) {
    asm.slli(R::T4, id_reg, 4);
    asm.slli(R::T5, id_reg, 5);
    asm.add(R::T4, R::T4, R::T5);
    asm.li_addr(R::T5, plan.t_desc);
    asm.add(R::T4, R::T4, R::T5);
}

/// Emits the output drain of the panel whose id sits in `s1` (local
/// sequence `s10 - 1`): ptr window, then values and indices sized by
/// the device-computed panel nnz, all to the panel's word-padded main
/// regions; raises `drained[(s10 - 1) & 1] = s10`. Clobbers `t*`,
/// `a0`–`a4`; `s7` tracks issued transfers.
fn emit_panel_drain(asm: &mut Assembler, plan: &SystemSpgemmPlan, log_w: i32) {
    asm.symbol("dmcc_drain");
    emit_desc_addr(asm, plan, R::S1);
    asm.lw(R::A0, R::T4, 4); //  row_count
    asm.lw(R::A1, R::T4, 32); // c_ptr_dst
    asm.lw(R::A2, R::T4, 36); // c_idcs_dst
    asm.lw(R::A3, R::T4, 40); // c_vals_dst
                              // C buffer of the previous parity.
    asm.addi(R::T0, R::S10, -1);
    asm.andi(R::T0, R::T0, 1);
    asm.li(R::T1, i64::from(plan.cbuf_stride));
    asm.mul(R::T0, R::T0, R::T1);
    asm.li_addr(R::T1, plan.cbuf);
    asm.add(R::T0, R::T0, R::T1);
    // Panel nnz from the window's last entry.
    asm.slli(R::T2, R::A0, 2);
    asm.add(R::T2, R::T2, R::T0);
    asm.lw(R::A4, R::T2, 0);
    // 1. Row-pointer window.
    asm.dmsrc(R::T0, R::ZERO);
    asm.dmdst(R::A1, R::ZERO);
    asm.addi(R::T3, R::A0, 1);
    asm.slli(R::T3, R::T3, 2);
    asm.addi(R::T3, R::T3, 7);
    asm.andi(R::T3, R::T3, -8);
    asm.dmcpyi(R::ZERO, R::T3, 0);
    asm.addi(R::S7, R::S7, 1);
    // 2./3. Values and indices (skipped for an all-empty panel).
    let empty = asm.new_label();
    asm.beqz(R::A4, empty);
    asm.li(R::T2, i64::from(plan.cptrw_bytes));
    asm.add(R::T2, R::T2, R::T0);
    asm.dmsrc(R::T2, R::ZERO);
    asm.dmdst(R::A3, R::ZERO);
    asm.slli(R::T3, R::A4, 3);
    asm.dmcpyi(R::ZERO, R::T3, 0);
    asm.li(R::T2, i64::from(plan.cptrw_bytes + plan.cvals_bytes));
    asm.add(R::T2, R::T2, R::T0);
    asm.dmsrc(R::T2, R::ZERO);
    asm.dmdst(R::A2, R::ZERO);
    asm.slli(R::T3, R::A4, log_w);
    asm.addi(R::T3, R::T3, 7);
    asm.andi(R::T3, R::T3, -8);
    asm.dmcpyi(R::ZERO, R::T3, 0);
    asm.addi(R::S7, R::S7, 2);
    asm.bind(empty);
    let poll = asm.bind_label();
    asm.dmstati(R::T3, 0);
    asm.blt(R::T3, R::S7, poll);
    // Free the output buffer for the panel two ahead.
    asm.addi(R::T0, R::S10, -1);
    asm.andi(R::T0, R::T0, 1);
    asm.slli(R::T0, R::T0, 3);
    asm.li_addr(R::T1, S_DRAINED);
    asm.add(R::T0, R::T0, R::T1);
    asm.sw(R::S10, R::T0, 0);
}

// ---------------------------------------------------------------------
// Run harness
// ---------------------------------------------------------------------

/// Result of one system SpGEMM run.
#[derive(Clone, Debug)]
pub struct SystemSpgemmRun {
    /// The stitched sparse product, format-validated.
    pub c: CsrMatrix<u32>,
    /// System-wide summary (per-cluster summaries + contention stats).
    pub summary: SystemSummary,
    /// Panels the partition produced (scaling diagnostics).
    pub n_panels: usize,
}

/// Runs system SpGEMM end to end on `n_clusters` default clusters
/// (plan → marshal → simulate → stitch).
///
/// # Errors
/// Returns [`SimTimeout`] if the system deadlocks or exceeds its cycle
/// budget (a bug).
///
/// # Panics
/// Panics if the inner dimensions disagree, on [`Variant::Ssr`], or if
/// the workers build a malformed output (the stitch validates).
pub fn run_system_spgemm<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    n_clusters: usize,
) -> Result<SystemSpgemmRun, SimTimeout> {
    let plan =
        SystemSpgemmPlan::new(variant, a, b, SystemParams::default().cluster.n_workers as u32);
    run_system_spgemm_planned(
        variant,
        a,
        b,
        plan,
        SystemParams { n_clusters, ..SystemParams::default() },
    )
}

/// [`run_system_spgemm`] with an explicit plan and system parameters
/// (forced multi-panel partitions, bandwidth sweeps).
///
/// # Errors
/// Returns [`SimTimeout`] if the system deadlocks or exceeds its cycle
/// budget (a bug).
///
/// # Panics
/// As [`run_system_spgemm`]. The plan's worker count must match
/// `params.cluster.n_workers`.
pub fn run_system_spgemm_planned<I: KernelIndex>(
    variant: Variant,
    a: &CsrMatrix<I>,
    b: &CsrMatrix<I>,
    plan: SystemSpgemmPlan,
    params: SystemParams,
) -> Result<SystemSpgemmRun, SimTimeout> {
    assert_eq!(
        plan.n_workers, params.cluster.n_workers as u32,
        "plan and system worker counts must agree"
    );
    let mut params = params;
    params.cluster.sssr = true;
    let program = build_system_spgemm::<I>(variant, &plan);
    let mut system = System::new(program, params);
    plan.marshal(system.main.array_mut(), a, b);
    system.set_work_queue(plan.queue_addr());
    let volume: u64 = plan.panels.iter().map(|p| u64::from(p.exp)).sum();
    let budget = 4_000_000 + 1024 * (3 * volume + a.nnz() as u64 + u64::from(plan.nrows));
    let summary = system.run(budget)?;
    assert!(summary.traps().is_empty(), "system cores trapped: {:?}", summary.traps());
    Ok(SystemSpgemmRun {
        c: plan.stitch::<I>(system.main.array()),
        summary,
        n_panels: plan.panels.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_spgemm::run_cluster_spgemm;
    use issr_sparse::{gen, reference};

    fn val_bits(m: &CsrMatrix<u32>) -> Vec<u64> {
        m.vals().iter().map(|v| v.to_bits()).collect()
    }

    fn check<I: KernelIndex>(
        variant: Variant,
        nrows: usize,
        inner: usize,
        ncols: usize,
        nnz_a: usize,
        nnz_b: usize,
        seed: u64,
    ) {
        let mut rng = gen::rng(seed);
        let a = gen::csr_uniform::<I>(&mut rng, nrows, inner, nnz_a);
        let b = gen::csr_uniform::<I>(&mut rng, inner, ncols, nnz_b);
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        let single = run_cluster_spgemm(variant, &a, &b).expect("cluster run finishes");
        for n_clusters in [1usize, 2] {
            let sys = run_system_spgemm(variant, &a, &b, n_clusters).expect("system run finishes");
            assert_eq!(sys.c.ptr(), expect.ptr(), "{variant} {n_clusters}-cluster row pointers");
            assert_eq!(sys.c.idcs(), expect.idcs(), "{variant} {n_clusters}-cluster indices");
            assert_eq!(
                val_bits(&sys.c),
                val_bits(&single.c),
                "{variant} {n_clusters}-cluster values must be bit-identical to the cluster kernel"
            );
        }
    }

    #[test]
    fn issr_system_spgemm_matches_cluster_and_oracle() {
        check::<u16>(Variant::Issr, 24, 32, 48, 120, 160, 500);
        check::<u32>(Variant::Issr, 24, 32, 48, 120, 160, 501);
    }

    #[test]
    fn base_system_spgemm_matches_cluster_and_oracle() {
        check::<u16>(Variant::Base, 24, 32, 48, 120, 160, 502);
    }

    /// A forced multi-panel partition must round-trip through the panel
    /// double buffers and per-panel output drains, bit-identically on 1,
    /// 2 and 4 clusters.
    #[test]
    fn forced_multi_panel_partition_is_bit_identical() {
        let mut rng = gen::rng(503);
        let a = gen::csr_uniform::<u16>(&mut rng, 64, 48, 600);
        let b = gen::csr_uniform::<u16>(&mut rng, 48, 64, 400);
        let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
        let n_workers = SystemParams::default().cluster.n_workers as u32;
        let mut runs = Vec::new();
        for n_clusters in [1usize, 2, 4] {
            let plan = SystemSpgemmPlan::with_panel_caps(Variant::Issr, &a, &b, n_workers, 64, 512);
            assert!(plan.n_panels() >= 4, "caps must force several panels");
            let run = run_system_spgemm_planned(
                Variant::Issr,
                &a,
                &b,
                plan,
                SystemParams { n_clusters, ..SystemParams::default() },
            )
            .expect("system run finishes");
            assert_eq!(run.c.ptr(), expect.ptr(), "{n_clusters}-cluster row pointers");
            assert_eq!(run.c.idcs(), expect.idcs(), "{n_clusters}-cluster indices");
            runs.push(run);
        }
        for r in &runs[1..] {
            assert_eq!(val_bits(&r.c), val_bits(&runs[0].c), "cluster count cannot change bits");
        }
        // With two clusters and several panels both must claim work.
        let active = runs[1].summary.clusters.iter().filter(|c| c.dma_stats.words_in > 0).count();
        assert_eq!(active, 2, "both clusters must claim panels");
    }

    /// Degenerate shapes survive the partition and the flag protocol.
    #[test]
    fn degenerate_shapes() {
        // Empty A.
        check::<u16>(Variant::Issr, 8, 8, 8, 0, 20, 504);
        // Empty B.
        check::<u16>(Variant::Issr, 8, 8, 8, 20, 0, 505);
        // Fewer rows than workers.
        check::<u16>(Variant::Issr, 5, 16, 16, 20, 40, 506);
    }

    /// The symbolic phase runs on the workers (count-only SpAcc feeds
    /// appear in the per-cluster summaries), and the DMA/compute
    /// overlap counter moves on a multi-panel run.
    #[test]
    fn device_owned_symbolic_and_overlap() {
        let mut rng = gen::rng(507);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, 48, 32, 6);
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, 32, 40, 8);
        let n_workers = SystemParams::default().cluster.n_workers as u32;
        let plan = SystemSpgemmPlan::with_panel_caps(Variant::Issr, &a, &b, n_workers, 48, 400);
        assert!(plan.n_panels() >= 3);
        let run = run_system_spgemm_planned(
            Variant::Issr,
            &a,
            &b,
            plan,
            SystemParams { n_clusters: 2, ..SystemParams::default() },
        )
        .unwrap();
        let count_feeds: u64 = run
            .summary
            .clusters
            .iter()
            .flat_map(|c| c.spacc_stats.iter())
            .map(|s| s.count_feeds)
            .sum();
        assert_eq!(count_feeds, a.nnz() as u64, "one symbolic feed per A nonzero");
        assert!(run.summary.overlap_cycles > 0, "panel DMA must overlap compute");
    }
}
