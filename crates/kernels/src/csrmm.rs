//! CSR matrix × dense matrix product kernels (CsrMM, §III-B).
//!
//! The paper multiplies a CSR matrix with a power-of-two-column dense
//! row-major matrix by iterating the CsrMV kernels along the dense
//! columns: the ISSR's programmable index shift addresses row `k` of the
//! dense matrix as `B + 8·c + (k << (3 + log2 stride))`, so only the two
//! job pointers (and the data base) change per column — the overhead
//! over CsrMV is "small to negligible", which the tests check on the
//! paper's Ragusa18 edge case.

use crate::common::FZ;
use crate::csrmv::{emit_issr_row_loop, emit_sw_row_loop, RowLoopCtx};
use crate::layout::{alloc_result, place_csr, place_f64s, Arena, CsrAddrs};
use crate::variant::{KernelIndex, Variant};
use issr_core::cfg::{cfg_addr, idx_cfg_word, reg as sreg};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_snitch::cc::{RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};
use issr_sparse::csr::CsrMatrix;
use issr_sparse::dense::DenseMatrix;

/// Addresses and shapes the CsrMM builders bake into the program.
#[derive(Clone, Copy, Debug)]
pub struct CsrmmAddrs {
    /// The CSR matrix.
    pub a: CsrAddrs,
    /// Dense operand base (row-major, power-of-two stride).
    pub b: u32,
    /// Dense operand columns (loop count).
    pub b_cols: u32,
    /// Dense operand row stride in elements (power of two).
    pub b_stride: u32,
    /// Result base (row-major).
    pub y: u32,
    /// Result row stride in elements.
    pub y_stride: u32,
}

/// Builds the CsrMM program.
///
/// # Panics
/// Panics if `b_stride` is not a power of two (the index shifter's
/// restriction, §III-B).
#[must_use]
pub fn build_csrmm<I: KernelIndex>(variant: Variant, addrs: CsrmmAddrs) -> Program {
    assert!(addrs.b_stride.is_power_of_two(), "dense stride must be a power of two");
    let log_stride = addrs.b_stride.trailing_zeros();
    let mut asm = Assembler::new();
    // Column-loop registers.
    asm.li(R::A0, i64::from(addrs.b_cols));
    asm.li_addr(R::A1, addrs.b);
    asm.li_addr(R::A2, addrs.y);
    asm.li_addr(R::A3, addrs.a.vals);
    asm.li_addr(R::A4, addrs.a.idcs);
    asm.li_addr(R::A5, addrs.a.ptr + 4);
    asm.li(R::A6, i64::from(addrs.a.nrows));
    asm.li(R::S8, i64::from(addrs.y_stride) * 8);
    asm.li_addr(
        R::S7,
        match variant {
            Variant::Base => addrs.a.vals,
            _ => addrs.a.idcs,
        },
    );
    asm.roi_begin();
    let end = asm.new_label();
    if addrs.a.nrows == 0 || addrs.b_cols == 0 {
        asm.j(end);
    }
    // One-time shadow configuration; per-column launches only rewrite
    // the pointers (and the ISSR data base).
    match variant {
        Variant::Issr => {
            if addrs.a.nnz > 0 {
                asm.li(R::T0, i64::from(addrs.a.nnz) - 1);
                asm.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 0));
                asm.li(R::T0, 8);
                asm.scfgwi(R::T0, cfg_addr(sreg::STRIDES[0], 0));
                asm.li(R::T0, i64::from(addrs.a.nnz) - 1);
                asm.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 1));
                asm.li(R::T0, i64::from(idx_cfg_word(I::IDX_SIZE, log_stride)));
                asm.scfgwi(R::T0, cfg_addr(sreg::IDX_CFG, 1));
            }
            asm.csrsi(issr_isa::Csr::Ssr, 1);
            asm.fcvt_d_w(FZ, R::ZERO);
        }
        Variant::Ssr => {
            if addrs.a.nnz > 0 {
                asm.li(R::T0, i64::from(addrs.a.nnz) - 1);
                asm.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 0));
                asm.li(R::T0, 8);
                asm.scfgwi(R::T0, cfg_addr(sreg::STRIDES[0], 0));
            }
            asm.csrsi(issr_isa::Csr::Ssr, 1);
        }
        Variant::Base => {}
    }
    let col_loop = asm.bind_label();
    asm.symbol("column");
    // Reset the row-loop cursors for this column.
    asm.mv(R::S0, R::A5);
    asm.mv(R::S1, R::A2);
    asm.mv(R::S2, R::A6);
    asm.li(R::S3, 0);
    asm.mv(R::S4, R::A4);
    asm.mv(R::S5, R::A3);
    asm.mv(R::S6, R::A1);
    if addrs.a.nnz > 0 {
        match variant {
            Variant::Issr => {
                asm.scfgwi(R::A3, cfg_addr(sreg::RPTR[0], 0)); // vals stream
                asm.scfgwi(R::A1, cfg_addr(sreg::DATA_BASE, 1)); // B column base
                asm.scfgwi(R::A4, cfg_addr(sreg::RPTR[0], 1)); // index stream
            }
            Variant::Ssr => {
                asm.scfgwi(R::A3, cfg_addr(sreg::RPTR[0], 0));
            }
            Variant::Base => {}
        }
    }
    let ctx = RowLoopCtx { idx_shift: 3 + log_stride, restore_cursors: true };
    match variant {
        Variant::Issr => emit_issr_row_loop::<I>(&mut asm, &ctx),
        _ => emit_sw_row_loop::<I>(&mut asm, variant, &ctx),
    }
    // Next column.
    asm.addi(R::A0, R::A0, -1);
    asm.addi(R::A1, R::A1, 8);
    asm.addi(R::A2, R::A2, 8);
    asm.bnez(R::A0, col_loop);
    asm.bind(end);
    asm.roi_end();
    if !matches!(variant, Variant::Base) {
        asm.csrci(issr_isa::Csr::Ssr, 1);
    }
    asm.halt();
    asm.finish().expect("CsrMM program assembles")
}

/// Result of one CsrMM run on the single-CC harness.
#[derive(Clone, Debug)]
pub struct CsrmmRun {
    /// The computed dense result.
    pub y: DenseMatrix,
    /// Cycle-level summary.
    pub summary: RunSummary,
}

/// Marshals the workload, runs the kernel, returns `Y = A·B` and
/// metrics. `b` must have a power-of-two row stride
/// ([`DenseMatrix::with_pow2_stride`]).
///
/// # Errors
/// Returns [`SimTimeout`] if the kernel fails to finish (a bug).
///
/// # Panics
/// Panics if shapes are inconsistent or the stride is not a power of
/// two.
pub fn run_csrmm<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    b: &DenseMatrix,
) -> Result<CsrmmRun, SimTimeout> {
    assert_eq!(b.rows(), m.ncols(), "inner dimensions must agree");
    let mut arena = Arena::new(SINGLE_CC_ARENA, SingleCcSim::DEFAULT_MEM_BYTES / 2);
    let mut sim = SingleCcSim::new(Program::default());
    let a = place_csr(&mut arena, sim.mem.array_mut(), m);
    let b_addr = place_f64s(&mut arena, sim.mem.array_mut(), b.data());
    let y_stride = b.cols() as u32;
    let y = alloc_result(&mut arena, (a.nrows * y_stride).max(1));
    let addrs = CsrmmAddrs {
        a,
        b: b_addr,
        b_cols: b.cols() as u32,
        b_stride: b.stride() as u32,
        y,
        y_stride,
    };
    let program = build_csrmm::<I>(variant, addrs);
    let mut fresh = SingleCcSim::new(program);
    fresh.mem = sim.mem;
    sim = fresh;
    let budget =
        200_000 + 64 * u64::from(a.nnz) * u64::from(addrs.b_cols).max(1) + 64 * u64::from(a.nrows);
    let summary = sim.run(budget)?.expect_clean();
    let mut out = DenseMatrix::zeros(m.nrows(), b.cols());
    for r in 0..m.nrows() {
        for c in 0..b.cols() {
            out.set(r, c, sim.mem.array().load_f64(y + (r as u32 * y_stride + c as u32) * 8));
        }
    }
    Ok(CsrmmRun { y: out, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::{gen, reference};

    fn dense_b(rng: &mut rand::rngs::StdRng, rows: usize, cols: usize) -> DenseMatrix {
        let mut b = DenseMatrix::with_pow2_stride(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                b.set(r, c, gen::dense_vector(rng, 1)[0]);
            }
        }
        b
    }

    fn check<I: KernelIndex>(variant: Variant, seed: u64) {
        let mut rng = gen::rng(seed);
        let m = gen::csr_uniform::<I>(&mut rng, 20, 48, 160);
        let b = dense_b(&mut rng, 48, 5);
        let run = run_csrmm(variant, &m, &b).expect("kernel finishes");
        let expect = reference::csrmm(&m, &b);
        let diff = run.y.max_abs_diff(&expect);
        assert!(diff < 1e-9, "{variant}: max diff {diff}");
    }

    #[test]
    fn base_matches_reference() {
        check::<u32>(Variant::Base, 31);
        check::<u16>(Variant::Base, 32);
    }

    #[test]
    fn ssr_matches_reference() {
        check::<u32>(Variant::Ssr, 33);
        check::<u16>(Variant::Ssr, 34);
    }

    #[test]
    fn issr_matches_reference() {
        check::<u32>(Variant::Issr, 35);
        check::<u16>(Variant::Issr, 36);
    }

    #[test]
    fn single_column_equals_csrmv() {
        let mut rng = gen::rng(40);
        let m = gen::csr_uniform::<u16>(&mut rng, 16, 32, 120);
        let x = gen::dense_vector(&mut rng, 32);
        let mut b = DenseMatrix::with_pow2_stride(32, 1);
        for (r, &v) in x.iter().enumerate() {
            b.set(r, 0, v);
        }
        let mm = run_csrmm(Variant::Issr, &m, &b).unwrap();
        let mv = crate::csrmv::run_csrmv(Variant::Issr, &m, &x).unwrap();
        for r in 0..16 {
            assert!((mm.y.get(r, 0) - mv.y[r]).abs() < 1e-12);
        }
    }

    /// §IV-A: for the tiny Ragusa18 (64 nnz) and a 2-column dense
    /// matrix, CsrMM utilization changes only marginally vs CsrMV
    /// (the paper reports a 0.12 % delta).
    #[test]
    fn ragusa18_edge_case_utilization_delta() {
        let entry = issr_sparse::suite::by_name("ragusa18").unwrap();
        let m: CsrMatrix<u16> = entry.build();
        let mut rng = gen::rng(41);
        let b = dense_b(&mut rng, m.ncols(), 2);
        let x = b.col(0);
        let mv = crate::csrmv::run_csrmv(Variant::Issr, &m, &x).unwrap();
        let mm = run_csrmm(Variant::Issr, &m, &b).unwrap();
        let u_mv = mv.summary.metrics.fpu_utilization();
        let u_mm = mm.summary.metrics.fpu_utilization();
        let delta = (u_mv - u_mm).abs();
        assert!(
            delta < 0.02,
            "CsrMM vs CsrMV utilization delta {delta:.4} ({u_mm:.4} vs {u_mv:.4})"
        );
    }
}
