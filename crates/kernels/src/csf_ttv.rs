//! CSF tensor-times-vector on the ISSR (§III-A extension).
//!
//! CSF generalizes CSR by nesting fibers; the paper notes that the ISSR
//! accelerates *any* fiber-based format with the core iterating the
//! upper axes. Mode-2 TTV (`Y[i][j] = Σ_k T[i][j][k] · x[k]`) maps onto
//! two existing accelerated passes:
//!
//! 1. the compressed leaf rows of the tensor *are* a CSR matrix
//!    (`n_compressed_rows × dims[2]`), so the ISSR CsrMV kernel produces
//!    one partial result per nonempty `(i, j)` fiber;
//! 2. an ISSR *scatter* stream places those partials at their `(i, j)`
//!    positions in the dense output — the output coordinates are format
//!    metadata the host precomputes, like CSR row pointers.

use crate::csrmv::run_csrmv;
use crate::streaming::run_scatter;
use crate::variant::{KernelIndex, Variant};
use issr_snitch::cc::SimTimeout;
use issr_sparse::csf::CsfTensor;
use issr_sparse::csr::CsrMatrix;

/// Result of a TTV run.
#[derive(Clone, Debug)]
pub struct CsfTtvRun {
    /// Dense `dims[0] × dims[1]` output.
    pub y: Vec<Vec<f64>>,
    /// Cycles of the CsrMV pass.
    pub mv_cycles: u64,
    /// Cycles of the scatter pass.
    pub scatter_cycles: u64,
}

/// Runs mode-2 TTV with `variant` kernels (the scatter pass is always
/// ISSR — it has no BASE analogue in the paper).
///
/// # Errors
/// Returns [`SimTimeout`] on a simulation bug.
///
/// # Panics
/// Panics if `x.len() != dims[2]` or the output coordinates do not fit
/// the index width `I`.
pub fn run_csf_ttv<I: KernelIndex>(
    variant: Variant,
    t: &CsfTensor<I>,
    x: &[f64],
) -> Result<CsfTtvRun, SimTimeout> {
    let dims = t.dims();
    assert_eq!(x.len(), dims[2], "vector length mismatch");
    // Pass 1: the leaf level as a CSR matrix over compressed rows.
    let mut ptr = vec![0u32];
    let mut out_coord: Vec<I> = Vec::new();
    for (i, rows) in t.slices() {
        for r in rows {
            let (j, leaves) = t.row(r);
            ptr.push(leaves.end as u32);
            out_coord.push(I::from_usize(i * dims[1] + j));
        }
    }
    let n_rows = ptr.len() - 1;
    let mut y = vec![vec![0.0; dims[1]]; dims[0]];
    if n_rows == 0 {
        return Ok(CsfTtvRun { y, mv_cycles: 0, scatter_cycles: 0 });
    }
    let leaf_matrix =
        CsrMatrix::new(n_rows, dims[2], ptr, t.leaf_idcs().to_vec(), t.vals().to_vec())
            .expect("CSF leaf level is a valid CSR");
    let mv = run_csrmv(variant, &leaf_matrix, x)?;
    // Pass 2: scatter the per-fiber partials to their (i, j) slots.
    let scatter = run_scatter(dims[0] * dims[1], &out_coord, &mv.y)?;
    for (i, row) in y.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = scatter.out[i * dims[1] + j];
        }
    }
    Ok(CsfTtvRun {
        y,
        mv_cycles: mv.summary.metrics.roi.cycles,
        scatter_cycles: scatter.summary.metrics.roi.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::gen;
    use rand::Rng;

    fn random_tensor(seed: u64, dims: [usize; 3], nnz: usize) -> CsfTensor<u16> {
        let mut rng = gen::rng(seed);
        let entries: Vec<([usize; 3], f64)> = (0..nnz)
            .map(|_| {
                (
                    [
                        rng.gen_range(0..dims[0]),
                        rng.gen_range(0..dims[1]),
                        rng.gen_range(0..dims[2]),
                    ],
                    rng.gen_range(-2.0..2.0),
                )
            })
            .collect();
        CsfTensor::from_coords(dims, &entries)
    }

    #[test]
    fn ttv_matches_reference() {
        let dims = [6, 8, 64];
        let t = random_tensor(90, dims, 300);
        let mut rng = gen::rng(91);
        let x = gen::dense_vector(&mut rng, dims[2]);
        let run = run_csf_ttv(Variant::Issr, &t, &x).unwrap();
        let expect = t.ttv(&x);
        for (i, (run_row, exp_row)) in run.y.iter().zip(&expect).enumerate() {
            for (j, (got, want)) in run_row.iter().zip(exp_row).enumerate() {
                assert!((got - want).abs() < 1e-9, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn base_variant_also_correct() {
        let dims = [3, 4, 32];
        let t = random_tensor(92, dims, 60);
        let mut rng = gen::rng(93);
        let x = gen::dense_vector(&mut rng, dims[2]);
        let run = run_csf_ttv(Variant::Base, &t, &x).unwrap();
        let expect = t.ttv(&x);
        assert!((run.y[2][3] - expect[2][3]).abs() < 1e-9);
    }

    #[test]
    fn empty_tensor_yields_zeros() {
        let t = CsfTensor::<u16>::from_coords([2, 2, 8], &[]);
        let run = run_csf_ttv(Variant::Issr, &t, &[0.0; 8]).unwrap();
        assert_eq!(run.y, vec![vec![0.0; 2]; 2]);
        assert_eq!(run.mv_cycles, 0);
    }

    #[test]
    fn scatter_pass_is_small_next_to_mv() {
        let dims = [8, 8, 128];
        let t = random_tensor(94, dims, 2000);
        let mut rng = gen::rng(95);
        let x = gen::dense_vector(&mut rng, dims[2]);
        let run = run_csf_ttv(Variant::Issr, &t, &x).unwrap();
        assert!(
            run.scatter_cycles < run.mv_cycles,
            "scatter {} vs mv {}",
            run.scatter_cycles,
            run.mv_cycles
        );
    }
}
