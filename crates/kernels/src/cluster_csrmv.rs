//! Multicore cluster CsrMV (§IV-B).
//!
//! The paper's system-level experiment: all data starts in main memory;
//! the DMCC double-buffers matrix blocks (values + indices) into the
//! TCDM with the 512-bit DMA while eight workers process the previous
//! block, rows statically distributed among them. The dense vector, row
//! pointers and block descriptors are DMAed once up front and stay
//! resident; the result vector accumulates in the TCDM and is written
//! back at the end.
//!
//! Synchronization uses monotonic flag words in the TCDM:
//! `meta_ready`, per-buffer `ready[2]` (DMCC → workers, holds the
//! 1-based block number loaded) and per-worker `done[8]` (workers →
//! DMCC, holds the 1-based last block finished), so no flag is ever
//! reset.

use crate::common::FZ;
use crate::csrmv::{emit_issr_row_loop, emit_sw_row_loop, RowLoopCtx};
use crate::variant::{KernelIndex, Variant};
use issr_cluster::cluster::{Cluster, ClusterParams, ClusterSummary};
use issr_core::cfg::{cfg_addr, idx_cfg_word, reg as sreg};
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;
use issr_mem::map::{MAIN_BASE, TCDM_BASE, TCDM_SIZE};
use issr_snitch::cc::SimTimeout;
use issr_sparse::csr::CsrMatrix;

/// Per-buffer size (two of these sit at the top of the TCDM).
pub const BUF_BYTES: u32 = 1 << 16;
/// Bytes of each buffer reserved for matrix values.
pub const VALS_CAP: u32 = 48 * 1024;
/// Bytes of each buffer reserved for (word-aligned) index chunks.
pub const IDX_CAP: u32 = BUF_BYTES - VALS_CAP;

pub(crate) const FLAG_META: u32 = TCDM_BASE;
pub(crate) const FLAG_READY: u32 = TCDM_BASE + 8;
pub(crate) const FLAG_DONE: u32 = TCDM_BASE + 0x20;
const DATA_LOW: u32 = TCDM_BASE + 0x100;
pub(crate) const BUF_A: u32 = TCDM_BASE + TCDM_SIZE - 2 * BUF_BYTES;

/// One double-buffered block of rows.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Block {
    pub(crate) row_start: u32,
    pub(crate) row_count: u32,
    nnz_start: u32,
    vals_src: u32,
    vals_len: u32,
    idcs_src: u32,
    idcs_len: u32,
}

/// The planned layout of one cluster CsrMV run.
#[derive(Clone, Debug)]
pub struct ClusterCsrmvPlan {
    pub(crate) n_workers: u32,
    pub(crate) nrows: u32,
    ncols: u32,
    pub(crate) blocks: Vec<Block>,
    // Main memory.
    main_vals: u32,
    main_idcs: u32,
    pub(crate) main_meta: u32,
    pub(crate) main_y: u32,
    pub(crate) meta_bytes: u32,
    /// Hardware fetch-and-add ticket word of the multi-cluster work
    /// queue (unused by the single-cluster kernel).
    pub(crate) main_queue: u32,
    // TCDM.
    pub(crate) tcdm_x: u32,
    pub(crate) tcdm_ptr: u32,
    pub(crate) tcdm_desc: u32,
    pub(crate) tcdm_y: u32,
}

impl ClusterCsrmvPlan {
    /// Plans blocks and addresses for `m` on `n_workers` workers.
    ///
    /// # Panics
    /// Panics if a single row exceeds the block capacity or the resident
    /// data does not fit the TCDM (the paper's matrices all fit).
    #[must_use]
    pub fn new<I: KernelIndex>(m: &CsrMatrix<I>, n_workers: u32) -> Self {
        let nrows = m.nrows() as u32;
        let ncols = m.ncols() as u32;
        let max_elems = (VALS_CAP / 8).min((IDX_CAP - 8) / I::BYTES);
        // Greedy row blocking under the element capacity.
        let mut blocks = Vec::new();
        let ptr = m.ptr();
        let mut row = 0u32;
        while row < nrows {
            let start_nnz = ptr[row as usize];
            let mut end = row + 1;
            while end < nrows && ptr[end as usize + 1] - start_nnz <= max_elems {
                end += 1;
            }
            let nnz_count = ptr[end as usize] - start_nnz;
            assert!(
                nnz_count <= max_elems,
                "row {row} alone exceeds the block capacity of {max_elems} nonzeros"
            );
            blocks.push(Block {
                row_start: row,
                row_count: end - row,
                nnz_start: start_nnz,
                vals_src: 0,
                vals_len: (nnz_count * 8).max(8),
                idcs_src: 0,
                idcs_len: 0,
            });
            row = end;
        }
        // Main-memory layout: vals | idcs | meta [x | ptr | desc] | y.
        let mut main = crate::layout::Arena::new(MAIN_BASE, issr_mem::map::MAIN_SIZE);
        let nnz = m.nnz() as u32;
        let main_vals = main.alloc(nnz.max(1) * 8 + 8, 8);
        let main_idcs = main.alloc((nnz.max(1) * I::BYTES + 15) & !7, 8);
        let x_bytes = ncols * 8;
        let ptr_bytes = ((nrows + 1) * 4 + 7) & !7;
        let desc_bytes = (blocks.len() as u32 * 32).max(8);
        let meta_bytes = x_bytes + ptr_bytes + desc_bytes;
        let main_meta = main.alloc(meta_bytes, 8);
        let main_y = main.alloc(nrows.max(1) * 8, 8);
        let main_queue = main.alloc(8, 8);
        // TCDM layout mirrors the meta block contiguously.
        let tcdm_x = DATA_LOW;
        let tcdm_ptr = tcdm_x + x_bytes;
        let tcdm_desc = tcdm_ptr + ptr_bytes;
        let tcdm_y = tcdm_desc + desc_bytes;
        assert!(
            tcdm_y + nrows.max(1) * 8 <= BUF_A,
            "resident data (x, ptr, descriptors, y) does not fit below the block buffers"
        );
        // Fill per-block DMA sources now that array bases are known.
        for b in &mut blocks {
            let nnz_end = ptr[(b.row_start + b.row_count) as usize];
            b.vals_src = main_vals + b.nnz_start * 8;
            b.vals_len = ((nnz_end - b.nnz_start) * 8).max(8);
            let idx_begin = main_idcs + b.nnz_start * I::BYTES;
            let idx_end = main_idcs + nnz_end * I::BYTES;
            b.idcs_src = idx_begin & !7;
            b.idcs_len = (((idx_end + 7) & !7) - b.idcs_src).max(8);
            assert!(b.idcs_len <= IDX_CAP, "index chunk exceeds buffer");
        }
        Self {
            n_workers,
            nrows,
            ncols,
            blocks,
            main_vals,
            main_idcs,
            main_meta,
            main_y,
            meta_bytes,
            main_queue,
            tcdm_x,
            tcdm_ptr,
            tcdm_desc,
            tcdm_y,
        }
    }

    /// Number of planned blocks.
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Writes the workload into cluster main memory.
    pub fn marshal<I: KernelIndex>(&self, cluster: &mut Cluster, m: &CsrMatrix<I>, x: &[f64]) {
        self.marshal_into(cluster.main.array_mut(), m, x);
    }

    /// [`ClusterCsrmvPlan::marshal`] against a bare memory array (the
    /// multi-cluster system owns the shared main memory itself).
    pub fn marshal_into<I: KernelIndex>(
        &self,
        mem: &mut issr_mem::array::MemArray,
        m: &CsrMatrix<I>,
        x: &[f64],
    ) {
        mem.store_f64_slice(self.main_vals, m.vals());
        I::store_slice(mem, self.main_idcs, m.idcs());
        // Meta block: x, ptr, descriptors — contiguous, DMAed in one go.
        let x_bytes = self.ncols * 8;
        let ptr_bytes = ((self.nrows + 1) * 4 + 7) & !7;
        mem.store_f64_slice(self.main_meta, x);
        mem.store_u32_slice(self.main_meta + x_bytes, m.ptr());
        for (i, b) in self.blocks.iter().enumerate() {
            let d = self.main_meta + x_bytes + ptr_bytes + (i as u32) * 32;
            mem.store_u32_slice(
                d,
                &[
                    b.row_start,
                    b.row_count,
                    b.nnz_start,
                    0,
                    b.vals_src,
                    b.vals_len,
                    b.idcs_src,
                    b.idcs_len,
                ],
            );
        }
    }

    /// Reads the result vector back from main memory.
    #[must_use]
    pub fn read_y(&self, cluster: &Cluster) -> Vec<f64> {
        self.read_y_from(cluster.main.array())
    }

    /// [`ClusterCsrmvPlan::read_y`] against a bare memory array.
    #[must_use]
    pub fn read_y_from(&self, mem: &issr_mem::array::MemArray) -> Vec<f64> {
        mem.load_f64_slice(self.main_y, self.nrows as usize)
    }

    /// Address of the work-queue ticket word in main memory.
    #[must_use]
    pub fn queue_addr(&self) -> u32 {
        self.main_queue
    }
}

/// TCDM geometry the shared CsrMV worker body bakes in — identical for
/// the single-cluster kernel and the multi-cluster system kernel, whose
/// per-cluster layouts mirror each other.
pub(crate) struct CsrmvWorkerGeom {
    pub n_workers: u32,
    pub tcdm_x: u32,
    pub tcdm_ptr: u32,
    pub tcdm_y: u32,
    pub buf_a: u32,
    pub vals_cap: u32,
}

impl CsrmvWorkerGeom {
    pub(crate) fn of(plan: &ClusterCsrmvPlan) -> Self {
        Self {
            n_workers: plan.n_workers,
            tcdm_x: plan.tcdm_x,
            tcdm_ptr: plan.tcdm_ptr,
            tcdm_y: plan.tcdm_y,
            buf_a: BUF_A,
            vals_cap: VALS_CAP,
        }
    }
}

/// Emits the invariant ISSR lane configuration of the CsrMV worker
/// (value stride, index mode, x base) and enables the streamer.
pub(crate) fn emit_worker_issr_cfg<I: KernelIndex>(asm: &mut Assembler, tcdm_x: u32) {
    asm.li(R::T0, 8);
    asm.scfgwi(R::T0, cfg_addr(sreg::STRIDES[0], 0));
    asm.li(R::T0, i64::from(idx_cfg_word(I::IDX_SIZE, 0)));
    asm.scfgwi(R::T0, cfg_addr(sreg::IDX_CFG, 1));
    asm.li_addr(R::T0, tcdm_x);
    asm.scfgwi(R::T0, cfg_addr(sreg::DATA_BASE, 1));
    asm.csrsi(Csr::Ssr, 1);
    asm.fcvt_d_w(FZ, R::ZERO);
}

/// Emits the shared per-block worker body: reads the descriptor `blk`
/// indexes (via `s9` = descriptor base), derives this worker's row
/// slice, seeds the cursors into the double buffer `s10 & 1` and runs
/// the row loop; branches to `signal_done` when the worker has no rows
/// in the block. Register contract: `a7` hartid, `s8` the y stride (8),
/// `s9` descriptor base, `s10` block sequence number (buffer parity);
/// everything else is clobbered.
#[allow(clippy::too_many_lines)]
pub(crate) fn emit_worker_block_body<I: KernelIndex>(
    asm: &mut Assembler,
    variant: Variant,
    geom: &CsrmvWorkerGeom,
    blk: R,
    signal_done: issr_isa::asm::Label,
) {
    let log_w = if I::BYTES == 2 { 1 } else { 2 };
    // Descriptor fields.
    asm.slli(R::T4, blk, 5);
    asm.add(R::T4, R::T4, R::S9);
    asm.lw(R::A0, R::T4, 0); // row_start
    asm.lw(R::A1, R::T4, 4); // row_count
    asm.lw(R::A2, R::T4, 8); // nnz_start
                             // My row slice: rpw = ceil(row_count / workers); my_off = h * rpw.
    asm.addi(R::T5, R::A1, i32::try_from(geom.n_workers - 1).expect("small"));
    asm.srli(R::T5, R::T5, geom.n_workers.trailing_zeros() as i32);
    asm.mul(R::T6, R::T5, R::A7);
    asm.sub(R::A3, R::A1, R::T6); // rows remaining after my offset
    asm.blez(R::A3, signal_done); // no rows for me in this block
    let clamp_ok = asm.new_label();
    asm.bge(R::A3, R::T5, clamp_ok);
    asm.mv(R::T5, R::A3); // my_count = min(rpw, remaining)
    asm.bind(clamp_ok);
    asm.add(R::A4, R::A0, R::T6); // my_start
                                  // Row-pointer window: s3 = ptr[my_start]; s0 = &ptr[my_start + 1].
    asm.slli(R::T0, R::A4, 2);
    asm.li_addr(R::T1, geom.tcdm_ptr);
    asm.add(R::T0, R::T0, R::T1);
    asm.lw(R::S3, R::T0, 0);
    asm.addi(R::S0, R::T0, 4);
    asm.slli(R::T2, R::T5, 2);
    asm.add(R::T2, R::T2, R::T0);
    asm.lw(R::T2, R::T2, 0); // ptr[my_end]
    asm.mv(R::S2, R::T5); // row count for the row loop
                          // y cursor.
    asm.slli(R::T0, R::A4, 3);
    asm.li_addr(R::T1, geom.tcdm_y);
    asm.add(R::S1, R::T0, R::T1);
    asm.sub(R::A5, R::T2, R::S3); // my element count
                                  // Buffer bases for this block.
    asm.andi(R::T0, R::S10, 1);
    asm.slli(R::T0, R::T0, 16);
    asm.li_addr(R::T1, geom.buf_a);
    asm.add(R::T0, R::T0, R::T1); // buffer base (vals at +0)
    match variant {
        Variant::Issr => {
            let launch_done = asm.new_label();
            asm.beqz(R::A5, launch_done); // nothing streams this block
                                          // Launch SSR over my values.
            asm.addi(R::T1, R::A5, -1);
            asm.scfgwi(R::T1, cfg_addr(sreg::BOUNDS[0], 0));
            asm.scfgwi(R::T1, cfg_addr(sreg::BOUNDS[0], 1));
            asm.sub(R::T2, R::S3, R::A2); // element offset in buffer
            asm.slli(R::T2, R::T2, 3);
            asm.add(R::T2, R::T2, R::T0);
            asm.scfgwi(R::T2, cfg_addr(sreg::RPTR[0], 0));
            // Launch ISSR over my indices (buffer chunk is 8-aligned from
            // `idcs_src`; the serializer absorbs the sub-word offset).
            asm.slli(R::T2, R::S3, log_w);
            asm.slli(R::T3, R::A2, log_w);
            asm.andi(R::T3, R::T3, -8);
            asm.sub(R::T2, R::T2, R::T3);
            asm.add(R::T2, R::T2, R::T0);
            asm.li(R::T3, i64::from(geom.vals_cap));
            asm.add(R::T2, R::T2, R::T3);
            asm.scfgwi(R::T2, cfg_addr(sreg::RPTR[0], 1));
            asm.bind(launch_done);
            emit_issr_row_loop::<I>(asm, &RowLoopCtx { idx_shift: 3, restore_cursors: false });
        }
        _ => {
            // BASE: software cursors into the buffer.
            // Virtual value base: buf_vals - 8 * nnz_start.
            asm.slli(R::T1, R::A2, 3);
            asm.sub(R::S7, R::T0, R::T1);
            asm.slli(R::T1, R::S3, 3);
            asm.add(R::S5, R::S7, R::T1); // vals cursor at ptr[my_start]
                                          // Virtual index base: buf_idcs - align8(W * nnz_start).
            asm.slli(R::T1, R::A2, log_w);
            asm.andi(R::T1, R::T1, -8);
            asm.li(R::T2, i64::from(geom.vals_cap));
            asm.add(R::T2, R::T2, R::T0);
            asm.sub(R::T2, R::T2, R::T1); // virtual idx base
            asm.slli(R::T1, R::S3, log_w);
            asm.add(R::S4, R::T2, R::T1); // idx cursor
            asm.li_addr(R::S6, geom.tcdm_x);
            // emit_sw_row_loop(BASE) computes row ends against s7.
            emit_sw_row_loop::<I>(
                asm,
                Variant::Base,
                &RowLoopCtx { idx_shift: 3, restore_cursors: false },
            );
        }
    }
    // y-fence: the row loops store y through the FPU LSU, the done flag
    // goes through the core LSU, and the shared-port mux arbitrates the
    // two — an integer flag store could overtake the last y store. Pull
    // the final y word back through the FPU LSU (ordered behind the
    // store) and sync it into an integer register so the fall-through
    // path cannot signal done before its y rows are in the TCDM — the
    // per-block DMA write-back reads them right after.
    asm.fld(issr_isa::reg::FpReg::FT6, R::S1, -8);
    asm.fcvt_w_d(R::T0, issr_isa::reg::FpReg::FT6);
    asm.add(R::ZERO, R::T0, R::T0);
}

/// Builds the SPMD cluster program (all harts run it; the DMCC is hart
/// `n_workers`).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_cluster_csrmv<I: KernelIndex>(variant: Variant, plan: &ClusterCsrmvPlan) -> Program {
    assert!(plan.n_workers.is_power_of_two(), "the static row split shifts by log2(workers)");
    assert!(
        matches!(variant, Variant::Base | Variant::Issr),
        "cluster CsrMV is evaluated for BASE and ISSR (paper Fig. 4c)"
    );
    let nblocks = plan.blocks.len() as u32;
    let mut asm = Assembler::new();
    asm.csrr(R::A7, Csr::MHartId);
    let dmcc_entry = asm.new_label();
    asm.li(R::T0, i64::from(plan.n_workers));
    asm.beq(R::A7, R::T0, dmcc_entry);

    // ---------------- worker ----------------
    asm.symbol("worker");
    // Wait for resident data.
    asm.li_addr(R::T0, FLAG_META);
    let spin_meta = asm.bind_label();
    asm.lw(R::T1, R::T0, 0);
    asm.beqz(R::T1, spin_meta);
    // Static state.
    asm.li_addr(R::S9, plan.tcdm_desc);
    asm.li(R::S10, 0); // block counter
    asm.li(R::S11, i64::from(nblocks));
    asm.li(R::S8, 8); // y stride
    asm.li_addr(R::A6, FLAG_DONE);
    asm.slli(R::T0, R::A7, 3);
    asm.add(R::A6, R::A6, R::T0);
    if variant == Variant::Issr {
        // Invariant lane configuration: value stride, index mode, x base.
        emit_worker_issr_cfg::<I>(&mut asm, plan.tcdm_x);
    }
    asm.roi_begin();
    let worker_end = asm.new_label();
    if nblocks == 0 {
        asm.j(worker_end);
    }
    let block_loop = asm.bind_label();
    asm.symbol("worker_block");
    // Wait ready[b & 1] >= b + 1.
    asm.andi(R::T0, R::S10, 1);
    asm.slli(R::T0, R::T0, 3);
    asm.li_addr(R::T1, FLAG_READY);
    asm.add(R::T0, R::T0, R::T1);
    asm.addi(R::T3, R::S10, 1);
    let spin_ready = asm.bind_label();
    asm.lw(R::T2, R::T0, 0);
    asm.blt(R::T2, R::T3, spin_ready);
    // Descriptor fields, row slice, cursors and the row loop — shared
    // with the system kernel (block id = the sequence number here).
    let signal_done = asm.new_label();
    emit_worker_block_body::<I>(&mut asm, variant, &CsrmvWorkerGeom::of(plan), R::S10, signal_done);
    asm.bind(signal_done);
    asm.addi(R::T0, R::S10, 1);
    asm.sw(R::T0, R::A6, 0);
    asm.addi(R::S10, R::S10, 1);
    asm.blt(R::S10, R::S11, block_loop);
    asm.bind(worker_end);
    asm.roi_end();
    if variant == Variant::Issr {
        asm.csrci(Csr::Ssr, 1);
    }
    asm.halt();

    // ---------------- DMCC ----------------
    asm.bind(dmcc_entry);
    asm.symbol("dmcc");
    // Meta transfer: x | ptr | descriptors in one DMA.
    asm.li_addr(R::A0, plan.main_meta);
    asm.li_addr(R::A1, plan.tcdm_x);
    asm.dmsrc(R::A0, R::ZERO);
    asm.dmdst(R::A1, R::ZERO);
    asm.li(R::A2, i64::from(plan.meta_bytes));
    asm.dmcpyi(R::ZERO, R::A2, 0);
    let poll_meta = asm.bind_label();
    asm.dmstati(R::T0, 0);
    asm.beqz(R::T0, poll_meta);
    asm.li(R::T1, 1);
    asm.li_addr(R::T2, FLAG_META);
    asm.sw(R::T1, R::T2, 0);
    asm.li(R::S7, 1); // DMA transfers issued so far
    asm.li(R::S10, 0); // block counter
    asm.li(R::S11, i64::from(nblocks));
    let dmcc_finish = asm.new_label();
    if nblocks == 0 {
        asm.j(dmcc_finish);
    }
    let dmcc_loop = asm.bind_label();
    asm.symbol("dmcc_block");
    // Before overwriting buffer b&1, wait for every worker to be done
    // with block b-2 (monotonic flags: done[c] >= b-1).
    let no_wait = asm.new_label();
    asm.addi(R::T0, R::S10, -2);
    asm.blt(R::T0, R::ZERO, no_wait);
    asm.addi(R::T3, R::S10, -1); // need done >= b-1
    for c in 0..plan.n_workers {
        let spin = asm.bind_label();
        asm.li_addr(R::T1, FLAG_DONE + c * 8);
        asm.lw(R::T2, R::T1, 0);
        asm.blt(R::T2, R::T3, spin);
    }
    asm.bind(no_wait);
    // Descriptor: DMA sources and lengths.
    asm.slli(R::T4, R::S10, 5);
    asm.li_addr(R::T5, plan.tcdm_desc);
    asm.add(R::T4, R::T4, R::T5);
    asm.lw(R::A0, R::T4, 16); // vals_src
    asm.lw(R::A1, R::T4, 20); // vals_len
    asm.lw(R::A2, R::T4, 24); // idcs_src
    asm.lw(R::A3, R::T4, 28); // idcs_len
                              // Destination buffer.
    asm.andi(R::T0, R::S10, 1);
    asm.slli(R::T0, R::T0, 16);
    asm.li_addr(R::T1, BUF_A);
    asm.add(R::T0, R::T0, R::T1);
    asm.dmsrc(R::A0, R::ZERO);
    asm.dmdst(R::T0, R::ZERO);
    asm.dmcpyi(R::ZERO, R::A1, 0);
    asm.li(R::T2, i64::from(VALS_CAP));
    asm.add(R::T2, R::T2, R::T0);
    asm.dmsrc(R::A2, R::ZERO);
    asm.dmdst(R::T2, R::ZERO);
    asm.dmcpyi(R::ZERO, R::A3, 0);
    asm.addi(R::S7, R::S7, 2);
    let poll_block = asm.bind_label();
    asm.dmstati(R::T3, 0);
    asm.blt(R::T3, R::S7, poll_block);
    // ready[b & 1] = b + 1.
    asm.andi(R::T0, R::S10, 1);
    asm.slli(R::T0, R::T0, 3);
    asm.li_addr(R::T1, FLAG_READY);
    asm.add(R::T0, R::T0, R::T1);
    asm.addi(R::T2, R::S10, 1);
    asm.sw(R::T2, R::T0, 0);
    asm.addi(R::S10, R::S10, 1);
    asm.blt(R::S10, R::S11, dmcc_loop);
    asm.bind(dmcc_finish);
    // Wait for all workers to finish the last block.
    for c in 0..plan.n_workers {
        let spin = asm.bind_label();
        asm.li_addr(R::T1, FLAG_DONE + c * 8);
        asm.lw(R::T2, R::T1, 0);
        asm.blt(R::T2, R::S11, spin);
    }
    // Write the result back.
    if plan.nrows > 0 {
        asm.li_addr(R::A0, plan.tcdm_y);
        asm.li_addr(R::A1, plan.main_y);
        asm.dmsrc(R::A0, R::ZERO);
        asm.dmdst(R::A1, R::ZERO);
        asm.li(R::A2, i64::from(plan.nrows) * 8);
        asm.dmcpyi(R::ZERO, R::A2, 0);
        asm.addi(R::S7, R::S7, 1);
        let poll_y = asm.bind_label();
        asm.dmstati(R::T0, 0);
        asm.blt(R::T0, R::S7, poll_y);
    }
    asm.halt();
    asm.finish().expect("cluster CsrMV program assembles")
}

/// Result of one cluster CsrMV run.
#[derive(Clone, Debug)]
pub struct ClusterCsrmvRun {
    /// The result vector, read back from main memory.
    pub y: Vec<f64>,
    /// Cluster-wide summary.
    pub summary: ClusterSummary,
}

/// Runs cluster CsrMV end to end (marshal → simulate → read back).
///
/// # Errors
/// Returns [`SimTimeout`] if the cluster deadlocks or exceeds its cycle
/// budget (a bug).
pub fn run_cluster_csrmv<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
) -> Result<ClusterCsrmvRun, SimTimeout> {
    run_cluster_csrmv_with(variant, m, x, ClusterParams::default())
}

/// [`run_cluster_csrmv`] with explicit cluster parameters (worker-count
/// scaling studies, instruction-cache ablations).
///
/// # Errors
/// Returns [`SimTimeout`] if the cluster deadlocks or exceeds its cycle
/// budget (a bug).
pub fn run_cluster_csrmv_with<I: KernelIndex>(
    variant: Variant,
    m: &CsrMatrix<I>,
    x: &[f64],
    params: ClusterParams,
) -> Result<ClusterCsrmvRun, SimTimeout> {
    let plan = ClusterCsrmvPlan::new(m, params.n_workers as u32);
    let program = build_cluster_csrmv::<I>(variant, &plan);
    let mut cluster = Cluster::new(program, params);
    plan.marshal(&mut cluster, m, x);
    let budget = 1_000_000 + 32 * m.nnz() as u64 + 512 * m.nrows() as u64;
    let summary = cluster.run(budget)?;
    assert!(summary.traps.is_empty(), "cluster cores trapped: {:?}", summary.traps);
    Ok(ClusterCsrmvRun { y: plan.read_y(&cluster), summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_sparse::dense::allclose;
    use issr_sparse::{gen, reference};

    fn check<I: KernelIndex>(variant: Variant, nrows: usize, ncols: usize, nnz: usize, seed: u64) {
        let mut rng = gen::rng(seed);
        let m = gen::csr_uniform::<I>(&mut rng, nrows, ncols, nnz);
        let x = gen::dense_vector(&mut rng, ncols);
        let run = run_cluster_csrmv(variant, &m, &x).expect("cluster run finishes");
        let expect = reference::csrmv(&m, &x);
        assert!(
            allclose(&run.y, &expect, 1e-12, 1e-12),
            "{variant} cluster {nrows}x{ncols} nnz={nnz}"
        );
    }

    #[test]
    fn issr_single_block_matches_reference() {
        check::<u16>(Variant::Issr, 64, 128, 600, 50);
        check::<u32>(Variant::Issr, 64, 128, 600, 51);
    }

    #[test]
    fn base_single_block_matches_reference() {
        check::<u16>(Variant::Base, 64, 128, 600, 52);
    }

    #[test]
    fn multi_block_double_buffering_matches_reference() {
        // > 6144 elements forces several blocks through both buffers.
        check::<u16>(Variant::Issr, 400, 256, 16_000, 53);
    }

    #[test]
    fn multi_block_base_matches_reference() {
        check::<u16>(Variant::Base, 400, 256, 16_000, 54);
    }

    #[test]
    fn empty_and_unbalanced_rows() {
        // Rows 0 and 5 dense, everything else empty; fewer rows than cores.
        let mut triplets = Vec::new();
        for j in 0..40 {
            triplets.push((0, j, j as f64 + 1.0));
            triplets.push((5, (j * 3) % 64, 0.5 * j as f64));
        }
        let m = CsrMatrix::<u16>::from_triplets(6, 64, &triplets);
        let x: Vec<f64> = (0..64).map(|i| f64::from(i as u32) * 0.25).collect();
        let run = run_cluster_csrmv(Variant::Issr, &m, &x).unwrap();
        assert!(allclose(&run.y, &reference::csrmv(&m, &x), 1e-12, 1e-12));
    }

    /// Fig. 4c's headline: the ISSR-16 cluster kernel beats BASE by a
    /// large factor on reasonably dense matrices.
    #[test]
    fn cluster_speedup_on_dense_rows() {
        let mut rng = gen::rng(60);
        let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, 256, 512, 64);
        let x = gen::dense_vector(&mut rng, 512);
        let base = run_cluster_csrmv(Variant::Base, &m, &x).unwrap();
        let issr = run_cluster_csrmv(Variant::Issr, &m, &x).unwrap();
        let speedup = issr_trace::ratio(base.summary.cycles as f64, issr.summary.cycles as f64);
        assert!(
            speedup > 3.0 && speedup < 7.3,
            "cluster ISSR-16 speedup {speedup:.2} out of plausible band"
        );
        // Bank conflicts must be visible in the ISSR run (random gathers).
        assert!(issr.summary.tcdm_stats.conflicts > 0);
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use issr_sparse::gen;

    #[test]
    #[ignore = "calibration probe"]
    fn probe_cluster_numbers() {
        for row_nnz in [1usize, 4, 16, 64, 128] {
            let mut rng = gen::rng(99);
            let nrows = 512;
            let m = gen::csr_clustered::<u16>(
                &mut rng,
                nrows,
                1024,
                row_nnz,
                (row_nnz * 4).clamp(16, 1024),
            );
            let x = gen::dense_vector(&mut rng, 1024);
            let base = run_cluster_csrmv(Variant::Base, &m, &x).unwrap();
            let issr = run_cluster_csrmv(Variant::Issr, &m, &x).unwrap();
            let speedup = issr_trace::ratio(base.summary.cycles as f64, issr.summary.cycles as f64);
            let w0 = &issr.summary.worker_metrics[0];
            println!(
                "nnz/row {row_nnz:4}: BASE {:8} ISSR {:8} speedup {speedup:.2} peak_util {:.3} cluster_util {:.3} conflicts {} dma_busy {} w0_roi {} w0_fpustall {} w0_fmadds {}",
                base.summary.cycles, issr.summary.cycles,
                issr.summary.peak_worker_utilization(),
                issr.summary.cluster_utilization(),
                issr.summary.tcdm_stats.conflicts,
                issr.summary.dma_stats.busy_cycles,
                w0.roi.cycles, w0.roi.fpu_stall, w0.roi.fmadds,
            );
        }
    }
}
