//! Trap-path tests: malformed SpAcc/joiner configuration words must
//! latch a structured [`Trap`]/[`TrapCause::CfgFault`] that surfaces
//! through `RunSummary.trap` (single CC) and `ClusterSummary.traps`
//! (cluster) — and *mid-stream* failures (row-buffer overflow at the
//! capacity boundary, unsorted feeds, drain stalls, port conflicts)
//! must latch a [`TrapCause::StreamFault`] the same way: the simulator
//! drains and reports instead of panicking, and sibling harts in a
//! cluster finish bit-identically.

use issr_cluster::cluster::{Cluster, ClusterParams};
use issr_core::cfg::{
    acc_cfg_word, acc_count_cfg_word, cfg_addr, join_cfg_word, reg as sreg, JoinerMode,
};
use issr_core::fault::{StreamFaultKind, StreamUnit};
use issr_core::serializer::IndexSize;
use issr_core::CfgFault;
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;
use issr_mem::map::TCDM_BASE;
use issr_snitch::cc::SingleCcSim;
use issr_snitch::core::TrapCause;

/// Runs `program` on the sparse-sparse single-CC setup and returns the
/// latched trap cause (the run itself must complete — not panic).
fn run_to_trap(program: Program) -> TrapCause {
    let mut sim = SingleCcSim::with_joiner(program);
    let summary = sim.run(10_000).expect("trapped runs drain and finish");
    summary.trap.expect("malformed cfg word must latch a trap").cause
}

#[test]
fn bad_lane_write_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, 1);
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 7)); // lane 7 does not exist
    a.halt();
    assert_eq!(
        run_to_trap(a.finish().unwrap()),
        TrapCause::CfgFault(CfgFault::BadLane { lane: 7 })
    );
}

#[test]
fn bad_lane_read_traps() {
    let mut a = Assembler::new();
    a.scfgri(R::T0, cfg_addr(sreg::STATUS, 3));
    a.halt();
    assert_eq!(
        run_to_trap(a.finish().unwrap()),
        TrapCause::CfgFault(CfgFault::BadLane { lane: 3 })
    );
}

#[test]
fn zero_capacity_feed_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, 4);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::ACC_BUF_CAP, 0)); // zero-capacity buffer
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    a.halt();
    assert_eq!(run_to_trap(a.finish().unwrap()), TrapCause::CfgFault(CfgFault::ZeroCapacity));
}

#[test]
fn count_mode_drain_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0)); // symbolic mode
    a.li_addr(R::T0, TCDM_BASE + 0x2000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_VAL_OUT, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_DRAIN, 0)); // nothing to drain
    a.halt();
    assert_eq!(run_to_trap(a.finish().unwrap()), TrapCause::CfgFault(CfgFault::CountModeDrain));
}

#[test]
fn missing_hardware_launches_trap() {
    // SpAcc feed on the paper streamer (no sparse accumulator).
    let mut a = Assembler::new();
    a.li(R::T0, 1);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    a.halt();
    let mut sim = SingleCcSim::new(a.finish().unwrap());
    let summary = sim.run(10_000).unwrap();
    assert_eq!(summary.trap.unwrap().cause, TrapCause::CfgFault(CfgFault::NoSpAcc));
    // Joiner launch on the paper streamer (no index joiner).
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Union, IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::RPTR[0], 0));
    a.halt();
    let mut sim = SingleCcSim::new(a.finish().unwrap());
    let summary = sim.run(10_000).unwrap();
    assert_eq!(summary.trap.unwrap().cause, TrapCause::CfgFault(CfgFault::NoJoiner));
}

/// The trap is *surfaced*, not fatal: the trapped core parks, the rest
/// of the run's state stays inspectable, and instructions before the
/// fault committed.
#[test]
fn trap_preserves_prior_state() {
    let mut a = Assembler::new();
    a.li(R::S0, 42);
    a.li(R::T0, 5);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::ACC_BUF_CAP, 0));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0)); // faults here
    a.li(R::S0, 99); // must never execute
    a.halt();
    let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
    let summary = sim.run(10_000).unwrap();
    let trap = summary.trap.expect("fault latched");
    assert_eq!(trap.cause, TrapCause::CfgFault(CfgFault::ZeroCapacity));
    assert_eq!(sim.cc.core.reg(R::S0), 42, "pre-fault state commits, post-fault does not");
    // The Display form carries the fault for harness panic messages.
    assert!(trap.to_string().contains("zero-capacity"), "{trap}");
}

/// An indirection launch on the plain SSR lane (lane 0 of the paper /
/// sparse-sparse configurations) faults instead of panicking.
#[test]
fn indirection_on_ssr_lane_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(issr_core::cfg::idx_cfg_word(IndexSize::U16, 0)));
    a.scfgwi(R::T0, cfg_addr(sreg::IDX_CFG, 0));
    a.li(R::T0, 3);
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 0)); // lane 0 is a plain SSR
    a.halt();
    assert_eq!(
        run_to_trap(a.finish().unwrap()),
        TrapCause::CfgFault(CfgFault::NoIndirection { lane: 0 })
    );
}

/// A joiner-enabled pointer write outside lane 0's launch register
/// (here: lane 1) faults instead of tripping the lane's invariant.
#[test]
fn joiner_launch_outside_lane0_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Intersect, IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 1)); // lane 1's shadow
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 1));
    a.halt();
    assert_eq!(
        run_to_trap(a.finish().unwrap()),
        TrapCause::CfgFault(CfgFault::BadJoinerLaunch { lane: 1 })
    );
}

// ---- mid-stream structured faults ----

/// A program running one count-only (symbolic) SpAcc feed of `count`
/// distinct indices against an `ACC_BUF_CAP` of `cap`, then spinning on
/// completion.
fn symbolic_feed_program(cap: u32, count: u32, idx_base: u32) -> Program {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li(R::T0, i64::from(cap));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_BUF_CAP, 0));
    a.li(R::T0, i64::from(count));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.li_addr(R::T0, idx_base);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    let spin = a.bind_label();
    a.scfgri(R::T1, cfg_addr(sreg::ACC_STATUS, 0));
    a.andi(R::T1, R::T1, 1);
    a.beqz(R::T1, spin);
    a.halt();
    a.finish().unwrap()
}

/// Overflow at the capacity boundary: `cap - 1` and `cap` distinct
/// indices complete cleanly; `cap + 1` latches `Overflow { cap }` as a
/// `StreamFault` trap — and in every case the run *finishes*.
#[test]
fn spacc_overflow_at_capacity_boundary() {
    let cap = 8u32;
    let idx_base = TCDM_BASE + 0x1000;
    for count in [cap - 1, cap, cap + 1] {
        let mut sim = SingleCcSim::with_joiner(symbolic_feed_program(cap, count, idx_base));
        let idcs: Vec<u16> = (0..count as u16).map(|i| i * 3).collect();
        sim.mem.array_mut().store_u16_slice(idx_base, &idcs);
        let summary = sim.run(20_000).expect("boundary runs must finish");
        if count <= cap {
            assert!(summary.trap.is_none(), "count {count} fits capacity {cap}");
        } else {
            let trap = summary.trap.expect("over-capacity feed must trap");
            match trap.cause {
                TrapCause::StreamFault(fault) => {
                    assert_eq!(fault.unit, StreamUnit::SpAcc);
                    assert_eq!(fault.kind, StreamFaultKind::Overflow { cap });
                }
                other => panic!("expected a stream fault, got {other:?}"),
            }
            assert!(trap.to_string().contains("overflow"), "{trap}");
        }
    }
}

/// A decreasing index inside one feed latches `Unsorted` mid-stream.
#[test]
fn spacc_unsorted_feed_traps() {
    let idx_base = TCDM_BASE + 0x1000;
    let mut sim = SingleCcSim::with_joiner(symbolic_feed_program(64, 3, idx_base));
    sim.mem.array_mut().store_u16_slice(idx_base, &[2, 9, 3]);
    let summary = sim.run(20_000).expect("the faulted run still finishes");
    let trap = summary.trap.expect("unsorted feed must trap");
    assert_eq!(
        trap.cause,
        TrapCause::StreamFault(issr_core::StreamFault {
            unit: StreamUnit::SpAcc,
            kind: StreamFaultKind::Unsorted { prev: 9, next: 3 },
        })
    );
}

/// A value-mode feed whose write stream never delivers (the program
/// drives no FPU writes at all) trips the SpAcc progress watchdog: the
/// former hang becomes a latched `Stall` fault and the run finishes.
#[test]
fn spacc_drain_stall_latches_watchdog_fault() {
    let idx_base = TCDM_BASE + 0x1000;
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li(R::T0, 2);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.li_addr(R::T0, idx_base);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    let spin = a.bind_label();
    a.scfgri(R::T1, cfg_addr(sreg::ACC_STATUS, 0));
    a.andi(R::T1, R::T1, 1);
    a.beqz(R::T1, spin);
    a.halt();
    let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
    sim.cc.streamer.set_spacc_watchdog(300);
    sim.mem.array_mut().store_u16_slice(idx_base, &[4, 7]);
    let summary = sim.run(20_000).expect("the stall must not hang the simulation");
    let trap = summary.trap.expect("starved feed must trap");
    match trap.cause {
        TrapCause::StreamFault(fault) => {
            assert_eq!(fault.unit, StreamUnit::SpAcc);
            assert!(matches!(fault.kind, StreamFaultKind::Stall { cycles } if cycles >= 300));
        }
        other => panic!("expected a stall stream fault, got {other:?}"),
    }
}

/// A joiner job whose outputs are never consumed (the program launches
/// it and halts) trips the joiner watchdog instead of hanging.
#[test]
fn joiner_feed_underrun_latches_watchdog_fault() {
    let idx_a = TCDM_BASE + 0x1000;
    let idx_b = TCDM_BASE + 0x2000;
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Intersect, IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x4000);
    a.scfgwi(R::T0, cfg_addr(sreg::DATA_BASE, 0));
    a.li_addr(R::T0, idx_b);
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_IDX_B, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x8000);
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_DATA_B, 0));
    a.li(R::T0, 16);
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_A, 0));
    a.li(R::T0, 16);
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_B, 0));
    a.li_addr(R::T0, idx_a);
    a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 0)); // launch, never consume
    a.halt();
    let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
    sim.cc.streamer.set_joiner_watchdog(200);
    let idcs: Vec<u16> = (0..16).collect();
    sim.mem.array_mut().store_u16_slice(idx_a, &idcs);
    sim.mem.array_mut().store_u16_slice(idx_b, &idcs);
    let summary = sim.run(20_000).expect("the abandoned joiner must not hang");
    let trap = summary.trap.expect("unconsumed joiner must trap");
    match trap.cause {
        TrapCause::StreamFault(fault) => {
            assert_eq!(fault.unit, StreamUnit::Joiner);
            assert!(matches!(fault.kind, StreamFaultKind::Stall { .. }));
        }
        other => panic!("expected a joiner stall fault, got {other:?}"),
    }
}

/// A plain lane job launched on lane 1 while the SpAcc owns its port
/// is a mid-stream port conflict — latched, not panicked.
#[test]
fn lane_job_on_spacc_port_traps() {
    let idx_base = TCDM_BASE + 0x1000;
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li(R::T0, 4);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.li_addr(R::T0, idx_base);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0)); // stays busy: no values
    a.li(R::T0, 3);
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 1));
    a.li(R::T0, 8);
    a.scfgwi(R::T0, cfg_addr(sreg::STRIDES[0], 1));
    a.li_addr(R::T0, TCDM_BASE + 0x4000);
    a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 1)); // lane 1: the SpAcc's port
    a.halt();
    let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
    sim.mem.array_mut().store_u16_slice(idx_base, &[1, 2, 3, 4]);
    let summary = sim.run(20_000).expect("the conflict drains, not deadlocks");
    let trap = summary.trap.expect("port conflict must trap");
    assert_eq!(
        trap.cause,
        TrapCause::StreamFault(issr_core::StreamFault {
            unit: StreamUnit::Lane(1),
            kind: StreamFaultKind::PortConflict,
        })
    );
}

/// On the cluster, a mid-stream overflow on one hart parks only that
/// hart: the survivors' results are bit-identical to a run where no
/// hart faults, and `ClusterSummary.traps` names exactly the faulting
/// worker with the overflow cause.
#[test]
fn cluster_stream_fault_isolates_to_one_hart() {
    let idx_base = TCDM_BASE + 0x1000;
    let out = TCDM_BASE + 0x80;
    let cap = 4u32;
    // Every worker h runs a count-only feed of `count(h)` indices and
    // stores its ACC_NNZ readback; hart 0 optionally exceeds the cap.
    let build = |hart0_count: u32| {
        let mut a = Assembler::new();
        a.csrr(R::A7, Csr::MHartId);
        let worker = a.new_label();
        a.li(R::T0, 8);
        a.blt(R::A7, R::T0, worker);
        a.halt(); // the DMCC has no SpAcc
        a.bind(worker);
        a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
        a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
        a.li(R::T0, i64::from(cap));
        a.scfgwi(R::T0, cfg_addr(sreg::ACC_BUF_CAP, 0));
        // count = hart0_count for hart 0, 3 for everyone else.
        let other = a.new_label();
        a.li(R::T1, 3);
        a.bnez(R::A7, other);
        a.li(R::T1, i64::from(hart0_count));
        a.bind(other);
        a.scfgwi(R::T1, cfg_addr(sreg::ACC_COUNT, 0));
        a.li_addr(R::T0, idx_base);
        a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
        let spin = a.bind_label();
        a.scfgri(R::T1, cfg_addr(sreg::ACC_STATUS, 0));
        a.andi(R::T1, R::T1, 1);
        a.beqz(R::T1, spin);
        a.scfgri(R::T2, cfg_addr(sreg::ACC_NNZ, 0));
        a.slli(R::T3, R::A7, 2);
        a.li_addr(R::T4, out);
        a.add(R::T3, R::T3, R::T4);
        a.sw(R::T2, R::T3, 0);
        a.halt();
        a.finish().unwrap()
    };
    let run = |hart0_count: u32| {
        let params = ClusterParams { sssr: true, ..ClusterParams::default() };
        let mut cluster = Cluster::new(build(hart0_count), params);
        let idcs: Vec<u16> = (0..8).map(|i| i * 5).collect();
        cluster.tcdm.array_mut().store_u16_slice(idx_base, &idcs);
        let summary = cluster.run(200_000).expect("cluster drains despite the fault");
        let outs: Vec<u32> = (0..8).map(|h| cluster.tcdm.array().load_u32(out + h * 4)).collect();
        (summary, outs)
    };
    let (clean_summary, clean_outs) = run(3); // everyone fits
    assert!(clean_summary.traps.is_empty());
    let (summary, outs) = run(cap + 1); // hart 0 overflows
    assert_eq!(summary.traps.len(), 1, "exactly the faulting worker traps");
    assert_eq!(summary.traps[0].hartid, 0);
    match summary.traps[0].cause {
        TrapCause::StreamFault(fault) => {
            assert_eq!(fault.unit, StreamUnit::SpAcc);
            assert_eq!(fault.kind, StreamFaultKind::Overflow { cap });
        }
        other => panic!("expected overflow, got {other:?}"),
    }
    assert_eq!(outs[0], 0, "the faulted hart never stores its marker");
    assert_eq!(outs[1..], clean_outs[1..], "survivors are bit-identical to the clean run");
}

/// The misaligned-drain launch latches a `CfgFault` (like every other
/// malformed cfg word), not an abort inside the unit.
#[test]
fn misaligned_drain_traps() {
    let mut a = Assembler::new();
    a.li_addr(R::T0, TCDM_BASE + 0x2004); // not word aligned
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_VAL_OUT, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_DRAIN, 0));
    a.halt();
    assert_eq!(
        run_to_trap(a.finish().unwrap()),
        TrapCause::CfgFault(CfgFault::MisalignedDrain {
            idx_out: TCDM_BASE + 0x1000,
            val_out: TCDM_BASE + 0x2004,
        })
    );
}

/// On the cluster, one worker's malformed cfg word parks only that
/// worker: the others finish their work and `ClusterSummary.traps`
/// names the trapped hart.
#[test]
fn cluster_surfaces_per_worker_traps() {
    let out = TCDM_BASE + 0x80;
    let mut a = Assembler::new();
    a.csrr(R::A7, Csr::MHartId);
    let good = a.new_label();
    a.bnez(R::A7, good);
    // Hart 0: count-mode drain fault.
    a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_DRAIN, 0));
    a.halt();
    // Everyone else: stamp a completion marker.
    a.bind(good);
    a.slli(R::T0, R::A7, 2);
    a.li_addr(R::T1, out);
    a.add(R::T0, R::T0, R::T1);
    a.li(R::T2, 1);
    a.sw(R::T2, R::T0, 0);
    a.halt();
    let params = ClusterParams { sssr: true, ..ClusterParams::default() };
    let mut cluster = Cluster::new(a.finish().unwrap(), params);
    let summary = cluster.run(100_000).expect("cluster drains despite the trap");
    assert_eq!(summary.traps.len(), 1, "exactly the faulting worker traps");
    assert_eq!(summary.traps[0].hartid, 0);
    assert_eq!(summary.traps[0].cause, TrapCause::CfgFault(CfgFault::CountModeDrain));
    for h in 1..8u32 {
        assert_eq!(cluster.tcdm.array().load_u32(out + h * 4), 1, "hart {h} finished");
    }
}
