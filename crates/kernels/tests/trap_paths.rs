//! Trap-path tests: malformed SpAcc/joiner configuration words must
//! latch a structured [`Trap`]/[`TrapCause::CfgFault`] that surfaces
//! through `RunSummary.trap` (single CC) and `ClusterSummary.traps`
//! (cluster) — the simulator drains and reports instead of panicking.

use issr_cluster::cluster::{Cluster, ClusterParams};
use issr_core::cfg::{acc_count_cfg_word, cfg_addr, join_cfg_word, reg as sreg, JoinerMode};
use issr_core::serializer::IndexSize;
use issr_core::CfgFault;
use issr_isa::asm::{Assembler, Program};
use issr_isa::reg::IntReg as R;
use issr_isa::Csr;
use issr_mem::map::TCDM_BASE;
use issr_snitch::cc::SingleCcSim;
use issr_snitch::core::TrapCause;

/// Runs `program` on the sparse-sparse single-CC setup and returns the
/// latched trap cause (the run itself must complete — not panic).
fn run_to_trap(program: Program) -> TrapCause {
    let mut sim = SingleCcSim::with_joiner(program);
    let summary = sim.run(10_000).expect("trapped runs drain and finish");
    summary.trap.expect("malformed cfg word must latch a trap").cause
}

#[test]
fn bad_lane_write_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, 1);
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 7)); // lane 7 does not exist
    a.halt();
    assert_eq!(
        run_to_trap(a.finish().unwrap()),
        TrapCause::CfgFault(CfgFault::BadLane { lane: 7 })
    );
}

#[test]
fn bad_lane_read_traps() {
    let mut a = Assembler::new();
    a.scfgri(R::T0, cfg_addr(sreg::STATUS, 3));
    a.halt();
    assert_eq!(
        run_to_trap(a.finish().unwrap()),
        TrapCause::CfgFault(CfgFault::BadLane { lane: 3 })
    );
}

#[test]
fn zero_capacity_feed_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, 4);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::ACC_BUF_CAP, 0)); // zero-capacity buffer
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    a.halt();
    assert_eq!(run_to_trap(a.finish().unwrap()), TrapCause::CfgFault(CfgFault::ZeroCapacity));
}

#[test]
fn count_mode_drain_traps() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0)); // symbolic mode
    a.li_addr(R::T0, TCDM_BASE + 0x2000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_VAL_OUT, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_DRAIN, 0)); // nothing to drain
    a.halt();
    assert_eq!(run_to_trap(a.finish().unwrap()), TrapCause::CfgFault(CfgFault::CountModeDrain));
}

#[test]
fn missing_hardware_launches_trap() {
    // SpAcc feed on the paper streamer (no sparse accumulator).
    let mut a = Assembler::new();
    a.li(R::T0, 1);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    a.halt();
    let mut sim = SingleCcSim::new(a.finish().unwrap());
    let summary = sim.run(10_000).unwrap();
    assert_eq!(summary.trap.unwrap().cause, TrapCause::CfgFault(CfgFault::NoSpAcc));
    // Joiner launch on the paper streamer (no index joiner).
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Union, IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::RPTR[0], 0));
    a.halt();
    let mut sim = SingleCcSim::new(a.finish().unwrap());
    let summary = sim.run(10_000).unwrap();
    assert_eq!(summary.trap.unwrap().cause, TrapCause::CfgFault(CfgFault::NoJoiner));
}

/// The trap is *surfaced*, not fatal: the trapped core parks, the rest
/// of the run's state stays inspectable, and instructions before the
/// fault committed.
#[test]
fn trap_preserves_prior_state() {
    let mut a = Assembler::new();
    a.li(R::S0, 42);
    a.li(R::T0, 5);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::ACC_BUF_CAP, 0));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0)); // faults here
    a.li(R::S0, 99); // must never execute
    a.halt();
    let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
    let summary = sim.run(10_000).unwrap();
    let trap = summary.trap.expect("fault latched");
    assert_eq!(trap.cause, TrapCause::CfgFault(CfgFault::ZeroCapacity));
    assert_eq!(sim.cc.core.reg(R::S0), 42, "pre-fault state commits, post-fault does not");
    // The Display form carries the fault for harness panic messages.
    assert!(trap.to_string().contains("zero-capacity"), "{trap}");
}

/// On the cluster, one worker's malformed cfg word parks only that
/// worker: the others finish their work and `ClusterSummary.traps`
/// names the trapped hart.
#[test]
fn cluster_surfaces_per_worker_traps() {
    let out = TCDM_BASE + 0x80;
    let mut a = Assembler::new();
    a.csrr(R::A7, Csr::MHartId);
    let good = a.new_label();
    a.bnez(R::A7, good);
    // Hart 0: count-mode drain fault.
    a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_DRAIN, 0));
    a.halt();
    // Everyone else: stamp a completion marker.
    a.bind(good);
    a.slli(R::T0, R::A7, 2);
    a.li_addr(R::T1, out);
    a.add(R::T0, R::T0, R::T1);
    a.li(R::T2, 1);
    a.sw(R::T2, R::T0, 0);
    a.halt();
    let params = ClusterParams { sssr: true, ..ClusterParams::default() };
    let mut cluster = Cluster::new(a.finish().unwrap(), params);
    let summary = cluster.run(100_000).expect("cluster drains despite the trap");
    assert_eq!(summary.traps.len(), 1, "exactly the faulting worker traps");
    assert_eq!(summary.traps[0].hartid, 0);
    assert_eq!(summary.traps[0].cause, TrapCause::CfgFault(CfgFault::CountModeDrain));
    for h in 1..8u32 {
        assert_eq!(cluster.tcdm.array().load_u32(out + h * 4), 1, "hart {h} finished");
    }
}
