//! Property tests for the device-owned cluster SpGEMM: for random
//! sparse operands, every worker count (1/2/4/8) and both index widths,
//! the on-device symbolic → prefix-sum → numeric flow must produce a
//! CSR product identical to the host oracle and to the single-core ISSR
//! kernel — including empty rows, all-empty operands and single-row
//! matrices.

use issr_kernels::cluster_spgemm::{run_cluster_spgemm, run_cluster_spgemm_on};
use issr_kernels::spgemm::run_spgemm;
use issr_kernels::variant::Variant;
use issr_sparse::csr::CsrMatrix;
use issr_sparse::{gen, reference};
use proptest::prelude::*;

/// Runs one cluster configuration and checks it against the host
/// oracle bit for bit on structure and within fp tolerance on values.
fn check_cluster(
    a: &CsrMatrix<u32>,
    b: &CsrMatrix<u32>,
    n_workers: usize,
    wide: bool,
    variant: Variant,
) {
    let expect = reference::spgemm(a, b).with_index_width::<u32>();
    let run = if wide {
        run_cluster_spgemm_on(variant, a, b, n_workers, true).expect("cluster run finishes")
    } else {
        let (a16, b16) = (a.with_index_width::<u16>(), b.with_index_width::<u16>());
        run_cluster_spgemm_on(variant, &a16, &b16, n_workers, true).expect("cluster run finishes")
    };
    assert!(run.summary.traps.is_empty(), "unexpected traps: {:?}", run.summary.traps);
    assert_eq!(
        run.c.ptr(),
        expect.ptr(),
        "{variant} workers={n_workers} wide={wide}: device-owned row pointer"
    );
    assert_eq!(run.c.idcs(), expect.idcs(), "{variant} workers={n_workers} column indices");
    for (got, want) in run.c.vals().iter().zip(expect.vals()) {
        assert!(
            (got - want).abs() <= 1e-12 * want.abs().max(1.0),
            "{variant} workers={n_workers} wide={wide}: {got} vs {want}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random shapes and densities across every worker count and both
    /// index widths: the device-owned allocation must agree with the
    /// host oracle.
    #[test]
    fn cluster_matches_oracle_for_all_worker_counts(
        nrows in 1usize..12,
        inner in 1usize..12,
        ncols in 1usize..20,
        fill_a in 0usize..3,
        fill_b in 0usize..4,
        workers in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        wide in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let nnz_a = (nrows * fill_a).min(nrows * inner);
        let nnz_b = (inner * fill_b).min(inner * ncols);
        let a = gen::csr_uniform::<u32>(&mut rng, nrows, inner, nnz_a);
        let b = gen::csr_uniform::<u32>(&mut rng, inner, ncols, nnz_b);
        check_cluster(&a, &b, workers, wide, Variant::Issr);
    }

    /// The cluster product equals the single-core ISSR product exactly
    /// (same expansion order per row ⇒ bit-identical values), for any
    /// worker count.
    #[test]
    fn cluster_bit_matches_single_core_issr(
        nrows in 1usize..10,
        inner in 1usize..10,
        ncols in 1usize..16,
        fill_a in 1usize..3,
        fill_b in 1usize..4,
        workers in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed ^ 0xD00D);
        let a = gen::csr_uniform::<u16>(&mut rng, nrows, inner, nrows * fill_a);
        let b = gen::csr_uniform::<u16>(&mut rng, inner, ncols, inner * fill_b);
        let single = run_spgemm(Variant::Issr, &a, &b).expect("single-core run finishes");
        let cluster = run_cluster_spgemm_on(Variant::Issr, &a, &b, workers, true)
            .expect("cluster run finishes");
        prop_assert_eq!(cluster.c.ptr(), single.c.ptr());
        prop_assert_eq!(cluster.c.idcs(), single.c.idcs());
        prop_assert_eq!(cluster.c.vals(), single.c.vals(), "bit-identical values");
    }

    /// The BASE cluster runs the same device-owned two-pass flow.
    #[test]
    fn base_cluster_matches_oracle(
        nrows in 1usize..8,
        inner in 1usize..8,
        ncols in 1usize..12,
        fill_a in 0usize..3,
        fill_b in 1usize..3,
        workers in prop_oneof![Just(1usize), Just(3), Just(8)],
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed ^ 0xBA5E);
        let a = gen::csr_uniform::<u32>(&mut rng, nrows, inner, nrows * fill_a);
        let b = gen::csr_uniform::<u32>(&mut rng, inner, ncols, inner * fill_b);
        check_cluster(&a, &b, workers, false, Variant::Base);
        check_cluster(&a, &b, workers, true, Variant::Base);
    }
}

/// All-empty operands: the symbolic phase counts zero everywhere, the
/// scan yields an all-zero row pointer, and the readback validates.
#[test]
fn all_empty_matrices() {
    for (nnz_a, nnz_b) in [(0, 0), (0, 8), (8, 0)] {
        let mut rng = gen::rng(7_000 + nnz_a as u64 * 10 + nnz_b as u64);
        let a = gen::csr_uniform::<u32>(&mut rng, 6, 8, nnz_a);
        let b = gen::csr_uniform::<u32>(&mut rng, 8, 10, nnz_b);
        for workers in [1usize, 2, 8] {
            check_cluster(&a, &b, workers, true, Variant::Issr);
            check_cluster(&a, &b, workers, false, Variant::Issr);
            check_cluster(&a, &b, workers, true, Variant::Base);
        }
    }
}

/// Single-row matrices: one worker owns the only row, every other
/// worker halts before the scan and must not wedge the barrier.
#[test]
fn single_row_matrices() {
    let a = CsrMatrix::<u32>::from_triplets(1, 6, &[(0, 1, 2.0), (0, 4, -1.5)]);
    let b_triplets: Vec<(usize, usize, f64)> = (0..6)
        .flat_map(|k| (0..3).map(move |j| (k, (k * 2 + j) % 7, 0.5 * (k + j + 1) as f64)))
        .collect();
    let b = CsrMatrix::<u32>::from_triplets(6, 7, &b_triplets);
    for workers in [1usize, 2, 4, 8] {
        check_cluster(&a, &b, workers, true, Variant::Issr);
        check_cluster(&a, &b, workers, false, Variant::Issr);
        check_cluster(&a, &b, workers, true, Variant::Base);
    }
}

/// Interleaved empty rows in A (and rows of B that nothing references):
/// the device-computed row pointer must carry the zero-length rows
/// through the prefix sum unchanged.
#[test]
fn empty_rows_survive_the_prefix_sum() {
    // Rows 0, 2, 5 empty; rows 1, 3, 4, 6 populated.
    let triplets = [
        (1usize, 0usize, 1.0f64),
        (1, 3, 2.0),
        (3, 1, -1.0),
        (4, 2, 0.5),
        (4, 3, 1.5),
        (4, 0, 3.0),
        (6, 1, -2.5),
    ];
    let a = CsrMatrix::<u32>::from_triplets(7, 4, &triplets);
    let b_triplets: Vec<(usize, usize, f64)> = (0..4)
        .flat_map(|k| (0..4).map(move |j| (k, (k + j * 3) % 9, (k * 4 + j) as f64 * 0.25)))
        .collect();
    let b = CsrMatrix::<u32>::from_triplets(4, 9, &b_triplets);
    for workers in [1usize, 2, 4, 8] {
        check_cluster(&a, &b, workers, true, Variant::Issr);
        check_cluster(&a, &b, workers, false, Variant::Issr);
        check_cluster(&a, &b, workers, true, Variant::Base);
    }
    // The default entry point (8 workers, double-buffered) agrees too.
    let run = run_cluster_spgemm(Variant::Issr, &a, &b).unwrap();
    let expect = reference::spgemm(&a, &b).with_index_width::<u32>();
    assert_eq!(run.c.ptr(), expect.ptr());
}
