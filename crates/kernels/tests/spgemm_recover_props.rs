//! Property tests for trap-driven grow-and-retry SpGEMM: on rows
//! *engineered to overflow* an optimistic SpAcc row-buffer capacity,
//! the overflow latches as a structured `StreamFault`, the harness
//! grows `ACC_BUF_CAP` and replays, and the final product is
//! oracle-identical — for the single-CC kernel and the cluster, across
//! index widths and worker counts. No input panics the simulator.

use issr_kernels::cluster_spgemm::run_cluster_spgemm_recover;
use issr_kernels::spgemm::run_spgemm_recover;
use issr_kernels::variant::Variant;
use issr_sparse::csr::CsrMatrix;
use issr_sparse::{gen, reference};
use proptest::prelude::*;

/// Checks one recovered product against the host oracle (bit-identical
/// structure, fp-tolerant values).
fn check_against_oracle(c: &CsrMatrix<u32>, a: &CsrMatrix<u32>, b: &CsrMatrix<u32>, label: &str) {
    let expect = reference::spgemm(a, b).with_index_width::<u32>();
    assert_eq!(c.ptr(), expect.ptr(), "{label}: row pointers");
    assert_eq!(c.idcs(), expect.idcs(), "{label}: column indices");
    for (got, want) in c.vals().iter().zip(expect.vals()) {
        assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0), "{label}: {got} vs {want}");
    }
}

/// Operands whose product rows are dense enough to overflow a small
/// capacity: B rows carry `b_row_nnz` nonzeros, so a C row reaches up
/// to `a_row_nnz * b_row_nnz` distinct columns.
fn engineered(
    seed: u64,
    nrows: usize,
    inner: usize,
    ncols: usize,
    a_row_nnz: usize,
    b_row_nnz: usize,
) -> (CsrMatrix<u32>, CsrMatrix<u32>) {
    let mut rng = gen::rng(seed);
    let a = gen::csr_fixed_row_nnz::<u32>(&mut rng, nrows, inner, a_row_nnz);
    let b = gen::csr_fixed_row_nnz::<u32>(&mut rng, inner, ncols, b_row_nnz);
    (a, b)
}

/// The deterministic showcase: a tiny initial capacity against rows
/// that need the full output width forces several doubling retries,
/// and the result still matches the oracle exactly.
#[test]
fn single_cc_recovers_from_engineered_overflow() {
    let (a, b) = engineered(0xEC0, 6, 16, 48, 4, 48); // B rows fully dense
    let rec = run_spgemm_recover(Variant::Issr, &a, &b, 3).expect("recovery finishes");
    assert!(rec.retries >= 3, "cap 3 must double several times, got {}", rec.retries);
    assert!(rec.final_cap <= 48, "cap is clamped to the output width");
    check_against_oracle(&rec.run.c, &a, &b, "single-CC grow-and-retry");
}

/// A capacity that already fits never retries (the optimistic fast
/// path is free when optimism was right).
#[test]
fn sufficient_capacity_never_retries() {
    let (a, b) = engineered(0xEC1, 6, 12, 24, 2, 4);
    let rec = run_spgemm_recover(Variant::Issr, &a, &b, 24).expect("run finishes");
    assert_eq!(rec.retries, 0);
    assert_eq!(rec.final_cap, 24);
    check_against_oracle(&rec.run.c, &a, &b, "no-retry fast path");
}

/// The cluster flow: a worker whose stripe overflows parks and is
/// masked out of the barrier; the retry with a grown capacity matches
/// the oracle. The symbolic (count-only) pass traps first, before any
/// numeric value traffic.
#[test]
fn cluster_recovers_from_engineered_overflow() {
    let (a, b) = engineered(0xEC2, 12, 16, 40, 3, 20);
    let (a16, b16) = (a.with_index_width::<u16>(), b.with_index_width::<u16>());
    let rec = run_cluster_spgemm_recover(Variant::Issr, &a16, &b16, 4, 4)
        .expect("cluster recovery finishes");
    assert!(rec.retries >= 1, "cap 4 must overflow at least once");
    check_against_oracle(&rec.run.c, &a, &b, "cluster grow-and-retry");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random shapes, densities, initial capacities and index widths:
    /// grow-and-retry always converges to the oracle product, whether
    /// or not the initial capacity overflows.
    #[test]
    fn recovery_matches_oracle_on_random_workloads(
        nrows in 1usize..8,
        inner in 1usize..10,
        ncols in 4usize..40,
        a_row_nnz in 1usize..4,
        b_fill in 1usize..4,
        initial_cap in 1u32..12,
        wide in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let b_row_nnz = (ncols * b_fill / 4).max(1).min(ncols);
        let a_row_nnz = a_row_nnz.min(inner);
        let (a, b) = engineered(seed, nrows, inner, ncols, a_row_nnz, b_row_nnz);
        if wide {
            let rec = run_spgemm_recover(Variant::Issr, &a, &b, initial_cap)
                .expect("recovery finishes");
            check_against_oracle(&rec.run.c, &a, &b, "random wide");
        } else {
            let (a16, b16) = (a.with_index_width::<u16>(), b.with_index_width::<u16>());
            let rec = run_spgemm_recover(Variant::Issr, &a16, &b16, initial_cap)
                .expect("recovery finishes");
            check_against_oracle(&rec.run.c, &a, &b, "random narrow");
        }
    }

    /// The cluster version under random worker counts: every attempt
    /// either completes cleanly or traps only on recoverable overflow,
    /// and the converged product matches the oracle.
    #[test]
    fn cluster_recovery_matches_oracle(
        nrows in 1usize..10,
        inner in 1usize..8,
        ncols in 4usize..24,
        initial_cap in 1u32..6,
        workers in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        seed in any::<u64>(),
    ) {
        let (a, b) = engineered(seed, nrows, inner, ncols, 2.min(inner), (ncols / 2).max(1));
        let (a16, b16) = (a.with_index_width::<u16>(), b.with_index_width::<u16>());
        let rec = run_cluster_spgemm_recover(Variant::Issr, &a16, &b16, workers, initial_cap)
            .expect("cluster recovery finishes");
        check_against_oracle(&rec.run.c, &a, &b, "cluster random");
    }
}
