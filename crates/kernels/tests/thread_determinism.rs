//! Thread-count invariance of the system harness.
//!
//! The pooled system tick runs only cluster-local phases (cores, TCDM)
//! concurrently and replays the shared interconnect serially in grant
//! order, so every observable must be bit-identical at every thread
//! count: kernel outputs, cycle counts, stall-cause attribution tables,
//! and the Perfetto trace export. These tests pin that guarantee on
//! randomized CsrMV / SpGEMM / SpMSpV workloads.

use issr_kernels::cluster_spmspv::run_cluster_spmspv;
use issr_kernels::system_csrmv::run_system_csrmv_traced;
use issr_kernels::system_spgemm::{run_system_spgemm_planned, SystemSpgemmPlan};
use issr_kernels::variant::Variant;
use issr_sparse::gen;
use issr_system::system::SystemParams;

/// Thread counts under test; 8 exceeds the cluster count and exercises
/// the clamp.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn params(n_clusters: usize, threads: usize) -> SystemParams {
    SystemParams { n_clusters, threads, ..SystemParams::default() }
}

/// One run's complete observable footprint, bitwise.
#[derive(PartialEq, Debug)]
struct Fingerprint {
    out_bits: Vec<u64>,
    cycles: u64,
    attr: String,
    trace: String,
}

#[test]
fn system_csrmv_is_thread_count_invariant() {
    let mut rng = gen::rng(0x5eed_c5e1);
    let m = gen::csr_uniform::<u32>(&mut rng, 48, 64, 420);
    let x = gen::dense_vector(&mut rng, 64);
    let mut baseline: Option<(usize, Fingerprint)> = None;
    for t in THREADS {
        let (run, trace) =
            run_system_csrmv_traced::<u32>(Variant::Issr, &m, &x, params(4, t), 4096)
                .expect("system CsrMV completes");
        let fp = Fingerprint {
            out_bits: run.y.iter().map(|v| v.to_bits()).collect(),
            cycles: run.summary.cycles,
            attr: format!("{:?}", run.summary.clusters.iter().map(|c| &c.attr).collect::<Vec<_>>()),
            trace: trace.to_string(),
        };
        match &baseline {
            None => baseline = Some((t, fp)),
            Some((t0, fp0)) => {
                assert_eq!(fp0, &fp, "threads={t} diverged from threads={t0}");
            }
        }
    }
}

#[test]
fn system_spgemm_is_thread_count_invariant() {
    let mut rng = gen::rng(0x5eed_59e3);
    let a = gen::csr_fixed_row_nnz::<u32>(&mut rng, 24, 32, 6);
    let b = gen::csr_fixed_row_nnz::<u32>(&mut rng, 32, 28, 5);
    let n_workers = SystemParams::default().cluster.n_workers as u32;
    let mut baseline: Option<(usize, Fingerprint)> = None;
    for t in THREADS {
        let plan = SystemSpgemmPlan::new(Variant::Issr, &a, &b, n_workers);
        let run = run_system_spgemm_planned::<u32>(Variant::Issr, &a, &b, plan, params(4, t))
            .expect("system SpGEMM completes");
        let fp = Fingerprint {
            out_bits: run.c.vals().iter().map(|v| v.to_bits()).collect(),
            cycles: run.summary.cycles,
            attr: format!("{:?}", run.summary.clusters.iter().map(|c| &c.attr).collect::<Vec<_>>()),
            trace: format!("{:?}/{:?}", run.c.ptr(), run.c.idcs()),
        };
        match &baseline {
            None => baseline = Some((t, fp)),
            Some((t0, fp0)) => {
                assert_eq!(fp0, &fp, "threads={t} diverged from threads={t0}");
            }
        }
    }
}

/// The cluster harness has no pool, but the same dirty-set skipping
/// runs under it: randomized SpMSpV must stay bit-identical run to run.
#[test]
fn cluster_spmspv_is_run_to_run_deterministic() {
    let mut rng = gen::rng(0x5eed_535d);
    let m = gen::csr_uniform::<u32>(&mut rng, 40, 48, 300);
    let x = gen::sparse_vector::<u32>(&mut rng, 48, 12);
    let one = run_cluster_spmspv::<u32>(Variant::Issr, &m, &x).expect("SpMSpV completes");
    let two = run_cluster_spmspv::<u32>(Variant::Issr, &m, &x).expect("SpMSpV completes");
    let bits = |y: &[f64]| y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&one.y), bits(&two.y));
    assert_eq!(one.summary.cycles, two.summary.cycles);
    assert_eq!(format!("{:?}", one.summary.attr), format!("{:?}", two.summary.attr));
}
