//! # issr-snitch
//!
//! A cycle-level model of the Snitch core complex (CC): the tiny
//! single-issue RV32 integer core, its double-precision FPU subsystem
//! with the FREP hardware loop and register staggering, and the SSR/ISSR
//! streamer integration of §II-C — shared port for core + FPU + SSR,
//! exclusive port for the ISSR.
//!
//! [`cc::SingleCcSim`] reproduces the paper's single-core evaluation
//! setup: one CC against ideal single-cycle instruction and two-port
//! data memories.

#![forbid(unsafe_code)]

pub mod attr;
pub mod cc;
pub mod core;
pub mod fpu;
pub mod metrics;
pub mod params;
pub mod shared;

pub use attr::{CcAttribution, CcCauses};
pub use cc::{CoreComplex, RunSummary, SimTimeout, SingleCcSim, SINGLE_CC_ARENA};
pub use core::{SnitchCore, Trap, TrapCause};
pub use fpu::{FpOp, FpuSubsystem, IntWriteback};
pub use metrics::{Metrics, RoiCounters};
pub use params::CcParams;
pub use shared::SharedPort;
