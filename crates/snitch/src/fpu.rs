//! The FPU subsystem: offload queue, FREP sequencer, double-precision
//! pipeline, FP register file and scoreboard, and the FP load/store path.
//!
//! Snitch offloads every floating-point instruction (with any captured
//! integer operands) into this subsystem and keeps executing — the
//! *pseudo-dual-issue* behaviour the paper leans on: integer bookkeeping
//! for the next row overlaps the FPU stream of the current one.
//!
//! The FREP sequencer implements the paper's hardware loop: it captures
//! the next `n_insns` offloaded FP instructions while executing them
//! (iteration 0) and replays the buffer `max_rpt` more times without any
//! core involvement. *Register staggering* rotates operand registers
//! selected by the stagger mask through `stagger_count + 1` consecutive
//! registers per iteration, maintaining the parallel accumulators that
//! hide FMA latency (Listing 1).

use crate::metrics::Metrics;
use crate::params::CcParams;
use issr_core::streamer::Streamer;
use issr_isa::instr::{FpCmp, FpOp2, FpOp3, FrepKind, Instr, Stagger};
use issr_isa::reg::FpReg;
use issr_mem::port::{MemPort, MemReq};
use std::collections::VecDeque;

/// An offloaded FP instruction with its captured integer operand:
/// the effective address for `fld`/`fsd`, the register value for
/// `fcvt.d.w`, the trip count for `frep`.
#[derive(Clone, Copy, Debug)]
pub struct FpOp {
    /// The instruction.
    pub instr: Instr,
    /// Captured integer operand (meaning depends on the instruction).
    pub aux: u32,
}

/// Integer write-back produced by the FPU (comparisons, conversions),
/// delivered to the core by the core complex.
#[derive(Clone, Copy, Debug)]
pub struct IntWriteback {
    /// Destination integer register index.
    pub reg: u8,
    /// Value.
    pub value: u32,
}

#[derive(Debug)]
enum SeqState {
    Idle,
    Capturing {
        remaining: u8,
        max_rpt: u32,
        stagger: Stagger,
        kind: FrepKind,
        /// Whether the captured body executes as it streams by
        /// (iteration 0 of `frep.o`/`frep.i`). Stream-terminated loops
        /// buffer without executing — the body may run zero times.
        execute: bool,
        buf: Vec<FpOp>,
    },
    Replaying {
        iter: u32,
        pos: usize,
        max_rpt: u32,
        stagger: Stagger,
        kind: FrepKind,
        buf: Vec<FpOp>,
    },
}

/// Reason the FPU could not issue this cycle (for stall accounting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Blocked {
    /// Nothing to do.
    Empty,
    /// An operand or resource was not ready.
    Stalled,
}

/// The FPU subsystem of one core complex.
#[derive(Debug)]
pub struct FpuSubsystem {
    params: CcParams,
    regs: [u64; 32],
    busy: [bool; 32],
    queue: VecDeque<FpOp>,
    seq: SeqState,
    /// Scheduled FP write-backs: (ready_cycle, reg, value).
    wb_fp: Vec<(u64, u8, u64)>,
    /// Scheduled integer write-backs.
    wb_int: Vec<(u64, IntWriteback)>,
    /// Destination registers of outstanding `fld`s, in request order.
    lsu_tags: VecDeque<u8>,
    /// In-flight stream-register writes per lane (credit reservation).
    stream_wr_outstanding: Vec<usize>,
}

impl FpuSubsystem {
    /// Creates an idle subsystem.
    #[must_use]
    pub fn new(params: CcParams, n_lanes: usize) -> Self {
        Self {
            params,
            regs: [0; 32],
            busy: [false; 32],
            queue: VecDeque::new(),
            seq: SeqState::Idle,
            wb_fp: Vec::new(),
            wb_int: Vec::new(),
            lsu_tags: VecDeque::new(),
            stream_wr_outstanding: vec![0; n_lanes],
        }
    }

    /// Whether the offload queue can accept another instruction.
    #[must_use]
    pub fn can_offload(&self) -> bool {
        self.queue.len() < self.params.offload_depth
    }

    /// Offloads one FP instruction (or `frep`) from the core.
    ///
    /// # Panics
    /// Panics if the queue is full (check [`Self::can_offload`]).
    pub fn offload(&mut self, op: FpOp) {
        assert!(self.can_offload(), "FPU offload queue overflow"); // gate-allow: documented precondition; the core checks can_offload first
        self.queue.push_back(op);
    }

    /// Squashes every queued and in-flight operation that has not yet
    /// touched memory — the stream-fault delivery path: the core is
    /// parked on a trap, so replaying the captured FREP body or the
    /// offload queue would block forever on frozen streams. Scheduled
    /// FP write-backs apply immediately (the scoreboard clears),
    /// pending integer write-backs are dropped (the core no longer
    /// issues), and outstanding `fld` responses still drain through
    /// [`Self::tick`].
    pub fn flush(&mut self) {
        self.queue.clear();
        self.seq = SeqState::Idle;
        for (_, reg, value) in self.wb_fp.drain(..) {
            self.regs[reg as usize] = value;
            self.busy[reg as usize] = false;
        }
        self.wb_int.clear();
        self.stream_wr_outstanding.fill(0);
    }

    /// Whether every offloaded instruction has fully completed.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty()
            && matches!(self.seq, SeqState::Idle)
            && self.wb_fp.is_empty()
            && self.wb_int.is_empty()
            && self.lsu_tags.is_empty()
            && self.stream_wr_outstanding.iter().all(|&n| n == 0)
    }

    /// Direct register-file read (tests and result marshalling).
    #[must_use]
    pub fn reg(&self, r: FpReg) -> f64 {
        f64::from_bits(self.regs[r.index() as usize])
    }

    /// Direct register-file write (tests).
    pub fn set_reg(&mut self, r: FpReg, value: f64) {
        self.regs[r.index() as usize] = value.to_bits();
    }

    /// Advances one cycle. `port` is the FPU's virtual slice of the
    /// shared CC memory port; `streamer` provides the stream registers.
    /// Returns integer write-backs that completed this cycle.
    pub fn tick(
        &mut self,
        now: u64,
        port: &mut MemPort,
        streamer: &mut Streamer,
        metrics: &mut Metrics,
    ) -> Vec<IntWriteback> {
        // 1. Retire scheduled write-backs.
        let mut int_out = Vec::new();
        let mut i = 0;
        while i < self.wb_fp.len() {
            if self.wb_fp[i].0 <= now {
                let (_, reg, value) = self.wb_fp.swap_remove(i);
                self.regs[reg as usize] = value;
                self.busy[reg as usize] = false;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.wb_int.len() {
            if self.wb_int[i].0 <= now {
                let (_, wb) = self.wb_int.swap_remove(i);
                int_out.push(wb);
            } else {
                i += 1;
            }
        }
        // 2. FP load responses.
        while let Some(rsp) = port.take_rsp(now) {
            let reg = self.lsu_tags.pop_front().expect("fld response without tag");
            self.regs[reg as usize] = rsp.data;
            self.busy[reg as usize] = false;
        }
        // 3. Issue at most one operation.
        match self.try_issue(now, port, streamer, metrics) {
            Ok(()) => {}
            Err(Blocked::Empty) => {}
            Err(Blocked::Stalled) => {
                if metrics.roi_active {
                    metrics.roi.fpu_stall += 1;
                }
            }
        }
        int_out
    }

    /// Attempts to issue one op from the sequencer or the queue head.
    fn try_issue(
        &mut self,
        now: u64,
        port: &mut MemPort,
        streamer: &mut Streamer,
        metrics: &mut Metrics,
    ) -> Result<(), Blocked> {
        // A stream-terminated loop samples the terminate signal at each
        // body start: once every stream the body reads has raised `done`
        // and drained, the loop retires and the queue behind it resumes
        // in the same cycle — the data-dependent trip count the joiner
        // and SpAcc handshakes feed (`frep.s`).
        if let SeqState::Replaying { kind: FrepKind::Stream, pos: 0, buf, .. } = &self.seq {
            if Self::stream_sources_terminated(buf, streamer) {
                self.seq = SeqState::Idle;
            }
        }
        // Replay takes priority: the queue is stalled behind the loop.
        if let SeqState::Replaying { iter, pos, max_rpt, stagger, kind, buf } = &self.seq {
            let op = buf[*pos];
            let offset = stagger.offset_at(*iter);
            let stagger = *stagger;
            let (iter, pos, max_rpt, kind, buf_len) = (*iter, *pos, *max_rpt, *kind, buf.len());
            self.issue_op(op, offset, now, port, streamer, metrics)?;
            // Advance the sequencer.
            let (next_iter, next_pos) = match kind {
                FrepKind::Outer | FrepKind::Stream => {
                    if pos + 1 < buf_len {
                        (iter, pos + 1)
                    } else {
                        (iter + 1, 0)
                    }
                }
                FrepKind::Inner => {
                    if iter < max_rpt {
                        (iter + 1, pos)
                    } else {
                        (1, pos + 1)
                    }
                }
            };
            let done = match kind {
                FrepKind::Outer => next_iter > max_rpt,
                FrepKind::Inner => next_pos >= buf_len,
                // Stream loops end only through the terminate check above.
                FrepKind::Stream => false,
            };
            if done {
                self.seq = SeqState::Idle;
            } else if let SeqState::Replaying { iter, pos, .. } = &mut self.seq {
                *iter = next_iter;
                *pos = next_pos;
                let _ = stagger;
            }
            return Ok(());
        }
        // Sequencer markers are processed without consuming issue slots.
        loop {
            match self.queue.front() {
                Some(FpOp { instr: Instr::Frep { kind, n_insns, stagger, .. }, aux }) => {
                    assert!(matches!(self.seq, SeqState::Idle), "nested FREP is not supported"); // gate-allow: guest bug caught statically by issr-lint (frep window checks)
                    assert!(
                        // gate-allow: guest bug caught statically by issr-lint (frep window checks)
                        (*n_insns as usize) <= self.params.frep_buffer,
                        "FREP body exceeds sequencer buffer"
                    );
                    assert!(*n_insns > 0, "FREP with empty body"); // gate-allow: guest bug caught statically by issr-lint (frep window checks)
                    self.seq = SeqState::Capturing {
                        remaining: *n_insns,
                        max_rpt: *aux,
                        stagger: *stagger,
                        kind: *kind,
                        execute: !matches!(kind, FrepKind::Stream),
                        buf: Vec::with_capacity(*n_insns as usize),
                    };
                    self.queue.pop_front();
                }
                Some(_) => break,
                None => return Err(Blocked::Empty),
            }
        }
        // A stream-terminated body buffers without executing: the
        // terminate signal may already be up, in which case the body
        // must run zero times.
        while let SeqState::Capturing { execute: false, remaining, stagger, kind, buf, .. } =
            &mut self.seq
        {
            let Some(&op) = self.queue.front() else {
                return Err(Blocked::Empty);
            };
            assert!(op.instr.is_fp(), "non-FP instruction inside an FREP body"); // gate-allow: guest bug caught statically by issr-lint (frep window checks)
            buf.push(op);
            self.queue.pop_front();
            *remaining -= 1;
            if *remaining == 0 {
                let (stagger, kind, buf) = (*stagger, *kind, std::mem::take(buf));
                self.seq = SeqState::Replaying { iter: 0, pos: 0, max_rpt: 0, stagger, kind, buf };
                // The first body pass issues next cycle, behind the
                // terminate check.
                return Ok(());
            }
        }
        let op = *self.queue.front().expect("checked non-empty");
        // Iteration 0 of a captured body executes as it streams by.
        let offset = 0;
        self.issue_op(op, offset, now, port, streamer, metrics)?;
        self.queue.pop_front();
        if let SeqState::Capturing { remaining, max_rpt, stagger, kind, buf, .. } = &mut self.seq {
            buf.push(op);
            *remaining -= 1;
            if *remaining == 0 {
                if *max_rpt == 0 {
                    self.seq = SeqState::Idle;
                } else {
                    self.seq = SeqState::Replaying {
                        iter: 1,
                        pos: 0,
                        max_rpt: *max_rpt,
                        stagger: *stagger,
                        kind: *kind,
                        buf: std::mem::take(buf),
                    };
                }
            }
        }
        Ok(())
    }

    /// Whether every stream lane the body *reads* has terminated: the
    /// producer (lane job or joiner) raised `done` and every delivered
    /// value has been consumed. Lanes the body only writes (e.g. the
    /// SpAcc's write stream) do not gate termination. Stagger rotation
    /// is ignored here — staggered operands are accumulators, not
    /// stream-mapped registers.
    fn stream_sources_terminated(buf: &[FpOp], streamer: &Streamer) -> bool {
        let mut used = [false; 8];
        {
            let mut mark = |r: FpReg| {
                if let Some(lane) = streamer.lane_of_reg(r.index()) {
                    used[lane] = true;
                }
            };
            for op in buf {
                match op.instr {
                    Instr::FpuOp3 { rs1, rs2, rs3, .. } => {
                        mark(rs1);
                        mark(rs2);
                        mark(rs3);
                    }
                    Instr::FpuOp2 { rs1, rs2, .. } | Instr::FpuCmp { rs1, rs2, .. } => {
                        mark(rs1);
                        mark(rs2);
                    }
                    Instr::FmvD { rs1, .. } | Instr::FcvtWD { rs1, .. } => mark(rs1),
                    Instr::Fsd { rs2, .. } => mark(rs2),
                    _ => {}
                }
            }
        }
        used.iter()
            .enumerate()
            .all(|(lane, &reads)| !reads || streamer.read_stream_terminated(lane))
    }

    fn stagger_reg(reg: FpReg, mask_bit: u8, mask: u8, offset: u8) -> FpReg {
        if mask & (1 << mask_bit) != 0 && offset > 0 {
            FpReg::new((reg.index() + offset) % 32)
        } else {
            reg
        }
    }

    /// Reads an FP source operand: pops the stream if the register is
    /// redirected, else checks the scoreboard. Returns `None` on stall.
    /// `probe` first verifies availability without consuming.
    fn src_ready(&self, reg: FpReg, streamer: &Streamer) -> bool {
        match streamer.lane_of_reg(reg.index()) {
            Some(lane) => streamer.lane(lane).can_pop(),
            None => !self.busy[reg.index() as usize],
        }
    }

    fn read_src(&mut self, reg: FpReg, streamer: &mut Streamer) -> u64 {
        match streamer.lane_of_reg(reg.index()) {
            Some(lane) => streamer.lane_mut(lane).pop(),
            None => self.regs[reg.index() as usize],
        }
    }

    /// Checks the destination: a stream register needs write credit;
    /// a plain register must not have a write in flight (WAW).
    fn dst_ready(&self, reg: FpReg, streamer: &Streamer) -> bool {
        match streamer.lane_of_reg(reg.index()) {
            Some(lane) => {
                let reserved = self.stream_wr_outstanding[lane];
                let fifo_ok = streamer.lane(lane).can_push();
                fifo_ok && reserved < issr_core::lane::DATA_FIFO_DEPTH
            }
            None => !self.busy[reg.index() as usize],
        }
    }

    /// Commits a result: schedules a register write-back or a stream push.
    fn write_dst(
        &mut self,
        reg: FpReg,
        value: u64,
        latency: u64,
        now: u64,
        streamer: &mut Streamer,
    ) {
        match streamer.lane_of_reg(reg.index()) {
            Some(lane) => {
                // Stream writes commit at issue: the FIFO is the pipeline
                // decoupling stage and credit was checked.
                streamer.lane_mut(lane).push(value);
                let _ = latency;
            }
            None => {
                self.busy[reg.index() as usize] = true;
                self.wb_fp.push((now + latency, reg.index(), value));
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn issue_op(
        &mut self,
        op: FpOp,
        stagger_offset: u8,
        now: u64,
        port: &mut MemPort,
        streamer: &mut Streamer,
        metrics: &mut Metrics,
    ) -> Result<(), Blocked> {
        let (smask, soff) = match &self.seq {
            SeqState::Capturing { stagger, .. } | SeqState::Replaying { stagger, .. } => {
                (stagger.mask, stagger_offset)
            }
            SeqState::Idle => (0, 0),
        };
        let p = self.params;
        let count = |metrics: &mut Metrics, fmadd: bool, fadd: bool| {
            if metrics.roi_active {
                metrics.roi.fpu_ops += 1;
                if fmadd {
                    metrics.roi.fmadds += 1;
                }
                if fadd {
                    metrics.roi.fadds += 1;
                }
            }
        };
        match op.instr {
            Instr::FpuOp3 { op: kind, rd, rs1, rs2, rs3 } => {
                let rd = Self::stagger_reg(rd, 0, smask, soff);
                let rs1 = Self::stagger_reg(rs1, 1, smask, soff);
                let rs2 = Self::stagger_reg(rs2, 2, smask, soff);
                let rs3 = Self::stagger_reg(rs3, 3, smask, soff);
                if !(self.src_ready(rs1, streamer)
                    && self.src_ready(rs2, streamer)
                    && self.src_ready(rs3, streamer)
                    && self.dst_ready(rd, streamer))
                {
                    return Err(Blocked::Stalled);
                }
                let a = f64::from_bits(self.read_src(rs1, streamer));
                let b = f64::from_bits(self.read_src(rs2, streamer));
                let c = f64::from_bits(self.read_src(rs3, streamer));
                let v = match kind {
                    FpOp3::FmaddD => a.mul_add(b, c),
                    FpOp3::FmsubD => a.mul_add(b, -c),
                    FpOp3::FnmsubD => (-a).mul_add(b, c),
                    FpOp3::FnmaddD => (-a).mul_add(b, -c),
                };
                self.write_dst(rd, v.to_bits(), p.fpu_latency, now, streamer);
                count(metrics, true, false);
            }
            Instr::FpuOp2 { op: kind, rd, rs1, rs2 } => {
                let rd = Self::stagger_reg(rd, 0, smask, soff);
                let rs1 = Self::stagger_reg(rs1, 1, smask, soff);
                let rs2 = Self::stagger_reg(rs2, 2, smask, soff);
                if !(self.src_ready(rs1, streamer)
                    && self.src_ready(rs2, streamer)
                    && self.dst_ready(rd, streamer))
                {
                    return Err(Blocked::Stalled);
                }
                let a = f64::from_bits(self.read_src(rs1, streamer));
                let b = f64::from_bits(self.read_src(rs2, streamer));
                let (v, latency, is_add) = match kind {
                    FpOp2::FaddD => (a + b, p.fpu_latency, true),
                    FpOp2::FsubD => (a - b, p.fpu_latency, true),
                    FpOp2::FmulD => (a * b, p.fpu_latency, false),
                    FpOp2::FdivD => (a / b, p.fdiv_latency, false),
                    FpOp2::FsgnjD => (a.copysign(b), p.fpu_short_latency, false),
                    FpOp2::FsgnjnD => (a.copysign(-b), p.fpu_short_latency, false),
                    FpOp2::FsgnjxD => {
                        let sign = if (b.is_sign_negative()) ^ (a.is_sign_negative()) {
                            -1.0
                        } else {
                            1.0
                        };
                        (a.abs() * sign, p.fpu_short_latency, false)
                    }
                    FpOp2::FminD => (a.min(b), p.fpu_short_latency, false),
                    FpOp2::FmaxD => (a.max(b), p.fpu_short_latency, false),
                };
                self.write_dst(rd, v.to_bits(), latency, now, streamer);
                count(metrics, false, is_add);
            }
            Instr::FmvD { rd, rs1 } => {
                let rd = Self::stagger_reg(rd, 0, smask, soff);
                let rs1 = Self::stagger_reg(rs1, 1, smask, soff);
                if !(self.src_ready(rs1, streamer) && self.dst_ready(rd, streamer)) {
                    return Err(Blocked::Stalled);
                }
                let v = self.read_src(rs1, streamer);
                self.write_dst(rd, v, p.fpu_short_latency, now, streamer);
                count(metrics, false, false);
            }
            Instr::Fld { rd, .. } => {
                let rd = Self::stagger_reg(rd, 0, smask, soff);
                assert!(
                    // gate-allow: guest bug caught statically by issr-lint (fld into stream reg)
                    streamer.lane_of_reg(rd.index()).is_none(),
                    "fld into a redirected stream register"
                );
                if self.busy[rd.index() as usize] || !port.can_send() {
                    return Err(Blocked::Stalled);
                }
                port.send(MemReq::read(op.aux & !7));
                debug_assert_eq!(op.aux % 8, 0, "fld address must be 8-byte aligned");
                self.busy[rd.index() as usize] = true;
                self.lsu_tags.push_back(rd.index());
                count(metrics, false, false);
            }
            Instr::Fsd { rs2, .. } => {
                let rs2 = Self::stagger_reg(rs2, 2, smask, soff);
                if !(self.src_ready(rs2, streamer) && port.can_send()) {
                    return Err(Blocked::Stalled);
                }
                let v = self.read_src(rs2, streamer);
                debug_assert_eq!(op.aux % 8, 0, "fsd address must be 8-byte aligned");
                port.send(MemReq::write(op.aux & !7, v));
                count(metrics, false, false);
            }
            Instr::FcvtDW { rd, .. } => {
                let rd = Self::stagger_reg(rd, 0, smask, soff);
                if !self.dst_ready(rd, streamer) {
                    return Err(Blocked::Stalled);
                }
                let v = f64::from(op.aux as i32);
                self.write_dst(rd, v.to_bits(), p.fpu_short_latency, now, streamer);
                count(metrics, false, false);
            }
            Instr::FcvtWD { rd, rs1 } => {
                if !self.src_ready(rs1, streamer) {
                    return Err(Blocked::Stalled);
                }
                let a = f64::from_bits(self.read_src(rs1, streamer));
                let v = (a as i32) as u32;
                self.wb_int
                    .push((now + p.fpu_short_latency, IntWriteback { reg: rd.index(), value: v }));
                count(metrics, false, false);
            }
            Instr::FpuCmp { op: kind, rd, rs1, rs2 } => {
                if !(self.src_ready(rs1, streamer) && self.src_ready(rs2, streamer)) {
                    return Err(Blocked::Stalled);
                }
                let a = f64::from_bits(self.read_src(rs1, streamer));
                let b = f64::from_bits(self.read_src(rs2, streamer));
                let v = u32::from(match kind {
                    FpCmp::FeqD => a == b,
                    FpCmp::FltD => a < b,
                    FpCmp::FleD => a <= b,
                });
                self.wb_int
                    .push((now + p.fpu_short_latency, IntWriteback { reg: rd.index(), value: v }));
                count(metrics, false, false);
            }
            other => panic!("non-FP instruction {other} offloaded to FPU"), // gate-allow: internal invariant: the core only offloads is_fp instructions
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_isa::instr::Stagger;
    use issr_isa::reg::FpReg as F;

    fn fp3(rd: F, rs1: F, rs2: F, rs3: F) -> FpOp {
        FpOp { instr: Instr::FpuOp3 { op: FpOp3::FmaddD, rd, rs1, rs2, rs3 }, aux: 0 }
    }

    fn tick_n(
        fpu: &mut FpuSubsystem,
        streamer: &mut Streamer,
        metrics: &mut Metrics,
        start: u64,
        n: u64,
    ) {
        let mut port = MemPort::new();
        for now in start..start + n {
            fpu.tick(now, &mut port, streamer, metrics);
        }
    }

    #[test]
    fn fmadd_has_pipeline_latency() {
        let mut fpu = FpuSubsystem::new(CcParams::default(), 2);
        let mut streamer = Streamer::paper_config();
        let mut metrics = Metrics::default();
        fpu.set_reg(F::FT3, 2.0);
        fpu.set_reg(F::FT4, 3.0);
        fpu.set_reg(F::FT5, 1.0);
        fpu.offload(fp3(F::FT6, F::FT3, F::FT4, F::FT5));
        // Issues at cycle 0; completes at fpu_latency.
        tick_n(&mut fpu, &mut streamer, &mut metrics, 0, 1);
        assert!(!fpu.is_drained());
        tick_n(&mut fpu, &mut streamer, &mut metrics, 1, CcParams::default().fpu_latency);
        assert!(fpu.is_drained());
        assert_eq!(fpu.reg(F::FT6), 7.0);
    }

    #[test]
    fn dependent_ops_stall_on_scoreboard() {
        let mut fpu = FpuSubsystem::new(CcParams::default(), 2);
        let mut streamer = Streamer::paper_config();
        let mut metrics = Metrics::default();
        metrics.roi_begin(0);
        metrics.roi_active = true;
        fpu.set_reg(F::FT3, 1.0);
        fpu.set_reg(F::FT4, 1.0);
        // acc = acc*1 + 1 twice: second depends on first.
        fpu.offload(fp3(F::FT5, F::FT5, F::FT3, F::FT4));
        fpu.offload(fp3(F::FT5, F::FT5, F::FT3, F::FT4));
        let mut port = MemPort::new();
        let mut cycles = 0;
        for now in 0..40 {
            fpu.tick(now, &mut port, &mut streamer, &mut metrics);
            cycles = now + 1;
            if fpu.is_drained() {
                break;
            }
        }
        // Two dependent FMAs: latency-bound, ~2 * fpu_latency.
        assert!(cycles >= 2 * CcParams::default().fpu_latency);
        assert!(metrics.roi.fpu_stall > 0);
    }

    #[test]
    fn frep_outer_replays_body() {
        let mut fpu = FpuSubsystem::new(CcParams::default(), 2);
        let mut streamer = Streamer::paper_config();
        let mut metrics = Metrics::default();
        metrics.roi_begin(0);
        metrics.roi_active = true;
        fpu.set_reg(F::FT3, 1.0);
        fpu.set_reg(F::FT4, 2.0);
        fpu.set_reg(F::FT5, 0.0);
        // frep.o with max_rpt = 4 (5 iterations), body = 1 fmadd; no stagger:
        // the dependent accumulation is latency-bound but correct.
        fpu.offload(FpOp {
            instr: Instr::Frep {
                kind: FrepKind::Outer,
                max_rpt: issr_isa::reg::IntReg::T0,
                n_insns: 1,
                stagger: Stagger::NONE,
            },
            aux: 4,
        });
        fpu.offload(fp3(F::FT5, F::FT3, F::FT4, F::FT5));
        let mut port = MemPort::new();
        for now in 0..200 {
            fpu.tick(now, &mut port, &mut streamer, &mut metrics);
            if fpu.is_drained() {
                break;
            }
        }
        assert!(fpu.is_drained());
        assert_eq!(fpu.reg(F::FT5), 10.0); // 5 iterations of +2
        assert_eq!(metrics.roi.fmadds, 5);
    }

    #[test]
    fn frep_stagger_rotates_accumulators_at_full_rate() {
        let params = CcParams::default();
        let mut fpu = FpuSubsystem::new(params, 2);
        let mut streamer = Streamer::paper_config();
        let mut metrics = Metrics::default();
        metrics.roi_begin(0);
        metrics.roi_active = true;
        fpu.set_reg(F::FT0, 1.0);
        fpu.set_reg(F::FT1, 1.0);
        let n_acc = params.fpu_latency as u8; // enough to hide latency
        for k in 0..n_acc {
            fpu.set_reg(F::FT2.offset(k), 0.0);
        }
        let iters = 64u32;
        fpu.offload(FpOp {
            instr: Instr::Frep {
                kind: FrepKind::Outer,
                max_rpt: issr_isa::reg::IntReg::T0,
                n_insns: 1,
                stagger: Stagger::accumulator(n_acc),
            },
            aux: iters - 1,
        });
        fpu.offload(fp3(F::FT2, F::FT0, F::FT1, F::FT2));
        let mut port = MemPort::new();
        let mut cycles = 0;
        for now in 0..500 {
            fpu.tick(now, &mut port, &mut streamer, &mut metrics);
            cycles = now + 1;
            if fpu.is_drained() {
                break;
            }
        }
        // Sum over the accumulator group is the iteration count.
        let total: f64 = (0..n_acc).map(|k| fpu.reg(F::FT2.offset(k))).sum();
        assert_eq!(total, f64::from(iters));
        // Staggering hides FMA latency: ~1 issue/cycle plus drain.
        assert!(
            cycles <= u64::from(iters) + params.fpu_latency + 4,
            "staggered loop took {cycles} cycles for {iters} iterations"
        );
        assert_eq!(metrics.roi.fmadds, u64::from(iters));
    }

    #[test]
    fn frep_inner_repeats_each_instruction() {
        let mut fpu = FpuSubsystem::new(CcParams::default(), 2);
        let mut streamer = Streamer::paper_config();
        let mut metrics = Metrics::default();
        fpu.set_reg(F::FT3, 1.0);
        fpu.set_reg(F::FT5, 0.0);
        fpu.set_reg(F::FT6, 100.0);
        // Body: [ft5 += 1; ft6 += 1] with frep.i ×2 → each repeated
        // before moving on.
        fpu.offload(FpOp {
            instr: Instr::Frep {
                kind: FrepKind::Inner,
                max_rpt: issr_isa::reg::IntReg::T0,
                n_insns: 2,
                stagger: Stagger::NONE,
            },
            aux: 1,
        });
        fpu.offload(FpOp {
            instr: Instr::FpuOp2 { op: FpOp2::FaddD, rd: F::FT5, rs1: F::FT5, rs2: F::FT3 },
            aux: 0,
        });
        fpu.offload(FpOp {
            instr: Instr::FpuOp2 { op: FpOp2::FaddD, rd: F::FT6, rs1: F::FT6, rs2: F::FT3 },
            aux: 0,
        });
        let mut port = MemPort::new();
        for now in 0..100 {
            fpu.tick(now, &mut port, &mut streamer, &mut metrics);
            if fpu.is_drained() {
                break;
            }
        }
        assert_eq!(fpu.reg(F::FT5), 2.0);
        assert_eq!(fpu.reg(F::FT6), 102.0);
    }

    #[test]
    fn fld_round_trips_through_port() {
        let mut fpu = FpuSubsystem::new(CcParams::default(), 2);
        let mut streamer = Streamer::paper_config();
        let mut metrics = Metrics::default();
        let mut port = MemPort::new();
        fpu.offload(FpOp {
            instr: Instr::Fld { rd: F::FT7, rs1: issr_isa::reg::IntReg::A0, offset: 0 },
            aux: 0x1000,
        });
        fpu.tick(0, &mut port, &mut streamer, &mut metrics);
        // The request is on the port; emulate a 1-cycle memory.
        let req = port.take_pending().expect("fld issued");
        assert_eq!(req.addr, 0x1000);
        port.push_rsp(1, issr_mem::port::MemRsp { data: 2.5f64.to_bits() });
        fpu.tick(1, &mut port, &mut streamer, &mut metrics);
        assert_eq!(fpu.reg(F::FT7), 2.5);
        assert!(fpu.is_drained());
    }

    #[test]
    fn fsd_waits_for_pending_result() {
        let params = CcParams::default();
        let mut fpu = FpuSubsystem::new(params, 2);
        let mut streamer = Streamer::paper_config();
        let mut metrics = Metrics::default();
        let mut port = MemPort::new();
        fpu.set_reg(F::FT3, 4.0);
        fpu.set_reg(F::FT4, 0.25);
        fpu.offload(FpOp {
            instr: Instr::FpuOp2 { op: FpOp2::FmulD, rd: F::FT5, rs1: F::FT3, rs2: F::FT4 },
            aux: 0,
        });
        fpu.offload(FpOp {
            instr: Instr::Fsd { rs2: F::FT5, rs1: issr_isa::reg::IntReg::A0, offset: 0 },
            aux: 0x2000,
        });
        let mut store_cycle = None;
        for now in 0..30 {
            fpu.tick(now, &mut port, &mut streamer, &mut metrics);
            if let Some(req) = port.take_pending() {
                assert!(!req.is_read());
                store_cycle = Some(now);
                match req.op {
                    issr_mem::port::MemOp::Write { data, .. } => {
                        assert_eq!(f64::from_bits(data), 1.0);
                    }
                    issr_mem::port::MemOp::Read => unreachable!(),
                }
                break;
            }
        }
        // The store cannot issue before the multiply's write-back.
        assert!(store_cycle.expect("store issued") >= params.fpu_latency);
    }

    #[test]
    #[should_panic(expected = "offload queue overflow")]
    fn offload_overflow_panics() {
        let mut fpu = FpuSubsystem::new(CcParams { offload_depth: 1, ..CcParams::default() }, 2);
        fpu.offload(fp3(F::FT3, F::FT3, F::FT3, F::FT3));
        fpu.offload(fp3(F::FT4, F::FT4, F::FT4, F::FT4));
    }
}
