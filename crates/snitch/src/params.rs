//! Microarchitectural parameters of the core complex.
//!
//! Defaults are calibrated to the paper's stated per-iteration costs
//! (DESIGN.md, "Cycle-model calibration"): a single-issue in-order core
//! sustaining one instruction per cycle with two-cycle load-use latency,
//! and a fully-pipelined double-precision FMA.

/// Tunable latencies and queue depths of one Snitch core complex.
#[derive(Clone, Copy, Debug)]
pub struct CcParams {
    /// `fmadd.d`/`fadd.d`/`fmul.d` result latency in cycles.
    pub fpu_latency: u64,
    /// `fdiv.d` result latency in cycles.
    pub fdiv_latency: u64,
    /// Latency of FP moves, sign-injections, comparisons, conversions.
    pub fpu_short_latency: u64,
    /// Integer multiplier latency (shared unit, contention not modelled).
    pub mul_latency: u64,
    /// Integer divider latency.
    pub div_latency: u64,
    /// FPU offload queue depth (core → FPU subsystem).
    pub offload_depth: usize,
    /// Maximum FREP body length the sequencer buffers.
    pub frep_buffer: usize,
}

impl Default for CcParams {
    fn default() -> Self {
        Self {
            fpu_latency: 4,
            fdiv_latency: 12,
            fpu_short_latency: 2,
            mul_latency: 3,
            div_latency: 20,
            offload_depth: 8,
            frep_buffer: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = CcParams::default();
        assert!(p.fpu_latency >= 1);
        assert!(p.offload_depth >= 2);
        assert!(p.frep_buffer >= 1);
        assert!(p.fdiv_latency > p.fpu_latency);
    }
}
