//! The Snitch integer core: a single-issue, in-order RV32IM pipeline.
//!
//! The core sustains one instruction per cycle with result forwarding
//! between ALU operations. Loads have two-cycle load-use latency (the
//! TCDM responds the next cycle; write-back precedes issue in the cycle
//! after that), multiplies and divides have fixed latencies, and taken
//! branches execute without a bubble because kernels run from the L0
//! loop buffer — together these reproduce the paper's nine-cycle BASE
//! inner loop.
//!
//! Floating-point instructions (and `frep`) are *offloaded* to the FPU
//! subsystem with their captured integer operands; the core moves on —
//! Snitch's pseudo-dual-issue.

use crate::fpu::{FpOp, FpuSubsystem};
use crate::metrics::Metrics;
use issr_core::streamer::Streamer;
use issr_isa::asm::Program;
use issr_isa::csr::Csr;
use issr_isa::instr::{AluImmOp, AluOp, BranchCond, CsrOp, Instr, LoadWidth, StoreWidth};
use issr_isa::reg::IntReg;
use issr_mem::dma::Dma;
use issr_mem::map::{region_of, Region};
use issr_mem::port::{MemOp, MemPort, MemReq};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug)]
struct LsuTag {
    rd: u8,
    width: LoadWidth,
    byte: u32,
    blocking: bool,
}

/// Why a core stopped issuing without executing `halt`.
///
/// Decode and fetch failures park the core (it reads as halted so the
/// simulation drains and terminates) and are surfaced through the run
/// summaries instead of aborting the whole simulator — the harness and
/// its caller decide how fatal the condition is.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrapCause {
    /// The decoded instruction has no implementation in this model.
    UnimplementedInstr(Instr),
    /// The PC ran past the end of the loaded program (missing `halt`).
    PcOutOfRange,
    /// A malformed streamer configuration access (`scfgwi`/`scfgri`):
    /// nonexistent lane, joiner/SpAcc launch without that hardware, a
    /// zero-capacity SpAcc feed, a drain in count-only mode, or a
    /// misaligned drain output base.
    CfgFault(issr_core::CfgFault),
    /// A mid-stream fault latched by a stream unit while a job was
    /// running: SpAcc row-buffer overflow or unsorted feed, a stalled
    /// unit (progress-watchdog expiry), or a port conflict. The
    /// streamer froze and drained; the core parks here. SpAcc overflow
    /// is recoverable at the kernel layer (grow `ACC_BUF_CAP`, replay
    /// the faulted row — see `issr_core::spacc`).
    StreamFault(issr_core::StreamFault),
}

/// A structured decode/fetch trap: which core stopped, where, and why.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Trap {
    /// Hart that trapped.
    pub hartid: u32,
    /// PC of the faulting fetch.
    pub pc: u32,
    /// The condition.
    pub cause: TrapCause,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cause {
            TrapCause::UnimplementedInstr(instr) => {
                write!(
                    f,
                    "hart {}: unimplemented instruction `{instr}` at {:#010x}",
                    self.hartid, self.pc
                )
            }
            TrapCause::PcOutOfRange => {
                write!(f, "hart {}: PC {:#010x} past end of program", self.hartid, self.pc)
            }
            TrapCause::CfgFault(fault) => {
                write!(f, "hart {}: {fault} at {:#010x}", self.hartid, self.pc)
            }
            TrapCause::StreamFault(fault) => {
                write!(f, "hart {}: stream fault — {fault} (near {:#010x})", self.hartid, self.pc)
            }
        }
    }
}

/// The integer pipeline of one core complex.
#[derive(Debug)]
pub struct SnitchCore {
    hartid: u32,
    regs: [u32; 32],
    busy: [bool; 32],
    pc: u32,
    halted: bool,
    lsu_tags: VecDeque<LsuTag>,
    /// Pending multi-cycle ALU results (mul/div): (ready_cycle, rd, value).
    alu_wb: Vec<(u64, u8, u32)>,
    /// Set while a peripheral (barrier) load blocks all issue.
    blocked_on_periph: bool,
    /// Address of the most recently issued load — the word a spin loop
    /// is polling, which is what the post-mortem deadlock classifier
    /// resolves against the declared sync words.
    last_load_addr: Option<u32>,
    /// Latched decode/fetch trap (the core reads as halted once set).
    trap: Option<Trap>,
    /// Set while the core waits at the hardware barrier (CSR read).
    barrier_waiting: bool,
    /// One-shot release latched by the cluster barrier.
    barrier_clear: bool,
    /// Extra cycles the fetch stage still owes (instruction cache miss).
    pub fetch_stall: u64,
}

impl SnitchCore {
    /// Creates a core with the given hart id, starting at PC 0.
    #[must_use]
    pub fn new(hartid: u32) -> Self {
        Self {
            hartid,
            regs: [0; 32],
            busy: [false; 32],
            pc: 0,
            halted: false,
            lsu_tags: VecDeque::new(),
            alu_wb: Vec::new(),
            blocked_on_periph: false,
            last_load_addr: None,
            trap: None,
            barrier_waiting: false,
            barrier_clear: false,
            fetch_stall: 0,
        }
    }

    /// The hart id.
    #[must_use]
    pub fn hartid(&self) -> u32 {
        self.hartid
    }

    /// Current program counter (byte address).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether the core has executed `halt` (or trapped; see
    /// [`Self::trap`]).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Whether the pipeline carries no in-flight write-backs (load tags
    /// or multi-cycle ALU results still waiting to retire). A halted
    /// core with a drained pipeline cannot change architectural state
    /// on a tick — the property the dirty-set scheduler relies on.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.lsu_tags.is_empty() && self.alu_wb.is_empty()
    }

    /// The latched decode/fetch trap, if the core stopped on one.
    #[must_use]
    pub fn trap(&self) -> Option<Trap> {
        self.trap
    }

    /// Address of the most recently issued load, if any — a spinning
    /// hart's poll target (forensic state for the post-mortem report).
    #[must_use]
    pub fn last_load_addr(&self) -> Option<u32> {
        self.last_load_addr
    }

    /// Parks the core on `cause`: it stops issuing and reads as halted
    /// so the surrounding simulation drains instead of aborting.
    fn take_trap(&mut self, cause: TrapCause) {
        self.trap = Some(Trap { hartid: self.hartid, pc: self.pc, cause });
        self.halted = true;
    }

    /// Delivers a mid-stream fault latched by the streamer: the core
    /// parks exactly like a decode trap (the first trap wins — a core
    /// that already trapped or halted keeps its state but stays
    /// parked). The PC is the instruction the core had reached when the
    /// fault latched; stream jobs run decoupled, so it is a vicinity,
    /// not the faulting instruction itself.
    pub fn deliver_stream_fault(&mut self, fault: issr_core::StreamFault) {
        if self.trap.is_none() {
            self.trap = Some(Trap {
                hartid: self.hartid,
                pc: self.pc,
                cause: TrapCause::StreamFault(fault),
            });
        }
        self.halted = true;
    }

    /// Reads an integer register (tests and harnesses).
    #[must_use]
    pub fn reg(&self, r: IntReg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes an integer register (harness argument passing).
    pub fn set_reg(&mut self, r: IntReg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Whether the core is parked at the hardware barrier.
    #[must_use]
    pub fn at_barrier(&self) -> bool {
        self.barrier_waiting
    }

    /// Releases a core parked at the barrier (cluster side).
    pub fn release_barrier(&mut self) {
        if self.barrier_waiting {
            self.barrier_waiting = false;
            self.barrier_clear = true;
        }
    }

    /// Applies an integer write-back from the FPU subsystem.
    pub fn apply_int_writeback(&mut self, reg: u8, value: u32) {
        if reg != 0 {
            self.regs[reg as usize] = value;
        }
        self.busy[reg as usize] = false;
    }

    fn read(&self, r: IntReg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn ready(&self, r: IntReg) -> bool {
        !self.busy[r.index() as usize]
    }

    fn write(&mut self, r: IntReg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// One cycle: issue at most one instruction, then retire memory and
    /// multi-cycle results (so dependent issue happens the cycle after
    /// write-back — two-cycle load-use latency).
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        program: &Program,
        lsu: &mut MemPort,
        fpu: &mut FpuSubsystem,
        streamer: &mut Streamer,
        metrics: &mut Metrics,
        dma: Option<&mut Dma>,
    ) {
        self.issue(now, program, lsu, fpu, streamer, metrics, dma);
        self.retire(now, lsu);
    }

    fn retire(&mut self, now: u64, lsu: &mut MemPort) {
        while let Some(rsp) = lsu.take_rsp(now) {
            let tag = self.lsu_tags.pop_front().expect("load response without tag");
            let value = extract(rsp.data, tag.byte, tag.width);
            if tag.rd != 0 {
                self.regs[tag.rd as usize] = value;
                self.busy[tag.rd as usize] = false;
            }
            if tag.blocking {
                self.blocked_on_periph = false;
            }
        }
        let mut i = 0;
        while i < self.alu_wb.len() {
            if self.alu_wb[i].0 <= now {
                let (_, rd, value) = self.alu_wb.swap_remove(i);
                if rd != 0 {
                    self.regs[rd as usize] = value;
                }
                self.busy[rd as usize] = false;
            } else {
                i += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn issue(
        &mut self,
        now: u64,
        program: &Program,
        lsu: &mut MemPort,
        fpu: &mut FpuSubsystem,
        streamer: &mut Streamer,
        metrics: &mut Metrics,
        dma: Option<&mut Dma>,
    ) {
        if self.halted || self.blocked_on_periph || self.barrier_waiting {
            return;
        }
        if self.fetch_stall > 0 {
            self.fetch_stall -= 1;
            return;
        }
        let index = (self.pc / 4) as usize;
        let Some(&instr) = program.instrs().get(index) else {
            self.take_trap(TrapCause::PcOutOfRange);
            return;
        };
        let stall_raw = |m: &mut Metrics| {
            if m.roi_active {
                m.roi.core_stall_raw += 1;
            }
        };
        let stall_struct = |m: &mut Metrics| {
            if m.roi_active {
                m.roi.core_stall_structural += 1;
            }
        };
        let mut next_pc = self.pc.wrapping_add(4);
        match instr {
            Instr::Lui { rd, imm } => {
                self.write(rd, imm);
            }
            Instr::Auipc { rd, imm } => {
                self.write(rd, self.pc.wrapping_add(imm));
            }
            Instr::Jal { rd, offset } => {
                self.write(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                if !self.ready(rs1) {
                    return stall_raw(metrics);
                }
                let target = self.read(rs1).wrapping_add(offset as u32) & !1;
                self.write(rd, self.pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Branch { cond, rs1, rs2, offset } => {
                if !(self.ready(rs1) && self.ready(rs2)) {
                    return stall_raw(metrics);
                }
                let a = self.read(rs1);
                let b = self.read(rs2);
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if taken {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load { width, rd, rs1, offset } => {
                if !self.ready(rs1) || !self.ready(rd) {
                    return stall_raw(metrics);
                }
                if !lsu.can_send() {
                    return stall_struct(metrics);
                }
                let addr = self.read(rs1).wrapping_add(offset as u32);
                let blocking = region_of(addr) == Region::Periph;
                self.last_load_addr = Some(addr);
                lsu.send(MemReq::read(addr));
                self.lsu_tags.push_back(LsuTag { rd: rd.index(), width, byte: addr % 8, blocking });
                if !rd.is_zero() {
                    self.busy[rd.index() as usize] = true;
                }
                if blocking {
                    self.blocked_on_periph = true;
                }
                if metrics.roi_active {
                    metrics.roi.lsu_accesses += 1;
                }
            }
            Instr::Store { width, rs2, rs1, offset } => {
                if !(self.ready(rs1) && self.ready(rs2)) {
                    return stall_raw(metrics);
                }
                if !lsu.can_send() {
                    return stall_struct(metrics);
                }
                let addr = self.read(rs1).wrapping_add(offset as u32);
                let byte = addr % 8;
                let (data, strb) = match width {
                    StoreWidth::B => (u64::from(self.read(rs2) & 0xFF) << (byte * 8), 1u8 << byte),
                    StoreWidth::H => {
                        (u64::from(self.read(rs2) & 0xFFFF) << (byte * 8), 0x3u8 << byte)
                    }
                    StoreWidth::W => (u64::from(self.read(rs2)) << (byte * 8), 0xFu8 << byte),
                };
                lsu.send(MemReq { addr, op: MemOp::Write { data, strb } });
                if metrics.roi_active {
                    metrics.roi.lsu_accesses += 1;
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                if !self.ready(rs1) {
                    return stall_raw(metrics);
                }
                let a = self.read(rs1);
                let b = imm as u32;
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(b),
                    AluImmOp::Slti => u32::from((a as i32) < (b as i32)),
                    AluImmOp::Sltiu => u32::from(a < b),
                    AluImmOp::Xori => a ^ b,
                    AluImmOp::Ori => a | b,
                    AluImmOp::Andi => a & b,
                    AluImmOp::Slli => a.wrapping_shl(b & 0x1F),
                    AluImmOp::Srli => a.wrapping_shr(b & 0x1F),
                    AluImmOp::Srai => (a as i32).wrapping_shr(b & 0x1F) as u32,
                };
                self.write(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                if !(self.ready(rs1) && self.ready(rs2) && self.ready(rd)) {
                    return stall_raw(metrics);
                }
                let a = self.read(rs1);
                let b = self.read(rs2);
                let multi = matches!(
                    op,
                    AluOp::Mul
                        | AluOp::Mulh
                        | AluOp::Mulhsu
                        | AluOp::Mulhu
                        | AluOp::Div
                        | AluOp::Divu
                        | AluOp::Rem
                        | AluOp::Remu
                );
                let v = alu(op, a, b);
                if multi {
                    let latency =
                        if matches!(op, AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu) {
                            3
                        } else {
                            20
                        };
                    if !rd.is_zero() {
                        self.busy[rd.index() as usize] = true;
                    }
                    self.alu_wb.push((now + latency, rd.index(), v));
                } else {
                    self.write(rd, v);
                }
            }
            Instr::CsrR { op, rd, rs1, csr } => {
                if !self.ready(rs1) {
                    return stall_raw(metrics);
                }
                if !self.csr_access(now, csr, op, self.read(rs1), rd, fpu, streamer, metrics) {
                    return;
                }
            }
            Instr::CsrI { op, rd, uimm, csr } => {
                if !self.csr_access(now, csr, op, u32::from(uimm), rd, fpu, streamer, metrics) {
                    return;
                }
            }
            Instr::Ecall | Instr::Fence => {}
            Instr::Scfgwi { rs1, addr } => {
                if !self.ready(rs1) {
                    return stall_raw(metrics);
                }
                match streamer.cfg_write(addr, self.read(rs1)) {
                    Ok(true) => {}
                    Ok(false) => return stall_struct(metrics),
                    Err(fault) => {
                        self.take_trap(TrapCause::CfgFault(fault));
                        return;
                    }
                }
            }
            Instr::Scfgri { rd, addr } => match streamer.cfg_read(addr) {
                Ok(value) => self.write(rd, value),
                Err(fault) => {
                    self.take_trap(TrapCause::CfgFault(fault));
                    return;
                }
            },
            Instr::Frep { max_rpt, .. } => {
                if !self.ready(max_rpt) {
                    return stall_raw(metrics);
                }
                if !fpu.can_offload() {
                    return stall_struct(metrics);
                }
                fpu.offload(FpOp { instr, aux: self.read(max_rpt) });
            }
            Instr::DmSrc { rs1, rs2 } | Instr::DmDst { rs1, rs2 } | Instr::DmStr { rs1, rs2 } => {
                if !(self.ready(rs1) && self.ready(rs2)) {
                    return stall_raw(metrics);
                }
                let Some(dma) = dma else {
                    // No DMA engine (worker cores): a structured trap,
                    // like every other unsupported operation.
                    self.take_trap(TrapCause::UnimplementedInstr(instr));
                    return;
                };
                match instr {
                    Instr::DmSrc { .. } => dma.set_src(self.read(rs1)),
                    Instr::DmDst { .. } => dma.set_dst(self.read(rs1)),
                    Instr::DmStr { .. } => dma.set_strides(self.read(rs1), self.read(rs2)),
                    _ => unreachable!(),
                }
            }
            Instr::DmRep { rs1 } => {
                if !self.ready(rs1) {
                    return stall_raw(metrics);
                }
                let Some(dma) = dma else {
                    // No DMA engine (worker cores): a structured trap,
                    // like every other unsupported operation.
                    self.take_trap(TrapCause::UnimplementedInstr(instr));
                    return;
                };
                dma.set_reps(self.read(rs1));
            }
            Instr::DmCpyI { rd, rs1, cfg } => {
                if !self.ready(rs1) {
                    return stall_raw(metrics);
                }
                let Some(dma) = dma else {
                    // No DMA engine (worker cores): a structured trap,
                    // like every other unsupported operation.
                    self.take_trap(TrapCause::UnimplementedInstr(instr));
                    return;
                };
                let id = dma.start(self.read(rs1), cfg & 1 != 0);
                self.write(rd, id);
            }
            Instr::DmStatI { rd, which } => {
                let Some(dma) = dma else {
                    // No DMA engine (worker cores): a structured trap,
                    // like every other unsupported operation.
                    self.take_trap(TrapCause::UnimplementedInstr(instr));
                    return;
                };
                let v = match which {
                    0 => dma.completed(),
                    _ => u32::from(dma.busy()),
                };
                self.write(rd, v);
            }
            Instr::Halt => {
                self.halted = true;
            }
            fp if fp.is_fp() => {
                if !fpu.can_offload() {
                    return stall_struct(metrics);
                }
                // Capture integer operands at offload time.
                let aux = match fp {
                    Instr::Fld { rs1, offset, .. } | Instr::Fsd { rs1, offset, .. } => {
                        if !self.ready(rs1) {
                            return stall_raw(metrics);
                        }
                        self.read(rs1).wrapping_add(offset as u32)
                    }
                    Instr::FcvtDW { rs1, .. } => {
                        if !self.ready(rs1) {
                            return stall_raw(metrics);
                        }
                        self.read(rs1)
                    }
                    _ => 0,
                };
                // FP→int results come back asynchronously: reserve rd.
                match fp {
                    Instr::FcvtWD { rd, .. } | Instr::FpuCmp { rd, .. } => {
                        if !self.ready(rd) {
                            return stall_raw(metrics);
                        }
                        if !rd.is_zero() {
                            self.busy[rd.index() as usize] = true;
                        }
                    }
                    _ => {}
                }
                fpu.offload(FpOp { instr: fp, aux });
            }
            other => {
                self.take_trap(TrapCause::UnimplementedInstr(other));
                return;
            }
        }
        self.pc = next_pc;
        metrics.instret += 1;
        if metrics.roi_active {
            metrics.roi.core_ops += 1;
        }
    }

    /// Returns `false` if the access must retry next cycle.
    #[allow(clippy::too_many_arguments)]
    fn csr_access(
        &mut self,
        now: u64,
        csr: Csr,
        op: CsrOp,
        src: u32,
        rd: IntReg,
        fpu: &FpuSubsystem,
        streamer: &mut Streamer,
        metrics: &mut Metrics,
    ) -> bool {
        if csr == Csr::Barrier {
            if self.barrier_clear {
                self.barrier_clear = false;
                self.write(rd, 0);
                return true;
            }
            self.barrier_waiting = true;
            return false;
        }
        let old = match csr {
            Csr::MHartId => self.hartid,
            Csr::MCycle => now as u32,
            Csr::MInstret => metrics.instret as u32,
            Csr::Ssr => u32::from(streamer.is_enabled()),
            Csr::Roi => u32::from(metrics.roi_active),
            _ => 0,
        };
        let new = match op {
            CsrOp::Rw => src,
            CsrOp::Rs => old | src,
            CsrOp::Rc => old & !src,
        };
        let write_intended = !(matches!(op, CsrOp::Rs | CsrOp::Rc) && src == 0);
        if write_intended {
            match csr {
                Csr::Ssr => {
                    // Toggling redirection must not race queued FP ops.
                    if !fpu.is_drained() {
                        if metrics.roi_active {
                            metrics.roi.core_stall_structural += 1;
                        }
                        return false;
                    }
                    streamer.set_enabled(new & 1 != 0);
                }
                Csr::Roi => {
                    // Measurement brackets synchronize with the FPU: the
                    // paper times kernels to completion, and the core
                    // runs ahead of the FPU subsystem (pseudo-dual-issue).
                    if !fpu.is_drained() {
                        if metrics.roi_active {
                            metrics.roi.core_stall_structural += 1;
                        }
                        return false;
                    }
                    if new & 1 != 0 {
                        metrics.roi_begin(now);
                    } else {
                        metrics.roi_end();
                    }
                }
                _ => {}
            }
        }
        self.write(rd, old);
        true
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => (a as i32).wrapping_shr(b & 0x1F) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        AluOp::Mulhsu => ((i64::from(a as i32) * i64::from(b)) >> 32) as u32,
        AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else {
                (a as i32).wrapping_div(b as i32) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                (a as i32).wrapping_rem(b as i32) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn extract(word: u64, byte: u32, width: LoadWidth) -> u32 {
    let shifted = word >> (byte * 8);
    match width {
        LoadWidth::B => (shifted as u8) as i8 as i32 as u32,
        LoadWidth::Bu => u32::from(shifted as u8),
        LoadWidth::H => (shifted as u16) as i16 as i32 as u32,
        LoadWidth::Hu => u32::from(shifted as u16),
        LoadWidth::W => shifted as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_reference_semantics() {
        assert_eq!(alu(AluOp::Add, 2, 3), 5);
        assert_eq!(alu(AluOp::Sub, 2, 3), u32::MAX);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 4), 0xF800_0000);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 4), 0x0800_0000);
        assert_eq!(alu(AluOp::Slt, u32::MAX, 0), 1); // -1 < 0
        assert_eq!(alu(AluOp::Sltu, u32::MAX, 0), 0);
        assert_eq!(alu(AluOp::Mulhu, 0xFFFF_FFFF, 0xFFFF_FFFF), 0xFFFF_FFFE);
        assert_eq!(alu(AluOp::Div, 7u32.wrapping_neg(), 2), 3u32.wrapping_neg());
        assert_eq!(alu(AluOp::Divu, 0, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
    }

    #[test]
    fn subword_extraction() {
        let word = 0x8877_6655_4433_2211u64;
        assert_eq!(extract(word, 0, LoadWidth::Bu), 0x11);
        assert_eq!(extract(word, 7, LoadWidth::Bu), 0x88);
        assert_eq!(extract(word, 7, LoadWidth::B), 0xFFFF_FF88);
        assert_eq!(extract(word, 2, LoadWidth::Hu), 0x4433);
        assert_eq!(extract(word, 6, LoadWidth::H), 0xFFFF_8877u32);
        assert_eq!(extract(word, 4, LoadWidth::W), 0x8877_6655);
    }

    #[test]
    fn x0_stays_zero() {
        let mut c = SnitchCore::new(0);
        c.set_reg(IntReg::ZERO, 42);
        assert_eq!(c.reg(IntReg::ZERO), 0);
    }
}
