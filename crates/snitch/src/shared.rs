//! The shared CC memory port.
//!
//! Following §II-C, each core complex exposes two ports to the memory
//! system: the ISSR keeps an exclusive port, while the integer core's
//! LSU, the FPU's load/store path and the plain SSR are *combined* onto
//! the other with round-robin arbitration. This lets the core slip its
//! occasional requests between SSR stream beats without blocking it,
//! and keeps legacy (non-streamer) code at full speed.

use issr_mem::port::{MemPort, MemRsp};
use std::collections::VecDeque;

/// Identifies the virtual master of a forwarded request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Master {
    CoreLsu,
    FpuLsu,
    Ssr,
}

const MASTERS: [Master; 3] = [Master::CoreLsu, Master::FpuLsu, Master::Ssr];

/// Three virtual ports multiplexed onto one physical port.
#[derive(Debug, Default)]
pub struct SharedPort {
    /// Integer-core LSU slice.
    pub core_lsu: MemPort,
    /// FPU load/store slice.
    pub fpu_lsu: MemPort,
    /// SSR lane slice.
    pub ssr: MemPort,
    tags: VecDeque<Master>,
    rr: usize,
}

impl SharedPort {
    /// Creates an idle mux.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers responses that arrived on the physical port back to the
    /// owning virtual port. Call at the start of each cycle.
    pub fn relay_responses(&mut self, now: u64, phys: &mut MemPort) {
        while let Some(rsp) = phys.take_rsp(now) {
            let master = self.tags.pop_front().expect("response without forwarded request");
            let port = self.port_of(master);
            port.push_rsp(now, MemRsp { data: rsp.data });
        }
    }

    /// Forwards at most one pending virtual request to the physical port,
    /// round-robin. Call after the masters have ticked.
    pub fn forward_requests(&mut self, phys: &mut MemPort) {
        if !phys.can_send() {
            return;
        }
        for k in 0..MASTERS.len() {
            let i = (self.rr + k) % MASTERS.len();
            let master = MASTERS[i];
            if let Some(req) = self.port_of(master).take_pending() {
                // Only reads produce responses to route back.
                if req.is_read() {
                    self.tags.push_back(master);
                }
                phys.send(req);
                self.rr = (i + 1) % MASTERS.len();
                return;
            }
        }
    }

    /// Whether no request or response is in flight anywhere in the mux.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.tags.is_empty()
            && self.core_lsu.can_send()
            && self.fpu_lsu.can_send()
            && self.ssr.can_send()
            && self.core_lsu.in_flight() == 0
            && self.fpu_lsu.in_flight() == 0
            && self.ssr.in_flight() == 0
    }

    fn port_of(&mut self, master: Master) -> &mut MemPort {
        match master {
            Master::CoreLsu => &mut self.core_lsu,
            Master::FpuLsu => &mut self.fpu_lsu,
            Master::Ssr => &mut self.ssr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_mem::port::MemReq;
    use issr_mem::tcdm::Tcdm;

    #[test]
    fn responses_route_to_their_master() {
        let mut tcdm = Tcdm::ideal(0, 0x100);
        tcdm.array_mut().store_u64(0x10, 1);
        tcdm.array_mut().store_u64(0x20, 2);
        let mut mux = SharedPort::new();
        let mut phys = MemPort::new();
        mux.core_lsu.send(MemReq::read(0x10));
        mux.ssr.send(MemReq::read(0x20));
        // Cycle 0: forward one (round-robin starts at core LSU).
        mux.forward_requests(&mut phys);
        tcdm.tick(0, &mut [&mut phys], &[]);
        // Cycle 1: relay, forward the second.
        mux.relay_responses(1, &mut phys);
        mux.forward_requests(&mut phys);
        tcdm.tick(1, &mut [&mut phys], &[]);
        mux.relay_responses(2, &mut phys);
        assert_eq!(mux.core_lsu.take_rsp(1).unwrap().data, 1);
        assert_eq!(mux.ssr.take_rsp(2).unwrap().data, 2);
        assert!(mux.is_idle());
    }

    #[test]
    fn round_robin_alternates_between_contenders() {
        let mut mux = SharedPort::new();
        let mut phys = MemPort::new();
        let mut grants = Vec::new();
        for cycle in 0..6 {
            if mux.core_lsu.can_send() {
                mux.core_lsu.send(MemReq::read(0x10));
            }
            if mux.ssr.can_send() {
                mux.ssr.send(MemReq::read(0x20));
            }
            mux.forward_requests(&mut phys);
            // Drain the physical port and note who won by address.
            if let Some(req) = phys.take_pending() {
                grants.push(req.addr);
                mux.tags.pop_back(); // test shortcut: no responses needed
            }
            let _ = cycle;
        }
        // Both masters make progress, interleaved.
        let lsu_grants = grants.iter().filter(|&&a| a == 0x10).count();
        let ssr_grants = grants.iter().filter(|&&a| a == 0x20).count();
        assert_eq!(lsu_grants, 3);
        assert_eq!(ssr_grants, 3);
    }
}
