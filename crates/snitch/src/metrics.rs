//! Execution metrics and the measured region of interest (ROI).
//!
//! Kernels bracket their timed section with writes to the `roi` CSR
//! (timing-neutral in this model). Within the ROI the simulator counts
//! cycles and classifies FPU activity, from which the paper's headline
//! metric — FPU utilization, the fraction of cycles the FPU retires a
//! multiply-accumulate — is computed, with and without the accumulator
//! reduction (`fadd`) overhead (the `m`-suffixed curves of Fig. 4a).

/// Counters accumulated while the ROI is open.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoiCounters {
    /// Cycles inside the region of interest.
    pub cycles: u64,
    /// Fused multiply-add family issues (`fmadd`/`fmsub`/`fnmadd`/`fnmsub`).
    pub fmadds: u64,
    /// Plain FP add/sub issues (accumulator reductions).
    pub fadds: u64,
    /// All FPU-subsystem issues (loads/stores/moves included).
    pub fpu_ops: u64,
    /// Integer-pipeline instructions issued.
    pub core_ops: u64,
    /// Core issue stalls on operands (RAW).
    pub core_stall_raw: u64,
    /// Core issue stalls on structure (ports, queues).
    pub core_stall_structural: u64,
    /// FPU cycles with work available but no issue (stream back-pressure
    /// or scoreboard).
    pub fpu_stall: u64,
    /// Core data-memory accesses (integer LSU).
    pub lsu_accesses: u64,
}

/// Full per-core metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Metrics {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Total instructions issued by the integer pipeline.
    pub instret: u64,
    /// Whether the ROI is currently open.
    pub roi_active: bool,
    /// Cycle at which the ROI (last) opened.
    pub roi_opened_at: u64,
    /// Counters accumulated inside the ROI.
    pub roi: RoiCounters,
}

impl Metrics {
    /// Opens the region of interest.
    pub fn roi_begin(&mut self, now: u64) {
        self.roi_active = true;
        self.roi_opened_at = now;
    }

    /// Closes the region of interest.
    pub fn roi_end(&mut self) {
        self.roi_active = false;
    }

    /// FPU utilization inside the ROI, counting only multiply-accumulates
    /// (the paper's headline metric).
    #[must_use]
    pub fn fpu_utilization(&self) -> f64 {
        if self.roi.cycles == 0 {
            return 0.0;
        }
        self.roi.fmadds as f64 / self.roi.cycles as f64
    }

    /// FPU utilization including the accumulator reduction adds
    /// (the `m`-suffixed curves in Fig. 4a).
    #[must_use]
    pub fn fpu_utilization_with_reduction(&self) -> f64 {
        if self.roi.cycles == 0 {
            return 0.0;
        }
        (self.roi.fmadds + self.roi.fadds) as f64 / self.roi.cycles as f64
    }

    /// Useful floating-point operations inside the ROI (1 fmadd = 2 flops).
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.roi.fmadds * 2 + self.roi.fadds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_computed_over_roi() {
        let mut m = Metrics::default();
        m.roi_begin(10);
        m.roi.cycles = 100;
        m.roi.fmadds = 80;
        m.roi.fadds = 10;
        m.roi_end();
        assert!((m.fpu_utilization() - 0.8).abs() < 1e-12);
        assert!((m.fpu_utilization_with_reduction() - 0.9).abs() < 1e-12);
        assert_eq!(m.flops(), 170);
    }

    #[test]
    fn empty_roi_yields_zero() {
        let m = Metrics::default();
        assert_eq!(m.fpu_utilization(), 0.0);
        assert_eq!(m.fpu_utilization_with_reduction(), 0.0);
    }
}
