//! The core complex (CC): Snitch core + FPU subsystem + streamer,
//! wired to the memory system — and the single-CC evaluation harness
//! of §IV-A.

use crate::attr::{CcAttribution, CcCauses};
use crate::core::{SnitchCore, Trap};
use crate::fpu::FpuSubsystem;
use crate::metrics::{Metrics, RoiCounters};
use crate::params::CcParams;
use crate::shared::SharedPort;
use issr_core::joiner::JoinerStats;
use issr_core::lane::LaneStats;
use issr_core::spacc::SpAccStats;
use issr_core::streamer::Streamer;
use issr_isa::asm::Program;
use issr_mem::dma::Dma;
use issr_mem::icache::{L0Buffer, L1ICache};
use issr_mem::map::TCDM_BASE;
use issr_mem::port::MemPort;
use issr_mem::tcdm::{Tcdm, TcdmStats};
use issr_trace::{CycleBreakdown, PostMortem, StallCause};

/// One Snitch core complex.
///
/// Port topology (§II-C): physical port 0 carries the combined core /
/// FPU / SSR traffic through [`SharedPort`]; each further streamer lane
/// (the ISSR, lane 1 in the paper configuration) gets an exclusive
/// physical port.
#[derive(Debug)]
pub struct CoreComplex {
    /// Integer pipeline.
    pub core: SnitchCore,
    /// FPU subsystem (offload queue, FREP sequencer, FP registers).
    pub fpu: FpuSubsystem,
    /// SSR/ISSR lanes.
    pub streamer: Streamer,
    /// The combined-port multiplexer.
    pub shared: SharedPort,
    /// Per-core metrics.
    pub metrics: Metrics,
    /// ROI stall-cause breakdowns (hart + stream units), sampled once
    /// per ROI cycle.
    pub attr: CcAttribution,
    /// Whole-lifetime hart cause tally (not ROI-gated): every cycle the
    /// CC exists is classified, so a timed-out run can name each stuck
    /// hart's dominant stall cause even when its ROI never opened.
    pub cause_tally: CycleBreakdown,
    program: Program,
    l0: Option<L0Buffer>,
    causes: CcCauses,
}

impl CoreComplex {
    /// Creates a CC with the paper's streamer configuration (one SSR,
    /// one ISSR).
    #[must_use]
    pub fn new(hartid: u32, program: Program, params: CcParams) -> Self {
        Self::with_streamer(hartid, program, params, Streamer::paper_config())
    }

    /// Creates a CC with a custom streamer (e.g. two ISSRs for codebook
    /// streaming, §III-C).
    #[must_use]
    pub fn with_streamer(
        hartid: u32,
        program: Program,
        params: CcParams,
        streamer: Streamer,
    ) -> Self {
        let n_lanes = streamer.n_lanes();
        Self {
            core: SnitchCore::new(hartid),
            fpu: FpuSubsystem::new(params, n_lanes),
            streamer,
            shared: SharedPort::new(),
            metrics: Metrics::default(),
            attr: CcAttribution::with_lanes(n_lanes),
            cause_tally: CycleBreakdown::new(),
            program,
            l0: None,
            causes: CcCauses::default(),
        }
    }

    /// Number of physical memory ports this CC exposes.
    #[must_use]
    pub fn n_ports(&self) -> usize {
        self.streamer.n_lanes()
    }

    /// Installs an L0 instruction buffer (cluster configuration).
    pub fn set_l0(&mut self, l0: L0Buffer) {
        self.l0 = Some(l0);
    }

    /// The loaded program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Whether the CC has halted *and* all decoupled state has drained.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.core.halted()
            && self.fpu.is_drained()
            && self.streamer.is_idle()
            && self.shared.is_idle()
    }

    /// Whether ticking this CC is provably a no-op beyond cycle
    /// bookkeeping: the core halted with a fully drained pipeline,
    /// the FPU and streamer drained, no shared-port traffic in flight.
    /// Halting is terminal, so an idle CC stays idle — this is the
    /// single predicate both the host profiler's idle census and the
    /// dirty-set tick skipping use (see [`CoreComplex::tick_idle`]).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.quiescent() && self.core.is_drained()
    }

    /// The cycle bookkeeping of a [`CoreComplex::tick`] on an idle CC,
    /// without ticking any unit: advances the cycle counters and
    /// re-latches the (stable) stall-cause classification — exactly
    /// what a full tick does when [`CoreComplex::is_idle`] holds, as
    /// the idle-no-op property test pins down.
    pub fn tick_idle(&mut self) {
        let instret_before = self.metrics.instret;
        let roi_before = self.metrics.roi;
        let hart = self.hart_cause(instret_before, &roi_before);
        let mut probe = std::mem::take(&mut self.causes.streamer);
        self.streamer.attr_probe_into(&mut probe);
        self.metrics.cycles += 1;
        self.cause_tally.record(hart);
        if self.metrics.roi_active {
            self.metrics.roi.cycles += 1;
            self.attr.hart.record(hart);
            for (table, &cause) in self.attr.lanes.iter_mut().zip(probe.lanes.iter()) {
                table.record(cause);
            }
            self.attr.joiner.record(probe.joiner);
            self.attr.spacc.record(probe.spacc);
        }
        self.causes = CcCauses { hart, streamer: probe };
    }

    /// Advances the CC one cycle. `phys[0]` is the shared port, `phys[1..]`
    /// the exclusive lane ports; `l1` is the hive instruction cache (None
    /// models the ideal instruction memory of §IV-A).
    pub fn tick(
        &mut self,
        now: u64,
        phys: &mut [MemPort],
        dma: Option<&mut Dma>,
        l1: Option<&mut L1ICache>,
    ) {
        assert_eq!(phys.len(), self.streamer.n_lanes(), "one physical port per lane"); // gate-allow: construction invariant between streamer and port vector
                                                                                       // Pre-tick counter snapshot: the attribution sampler at step 6
                                                                                       // classifies the hart from what this cycle's sub-steps added.
        let instret_before = self.metrics.instret;
        let roi_before = self.metrics.roi;
        // 0. Instruction fetch timing (L0 / shared L1 model).
        if let (Some(l0), Some(l1)) = (self.l0.as_mut(), l1) {
            if !self.core.halted() && self.core.fetch_stall == 0 && !l0.fetch(self.core.pc()) {
                self.core.fetch_stall = l1.refill(self.core.pc());
            }
        }
        // 1. Return yesterday's shared-port responses to their masters.
        self.shared.relay_responses(now, &mut phys[0]);
        // 2. Integer pipeline.
        self.core.tick(
            now,
            &self.program,
            &mut self.shared.core_lsu,
            &mut self.fpu,
            &mut self.streamer,
            &mut self.metrics,
            dma,
        );
        // 3. FPU subsystem; deliver its integer results.
        let int_wbs =
            self.fpu.tick(now, &mut self.shared.fpu_lsu, &mut self.streamer, &mut self.metrics);
        for wb in int_wbs {
            self.core.apply_int_writeback(wb.reg, wb.value);
        }
        // 4. Streamer lanes: lane 0 rides the shared port's SSR leg,
        // the rest own their exclusive physical ports directly.
        {
            let (_, rest) = phys.split_at_mut(1);
            self.streamer.tick(now, &mut self.shared.ssr, rest);
        }
        // 4b. Mid-stream fault delivery: the streamer latched a
        // structured fault and froze — park the core on the trap and
        // squash the FPU subsystem so the whole CC drains cleanly
        // (sibling harts in a cluster are unaffected; the barrier masks
        // halted cores).
        if let Some(fault) = self.streamer.take_stream_fault() {
            self.core.deliver_stream_fault(fault);
            self.fpu.flush();
        }
        // 5. Forward one combined request.
        self.shared.forward_requests(&mut phys[0]);
        // 6. Account the cycle — and classify it. The hart cause comes
        // from the counter deltas this tick produced; the stream units
        // classify themselves. Recording happens here, exactly once per
        // cycle, right where the ROI cycle counter advances — which is
        // what makes every breakdown total equal the ROI cycles.
        let hart = self.hart_cause(instret_before, &roi_before);
        // Reuse last cycle's probe buffer instead of allocating one.
        let mut probe = std::mem::take(&mut self.causes.streamer);
        self.streamer.attr_probe_into(&mut probe);
        self.metrics.cycles += 1;
        self.cause_tally.record(hart);
        if self.metrics.roi_active {
            self.metrics.roi.cycles += 1;
            self.attr.hart.record(hart);
            for (table, &cause) in self.attr.lanes.iter_mut().zip(probe.lanes.iter()) {
                table.record(cause);
            }
            self.attr.joiner.record(probe.joiner);
            self.attr.spacc.record(probe.spacc);
        }
        self.causes = CcCauses { hart, streamer: probe };
    }

    /// Classifies the hart's cycle from the counter deltas the tick's
    /// sub-steps produced. Issue (integer or FPU) wins; otherwise the
    /// park/barrier states, then the stall counters, decide.
    fn hart_cause(&self, instret_before: u64, roi_before: &RoiCounters) -> StallCause {
        let roi = &self.metrics.roi;
        if self.metrics.instret > instret_before
            || roi.core_ops > roi_before.core_ops
            || roi.fpu_ops > roi_before.fpu_ops
        {
            return StallCause::Active;
        }
        if self.core.halted() {
            return StallCause::Parked;
        }
        if self.core.at_barrier() {
            return StallCause::BarrierWait;
        }
        if roi.core_stall_structural > roi_before.core_stall_structural {
            return StallCause::PortConflict;
        }
        if roi.core_stall_raw > roi_before.core_stall_raw || roi.fpu_stall > roi_before.fpu_stall {
            return StallCause::FifoEmpty;
        }
        StallCause::Idle
    }

    /// The most recent tick's classification of every unit, refreshed
    /// every cycle (inside the ROI or not) — the signal the cluster and
    /// system harnesses feed their interval-trace recorders.
    #[must_use]
    pub fn last_causes(&self) -> &CcCauses {
        &self.causes
    }
}

/// One hart that had not gone quiescent when a run timed out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StuckHart {
    /// Cluster index within the system (0 for standalone runs).
    pub cluster: usize,
    /// Hart id within its cluster (workers `0..n_workers`, the DMCC is
    /// `n_workers`).
    pub hart: u32,
    /// The hart's PC at the timeout.
    pub pc: u32,
    /// The cause the hart spent most of its lifetime cycles in — a
    /// spinning hart reads `active`, a wedged one names its stall.
    pub cause: StallCause,
}

impl std::fmt::Display for StuckHart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster {} hart {} pc={:#010x} mostly {}",
            self.cluster,
            self.hart,
            self.pc,
            self.cause.label()
        )
    }
}

/// Why a run did not complete.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimTimeout {
    /// The cycle limit that was exhausted.
    pub max_cycles: u64,
    /// The PC of the first stuck hart (single-hart convenience; the
    /// full picture is in [`SimTimeout::stuck`]).
    pub pc: u32,
    /// Every non-quiescent hart at the timeout, in cluster/hart order —
    /// a multi-cluster deadlock names all its participants, not just
    /// cluster 0's first worker.
    pub stuck: Vec<StuckHart>,
    /// The flight recorder's post-mortem report, when the run harness
    /// assembled one (cluster and system runs always do). Boxed so the
    /// error stays small on the happy path.
    pub post_mortem: Option<Box<PostMortem>>,
}

impl SimTimeout {
    /// Builds the error from the non-quiescent hart list; `pc` echoes
    /// the first entry (0 when the stall is outside any hart, e.g. a
    /// DMA engine that never drained).
    #[must_use]
    pub fn new(max_cycles: u64, stuck: Vec<StuckHart>) -> Self {
        let pc = stuck.first().map_or(0, |s| s.pc);
        Self { max_cycles, pc, stuck, post_mortem: None }
    }

    /// Attaches the flight recorder's post-mortem report.
    #[must_use]
    pub fn with_post_mortem(mut self, pm: PostMortem) -> Self {
        self.post_mortem = Some(Box::new(pm));
        self
    }
}

impl std::fmt::Display for SimTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation exceeded {} cycles", self.max_cycles)?;
        if self.stuck.is_empty() {
            write!(f, " (no hart stuck; an engine or queue never drained)")?;
        } else {
            write!(f, "; {} hart(s) not quiescent:", self.stuck.len())?;
            const SHOWN: usize = 8;
            for (i, hart) in self.stuck.iter().take(SHOWN).enumerate() {
                write!(f, "{} {hart}", if i == 0 { "" } else { "," })?;
            }
            if self.stuck.len() > SHOWN {
                write!(
                    f,
                    ", +{} more ({} stuck in total)",
                    self.stuck.len() - SHOWN,
                    self.stuck.len()
                )?;
            }
        }
        if let Some(pm) = &self.post_mortem {
            write!(f, "\n{pm}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimTimeout {}

/// Result of a completed single-CC run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Cycles until the CC went quiescent.
    pub cycles: u64,
    /// Core metrics (ROI counters included).
    pub metrics: Metrics,
    /// Final per-lane streamer statistics.
    pub lane_stats: Vec<LaneStats>,
    /// Index-joiner statistics (all zero without joiner hardware).
    pub joiner_stats: JoinerStats,
    /// Sparse-accumulator statistics (all zero without SpAcc hardware).
    pub spacc_stats: SpAccStats,
    /// Memory statistics.
    pub tcdm_stats: TcdmStats,
    /// ROI stall-cause breakdowns (hart + stream units); each table
    /// totals to `metrics.roi.cycles`.
    pub attr: CcAttribution,
    /// Decode/fetch trap that parked the core, if any. A trapped run
    /// still drains and returns `Ok` — callers inspect this field to
    /// distinguish a clean `halt` from a structured error.
    pub trap: Option<Trap>,
}

impl RunSummary {
    /// Returns the summary, panicking with the trap's diagnostics if the
    /// run ended on a decode/fetch trap instead of a clean `halt`. The
    /// kernel harnesses call this so a builder bug that used to abort
    /// the whole simulator still fails loudly — at the harness level —
    /// while embedders of [`SingleCcSim`] remain free to inspect
    /// [`RunSummary::trap`] themselves.
    ///
    /// # Panics
    /// Panics if the run trapped.
    #[must_use]
    #[track_caller]
    pub fn expect_clean(self) -> Self {
        if let Some(trap) = self.trap {
            panic!(
                // gate-allow: test-harness helper; documented to panic on trapped runs
                "simulated core trapped: {trap} (cause: {:?}, faulting pc {:#010x}, \
                 hart {})",
                trap.cause, trap.pc, trap.hartid
            );
        }
        self
    }

    /// The per-unit stall-cause breakdown as an aligned text table —
    /// what the bench reporters print under their result rows.
    #[must_use]
    pub fn attribution_report(&self) -> String {
        issr_trace::breakdown_table(&self.attr.rows(""))
    }
}

/// Base address of the data arena used by single-CC workloads (above the
/// peripheral window, so address-map region checks stay meaningful).
pub const SINGLE_CC_ARENA: u32 = 0x0030_0000;

/// The single-CC evaluation setup of §IV-A: one core complex coupled to
/// ideal single-cycle instruction and two-port data memories. The data
/// memory is sized generously (the paper assumes the full matrix fits).
#[derive(Debug)]
pub struct SingleCcSim {
    /// The core complex under test.
    pub cc: CoreComplex,
    /// Ideal data memory.
    pub mem: Tcdm,
    ports: Vec<MemPort>,
    now: u64,
}

impl SingleCcSim {
    /// Default data memory size (32 MiB: fits the largest suite matrix).
    pub const DEFAULT_MEM_BYTES: u32 = 32 << 20;

    /// Creates the harness for `program` with default parameters.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Self::with_params(program, CcParams::default())
    }

    /// Creates the harness around a CC whose streamer carries the
    /// sparse-sparse index joiner (the SSSR configuration) — the setup
    /// the SpVV∩ / SpMSpV kernels run on.
    #[must_use]
    pub fn with_joiner(program: Program) -> Self {
        Self::with_cc(CoreComplex::with_streamer(
            0,
            program,
            CcParams::default(),
            Streamer::sssr_config(),
        ))
    }

    /// Creates the harness with explicit core parameters.
    #[must_use]
    pub fn with_params(program: Program, params: CcParams) -> Self {
        Self::with_cc(CoreComplex::new(0, program, params))
    }

    /// Creates the harness around a custom core complex (e.g. one with a
    /// two-ISSR streamer for codebook-compressed sparse values, §III-C).
    #[must_use]
    pub fn with_cc(cc: CoreComplex) -> Self {
        let n_ports = cc.n_ports();
        Self {
            cc,
            mem: Tcdm::ideal(TCDM_BASE, Self::DEFAULT_MEM_BYTES),
            ports: (0..n_ports).map(|_| MemPort::new()).collect(),
            now: 0,
        }
    }

    /// Runs until the CC is quiescent.
    ///
    /// # Errors
    /// Returns [`SimTimeout`] if the CC does not go quiescent within
    /// `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimTimeout> {
        let deadline = self.now + max_cycles;
        while self.now < deadline {
            let now = self.now;
            // Host self-profiler (opt-in, read-only): the single CC is
            // its own "workers" class, the ideal memory is "mem".
            let mut host_t = issr_trace::host::phase_start();
            let idle_cc = if host_t.is_some() { u64::from(self.cc.is_idle()) } else { 0 };
            self.cc.tick(now, &mut self.ports, None, None);
            issr_trace::host::phase(&mut host_t, "workers", 1, idle_cc);
            let idle_mem = if host_t.is_some() {
                u64::from(self.ports.iter().all(|p| p.pending().is_none()))
            } else {
                0
            };
            {
                let mut port_refs: Vec<&mut MemPort> = self.ports.iter_mut().collect();
                self.mem.tick(now, &mut port_refs, &[]);
            }
            issr_trace::host::phase(&mut host_t, "mem", 1, idle_mem);
            issr_trace::host::cycle();
            self.now += 1;
            if self.cc.quiescent() {
                return Ok(RunSummary {
                    cycles: self.now,
                    metrics: self.cc.metrics,
                    lane_stats: self.cc.streamer.stats(),
                    joiner_stats: self.cc.streamer.joiner_stats(),
                    spacc_stats: self.cc.streamer.spacc_stats(),
                    tcdm_stats: self.mem.stats(),
                    attr: self.cc.attr.clone(),
                    trap: self.cc.core.trap(),
                });
            }
        }
        Err(SimTimeout::new(
            max_cycles,
            vec![StuckHart {
                cluster: 0,
                hart: self.cc.core.hartid(),
                pc: self.cc.core.pc(),
                cause: self.cc.cause_tally.dominant(),
            }],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_isa::asm::Assembler;
    use issr_isa::instr::Stagger;
    use issr_isa::reg::{FpReg as F, IntReg as R};

    #[test]
    fn integer_loop_and_store() {
        // Sum 1..=10, store at arena base.
        let mut a = Assembler::new();
        a.li(R::T0, 10);
        a.li(R::T1, 0);
        let head = a.bind_label();
        a.add(R::T1, R::T1, R::T0);
        a.addi(R::T0, R::T0, -1);
        a.bnez(R::T0, head);
        a.li_addr(R::A0, SINGLE_CC_ARENA);
        a.sw(R::T1, R::A0, 0);
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let summary = sim.run(1000).unwrap();
        assert_eq!(sim.mem.array().load_u32(SINGLE_CC_ARENA), 55);
        // 3-instruction loop body, 10 iterations, small pro/epilogue.
        assert!(summary.cycles < 50, "took {} cycles", summary.cycles);
    }

    #[test]
    fn load_use_latency_is_two_cycles() {
        let addr = SINGLE_CC_ARENA;
        // Dependent: lw; addi on result.
        let cycles = |pad: bool| {
            let mut a = Assembler::new();
            a.li_addr(R::A0, addr);
            a.roi_begin();
            for _ in 0..32 {
                a.lw(R::T0, R::A0, 0);
                if pad {
                    a.nop();
                }
                a.addi(R::T1, R::T0, 1);
            }
            a.roi_end();
            a.halt();
            let mut sim = SingleCcSim::new(a.finish().unwrap());
            sim.run(10_000).unwrap().metrics.roi.cycles
        };
        let dependent = cycles(false);
        let padded = cycles(true);
        // Padded version hides the 1-cycle bubble with a useful slot:
        // both take 3 cycles per iteration.
        assert_eq!(dependent, padded, "dependent {dependent} vs padded {padded}");
        assert_eq!(padded, 32 * 3 + 1);
    }

    #[test]
    fn dense_dot_product_with_fld() {
        let n = 16u32;
        let x = SINGLE_CC_ARENA;
        let y = SINGLE_CC_ARENA + 0x1000;
        let out = SINGLE_CC_ARENA + 0x2000;
        let mut a = Assembler::new();
        a.li_addr(R::A0, x);
        a.li_addr(R::A1, y);
        a.li(R::T0, i64::from(n));
        a.fcvt_d_w(F::FS0, R::ZERO);
        let head = a.bind_label();
        a.fld(F::FT0, R::A0, 0);
        a.fld(F::FT1, R::A1, 0);
        a.fmadd_d(F::FS0, F::FT0, F::FT1, F::FS0);
        a.addi(R::A0, R::A0, 8);
        a.addi(R::A1, R::A1, 8);
        a.addi(R::T0, R::T0, -1);
        a.bnez(R::T0, head);
        a.li_addr(R::A2, out);
        a.fsd(F::FS0, R::A2, 0);
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        for i in 0..n {
            sim.mem.array_mut().store_f64(x + i * 8, f64::from(i));
            sim.mem.array_mut().store_f64(y + i * 8, 2.0);
        }
        sim.run(10_000).unwrap();
        let expected: f64 = (0..n).map(|i| f64::from(i) * 2.0).sum();
        assert_eq!(sim.mem.array().load_f64(out), expected);
    }

    /// The SSR dense path: both operands streamed, FREP loop with
    /// staggered accumulators → FPU utilization close to 1 (the SSR
    /// paper's headline, which the ISSR must not regress).
    #[test]
    fn ssr_dense_dot_reaches_full_utilization() {
        use issr_core::cfg::{cfg_addr, reg as sreg};
        let n = 512u32;
        let x = SINGLE_CC_ARENA;
        let y = SINGLE_CC_ARENA + 0x4000;
        let out = SINGLE_CC_ARENA + 0x8000;
        let n_acc = 4u8;
        let mut a = Assembler::new();
        // ft0 <- x (SSR lane 0), ft1 <- y (ISSR lane 1 in affine mode).
        for lane in 0..2u8 {
            a.li(R::T0, i64::from(n - 1));
            a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], lane));
            a.li(R::T0, 8);
            a.scfgwi(R::T0, cfg_addr(sreg::STRIDES[0], lane));
        }
        a.li_addr(R::T0, x);
        a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 0));
        a.li_addr(R::T0, y);
        a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 1));
        for k in 0..n_acc {
            a.fcvt_d_w(F::FT2.offset(k), R::ZERO);
        }
        a.csrsi(issr_isa::Csr::Ssr, 1);
        a.roi_begin();
        a.li(R::T1, i64::from(n - 1));
        a.frep_outer(R::T1, 1, Stagger::accumulator(n_acc));
        a.fmadd_d(F::FT2, F::FT0, F::FT1, F::FT2);
        // Reduce the accumulators.
        a.fadd_d(F::FT2, F::FT2, F::FT3);
        a.fadd_d(F::FT4, F::FT4, F::FT5);
        a.fadd_d(F::FT2, F::FT2, F::FT4);
        a.roi_end();
        a.csrci(issr_isa::Csr::Ssr, 1);
        a.li_addr(R::A2, out);
        a.fsd(F::FT2, R::A2, 0);
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        for i in 0..n {
            sim.mem.array_mut().store_f64(x + i * 8, f64::from(i % 7));
            sim.mem.array_mut().store_f64(y + i * 8, f64::from(i % 5));
        }
        let summary = sim.run(100_000).unwrap();
        let expected: f64 = (0..n).map(|i| f64::from(i % 7) * f64::from(i % 5)).sum();
        assert_eq!(sim.mem.array().load_f64(out), expected);
        let util = summary.metrics.fpu_utilization();
        assert!(util > 0.9, "SSR dense utilization {util:.3}, expected ~1.0");
    }

    /// Pseudo-dual-issue: the core retires independent integer work while
    /// the FPU runs an FREP loop.
    #[test]
    fn core_overlaps_with_frep_loop() {
        let n = 64u32;
        let mut a = Assembler::new();
        a.fcvt_d_w(F::FT2, R::ZERO);
        a.fcvt_d_w(F::FT3, R::ZERO);
        a.li(R::T1, i64::from(n - 1));
        a.roi_begin();
        a.frep_outer(R::T1, 1, Stagger::NONE);
        a.fadd_d(F::FT2, F::FT2, F::FT3);
        // Integer work that should overlap with the FP loop.
        a.li(R::T2, 0);
        for _ in 0..32 {
            a.addi(R::T2, R::T2, 1);
        }
        a.roi_end();
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let summary = sim.run(10_000).unwrap();
        // The fadd chain is dependent: n * fpu_latency cycles. The 33
        // integer instructions must hide inside it.
        let fp_time = u64::from(n) * CcParams::default().fpu_latency;
        assert!(
            summary.metrics.roi.cycles < fp_time + 16,
            "roi {} cycles, fp alone {}",
            summary.metrics.roi.cycles,
            fp_time
        );
        assert_eq!(sim.cc.core.reg(R::T2), 32);
    }

    /// The SSSR data flow: the joiner matches two sparse fibers and a
    /// single staggered `fmadd` under FREP consumes the pairs — the
    /// sparse-sparse dot product with a static trip count (gather-A).
    #[test]
    fn joiner_feeds_fmadd_loop() {
        use issr_core::cfg::{cfg_addr, join_cfg_word, reg as sreg, JoinerMode};
        use issr_core::serializer::IndexSize;
        let idx_a = SINGLE_CC_ARENA;
        let idx_b = SINGLE_CC_ARENA + 0x1000;
        let vals_a = SINGLE_CC_ARENA + 0x2000;
        let vals_b = SINGLE_CC_ARENA + 0x3000;
        let out = SINGLE_CC_ARENA + 0x4000;
        let a_idcs: [u16; 6] = [0, 3, 4, 9, 17, 30];
        let b_idcs: [u16; 5] = [1, 3, 9, 17, 31];
        let n_acc = 4u8;
        let mut a = Assembler::new();
        a.li(R::T0, i64::from(join_cfg_word(JoinerMode::GatherA, IndexSize::U16)));
        a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
        a.li_addr(R::T0, vals_a);
        a.scfgwi(R::T0, cfg_addr(sreg::DATA_BASE, 0));
        a.li_addr(R::T0, idx_b);
        a.scfgwi(R::T0, cfg_addr(sreg::JOIN_IDX_B, 0));
        a.li_addr(R::T0, vals_b);
        a.scfgwi(R::T0, cfg_addr(sreg::JOIN_DATA_B, 0));
        a.li(R::T0, a_idcs.len() as i64);
        a.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_A, 0));
        a.li(R::T0, b_idcs.len() as i64);
        a.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_B, 0));
        a.li_addr(R::T0, idx_a);
        a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 0)); // launch
        a.csrsi(issr_isa::Csr::Ssr, 1);
        for k in 0..n_acc {
            a.fcvt_d_w(F::FT2.offset(k), R::ZERO);
        }
        a.li(R::T1, a_idcs.len() as i64 - 1);
        a.frep_outer(R::T1, 1, Stagger::accumulator(n_acc));
        a.fmadd_d(F::FT2, F::FT0, F::FT1, F::FT2);
        a.fadd_d(F::FT2, F::FT2, F::FT3);
        a.fadd_d(F::FT4, F::FT4, F::FT5);
        a.fadd_d(F::FT2, F::FT2, F::FT4);
        a.csrci(issr_isa::Csr::Ssr, 1);
        a.li_addr(R::A2, out);
        a.fsd(F::FT2, R::A2, 0);
        a.halt();
        let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
        sim.mem.array_mut().store_u16_slice(idx_a, &a_idcs);
        sim.mem.array_mut().store_u16_slice(idx_b, &b_idcs);
        for j in 0..a_idcs.len() as u32 {
            sim.mem.array_mut().store_f64(vals_a + j * 8, f64::from(j + 1));
        }
        for j in 0..b_idcs.len() as u32 {
            sim.mem.array_mut().store_f64(vals_b + j * 8, f64::from(j + 1) * 10.0);
        }
        sim.run(100_000).unwrap();
        // Matches: 3 (a pos 1, b pos 1), 9 (a pos 3, b pos 2), 17 (a pos
        // 4, b pos 3): 2*20 + 4*30 + 5*40 = 360.
        assert_eq!(sim.mem.array().load_f64(out), 360.0);
        let stats = sim.cc.streamer.joiner_stats();
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.matches, 3);
        assert_eq!(stats.emissions, a_idcs.len() as u64);
    }

    /// `frep.s`: a stream-terminated fmadd loop consumes a joiner
    /// intersect job of *data-dependent* length — no count pre-pass, no
    /// pre-counted trip. The loop ends when the joiner raises `done`
    /// and the lane FIFOs drain.
    #[test]
    fn frep_stream_terminates_on_joiner_done() {
        use issr_core::cfg::{cfg_addr, join_cfg_word, reg as sreg, JoinerMode};
        use issr_core::serializer::IndexSize;
        let idx_a = SINGLE_CC_ARENA;
        let idx_b = SINGLE_CC_ARENA + 0x1000;
        let vals_a = SINGLE_CC_ARENA + 0x2000;
        let vals_b = SINGLE_CC_ARENA + 0x3000;
        let out = SINGLE_CC_ARENA + 0x4000;
        let a_idcs: [u16; 4] = [0, 3, 5, 9];
        let b_idcs: [u16; 5] = [3, 5, 7, 9, 11];
        let run = |intersecting: bool| -> (f64, u64) {
            let n_acc = 4u8;
            let mut a = Assembler::new();
            a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Intersect, IndexSize::U16)));
            a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
            a.li_addr(R::T0, vals_a);
            a.scfgwi(R::T0, cfg_addr(sreg::DATA_BASE, 0));
            a.li_addr(R::T0, idx_b);
            a.scfgwi(R::T0, cfg_addr(sreg::JOIN_IDX_B, 0));
            a.li_addr(R::T0, vals_b);
            a.scfgwi(R::T0, cfg_addr(sreg::JOIN_DATA_B, 0));
            a.li(R::T0, a_idcs.len() as i64);
            a.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_A, 0));
            a.li(R::T0, if intersecting { b_idcs.len() as i64 } else { 0 });
            a.scfgwi(R::T0, cfg_addr(sreg::JOIN_NNZ_B, 0));
            a.li_addr(R::T0, idx_a);
            a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 0)); // launch
            a.csrsi(issr_isa::Csr::Ssr, 1);
            for k in 0..n_acc {
                a.fcvt_d_w(F::FT2.offset(k), R::ZERO);
            }
            a.roi_begin();
            a.frep_stream(1, Stagger::accumulator(n_acc));
            a.fmadd_d(F::FT2, F::FT0, F::FT1, F::FT2);
            a.roi_end();
            a.fadd_d(F::FT2, F::FT2, F::FT3);
            a.fadd_d(F::FT4, F::FT4, F::FT5);
            a.fadd_d(F::FT2, F::FT2, F::FT4);
            a.csrci(issr_isa::Csr::Ssr, 1);
            a.li_addr(R::A2, out);
            a.fsd(F::FT2, R::A2, 0);
            a.halt();
            let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
            sim.mem.array_mut().store_u16_slice(idx_a, &a_idcs);
            sim.mem.array_mut().store_u16_slice(idx_b, &b_idcs);
            for j in 0..a_idcs.len() as u32 {
                sim.mem.array_mut().store_f64(vals_a + j * 8, f64::from(j + 1));
            }
            for j in 0..b_idcs.len() as u32 {
                sim.mem.array_mut().store_f64(vals_b + j * 8, f64::from(j + 1) * 10.0);
            }
            let summary = sim.run(100_000).unwrap().expect_clean();
            (sim.mem.array().load_f64(out), summary.metrics.roi.fmadds)
        };
        // Matches at 3 (a1,b0), 5 (a2,b1), 9 (a3,b3): 2*10 + 3*20 + 4*40.
        let (dot, _) = run(true);
        assert_eq!(dot, 240.0);
        // An empty B side intersects to nothing: the body runs ZERO
        // times — the case a capture-and-execute FREP cannot express.
        let (dot, fmadds) = run(false);
        assert_eq!(dot, 0.0);
        assert_eq!(fmadds, 0, "stream loop body must not execute on an empty stream");
    }

    /// A `frep.s` body with no stream-mapped source terminates
    /// immediately (zero iterations) instead of spinning.
    #[test]
    fn frep_stream_without_stream_sources_is_a_no_op() {
        let mut a = Assembler::new();
        a.fcvt_d_w(F::FS0, R::ZERO);
        a.fcvt_d_w(F::FS1, R::ZERO);
        a.csrsi(issr_isa::Csr::Ssr, 1);
        a.roi_begin();
        a.frep_stream(1, Stagger::NONE);
        a.fadd_d(F::FS0, F::FS0, F::FS1);
        a.roi_end();
        a.csrci(issr_isa::Csr::Ssr, 1);
        a.halt();
        let mut sim = SingleCcSim::with_joiner(a.finish().unwrap());
        let summary = sim.run(10_000).unwrap().expect_clean();
        assert_eq!(summary.metrics.roi.fadds, 0);
    }

    /// Malformed streamer configuration accesses park the core with a
    /// structured `CfgFault` trap instead of aborting the simulator.
    #[test]
    fn cfg_fault_latches_as_trap() {
        use issr_core::cfg::{cfg_addr, reg as sreg};
        use issr_core::CfgFault;
        // scfgri to a lane the paper config does not have.
        let mut a = Assembler::new();
        a.scfgri(R::T0, cfg_addr(sreg::STATUS, 5));
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let summary = sim.run(1000).unwrap();
        let trap = summary.trap.expect("bad-lane read must trap");
        assert_eq!(trap.cause, crate::core::TrapCause::CfgFault(CfgFault::BadLane { lane: 5 }));
        assert!(trap.to_string().contains("nonexistent lane"), "{trap}");
        // A SpAcc feed launch without SpAcc hardware.
        let mut a = Assembler::new();
        a.li(R::T0, 1);
        a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
        a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let summary = sim.run(1000).unwrap();
        assert_eq!(
            summary.trap.expect("launch must trap").cause,
            crate::core::TrapCause::CfgFault(CfgFault::NoSpAcc)
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let mut a = Assembler::new();
            a.li(R::T0, 100);
            let head = a.bind_label();
            a.addi(R::T0, R::T0, -1);
            a.bnez(R::T0, head);
            a.halt();
            a.finish().unwrap()
        };
        let mut s1 = SingleCcSim::new(build());
        let mut s2 = SingleCcSim::new(build());
        let c1 = s1.run(10_000).unwrap().cycles;
        let c2 = s2.run(10_000).unwrap().cycles;
        assert_eq!(c1, c2);
    }

    /// A program that runs off the end of its instruction memory parks
    /// the core with a structured trap instead of aborting the process.
    #[test]
    fn missing_halt_traps_instead_of_panicking() {
        let mut a = Assembler::new();
        a.li(R::T0, 3);
        a.addi(R::T0, R::T0, 1);
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let summary = sim.run(1000).unwrap();
        let trap = summary.trap.expect("run must surface the fetch trap");
        assert_eq!(trap.cause, crate::core::TrapCause::PcOutOfRange);
        assert_eq!(trap.hartid, 0);
        assert!(trap.to_string().contains("past end"), "{trap}");
        // The core still drained: registers reflect the executed prefix.
        assert_eq!(sim.cc.core.reg(R::T0), 4);
        // A clean run reports no trap.
        let mut b = Assembler::new();
        b.halt();
        let mut sim = SingleCcSim::new(b.finish().unwrap());
        assert!(sim.run(100).unwrap().trap.is_none());
    }

    #[test]
    #[should_panic(expected = "simulated core trapped")]
    fn expect_clean_panics_on_trap() {
        let mut a = Assembler::new();
        a.nop(); // no halt: runs off the end
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let _ = sim.run(100).unwrap().expect_clean();
    }

    /// Every attribution table totals exactly the ROI cycle count —
    /// the by-construction invariant — and an issue-bound integer loop
    /// shows an almost fully active hart.
    #[test]
    fn attribution_tables_sum_to_roi_cycles() {
        use issr_trace::StallCause;
        let mut a = Assembler::new();
        a.li(R::T0, 64);
        a.roi_begin();
        let head = a.bind_label();
        a.addi(R::T0, R::T0, -1);
        a.bnez(R::T0, head);
        a.roi_end();
        a.halt();
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let summary = sim.run(10_000).unwrap().expect_clean();
        let roi = summary.metrics.roi.cycles;
        assert!(roi > 0);
        assert_eq!(summary.attr.hart.total(), roi);
        for lane in &summary.attr.lanes {
            assert_eq!(lane.total(), roi);
        }
        assert_eq!(summary.attr.joiner.total(), roi);
        assert_eq!(summary.attr.spacc.total(), roi);
        // A pure integer loop: the hart is active nearly every cycle,
        // the streams are idle throughout.
        assert!(summary.attr.hart.occupancy() > 0.9, "{}", summary.attribution_report());
        assert_eq!(summary.attr.lanes[0].get(StallCause::Idle), roi);
    }

    /// The dirty-set soundness property: once [`CoreComplex::is_idle`]
    /// holds, a full [`CoreComplex::tick`] and the skip path
    /// [`CoreComplex::tick_idle`] must leave bit-identical state — the
    /// skip is only legal because the tick it elides is a provable
    /// no-op. Checked with the ROI closed (plain counting) and left
    /// open at `halt` (attribution keeps recording every idle cycle).
    fn assert_idle_tick_equivalence(close_roi: bool) {
        let build = || {
            let mut a = Assembler::new();
            a.li(R::T0, 8);
            a.roi_begin();
            let head = a.bind_label();
            a.addi(R::T0, R::T0, -1);
            a.bnez(R::T0, head);
            if close_roi {
                a.roi_end();
            }
            a.halt();
            a.finish().unwrap()
        };
        let mut full = SingleCcSim::new(build());
        let mut skip = SingleCcSim::new(build());
        // Identical programs run identically; both stop quiescent, then
        // tick until the writeback slots drain and `is_idle` latches.
        for sim in [&mut full, &mut skip] {
            sim.run(1000).unwrap();
            for _ in 0..16 {
                if sim.cc.is_idle() {
                    break;
                }
                let now = sim.now;
                sim.cc.tick(now, &mut sim.ports, None, None);
                let mut refs: Vec<&mut MemPort> = sim.ports.iter_mut().collect();
                sim.mem.tick(now, &mut refs, &[]);
                sim.now += 1;
            }
            assert!(sim.cc.is_idle(), "CC failed to reach the idle state");
        }
        assert_eq!(format!("{:?}", full.cc), format!("{:?}", skip.cc));
        // Diverge: one CC keeps taking full ticks, the other only the
        // skip path's bookkeeping. Every observable must stay equal.
        for _ in 0..16 {
            let now = full.now;
            full.cc.tick(now, &mut full.ports, None, None);
            let mut refs: Vec<&mut MemPort> = full.ports.iter_mut().collect();
            full.mem.tick(now, &mut refs, &[]);
            full.now += 1;
            skip.cc.tick_idle();
            assert!(full.cc.is_idle(), "idle must be sticky under full ticks");
            assert_eq!(format!("{:?}", full.cc), format!("{:?}", skip.cc));
            assert_eq!(format!("{:?}", full.ports), format!("{:?}", skip.ports));
            assert_eq!(format!("{:?}", full.mem), format!("{:?}", skip.mem));
        }
    }

    #[test]
    fn idle_tick_is_a_no_op() {
        assert_idle_tick_equivalence(true);
    }

    #[test]
    fn idle_tick_is_a_no_op_with_roi_open() {
        assert_idle_tick_equivalence(false);
    }

    #[test]
    fn timeout_reports_pc() {
        let mut a = Assembler::new();
        let head = a.bind_label();
        a.j(head); // infinite loop
        let mut sim = SingleCcSim::new(a.finish().unwrap());
        let err = sim.run(100).unwrap_err();
        assert_eq!(err.max_cycles, 100);
    }
}
