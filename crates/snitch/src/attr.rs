//! Core-complex cycle attribution: the per-unit [`CycleBreakdown`]
//! tables a [`crate::cc::CoreComplex`] accumulates while its region of
//! interest is open.
//!
//! Each unit — the hart, every streamer lane, the index joiner, the
//! SpAcc — is classified exactly once per ROI cycle at the single place
//! the ROI cycle counter advances ([`crate::cc::CoreComplex::tick`]
//! step 6), so every table's total equals the ROI cycle count by
//! construction.

use issr_core::streamer::StreamerProbe;
use issr_trace::waitgraph::UnitClass;
use issr_trace::{CriticalPath, CycleBreakdown, StallCause, StatMerge, WaitGraph};

/// ROI stall-cause breakdowns for one core complex.
#[derive(Clone, Debug, Default)]
pub struct CcAttribution {
    /// The integer hart (and its FPU subsystem, which issues in
    /// lockstep with the offload queue).
    pub hart: CycleBreakdown,
    /// One table per streamer lane (`ft0`, `ft1`, …).
    pub lanes: Vec<CycleBreakdown>,
    /// The index joiner (all zero without joiner hardware).
    pub joiner: CycleBreakdown,
    /// The sparse accumulator (all zero without SpAcc hardware).
    pub spacc: CycleBreakdown,
}

impl CcAttribution {
    /// An all-zero attribution sized for `n_lanes` streamer lanes.
    #[must_use]
    pub fn with_lanes(n_lanes: usize) -> Self {
        Self { lanes: vec![CycleBreakdown::default(); n_lanes], ..Self::default() }
    }

    /// The ROI cycles this attribution covers (every per-unit table
    /// totals to this).
    #[must_use]
    pub fn roi_cycles(&self) -> u64 {
        self.hart.total()
    }

    /// The attribution folded into a wait graph: every blocked cycle of
    /// every unit becomes exactly one edge cycle (see
    /// [`issr_trace::waitgraph::edge_for`]). Derived, so it is
    /// timing-neutral and thread-invariant for free, and its per-unit
    /// edge sums equal the breakdowns' blocked cycles by construction.
    #[must_use]
    pub fn wait_graph(&self) -> WaitGraph {
        let mut g = WaitGraph::new();
        g.add_breakdown(UnitClass::Hart, &self.hart);
        for lane in &self.lanes {
            g.add_breakdown(UnitClass::Lane, lane);
        }
        g.add_breakdown(UnitClass::Joiner, &self.joiner);
        g.add_breakdown(UnitClass::SpAcc, &self.spacc);
        g
    }

    /// The lane the hart most plausibly waits on: the one with the most
    /// non-idle cycles. `None` when every lane stayed idle.
    #[must_use]
    pub fn busiest_lane(&self) -> Option<&CycleBreakdown> {
        let mut best: Option<(u64, &CycleBreakdown)> = None;
        for lane in &self.lanes {
            let busy = lane.total() - lane.get(StallCause::Idle);
            // Strictly greater: ties keep the earlier lane.
            if busy > 0 && best.is_none_or(|(b, _)| busy > b) {
                best = Some((busy, lane));
            }
        }
        best.map(|(_, l)| l)
    }

    /// The critical path ending at this CC's hart, with one level of
    /// hart→lane descent into the busiest lane. Its partition sums
    /// exactly to [`CcAttribution::roi_cycles`].
    #[must_use]
    pub fn critical_path(&self) -> CriticalPath {
        issr_trace::critpath::extract(UnitClass::Hart, &self.hart, self.busiest_lane())
    }

    /// Labelled `(unit, breakdown)` rows for reporting, with `prefix`
    /// prepended to each unit name (e.g. `"hart3/"`).
    #[must_use]
    pub fn rows(&self, prefix: &str) -> Vec<(String, CycleBreakdown)> {
        let mut rows = vec![(format!("{prefix}hart"), self.hart)];
        for (i, lane) in self.lanes.iter().enumerate() {
            rows.push((format!("{prefix}ft{i}"), *lane));
        }
        if self.joiner.total() > 0 {
            rows.push((format!("{prefix}joiner"), self.joiner));
        }
        if self.spacc.total() > 0 {
            rows.push((format!("{prefix}spacc"), self.spacc));
        }
        rows
    }
}

impl StatMerge for CcAttribution {
    fn merge_from(&mut self, other: &Self) {
        self.hart.merge_from(&other.hart);
        if self.lanes.len() < other.lanes.len() {
            self.lanes.resize(other.lanes.len(), CycleBreakdown::default());
        }
        for (mine, theirs) in self.lanes.iter_mut().zip(other.lanes.iter()) {
            mine.merge_from(theirs);
        }
        self.joiner.merge_from(&other.joiner);
        self.spacc.merge_from(&other.spacc);
    }
}

/// The most recent cycle's classification of every unit in a core
/// complex — refreshed every tick (ROI or not), so harnesses can drive
/// interval tracing from it without touching the ROI-gated breakdowns.
#[derive(Clone, Debug)]
pub struct CcCauses {
    /// The hart's cause this cycle.
    pub hart: StallCause,
    /// The streamer units' causes this cycle.
    pub streamer: StreamerProbe,
}

impl Default for CcCauses {
    fn default() -> Self {
        Self {
            hart: StallCause::Idle,
            streamer: StreamerProbe {
                lanes: Vec::new(),
                joiner: StallCause::Idle,
                spacc: StallCause::Idle,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_extends_lane_vectors() {
        let mut a = CcAttribution::with_lanes(1);
        a.hart.record(StallCause::Active);
        a.lanes[0].record(StallCause::Active);
        let mut b = CcAttribution::with_lanes(2);
        b.hart.record(StallCause::Idle);
        b.lanes[1].record(StallCause::FifoEmpty);
        a.merge_from(&b);
        assert_eq!(a.lanes.len(), 2);
        assert_eq!(a.hart.total(), 2);
        assert_eq!(a.lanes[1].get(StallCause::FifoEmpty), 1);
    }

    #[test]
    fn wait_graph_sums_blocked_cycles_across_units() {
        use issr_trace::{is_blocked, EdgeClass};
        let mut attr = CcAttribution::with_lanes(2);
        attr.hart.record(StallCause::Active);
        attr.hart.record(StallCause::FifoEmpty);
        attr.lanes[0].record(StallCause::PortConflict);
        attr.lanes[0].record(StallCause::Active);
        attr.lanes[1].record(StallCause::Idle);
        attr.joiner.record(StallCause::FifoEmpty);
        attr.spacc.record(StallCause::DrainBusy);
        let g = attr.wait_graph();
        let blocked: u64 = [&attr.hart, &attr.lanes[0], &attr.lanes[1], &attr.joiner, &attr.spacc]
            .iter()
            .flat_map(|b| b.iter())
            .filter(|&(c, _)| is_blocked(c))
            .map(|(_, n)| n)
            .sum();
        assert_eq!(g.total(), blocked);
        assert_eq!(g.get(EdgeClass::HartLane), 1);
        assert_eq!(g.get(EdgeClass::LaneTcdm), 1);
        assert_eq!(g.get(EdgeClass::JoinerLane), 1);
        assert_eq!(g.get(EdgeClass::SpAccTcdm), 1);
    }

    #[test]
    fn critical_path_descends_into_busiest_lane() {
        use issr_trace::EdgeClass;
        let mut attr = CcAttribution::with_lanes(2);
        for _ in 0..4 {
            attr.hart.record(StallCause::Active);
        }
        for _ in 0..6 {
            attr.hart.record(StallCause::FifoEmpty);
        }
        // Lane 0 busy and TCDM-bound; lane 1 idle (must not dilute).
        for _ in 0..5 {
            attr.lanes[0].record(StallCause::FifoEmpty);
            attr.lanes[0].record(StallCause::Active);
            attr.lanes[1].record(StallCause::Idle);
            attr.lanes[1].record(StallCause::Idle);
        }
        let p = attr.critical_path();
        assert_eq!(p.length, attr.roi_cycles());
        assert_eq!(p.compute + p.blocked(), p.length, "exact partition");
        assert_eq!(p.get(EdgeClass::LaneTcdm), 3, "half the descended wait");
        assert_eq!(p.compute, 4 + 3);
        assert!(attr.busiest_lane().is_some());
        assert!(CcAttribution::with_lanes(2).busiest_lane().is_none());
    }

    #[test]
    fn rows_hide_absent_units() {
        let mut attr = CcAttribution::with_lanes(2);
        attr.hart.record(StallCause::Active);
        let rows = attr.rows("h0/");
        assert_eq!(rows.len(), 3, "hart + two lanes, no joiner/spacc");
        assert_eq!(rows[0].0, "h0/hart");
        attr.joiner.record(StallCause::Active);
        assert_eq!(attr.rows("").len(), 4);
    }
}
