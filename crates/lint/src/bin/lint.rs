//! `issr-lint` CLI: statically verify every shipped kernel program.
//!
//! ```text
//! cargo run -p issr-lint --bin lint [-- --deny-warnings] [--target paper|sssr]
//! ```
//!
//! Each catalog entry is linted against the hardware configuration it
//! targets (the paper's two-lane SSR+ISSR core, or the sparse-sparse
//! configuration with joiner and SpAcc for the intersection kernels);
//! `--target` forces one configuration for every entry instead,
//! skipping the entries that don't fit it. Exit status is nonzero on
//! any error, or — under `--deny-warnings` — on any diagnostic at all.

use std::process::ExitCode;

use issr_kernels::catalog::catalog;
use issr_lint::{has_errors, lint_program, LintTarget};

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut forced: Option<&'static str> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--target" => match args.next().as_deref() {
                Some("paper") => forced = Some("paper"),
                Some("sssr") => forced = Some("sssr"),
                other => {
                    eprintln!("--target expects `paper` or `sssr`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: cargo run -p issr-lint --bin lint [-- --deny-warnings] \
                     [--target paper|sssr]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let paper = LintTarget::paper();
    let sssr = LintTarget::sssr();
    let mut programs = 0usize;
    let mut diagnostics = 0usize;
    let mut errors = 0usize;
    for entry in catalog() {
        let target = match forced {
            Some("paper") => {
                if entry.needs_sparse_units {
                    continue;
                }
                &paper
            }
            Some("sssr") => &sssr,
            _ if entry.needs_sparse_units => &sssr,
            _ => &paper,
        };
        programs += 1;
        let diags = lint_program(&entry.program, target);
        if has_errors(&diags) {
            errors += 1;
        }
        diagnostics += diags.len();
        for d in &diags {
            println!("{}: {d}", entry.name);
        }
    }
    println!(
        "issr-lint: {programs} program{} checked, {diagnostics} diagnostic{}, \
         {errors} with errors",
        if programs == 1 { "" } else { "s" },
        if diagnostics == 1 { "" } else { "s" },
    );
    if errors > 0 || (deny_warnings && diagnostics > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
