//! Control-flow graph construction and structural checks.
//!
//! Programs are flat instruction sequences starting at PC 0 (see
//! `issr_isa::asm::Program`), so the CFG is per-instruction: each node
//! is an instruction index, each edge a possible `next_pc`. Branch and
//! jump offsets are immediates, so every direct edge is known
//! statically; `jalr` is the only indirect transfer and is modelled as
//! "leaves the graph" (its presence disables the analyses that would
//! otherwise claim to know all predecessors).

use issr_isa::instr::Instr;

use crate::{Diagnostic, FaultClass, Severity};

/// The per-instruction control-flow graph.
pub(crate) struct Cfg {
    /// In-range successor indices per instruction.
    pub succs: Vec<Vec<usize>>,
    /// Whether each instruction is reachable from PC 0 along direct
    /// edges.
    pub reachable: Vec<bool>,
    /// Whether the program contains an indirect jump (`jalr`).
    pub has_indirect: bool,
    /// Control transfers that leave the program: `(index, message)`.
    escapes: Vec<(usize, String)>,
}

impl Cfg {
    pub fn build(instrs: &[Instr]) -> Self {
        let n = instrs.len();
        let mut succs = vec![Vec::new(); n];
        let mut escapes = Vec::new();
        let mut has_indirect = false;
        for (i, instr) in instrs.iter().enumerate() {
            match *instr {
                Instr::Halt => {}
                // The indirect target is data-dependent; the node keeps
                // no out-edges and the flag weakens downstream passes.
                Instr::Jalr { .. } => has_indirect = true,
                Instr::Jal { offset, .. } => match jump_target(i, offset, n) {
                    Ok(t) => succs[i].push(t),
                    Err(msg) => escapes.push((i, msg)),
                },
                Instr::Branch { offset, .. } => {
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    } else {
                        escapes.push((
                            i,
                            "branch fall-through runs past the end of the program".into(),
                        ));
                    }
                    match jump_target(i, offset, n) {
                        Ok(t) => succs[i].push(t),
                        Err(msg) => escapes.push((i, msg)),
                    }
                }
                _ => {
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    } else {
                        escapes.push((
                            i,
                            "execution runs past the end of the program (no halt)".into(),
                        ));
                    }
                }
            }
        }
        let mut reachable = vec![false; n];
        let mut stack = vec![0usize];
        reachable[0] = true;
        while let Some(i) = stack.pop() {
            for &s in &succs[i] {
                if !reachable[s] {
                    reachable[s] = true;
                    stack.push(s);
                }
            }
        }
        Self { succs, reachable, has_indirect, escapes }
    }

    /// Reports control transfers that leave the program — the static
    /// image of the core's `PcOutOfRange` trap. Only reachable
    /// instructions report (an unreachable escape is subsumed by the
    /// dead-code warning).
    pub fn structural_diagnostics(&self, diags: &mut Vec<Diagnostic>) {
        for (i, msg) in &self.escapes {
            if self.reachable[*i] {
                diags.push(Diagnostic {
                    pc: (*i as u32) * 4,
                    severity: Severity::Error,
                    class: FaultClass::PcOutOfRange,
                    message: msg.clone(),
                });
            }
        }
    }
}

/// Resolves a direct jump/branch offset to an instruction index, or
/// explains why the transfer escapes the program.
fn jump_target(i: usize, offset: i32, n: usize) -> Result<usize, String> {
    if offset % 4 != 0 {
        return Err(format!("misaligned jump offset {offset} (targets must be 4-byte aligned)"));
    }
    let target = i as i64 + i64::from(offset) / 4;
    if target < 0 || target >= n as i64 {
        Err(format!(
            "jump target {:#x} lies outside the program (0..{:#x})",
            i as i64 * 4 + i64::from(offset),
            n * 4
        ))
    } else {
        Ok(target as usize)
    }
}
