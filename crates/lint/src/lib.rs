//! # issr-lint
//!
//! Static verification of guest kernel programs *before they ever
//! tick*: a control-flow graph plus a forward abstract-interpretation
//! pass over the stream-unit state a program would build up — per-lane
//! shadow `scfg` writes, joiner and SpAcc job launches, the `ssr`
//! redirection CSR, and FREP sequencer windows.
//!
//! The SSR/ISSR programming model is easy to misconfigure, which is why
//! the runtime latches [`issr_core::CfgFault`] /
//! [`issr_core::StreamFault`] traps — but every one of those costs a
//! full simulation to discover, and a serving layer must reject
//! malformed tenant jobs before they occupy a cluster. This crate moves
//! every *statically decidable* instance of that checking to assemble
//! time. Both the linter and the runtime go through the same predicates
//! in [`issr_core::cfg_check`], so the static verdict and the trap
//! surface cannot drift apart.
//!
//! What the analyzer catches:
//!
//! 1. **Stream-register use before a job is launched** — an FP
//!    instruction sourcing `ft0`/`ft1` under an enabled `ssr` CSR on a
//!    path where no read job (pointer write, joiner launch) ever
//!    configured the lane. At runtime this is a silent deadlock: the
//!    lane FIFO never fills, the FPU stalls forever, and the run ends
//!    in `SimTimeout` — the most expensive possible way to find a bug.
//! 2. **Malformed FREP bodies** — branches, `scfg` accesses, `ssr` CSR
//!    toggles, nested FREPs or `halt` inside the sequencer capture
//!    window, bodies larger than the sequencer buffer, empty bodies,
//!    and `frep.s` loops whose body reads no stream source (they retire
//!    after zero iterations).
//! 3. **Port-conflict schedules** — a lane job launched on the SpAcc's
//!    port while a feed is active, or on a joiner-owned lane, or a
//!    joiner launch overlapping an active SpAcc job: the schedules that
//!    latch [`StreamFaultKind::PortConflict`] at runtime.
//! 4. **Configuration faults** — every launch the runtime would reject
//!    with a [`CfgFault`] (bad lane, missing joiner/SpAcc hardware,
//!    zero-capacity feed, count-mode drain, misaligned drain bases,
//!    indirection on a plain SSR lane, joiner-enabled pointer writes
//!    outside the launch register), proved through constant propagation
//!    over the shadow registers.
//! 5. **Dead and unreachable code** — unreachable instructions and
//!    stream cfg writes never consumed by any launch.
//!
//! The pass is a *must*-analysis: a diagnostic is only emitted when the
//! fault provably occurs on every execution reaching that instruction,
//! so well-formed kernels — including every kernel shipped in
//! `issr-kernels` — lint clean, and a flagged launch is one the runtime
//! would provably trap (test-enforced against the simulator).

#![forbid(unsafe_code)]

mod absint;
mod cfgraph;
mod liveness;

use issr_core::cfg_check::HwCaps;
use issr_core::lane::LaneKind;
use issr_core::{CfgFault, StreamFault, StreamFaultKind};
use issr_isa::asm::Program;

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// The program misbehaves at runtime: a latched trap, a sequencer
    /// abort, or a silent deadlock.
    Error,
    /// The program works but carries dead weight: unreachable code,
    /// unconsumed cfg writes, zero-trip stream loops.
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// Cross-reference from a diagnostic to the runtime trap surface: what
/// the simulator would do at this program point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultClass {
    /// The launch latches exactly this [`CfgFault`] (same PC, same
    /// payload — the trap records the faulting `scfgwi`/`scfgri`).
    Cfg(CfgFault),
    /// The schedule latches this [`StreamFault`] mid-stream (the trap
    /// PC is the delivery vicinity, not the launch).
    Stream(StreamFault),
    /// No trap at all: the stream units deadlock and the run ends in
    /// `SimTimeout` after the full cycle budget.
    Hang,
    /// The FREP sequencer (or FPU capture path) aborts the simulation.
    Sequencer,
    /// Control flow leaves the program: the core traps `PcOutOfRange`.
    PcOutOfRange,
    /// No runtime manifestation — wasted instructions.
    Dead,
}

impl FaultClass {
    /// Short class code used in the rendered diagnostic.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            FaultClass::Cfg(_) => "cfg",
            FaultClass::Stream(_) => "stream",
            FaultClass::Hang => "hang",
            FaultClass::Sequencer => "frep",
            FaultClass::PcOutOfRange => "pc",
            FaultClass::Dead => "dead",
        }
    }
}

/// One finding: severity, the byte PC it anchors to (the same PC a
/// runtime trap would record for cfg faults), the fault-class
/// cross-reference, and a human-readable message.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Byte address of the offending instruction (instruction index × 4
    /// — the unit `Trap::pc` uses).
    pub pc: u32,
    /// Error (runtime misbehaviour) or warning (dead weight).
    pub severity: Severity,
    /// What the runtime would do here.
    pub class: FaultClass,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}] {:#010x}: {}", self.severity, self.class.code(), self.pc, self.message)
    }
}

/// The stream-unit hardware a program is linted against — mirrors the
/// streamer configurations the harnesses construct.
#[derive(Clone, Debug)]
pub struct LintTarget {
    /// Lane kinds, indexed like the stream registers (`ft0`, `ft1`, ...).
    pub lanes: Vec<LaneKind>,
    /// Whether the target has the sparse-sparse index joiner.
    pub has_joiner: bool,
    /// Whether the target has the sparse accumulator.
    pub has_spacc: bool,
    /// FREP sequencer buffer depth in instructions.
    pub frep_buffer: usize,
}

impl LintTarget {
    /// The paper configuration: one SSR lane + one ISSR lane, no
    /// sparse-sparse units (`SingleCcSim::new`).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            lanes: vec![LaneKind::Ssr, LaneKind::Issr],
            has_joiner: false,
            has_spacc: false,
            frep_buffer: 16,
        }
    }

    /// The SSSR configuration: paper lanes plus the index joiner and
    /// the sparse accumulator (`SingleCcSim::with_joiner`).
    #[must_use]
    pub fn sssr() -> Self {
        Self { has_joiner: true, has_spacc: true, ..Self::paper() }
    }

    /// The capability view shared with the runtime's `cfg_write` path.
    #[must_use]
    pub fn caps(&self) -> HwCaps<'_> {
        HwCaps { lanes: &self.lanes, has_joiner: self.has_joiner, has_spacc: self.has_spacc }
    }

    pub(crate) fn n_lanes(&self) -> usize {
        self.lanes.len()
    }
}

/// Where a fault class is decidable: at assemble time or only once the
/// data arrives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decidability {
    /// The linter proves the fault from the program text alone.
    Static,
    /// The fault depends on runtime data (actual indices, row lengths,
    /// timing) — only the trap surface can catch it.
    RuntimeOnly,
}

/// Classification of every [`CfgFault`] class. The `match` is
/// deliberately exhaustive (no wildcard): adding a fault variant fails
/// compilation here until it is classified.
#[must_use]
pub fn classify_cfg_fault(fault: &CfgFault) -> Decidability {
    match fault {
        // Every configuration fault is a pure function of the shadow
        // state the program itself wrote — constant propagation decides
        // all of them when the operands are program constants.
        CfgFault::BadLane { .. }
        | CfgFault::NoJoiner
        | CfgFault::NoSpAcc
        | CfgFault::ZeroCapacity
        | CfgFault::CountModeDrain
        | CfgFault::NoIndirection { .. }
        | CfgFault::BadJoinerLaunch { .. }
        | CfgFault::MisalignedDrain { .. } => Decidability::Static,
    }
}

/// Classification of every [`StreamFaultKind`] variant — exhaustive for
/// the same reason as [`classify_cfg_fault`].
#[must_use]
pub fn classify_stream_fault(kind: &StreamFaultKind) -> Decidability {
    match kind {
        // Whether a merged row overflows, a feed's indices are sorted,
        // or a unit's watchdog expires depends on the data streamed at
        // runtime. (The *never-configured* special case of a stall — a
        // stream register read with no job — is caught statically as a
        // `FaultClass::Hang`.)
        StreamFaultKind::Overflow { .. }
        | StreamFaultKind::Unsorted { .. }
        | StreamFaultKind::Stall { .. } => Decidability::RuntimeOnly,
        // Port ownership is schedule-determined: two launches on one
        // port conflict regardless of the data.
        StreamFaultKind::PortConflict => Decidability::Static,
    }
}

/// Lints an assembled program against a hardware target. Diagnostics
/// come back sorted by PC, errors before warnings at the same PC.
#[must_use]
pub fn lint_program(program: &Program, target: &LintTarget) -> Vec<Diagnostic> {
    let instrs = program.instrs();
    let mut diags = Vec::new();
    if instrs.is_empty() {
        diags.push(Diagnostic {
            pc: 0,
            severity: Severity::Error,
            class: FaultClass::PcOutOfRange,
            message: "empty program: the fetch of the first instruction traps".into(),
        });
        return diags;
    }
    let cfg = cfgraph::Cfg::build(instrs);
    cfg.structural_diagnostics(&mut diags);
    let states = absint::analyze(instrs, &cfg, target);
    absint::report(instrs, &cfg, target, &states, &mut diags);
    liveness::report(instrs, &cfg, target, &mut diags);
    diags.sort_by_key(|d| (d.pc, d.severity));
    diags
}

/// Whether any diagnostic in `diags` is an error.
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Lints `program` and panics with the rendered findings if any
/// diagnostic (error *or* warning) comes back — the load-time gate the
/// examples and benches run before handing a program to a simulator.
///
/// # Panics
/// Panics if the program produces any diagnostic.
pub fn assert_clean(program: &Program, target: &LintTarget, what: &str) {
    let diags = lint_program(program, target);
    assert!(
        diags.is_empty(),
        "issr-lint: {what} failed static verification:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

/// Lints every program in the shipped-kernel catalog
/// ([`issr_kernels::catalog`]) against the hardware configuration it
/// targets — the one-call load-time gate the bench binaries and
/// examples run before handing anything to a simulator.
///
/// # Panics
/// Panics if any shipped kernel produces a diagnostic.
pub fn assert_shipped_clean() {
    let paper = LintTarget::paper();
    let sssr = LintTarget::sssr();
    for entry in issr_kernels::catalog::catalog() {
        let target = if entry.needs_sparse_units { &sssr } else { &paper };
        assert_clean(&entry.program, target, &entry.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_variant() {
        let cfg_faults = [
            CfgFault::BadLane { lane: 2 },
            CfgFault::NoJoiner,
            CfgFault::NoSpAcc,
            CfgFault::ZeroCapacity,
            CfgFault::CountModeDrain,
            CfgFault::NoIndirection { lane: 0 },
            CfgFault::BadJoinerLaunch { lane: 1 },
            CfgFault::MisalignedDrain { idx_out: 1, val_out: 4 },
        ];
        for f in &cfg_faults {
            assert_eq!(classify_cfg_fault(f), Decidability::Static, "{f}");
        }
        assert_eq!(classify_stream_fault(&StreamFaultKind::PortConflict), Decidability::Static);
        for k in [
            StreamFaultKind::Overflow { cap: 4 },
            StreamFaultKind::Unsorted { prev: 3, next: 1 },
            StreamFaultKind::Stall { cycles: 100 },
        ] {
            assert_eq!(classify_stream_fault(&k), Decidability::RuntimeOnly);
        }
    }

    #[test]
    fn empty_program_is_an_error() {
        let p = Program::default();
        let diags = lint_program(&p, &LintTarget::paper());
        assert!(has_errors(&diags));
        assert_eq!(diags[0].class, FaultClass::PcOutOfRange);
    }

    #[test]
    fn diagnostic_renders_with_class_code_and_pc() {
        let d = Diagnostic {
            pc: 0x18,
            severity: Severity::Error,
            class: FaultClass::Cfg(CfgFault::NoJoiner),
            message: "joiner job launched on a streamer without an index joiner".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("error[cfg] 0x00000018:"), "{s}");
    }
}
