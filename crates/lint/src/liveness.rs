//! Check (5): dead and unreachable code.
//!
//! Unreachable instructions fall out of the CFG's reachability pass.
//! Dead *configuration writes* — `scfgwi` to a stored shadow cell that
//! no launch or readback ever consumes — need a backward may-liveness
//! analysis over the `(lane, cell)` bit-space: a launch consumes the
//! whole shadow of every lane (joiner and SpAcc launches decode cells
//! across the address space, and being conservative here only silences
//! warnings, never truth), a readback consumes its one cell, and a
//! rewrite kills the previous value.
//!
//! Both analyses are may-analyses feeding *warnings*: anything a `jalr`
//! could reach is assumed live, and unreachable-code reporting is
//! suppressed entirely when one is present.

use issr_core::cfg::{reg, split_addr};
use issr_core::cfg_check::is_pointer_reg;
use issr_isa::instr::Instr;

use crate::absint::{cell_slot, reg_name, N_CELLS};
use crate::cfgraph::Cfg;
use crate::{Diagnostic, FaultClass, LintTarget, Severity};

pub(crate) fn report(
    instrs: &[Instr],
    cfg: &Cfg,
    target: &LintTarget,
    diags: &mut Vec<Diagnostic>,
) {
    unreachable_runs(cfg, diags);
    dead_cfg_writes(instrs, cfg, target, diags);
}

/// One warning per maximal run of unreachable instructions.
fn unreachable_runs(cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    if cfg.has_indirect {
        return;
    }
    let mut i = 0;
    while i < cfg.reachable.len() {
        if cfg.reachable[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < cfg.reachable.len() && !cfg.reachable[i] {
            i += 1;
        }
        let len = i - start;
        diags.push(Diagnostic {
            pc: (start as u32) * 4,
            severity: Severity::Warning,
            class: FaultClass::Dead,
            message: format!(
                "unreachable code: {len} instruction{} never executed",
                if len == 1 { "" } else { "s" }
            ),
        });
    }
}

/// Whether a cfg write to `(register, lane)` launches a job — and so
/// consumes shadow state rather than storing it.
fn is_launch(register: u16, lane: u8) -> bool {
    is_pointer_reg(register)
        || (lane == 0
            && (register == reg::ACC_FEED
                || register == reg::ACC_DRAIN
                || register == reg::ACC_CLEAR))
}

fn dead_cfg_writes(instrs: &[Instr], cfg: &Cfg, target: &LintTarget, diags: &mut Vec<Diagnostic>) {
    let n = instrs.len();
    let n_lanes = target.n_lanes();
    // The (lane, cell) domain is packed into a u128 bitset. Streamers
    // allow up to 8 lanes, and 8 * N_CELLS = 160 bits does not fit —
    // in release builds the shift would silently wrap and every
    // verdict after it would be wrong. This pass only emits warnings,
    // so for oversized targets it is skipped rather than widened.
    if n_lanes * N_CELLS >= 128 {
        return;
    }
    let all: u128 = (1u128 << (n_lanes * N_CELLS)) - 1;
    let bit = |lane: usize, slot: usize| 1u128 << (lane * N_CELLS + slot);

    // Backward transfer of one instruction over the live-cell set.
    let transfer = |instr: &Instr, out: u128| -> u128 {
        match *instr {
            Instr::Scfgwi { addr, .. } => {
                let (register, lane) = split_addr(addr);
                if (lane as usize) >= n_lanes {
                    return out;
                }
                if is_launch(register, lane) {
                    return all;
                }
                match cell_slot(register) {
                    Some(slot) => out & !bit(lane as usize, slot),
                    None => out,
                }
            }
            Instr::Scfgri { addr, .. } => {
                let (register, lane) = split_addr(addr);
                match cell_slot(register) {
                    Some(slot) if (lane as usize) < n_lanes => out | bit(lane as usize, slot),
                    _ => out,
                }
            }
            // The continuation of an indirect jump is unknown; assume
            // it consumes everything.
            Instr::Jalr { .. } => all,
            _ => out,
        }
    };

    let mut live_in = vec![0u128; n];
    let mut live_out = vec![0u128; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let out = if matches!(instrs[i], Instr::Jalr { .. }) {
                all
            } else {
                cfg.succs[i].iter().fold(0u128, |acc, &s| acc | live_in[s])
            };
            let inn = transfer(&instrs[i], out);
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
    }

    for (i, instr) in instrs.iter().enumerate() {
        if !cfg.reachable[i] {
            continue;
        }
        let Instr::Scfgwi { addr, .. } = *instr else { continue };
        let (register, lane) = split_addr(addr);
        if (lane as usize) >= n_lanes || is_launch(register, lane) {
            continue;
        }
        let Some(slot) = cell_slot(register) else { continue };
        if live_out[i] & bit(lane as usize, slot) == 0 {
            diags.push(Diagnostic {
                pc: (i as u32) * 4,
                severity: Severity::Warning,
                class: FaultClass::Dead,
                message: format!(
                    "cfg write to {}/lane {lane} is never consumed by a launch or readback",
                    reg_name(register)
                ),
            });
        }
    }
}
