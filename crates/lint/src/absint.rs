//! Forward abstract interpretation over stream-unit state.
//!
//! The abstract domain tracks exactly what the streamer's trap surface
//! depends on: the integer register file as constants (`scfg` operands
//! are almost always materialized with `li`), each lane's stored shadow
//! cells, whether each lane ever had a read/write job launched, whether
//! the joiner and SpAcc are active, and the `ssr` redirection CSR.
//!
//! The analysis is a *must*-analysis: three-valued facts (`No`/`Maybe`/
//! `Yes`) join to `Maybe` on disagreement, and diagnostics fire only on
//! definite (`Yes`/`No`) evidence. That asymmetry is what lets every
//! shipped kernel — with its data-dependent loop bounds and status-poll
//! loops — lint clean while provably faulting programs are still
//! caught: a `Maybe` silences the linter, never the runtime.
//!
//! Configuration checks call the same [`issr_core::cfg_check`]
//! predicates the streamer's `cfg_write`/`cfg_read` use, with the lint
//! target's capability set, so a flagged launch is by construction one
//! the runtime would trap.

use issr_core::cfg::{reg, split_addr, AccDrainSpec, CfgShadow};
use issr_core::cfg_check::is_pointer_reg;
use issr_core::lane::LaneKind;
use issr_core::spacc::SPACC_LANE;
use issr_core::{CfgFault, StreamFault, StreamFaultKind, StreamUnit};
use issr_isa::csr::Csr;
use issr_isa::instr::{AluImmOp, AluOp, CsrOp, FrepKind, Instr};
use issr_isa::reg::{FpReg, IntReg};

use crate::cfgraph::Cfg;
use crate::{Diagnostic, FaultClass, LintTarget, Severity};

/// Three-valued logic: the lattice `No < Maybe > Yes`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Bool3 {
    No,
    Maybe,
    Yes,
}

impl Bool3 {
    fn from_bool(b: bool) -> Self {
        if b {
            Bool3::Yes
        } else {
            Bool3::No
        }
    }

    fn join(self, other: Self) -> Self {
        if self == other {
            self
        } else {
            Bool3::Maybe
        }
    }

    /// Downgrades a definite `Yes` to `Maybe` — applied when the
    /// program observes a status word, because a subsequent poll-branch
    /// usually means the unit has retired on the continuing path.
    fn weaken(self) -> Self {
        if self == Bool3::Yes {
            Bool3::Maybe
        } else {
            self
        }
    }
}

/// A flat constant domain over 32-bit register values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AbsVal {
    Const(u32),
    Unknown,
}

impl AbsVal {
    fn join(self, other: Self) -> Self {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) if a == b => self,
            _ => AbsVal::Unknown,
        }
    }

    fn constant(self) -> Option<u32> {
        match self {
            AbsVal::Const(v) => Some(v),
            AbsVal::Unknown => None,
        }
    }
}

/// The shadow registers `CfgShadow` actually stores (writes to any
/// other cfg register index are dropped by the hardware, and pointer
/// registers launch jobs instead of storing).
pub(crate) const N_CELLS: usize = 20;
pub(crate) const STORED: [u16; N_CELLS] = [
    reg::REPEAT,
    reg::BOUNDS[0],
    reg::BOUNDS[1],
    reg::BOUNDS[2],
    reg::BOUNDS[3],
    reg::STRIDES[0],
    reg::STRIDES[1],
    reg::STRIDES[2],
    reg::STRIDES[3],
    reg::IDX_CFG,
    reg::DATA_BASE,
    reg::JOIN_CFG,
    reg::JOIN_IDX_B,
    reg::JOIN_DATA_B,
    reg::JOIN_NNZ_A,
    reg::JOIN_NNZ_B,
    reg::ACC_CFG,
    reg::ACC_COUNT,
    reg::ACC_VAL_OUT,
    reg::ACC_BUF_CAP,
];

/// The storage slot of a cfg register, if the shadow stores it.
pub(crate) fn cell_slot(register: u16) -> Option<usize> {
    STORED.iter().position(|&r| r == register)
}

/// Human-readable cfg register name for diagnostics.
pub(crate) fn reg_name(register: u16) -> String {
    match register {
        reg::STATUS => "STATUS".into(),
        reg::REPEAT => "REPEAT".into(),
        r if reg::BOUNDS.contains(&r) => format!("BOUNDS[{}]", r - reg::BOUNDS[0]),
        r if reg::STRIDES.contains(&r) => format!("STRIDES[{}]", r - reg::STRIDES[0]),
        reg::IDX_CFG => "IDX_CFG".into(),
        reg::DATA_BASE => "DATA_BASE".into(),
        r if reg::RPTR.contains(&r) => format!("RPTR[{}]", r - reg::RPTR[0]),
        r if reg::WPTR.contains(&r) => format!("WPTR[{}]", r - reg::WPTR[0]),
        reg::JOIN_CFG => "JOIN_CFG".into(),
        reg::JOIN_IDX_B => "JOIN_IDX_B".into(),
        reg::JOIN_DATA_B => "JOIN_DATA_B".into(),
        reg::JOIN_NNZ_A => "JOIN_NNZ_A".into(),
        reg::JOIN_NNZ_B => "JOIN_NNZ_B".into(),
        reg::JOIN_COUNT => "JOIN_COUNT".into(),
        reg::ACC_CFG => "ACC_CFG".into(),
        reg::ACC_COUNT => "ACC_COUNT".into(),
        reg::ACC_FEED => "ACC_FEED".into(),
        reg::ACC_VAL_OUT => "ACC_VAL_OUT".into(),
        reg::ACC_DRAIN => "ACC_DRAIN".into(),
        reg::ACC_NNZ => "ACC_NNZ".into(),
        reg::ACC_STATUS => "ACC_STATUS".into(),
        reg::ACC_CLEAR => "ACC_CLEAR".into(),
        reg::ACC_BUF_CAP => "ACC_BUF_CAP".into(),
        other => format!("reg {other}"),
    }
}

/// Per-lane abstract state.
#[derive(Clone, PartialEq)]
struct LaneAbs {
    /// Whether a read job was ever launched on this lane.
    read_job: Bool3,
    /// Whether a write job was ever launched on this lane.
    write_job: Bool3,
    /// Stored shadow cells, indexed by [`cell_slot`].
    cells: [AbsVal; N_CELLS],
}

/// The whole-machine abstract state at one program point.
#[derive(Clone, PartialEq)]
pub(crate) struct AbsState {
    regs: [AbsVal; 32],
    ssr_on: Bool3,
    lanes: Vec<LaneAbs>,
    joiner_active: Bool3,
    spacc_active: Bool3,
}

impl AbsState {
    /// The state at PC 0: registers unknown (`x0` pinned to zero), the
    /// `ssr` CSR off and every shadow cell at its reset value — the
    /// state the harness hands a freshly-loaded program.
    fn entry(target: &LintTarget) -> Self {
        let defaults = CfgShadow::default();
        let mut cells = [AbsVal::Unknown; N_CELLS];
        for (slot, &r) in STORED.iter().enumerate() {
            cells[slot] = AbsVal::Const(defaults.read(r));
        }
        let mut regs = [AbsVal::Unknown; 32];
        regs[0] = AbsVal::Const(0);
        Self {
            regs,
            ssr_on: Bool3::No,
            lanes: vec![
                LaneAbs { read_job: Bool3::No, write_job: Bool3::No, cells };
                target.n_lanes()
            ],
            joiner_active: Bool3::No,
            spacc_active: Bool3::No,
        }
    }

    fn reg(&self, r: IntReg) -> AbsVal {
        self.regs[r.index() as usize]
    }

    fn set_reg(&mut self, r: IntReg, v: AbsVal) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    fn join(&self, other: &Self) -> Self {
        let mut regs = self.regs;
        for (a, b) in regs.iter_mut().zip(other.regs.iter()) {
            *a = a.join(*b);
        }
        let lanes = self
            .lanes
            .iter()
            .zip(other.lanes.iter())
            .map(|(a, b)| {
                let mut cells = a.cells;
                for (c, d) in cells.iter_mut().zip(b.cells.iter()) {
                    *c = c.join(*d);
                }
                LaneAbs {
                    read_job: a.read_job.join(b.read_job),
                    write_job: a.write_job.join(b.write_job),
                    cells,
                }
            })
            .collect();
        Self {
            regs,
            ssr_on: self.ssr_on.join(other.ssr_on),
            lanes,
            joiner_active: self.joiner_active.join(other.joiner_active),
            spacc_active: self.spacc_active.join(other.spacc_active),
        }
    }

    fn cell(&self, lane: usize, register: u16) -> AbsVal {
        cell_slot(register).map_or(AbsVal::Unknown, |slot| self.lanes[lane].cells[slot])
    }

    /// Evaluates a single-cell shadow predicate three-valuedly: a
    /// constant cell decides it, an unknown one yields `Maybe`.
    fn shadow_bit(&self, lane: usize, register: u16, f: impl Fn(&CfgShadow) -> bool) -> Bool3 {
        match self.cell(lane, register).constant() {
            Some(v) => {
                let mut s = CfgShadow::default();
                s.write(register, v);
                Bool3::from_bool(f(&s))
            }
            None => Bool3::Maybe,
        }
    }
}

fn cfg_diag(pc: u32, fault: CfgFault) -> Diagnostic {
    Diagnostic {
        pc,
        severity: Severity::Error,
        class: FaultClass::Cfg(fault),
        message: fault.to_string(),
    }
}

fn conflict_diag(pc: u32, unit: StreamUnit) -> Diagnostic {
    let fault = StreamFault { unit, kind: StreamFaultKind::PortConflict };
    Diagnostic {
        pc,
        severity: Severity::Error,
        class: FaultClass::Stream(fault),
        message: fault.to_string(),
    }
}

/// The interpreter: one `step` transforms a state across an
/// instruction, emitting diagnostics through the sink. The fixpoint
/// pass steps with a discarding sink; the report pass re-steps every
/// reachable instruction from its converged entry state.
struct Interp<'a> {
    target: &'a LintTarget,
    instrs: &'a [Instr],
}

impl Interp<'_> {
    fn step(&self, i: usize, st: &mut AbsState, sink: &mut dyn FnMut(Diagnostic)) {
        let pc = (i as u32) * 4;
        match self.instrs[i] {
            Instr::Lui { rd, imm } => st.set_reg(rd, AbsVal::Const(imm)),
            Instr::Auipc { rd, imm } => st.set_reg(rd, AbsVal::Const(pc.wrapping_add(imm))),
            Instr::Jal { rd, .. } | Instr::Jalr { rd, .. } => {
                st.set_reg(rd, AbsVal::Const(pc.wrapping_add(4)));
            }
            Instr::Branch { .. }
            | Instr::Store { .. }
            | Instr::Fence
            | Instr::Ecall
            | Instr::Halt => {}
            Instr::Load { rd, .. } => st.set_reg(rd, AbsVal::Unknown),
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = eval_opimm(op, st.reg(rs1), imm);
                st.set_reg(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = eval_op(op, st.reg(rs1), st.reg(rs2));
                st.set_reg(rd, v);
            }
            Instr::CsrI { op, rd, uimm, csr } => {
                if csr == Csr::Ssr {
                    csr_ssr(st, op, AbsVal::Const(u32::from(uimm)));
                }
                st.set_reg(rd, AbsVal::Unknown);
            }
            Instr::CsrR { op, rd, rs1, csr } => {
                if csr == Csr::Ssr {
                    let v = st.reg(rs1);
                    csr_ssr(st, op, v);
                }
                st.set_reg(rd, AbsVal::Unknown);
            }
            Instr::Scfgwi { rs1, addr } => {
                let value = st.reg(rs1);
                self.cfg_write(pc, st, addr, value, sink);
            }
            Instr::Scfgri { rd, addr } => {
                self.cfg_read(pc, st, addr, sink);
                st.set_reg(rd, AbsVal::Unknown);
            }
            Instr::Frep { kind, n_insns, .. } => self.check_frep(pc, i, kind, n_insns, sink),
            Instr::Fld { rd, .. } => {
                if st.ssr_on == Bool3::Yes && (rd.index() as usize) < self.target.n_lanes() {
                    sink(Diagnostic {
                        pc,
                        severity: Severity::Error,
                        class: FaultClass::Sequencer,
                        message: format!(
                            "fld writes stream register {rd} while the ssr CSR is enabled; \
                             the FPU rejects memory loads into redirected registers"
                        ),
                    });
                }
            }
            ref fp @ (Instr::Fsd { .. }
            | Instr::FpuOp2 { .. }
            | Instr::FpuOp3 { .. }
            | Instr::FpuCmp { .. }
            | Instr::FcvtDW { .. }
            | Instr::FcvtWD { .. }
            | Instr::FmvD { .. }) => {
                // FP-compare/convert results land in the integer file.
                if let Instr::FpuCmp { rd, .. } | Instr::FcvtWD { rd, .. } = *fp {
                    st.set_reg(rd, AbsVal::Unknown);
                }
                self.fp_stream_check(pc, st, fp, sink);
            }
            Instr::DmCpyI { rd, .. } | Instr::DmStatI { rd, .. } => {
                st.set_reg(rd, AbsVal::Unknown);
            }
            Instr::DmSrc { .. }
            | Instr::DmDst { .. }
            | Instr::DmStr { .. }
            | Instr::DmRep { .. } => {}
        }
    }

    /// Check (1): stream-register use with no job ever launched. A read
    /// of a never-configured lane stalls the FPU forever (the lane FIFO
    /// never fills) and the run dies in `SimTimeout` — no trap, no
    /// diagnostic, just a burned cycle budget. Must-analysis: fire only
    /// when the CSR is definitely on and the lane definitely jobless.
    fn fp_stream_check(
        &self,
        pc: u32,
        st: &AbsState,
        instr: &Instr,
        sink: &mut dyn FnMut(Diagnostic),
    ) {
        if st.ssr_on != Bool3::Yes {
            return;
        }
        let n = self.target.n_lanes();
        for s in fp_sources(instr) {
            let idx = s.index() as usize;
            if idx < n && st.lanes[idx].read_job == Bool3::No {
                sink(Diagnostic {
                    pc,
                    severity: Severity::Error,
                    class: FaultClass::Hang,
                    message: format!(
                        "reads stream register {s} but no read job was ever launched on \
                         lane {idx}: the FPU stalls forever and the run times out"
                    ),
                });
            }
        }
        if let Some(d) = fp_dest(instr) {
            let idx = d.index() as usize;
            // The SpAcc consumes its lane's write stream directly, so a
            // write with an active (or possibly active) SpAcc job needs
            // no lane write job.
            if idx < n
                && st.lanes[idx].write_job == Bool3::No
                && !(idx == SPACC_LANE && st.spacc_active != Bool3::No)
            {
                sink(Diagnostic {
                    pc,
                    severity: Severity::Error,
                    class: FaultClass::Hang,
                    message: format!(
                        "writes stream register {d} but no write job was ever launched on \
                         lane {idx}: the write FIFO never drains and the run times out"
                    ),
                });
            }
        }
    }

    /// Check (2): FREP capture-window legality. The sequencer captures
    /// the next `n_insns` FP instructions; anything that redirects
    /// control or reconfigures streams inside that window aborts the
    /// capture at runtime.
    fn check_frep(
        &self,
        pc: u32,
        i: usize,
        kind: FrepKind,
        n_insns: u8,
        sink: &mut dyn FnMut(Diagnostic),
    ) {
        let seq_err = |pc: u32, message: String| Diagnostic {
            pc,
            severity: Severity::Error,
            class: FaultClass::Sequencer,
            message,
        };
        let n_body = n_insns as usize;
        if n_body == 0 {
            sink(seq_err(pc, "FREP with an empty body (n_insns = 0) never retires".into()));
            return;
        }
        if n_body > self.target.frep_buffer {
            sink(seq_err(
                pc,
                format!(
                    "FREP body of {n_body} instructions exceeds the {}-entry sequencer buffer",
                    self.target.frep_buffer
                ),
            ));
            return;
        }
        let mut collected = 0usize;
        let mut reads_stream = false;
        let mut j = i + 1;
        while collected < n_body {
            if j >= self.instrs.len() {
                sink(seq_err(pc, "FREP body runs past the end of the program".into()));
                return;
            }
            let ins = &self.instrs[j];
            let jpc = (j as u32) * 4;
            let illegal = ins.is_control_flow()
                || matches!(
                    ins,
                    Instr::Frep { .. } | Instr::Halt | Instr::Scfgwi { .. } | Instr::Scfgri { .. }
                )
                || matches!(
                    ins,
                    Instr::CsrI { csr: Csr::Ssr, .. } | Instr::CsrR { csr: Csr::Ssr, .. }
                );
            if illegal {
                sink(seq_err(jpc, format!("`{ins}` cannot appear inside an FREP capture window")));
                return;
            }
            if ins.is_fp() {
                collected += 1;
                if fp_sources(ins).iter().any(|s| (s.index() as usize) < self.target.n_lanes()) {
                    reads_stream = true;
                }
            } else if kind == FrepKind::Stream {
                // frep.s replays the whole window per iteration; an
                // integer instruction there would re-execute under FPU
                // sequencing, which the hardware rejects.
                sink(seq_err(jpc, format!("non-FP instruction `{ins}` inside an frep.s body")));
                return;
            }
            j += 1;
        }
        if kind == FrepKind::Stream && !reads_stream {
            sink(Diagnostic {
                pc,
                severity: Severity::Warning,
                class: FaultClass::Sequencer,
                message: "frep.s body reads no stream register; the loop terminates after \
                          zero iterations"
                    .into(),
            });
        }
    }

    /// Checks (3) and (4): mirrors `Streamer::cfg_write`'s dispatch
    /// order exactly — lane bounds, joiner launch, SpAcc launches,
    /// pointer-write capability checks — through the shared
    /// `cfg_check` predicates, then applies the launch's abstract
    /// effect.
    fn cfg_write(
        &self,
        pc: u32,
        st: &mut AbsState,
        addr: u16,
        value: AbsVal,
        sink: &mut dyn FnMut(Diagnostic),
    ) {
        let (register, lane) = split_addr(addr);
        let caps = self.target.caps();
        if let Err(f) = caps.check_lane(lane) {
            sink(cfg_diag(pc, f));
            return;
        }
        let lane = lane as usize;

        // Lane 0's RPTR[0] with JOIN_CFG enabled launches a joiner job.
        if lane == 0 && register == reg::RPTR[0] {
            let je = st.shadow_bit(0, reg::JOIN_CFG, CfgShadow::join_enabled);
            if je == Bool3::Yes {
                if let Err(f) = caps.check_joiner_present() {
                    sink(cfg_diag(pc, f));
                    return;
                }
                if st.spacc_active == Bool3::Yes {
                    // The queued joiner promotes as soon as lanes 0/1
                    // idle, regardless of the SpAcc — the conflict
                    // detector then latches against the active SpAcc.
                    sink(conflict_diag(pc, StreamUnit::Joiner));
                }
                st.joiner_active = Bool3::Yes;
                st.lanes[0].read_job = Bool3::Yes;
                // A caller-constructed LintTarget (public fields) may
                // pair has_joiner with a single lane; the joiner's
                // lane-1 effect only exists when the lane does.
                if st.lanes.len() > 1 {
                    st.lanes[1].read_job = Bool3::Yes;
                }
                return;
            }
            if je == Bool3::Maybe {
                // Could be a joiner launch or a plain lane-0 read job:
                // join both effects, report nothing.
                st.joiner_active = st.joiner_active.join(Bool3::Yes);
                if st.lanes.len() > 1 {
                    st.lanes[1].read_job = st.lanes[1].read_job.join(Bool3::Yes);
                }
                st.lanes[0].read_job = Bool3::Yes;
                return;
            }
            // Definitely not a joiner launch: plain pointer handling.
        }

        // SpAcc launch registers live in lane 0's address space.
        if lane == 0 && register == reg::ACC_FEED {
            if let Err(f) = caps.check_spacc_present() {
                sink(cfg_diag(pc, f));
                return;
            }
            if st.cell(0, reg::ACC_BUF_CAP).constant() == Some(0) {
                sink(cfg_diag(pc, CfgFault::ZeroCapacity));
                return;
            }
            st.spacc_active = Bool3::Yes;
            return;
        }
        if lane == 0 && register == reg::ACC_DRAIN {
            if let Err(f) = caps.check_spacc_present() {
                sink(cfg_diag(pc, f));
                return;
            }
            let count_only = st.shadow_bit(0, reg::ACC_CFG, CfgShadow::acc_count_only);
            if count_only == Bool3::Yes {
                sink(cfg_diag(pc, CfgFault::CountModeDrain));
                return;
            }
            if count_only == Bool3::No {
                if let (Some(acc_cfg), Some(val_out), Some(idx_out)) = (
                    st.cell(0, reg::ACC_CFG).constant(),
                    st.cell(0, reg::ACC_VAL_OUT).constant(),
                    value.constant(),
                ) {
                    let mut shadow = CfgShadow::default();
                    shadow.write(reg::ACC_CFG, acc_cfg);
                    shadow.write(reg::ACC_VAL_OUT, val_out);
                    let spec = AccDrainSpec::from_shadow(&shadow, idx_out);
                    if let Err(f) = caps.check_drain(false, &spec) {
                        sink(cfg_diag(pc, f));
                        return;
                    }
                }
            }
            st.spacc_active = Bool3::Yes;
            return;
        }
        if lane == 0 && register == reg::ACC_CLEAR {
            if let Err(f) = caps.check_spacc_present() {
                sink(cfg_diag(pc, f));
                return;
            }
            st.spacc_active = Bool3::Yes;
            return;
        }

        if is_pointer_reg(register) {
            // Mirror of HwCaps::check_pointer_write, three-valuedly.
            let je = st.shadow_bit(lane, reg::JOIN_CFG, CfgShadow::join_enabled);
            if je == Bool3::Yes {
                sink(cfg_diag(pc, CfgFault::BadJoinerLaunch { lane: lane as u8 }));
                return;
            }
            if je == Bool3::No {
                let indirect = st.shadow_bit(lane, reg::IDX_CFG, CfgShadow::indirect);
                if indirect == Bool3::Yes && self.target.lanes[lane] != LaneKind::Issr {
                    sink(cfg_diag(pc, CfgFault::NoIndirection { lane: lane as u8 }));
                    return;
                }
            }
            // Check (3): a plain lane job on a port a sparse unit
            // definitely owns. Relaunches on a lane's *own* queue and
            // launches on unclaimed ports are legal (writes retry until
            // accepted), so only definite owners fire.
            if (lane == SPACC_LANE && st.spacc_active == Bool3::Yes)
                || (lane <= 1 && st.joiner_active == Bool3::Yes)
            {
                sink(conflict_diag(pc, StreamUnit::Lane(lane as u8)));
            }
            if reg::RPTR.contains(&register) {
                st.lanes[lane].read_job = Bool3::Yes;
            } else {
                st.lanes[lane].write_job = Bool3::Yes;
            }
            return;
        }

        if let Some(slot) = cell_slot(register) {
            st.lanes[lane].cells[slot] = value;
        }
    }

    /// Mirror of `Streamer::cfg_read`: lane bounds always, joiner/SpAcc
    /// presence for their status registers. Status observations weaken
    /// the corresponding activity fact (a poll loop implies the unit
    /// retires on the continuing path).
    fn cfg_read(&self, pc: u32, st: &mut AbsState, addr: u16, sink: &mut dyn FnMut(Diagnostic)) {
        let (register, lane) = split_addr(addr);
        let caps = self.target.caps();
        if let Err(f) = caps.check_lane(lane) {
            sink(cfg_diag(pc, f));
            return;
        }
        if lane == 0 {
            match register {
                reg::JOIN_COUNT => {
                    if let Err(f) = caps.check_joiner_present() {
                        sink(cfg_diag(pc, f));
                    }
                }
                reg::ACC_NNZ => {
                    if let Err(f) = caps.check_spacc_present() {
                        sink(cfg_diag(pc, f));
                    }
                }
                reg::ACC_STATUS => {
                    if let Err(f) = caps.check_spacc_present() {
                        sink(cfg_diag(pc, f));
                    } else {
                        st.spacc_active = st.spacc_active.weaken();
                    }
                }
                reg::STATUS => {
                    st.joiner_active = st.joiner_active.weaken();
                }
                _ => {}
            }
        }
    }
}

/// Abstract transfer of a CSR access to the `ssr` redirection CSR.
fn csr_ssr(st: &mut AbsState, op: CsrOp, value: AbsVal) {
    let bit = value.constant().map(|v| v & 1 != 0);
    st.ssr_on = match (op, bit) {
        (CsrOp::Rw, Some(on)) => Bool3::from_bool(on),
        (CsrOp::Rw, None) => Bool3::Maybe,
        (CsrOp::Rs, Some(true)) => Bool3::Yes,
        (CsrOp::Rs, Some(false)) | (CsrOp::Rc, Some(false)) => st.ssr_on,
        (CsrOp::Rs, None) => st.ssr_on.join(Bool3::Yes),
        (CsrOp::Rc, Some(true)) => Bool3::No,
        (CsrOp::Rc, None) => st.ssr_on.join(Bool3::No),
    };
}

/// FP registers an instruction *reads* (stream pops under redirection).
pub(crate) fn fp_sources(instr: &Instr) -> Vec<FpReg> {
    match *instr {
        Instr::Fsd { rs2, .. } => vec![rs2],
        Instr::FpuOp2 { rs1, rs2, .. } | Instr::FpuCmp { rs1, rs2, .. } => vec![rs1, rs2],
        Instr::FpuOp3 { rs1, rs2, rs3, .. } => vec![rs1, rs2, rs3],
        Instr::FcvtWD { rs1, .. } | Instr::FmvD { rs1, .. } => vec![rs1],
        _ => Vec::new(),
    }
}

/// The FP register an instruction *writes* via the register file
/// (stream pushes under redirection). `fld` is excluded: its write goes
/// through the memory path, which the FPU rejects under redirection.
fn fp_dest(instr: &Instr) -> Option<FpReg> {
    match *instr {
        Instr::FpuOp2 { rd, .. }
        | Instr::FpuOp3 { rd, .. }
        | Instr::FcvtDW { rd, .. }
        | Instr::FmvD { rd, .. } => Some(rd),
        _ => None,
    }
}

fn eval_opimm(op: AluImmOp, a: AbsVal, imm: i32) -> AbsVal {
    let Some(a) = a.constant() else { return AbsVal::Unknown };
    let b = imm as u32;
    let v = match op {
        AluImmOp::Addi => a.wrapping_add(b),
        AluImmOp::Slti => u32::from((a as i32) < imm),
        AluImmOp::Sltiu => u32::from(a < b),
        AluImmOp::Xori => a ^ b,
        AluImmOp::Ori => a | b,
        AluImmOp::Andi => a & b,
        AluImmOp::Slli => a.wrapping_shl(b & 31),
        AluImmOp::Srli => a.wrapping_shr(b & 31),
        AluImmOp::Srai => ((a as i32).wrapping_shr(b & 31)) as u32,
    };
    AbsVal::Const(v)
}

fn eval_op(op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
    let (Some(a), Some(b)) = (a.constant(), b.constant()) else { return AbsVal::Unknown };
    let v = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => ((i64::from(a as i32).wrapping_mul(i64::from(b as i32))) >> 32) as u32,
        AluOp::Mulhsu => ((i64::from(a as i32).wrapping_mul(i64::from(b))) >> 32) as u32,
        AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        // Division edge semantics are easy to get subtly wrong; punt.
        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => return AbsVal::Unknown,
    };
    AbsVal::Const(v)
}

/// Runs the forward fixpoint and returns the converged entry state of
/// every reached instruction.
pub(crate) fn analyze(instrs: &[Instr], cfg: &Cfg, target: &LintTarget) -> Vec<Option<AbsState>> {
    let interp = Interp { target, instrs };
    let mut states: Vec<Option<AbsState>> = vec![None; instrs.len()];
    states[0] = Some(AbsState::entry(target));
    let mut work = vec![0usize];
    let mut discard = |_d: Diagnostic| {};
    while let Some(i) = work.pop() {
        let mut st = states[i].clone().expect("worklist entries have a state");
        interp.step(i, &mut st, &mut discard);
        for &s in &cfg.succs[i] {
            match &mut states[s] {
                slot @ None => {
                    *slot = Some(st.clone());
                    work.push(s);
                }
                Some(old) => {
                    let joined = old.join(&st);
                    if joined != *old {
                        *old = joined;
                        work.push(s);
                    }
                }
            }
        }
    }
    states
}

/// Re-steps every reachable instruction from its converged entry state,
/// this time with a live diagnostic sink.
pub(crate) fn report(
    instrs: &[Instr],
    cfg: &Cfg,
    target: &LintTarget,
    states: &[Option<AbsState>],
    diags: &mut Vec<Diagnostic>,
) {
    let interp = Interp { target, instrs };
    for (i, entry) in states.iter().enumerate() {
        if !cfg.reachable[i] {
            continue;
        }
        let Some(entry) = entry else { continue };
        let mut st = entry.clone();
        let mut sink = |d: Diagnostic| diags.push(d);
        interp.step(i, &mut st, &mut sink);
    }
}
