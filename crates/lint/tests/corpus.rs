//! The negative-test corpus: one known-bad program per [`CfgFault`]
//! class and per [`StreamFaultKind`] variant, plus one per
//! linter-internal class (hang, sequencer, PC escape, dead code).
//!
//! For every *statically decidable* fault the corpus enforces
//! **agreement** between the linter and the simulator: the lint
//! diagnostic must name the exact fault at the exact PC (marked with
//! the `fault` symbol), and running the same program must latch the
//! same trap at the same PC (for cfg faults — stream-fault trap PCs are
//! delivery vicinity, so only the cause is compared). Faults classified
//! [`Decidability::RuntimeOnly`] must conversely produce *zero* lint
//! errors while still trapping at runtime — the linter never cries wolf
//! on data-dependent behaviour.

use issr_core::cfg::{
    acc_cfg_word, acc_count_cfg_word, cfg_addr, idx_cfg_word, join_cfg_word, reg as sreg,
    JoinerMode,
};
use issr_core::fault::{StreamFault, StreamFaultKind, StreamUnit};
use issr_core::lane::LaneKind;
use issr_core::serializer::IndexSize;
use issr_core::CfgFault;
use issr_isa::asm::{Assembler, Program};
use issr_isa::instr::{FrepKind, Instr, Stagger};
use issr_isa::reg::{FpReg, IntReg as R};
use issr_isa::Csr;
use issr_lint::{
    classify_cfg_fault, classify_stream_fault, has_errors, lint_program, Decidability, Diagnostic,
    FaultClass, LintTarget, Severity,
};
use issr_mem::map::TCDM_BASE;
use issr_snitch::cc::SingleCcSim;
use issr_snitch::core::TrapCause;

/// Byte PC of the instruction marked `fault` in a corpus program.
fn fault_pc(program: &Program) -> u32 {
    let idx = program.symbol("fault").expect("corpus program marks its faulting instruction");
    (idx as u32) * 4
}

fn errors(program: &Program, target: &LintTarget) -> Vec<Diagnostic> {
    lint_program(program, target).into_iter().filter(|d| d.severity == Severity::Error).collect()
}

/// Full static/dynamic agreement for one statically decidable
/// [`CfgFault`]: lint error with the exact fault payload at the `fault`
/// PC, runtime trap with the same cause at the same PC.
fn assert_cfg_agreement(program: Program, target: &LintTarget, expect: CfgFault) {
    assert_eq!(classify_cfg_fault(&expect), Decidability::Static, "{expect:?}");
    let pc = fault_pc(&program);
    let errs = errors(&program, target);
    assert!(
        errs.iter().any(|d| d.pc == pc && d.class == FaultClass::Cfg(expect)),
        "lint must flag {expect:?} at {pc:#x}, got: {errs:?}"
    );
    let mut sim = if target.has_joiner {
        SingleCcSim::with_joiner(program)
    } else {
        SingleCcSim::new(program)
    };
    let summary = sim.run(20_000).expect("cfg-faulted runs drain and finish");
    let trap = summary.trap.expect("the simulator must latch the fault the linter predicted");
    assert_eq!(trap.cause, TrapCause::CfgFault(expect));
    assert_eq!(trap.pc, pc, "trap PC and lint PC must agree for cfg faults");
}

/// A data-dependent fault: the linter must stay silent (no errors), the
/// simulator must latch exactly `expect`.
fn assert_runtime_only(
    mut sim: SingleCcSim,
    program: &Program,
    expect_unit: StreamUnit,
    check_kind: impl Fn(StreamFaultKind) -> bool,
) {
    let errs = errors(program, &LintTarget::sssr());
    assert!(errs.is_empty(), "runtime-only faults must not lint as errors: {errs:?}");
    let summary = sim.run(20_000).expect("stream-faulted runs drain and finish");
    let trap = summary.trap.expect("the data must latch the stream fault");
    match trap.cause {
        TrapCause::StreamFault(fault) => {
            assert_eq!(fault.unit, expect_unit);
            assert!(check_kind(fault.kind), "unexpected kind: {:?}", fault.kind);
        }
        other => panic!("expected a stream fault, got {other:?}"),
    }
}

// ---- CfgFault corpus: every class, static/dynamic agreement ----

#[test]
fn corpus_bad_lane() {
    let mut a = Assembler::new();
    a.li(R::T0, 1);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 7));
    a.halt();
    assert_cfg_agreement(a.finish().unwrap(), &LintTarget::sssr(), CfgFault::BadLane { lane: 7 });
}

#[test]
fn corpus_bad_lane_read() {
    let mut a = Assembler::new();
    a.symbol("fault");
    a.scfgri(R::T0, cfg_addr(sreg::STATUS, 3));
    a.halt();
    assert_cfg_agreement(a.finish().unwrap(), &LintTarget::paper(), CfgFault::BadLane { lane: 3 });
}

#[test]
fn corpus_no_joiner() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Union, IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
    a.symbol("fault");
    a.scfgwi(R::ZERO, cfg_addr(sreg::RPTR[0], 0));
    a.halt();
    assert_cfg_agreement(a.finish().unwrap(), &LintTarget::paper(), CfgFault::NoJoiner);
}

#[test]
fn corpus_no_spacc() {
    let mut a = Assembler::new();
    a.li(R::T0, 1);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    a.halt();
    assert_cfg_agreement(a.finish().unwrap(), &LintTarget::paper(), CfgFault::NoSpAcc);
}

#[test]
fn corpus_zero_capacity() {
    let mut a = Assembler::new();
    a.li(R::T0, 4);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::ACC_BUF_CAP, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    a.halt();
    assert_cfg_agreement(a.finish().unwrap(), &LintTarget::sssr(), CfgFault::ZeroCapacity);
}

#[test]
fn corpus_count_mode_drain() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x2000);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_VAL_OUT, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_DRAIN, 0));
    a.halt();
    assert_cfg_agreement(a.finish().unwrap(), &LintTarget::sssr(), CfgFault::CountModeDrain);
}

#[test]
fn corpus_no_indirection() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(idx_cfg_word(IndexSize::U16, 0)));
    a.scfgwi(R::T0, cfg_addr(sreg::IDX_CFG, 0));
    a.li(R::T0, 3);
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 0)); // lane 0 is a plain SSR
    a.halt();
    assert_cfg_agreement(
        a.finish().unwrap(),
        &LintTarget::sssr(),
        CfgFault::NoIndirection { lane: 0 },
    );
}

#[test]
fn corpus_bad_joiner_launch() {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Intersect, IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 1)); // lane 1's shadow
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 1));
    a.halt();
    assert_cfg_agreement(
        a.finish().unwrap(),
        &LintTarget::sssr(),
        CfgFault::BadJoinerLaunch { lane: 1 },
    );
}

#[test]
fn corpus_misaligned_drain() {
    let mut a = Assembler::new();
    a.li_addr(R::T0, TCDM_BASE + 0x2004); // not word aligned
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_VAL_OUT, 0));
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_DRAIN, 0));
    a.halt();
    assert_cfg_agreement(
        a.finish().unwrap(),
        &LintTarget::sssr(),
        CfgFault::MisalignedDrain { idx_out: TCDM_BASE + 0x1000, val_out: TCDM_BASE + 0x2004 },
    );
}

// ---- StreamFaultKind corpus ----

/// `PortConflict` is the one statically decidable stream fault: the
/// lint error carries the same unit/kind the runtime latches, anchored
/// at the conflicting launch.
#[test]
fn corpus_port_conflict() {
    assert_eq!(classify_stream_fault(&StreamFaultKind::PortConflict), Decidability::Static);
    let idx_base = TCDM_BASE + 0x1000;
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li(R::T0, 4);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.li_addr(R::T0, idx_base);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0)); // stays busy: no values
    a.li(R::T0, 3);
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 1));
    a.li(R::T0, 8);
    a.scfgwi(R::T0, cfg_addr(sreg::STRIDES[0], 1));
    a.li_addr(R::T0, TCDM_BASE + 0x4000);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::RPTR[0], 1)); // lane 1: the SpAcc's port
    a.halt();
    let program = a.finish().unwrap();
    let expect = StreamFault { unit: StreamUnit::Lane(1), kind: StreamFaultKind::PortConflict };
    let pc = fault_pc(&program);
    let errs = errors(&program, &LintTarget::sssr());
    assert!(
        errs.iter().any(|d| d.pc == pc && d.class == FaultClass::Stream(expect)),
        "lint must flag the port conflict at {pc:#x}, got: {errs:?}"
    );
    // Runtime confirmation. The stream-fault trap PC is the delivery
    // vicinity, so only the cause is compared.
    let mut sim = SingleCcSim::with_joiner(program);
    sim.mem.array_mut().store_u16_slice(idx_base, &[1, 2, 3, 4]);
    let summary = sim.run(20_000).expect("the conflict drains, not deadlocks");
    assert_eq!(
        summary.trap.expect("port conflict must trap").cause,
        TrapCause::StreamFault(expect)
    );
}

/// A count-only SpAcc feed of `count` distinct indices from `idx_base`,
/// spinning on completion — the trap-path probe program.
fn symbolic_feed_program(cap: u32, count: u32, idx_base: u32) -> Program {
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_count_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li(R::T0, i64::from(cap));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_BUF_CAP, 0));
    a.li(R::T0, i64::from(count));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.li_addr(R::T0, idx_base);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0));
    let spin = a.bind_label();
    a.scfgri(R::T1, cfg_addr(sreg::ACC_STATUS, 0));
    a.andi(R::T1, R::T1, 1);
    a.beqz(R::T1, spin);
    a.halt();
    a.finish().unwrap()
}

#[test]
fn corpus_overflow_is_runtime_only() {
    let cap = 8u32;
    assert_eq!(
        classify_stream_fault(&StreamFaultKind::Overflow { cap }),
        Decidability::RuntimeOnly
    );
    let idx_base = TCDM_BASE + 0x1000;
    let program = symbolic_feed_program(cap, cap + 1, idx_base);
    let mut sim = SingleCcSim::with_joiner(program.clone());
    let idcs: Vec<u16> = (0..=cap as u16).map(|i| i * 3).collect();
    sim.mem.array_mut().store_u16_slice(idx_base, &idcs);
    assert_runtime_only(sim, &program, StreamUnit::SpAcc, |k| {
        k == StreamFaultKind::Overflow { cap }
    });
}

#[test]
fn corpus_unsorted_is_runtime_only() {
    assert_eq!(
        classify_stream_fault(&StreamFaultKind::Unsorted { prev: 9, next: 3 }),
        Decidability::RuntimeOnly
    );
    let idx_base = TCDM_BASE + 0x1000;
    let program = symbolic_feed_program(64, 3, idx_base);
    let mut sim = SingleCcSim::with_joiner(program.clone());
    sim.mem.array_mut().store_u16_slice(idx_base, &[2, 9, 3]);
    assert_runtime_only(sim, &program, StreamUnit::SpAcc, |k| {
        k == StreamFaultKind::Unsorted { prev: 9, next: 3 }
    });
}

/// The *data-dependent* stall (a value-mode feed whose write stream is
/// starved by the program's own schedule) is runtime-only: the feed
/// launch is legal, only the missing deliveries trip the watchdog.
#[test]
fn corpus_stall_is_runtime_only() {
    assert_eq!(
        classify_stream_fault(&StreamFaultKind::Stall { cycles: 300 }),
        Decidability::RuntimeOnly
    );
    let idx_base = TCDM_BASE + 0x1000;
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(acc_cfg_word(IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_CFG, 0));
    a.li(R::T0, 2);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_COUNT, 0));
    a.li_addr(R::T0, idx_base);
    a.scfgwi(R::T0, cfg_addr(sreg::ACC_FEED, 0)); // never fed a value
    let spin = a.bind_label();
    a.scfgri(R::T1, cfg_addr(sreg::ACC_STATUS, 0));
    a.andi(R::T1, R::T1, 1);
    a.beqz(R::T1, spin);
    a.halt();
    let program = a.finish().unwrap();
    let mut sim = SingleCcSim::with_joiner(program.clone());
    sim.cc.streamer.set_spacc_watchdog(300);
    sim.mem.array_mut().store_u16_slice(idx_base, &[4, 7]);
    assert_runtime_only(
        sim,
        &program,
        StreamUnit::SpAcc,
        |k| matches!(k, StreamFaultKind::Stall { cycles } if cycles >= 300),
    );
}

// ---- linter-internal classes ----

/// Reading a stream register whose lane never launched a job is the
/// statically caught *hang*: no trap at runtime, just `SimTimeout`.
#[test]
fn corpus_stream_read_before_configure_hangs() {
    let mut a = Assembler::new();
    a.csrsi(Csr::Ssr, 1);
    a.symbol("fault");
    a.fadd_d(FpReg::FT3, FpReg::FT0, FpReg::FT0); // ft0: lane 0, no job
    a.csrci(Csr::Ssr, 1);
    a.halt();
    let program = a.finish().unwrap();
    let pc = fault_pc(&program);
    let errs = errors(&program, &LintTarget::paper());
    assert!(
        errs.iter().any(|d| d.pc == pc && d.class == FaultClass::Hang),
        "lint must flag the hang at {pc:#x}, got: {errs:?}"
    );
    let mut sim = SingleCcSim::new(program);
    assert!(sim.run(20_000).is_err(), "the unconfigured read must time out, not finish");
}

#[test]
fn corpus_frep_body_with_branch() {
    let mut a = Assembler::new();
    a.li(R::T0, 3);
    a.frep_outer(R::T0, 2, Stagger::NONE);
    a.fadd_d(FpReg::FT3, FpReg::FT3, FpReg::FT3);
    let out = a.new_label();
    a.symbol("fault");
    a.beqz(R::T1, out); // control flow inside the capture window
    a.bind(out);
    a.halt();
    let program = a.finish().unwrap();
    let pc = fault_pc(&program);
    let errs = errors(&program, &LintTarget::paper());
    assert!(
        errs.iter().any(|d| d.pc == pc && d.class == FaultClass::Sequencer),
        "lint must reject the branch in the FREP window, got: {errs:?}"
    );
}

#[test]
fn corpus_frep_empty_body() {
    let mut a = Assembler::new();
    a.li(R::T0, 3);
    a.symbol("fault");
    a.push(Instr::Frep {
        kind: FrepKind::Outer,
        max_rpt: R::T0,
        n_insns: 0,
        stagger: Stagger::NONE,
    });
    a.halt();
    let program = a.finish().unwrap();
    let pc = fault_pc(&program);
    let errs = errors(&program, &LintTarget::paper());
    assert!(
        errs.iter().any(|d| d.pc == pc && d.class == FaultClass::Sequencer),
        "lint must reject the empty FREP body, got: {errs:?}"
    );
}

/// `frep.s` with no stream-register source in the body terminates after
/// zero iterations — the unbounded-trip check's complement: a stream
/// loop must consume a stream.
#[test]
fn corpus_frep_stream_without_stream_source() {
    let mut a = Assembler::new();
    a.symbol("fault");
    a.frep_stream(1, Stagger::NONE);
    a.fadd_d(FpReg::FT3, FpReg::FT4, FpReg::FT4);
    a.halt();
    let program = a.finish().unwrap();
    let pc = fault_pc(&program);
    let diags = lint_program(&program, &LintTarget::paper());
    assert!(
        diags.iter().any(|d| d.pc == pc
            && d.severity == Severity::Warning
            && d.class == FaultClass::Sequencer),
        "lint must warn on the zero-trip frep.s, got: {diags:?}"
    );
}

#[test]
fn corpus_fld_into_stream_register_under_ssr() {
    let mut a = Assembler::new();
    a.csrsi(Csr::Ssr, 1);
    a.li_addr(R::T0, TCDM_BASE + 0x1000);
    a.symbol("fault");
    a.fld(FpReg::FT0, R::T0, 0); // ft0 is redirected while ssr is on
    a.csrci(Csr::Ssr, 1);
    a.halt();
    let program = a.finish().unwrap();
    let pc = fault_pc(&program);
    let errs = errors(&program, &LintTarget::paper());
    assert!(
        errs.iter().any(|d| d.pc == pc && d.class == FaultClass::Sequencer),
        "lint must reject the fld into a redirected register, got: {errs:?}"
    );
}

#[test]
fn corpus_missing_halt_is_pc_escape() {
    let mut a = Assembler::new();
    a.symbol("fault");
    a.li(R::T0, 1); // no halt: execution runs off the end
    let program = a.finish().unwrap();
    let errs = errors(&program, &LintTarget::paper());
    assert!(
        errs.iter().any(|d| d.class == FaultClass::PcOutOfRange),
        "lint must flag the missing halt, got: {errs:?}"
    );
    let mut sim = SingleCcSim::new(program);
    let summary = sim.run(20_000).expect("the PC escape parks the core, the run drains");
    assert_eq!(summary.trap.expect("runtime confirms").cause, TrapCause::PcOutOfRange);
}

#[test]
fn corpus_dead_cfg_write_warns() {
    let mut a = Assembler::new();
    a.li(R::T0, 3);
    a.symbol("fault");
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 0)); // nothing ever launches
    a.halt();
    let program = a.finish().unwrap();
    let pc = fault_pc(&program);
    let diags = lint_program(&program, &LintTarget::paper());
    assert!(
        diags.iter().any(|d| d.pc == pc
            && d.severity == Severity::Warning
            && d.class == FaultClass::Dead
            && d.message.contains("never consumed")),
        "lint must warn on the unconsumed cfg write, got: {diags:?}"
    );
}

#[test]
fn corpus_unreachable_code_warns() {
    let mut a = Assembler::new();
    let skip = a.new_label();
    a.j(skip);
    a.symbol("fault");
    a.nop(); // jumped over
    a.bind(skip);
    a.halt();
    let program = a.finish().unwrap();
    let pc = fault_pc(&program);
    let diags = lint_program(&program, &LintTarget::paper());
    assert!(
        diags.iter().any(|d| d.pc == pc
            && d.severity == Severity::Warning
            && d.class == FaultClass::Dead
            && d.message.contains("unreachable")),
        "lint must warn on the unreachable instruction, got: {diags:?}"
    );
}

/// Every corpus fault above appears in the classification table, and
/// the table itself is exhaustive (`classify_*` match on the enums with
/// no wildcard — adding a variant breaks the build until classified).
#[test]
fn corpus_covers_the_classification_table() {
    let statics = [
        CfgFault::BadLane { lane: 7 },
        CfgFault::NoJoiner,
        CfgFault::NoSpAcc,
        CfgFault::ZeroCapacity,
        CfgFault::CountModeDrain,
        CfgFault::NoIndirection { lane: 0 },
        CfgFault::BadJoinerLaunch { lane: 1 },
        CfgFault::MisalignedDrain { idx_out: 0, val_out: 4 },
    ];
    for f in &statics {
        assert_eq!(classify_cfg_fault(f), Decidability::Static);
    }
    assert_eq!(classify_stream_fault(&StreamFaultKind::PortConflict), Decidability::Static);
    for k in [
        StreamFaultKind::Overflow { cap: 8 },
        StreamFaultKind::Unsorted { prev: 9, next: 3 },
        StreamFaultKind::Stall { cycles: 300 },
    ] {
        assert_eq!(classify_stream_fault(&k), Decidability::RuntimeOnly);
    }
    // And a well-formed program produces nothing at all.
    let mut a = Assembler::new();
    a.li(R::T0, 1);
    a.halt();
    let diags = lint_program(&a.finish().unwrap(), &LintTarget::paper());
    assert!(!has_errors(&diags) && diags.is_empty(), "clean probe: {diags:?}");
}

// ---- Degenerate caller-constructed targets ----
//
// `LintTarget`'s fields are public, so shapes the shipped constructors
// never produce — a single-lane joiner, more lanes than the liveness
// bitset holds — must degrade gracefully, not panic or mis-analyze.

#[test]
fn single_lane_joiner_target_lints_without_panic() {
    let target = LintTarget {
        lanes: vec![LaneKind::Issr],
        has_joiner: true,
        has_spacc: false,
        frep_buffer: 16,
    };

    // Definite joiner launch: JOIN_CFG enabled by a program constant.
    let mut a = Assembler::new();
    a.li(R::T0, i64::from(join_cfg_word(JoinerMode::Union, IndexSize::U16)));
    a.scfgwi(R::T0, cfg_addr(sreg::JOIN_CFG, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::RPTR[0], 0));
    a.halt();
    let _ = lint_program(&a.finish().unwrap(), &target);

    // Maybe-joiner launch: JOIN_CFG written from an unknown register,
    // so the RPTR write joins both the launch and plain-job effects.
    let mut a = Assembler::new();
    a.scfgwi(R::A0, cfg_addr(sreg::JOIN_CFG, 0));
    a.scfgwi(R::ZERO, cfg_addr(sreg::RPTR[0], 0));
    a.halt();
    let _ = lint_program(&a.finish().unwrap(), &target);
}

#[test]
fn oversized_lane_target_skips_dead_write_analysis() {
    // 8 lanes x 20 cells = 160 bits: past the u128 (lane, cell) bitset,
    // so the dead-write pass skips itself rather than computing with a
    // wrapped mask. The unconsumed write below must simply go
    // unreported — never flagged from garbage liveness bits, never a
    // panic.
    let target = LintTarget {
        lanes: vec![LaneKind::Ssr; 8],
        has_joiner: false,
        has_spacc: false,
        frep_buffer: 16,
    };
    let mut a = Assembler::new();
    a.li(R::T0, 3);
    a.scfgwi(R::T0, cfg_addr(sreg::BOUNDS[0], 7)); // nothing ever launches
    a.halt();
    let diags = lint_program(&a.finish().unwrap(), &target);
    assert!(
        !diags.iter().any(|d| d.class == FaultClass::Dead && d.message.contains("never consumed")),
        "dead-write analysis must be skipped for oversized targets: {diags:?}"
    );
}
