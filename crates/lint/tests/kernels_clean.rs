//! Gate: every shipped kernel program lints clean — zero diagnostics,
//! warnings included. A kernel that trips the analyzer means either the
//! kernel is wrong or the analyzer over-approximates a legal schedule;
//! both must be fixed before shipping.

use issr_kernels::catalog::catalog;
use issr_lint::{assert_clean, LintTarget};

#[test]
fn every_shipped_kernel_lints_clean() {
    let paper = LintTarget::paper();
    let sssr = LintTarget::sssr();
    let entries = catalog();
    assert!(entries.len() >= 20, "catalog suspiciously small: {}", entries.len());
    for entry in &entries {
        let target = if entry.needs_sparse_units { &sssr } else { &paper };
        assert_clean(&entry.program, target, &entry.name);
    }
}

/// The non-sparse-unit kernels must also be clean under the *larger*
/// hardware configuration: extra units never make a legal program
/// illegal.
#[test]
fn paper_kernels_also_clean_on_sssr_hardware() {
    let sssr = LintTarget::sssr();
    for entry in catalog() {
        assert_clean(&entry.program, &sssr, &entry.name);
    }
}
