//! The flight recorder: a bounded ring of recent per-unit state
//! transitions, plus the post-mortem report built from it when a run
//! dies.
//!
//! Unlike [`crate::chrome::TraceRecorder`], which keeps the *head* of a
//! timeline, the black box keeps the *tail* — the most recent
//! transitions before a `SimTimeout` or a latched stream fault, which
//! is the forensic window that matters once a run is already dead. It
//! is timing-neutral by the same construction: the run harnesses sample
//! latched post-tick state once per cycle, and only cause *changes*
//! cost a ring slot, so a wedged steady-state run records almost
//! nothing per cycle.
//!
//! The [`PostMortem`] report assembles the frozen picture: each stuck
//! unit with its dominant stall cause and the sync word it was polling,
//! the cumulative wait graph, cycle detection over the poll edges
//! (deadlock vs. merely slow), and the recent-transition window — which
//! [`PostMortem::sidecar_json`] also exports as a Chrome trace-event
//! document so the final window can be eyeballed in Perfetto.

use crate::attr::StallCause;
use crate::json::{obj, Json};
use crate::waitgraph::WaitGraph;

/// Handle to one unit registered with a [`BlackBox`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnitId(usize);

/// One recorded state change: at `cycle`, `unit` went `from` → `to`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transition {
    /// Cycle the new cause was first observed.
    pub cycle: u64,
    /// Index into the owner's unit-name table.
    pub unit: usize,
    /// The cause the unit left.
    pub from: StallCause,
    /// The cause the unit entered.
    pub to: StallCause,
}

#[derive(Clone, Debug)]
struct UnitState {
    name: String,
    last: StallCause,
}

/// Default transition capacity: a generous final window at a few bytes
/// per slot.
pub const DEFAULT_BLACKBOX_CAP: usize = 4096;

/// Bounded most-recent-transition recorder.
#[derive(Clone, Debug)]
pub struct BlackBox {
    units: Vec<UnitState>,
    ring: std::collections::VecDeque<Transition>,
    cap: usize,
    evicted: u64,
}

impl Default for BlackBox {
    fn default() -> Self {
        Self::new(DEFAULT_BLACKBOX_CAP)
    }
}

impl BlackBox {
    /// Creates a recorder holding the most recent `cap` transitions
    /// (older ones are evicted and counted).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self { units: Vec::new(), ring: std::collections::VecDeque::new(), cap, evicted: 0 }
    }

    /// Registers a unit; its initial state is `Idle`.
    pub fn add_unit(&mut self, name: impl Into<String>) -> UnitId {
        self.units.push(UnitState { name: name.into(), last: StallCause::Idle });
        UnitId(self.units.len() - 1)
    }

    /// Records the unit's cause for cycle `now`. Only changes cost a
    /// ring slot; steady state is free.
    pub fn sample(&mut self, unit: UnitId, now: u64, cause: StallCause) {
        let u = &mut self.units[unit.0];
        if u.last == cause {
            return;
        }
        let t = Transition { cycle: now, unit: unit.0, from: u.last, to: cause };
        u.last = cause;
        if self.cap == 0 {
            self.evicted += 1;
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(t);
    }

    /// Registered unit names, in [`UnitId`] order.
    #[must_use]
    pub fn unit_names(&self) -> Vec<String> {
        self.units.iter().map(|u| u.name.clone()).collect()
    }

    /// The retained window, oldest first.
    #[must_use]
    pub fn transitions(&self) -> Vec<Transition> {
        self.ring.iter().copied().collect()
    }

    /// Transitions evicted by the ring cap.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Transitions currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// What the frozen wait picture says about why the run died.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Classification {
    /// The poll edges between stuck harts form a cycle: no hart in the
    /// cycle can ever make progress.
    Deadlock,
    /// Units are stuck or slow but no circular wait was found — the run
    /// may simply have needed more cycles.
    Slow,
}

impl Classification {
    /// Stable lower-case label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Classification::Deadlock => "deadlock",
            Classification::Slow => "slow",
        }
    }
}

/// One stuck unit in the post-mortem.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StuckUnit {
    /// Display name ("c0 hart 1", …).
    pub name: String,
    /// Hart index within its cluster (for poll-edge resolution).
    pub hart: u32,
    /// Program counter at the time of death.
    pub pc: u32,
    /// The cause the hart spent most of its lifetime cycles in.
    pub dominant: StallCause,
    /// The address of the last load it issued — the word it was
    /// polling, when it died in a spin loop.
    pub polls: Option<u32>,
}

/// Finds a cycle in a poller→owner edge set (at most one outgoing edge
/// per node — a hart polls one word at a time). Returns the cycle's
/// node ids in walk order, rotated so the smallest id leads; `None`
/// when the graph is acyclic.
#[must_use]
pub fn detect_cycle(edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut next: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for &(from, to) in edges {
        next.entry(from).or_insert(to);
    }
    // Walk from every node; colour 0 = unseen, 1 = on current walk,
    // 2 = finished. A walk that re-enters itself found a cycle.
    let mut colour: std::collections::BTreeMap<usize, u8> = std::collections::BTreeMap::new();
    let starts: Vec<usize> = next.keys().copied().collect();
    for start in starts {
        if colour.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut walk = Vec::new();
        let mut node = start;
        loop {
            match colour.get(&node).copied().unwrap_or(0) {
                1 => {
                    // Cycle: the suffix of `walk` starting at `node`.
                    let at = walk.iter().position(|&n| n == node).unwrap_or(0);
                    let mut cycle: Vec<usize> = walk[at..].to_vec();
                    let min_at = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &n)| n)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min_at);
                    return Some(cycle);
                }
                2 => break,
                _ => {}
            }
            colour.insert(node, 1);
            walk.push(node);
            match next.get(&node) {
                Some(&to) => node = to,
                None => break,
            }
        }
        for n in walk {
            colour.insert(n, 2);
        }
    }
    None
}

/// The assembled post-mortem report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PostMortem {
    /// Cycle at which the run was declared dead.
    pub at: u64,
    /// Deadlock (circular wait proven) or merely slow.
    pub classification: Classification,
    /// Names of the units forming the blame cycle, in wait order
    /// (empty unless classified deadlock).
    pub blame_cycle: Vec<String>,
    /// Every non-quiescent unit at the time of death.
    pub stuck: Vec<StuckUnit>,
    /// The cumulative wait graph of the whole run.
    pub wait_graph: WaitGraph,
    /// Unit-name table for `transitions`.
    pub unit_names: Vec<String>,
    /// The flight recorder's final window, oldest first.
    pub transitions: Vec<Transition>,
    /// Transitions lost to the ring cap before the window.
    pub evicted: u64,
}

impl PostMortem {
    /// Builds the report from the frozen pieces, classifying via cycle
    /// detection over the stuck units' poll edges: `sync_words` maps a
    /// flag-word address to the hart that owns (writes) it.
    #[must_use]
    pub fn assemble(
        at: u64,
        stuck: Vec<StuckUnit>,
        sync_words: &[(u32, u32)],
        wait_graph: WaitGraph,
        recorder: Option<&BlackBox>,
    ) -> Self {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (i, s) in stuck.iter().enumerate() {
            let Some(addr) = s.polls else { continue };
            let Some(&(_, owner)) = sync_words.iter().find(|&&(a, _)| a == addr) else { continue };
            if owner == s.hart {
                continue;
            }
            if let Some(j) = stuck.iter().position(|t| t.hart == owner) {
                edges.push((i, j));
            }
        }
        let cycle = detect_cycle(&edges);
        let classification =
            if cycle.is_some() { Classification::Deadlock } else { Classification::Slow };
        let blame_cycle =
            cycle.unwrap_or_default().iter().map(|&i| stuck[i].name.clone()).collect();
        Self {
            at,
            classification,
            blame_cycle,
            stuck,
            wait_graph,
            unit_names: recorder.map(BlackBox::unit_names).unwrap_or_default(),
            transitions: recorder.map(BlackBox::transitions).unwrap_or_default(),
            evicted: recorder.map_or(0, BlackBox::evicted),
        }
    }

    /// Merges per-cluster reports into one (unit indices re-based,
    /// transitions re-sorted by cycle; deadlock wins the
    /// classification and the first deadlocked report provides the
    /// blame cycle).
    #[must_use]
    pub fn merge(parts: Vec<PostMortem>) -> Self {
        let mut out = PostMortem {
            at: 0,
            classification: Classification::Slow,
            blame_cycle: Vec::new(),
            stuck: Vec::new(),
            wait_graph: WaitGraph::new(),
            unit_names: Vec::new(),
            transitions: Vec::new(),
            evicted: 0,
        };
        for part in parts {
            out.at = out.at.max(part.at);
            if part.classification == Classification::Deadlock
                && out.classification != Classification::Deadlock
            {
                out.classification = Classification::Deadlock;
                out.blame_cycle = part.blame_cycle;
            }
            let base = out.unit_names.len();
            out.unit_names.extend(part.unit_names);
            out.transitions
                .extend(part.transitions.iter().map(|t| Transition { unit: t.unit + base, ..*t }));
            out.stuck.extend(part.stuck);
            use crate::merge::StatMerge;
            out.wait_graph.merge_from(&part.wait_graph);
            out.evicted += part.evicted;
        }
        out.transitions.sort_by_key(|t| (t.cycle, t.unit));
        out
    }

    /// The final window as a Chrome trace-event document: one track per
    /// unit, one span per non-idle residency between transitions, and
    /// an instant event marking the moment of death. Loads in Perfetto
    /// next to the main trace (same 1 cycle = 1 µs axis).
    #[must_use]
    pub fn sidecar_json(&self) -> Json {
        let mut events = Vec::new();
        for (tid, name) in self.unit_names.iter().enumerate() {
            events.push(obj(vec![
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(tid)),
                ("args", obj(vec![("name", Json::from(name.as_str()))])),
            ]));
        }
        // Each unit's residency spans: from each transition to the next
        // one of the same unit (or to the moment of death).
        let mut open: std::collections::BTreeMap<usize, (u64, StallCause)> =
            std::collections::BTreeMap::new();
        let mut spans: Vec<(usize, u64, u64, StallCause)> = Vec::new();
        for t in &self.transitions {
            if let Some((start, cause)) = open.insert(t.unit, (t.cycle, t.to)) {
                if t.cycle > start {
                    spans.push((t.unit, start, t.cycle - start, cause));
                }
            }
        }
        for (unit, (start, cause)) in open {
            if self.at > start {
                spans.push((unit, start, self.at - start, cause));
            }
        }
        spans.sort_by_key(|&(unit, start, _, _)| (unit, start));
        for (unit, start, dur, cause) in spans {
            if cause == StallCause::Idle {
                continue;
            }
            events.push(obj(vec![
                ("name", Json::from(cause.label())),
                ("ph", Json::from("X")),
                ("ts", Json::from(start)),
                ("dur", Json::from(dur)),
                ("pid", Json::from(0u64)),
                ("tid", Json::from(unit)),
            ]));
        }
        events.push(obj(vec![
            ("name", Json::from(format!("post-mortem ({})", self.classification.label()))),
            ("ph", Json::from("i")),
            ("ts", Json::from(self.at)),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(0u64)),
            ("s", Json::from("g")),
        ]));
        obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ns")),
            ("evictedTransitions", Json::from(self.evicted)),
        ])
    }
}

impl std::fmt::Display for PostMortem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "post-mortem @ cycle {}: classification={}",
            self.at,
            self.classification.label()
        )?;
        if !self.blame_cycle.is_empty() {
            writeln!(f, "  blame cycle: {} -> (back to start)", self.blame_cycle.join(" -> "))?;
        }
        for s in &self.stuck {
            write!(f, "  stuck: {} pc={:#010x} mostly {}", s.name, s.pc, s.dominant.label())?;
            if let Some(addr) = s.polls {
                write!(f, " polling {addr:#010x}")?;
            }
            writeln!(f)?;
        }
        let waits: Vec<String> = self
            .wait_graph
            .iter()
            .filter(|&(_, n)| n > 0)
            .map(|(e, n)| format!("{}={}", e.label(), n))
            .collect();
        if !waits.is_empty() {
            writeln!(f, "  wait graph: {}", waits.join(" "))?;
        }
        let shown = self.transitions.len().min(16);
        if shown > 0 {
            writeln!(
                f,
                "  last {} of {} recorded transitions ({} evicted):",
                shown,
                self.transitions.len(),
                self.evicted
            )?;
            for t in &self.transitions[self.transitions.len() - shown..] {
                let name = self.unit_names.get(t.unit).map_or("?", String::as_str);
                writeln!(
                    f,
                    "    cycle {}: {} {} -> {}",
                    t.cycle,
                    name,
                    t.from.label(),
                    t.to.label()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waitgraph::EdgeClass;

    #[test]
    fn ring_keeps_most_recent_transitions() {
        let mut bb = BlackBox::new(2);
        let u = bb.add_unit("hart 0");
        bb.sample(u, 0, StallCause::Active); // idle -> active
        bb.sample(u, 1, StallCause::Active); // steady: free
        bb.sample(u, 5, StallCause::FifoEmpty);
        bb.sample(u, 9, StallCause::Active);
        let w = bb.transitions();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].cycle, 5, "oldest entry evicted, tail kept");
        assert_eq!(w[1].cycle, 9);
        assert_eq!(bb.evicted(), 1);
    }

    #[test]
    fn zero_cap_records_nothing_but_counts() {
        let mut bb = BlackBox::new(0);
        let u = bb.add_unit("x");
        bb.sample(u, 0, StallCause::Active);
        assert!(bb.is_empty());
        assert_eq!(bb.evicted(), 1);
    }

    #[test]
    fn detect_cycle_finds_two_node_loop() {
        assert_eq!(detect_cycle(&[(0, 1), (1, 0)]), Some(vec![0, 1]));
        assert_eq!(detect_cycle(&[(1, 0), (0, 1)]), Some(vec![0, 1]), "rotation is deterministic");
        assert_eq!(detect_cycle(&[(0, 1), (1, 2)]), None);
        assert_eq!(detect_cycle(&[]), None);
        assert_eq!(detect_cycle(&[(2, 2)]), Some(vec![2]), "self-wait is a cycle");
        assert_eq!(detect_cycle(&[(0, 1), (1, 2), (2, 1)]), Some(vec![1, 2]), "tail then loop");
    }

    #[test]
    fn assemble_classifies_mutual_poll_as_deadlock() {
        let stuck = vec![
            StuckUnit {
                name: "c0 hart 0".into(),
                hart: 0,
                pc: 0x100,
                dominant: StallCause::Active,
                polls: Some(0x2000),
            },
            StuckUnit {
                name: "c0 hart 1".into(),
                hart: 1,
                pc: 0x200,
                dominant: StallCause::Active,
                polls: Some(0x2008),
            },
        ];
        // hart 0 polls the word hart 1 owns and vice versa.
        let sync = [(0x2000u32, 1u32), (0x2008, 0)];
        let pm = PostMortem::assemble(500, stuck, &sync, WaitGraph::new(), None);
        assert_eq!(pm.classification, Classification::Deadlock);
        assert_eq!(pm.blame_cycle, vec!["c0 hart 0".to_owned(), "c0 hart 1".to_owned()]);
        let text = format!("{pm}");
        assert!(text.contains("classification=deadlock"), "{text}");
        assert!(text.contains("blame cycle: c0 hart 0 -> c0 hart 1"), "{text}");
    }

    #[test]
    fn assemble_without_cycle_is_slow() {
        let stuck = vec![StuckUnit {
            name: "c0 hart 0".into(),
            hart: 0,
            pc: 0x100,
            dominant: StallCause::BarrierWait,
            polls: None,
        }];
        let pm = PostMortem::assemble(10, stuck, &[], WaitGraph::new(), None);
        assert_eq!(pm.classification, Classification::Slow);
        assert!(pm.blame_cycle.is_empty());
    }

    #[test]
    fn polling_own_word_is_not_a_deadlock_edge() {
        let stuck = vec![StuckUnit {
            name: "c0 hart 0".into(),
            hart: 0,
            pc: 0x100,
            dominant: StallCause::Active,
            polls: Some(0x2000),
        }];
        // The hart owns the word it polls (e.g. DMA will set it): no
        // hart-to-hart edge, so no deadlock verdict.
        let pm = PostMortem::assemble(10, stuck, &[(0x2000, 0)], WaitGraph::new(), None);
        assert_eq!(pm.classification, Classification::Slow);
    }

    #[test]
    fn merge_rebases_units_and_prefers_deadlock() {
        let mut bb = BlackBox::new(8);
        let u = bb.add_unit("c1 hart 0");
        bb.sample(u, 3, StallCause::Active);
        let slow = PostMortem::assemble(
            7,
            vec![StuckUnit {
                name: "c1 hart 0".into(),
                hart: 0,
                pc: 0,
                dominant: StallCause::Active,
                polls: None,
            }],
            &[],
            WaitGraph::new(),
            Some(&bb),
        );
        let dead = PostMortem::assemble(
            9,
            vec![
                StuckUnit {
                    name: "c0 hart 0".into(),
                    hart: 0,
                    pc: 0,
                    dominant: StallCause::Active,
                    polls: Some(0x10),
                },
                StuckUnit {
                    name: "c0 hart 1".into(),
                    hart: 1,
                    pc: 0,
                    dominant: StallCause::Active,
                    polls: Some(0x18),
                },
            ],
            &[(0x10, 1), (0x18, 0)],
            WaitGraph::new(),
            None,
        );
        let merged = PostMortem::merge(vec![slow, dead]);
        assert_eq!(merged.at, 9);
        assert_eq!(merged.classification, Classification::Deadlock);
        assert_eq!(merged.blame_cycle.len(), 2);
        assert_eq!(merged.stuck.len(), 3);
        assert_eq!(merged.unit_names, vec!["c1 hart 0".to_owned()]);
        assert_eq!(merged.transitions.len(), 1);
        assert_eq!(merged.transitions[0].unit, 0);
    }

    #[test]
    fn sidecar_emits_spans_and_death_instant() {
        let mut bb = BlackBox::new(8);
        let u = bb.add_unit("hart 0");
        bb.sample(u, 2, StallCause::Active);
        bb.sample(u, 6, StallCause::FifoEmpty);
        let mut wg = WaitGraph::new();
        wg.add(EdgeClass::HartLane, 4);
        let pm = PostMortem::assemble(
            10,
            vec![StuckUnit {
                name: "hart 0".into(),
                hart: 0,
                pc: 0,
                dominant: StallCause::FifoEmpty,
                polls: None,
            }],
            &[],
            wg,
            Some(&bb),
        );
        let doc = pm.sidecar_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("events");
        let spans: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(spans.len(), 2, "active [2,6) then fifo_empty [6,10)");
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("active"));
        assert_eq!(spans[0].get("dur").and_then(Json::as_int), Some(4));
        assert_eq!(spans[1].get("name").and_then(Json::as_str), Some("fifo_empty"));
        let instants: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("i")).collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].get("ts").and_then(Json::as_int), Some(10));
    }
}
