//! Critical-path extraction over the wait graph.
//!
//! Walks the blame chain backward from end-of-ROI: the terminal unit's
//! breakdown partitions the measured window — every cycle was either
//! progress (`compute`) or blocked on exactly one wait edge
//! ([`edge_for`]). One level of descent follows the heaviest chain,
//! hart → lane: cycles the hart spent starved on its stream lanes are
//! redistributed over the lane's own breakdown (a lane that was
//! *active* while the hart waited is genuine dataflow on the path and
//! lands in `compute`; a lane that was itself blocked forwards the
//! blame to its own edge). The redistribution uses largest-remainder
//! rounding so the attribution stays an exact integer partition:
//! `compute + Σ edges == length`, the invariant the acceptance tests
//! pin down.
//!
//! Each edge-class count doubles as the what-if bound: eliminating that
//! wait entirely saves **at most** that many cycles, because those are
//! exactly the path cycles the class is blamed for (other limiters may
//! take over once it is gone — hence ≤, not =).

use crate::analyze::Bound;
use crate::attr::{CycleBreakdown, StallCause};
use crate::json::{obj, Json};
use crate::waitgraph::{edge_for, is_blocked, EdgeClass, UnitClass};

/// The critical path of one measured window, as an exact partition of
/// its cycles into `compute` plus per-edge-class blame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Cycles of the window the path covers (the terminal breakdown's
    /// total, i.e. its ROI cycles).
    pub length: u64,
    /// Path cycles spent making progress (terminal-unit active cycles
    /// plus descended lane-active dataflow).
    pub compute: u64,
    edges: [u64; EdgeClass::COUNT],
}

impl CriticalPath {
    /// Path cycles blamed on `edge` — also the what-if upper bound on
    /// cycles saved by eliminating that wait class.
    #[must_use]
    pub fn get(&self, edge: EdgeClass) -> u64 {
        self.edges[edge as usize]
    }

    /// Total path cycles blamed on wait edges.
    #[must_use]
    pub fn blocked(&self) -> u64 {
        self.edges.iter().sum()
    }

    /// `(edge, cycles)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeClass, u64)> + '_ {
        EdgeClass::ALL.iter().map(move |&e| (e, self.edges[e as usize]))
    }

    /// The heaviest wait edge on the path, ties broken by declaration
    /// order; `None` when the path is pure compute.
    #[must_use]
    pub fn dominant(&self) -> Option<EdgeClass> {
        let (edge, n) =
            self.iter().fold(
                (EdgeClass::HartLane, 0u64),
                |acc, (e, n)| {
                    if n > acc.1 {
                        (e, n)
                    } else {
                        acc
                    }
                },
            );
        if n > 0 {
            Some(edge)
        } else {
            None
        }
    }

    /// Human-readable what-if lines, one per non-zero edge class,
    /// heaviest first.
    #[must_use]
    pub fn what_if_lines(&self) -> Vec<String> {
        let mut nz: Vec<(EdgeClass, u64)> = self.iter().filter(|&(_, n)| n > 0).collect();
        nz.sort_by(|a, b| b.1.cmp(&a.1).then((a.0 as usize).cmp(&(b.0 as usize))));
        nz.iter().map(|(e, n)| format!("eliminating {} saves <= {} cycles", e.label(), n)).collect()
    }

    /// The roofline bound the dominant edge suggests, for cross-checking
    /// against the PR 7 verdict: `None` when the path is pure compute
    /// (suggesting `Bound::Compute`).
    #[must_use]
    pub fn suggested_bound(&self) -> Bound {
        if self.compute >= self.blocked() {
            return Bound::Compute;
        }
        match self.dominant() {
            Some(e) => bound_hint(e),
            None => Bound::Compute,
        }
    }

    /// The section as JSON: an exact partition (`"compute"` plus the
    /// full fixed-schema `"edges"` object sums to `"length"`), the
    /// dominant edge label (`"none"` for a pure-compute path), and its
    /// what-if bound.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let edges =
            Json::Obj(self.iter().map(|(e, n)| (e.label().to_owned(), Json::from(n))).collect());
        let (dom, saves) = match self.dominant() {
            Some(e) => (e.label(), self.get(e)),
            None => ("none", 0),
        };
        obj(vec![
            ("length", Json::from(self.length)),
            ("compute", Json::from(self.compute)),
            ("edges", edges),
            ("dominant_edge", Json::from(dom)),
            ("dominant_saves", Json::from(saves)),
        ])
    }
}

/// The roofline bound a wait-edge class suggests when it dominates.
#[must_use]
pub fn bound_hint(edge: EdgeClass) -> Bound {
    match edge {
        EdgeClass::DmaMainMem => Bound::Bandwidth,
        EdgeClass::HartBarrier => Bound::Sync,
        _ => Bound::Latency,
    }
}

/// Extracts the critical path ending at `terminal` (class + recorded
/// breakdown). When `lane` carries the merged breakdown of the
/// terminal's stream lanes, hart→lane blame descends one level into it.
#[must_use]
pub fn extract(
    terminal: UnitClass,
    breakdown: &CycleBreakdown,
    lane: Option<&CycleBreakdown>,
) -> CriticalPath {
    let mut path = CriticalPath { length: breakdown.total(), ..CriticalPath::default() };
    for (cause, n) in breakdown.iter() {
        if n == 0 {
            continue;
        }
        match edge_for(terminal, cause) {
            None => path.compute += n,
            Some(edge) => path.edges[edge as usize] += n,
        }
    }
    // One-level descent: hart→lane blame redistributes over the lane's
    // own breakdown (exactly, by largest-remainder apportionment).
    if terminal == UnitClass::Hart {
        if let Some(lane) = lane {
            let n = path.edges[EdgeClass::HartLane as usize];
            let weights: Vec<u64> = lane.iter().map(|(_, w)| w).collect();
            if n > 0 && weights.iter().sum::<u64>() > 0 {
                path.edges[EdgeClass::HartLane as usize] = 0;
                let shares = apportion(n, &weights);
                for ((cause, _), share) in lane.iter().zip(shares) {
                    if share == 0 {
                        continue;
                    }
                    match edge_for(UnitClass::Lane, cause) {
                        None => path.compute += share,
                        Some(edge) => path.edges[edge as usize] += share,
                    }
                }
            }
        }
    }
    debug_assert_eq!(path.compute + path.blocked(), path.length, "exact partition");
    path
}

/// Splits `n` proportionally to `weights`, summing exactly to `n`
/// (largest-remainder method; ties favour lower indices, so the split
/// is deterministic). Returns all zeros when the weights sum to zero.
fn apportion(n: u64, weights: &[u64]) -> Vec<u64> {
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return vec![0; weights.len()];
    }
    let mut shares: Vec<u64> = Vec::with_capacity(weights.len());
    let mut rems: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let prod = u128::from(n) * u128::from(w);
        let share = (prod / u128::from(total)) as u64;
        shares.push(share);
        assigned += share;
        rems.push((prod % u128::from(total), i));
    }
    let mut leftover = n - assigned;
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in &rems {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

/// `true` when the cause contributes a wait edge for some unit — a
/// convenience re-export for callers asserting path invariants.
#[must_use]
pub fn cause_is_blocked(cause: StallCause) -> bool {
    is_blocked(cause)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(pairs: &[(StallCause, u64)]) -> CycleBreakdown {
        let mut b = CycleBreakdown::new();
        for &(c, n) in pairs {
            for _ in 0..n {
                b.record(c);
            }
        }
        b
    }

    #[test]
    fn partition_is_exact_without_descent() {
        let b = bd(&[
            (StallCause::Active, 10),
            (StallCause::FifoEmpty, 6),
            (StallCause::PortConflict, 3),
            (StallCause::BarrierWait, 2),
            (StallCause::Idle, 4),
        ]);
        let p = extract(UnitClass::Hart, &b, None);
        assert_eq!(p.length, 25);
        assert_eq!(p.compute, 14);
        assert_eq!(p.get(EdgeClass::HartLane), 6);
        assert_eq!(p.get(EdgeClass::HartTcdm), 3);
        assert_eq!(p.get(EdgeClass::HartBarrier), 2);
        assert_eq!(p.compute + p.blocked(), p.length);
    }

    #[test]
    fn descent_redistributes_hart_lane_exactly() {
        let hart = bd(&[(StallCause::Active, 5), (StallCause::FifoEmpty, 10)]);
        // Lane: 1/5 active, 2/5 TCDM-starved, 2/5 joiner-blocked.
        let lane =
            bd(&[(StallCause::Active, 2), (StallCause::FifoEmpty, 4), (StallCause::JoinerWait, 4)]);
        let p = extract(UnitClass::Hart, &hart, Some(&lane));
        assert_eq!(p.length, 15);
        assert_eq!(p.get(EdgeClass::HartLane), 0, "fully descended");
        assert_eq!(p.compute, 5 + 2);
        assert_eq!(p.get(EdgeClass::LaneTcdm), 4);
        assert_eq!(p.get(EdgeClass::LaneJoiner), 4);
        assert_eq!(p.compute + p.blocked(), p.length);
    }

    #[test]
    fn descent_with_remainder_still_sums_exactly() {
        let hart = bd(&[(StallCause::FifoEmpty, 7)]);
        let lane =
            bd(&[(StallCause::Active, 1), (StallCause::FifoEmpty, 1), (StallCause::JoinerWait, 1)]);
        let p = extract(UnitClass::Hart, &hart, Some(&lane));
        assert_eq!(p.length, 7);
        assert_eq!(p.compute + p.blocked(), 7, "largest remainder keeps the partition exact");
    }

    #[test]
    fn idle_lane_keeps_blame_on_hart_lane() {
        let hart = bd(&[(StallCause::FifoEmpty, 8)]);
        let lane = CycleBreakdown::new();
        let p = extract(UnitClass::Hart, &hart, Some(&lane));
        assert_eq!(p.get(EdgeClass::HartLane), 8, "no lane record: blame stays put");
    }

    #[test]
    fn dominant_and_what_if() {
        let b = bd(&[
            (StallCause::Active, 3),
            (StallCause::PortConflict, 9),
            (StallCause::BarrierWait, 2),
        ]);
        let p = extract(UnitClass::Hart, &b, None);
        assert_eq!(p.dominant(), Some(EdgeClass::HartTcdm));
        let lines = p.what_if_lines();
        assert_eq!(lines[0], "eliminating hart_tcdm saves <= 9 cycles");
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn suggested_bound_tracks_dominance() {
        let compute = extract(UnitClass::Hart, &bd(&[(StallCause::Active, 9)]), None);
        assert_eq!(compute.suggested_bound(), Bound::Compute);
        let sync = extract(UnitClass::Hart, &bd(&[(StallCause::BarrierWait, 9)]), None);
        assert_eq!(sync.suggested_bound(), Bound::Sync);
        let bw = extract(UnitClass::Dma, &bd(&[(StallCause::BwDenied, 9)]), None);
        assert_eq!(bw.suggested_bound(), Bound::Bandwidth);
        let lat = extract(UnitClass::Hart, &bd(&[(StallCause::PortConflict, 9)]), None);
        assert_eq!(lat.suggested_bound(), Bound::Latency);
    }

    #[test]
    fn json_partition_sums_to_length() {
        let b = bd(&[(StallCause::Active, 4), (StallCause::FifoEmpty, 6)]);
        let p = extract(UnitClass::Hart, &b, None);
        let j = p.to_json();
        let length = j.get("length").and_then(Json::as_int).unwrap();
        let compute = j.get("compute").and_then(Json::as_int).unwrap();
        let Some(Json::Obj(edges)) = j.get("edges") else { panic!("edges object") };
        let edge_sum: i64 = edges.iter().map(|(_, v)| v.as_int().unwrap()).sum();
        assert_eq!(compute + edge_sum, length);
        assert_eq!(edges.len(), EdgeClass::COUNT, "fixed schema");
        assert_eq!(j.get("dominant_edge").and_then(Json::as_str), Some("hart_lane"));
        assert_eq!(j.get("dominant_saves").and_then(Json::as_int), Some(6));
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        assert_eq!(apportion(10, &[1, 1, 1]), vec![4, 3, 3]);
        assert_eq!(apportion(7, &[0, 0]), vec![0, 0]);
        assert_eq!(apportion(0, &[3, 4]), vec![0, 0]);
        let shares = apportion(1_000_003, &[7, 11, 13, 0, 29]);
        assert_eq!(shares.iter().sum::<u64>(), 1_000_003);
        assert_eq!(shares[3], 0);
    }
}
