//! Host-side simulator self-profiler.
//!
//! Where [`crate::attr`] explains the *modeled* machine, this module
//! explains the *simulator*: how much wall-clock each tick-phase bucket
//! (worker cores, DMCC, DMA engine, memories) costs the host, how many
//! unit ticks were provably idle (a halted hart, a drained streamer, an
//! engine with nothing queued — exactly the ticks a dirty-set scheduler
//! could skip), and how many simulated cycles per second the process
//! sustains. The idle census sizes the sparse-ticking opportunity the
//! ROADMAP's parallel-ticking item needs before anyone writes the
//! thread pool.
//!
//! The profiler is **opt-in and ambient**: a bench binary installs one
//! collector for its thread ([`install`]) and every run harness it
//! drives from then on — [`SingleCcSim::run`], [`Cluster::tick`],
//! [`System::tick`] — feeds it through the free functions here. When
//! nothing is installed the hooks reduce to one thread-local read per
//! tick. The profiler only *reads* simulator state (idleness probes are
//! `&self`), so enabling it cannot change simulated behavior — the
//! guest-neutrality property the test suite pins down.
//!
//! [`SingleCcSim::run`]: ../issr_snitch/cc/struct.SingleCcSim.html
//! [`Cluster::tick`]: ../issr_cluster/cluster/struct.Cluster.html
//! [`System::tick`]: ../issr_system/system/struct.System.html

use std::cell::RefCell;
use std::time::Instant;

use crate::json::obj;
use crate::merge::StatMerge;
use crate::{ratio, Json};

/// Accumulated host-side cost and idle census of one unit class (one
/// tick-phase bucket: `"workers"`, `"dmcc"`, `"dma"`, `"mem"`).
#[derive(Clone, Debug)]
struct ClassStats {
    name: &'static str,
    /// Host nanoseconds spent ticking this class.
    wall_nanos: u64,
    /// Unit ticks executed (one unit advanced one cycle).
    unit_ticks: u64,
    /// Unit ticks that were provably skippable: the unit was quiescent
    /// (empty FIFOs, no in-flight requests, parked hart) *before* the
    /// tick ran.
    idle_unit_ticks: u64,
}

/// Wall-clock, idle-census and throughput accumulator for one
/// simulation thread. Usually driven through the ambient [`install`] /
/// [`phase`] / [`report`] free functions; standalone use (own the
/// profiler, call [`HostProfiler::record`] directly) works too.
#[derive(Clone, Debug)]
pub struct HostProfiler {
    start: Instant,
    sim_cycles: u64,
    classes: Vec<ClassStats>,
}

impl Default for HostProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl HostProfiler {
    /// A fresh profiler; the wall clock starts now.
    #[must_use]
    pub fn new() -> Self {
        Self { start: Instant::now(), sim_cycles: 0, classes: Vec::new() }
    }

    /// Counts one simulated cycle of an outermost harness loop (system
    /// cycle, standalone-cluster cycle, single-CC cycle).
    pub fn cycle(&mut self) {
        self.sim_cycles += 1;
    }

    /// Adds one phase measurement: `nanos` of host time ticking `units`
    /// units of `class`, of which `idle_units` were provably idle
    /// before the tick.
    pub fn record(&mut self, class: &'static str, nanos: u64, units: u64, idle_units: u64) {
        let stats = match self.classes.iter_mut().find(|c| c.name == class) {
            Some(stats) => stats,
            None => {
                self.classes.push(ClassStats {
                    name: class,
                    wall_nanos: 0,
                    unit_ticks: 0,
                    idle_unit_ticks: 0,
                });
                self.classes.last_mut().expect("just pushed")
            }
        };
        stats.wall_nanos += nanos;
        stats.unit_ticks += units;
        stats.idle_unit_ticks += idle_units.min(units);
    }

    /// Simulated cycles counted so far.
    #[must_use]
    pub fn sim_cycles(&self) -> u64 {
        self.sim_cycles
    }

    /// Provably-idle fraction of all unit ticks across every class —
    /// the dirty-set opportunity in one number.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        let total: u64 = self.classes.iter().map(|c| c.unit_ticks).sum();
        let idle: u64 = self.classes.iter().map(|c| c.idle_unit_ticks).sum();
        ratio(idle as f64, total as f64)
    }

    /// The `host` telemetry section: wall-clock per unit class, the
    /// idle-tick census, and simulated-cycles/sec. Wall-clock fields
    /// are nondeterministic by nature; the baseline checker ignores
    /// the whole section.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let wall_nanos = self.start.elapsed().as_nanos() as u64;
        let wall_secs = wall_nanos as f64 / 1e9;
        let classes: Vec<(String, Json)> = self
            .classes
            .iter()
            .map(|c| {
                (
                    c.name.to_owned(),
                    obj(vec![
                        ("wall_ms", Json::Float(c.wall_nanos as f64 / 1e6)),
                        ("unit_ticks", Json::from(c.unit_ticks)),
                        ("idle_unit_ticks", Json::from(c.idle_unit_ticks)),
                        (
                            "idle_fraction",
                            Json::Float(ratio(c.idle_unit_ticks as f64, c.unit_ticks as f64)),
                        ),
                    ]),
                )
            })
            .collect();
        obj(vec![
            ("sim_cycles", Json::from(self.sim_cycles)),
            ("wall_ms", Json::Float(wall_secs * 1e3)),
            ("sim_cycles_per_sec", Json::Float(ratio(self.sim_cycles as f64, wall_secs))),
            ("idle_unit_fraction", Json::Float(self.idle_fraction())),
            ("classes", Json::Obj(classes)),
        ])
    }
}

impl StatMerge for HostProfiler {
    fn merge_from(&mut self, other: &Self) {
        self.start = self.start.min(other.start);
        self.sim_cycles += other.sim_cycles;
        for c in &other.classes {
            self.record(c.name, c.wall_nanos, c.unit_ticks, c.idle_unit_ticks);
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<HostProfiler>> = const { RefCell::new(None) };
}

/// Installs a fresh ambient profiler for this thread; every harness
/// ticked on it from now on reports in. Replaces any previous one.
pub fn install() {
    ACTIVE.with(|a| *a.borrow_mut() = Some(HostProfiler::new()));
}

/// Removes and returns this thread's ambient profiler.
pub fn uninstall() -> Option<HostProfiler> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Whether an ambient profiler is installed — the one check a harness
/// makes per tick before paying for any timing.
#[must_use]
pub fn is_enabled() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Runs `f` against the ambient profiler; no-op when none is installed.
pub fn with(f: impl FnOnce(&mut HostProfiler)) {
    ACTIVE.with(|a| {
        if let Some(p) = a.borrow_mut().as_mut() {
            f(p);
        }
    });
}

/// Counts one simulated cycle on the ambient profiler.
pub fn cycle() {
    with(HostProfiler::cycle);
}

/// Starts phase timing for one tick: `Some(now)` when profiling,
/// `None` (and zero further cost) otherwise.
#[must_use]
pub fn phase_start() -> Option<Instant> {
    is_enabled().then(Instant::now)
}

/// Closes the current phase — attributing the wall-clock since `t` to
/// `class` with its unit/idle census — and restarts `t` for the next
/// phase. No-op when `t` is `None`.
pub fn phase(t: &mut Option<Instant>, class: &'static str, units: u64, idle_units: u64) {
    if let Some(start) = t {
        let now = Instant::now();
        let nanos = now.duration_since(*start).as_nanos() as u64;
        with(|p| p.record(class, nanos, units, idle_units));
        *t = Some(now);
    }
}

/// The ambient profiler's `host` telemetry section, if one is
/// installed. The profiler stays installed (benches report once at the
/// end of `main`, after all sweeps fed it).
#[must_use]
pub fn report() -> Option<Json> {
    ACTIVE.with(|a| a.borrow().as_ref().map(HostProfiler::to_json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_accumulates_per_class() {
        let mut p = HostProfiler::new();
        p.cycle();
        p.cycle();
        p.record("workers", 100, 8, 3);
        p.record("workers", 50, 8, 8);
        p.record("dma", 10, 1, 1);
        assert_eq!(p.sim_cycles(), 2);
        let doc = p.to_json();
        let workers = doc.get("classes").and_then(|c| c.get("workers")).expect("workers class");
        assert_eq!(workers.get("unit_ticks").and_then(Json::as_int), Some(16));
        assert_eq!(workers.get("idle_unit_ticks").and_then(Json::as_int), Some(11));
        let dma = doc.get("classes").and_then(|c| c.get("dma")).expect("dma class");
        assert_eq!(dma.get("idle_fraction").and_then(Json::as_f64), Some(1.0));
        assert!((p.idle_fraction() - 12.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn idle_units_clamp_to_units() {
        let mut p = HostProfiler::new();
        p.record("mem", 1, 2, 5);
        assert!((p.idle_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_classes_and_cycles() {
        let mut a = HostProfiler::new();
        a.cycle();
        a.record("workers", 10, 4, 1);
        let mut b = HostProfiler::new();
        b.cycle();
        b.record("workers", 5, 4, 2);
        b.record("dmcc", 3, 1, 0);
        a.merge_from(&b);
        assert_eq!(a.sim_cycles(), 2);
        let doc = a.to_json();
        let workers = doc.get("classes").and_then(|c| c.get("workers")).expect("workers");
        assert_eq!(workers.get("unit_ticks").and_then(Json::as_int), Some(8));
        assert_eq!(workers.get("idle_unit_ticks").and_then(Json::as_int), Some(3));
        assert!(doc.get("classes").and_then(|c| c.get("dmcc")).is_some());
    }

    #[test]
    fn ambient_install_report_uninstall() {
        assert!(!is_enabled());
        assert!(report().is_none());
        install();
        assert!(is_enabled());
        cycle();
        let mut t = phase_start();
        assert!(t.is_some());
        phase(&mut t, "workers", 8, 4);
        let doc = report().expect("installed");
        assert_eq!(doc.get("sim_cycles").and_then(Json::as_int), Some(1));
        let p = uninstall().expect("was installed");
        assert_eq!(p.sim_cycles(), 1);
        assert!(!is_enabled());
        let mut t = phase_start();
        assert!(t.is_none());
        phase(&mut t, "workers", 1, 0); // no-op when off
    }
}
