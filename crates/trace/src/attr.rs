//! Stall-cause cycle attribution.
//!
//! Every simulated unit (hart, stream lane, index joiner, SpAcc, DMA
//! engine) classifies each elapsed cycle of its measured window into
//! exactly one [`StallCause`] and records it into a [`CycleBreakdown`].
//! Because classification happens exactly once per cycle at the single
//! place the unit's cycle counter advances, the breakdown's total
//! equals the elapsed cycles *by construction* — the invariant the
//! property tests assert.
//!
//! The enum is shared across unit kinds; each unit maps its own state
//! onto the causes (the README's Observability section tabulates the
//! per-unit meaning). Causes a unit can never exhibit simply stay zero
//! in its breakdown.

use crate::merge::StatMerge;

/// What a unit spent one cycle on. Exactly one cause per cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum StallCause {
    /// The unit did useful work (issued, moved a word, stepped, …).
    Active = 0,
    /// Starved: waiting on upstream data (empty FIFO, operand RAW).
    FifoEmpty = 1,
    /// Back-pressured: output FIFO/buffer full, downstream not draining.
    FifoFull = 2,
    /// Lost memory-port arbitration (TCDM bank conflict, shared-port
    /// round-robin, DMA yielding to cores).
    PortConflict = 3,
    /// Waiting on the index joiner to emit the next match.
    JoinerWait = 4,
    /// Blocked behind a drain in progress (SpAcc row writeback, DMA
    /// burst setup latency).
    DrainBusy = 5,
    /// Denied shared main-memory bandwidth this cycle.
    BwDenied = 6,
    /// Spinning at the cluster hardware barrier.
    BarrierWait = 7,
    /// Parked: halted hart, frozen (faulted) stream unit.
    Parked = 8,
    /// Nothing to do and nothing blocking — no job configured.
    Idle = 9,
}

impl StallCause {
    /// Number of causes (the breakdown array's length).
    pub const COUNT: usize = 10;

    /// All causes, in breakdown-index order.
    pub const ALL: [StallCause; Self::COUNT] = [
        StallCause::Active,
        StallCause::FifoEmpty,
        StallCause::FifoFull,
        StallCause::PortConflict,
        StallCause::JoinerWait,
        StallCause::DrainBusy,
        StallCause::BwDenied,
        StallCause::BarrierWait,
        StallCause::Parked,
        StallCause::Idle,
    ];

    /// Stable snake_case label (used as the JSON key and table header).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Active => "active",
            StallCause::FifoEmpty => "fifo_empty",
            StallCause::FifoFull => "fifo_full",
            StallCause::PortConflict => "port_conflict",
            StallCause::JoinerWait => "joiner_wait",
            StallCause::DrainBusy => "drain_busy",
            StallCause::BwDenied => "bw_denied",
            StallCause::BarrierWait => "barrier_wait",
            StallCause::Parked => "parked",
            StallCause::Idle => "idle",
        }
    }
}

/// Per-unit cycle counters, one per [`StallCause`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    counts: [u64; StallCause::COUNT],
}

impl CycleBreakdown {
    /// An all-zero breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes one cycle to `cause`.
    pub fn record(&mut self, cause: StallCause) {
        self.counts[cause as usize] += 1;
    }

    /// Cycles attributed to `cause`.
    #[must_use]
    pub fn get(&self, cause: StallCause) -> u64 {
        self.counts[cause as usize]
    }

    /// Total attributed cycles — equals the unit's elapsed measured
    /// cycles when the unit records exactly once per cycle.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of attributed cycles the unit was active.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        crate::ratio(self.get(StallCause::Active) as f64, self.total() as f64)
    }

    /// The cause with the most attributed cycles, ties broken by
    /// declaration order. An empty breakdown is `Idle` — the unit was
    /// never observed doing anything else.
    #[must_use]
    pub fn dominant(&self) -> StallCause {
        let mut best = StallCause::Idle;
        let mut best_n = 0u64;
        for (cause, n) in self.iter() {
            if n > best_n {
                best = cause;
                best_n = n;
            }
        }
        best
    }

    /// `(cause, cycles)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(move |&c| (c, self.counts[c as usize]))
    }

    /// The breakdown as a JSON object `{label: cycles, …}` (all ten
    /// keys always present, so the schema is fixed).
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        crate::Json::Obj(
            self.iter().map(|(c, n)| (c.label().to_owned(), crate::Json::from(n))).collect(),
        )
    }
}

impl StatMerge for CycleBreakdown {
    fn merge_from(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Formats labelled breakdowns as an aligned text table: one row per
/// unit, one column per cause that is non-zero somewhere, plus the
/// total. The bench reporters print this under their result tables.
#[must_use]
pub fn breakdown_table(rows: &[(String, CycleBreakdown)]) -> String {
    let shown: Vec<StallCause> = StallCause::ALL
        .iter()
        .copied()
        .filter(|&c| rows.iter().any(|(_, b)| b.get(c) > 0))
        .collect();
    let mut header: Vec<String> = vec!["unit".to_owned()];
    header.extend(shown.iter().map(|c| c.label().to_owned()));
    header.push("total".to_owned());
    let mut table: Vec<Vec<String>> = vec![header];
    for (name, b) in rows {
        let mut row = vec![name.clone()];
        row.extend(shown.iter().map(|&c| b.get(c).to_string()));
        row.push(b.total().to_string());
        table.push(row);
    }
    let n_cols = table[0].len();
    let widths: Vec<usize> =
        (0..n_cols).map(|j| table.iter().map(|r| r[j].len()).max().unwrap_or(0)).collect();
    let mut out = String::new();
    for row in &table {
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                out.push_str("  ");
            }
            if j == 0 {
                out.push_str(&format!("{cell:<width$}", width = widths[j]));
            } else {
                out.push_str(&format!("{cell:>width$}", width = widths[j]));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sums_exactly() {
        let mut b = CycleBreakdown::new();
        for _ in 0..7 {
            b.record(StallCause::Active);
        }
        b.record(StallCause::FifoEmpty);
        b.record(StallCause::Parked);
        assert_eq!(b.total(), 9);
        assert_eq!(b.get(StallCause::Active), 7);
        assert!((b.occupancy() - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counterwise() {
        let mut a = CycleBreakdown::new();
        a.record(StallCause::Active);
        let mut b = CycleBreakdown::new();
        b.record(StallCause::Active);
        b.record(StallCause::BwDenied);
        a.merge_from(&b);
        assert_eq!(a.get(StallCause::Active), 2);
        assert_eq!(a.get(StallCause::BwDenied), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn dominant_picks_heaviest_with_idle_fallback() {
        let mut b = CycleBreakdown::new();
        assert_eq!(b.dominant(), StallCause::Idle);
        b.record(StallCause::Active);
        b.record(StallCause::BarrierWait);
        b.record(StallCause::BarrierWait);
        assert_eq!(b.dominant(), StallCause::BarrierWait);
        b.record(StallCause::Active);
        // Tie: declaration order wins (Active precedes BarrierWait).
        assert_eq!(b.dominant(), StallCause::Active);
    }

    #[test]
    fn labels_are_unique_and_cover_all() {
        let mut labels: Vec<&str> = StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::COUNT);
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), StallCause::COUNT, "labels must be unique");
    }

    #[test]
    fn json_has_all_keys() {
        let b = CycleBreakdown::new();
        let crate::Json::Obj(fields) = b.to_json() else { panic!("object expected") };
        assert_eq!(fields.len(), StallCause::COUNT);
        assert_eq!(fields[0].0, "active");
    }
}
