//! Bottleneck classification: from raw counters to a verdict.
//!
//! [`attr`](crate::attr) answers *where the cycles went*; this module
//! answers the question a reader actually has: *what bounds this run?*
//! [`classify`] applies a roofline-style model — the cycles the moved
//! words would take at the interconnect's word budget, vs the cycles
//! the flops would take at peak FPU throughput — and falls back to the
//! dominant stall cause when neither roof explains the runtime. The
//! result is a [`Verdict`] with a one-line human-readable summary that
//! every bench bin prints, and a JSON form for the telemetry envelope.
//!
//! [`PhaseProfile`] adds program-phase resolution: the bench harness
//! maps kernel symbols to PC regions and buckets each sampled cycle's
//! stall cause into the phase the worker's PC was in — how two-pass
//! SpGEMM splits between symbolic, scan and numeric without touching
//! the kernel or the timing model.

use crate::json::obj;
use crate::{ratio, CycleBreakdown, Json, StallCause};

/// What limits a kernel run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bound {
    /// Data movement at the interconnect/DMA word budget explains the
    /// runtime (or bandwidth-denied stalls dominate).
    Bandwidth,
    /// FPU throughput at peak explains the runtime, or the units are
    /// simply busy (control-flow limited counts as compute here: the
    /// cores, not the memory system, are the limiter).
    Compute,
    /// Dependency latency dominates: starved or back-pressured FIFOs,
    /// port conflicts, joiner waits, drains in flight.
    Latency,
    /// Synchronization dominates: cycles burnt at the cluster barrier.
    Sync,
}

impl Bound {
    /// Stable lowercase label (JSON value and verdict line).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Bound::Bandwidth => "bandwidth",
            Bound::Compute => "compute",
            Bound::Latency => "latency",
            Bound::Sync => "sync",
        }
    }
}

/// Inputs to [`classify`]: one kernel run reduced to the quantities the
/// roofline model needs.
#[derive(Clone, Copy, Debug)]
pub struct RooflineInput {
    /// Measured runtime in cycles.
    pub elapsed: u64,
    /// Floating-point operations performed (fmadds + fadds).
    pub flops: u64,
    /// Peak flops/cycle of the units involved (1.0 per FPU).
    pub peak_flops_per_cycle: f64,
    /// 64-bit words moved through the bounding interconnect.
    pub words_moved: u64,
    /// That interconnect's word budget per cycle.
    pub words_per_cycle: f64,
    /// Merged stall-cause breakdown of the compute units.
    pub stalls: CycleBreakdown,
}

/// A classified run: the bound, how much of the runtime each roof
/// explains, and the dominant stall cause.
#[derive(Clone, Copy, Debug)]
pub struct Verdict {
    /// The classification.
    pub bound: Bound,
    /// Cycles the moved words need at the word budget.
    pub bw_limit_cycles: f64,
    /// Cycles the flops need at peak FPU throughput.
    pub fp_limit_cycles: f64,
    /// `bw_limit_cycles / elapsed`.
    pub bw_fraction: f64,
    /// `fp_limit_cycles / elapsed`.
    pub fp_fraction: f64,
    /// Largest stall cause (excluding active/parked/idle); `Active`
    /// when nothing stalled.
    pub dominant_stall: StallCause,
    /// The measured runtime the fractions refer to.
    pub elapsed: u64,
}

/// Which stall causes count toward each fallback bound.
const LATENCY_CAUSES: [StallCause; 5] = [
    StallCause::FifoEmpty,
    StallCause::FifoFull,
    StallCause::PortConflict,
    StallCause::JoinerWait,
    StallCause::DrainBusy,
];

/// Classifies one run.
///
/// Decision rule, in order:
/// 1. If the bandwidth roof explains ≥ 50% of the runtime and at least
///    as much as the FPU roof → [`Bound::Bandwidth`].
/// 2. Else if the FPU roof explains ≥ 50% → [`Bound::Compute`].
/// 3. Else neither roof explains the runtime; the dominant stall group
///    decides: barrier cycles → [`Bound::Sync`], bandwidth-denied →
///    [`Bound::Bandwidth`], dependency stalls (FIFO, port, joiner,
///    drain) → [`Bound::Latency`]. If active cycles outweigh every
///    stall group the units are busy on non-FP work → [`Bound::Compute`].
///
/// Parked and idle cycles never influence the verdict: a halted hart is
/// a finished hart, not a bottleneck.
#[must_use]
pub fn classify(input: &RooflineInput) -> Verdict {
    let elapsed = input.elapsed as f64;
    let bw_limit = ratio(input.words_moved as f64, input.words_per_cycle);
    let fp_limit = ratio(input.flops as f64, input.peak_flops_per_cycle);
    let bw_fraction = ratio(bw_limit, elapsed);
    let fp_fraction = ratio(fp_limit, elapsed);

    let dominant_stall = StallCause::ALL
        .iter()
        .copied()
        .filter(|&c| {
            !matches!(c, StallCause::Active | StallCause::Parked | StallCause::Idle)
                && input.stalls.get(c) > 0
        })
        .max_by_key(|&c| input.stalls.get(c))
        .unwrap_or(StallCause::Active);

    let sync = input.stalls.get(StallCause::BarrierWait);
    let latency: u64 = LATENCY_CAUSES.iter().map(|&c| input.stalls.get(c)).sum();
    let bw_denied = input.stalls.get(StallCause::BwDenied);
    let active = input.stalls.get(StallCause::Active);

    let bound = if bw_fraction >= 0.5 && bw_fraction >= fp_fraction {
        Bound::Bandwidth
    } else if fp_fraction >= 0.5 || (active >= sync && active >= latency && active >= bw_denied) {
        Bound::Compute
    } else if sync >= latency && sync >= bw_denied {
        Bound::Sync
    } else if bw_denied >= latency {
        Bound::Bandwidth
    } else {
        Bound::Latency
    };

    Verdict {
        bound,
        bw_limit_cycles: bw_limit,
        fp_limit_cycles: fp_limit,
        bw_fraction,
        fp_fraction,
        dominant_stall,
        elapsed: input.elapsed,
    }
}

impl Verdict {
    /// The one-line human-readable verdict every bench bin prints.
    #[must_use]
    pub fn line(&self, label: &str) -> String {
        format!(
            "verdict[{label}]: {}-bound — bw roof {:.0}% / fpu roof {:.0}% of {} cycles, dominant stall {}",
            self.bound.label(),
            self.bw_fraction * 100.0,
            self.fp_fraction * 100.0,
            self.elapsed,
            self.dominant_stall.label(),
        )
    }

    /// The verdict as a telemetry object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("bound", Json::from(self.bound.label())),
            ("bw_limit_cycles", Json::Float(self.bw_limit_cycles)),
            ("fp_limit_cycles", Json::Float(self.fp_limit_cycles)),
            ("bw_fraction", Json::Float(self.bw_fraction)),
            ("fp_fraction", Json::Float(self.fp_fraction)),
            ("dominant_stall", Json::from(self.dominant_stall.label())),
            ("elapsed", Json::from(self.elapsed)),
        ])
    }
}

/// One named PC region of a program.
#[derive(Clone, Debug)]
struct Phase {
    name: String,
    /// Byte-address span `[lo, hi)`.
    lo: u32,
    hi: u32,
    cycles: CycleBreakdown,
}

/// Buckets per-cycle stall samples by the PC region they occurred in.
///
/// The harness builds the regions from kernel symbols (instruction
/// index × 4 = byte PC) and calls [`sample`](Self::sample) once per
/// worker per cycle with the worker's current PC and latched stall
/// cause. Samples outside every region land in the `other` bucket, so
/// the profile always sums to the samples taken.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    phases: Vec<Phase>,
    other: CycleBreakdown,
}

impl PhaseProfile {
    /// Builds a profile over `(name, lo, hi)` byte-address spans.
    /// Earlier spans win on overlap.
    #[must_use]
    pub fn new(spans: &[(&str, u32, u32)]) -> Self {
        Self {
            phases: spans
                .iter()
                .map(|&(name, lo, hi)| Phase {
                    name: name.to_owned(),
                    lo,
                    hi,
                    cycles: CycleBreakdown::new(),
                })
                .collect(),
            other: CycleBreakdown::new(),
        }
    }

    /// Attributes one sampled cycle at `pc` to its phase.
    pub fn sample(&mut self, pc: u32, cause: StallCause) {
        match self.phases.iter_mut().find(|p| (p.lo..p.hi).contains(&pc)) {
            Some(p) => p.cycles.record(cause),
            None => self.other.record(cause),
        }
    }

    /// `(name, breakdown)` rows for [`crate::breakdown_table`] — every
    /// declared phase plus `other` when it caught anything.
    #[must_use]
    pub fn rows(&self) -> Vec<(String, CycleBreakdown)> {
        let mut rows: Vec<(String, CycleBreakdown)> =
            self.phases.iter().map(|p| (p.name.clone(), p.cycles)).collect();
        if self.other.total() > 0 {
            rows.push(("other".to_owned(), self.other));
        }
        rows
    }

    /// Total samples taken.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles.total()).sum::<u64>() + self.other.total()
    }

    /// `{phase: {cause: cycles, …}, …}` for the telemetry envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(self.rows().into_iter().map(|(name, b)| (name, b.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(pairs: &[(StallCause, u64)]) -> CycleBreakdown {
        let mut b = CycleBreakdown::new();
        for &(cause, n) in pairs {
            for _ in 0..n {
                b.record(cause);
            }
        }
        b
    }

    #[test]
    fn bandwidth_roof_wins() {
        // 8000 words at 8 words/cycle = 1000 cycles = 83% of runtime.
        let v = classify(&RooflineInput {
            elapsed: 1200,
            flops: 100,
            peak_flops_per_cycle: 8.0,
            words_moved: 8000,
            words_per_cycle: 8.0,
            stalls: breakdown(&[(StallCause::Active, 100)]),
        });
        assert_eq!(v.bound, Bound::Bandwidth);
        assert!(v.bw_fraction > 0.8);
    }

    #[test]
    fn fpu_roof_wins() {
        // 900 flops at 1 flop/cycle on a 1000-cycle run.
        let v = classify(&RooflineInput {
            elapsed: 1000,
            flops: 900,
            peak_flops_per_cycle: 1.0,
            words_moved: 100,
            words_per_cycle: 8.0,
            stalls: breakdown(&[(StallCause::Active, 900), (StallCause::FifoEmpty, 100)]),
        });
        assert_eq!(v.bound, Bound::Compute);
        assert_eq!(v.dominant_stall, StallCause::FifoEmpty);
    }

    #[test]
    fn barrier_stalls_mean_sync_bound() {
        let v = classify(&RooflineInput {
            elapsed: 1000,
            flops: 50,
            peak_flops_per_cycle: 8.0,
            words_moved: 50,
            words_per_cycle: 8.0,
            stalls: breakdown(&[
                (StallCause::Active, 200),
                (StallCause::BarrierWait, 600),
                (StallCause::FifoEmpty, 200),
            ]),
        });
        assert_eq!(v.bound, Bound::Sync);
        assert_eq!(v.dominant_stall, StallCause::BarrierWait);
    }

    #[test]
    fn starved_fifos_mean_latency_bound() {
        let v = classify(&RooflineInput {
            elapsed: 1000,
            flops: 100,
            peak_flops_per_cycle: 1.0,
            words_moved: 100,
            words_per_cycle: 8.0,
            stalls: breakdown(&[
                (StallCause::Active, 300),
                (StallCause::FifoEmpty, 400),
                (StallCause::JoinerWait, 200),
            ]),
        });
        assert_eq!(v.bound, Bound::Latency);
        assert_eq!(v.dominant_stall, StallCause::FifoEmpty);
    }

    #[test]
    fn bw_denied_stalls_mean_bandwidth_bound() {
        let v = classify(&RooflineInput {
            elapsed: 1000,
            flops: 100,
            peak_flops_per_cycle: 8.0,
            words_moved: 500,
            words_per_cycle: 16.0,
            stalls: breakdown(&[(StallCause::Active, 300), (StallCause::BwDenied, 500)]),
        });
        assert_eq!(v.bound, Bound::Bandwidth);
        assert_eq!(v.dominant_stall, StallCause::BwDenied);
    }

    #[test]
    fn busy_but_under_roof_is_compute() {
        // Mostly active, low FP intensity: control-flow limited.
        let v = classify(&RooflineInput {
            elapsed: 1000,
            flops: 100,
            peak_flops_per_cycle: 8.0,
            words_moved: 100,
            words_per_cycle: 8.0,
            stalls: breakdown(&[(StallCause::Active, 800), (StallCause::FifoEmpty, 100)]),
        });
        assert_eq!(v.bound, Bound::Compute);
    }

    #[test]
    fn parked_cycles_do_not_decide() {
        // Parked dominates the table but is ignored; barrier decides.
        let v = classify(&RooflineInput {
            elapsed: 1000,
            flops: 10,
            peak_flops_per_cycle: 8.0,
            words_moved: 10,
            words_per_cycle: 8.0,
            stalls: breakdown(&[
                (StallCause::Parked, 900),
                (StallCause::BarrierWait, 60),
                (StallCause::Active, 40),
            ]),
        });
        assert_eq!(v.bound, Bound::Sync);
        assert_eq!(v.dominant_stall, StallCause::BarrierWait);
    }

    #[test]
    fn zero_elapsed_is_guarded() {
        let v = classify(&RooflineInput {
            elapsed: 0,
            flops: 0,
            peak_flops_per_cycle: 1.0,
            words_moved: 0,
            words_per_cycle: 8.0,
            stalls: CycleBreakdown::new(),
        });
        assert_eq!(v.bound, Bound::Compute);
        assert_eq!(v.dominant_stall, StallCause::Active);
        assert!(v.line("empty").contains("compute-bound"));
    }

    #[test]
    fn verdict_json_shape() {
        let v = classify(&RooflineInput {
            elapsed: 100,
            flops: 90,
            peak_flops_per_cycle: 1.0,
            words_moved: 10,
            words_per_cycle: 8.0,
            stalls: breakdown(&[(StallCause::Active, 90)]),
        });
        let doc = v.to_json();
        assert_eq!(doc.get("bound").and_then(Json::as_str), Some("compute"));
        assert_eq!(doc.get("elapsed").and_then(Json::as_int), Some(100));
        assert!(doc.get("bw_fraction").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn phase_profile_buckets_by_pc() {
        let mut p = PhaseProfile::new(&[("symbolic", 0, 40), ("numeric", 40, 100)]);
        p.sample(0, StallCause::Active);
        p.sample(36, StallCause::FifoEmpty);
        p.sample(40, StallCause::Active);
        p.sample(120, StallCause::Parked); // outside both spans
        let rows = p.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "symbolic");
        assert_eq!(rows[0].1.total(), 2);
        assert_eq!(rows[1].1.get(StallCause::Active), 1);
        assert_eq!(rows[2].0, "other");
        assert_eq!(p.total(), 4);
        let doc = p.to_json();
        assert!(doc.get("numeric").is_some());
    }
}
