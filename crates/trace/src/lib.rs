//! # issr-trace
//!
//! The simulator's observability layer: where the other crates *model*
//! the architecture, this one explains what the model spent its cycles
//! on. It is deliberately at the bottom of the dependency graph (no
//! dependencies, not even on `issr-mem`) so every layer — stream units,
//! core complex, cluster, system, benches — can report through the same
//! vocabulary.
//!
//! Eight facilities:
//!
//! * [`attr`] — stall-cause cycle attribution. Each simulated unit
//!   classifies every ROI cycle into one [`StallCause`] and accumulates
//!   a [`CycleBreakdown`]; by construction the breakdown sums exactly
//!   to the elapsed cycles it covers.
//! * [`waitgraph`] — the causal layer over attribution: every blocked
//!   cycle is simultaneously a *blocked-on* edge (hart→lane,
//!   lane→TCDM bank, DMA→main memory, …), aggregated per edge class
//!   into a [`WaitGraph`].
//! * [`critpath`] — critical-path extraction: an exact partition of
//!   the measured window into compute plus per-edge-class blame, with
//!   what-if savings bounds ([`CriticalPath`]).
//! * [`analyze`] — the interpretation layer: a roofline-style
//!   bottleneck classifier turning counters into a bandwidth/compute/
//!   latency/sync [`Verdict`], and a PC-region [`PhaseProfile`] for
//!   per-phase stall breakdowns.
//! * [`chrome`] — an opt-in, ring-buffered interval recorder
//!   ([`TraceRecorder`]) exporting Chrome trace-event JSON (span and
//!   counter tracks, plus instant markers at trap/timeout moments)
//!   that loads directly in Perfetto (`ui.perfetto.dev`).
//! * [`blackbox`] — the flight recorder: a bounded ring of *recent*
//!   per-unit state transitions (the tail, where [`chrome`] keeps the
//!   head) and the [`PostMortem`] report the run harnesses dump on
//!   timeout or a latched fault.
//! * [`host`] — the opt-in host-side self-profiler: wall-clock per
//!   unit class, the provably-idle tick census, simulated-cycles/sec.
//! * [`json`] — a minimal JSON value/writer/parser ([`Json`]) for the
//!   machine-readable `BENCH_*.json` bench telemetry. No serde: the
//!   build environment is offline and the schema is tiny.
//!
//! Plus [`StatMerge`], the one merge trait behind every stats
//! aggregation path, and [`ratio`], the guarded division every
//! speedup/rate computation goes through.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod attr;
pub mod blackbox;
pub mod chrome;
pub mod critpath;
pub mod host;
pub mod json;
pub mod merge;
pub mod waitgraph;

pub use analyze::{classify, Bound, PhaseProfile, RooflineInput, Verdict};
pub use attr::{breakdown_table, CycleBreakdown, StallCause};
pub use blackbox::{BlackBox, Classification, PostMortem, StuckUnit, Transition, UnitId};
pub use chrome::{CounterId, TraceRecorder, TrackId};
pub use critpath::{extract, CriticalPath};
pub use host::HostProfiler;
pub use json::Json;
pub use merge::StatMerge;
pub use waitgraph::{edge_for, is_blocked, EdgeClass, UnitClass, WaitGraph};

/// Guarded division for speedups, rates and utilizations: returns
/// `num / den`, or 0.0 when the denominator is zero (a run that
/// completed in zero ROI cycles, an empty sweep, …) instead of a NaN
/// or infinity that would poison every downstream table and JSON file.
#[must_use]
pub fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_guards_zero_denominator() {
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(0.0, 0.0), 0.0);
        assert!((ratio(6.0, 3.0) - 2.0).abs() < 1e-12);
        assert!(ratio(1.0, 0.0).is_finite());
    }
}
