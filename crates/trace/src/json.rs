//! A minimal JSON value with writer and parser.
//!
//! The bench telemetry (`BENCH_*.json`) and the Chrome trace export
//! need to *emit* JSON, and the CI baseline checker needs to *read* it
//! back; serde is unavailable offline, and the schema is small enough
//! that a ~200-line value type is the simpler dependency anyway.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map) so
//! emitted files are deterministic and diff-friendly.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; cycle counters are u64-sized but the
    /// simulator's counts stay well inside i64).
    Int(i64),
    /// A float (written with enough precision to round-trip).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

/// Builds an object from `(key, value)` pairs — the envelope helper.
#[must_use]
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Serializes the value as compact JSON (use via `.to_string()`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips (and always includes a '.' or 'e').
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // resynchronizing on a char boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = std::str::from_utf8(rest)
                        .map(|t| t.chars().next().map_or(1, char::len_utf8))
                        .unwrap_or(1);
                    s.push_str(std::str::from_utf8(&rest[..len]).unwrap_or("\u{fffd}"));
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|e| e.to_string())
        } else {
            text.parse::<i64>().map(Json::Int).map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_an_envelope() {
        let doc = obj(vec![
            ("bench", Json::from("system")),
            ("pi", Json::Float(3.25)),
            ("n", Json::from(42u64)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
        assert_eq!(back.get("bench").and_then(Json::as_str), Some("system"));
        assert_eq!(back.get("n").and_then(Json::as_int), Some(42));
        assert_eq!(back.get("rows").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn escapes_and_parses_strings() {
        let doc = Json::Str("a \"b\"\n\\t\u{1}".into());
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn floats_round_trip_shortest() {
        let text = Json::Float(0.1).to_string();
        assert_eq!(text, "0.1");
        assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(0.1));
        // Whole floats keep a distinguishing dot.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }
}
