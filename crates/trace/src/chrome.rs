//! Opt-in interval tracing with Chrome trace-event export.
//!
//! The recorder observes unit occupancy from *outside* the timing model
//! (the run harnesses sample public state once per cycle), so enabling
//! it cannot change simulated behavior — the invariance the property
//! tests pin down. Spans live in a bounded buffer: once the cap is hit
//! further events are dropped and counted, so a full-size
//! `system_spgemm` run keeps the head of its timeline at a fixed memory
//! cost instead of growing without bound. A recorder whose buffers are
//! all full is [`TraceRecorder::saturated`] — it can accept nothing
//! more, and the run harnesses stop sampling it entirely (the per-cycle
//! walk over every track is pure overhead at that point).
//!
//! The export is the Chrome trace-event JSON array format: complete
//! (`"ph":"X"`) events on one track per unit, with thread-name metadata
//! so Perfetto labels the tracks, plus counter (`"ph":"C"`) events for
//! registered counter tracks (FIFO occupancy, outstanding DMA words).
//! Load it at `ui.perfetto.dev` (Open trace file) or
//! `chrome://tracing`.

use crate::json::{obj, Json};

/// Handle to one registered track.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrackId(usize);

/// Handle to one registered counter track.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(usize);

#[derive(Clone, Debug)]
struct Counter {
    /// Process id in the export — same grouping as span tracks.
    pid: u32,
    /// Counter name ("w0 lane 1 fifo", "dma words", …).
    name: String,
    /// Last recorded value; samples repeating it are free.
    last: Option<u64>,
}

/// One recorded counter value change.
#[derive(Clone, Copy, Debug)]
struct CounterSample {
    counter: usize,
    ts: u64,
    value: u64,
}

#[derive(Clone, Debug)]
struct Track {
    /// Process id in the export — one per cluster.
    pid: u32,
    /// Display name ("hart 3", "dma", "w0 lane 1", …).
    name: String,
    /// Open span's start cycle, if the unit is currently busy.
    open_since: Option<u64>,
}

/// One closed occupancy span.
#[derive(Clone, Copy, Debug)]
struct Span {
    track: usize,
    start: u64,
    dur: u64,
}

/// One instant marker (trap, fault, timeout).
#[derive(Clone, Debug)]
struct Instant {
    pid: u32,
    name: String,
    ts: u64,
}

/// Hard cap on instant markers: they mark exceptional moments (traps,
/// faults, timeouts), so a run emitting more than this is pathological
/// and further markers carry no information.
const INSTANT_CAP: usize = 1024;

/// Default span capacity: ~1.5 MB of spans, plenty for the smoke runs
/// and a bounded tail for full-size ones.
pub const DEFAULT_SPAN_CAP: usize = 65_536;

/// Ring-buffered occupancy recorder.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    tracks: Vec<Track>,
    spans: std::collections::VecDeque<Span>,
    counters: Vec<Counter>,
    counter_samples: std::collections::VecDeque<CounterSample>,
    instants: Vec<Instant>,
    cap: usize,
    dropped: u64,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_SPAN_CAP)
    }
}

impl TraceRecorder {
    /// Creates a recorder holding at most `cap` spans and `cap` counter
    /// samples (the head of the timeline is kept, later events are
    /// dropped and counted; a zero cap records nothing but still counts
    /// drops).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            tracks: Vec::new(),
            spans: std::collections::VecDeque::new(),
            counters: Vec::new(),
            counter_samples: std::collections::VecDeque::new(),
            instants: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Records an instant marker (`"ph":"i"`) at cycle `now` under
    /// process `pid` — used for trap, fault and timeout moments so
    /// post-mortem windows align with the timeline. Duplicate
    /// `(pid, name)` pairs are recorded once (the *first* occurrence is
    /// the forensic one); markers past [`INSTANT_CAP`] are dropped and
    /// counted.
    pub fn mark(&mut self, pid: u32, name: impl Into<String>, now: u64) {
        let name = name.into();
        if self.instants.iter().any(|i| i.pid == pid && i.name == name) {
            return;
        }
        if self.instants.len() < INSTANT_CAP {
            self.instants.push(Instant { pid, name, ts: now });
        } else {
            self.dropped += 1;
        }
    }

    /// Instant markers currently held.
    #[must_use]
    pub fn n_instants(&self) -> usize {
        self.instants.len()
    }

    /// Registers a track under process `pid` (one pid per cluster).
    pub fn add_track(&mut self, pid: u32, name: impl Into<String>) -> TrackId {
        self.tracks.push(Track { pid, name: name.into(), open_since: None });
        TrackId(self.tracks.len() - 1)
    }

    /// Registers a counter track under process `pid`.
    pub fn add_counter(&mut self, pid: u32, name: impl Into<String>) -> CounterId {
        self.counters.push(Counter { pid, name: name.into(), last: None });
        CounterId(self.counters.len() - 1)
    }

    /// Records the counter's value for cycle `now`. Only value changes
    /// cost a sample; steady state is free.
    pub fn sample_counter(&mut self, counter: CounterId, now: u64, value: u64) {
        let c = &mut self.counters[counter.0];
        if c.last == Some(value) {
            return;
        }
        c.last = Some(value);
        if self.counter_samples.len() < self.cap {
            self.counter_samples.push_back(CounterSample { counter: counter.0, ts: now, value });
        } else {
            self.dropped += 1;
        }
    }

    /// Records the unit's busy/idle state for cycle `now`. Transitions
    /// open and close spans; steady state is free.
    pub fn sample(&mut self, track: TrackId, now: u64, busy: bool) {
        let t = &mut self.tracks[track.0];
        match (t.open_since, busy) {
            (None, true) => t.open_since = Some(now),
            (Some(start), false) => {
                t.open_since = None;
                self.push_span(Span { track: track.0, start, dur: now.saturating_sub(start) });
            }
            _ => {}
        }
    }

    /// Closes every open span at end-of-run cycle `now`.
    pub fn finish(&mut self, now: u64) {
        for i in 0..self.tracks.len() {
            if let Some(start) = self.tracks[i].open_since.take() {
                self.push_span(Span { track: i, start, dur: now.saturating_sub(start) });
            }
        }
    }

    fn push_span(&mut self, span: Span) {
        if span.dur == 0 {
            return;
        }
        if self.spans.len() < self.cap {
            self.spans.push_back(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Whether every buffer is at its hard cap: no future span or
    /// counter sample can be accepted. Harnesses short-circuit their
    /// per-cycle sampling walk once this holds — nothing that walk
    /// could record would be kept.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.spans.len() >= self.cap && self.counter_samples.len() >= self.cap
    }

    /// Registered tracks.
    #[must_use]
    pub fn n_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Closed spans currently held.
    #[must_use]
    pub fn n_spans(&self) -> usize {
        self.spans.len()
    }

    /// Registered counter tracks.
    #[must_use]
    pub fn n_counters(&self) -> usize {
        self.counters.len()
    }

    /// Counter samples currently held.
    #[must_use]
    pub fn n_counter_samples(&self) -> usize {
        self.counter_samples.len()
    }

    /// Events (spans or counter samples) evicted by the ring cap.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the Chrome trace-event document (1 cycle = 1 µs, so
    /// Perfetto's time axis reads directly in cycles).
    #[must_use]
    pub fn to_chrome_json(&self) -> Json {
        let mut events = Vec::with_capacity(self.tracks.len() + self.spans.len());
        for (tid, t) in self.tracks.iter().enumerate() {
            events.push(obj(vec![
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(u64::from(t.pid))),
                ("tid", Json::from(tid)),
                ("args", obj(vec![("name", Json::from(t.name.as_str()))])),
            ]));
        }
        for s in &self.spans {
            let t = &self.tracks[s.track];
            events.push(obj(vec![
                ("name", Json::from("busy")),
                ("ph", Json::from("X")),
                ("ts", Json::from(s.start)),
                ("dur", Json::from(s.dur)),
                ("pid", Json::from(u64::from(t.pid))),
                ("tid", Json::from(s.track)),
            ]));
        }
        for s in &self.counter_samples {
            let c = &self.counters[s.counter];
            events.push(obj(vec![
                ("name", Json::from(c.name.as_str())),
                ("ph", Json::from("C")),
                ("ts", Json::from(s.ts)),
                ("pid", Json::from(u64::from(c.pid))),
                ("args", obj(vec![("value", Json::from(s.value))])),
            ]));
        }
        for i in &self.instants {
            events.push(obj(vec![
                ("name", Json::from(i.name.as_str())),
                ("ph", Json::from("i")),
                ("ts", Json::from(i.ts)),
                ("pid", Json::from(u64::from(i.pid))),
                ("tid", Json::from(0u64)),
                ("s", Json::from("p")),
            ]));
        }
        obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ns")),
            ("droppedSpans", Json::from(self.dropped)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_make_spans() {
        let mut rec = TraceRecorder::new(16);
        let t = rec.add_track(0, "hart 0");
        for now in 0..10u64 {
            rec.sample(t, now, (2..5).contains(&now) || now >= 8);
        }
        rec.finish(10);
        assert_eq!(rec.n_spans(), 2); // [2,5) and [8,10)
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn hard_cap_keeps_head_and_counts_drops() {
        let mut rec = TraceRecorder::new(2);
        let t = rec.add_track(0, "x");
        assert!(!rec.saturated());
        for i in 0..4u64 {
            rec.sample(t, 2 * i, true);
            rec.sample(t, 2 * i + 1, false);
        }
        assert_eq!(rec.n_spans(), 2);
        assert_eq!(rec.dropped(), 2);
        // Counter buffer is empty but there are no counters to fill it:
        // the span buffer alone decides nothing more fits.
        let doc = rec.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("events");
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("ts").and_then(Json::as_int).unwrap())
            .collect();
        assert_eq!(starts, vec![0, 2], "the head of the timeline is kept");
    }

    #[test]
    fn saturated_once_all_buffers_full() {
        let mut rec = TraceRecorder::new(1);
        let t = rec.add_track(0, "x");
        let c = rec.add_counter(0, "v");
        rec.sample(t, 0, true);
        rec.sample(t, 1, false);
        assert!(!rec.saturated(), "counter buffer still has room");
        rec.sample_counter(c, 2, 7);
        assert!(rec.saturated());
        assert!(TraceRecorder::new(0).saturated(), "zero cap accepts nothing");
    }

    #[test]
    fn counters_record_changes_only() {
        let mut rec = TraceRecorder::new(16);
        let c = rec.add_counter(0, "fifo depth");
        rec.sample_counter(c, 0, 0);
        rec.sample_counter(c, 1, 0); // unchanged: free
        rec.sample_counter(c, 2, 3);
        rec.sample_counter(c, 3, 3); // unchanged: free
        rec.sample_counter(c, 4, 1);
        assert_eq!(rec.n_counters(), 1);
        assert_eq!(rec.n_counter_samples(), 3);
        assert_eq!(rec.n_tracks(), 0); // counters are not span tracks
        let doc = rec.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("events");
        let counters: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("C")).collect();
        assert_eq!(counters.len(), 3);
        assert_eq!(counters[1].get("ts").and_then(Json::as_int), Some(2));
        assert_eq!(
            counters[1].get("args").and_then(|a| a.get("value")).and_then(Json::as_int),
            Some(3)
        );
        // No thread-name metadata for counters: Perfetto names them
        // from the event itself.
        let metas =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")).count();
        assert_eq!(metas, 0);
    }

    #[test]
    fn counter_hard_cap_keeps_head() {
        let mut rec = TraceRecorder::new(2);
        let c = rec.add_counter(0, "x");
        for i in 0..5u64 {
            rec.sample_counter(c, i, i); // always changing
        }
        assert_eq!(rec.n_counter_samples(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn instants_export_and_dedup() {
        let mut rec = TraceRecorder::new(8);
        rec.mark(0, "trap hart 3", 42);
        rec.mark(0, "trap hart 3", 99); // duplicate: first occurrence wins
        rec.mark(1, "trap hart 3", 50); // different pid: kept
        rec.mark(0, "timeout", 100);
        assert_eq!(rec.n_instants(), 3);
        let doc = rec.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("events");
        let instants: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("i")).collect();
        assert_eq!(instants.len(), 3);
        assert_eq!(instants[0].get("ts").and_then(Json::as_int), Some(42));
        assert_eq!(instants[0].get("s").and_then(Json::as_str), Some("p"));
        assert_eq!(rec.dropped(), 0);
        // Instants do not create tracks or spans.
        assert_eq!(rec.n_tracks(), 0);
        assert_eq!(rec.n_spans(), 0);
    }

    #[test]
    fn export_names_every_track() {
        let mut rec = TraceRecorder::new(8);
        let a = rec.add_track(0, "hart 0");
        let _b = rec.add_track(1, "dma");
        rec.sample(a, 0, true);
        rec.finish(3);
        let doc = rec.to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("events");
        let metas =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")).count();
        assert_eq!(metas, 2);
        let spans: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get("dur").and_then(Json::as_int), Some(3));
    }
}
