//! Wait-graph aggregation: *who* a stalled unit was blocked on.
//!
//! Stall-cause attribution ([`crate::attr`]) is local — it says lane 3
//! spent 40% of its ROI cycles `fifo_empty`, not which unit it was
//! waiting on. This module adds the causal layer: every non-`Active`,
//! non-`Idle`, non-`Parked` cycle a unit records is simultaneously an
//! *edge* in a wait graph, from the blocked unit class to the unit
//! class it was blocked on. The mapping [`edge_for`] is a pure function
//! of `(unit class, stall cause)`, total over every blocked cause — so
//! "every blocked cycle has exactly one outgoing edge" holds by
//! construction, and a [`WaitGraph`] derived from a recorded
//! [`CycleBreakdown`] sums exactly to that breakdown's blocked cycles.
//!
//! Because the graph is a linear function of the already-recorded
//! breakdowns, deriving it is timing-neutral and thread-invariant for
//! free; the live per-cycle recorder the cluster/system harnesses offer
//! is property-tested to agree bit-for-bit with the derived graph.

use crate::attr::{CycleBreakdown, StallCause};
use crate::json::Json;
use crate::merge::StatMerge;

/// The class of a simulated unit, as a wait-graph node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitClass {
    /// A Snitch integer core (worker or DMA core).
    Hart,
    /// One SSR/ISSR stream lane.
    Lane,
    /// The index-intersection joiner.
    Joiner,
    /// The sparse accumulator.
    SpAcc,
    /// A cluster DMA engine.
    Dma,
}

/// One directed wait edge class: blocked unit class → blocking resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum EdgeClass {
    /// Hart starved by a stream lane (RAW on a stream register).
    HartLane = 0,
    /// Hart lost TCDM/shared-port arbitration.
    HartTcdm = 1,
    /// Hart spinning at the cluster hardware barrier.
    HartBarrier = 2,
    /// Lane starved or deferred by a TCDM bank (conflict or latency).
    LaneTcdm = 3,
    /// Lane back-pressured by its consuming hart (datapath FIFO full).
    LaneHart = 4,
    /// Lane waiting on the index joiner to emit the next match.
    LaneJoiner = 5,
    /// Lane blocked behind an SpAcc row drain.
    LaneSpAcc = 6,
    /// Joiner starved or deferred by its feeding index lanes.
    JoinerLane = 7,
    /// Joiner back-pressured by the consuming hart.
    JoinerHart = 8,
    /// SpAcc starved by the joiner match stream.
    SpAccJoiner = 9,
    /// SpAcc writeback deferred by a TCDM bank.
    SpAccTcdm = 10,
    /// DMA denied shared main-memory bandwidth (or burst setup).
    DmaMainMem = 11,
    /// DMA yielded a contested TCDM bank to the cores.
    DmaTcdm = 12,
}

impl EdgeClass {
    /// Number of edge classes (the graph array's length).
    pub const COUNT: usize = 13;

    /// All edge classes, in index order.
    pub const ALL: [EdgeClass; Self::COUNT] = [
        EdgeClass::HartLane,
        EdgeClass::HartTcdm,
        EdgeClass::HartBarrier,
        EdgeClass::LaneTcdm,
        EdgeClass::LaneHart,
        EdgeClass::LaneJoiner,
        EdgeClass::LaneSpAcc,
        EdgeClass::JoinerLane,
        EdgeClass::JoinerHart,
        EdgeClass::SpAccJoiner,
        EdgeClass::SpAccTcdm,
        EdgeClass::DmaMainMem,
        EdgeClass::DmaTcdm,
    ];

    /// Stable snake_case label (used as the JSON key and table header).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EdgeClass::HartLane => "hart_lane",
            EdgeClass::HartTcdm => "hart_tcdm",
            EdgeClass::HartBarrier => "hart_barrier",
            EdgeClass::LaneTcdm => "lane_tcdm",
            EdgeClass::LaneHart => "lane_hart",
            EdgeClass::LaneJoiner => "lane_joiner",
            EdgeClass::LaneSpAcc => "lane_spacc",
            EdgeClass::JoinerLane => "joiner_lane",
            EdgeClass::JoinerHart => "joiner_hart",
            EdgeClass::SpAccJoiner => "spacc_joiner",
            EdgeClass::SpAccTcdm => "spacc_tcdm",
            EdgeClass::DmaMainMem => "dma_mainmem",
            EdgeClass::DmaTcdm => "dma_tcdm",
        }
    }

    /// Parses a label back to the edge class (for telemetry diffing).
    #[must_use]
    pub fn from_label(label: &str) -> Option<EdgeClass> {
        EdgeClass::ALL.iter().copied().find(|e| e.label() == label)
    }
}

/// Whether a cause represents a *blocked* cycle — one that carries a
/// wait edge. `Active` is progress, `Idle` is no work configured, and
/// `Parked` is a terminal state (halted hart, frozen lane) that waits
/// on nothing.
#[must_use]
pub fn is_blocked(cause: StallCause) -> bool {
    !matches!(cause, StallCause::Active | StallCause::Idle | StallCause::Parked)
}

/// Maps one blocked cycle to its outgoing wait edge.
///
/// Total over every blocked cause for every unit class (returns `None`
/// exactly when [`is_blocked`] is false), so a breakdown's blocked
/// cycles and its derived edge cycles always sum to the same number —
/// the soundness property the tests pin down. Causes a unit class can
/// never record still map somewhere sensible; they simply stay zero.
#[must_use]
pub fn edge_for(unit: UnitClass, cause: StallCause) -> Option<EdgeClass> {
    use EdgeClass as E;
    use StallCause as C;
    use UnitClass as U;
    match (unit, cause) {
        (_, C::Active | C::Idle | C::Parked) => None,
        (U::Hart, C::BarrierWait) => Some(E::HartBarrier),
        (U::Hart, C::PortConflict | C::BwDenied) => Some(E::HartTcdm),
        (U::Hart, _) => Some(E::HartLane),
        (U::Lane, C::FifoFull) => Some(E::LaneHart),
        (U::Lane, C::JoinerWait) => Some(E::LaneJoiner),
        (U::Lane, C::DrainBusy) => Some(E::LaneSpAcc),
        (U::Lane, _) => Some(E::LaneTcdm),
        (U::Joiner, C::FifoFull) => Some(E::JoinerHart),
        (U::Joiner, _) => Some(E::JoinerLane),
        (U::SpAcc, C::FifoEmpty | C::JoinerWait) => Some(E::SpAccJoiner),
        (U::SpAcc, _) => Some(E::SpAccTcdm),
        (U::Dma, C::PortConflict) => Some(E::DmaTcdm),
        (U::Dma, _) => Some(E::DmaMainMem),
    }
}

/// Aggregated wait graph: cycles spent blocked, per edge class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitGraph {
    counts: [u64; EdgeClass::COUNT],
}

impl WaitGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` blocked cycles to `edge`.
    pub fn add(&mut self, edge: EdgeClass, cycles: u64) {
        self.counts[edge as usize] += cycles;
    }

    /// Records one blocked cycle of `unit` under `cause`; non-blocked
    /// causes are ignored. This is the live per-cycle recording entry.
    pub fn record(&mut self, unit: UnitClass, cause: StallCause) {
        if let Some(edge) = edge_for(unit, cause) {
            self.add(edge, 1);
        }
    }

    /// Folds a whole recorded breakdown of `unit` into the graph —
    /// every blocked cycle becomes one edge cycle.
    pub fn add_breakdown(&mut self, unit: UnitClass, breakdown: &CycleBreakdown) {
        for (cause, n) in breakdown.iter() {
            if n > 0 {
                if let Some(edge) = edge_for(unit, cause) {
                    self.add(edge, n);
                }
            }
        }
    }

    /// Cycles attributed to `edge`.
    #[must_use]
    pub fn get(&self, edge: EdgeClass) -> u64 {
        self.counts[edge as usize]
    }

    /// Total blocked cycles across all edges.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(edge, cycles)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeClass, u64)> + '_ {
        EdgeClass::ALL.iter().map(move |&e| (e, self.counts[e as usize]))
    }

    /// The heaviest edge, ties broken by declaration order; `None` for
    /// an empty graph.
    #[must_use]
    pub fn dominant(&self) -> Option<EdgeClass> {
        let (edge, n) =
            self.iter().fold(
                (EdgeClass::HartLane, 0u64),
                |acc, (e, n)| {
                    if n > acc.1 {
                        (e, n)
                    } else {
                        acc
                    }
                },
            );
        if n > 0 {
            Some(edge)
        } else {
            None
        }
    }

    /// The graph as a JSON object `{edge_label: cycles, …}` (all keys
    /// always present, so the schema is fixed).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(e, n)| (e.label().to_owned(), Json::from(n))).collect())
    }
}

impl StatMerge for WaitGraph {
    fn merge_from(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_blocked_cause_has_exactly_one_edge() {
        for unit in
            [UnitClass::Hart, UnitClass::Lane, UnitClass::Joiner, UnitClass::SpAcc, UnitClass::Dma]
        {
            for cause in StallCause::ALL {
                assert_eq!(
                    edge_for(unit, cause).is_some(),
                    is_blocked(cause),
                    "{unit:?}/{cause:?}: blocked iff mapped"
                );
            }
        }
    }

    #[test]
    fn derived_graph_sums_to_blocked_cycles() {
        let mut b = CycleBreakdown::new();
        for _ in 0..5 {
            b.record(StallCause::Active);
        }
        for _ in 0..3 {
            b.record(StallCause::FifoEmpty);
        }
        b.record(StallCause::PortConflict);
        b.record(StallCause::BarrierWait);
        b.record(StallCause::Idle);
        let mut g = WaitGraph::new();
        g.add_breakdown(UnitClass::Hart, &b);
        let blocked: u64 = b.iter().filter(|&(c, _)| is_blocked(c)).map(|(_, n)| n).sum();
        assert_eq!(g.total(), blocked);
        assert_eq!(g.get(EdgeClass::HartLane), 3);
        assert_eq!(g.get(EdgeClass::HartTcdm), 1);
        assert_eq!(g.get(EdgeClass::HartBarrier), 1);
    }

    #[test]
    fn live_record_equals_derived() {
        let causes = [
            StallCause::Active,
            StallCause::FifoEmpty,
            StallCause::FifoEmpty,
            StallCause::JoinerWait,
            StallCause::DrainBusy,
            StallCause::Idle,
            StallCause::PortConflict,
        ];
        let mut b = CycleBreakdown::new();
        let mut live = WaitGraph::new();
        for c in causes {
            b.record(c);
            live.record(UnitClass::Lane, c);
        }
        let mut derived = WaitGraph::new();
        derived.add_breakdown(UnitClass::Lane, &b);
        assert_eq!(live, derived);
    }

    #[test]
    fn dominant_picks_heaviest_and_handles_empty() {
        let mut g = WaitGraph::new();
        assert_eq!(g.dominant(), None);
        g.add(EdgeClass::LaneTcdm, 4);
        g.add(EdgeClass::DmaMainMem, 9);
        assert_eq!(g.dominant(), Some(EdgeClass::DmaMainMem));
    }

    #[test]
    fn labels_are_unique_and_round_trip() {
        let mut labels: Vec<&str> = EdgeClass::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), EdgeClass::COUNT);
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EdgeClass::COUNT, "labels must be unique");
        for e in EdgeClass::ALL {
            assert_eq!(EdgeClass::from_label(e.label()), Some(e));
        }
        assert_eq!(EdgeClass::from_label("nope"), None);
    }

    #[test]
    fn merge_adds_edgewise() {
        let mut a = WaitGraph::new();
        a.add(EdgeClass::HartLane, 2);
        let mut b = WaitGraph::new();
        b.add(EdgeClass::HartLane, 3);
        b.add(EdgeClass::SpAccTcdm, 1);
        a.merge_from(&b);
        assert_eq!(a.get(EdgeClass::HartLane), 5);
        assert_eq!(a.get(EdgeClass::SpAccTcdm), 1);
        assert_eq!(a.total(), 6);
    }
}
