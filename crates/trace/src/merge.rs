//! The one stats-merge trait.
//!
//! `RunSummary`, `ClusterSummary` and `SystemSummary` all aggregate
//! per-unit counter structs (`LaneStats`, `JoinerStats`, `SpAccStats`,
//! `DmaStats`, [`crate::CycleBreakdown`]); before this trait each did
//! so by hand, field by field, and the three copies drifted. Counter
//! structs implement [`StatMerge`] next to their definition and every
//! aggregation path goes through it.

/// Counter-wise accumulation of one stats struct into another.
pub trait StatMerge {
    /// Adds `other`'s counters into `self` (`max`-like fields take the
    /// maximum — the implementor decides per field, once).
    fn merge_from(&mut self, other: &Self);
}

/// Folds an iterator of stats into a single merged value.
pub fn merge_all<'a, T, I>(items: I) -> T
where
    T: StatMerge + Default + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut acc = T::default();
    for item in items {
        acc.merge_from(item);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counts {
        n: u64,
        peak: u64,
    }

    impl StatMerge for Counts {
        fn merge_from(&mut self, other: &Self) {
            self.n += other.n;
            self.peak = self.peak.max(other.peak);
        }
    }

    #[test]
    fn merge_all_folds() {
        let parts = [Counts { n: 1, peak: 3 }, Counts { n: 2, peak: 1 }];
        let total: Counts = merge_all(&parts);
        assert_eq!(total.n, 3);
        assert_eq!(total.peak, 3);
    }
}
