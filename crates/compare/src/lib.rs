//! # issr-compare
//!
//! The related-work comparison of §V: published utilization figures for
//! CPUs and GPUs on CSR SpMV, and the ratios the paper derives against
//! the measured Snitch-with-ISSR cluster.
//!
//! The external numbers are *quoted constants* (the paper profiled
//! cuSPARSE with nvprof and cites CVR [4] for the Xeon Phi); only the
//! Snitch side is measured, by the `issr-cluster` simulator.

#![forbid(unsafe_code)]

/// One related system with its published SpMV efficiency.
#[derive(Clone, Copy, Debug)]
pub struct RelatedSystem {
    /// System name.
    pub name: &'static str,
    /// Arithmetic class compared.
    pub precision: &'static str,
    /// Peak streaming-multiprocessor / core occupancy, if reported.
    pub occupancy: Option<f64>,
    /// Peak floating-point utilization achieved on CSR SpMV.
    pub fp_utilization: f64,
    /// Source note.
    pub source: &'static str,
}

/// The systems quoted in §V.
#[must_use]
pub fn related_systems() -> Vec<RelatedSystem> {
    vec![
        RelatedSystem {
            name: "Intel Xeon Phi 7250 (CVR)",
            precision: "FP64",
            occupancy: None,
            fp_utilization: 0.007,
            source: "Xie et al. [4]: 21 Gflop/s of ~3 Tflop/s peak",
        },
        RelatedSystem {
            name: "GTX 1080 Ti, cuSPARSE CsrMV",
            precision: "FP32",
            occupancy: Some(0.87),
            fp_utilization: 0.0075,
            source: "paper §V, nvprof over 100 runs",
        },
        RelatedSystem {
            name: "Jetson AGX Xavier, cuSPARSE CsrMV",
            precision: "FP32",
            occupancy: Some(0.96),
            fp_utilization: 0.021,
            source: "paper §V, nvprof over 100 runs",
        },
        RelatedSystem {
            name: "GTX 1080 Ti, cuSPARSE CsrMV",
            precision: "FP64",
            occupancy: Some(0.87),
            fp_utilization: 0.17,
            source: "paper §V; 32x fewer FP64 cores per SM raise utilization",
        },
    ]
}

/// The paper's comparison outcomes given the measured cluster
/// utilization.
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    /// Measured Snitch + ISSR cluster FP64 utilization.
    pub cluster_utilization: f64,
    /// Ratio over the best GPU FP64 utilization (paper: 2.8×).
    pub vs_gpu_fp64: f64,
    /// Ratio over the Xeon Phi (paper: 70×).
    pub vs_cpu: f64,
}

/// Builds the §V comparison from a measured cluster utilization.
#[must_use]
pub fn compare(cluster_utilization: f64) -> Comparison {
    let gpu = related_systems()
        .iter()
        .filter(|s| s.precision == "FP64" && s.name.contains("GTX"))
        .map(|s| s.fp_utilization)
        .fold(f64::EPSILON, f64::max);
    let cpu = related_systems()[0].fp_utilization;
    Comparison {
        cluster_utilization,
        vs_gpu_fp64: cluster_utilization / gpu,
        vs_cpu: cluster_utilization / cpu,
    }
}

/// §IV-B's equivalence: how many BASE cores one ISSR cluster replaces
/// (paper: 8 × 5.8 ≈ 46).
#[must_use]
pub fn base_core_equivalent(n_workers: f64, cluster_speedup: f64) -> f64 {
    n_workers * cluster_speedup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoted_constants_present() {
        let systems = related_systems();
        assert_eq!(systems.len(), 4);
        assert!(systems.iter().any(|s| s.fp_utilization == 0.17));
        assert!(systems.iter().any(|s| s.occupancy == Some(0.96)));
    }

    #[test]
    fn paper_ratios_from_paper_utilization() {
        // With the paper's measured cluster utilization (~0.48), the
        // published ratios come out.
        let c = compare(0.48);
        assert!((c.vs_gpu_fp64 - 2.8).abs() < 0.05, "GPU ratio {}", c.vs_gpu_fp64);
        assert!((c.vs_cpu - 68.6).abs() < 2.0, "CPU ratio {}", c.vs_cpu);
    }

    #[test]
    fn base_core_equivalence() {
        assert!((base_core_equivalent(8.0, 5.8) - 46.4).abs() < 0.1);
    }
}
