//! Cluster-external main memory.
//!
//! The paper models main memory as an ideal 512-bit duplex interface
//! (§IV-B): the DMA engine can move one 64-byte beat per cycle in each
//! direction. Cores can also reach main memory directly over the cluster
//! crossbar with a fixed (much higher) latency; the kernels only use this
//! for rare bookkeeping, all bulk traffic goes through the DMA.

use crate::array::MemArray;
use crate::port::{MemOp, MemPort, MemRsp};

/// Ideal wide main memory with a latency for narrow (core) accesses.
#[derive(Clone, Debug)]
pub struct MainMemory {
    array: MemArray,
    narrow_latency: u64,
    /// Narrow requests served (core-side accesses).
    pub narrow_accesses: u64,
    /// Wide beats served (DMA side), reads + writes.
    pub wide_beats: u64,
}

impl MainMemory {
    /// Default narrow-access round-trip latency in cycles.
    pub const DEFAULT_NARROW_LATENCY: u64 = 25;

    /// Creates a main memory covering `[base, base + size)`.
    #[must_use]
    pub fn new(base: u32, size: u32) -> Self {
        Self {
            array: MemArray::new(base, size),
            narrow_latency: Self::DEFAULT_NARROW_LATENCY,
            narrow_accesses: 0,
            wide_beats: 0,
        }
    }

    /// Overrides the narrow-access latency.
    #[must_use]
    pub fn with_narrow_latency(mut self, latency: u64) -> Self {
        self.narrow_latency = latency.max(1);
        self
    }

    /// The backing storage (for workload marshalling).
    #[must_use]
    pub fn array(&self) -> &MemArray {
        &self.array
    }

    /// Mutable backing storage.
    pub fn array_mut(&mut self) -> &mut MemArray {
        &mut self.array
    }

    /// Serves narrow (64-bit) ports; one request per port per cycle, fixed
    /// latency, no contention (the crossbar is not the bottleneck in the
    /// paper's setup).
    pub fn tick(&mut self, now: u64, ports: &mut [&mut MemPort]) {
        for port in ports.iter_mut() {
            if let Some(req) = port.take_pending() {
                self.narrow_accesses += 1;
                debug_assert!(
                    self.array.contains(req.addr),
                    "main memory access {:#010x} out of range",
                    req.addr
                );
                match req.op {
                    MemOp::Read => {
                        let data = self.array.read_word(req.addr);
                        port.push_rsp(now + self.narrow_latency, MemRsp { data });
                    }
                    MemOp::Write { data, strb } => {
                        self.array.write_word(req.addr, data, strb);
                    }
                }
            }
        }
    }

    /// DMA-side word read (counted toward the 512-bit beat budget by the
    /// DMA engine itself).
    #[must_use]
    pub fn dma_read_word(&mut self, addr: u32) -> u64 {
        self.wide_beats += 1;
        self.array.read_word(addr)
    }

    /// DMA-side word write.
    pub fn dma_write_word(&mut self, addr: u32, data: u64) {
        self.wide_beats += 1;
        self.array.write_word(addr, data, 0xFF);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::MemReq;

    #[test]
    fn narrow_access_has_latency() {
        let mut mem = MainMemory::new(0x8000_0000, 4096).with_narrow_latency(10);
        mem.array_mut().store_u64(0x8000_0010, 99);
        let mut p = MemPort::new();
        p.send(MemReq::read(0x8000_0010));
        mem.tick(0, &mut [&mut p]);
        assert_eq!(p.take_rsp(9), None);
        assert_eq!(p.take_rsp(10).unwrap().data, 99);
        assert_eq!(mem.narrow_accesses, 1);
    }

    #[test]
    fn dma_side_counts_beats() {
        let mut mem = MainMemory::new(0, 128);
        mem.dma_write_word(0x40, 7);
        assert_eq!(mem.dma_read_word(0x40), 7);
        assert_eq!(mem.wide_beats, 2);
    }

    #[test]
    fn narrow_writes_apply_immediately() {
        let mut mem = MainMemory::new(0, 128);
        let mut p = MemPort::new();
        p.send(MemReq::write(0x18, 0xAB));
        mem.tick(3, &mut [&mut p]);
        assert_eq!(mem.array().load_u64(0x18), 0xAB);
    }
}
