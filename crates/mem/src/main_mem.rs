//! Cluster-external main memory.
//!
//! The paper models main memory as an ideal 512-bit duplex interface
//! (§IV-B): the DMA engine can move one 64-byte beat per cycle in each
//! direction. Cores can also reach main memory directly over the cluster
//! crossbar with a fixed (much higher) latency; the kernels only use this
//! for rare bookkeeping, all bulk traffic goes through the DMA.
//!
//! For the multi-cluster system the interface stops being ideal: every
//! cluster's DMA engine competes for the same wide port, so the memory
//! carries a configurable per-cycle word budget in each direction
//! ([`MainMemory::with_dma_bandwidth`]) plus a per-transfer access
//! latency ([`MainMemory::with_dma_latency`]). The single-cluster
//! defaults (8 words/cycle per direction, zero latency) reproduce the
//! paper's ideal port exactly.
//!
//! One word can be designated a **hardware fetch-and-add register**
//! ([`MainMemory::set_fetch_add_word`]): narrow reads return the current
//! value and post-increment it atomically (the memory serves one narrow
//! request at a time, so read-modify-write cannot interleave). The
//! multi-cluster kernels use it as the shared work-queue ticket counter
//! from which clusters claim row-panel tiles.

use crate::array::MemArray;
use crate::port::{MemOp, MemPort, MemRsp};

/// Contention-relevant counters of the shared main-memory interface.
#[derive(Clone, Copy, Debug, Default)]
pub struct MainMemStats {
    /// Narrow requests served (core-side accesses).
    pub narrow_accesses: u64,
    /// Wide words served (DMA side), reads + writes.
    pub wide_beats: u64,
    /// DMA word requests denied because the cycle's bandwidth budget was
    /// exhausted (each denial stalls the requesting engine one cycle).
    pub dma_denied: u64,
}

/// Wide main memory with a latency for narrow (core) accesses and a
/// per-cycle bandwidth budget on the wide (DMA) side.
#[derive(Clone, Debug)]
pub struct MainMemory {
    array: MemArray,
    narrow_latency: u64,
    /// DMA words served per cycle in each direction (512-bit duplex
    /// interface = 8; the shared system port divides this between
    /// clusters).
    dma_words_per_cycle: u32,
    /// Access latency charged once per DMA transfer touching this
    /// memory (burst setup; zero = the paper's ideal port).
    dma_latency: u64,
    /// Remaining read budget this cycle.
    budget_read: u32,
    /// Remaining write budget this cycle.
    budget_write: u32,
    /// Address of the hardware fetch-and-add word, if configured.
    fetch_add_addr: Option<u32>,
    /// Interface statistics.
    pub stats: MainMemStats,
}

impl MainMemory {
    /// Default narrow-access round-trip latency in cycles.
    pub const DEFAULT_NARROW_LATENCY: u64 = 25;
    /// Default wide-side bandwidth in words per cycle per direction
    /// (the paper's 512-bit duplex port).
    pub const DEFAULT_DMA_WORDS_PER_CYCLE: u32 = 8;

    /// Creates a main memory covering `[base, base + size)`.
    #[must_use]
    pub fn new(base: u32, size: u32) -> Self {
        Self {
            array: MemArray::new(base, size),
            narrow_latency: Self::DEFAULT_NARROW_LATENCY,
            dma_words_per_cycle: Self::DEFAULT_DMA_WORDS_PER_CYCLE,
            dma_latency: 0,
            budget_read: Self::DEFAULT_DMA_WORDS_PER_CYCLE,
            budget_write: Self::DEFAULT_DMA_WORDS_PER_CYCLE,
            fetch_add_addr: None,
            stats: MainMemStats::default(),
        }
    }

    /// Overrides the narrow-access latency.
    #[must_use]
    pub fn with_narrow_latency(mut self, latency: u64) -> Self {
        self.narrow_latency = latency.max(1);
        self
    }

    /// Overrides the wide-side bandwidth (words per cycle per
    /// direction). The budget is shared by every DMA engine ticked
    /// against this memory within one cycle — the contention model of
    /// the multi-cluster system.
    #[must_use]
    pub fn with_dma_bandwidth(mut self, words_per_cycle: u32) -> Self {
        self.dma_words_per_cycle = words_per_cycle.max(1);
        self.budget_read = self.dma_words_per_cycle;
        self.budget_write = self.dma_words_per_cycle;
        self
    }

    /// Overrides the per-transfer DMA access latency.
    #[must_use]
    pub fn with_dma_latency(mut self, latency: u64) -> Self {
        self.dma_latency = latency;
        self
    }

    /// Configured per-transfer DMA access latency.
    #[must_use]
    pub fn dma_latency(&self) -> u64 {
        self.dma_latency
    }

    /// Designates `addr` as the hardware fetch-and-add word: narrow
    /// reads return the stored value and post-increment it.
    pub fn set_fetch_add_word(&mut self, addr: u32) {
        self.fetch_add_addr = Some(addr);
    }

    /// The backing storage (for workload marshalling).
    #[must_use]
    pub fn array(&self) -> &MemArray {
        &self.array
    }

    /// Mutable backing storage.
    pub fn array_mut(&mut self) -> &mut MemArray {
        &mut self.array
    }

    /// Narrow requests served (back-compat accessor).
    #[must_use]
    pub fn narrow_accesses(&self) -> u64 {
        self.stats.narrow_accesses
    }

    /// Wide words served (back-compat accessor).
    #[must_use]
    pub fn wide_beats(&self) -> u64 {
        self.stats.wide_beats
    }

    /// Resets the per-cycle DMA word budget. Call exactly once per
    /// simulated cycle, before any DMA engine ticks against this
    /// memory (the standalone cluster and the system harness both do).
    pub fn begin_dma_cycle(&mut self) {
        self.budget_read = self.dma_words_per_cycle;
        self.budget_write = self.dma_words_per_cycle;
    }

    /// Serves narrow (64-bit) ports; one request per port per cycle, fixed
    /// latency, no contention (the crossbar is not the bottleneck in the
    /// paper's setup).
    pub fn tick(&mut self, now: u64, ports: &mut [&mut MemPort]) {
        for port in ports.iter_mut() {
            if let Some(req) = port.take_pending() {
                self.stats.narrow_accesses += 1;
                debug_assert!(
                    self.array.contains(req.addr),
                    "main memory access {:#010x} out of range",
                    req.addr
                );
                match req.op {
                    MemOp::Read => {
                        let data = self.array.read_word(req.addr);
                        if self.fetch_add_addr == Some(req.addr) {
                            // Hardware fetch-and-add: atomic because the
                            // memory serves one request at a time.
                            self.array.write_word(req.addr, data.wrapping_add(1), 0xFF);
                        }
                        port.push_rsp(now + self.narrow_latency, MemRsp { data });
                    }
                    MemOp::Write { data, strb } => {
                        self.array.write_word(req.addr, data, strb);
                    }
                }
            }
        }
    }

    /// DMA-side word read under the cycle's bandwidth budget; `None`
    /// denies the request (budget exhausted — the engine stalls).
    #[must_use]
    pub fn try_dma_read_word(&mut self, addr: u32) -> Option<u64> {
        if self.budget_read == 0 {
            self.stats.dma_denied += 1;
            return None;
        }
        self.budget_read -= 1;
        self.stats.wide_beats += 1;
        Some(self.array.read_word(addr))
    }

    /// DMA-side word write under the cycle's bandwidth budget; `false`
    /// denies the request (budget exhausted — the engine stalls).
    #[must_use]
    pub fn try_dma_write_word(&mut self, addr: u32, data: u64) -> bool {
        if self.budget_write == 0 {
            self.stats.dma_denied += 1;
            return false;
        }
        self.budget_write -= 1;
        self.stats.wide_beats += 1;
        self.array.write_word(addr, data, 0xFF);
        true
    }

    /// DMA-side word read ignoring the bandwidth budget (host-side
    /// marshalling and unit tests).
    #[must_use]
    pub fn dma_read_word(&mut self, addr: u32) -> u64 {
        self.stats.wide_beats += 1;
        self.array.read_word(addr)
    }

    /// DMA-side word write ignoring the bandwidth budget.
    pub fn dma_write_word(&mut self, addr: u32, data: u64) {
        self.stats.wide_beats += 1;
        self.array.write_word(addr, data, 0xFF);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::MemReq;

    #[test]
    fn narrow_access_has_latency() {
        let mut mem = MainMemory::new(0x8000_0000, 4096).with_narrow_latency(10);
        mem.array_mut().store_u64(0x8000_0010, 99);
        let mut p = MemPort::new();
        p.send(MemReq::read(0x8000_0010));
        mem.tick(0, &mut [&mut p]);
        assert_eq!(p.take_rsp(9), None);
        assert_eq!(p.take_rsp(10).unwrap().data, 99);
        assert_eq!(mem.narrow_accesses(), 1);
    }

    #[test]
    fn dma_side_counts_beats() {
        let mut mem = MainMemory::new(0, 128);
        mem.dma_write_word(0x40, 7);
        assert_eq!(mem.dma_read_word(0x40), 7);
        assert_eq!(mem.wide_beats(), 2);
    }

    #[test]
    fn narrow_writes_apply_immediately() {
        let mut mem = MainMemory::new(0, 128);
        let mut p = MemPort::new();
        p.send(MemReq::write(0x18, 0xAB));
        mem.tick(3, &mut [&mut p]);
        assert_eq!(mem.array().load_u64(0x18), 0xAB);
    }

    #[test]
    fn dma_budget_denies_past_bandwidth() {
        let mut mem = MainMemory::new(0, 256).with_dma_bandwidth(2);
        mem.begin_dma_cycle();
        assert!(mem.try_dma_read_word(0).is_some());
        assert!(mem.try_dma_read_word(8).is_some());
        assert!(mem.try_dma_read_word(16).is_none(), "third read must be denied");
        // Writes draw from their own (duplex) budget.
        assert!(mem.try_dma_write_word(0x20, 1));
        assert!(mem.try_dma_write_word(0x28, 2));
        assert!(!mem.try_dma_write_word(0x30, 3));
        assert_eq!(mem.stats.dma_denied, 2);
        mem.begin_dma_cycle();
        assert!(mem.try_dma_read_word(16).is_some(), "budget refills per cycle");
    }

    #[test]
    fn fetch_add_word_increments_on_read() {
        let mut mem = MainMemory::new(0, 128).with_narrow_latency(1);
        mem.set_fetch_add_word(0x40);
        for expect in 0..3u64 {
            let mut p = MemPort::new();
            p.send(MemReq::read(0x40));
            mem.tick(0, &mut [&mut p]);
            assert_eq!(p.take_rsp(1).unwrap().data, expect);
        }
        // Ordinary reads elsewhere do not increment.
        let mut p = MemPort::new();
        p.send(MemReq::read(0x48));
        mem.tick(0, &mut [&mut p]);
        assert_eq!(p.take_rsp(1).unwrap().data, 0);
        assert_eq!(mem.array().load_u64(0x48), 0);
    }

    #[test]
    fn two_ports_claim_distinct_tickets_in_one_cycle() {
        let mut mem = MainMemory::new(0, 128).with_narrow_latency(1);
        mem.set_fetch_add_word(0x10);
        let mut a = MemPort::new();
        let mut b = MemPort::new();
        a.send(MemReq::read(0x10));
        b.send(MemReq::read(0x10));
        mem.tick(0, &mut [&mut a, &mut b]);
        let ta = a.take_rsp(1).unwrap().data;
        let tb = b.take_rsp(1).unwrap().data;
        assert_eq!((ta, tb), (0, 1), "claims must serialize");
    }
}
