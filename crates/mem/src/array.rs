//! Backing storage for simulated memories.
//!
//! All data ports in the system are 64 bits wide (the TCDM word size);
//! sub-word accesses are expressed with byte strobes, exactly like the
//! write lanes of an SRAM macro. The array also offers host-side typed
//! accessors used to marshal workloads in and results out.

/// A flat, word-addressed memory region.
#[derive(Clone, Debug)]
pub struct MemArray {
    base: u32,
    words: Vec<u64>,
}

impl MemArray {
    /// Creates a zero-initialized region covering `[base, base + size)`.
    ///
    /// # Panics
    /// Panics if `base` or `size` is not 8-byte aligned.
    #[must_use]
    pub fn new(base: u32, size: u32) -> Self {
        assert_eq!(base % 8, 0, "region base must be 8-byte aligned"); // gate-allow: host-API construction precondition
        assert_eq!(size % 8, 0, "region size must be 8-byte aligned"); // gate-allow: host-API construction precondition
        Self { base, words: vec![0; (size / 8) as usize] }
    }

    /// First byte address of the region.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Region size in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        (self.words.len() * 8) as u32
    }

    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (u64::from(addr) - u64::from(self.base)) < u64::from(self.size())
    }

    fn word_index(&self, addr: u32) -> usize {
        debug_assert!(self.contains(addr), "address {addr:#010x} outside region");
        ((addr - self.base) / 8) as usize
    }

    /// Reads the aligned 64-bit word containing `addr`.
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u64 {
        self.words[self.word_index(addr)]
    }

    /// Writes byte lanes of the aligned word containing `addr` selected by
    /// `strb` (bit *i* enables byte *i*).
    pub fn write_word(&mut self, addr: u32, data: u64, strb: u8) {
        let idx = self.word_index(addr);
        if strb == 0xFF {
            self.words[idx] = data;
            return;
        }
        let mut mask: u64 = 0;
        for byte in 0..8 {
            if strb & (1 << byte) != 0 {
                mask |= 0xFF << (byte * 8);
            }
        }
        self.words[idx] = (self.words[idx] & !mask) | (data & mask);
    }

    // ---- host-side marshalling helpers ----

    /// Writes a `u64` at an 8-byte-aligned address.
    pub fn store_u64(&mut self, addr: u32, value: u64) {
        assert_eq!(addr % 8, 0, "store_u64 requires 8-byte alignment"); // gate-allow: host-API alignment precondition
        let idx = self.word_index(addr);
        self.words[idx] = value;
    }

    /// Reads a `u64` from an 8-byte-aligned address.
    #[must_use]
    pub fn load_u64(&self, addr: u32) -> u64 {
        assert_eq!(addr % 8, 0, "load_u64 requires 8-byte alignment"); // gate-allow: host-API alignment precondition
        self.read_word(addr)
    }

    /// Writes an `f64` at an 8-byte-aligned address.
    pub fn store_f64(&mut self, addr: u32, value: f64) {
        self.store_u64(addr, value.to_bits());
    }

    /// Reads an `f64` from an 8-byte-aligned address.
    #[must_use]
    pub fn load_f64(&self, addr: u32) -> f64 {
        f64::from_bits(self.load_u64(addr))
    }

    /// Writes a `u32` at a 4-byte-aligned address.
    pub fn store_u32(&mut self, addr: u32, value: u32) {
        assert_eq!(addr % 4, 0, "store_u32 requires 4-byte alignment"); // gate-allow: host-API alignment precondition
        let shift = (addr % 8) * 8;
        let strb = 0x0F << (addr % 8);
        self.write_word(addr & !7, u64::from(value) << shift, strb as u8);
    }

    /// Reads a `u32` from a 4-byte-aligned address.
    #[must_use]
    pub fn load_u32(&self, addr: u32) -> u32 {
        assert_eq!(addr % 4, 0, "load_u32 requires 4-byte alignment"); // gate-allow: host-API alignment precondition
        let shift = (addr % 8) * 8;
        (self.read_word(addr & !7) >> shift) as u32
    }

    /// Writes a `u16` at a 2-byte-aligned address.
    pub fn store_u16(&mut self, addr: u32, value: u16) {
        assert_eq!(addr % 2, 0, "store_u16 requires 2-byte alignment"); // gate-allow: host-API alignment precondition
        let shift = (addr % 8) * 8;
        let strb = 0x03 << (addr % 8);
        self.write_word(addr & !7, u64::from(value) << shift, strb as u8);
    }

    /// Reads a `u16` from a 2-byte-aligned address.
    #[must_use]
    pub fn load_u16(&self, addr: u32) -> u16 {
        assert_eq!(addr % 2, 0, "load_u16 requires 2-byte alignment"); // gate-allow: host-API alignment precondition
        let shift = (addr % 8) * 8;
        (self.read_word(addr & !7) >> shift) as u16
    }

    /// Copies a slice of doubles into memory starting at `addr`.
    pub fn store_f64_slice(&mut self, addr: u32, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            self.store_f64(addr + (i as u32) * 8, v);
        }
    }

    /// Reads `len` doubles starting at `addr`.
    #[must_use]
    pub fn load_f64_slice(&self, addr: u32, len: usize) -> Vec<f64> {
        (0..len).map(|i| self.load_f64(addr + (i as u32) * 8)).collect()
    }

    /// Reads `len` `u32` values starting at `addr`.
    #[must_use]
    pub fn load_u32_slice(&self, addr: u32, len: usize) -> Vec<u32> {
        (0..len).map(|i| self.load_u32(addr + i as u32 * 4)).collect()
    }

    /// Reads `len` `u16` values starting at `addr`.
    #[must_use]
    pub fn load_u16_slice(&self, addr: u32, len: usize) -> Vec<u16> {
        (0..len).map(|i| self.load_u16(addr + i as u32 * 2)).collect()
    }

    /// Copies a slice of `u32` into memory starting at `addr`.
    pub fn store_u32_slice(&mut self, addr: u32, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.store_u32(addr + (i as u32) * 4, v);
        }
    }

    /// Copies a slice of `u16` into memory starting at `addr`.
    pub fn store_u16_slice(&mut self, addr: u32, values: &[u16]) {
        for (i, &v) in values.iter().enumerate() {
            self.store_u16(addr + (i as u32) * 2, v);
        }
    }

    /// Fills the whole region with zeros.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_word_round_trip() {
        let mut m = MemArray::new(0x1000, 64);
        m.store_u64(0x1008, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.load_u64(0x1008), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.load_u64(0x1000), 0);
    }

    #[test]
    fn strobed_write_touches_selected_lanes_only() {
        let mut m = MemArray::new(0, 8);
        m.store_u64(0, 0x1111_1111_1111_1111);
        m.write_word(0, 0xFFFF_FFFF_FFFF_FFFF, 0b0000_1100);
        assert_eq!(m.load_u64(0), 0x1111_1111_FFFF_1111);
    }

    #[test]
    fn sub_word_accessors() {
        let mut m = MemArray::new(0, 16);
        m.store_u32(4, 0xAABB_CCDD);
        assert_eq!(m.load_u32(4), 0xAABB_CCDD);
        assert_eq!(m.load_u32(0), 0);
        m.store_u16(10, 0x1234);
        assert_eq!(m.load_u16(10), 0x1234);
        assert_eq!(m.load_u64(8) >> 16 & 0xFFFF, 0x1234);
    }

    #[test]
    fn f64_slices() {
        let mut m = MemArray::new(0x100, 256);
        let vals = [1.5, -2.25, 3.0];
        m.store_f64_slice(0x110, &vals);
        assert_eq!(m.load_f64_slice(0x110, 3), vals);
    }

    #[test]
    fn contains_bounds() {
        let m = MemArray::new(0x1000, 0x100);
        assert!(m.contains(0x1000));
        assert!(m.contains(0x10FF));
        assert!(!m.contains(0x0FFF));
        assert!(!m.contains(0x1100));
    }

    #[test]
    #[should_panic(expected = "alignment")]
    fn misaligned_u32_panics() {
        let mut m = MemArray::new(0, 16);
        m.store_u32(2, 7);
    }
}
