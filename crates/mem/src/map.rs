//! The system address map.
//!
//! | Region | Base | Size | Notes |
//! |---|---|---|---|
//! | TCDM | `0x0010_0000` | 256 KiB | 32 banks × 8 KiB, word-interleaved |
//! | Cluster peripherals | `0x0020_0000` | 4 KiB | barrier, wake flags |
//! | Main memory | `0x8000_0000` | configurable | behind the cluster crossbar |

/// TCDM base address.
pub const TCDM_BASE: u32 = 0x0010_0000;
/// TCDM size in bytes (256 KiB, as in the paper).
pub const TCDM_SIZE: u32 = 0x0004_0000;
/// Number of TCDM banks (32, as in the paper).
pub const TCDM_BANKS: usize = 32;

/// Cluster peripheral region base.
pub const PERIPH_BASE: u32 = 0x0020_0000;
/// Cluster peripheral region size.
pub const PERIPH_SIZE: u32 = 0x0000_1000;
/// Hardware barrier register (reads stall until all cores arrive).
pub const PERIPH_BARRIER: u32 = PERIPH_BASE;

/// Main memory base address.
pub const MAIN_BASE: u32 = 0x8000_0000;
/// Default main memory size (64 MiB — ample for the paper's largest
/// matrices at 680 k nonzeros).
pub const MAIN_SIZE: u32 = 0x0400_0000;

/// Classification of an address by region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Region {
    Tcdm,
    Periph,
    Main,
    /// Outside every mapped region.
    Unmapped,
}

/// Classifies `addr` against the fixed map.
#[must_use]
pub fn region_of(addr: u32) -> Region {
    if (TCDM_BASE..TCDM_BASE + TCDM_SIZE).contains(&addr) {
        Region::Tcdm
    } else if (PERIPH_BASE..PERIPH_BASE + PERIPH_SIZE).contains(&addr) {
        Region::Periph
    } else if addr >= MAIN_BASE {
        Region::Main
    } else {
        Region::Unmapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        assert_eq!(region_of(TCDM_BASE), Region::Tcdm);
        assert_eq!(region_of(TCDM_BASE + TCDM_SIZE - 1), Region::Tcdm);
        assert_eq!(region_of(TCDM_BASE + TCDM_SIZE), Region::Unmapped);
        assert_eq!(region_of(PERIPH_BARRIER), Region::Periph);
        assert_eq!(region_of(MAIN_BASE), Region::Main);
        assert_eq!(region_of(0xFFFF_FFFF), Region::Main);
        assert_eq!(region_of(0), Region::Unmapped);
    }

    #[test]
    fn tcdm_matches_paper_configuration() {
        // 256 KiB over 32 banks = 8 KiB per bank.
        assert_eq!(TCDM_SIZE as usize / TCDM_BANKS, 8 * 1024);
    }
}
