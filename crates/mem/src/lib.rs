//! # issr-mem
//!
//! Memory-system substrates for the ISSR reproduction: 64-bit
//! request/response ports, the banked tightly-coupled data memory (TCDM)
//! with round-robin bank arbitration, ideal memories for the paper's
//! single-core setup, wide main memory, the 512-bit cluster DMA engine,
//! and instruction-cache timing models.
//!
//! All components are cycle-level and deterministic: the owning
//! simulator ticks them in a fixed order each cycle, and responses become
//! visible to masters no earlier than the following cycle, as in the RTL
//! the paper evaluates.
//!
//! # Examples
//! ```
//! use issr_mem::port::{MemPort, MemReq};
//! use issr_mem::tcdm::Tcdm;
//!
//! let mut tcdm = Tcdm::ideal(0x0010_0000, 0x4_0000);
//! tcdm.array_mut().store_f64(0x0010_0000, 3.5);
//! let mut port = MemPort::new();
//! port.send(MemReq::read(0x0010_0000));
//! tcdm.tick(0, &mut [&mut port], &[]);
//! let rsp = port.take_rsp(1).expect("single-cycle TCDM");
//! assert_eq!(f64::from_bits(rsp.data), 3.5);
//! ```

#![forbid(unsafe_code)]

pub mod array;
pub mod dma;
pub mod icache;
pub mod main_mem;
pub mod map;
pub mod port;
pub mod tcdm;

pub use array::MemArray;
pub use dma::{Dma, DmaStats, DMA_WORDS_PER_CYCLE};
pub use icache::{ICacheParams, L0Buffer, L1ICache};
pub use main_mem::MainMemory;
pub use port::{MemOp, MemPort, MemReq, MemRsp};
pub use tcdm::{Tcdm, TcdmStats};
