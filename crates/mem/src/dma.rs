//! The cluster DMA engine.
//!
//! A 512-bit engine that moves blocks between main memory and the TCDM
//! (§II-C, [7]). It supports 1D transfers and 2D (strided) transfers used
//! to tile matrices into the TCDM. Transfers are queued and processed in
//! order; the engine moves up to eight 64-bit words per cycle and claims
//! the TCDM banks it touches (it has priority over core ports, matching
//! the Snitch cluster's interconnect).
//!
//! Programming model (Xdma instructions, see `issr-isa`):
//! `dmsrc`/`dmdst` latch addresses, `dmstr` latches 2D strides, `dmrep`
//! the repetition count, and `dmcpyi` enqueues the transfer and returns
//! its id. `dmstati 0` reads the number of completed transfers.

use crate::array::MemArray;
use crate::main_mem::MainMemory;
use issr_trace::{StallCause, StatMerge};

/// Words moved per cycle (512-bit datapath).
pub const DMA_WORDS_PER_CYCLE: u32 = 8;

/// Direction of a transfer, derived from its addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Direction {
    /// Main memory → TCDM.
    In,
    /// TCDM → main memory.
    Out,
    /// TCDM → TCDM.
    Local,
}

/// One queued transfer descriptor.
#[derive(Clone, Copy, Debug)]
struct Transfer {
    id: u32,
    src: u32,
    dst: u32,
    /// Bytes per row (8-byte multiple).
    size: u32,
    src_stride: u32,
    dst_stride: u32,
    /// Number of rows (1 for 1D transfers).
    reps: u32,
}

/// Progress of the active transfer.
#[derive(Clone, Copy, Debug)]
struct Progress {
    row: u32,
    word: u32,
    /// Remaining main-memory access-latency cycles before the first
    /// beat moves (charged once per transfer touching main memory).
    startup_left: u64,
}

/// Statistics for energy modelling and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct DmaStats {
    /// Words copied in (main → TCDM).
    pub words_in: u64,
    /// Words copied out (TCDM → main).
    pub words_out: u64,
    /// Cycles with at least one word moved.
    pub busy_cycles: u64,
    /// Transfers completed.
    pub transfers: u64,
    /// Cycles an active transfer moved nothing because the main-memory
    /// bandwidth budget was exhausted (multi-cluster contention).
    pub stall_cycles: u64,
}

impl StatMerge for DmaStats {
    fn merge_from(&mut self, other: &Self) {
        self.words_in += other.words_in;
        self.words_out += other.words_out;
        self.busy_cycles += other.busy_cycles;
        self.transfers += other.transfers;
        self.stall_cycles += other.stall_cycles;
    }
}

/// The DMA engine front end + mover.
#[derive(Clone, Debug)]
pub struct Dma {
    // Latched configuration (next transfer).
    src: u32,
    dst: u32,
    src_stride: u32,
    dst_stride: u32,
    reps: u32,
    // Engine state.
    queue: std::collections::VecDeque<Transfer>,
    active: Option<(Transfer, Progress)>,
    next_id: u32,
    completed: u32,
    tcdm_base: u32,
    tcdm_size: u32,
    stats: DmaStats,
    /// What the engine spent its most recent [`Dma::tick`] on — the
    /// cluster harness records it into the attribution breakdown.
    last_cause: StallCause,
}

impl Dma {
    /// Creates an idle engine; `tcdm_base`/`tcdm_size` identify which
    /// addresses live in the TCDM (everything else is main memory).
    #[must_use]
    pub fn new(tcdm_base: u32, tcdm_size: u32) -> Self {
        Self {
            src: 0,
            dst: 0,
            src_stride: 0,
            dst_stride: 0,
            reps: 1,
            queue: std::collections::VecDeque::new(),
            active: None,
            next_id: 0,
            completed: 0,
            tcdm_base,
            tcdm_size,
            stats: DmaStats::default(),
            last_cause: StallCause::Idle,
        }
    }

    /// Latches the source address (`dmsrc`).
    pub fn set_src(&mut self, addr: u32) {
        self.src = addr;
    }

    /// Latches the destination address (`dmdst`).
    pub fn set_dst(&mut self, addr: u32) {
        self.dst = addr;
    }

    /// Latches 2D strides in bytes (`dmstr`).
    pub fn set_strides(&mut self, src_stride: u32, dst_stride: u32) {
        self.src_stride = src_stride;
        self.dst_stride = dst_stride;
    }

    /// Latches the 2D repetition count (`dmrep`).
    pub fn set_reps(&mut self, reps: u32) {
        self.reps = reps.max(1);
    }

    /// Enqueues a transfer of `size` bytes per row (`dmcpyi`); `twod`
    /// selects 2D mode (otherwise a single row is moved). Returns the
    /// transfer id.
    ///
    /// # Panics
    /// Panics if addresses or size are not 8-byte aligned (the engine
    /// moves whole words; the layout planners guarantee alignment).
    pub fn start(&mut self, size: u32, twod: bool) -> u32 {
        assert_eq!(size % 8, 0, "DMA size must be word-aligned"); // gate-allow: host-side transfer-descriptor precondition
        assert_eq!(self.src % 8, 0, "DMA source must be word-aligned"); // gate-allow: host-side transfer-descriptor precondition
        assert_eq!(self.dst % 8, 0, "DMA destination must be word-aligned"); // gate-allow: host-side transfer-descriptor precondition
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Transfer {
            id,
            src: self.src,
            dst: self.dst,
            size,
            src_stride: if twod { self.src_stride } else { 0 },
            dst_stride: if twod { self.dst_stride } else { 0 },
            reps: if twod { self.reps } else { 1 },
        });
        id
    }

    /// Number of completed transfers (`dmstati 0`). A transfer with id `t`
    /// is done once `completed() > t`.
    #[must_use]
    pub fn completed(&self) -> u32 {
        self.completed
    }

    /// Words not yet moved: the active transfer's remaining words plus
    /// everything queued behind it (Perfetto counter-track probe).
    #[must_use]
    pub fn outstanding_words(&self) -> u64 {
        let queued: u64 =
            self.queue.iter().map(|t| u64::from(t.size / 8) * u64::from(t.reps)).sum();
        let active = self.active.as_ref().map_or(0, |(t, p)| {
            let per_row = u64::from(t.size / 8);
            let total = per_row * u64::from(t.reps);
            let done = u64::from(p.row) * per_row + u64::from(p.word);
            total.saturating_sub(done)
        });
        queued + active
    }

    /// Whether a transfer is active or queued (`dmstati 1`).
    #[must_use]
    pub fn busy(&self) -> bool {
        self.active.is_some() || !self.queue.is_empty()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Classification of the engine's most recent tick: moving beats
    /// ([`StallCause::Active`]), denied shared bandwidth
    /// ([`StallCause::BwDenied`]), yielding contested banks to core
    /// ports ([`StallCause::PortConflict`]), paying a transfer's
    /// main-memory startup latency ([`StallCause::DrainBusy`]), or
    /// idle.
    #[must_use]
    pub fn last_cause(&self) -> StallCause {
        self.last_cause
    }

    fn direction(&self, t: &Transfer) -> Direction {
        let src_local = self.in_tcdm(t.src);
        let dst_local = self.in_tcdm(t.dst);
        match (src_local, dst_local) {
            (false, true) => Direction::In,
            (true, false) => Direction::Out,
            _ => Direction::Local,
        }
    }

    fn in_tcdm(&self, addr: u32) -> bool {
        addr >= self.tcdm_base && addr - self.tcdm_base < self.tcdm_size
    }

    /// Advances the engine by one cycle, copying up to
    /// [`DMA_WORDS_PER_CYCLE`] words. Returns the TCDM banks claimed this
    /// cycle in `claimed` (caller passes a `false`-initialized slice of
    /// bank-count length and the word-interleaving is 8 bytes).
    ///
    /// `contested` marks banks with core requests pending this cycle; on
    /// alternating *yield* cycles the engine stops at the first word
    /// whose bank a core wants, modelling the cluster interconnect's
    /// fair arbitration between the wide DMA port and the core ports
    /// (the DMA does not starve cores, and vice versa).
    pub fn tick(
        &mut self,
        tcdm: &mut MemArray,
        main: &mut MainMemory,
        claimed: &mut [bool],
        contested: &[bool],
        yield_to_cores: bool,
    ) {
        if self.active.is_none() {
            if let Some(t) = self.queue.pop_front() {
                let touches_main = t.size > 0 && self.direction(&t) != Direction::Local;
                let startup_left = if touches_main { main.dma_latency() } else { 0 };
                self.active = Some((t, Progress { row: 0, word: 0, startup_left }));
            }
        }
        let Some((t, mut p)) = self.active else {
            self.last_cause = StallCause::Idle;
            return;
        };
        if p.startup_left > 0 {
            p.startup_left -= 1;
            self.active = Some((t, p));
            self.last_cause = StallCause::DrainBusy;
            return;
        }
        let dir = self.direction(&t);
        let words_per_row = t.size / 8;
        if words_per_row == 0 {
            // A zero-byte row moves nothing; the transfer retires at once.
            p.row = t.reps;
        }
        let n_banks = claimed.len().max(1);
        let mut moved = 0;
        let mut denied = false;
        let mut yielded = false;
        while moved < DMA_WORDS_PER_CYCLE && p.row < t.reps {
            let src = t.src + p.row * t.src_stride + p.word * 8;
            let dst = t.dst + p.row * t.dst_stride + p.word * 8;
            if yield_to_cores {
                let local = match dir {
                    Direction::In => dst,
                    Direction::Out | Direction::Local => src,
                };
                let bank = ((local / 8) as usize) % n_banks;
                if contested.get(bank).copied().unwrap_or(false) {
                    yielded = true;
                    break;
                }
            }
            let data = match dir {
                Direction::In => match main.try_dma_read_word(src) {
                    Some(data) => data,
                    None => {
                        denied = true;
                        break;
                    }
                },
                Direction::Out | Direction::Local => tcdm.read_word(src),
            };
            match dir {
                Direction::In | Direction::Local => {
                    tcdm.write_word(dst, data, 0xFF);
                    claimed[((dst / 8) as usize) % n_banks] = true;
                }
                Direction::Out => {
                    if !main.try_dma_write_word(dst, data) {
                        denied = true;
                        break;
                    }
                }
            }
            if dir == Direction::Out || dir == Direction::Local {
                claimed[((src / 8) as usize) % n_banks] = true;
            }
            match dir {
                Direction::In => self.stats.words_in += 1,
                Direction::Out => self.stats.words_out += 1,
                Direction::Local => {
                    self.stats.words_in += 1;
                    self.stats.words_out += 1;
                }
            }
            moved += 1;
            p.word += 1;
            if p.word == words_per_row {
                p.word = 0;
                p.row += 1;
            }
        }
        if moved > 0 {
            self.stats.busy_cycles += 1;
        } else if denied {
            self.stats.stall_cycles += 1;
        }
        self.last_cause = if moved > 0 {
            StallCause::Active
        } else if denied {
            StallCause::BwDenied
        } else if yielded {
            StallCause::PortConflict
        } else {
            StallCause::Idle
        };
        if p.row >= t.reps {
            self.completed = self.completed.max(t.id + 1);
            self.stats.transfers += 1;
            self.active = None;
        } else {
            self.active = Some((t, p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MemArray, MainMemory, Dma) {
        let tcdm = MemArray::new(0x0010_0000, 0x4_0000);
        let main = MainMemory::new(0x8000_0000, 1 << 20);
        let dma = Dma::new(0x0010_0000, 0x4_0000);
        (tcdm, main, dma)
    }

    /// Ticks `dma` to completion with a fresh bandwidth budget per
    /// cycle (what the cluster harness does), returning the cycles
    /// taken.
    fn drain(dma: &mut Dma, tcdm: &mut MemArray, main: &mut MainMemory) -> u64 {
        let mut cycles = 0;
        let mut claimed = vec![false; 32];
        while dma.busy() {
            main.begin_dma_cycle();
            claimed.fill(false);
            dma.tick(tcdm, main, &mut claimed, &[], false);
            cycles += 1;
            assert!(cycles < 10_000, "transfer did not finish");
        }
        cycles
    }

    #[test]
    fn one_dimensional_transfer_in() {
        let (mut tcdm, mut main, mut dma) = setup();
        for i in 0..32u32 {
            main.array_mut().store_u64(0x8000_0000 + i * 8, u64::from(i) + 1);
        }
        dma.set_src(0x8000_0000);
        dma.set_dst(0x0010_0000);
        let id = dma.start(32 * 8, false);
        assert_eq!(id, 0);
        let cycles = drain(&mut dma, &mut tcdm, &mut main);
        // 32 words at 8 words/cycle = 4 cycles.
        assert_eq!(cycles, 4);
        for i in 0..32u32 {
            assert_eq!(tcdm.load_u64(0x0010_0000 + i * 8), u64::from(i) + 1);
        }
        assert_eq!(dma.completed(), 1);
    }

    #[test]
    fn two_dimensional_transfer_tiles() {
        let (mut tcdm, mut main, mut dma) = setup();
        // A 4x4 f64 matrix with row stride 64 bytes in main memory;
        // gather a 4x2-word tile into contiguous TCDM rows.
        for row in 0..4u32 {
            for col in 0..8u32 {
                main.array_mut()
                    .store_u64(0x8000_0000 + row * 64 + col * 8, u64::from(row * 100 + col));
            }
        }
        dma.set_src(0x8000_0000);
        dma.set_dst(0x0010_0000);
        dma.set_strides(64, 16);
        dma.set_reps(4);
        dma.start(16, true);
        drain(&mut dma, &mut tcdm, &mut main);
        for row in 0..4u32 {
            assert_eq!(tcdm.load_u64(0x0010_0000 + row * 16), u64::from(row * 100));
            assert_eq!(tcdm.load_u64(0x0010_0000 + row * 16 + 8), u64::from(row * 100 + 1));
        }
    }

    #[test]
    fn transfer_out_writes_main_memory() {
        let (mut tcdm, mut main, mut dma) = setup();
        tcdm.store_u64(0x0010_0100, 0x77);
        dma.set_src(0x0010_0100);
        dma.set_dst(0x8000_0040);
        dma.start(8, false);
        let mut claimed = vec![false; 32];
        dma.tick(&mut tcdm, &mut main, &mut claimed, &[], false);
        assert_eq!(main.array().load_u64(0x8000_0040), 0x77);
        assert_eq!(dma.stats().words_out, 1);
        // The source bank was claimed.
        assert!(claimed[((0x0010_0100u32 / 8) as usize) % 32]);
    }

    #[test]
    fn transfers_queue_in_order() {
        let (mut tcdm, mut main, mut dma) = setup();
        main.array_mut().store_u64(0x8000_0000, 1);
        main.array_mut().store_u64(0x8000_1000, 2);
        dma.set_src(0x8000_0000);
        dma.set_dst(0x0010_0000);
        let id0 = dma.start(8, false);
        dma.set_src(0x8000_1000);
        dma.set_dst(0x0010_0008);
        let id1 = dma.start(8, false);
        assert_eq!((id0, id1), (0, 1));
        let mut claimed = vec![false; 32];
        // Two 1-word transfers need two cycles (one each).
        dma.tick(&mut tcdm, &mut main, &mut claimed, &[], false);
        assert_eq!(dma.completed(), 1);
        claimed.fill(false);
        dma.tick(&mut tcdm, &mut main, &mut claimed, &[], false);
        assert_eq!(dma.completed(), 2);
        assert_eq!(tcdm.load_u64(0x0010_0000), 1);
        assert_eq!(tcdm.load_u64(0x0010_0008), 2);
        assert!(!dma.busy());
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_size_panics() {
        let (_, _, mut dma) = setup();
        dma.start(12, false);
    }

    /// A zero-byte transfer retires without moving a word (and without
    /// hanging the engine on a row that can never advance).
    #[test]
    fn zero_size_transfer_completes_immediately() {
        let (mut tcdm, mut main, mut dma) = setup();
        dma.set_src(0x8000_0000);
        dma.set_dst(0x0010_0000);
        dma.start(0, false);
        let cycles = drain(&mut dma, &mut tcdm, &mut main);
        assert_eq!(cycles, 1);
        assert_eq!(dma.completed(), 1);
        let s = dma.stats();
        assert_eq!((s.words_in, s.words_out), (0, 0));
    }

    /// `dmrep 0` clamps to one repetition: the 2D transfer degenerates
    /// to a single row instead of moving nothing (or wrapping).
    #[test]
    fn zero_reps_clamp_to_one_row() {
        let (mut tcdm, mut main, mut dma) = setup();
        main.array_mut().store_u64(0x8000_0000, 0xBEEF);
        dma.set_src(0x8000_0000);
        dma.set_dst(0x0010_0000);
        dma.set_strides(64, 8);
        dma.set_reps(0);
        dma.start(8, true);
        drain(&mut dma, &mut tcdm, &mut main);
        assert_eq!(tcdm.load_u64(0x0010_0000), 0xBEEF);
        assert_eq!(dma.stats().words_in, 1);
    }

    /// Single-word rows: the strided gather advances rows after every
    /// word and lands each at its strided destination.
    #[test]
    fn two_dimensional_single_word_rows() {
        let (mut tcdm, mut main, mut dma) = setup();
        for row in 0..5u32 {
            main.array_mut().store_u64(0x8000_0000 + row * 40, u64::from(row) + 7);
        }
        dma.set_src(0x8000_0000);
        dma.set_dst(0x0010_0000);
        dma.set_strides(40, 8);
        dma.set_reps(5);
        dma.start(8, true);
        drain(&mut dma, &mut tcdm, &mut main);
        for row in 0..5u32 {
            assert_eq!(tcdm.load_u64(0x0010_0000 + row * 8), u64::from(row) + 7);
        }
        assert_eq!(dma.stats().words_in, 5);
    }

    /// TCDM → TCDM local copies never touch main memory (no wide beats,
    /// no budget draw) and count both word directions.
    #[test]
    fn local_copy_stays_inside_the_tcdm() {
        let (mut tcdm, mut main, mut dma) = setup();
        for i in 0..16u32 {
            tcdm.store_u64(0x0010_0000 + i * 8, u64::from(i) * 3);
        }
        dma.set_src(0x0010_0000);
        dma.set_dst(0x0012_0000);
        dma.start(16 * 8, false);
        drain(&mut dma, &mut tcdm, &mut main);
        for i in 0..16u32 {
            assert_eq!(tcdm.load_u64(0x0012_0000 + i * 8), u64::from(i) * 3);
        }
        assert_eq!(main.wide_beats(), 0, "local copies must bypass main memory");
        let s = dma.stats();
        assert_eq!((s.words_in, s.words_out), (16, 16));
    }

    /// A transfer whose last word lands exactly at the TCDM top stays
    /// classified as TCDM-bound for its entire extent.
    #[test]
    fn transfer_ending_exactly_at_tcdm_top() {
        let (mut tcdm, mut main, mut dma) = setup();
        let top = 0x0010_0000 + 0x4_0000;
        for i in 0..4u32 {
            main.array_mut().store_u64(0x8000_0100 + i * 8, u64::from(i) + 40);
        }
        dma.set_src(0x8000_0100);
        dma.set_dst(top - 32);
        dma.start(32, false);
        drain(&mut dma, &mut tcdm, &mut main);
        for i in 0..4u32 {
            assert_eq!(tcdm.load_u64(top - 32 + i * 8), u64::from(i) + 40);
        }
        assert_eq!(dma.stats().words_in, 4, "all four words are an inbound TCDM transfer");
    }

    /// The configured per-transfer access latency delays the first beat
    /// of main-memory transfers; local copies are exempt.
    #[test]
    fn dma_latency_charges_once_per_main_transfer() {
        let (mut tcdm, _, mut dma) = setup();
        let mut main = MainMemory::new(0x8000_0000, 1 << 20).with_dma_latency(3);
        dma.set_src(0x8000_0000);
        dma.set_dst(0x0010_0000);
        dma.start(8 * 8, false);
        // 3 startup cycles + 1 move cycle.
        assert_eq!(drain(&mut dma, &mut tcdm, &mut main), 4);
        tcdm.store_u64(0x0010_0000, 5);
        dma.set_src(0x0010_0000);
        dma.set_dst(0x0011_0000);
        dma.start(8, false);
        assert_eq!(drain(&mut dma, &mut tcdm, &mut main), 1, "local copies skip the latency");
    }

    /// Two engines sharing one memory each see roughly half the
    /// throughput: the bandwidth budget arbitrates, denials are counted.
    #[test]
    fn competing_streams_halve_throughput() {
        let words = 64u32;
        let solo = {
            let (mut tcdm, mut main, mut dma) = setup();
            dma.set_src(0x8000_0000);
            dma.set_dst(0x0010_0000);
            dma.start(words * 8, false);
            drain(&mut dma, &mut tcdm, &mut main)
        };
        let (mut tcdm, mut main, _) = setup();
        let mut tcdm_b = MemArray::new(0x0010_0000, 0x4_0000);
        let mut a = Dma::new(0x0010_0000, 0x4_0000);
        let mut b = Dma::new(0x0010_0000, 0x4_0000);
        a.set_src(0x8000_0000);
        a.set_dst(0x0010_0000);
        a.start(words * 8, false);
        b.set_src(0x8008_0000);
        b.set_dst(0x0010_0000);
        b.start(words * 8, false);
        let mut cycles = 0u64;
        let mut claimed = vec![false; 32];
        while a.busy() || b.busy() {
            main.begin_dma_cycle();
            claimed.fill(false);
            // Rotate the grant order (the system's round-robin).
            if cycles % 2 == 0 {
                a.tick(&mut tcdm, &mut main, &mut claimed, &[], false);
                b.tick(&mut tcdm_b, &mut main, &mut claimed, &[], false);
            } else {
                b.tick(&mut tcdm_b, &mut main, &mut claimed, &[], false);
                a.tick(&mut tcdm, &mut main, &mut claimed, &[], false);
            }
            cycles += 1;
            assert!(cycles < 10_000, "contended transfers did not finish");
        }
        assert!(
            cycles >= 2 * solo - 1,
            "two streams over one port must each see ~half throughput \
             (solo {solo}, contended {cycles})"
        );
        assert!(main.stats.dma_denied > 0, "contention must be counted");
        assert!(
            a.stats().stall_cycles + b.stats().stall_cycles > 0,
            "denied engines must record stalls"
        );
    }
}
