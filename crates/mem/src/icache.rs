//! Instruction cache timing models.
//!
//! Each Snitch core complex has a small L0 line buffer feeding its fetch
//! stage; four cores in a *hive* share an L1 instruction cache (§II-C).
//! Kernels run from loops, so L0 hits dominate; misses appear on first
//! entry to a loop body and as occasional stalls in the cluster run, as
//! the paper notes in §IV-B.
//!
//! Only timing is modelled — instruction *bits* come from the program
//! image — so the caches track line tags, not contents.

/// Timing parameters of the instruction path.
#[derive(Clone, Copy, Debug)]
pub struct ICacheParams {
    /// L0 lines per core (fully associative, FIFO replacement).
    pub l0_lines: usize,
    /// Line size in bytes (instructions are 4 bytes).
    pub line_bytes: u32,
    /// L1 lines (direct-mapped).
    pub l1_lines: usize,
    /// Extra cycles for an L0 miss that hits L1.
    pub l1_hit_penalty: u64,
    /// Extra cycles for an L1 miss (refill from main memory).
    pub l1_miss_penalty: u64,
}

impl Default for ICacheParams {
    fn default() -> Self {
        Self {
            l0_lines: 4,
            line_bytes: 32,
            l1_lines: 256, // 8 KiB per hive
            l1_hit_penalty: 2,
            l1_miss_penalty: 20,
        }
    }
}

/// Per-core L0 line buffer.
#[derive(Clone, Debug)]
pub struct L0Buffer {
    params: ICacheParams,
    tags: Vec<Option<u32>>,
    fifo: usize,
    /// Fetches that hit.
    pub hits: u64,
    /// Fetches that missed to L1.
    pub misses: u64,
}

impl L0Buffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new(params: ICacheParams) -> Self {
        Self { params, tags: vec![None; params.l0_lines], fifo: 0, hits: 0, misses: 0 }
    }

    fn line_of(&self, pc: u32) -> u32 {
        pc / self.params.line_bytes
    }

    /// Looks up `pc`; on a miss the line is installed (the refill timing
    /// is accounted by the caller via the shared L1). Returns `true` on
    /// hit.
    pub fn fetch(&mut self, pc: u32) -> bool {
        let line = self.line_of(pc);
        if self.tags.contains(&Some(line)) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        self.tags[self.fifo] = Some(line);
        self.fifo = (self.fifo + 1) % self.tags.len();
        false
    }
}

/// Shared (per-hive) L1 instruction cache, direct mapped.
#[derive(Clone, Debug)]
pub struct L1ICache {
    params: ICacheParams,
    tags: Vec<Option<u32>>,
    /// L0-miss lookups that hit.
    pub hits: u64,
    /// Lookups that went to main memory.
    pub misses: u64,
}

impl L1ICache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(params: ICacheParams) -> Self {
        Self { params, tags: vec![None; params.l1_lines], hits: 0, misses: 0 }
    }

    /// Looks up the line containing `pc`, installing it on a miss.
    /// Returns the refill penalty in cycles.
    pub fn refill(&mut self, pc: u32) -> u64 {
        let line = pc / self.params.line_bytes;
        let set = (line as usize) % self.tags.len();
        if self.tags[set] == Some(line) {
            self.hits += 1;
            self.params.l1_hit_penalty
        } else {
            self.misses += 1;
            self.tags[set] = Some(line);
            self.params.l1_miss_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l0_hits_within_a_loop() {
        let mut l0 = L0Buffer::new(ICacheParams::default());
        // An 8-instruction loop fits one 32-byte line.
        assert!(!l0.fetch(0x40)); // cold miss
        for _ in 0..100 {
            for pc in (0x40..0x60).step_by(4) {
                assert!(l0.fetch(pc));
            }
        }
        assert_eq!(l0.misses, 1);
    }

    #[test]
    fn l0_fifo_eviction() {
        let params = ICacheParams { l0_lines: 2, ..ICacheParams::default() };
        let mut l0 = L0Buffer::new(params);
        assert!(!l0.fetch(0x00));
        assert!(!l0.fetch(0x20));
        assert!(l0.fetch(0x04));
        assert!(!l0.fetch(0x40)); // evicts line 0
        assert!(!l0.fetch(0x00)); // line 0 gone again
    }

    #[test]
    fn l1_miss_then_hit_penalties() {
        let params = ICacheParams::default();
        let mut l1 = L1ICache::new(params);
        assert_eq!(l1.refill(0x100), params.l1_miss_penalty);
        assert_eq!(l1.refill(0x104), params.l1_hit_penalty);
        assert_eq!(l1.misses, 1);
        assert_eq!(l1.hits, 1);
    }

    #[test]
    fn l1_direct_mapped_conflicts() {
        let params = ICacheParams { l1_lines: 2, ..ICacheParams::default() };
        let mut l1 = L1ICache::new(params);
        let a = 0x000; // line 0, set 0
        let b = 0x080; // line 4, set 0 (with 2 sets: 4 % 2 == 0)
        assert_eq!(l1.refill(a), params.l1_miss_penalty);
        assert_eq!(l1.refill(b), params.l1_miss_penalty);
        assert_eq!(l1.refill(a), params.l1_miss_penalty); // evicted by b
    }
}
