//! Request/response ports between masters and memories.
//!
//! A [`MemPort`] models one 64-bit master port: the master may place one
//! request per cycle (if the request wire is free), the memory grants it
//! during its own tick (possibly later, under bank contention) and
//! delivers the response with at least one cycle of latency. Responses
//! arrive in request order per port, as in the Snitch TCDM interconnect.

use std::collections::VecDeque;

/// The operation carried by a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemOp {
    /// 64-bit read of the aligned word containing the address.
    Read,
    /// Strobed write (bit *i* of `strb` enables byte lane *i*).
    Write { data: u64, strb: u8 },
}

/// One memory request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemReq {
    /// Byte address; data is always the aligned 64-bit word around it.
    pub addr: u32,
    /// Read or strobed write.
    pub op: MemOp,
}

impl MemReq {
    /// Convenience constructor for a read.
    #[must_use]
    pub fn read(addr: u32) -> Self {
        Self { addr, op: MemOp::Read }
    }

    /// Convenience constructor for a full-word write.
    #[must_use]
    pub fn write(addr: u32, data: u64) -> Self {
        Self { addr, op: MemOp::Write { data, strb: 0xFF } }
    }

    /// Convenience constructor for a strobed write.
    #[must_use]
    pub fn write_strb(addr: u32, data: u64, strb: u8) -> Self {
        Self { addr, op: MemOp::Write { data, strb } }
    }

    /// Whether this is a read.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self.op, MemOp::Read)
    }
}

/// One read response (writes are acknowledged implicitly).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRsp {
    /// The full aligned 64-bit word.
    pub data: u64,
}

/// A master-side memory port with single-request occupancy and an
/// in-order response queue.
#[derive(Clone, Debug, Default)]
pub struct MemPort {
    pending: Option<MemReq>,
    rsps: VecDeque<(u64, MemRsp)>,
    /// Total requests accepted by the memory.
    pub granted_reads: u64,
    /// Total writes accepted by the memory.
    pub granted_writes: u64,
    /// Cycles a pending request waited before being granted.
    pub wait_cycles: u64,
}

impl MemPort {
    /// Creates an idle port.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the master can place a new request this cycle.
    #[must_use]
    pub fn can_send(&self) -> bool {
        self.pending.is_none()
    }

    /// Places a request on the port.
    ///
    /// # Panics
    /// Panics if the port is already occupied (check [`Self::can_send`]).
    pub fn send(&mut self, req: MemReq) {
        assert!(self.pending.is_none(), "port already has a pending request"); // gate-allow: protocol invariant: one request in flight per port
        self.pending = Some(req);
    }

    /// The request currently waiting for a grant, if any (memory side).
    #[must_use]
    pub fn pending(&self) -> Option<&MemReq> {
        self.pending.as_ref()
    }

    /// Memory side: consumes the pending request after granting it.
    pub fn take_pending(&mut self) -> Option<MemReq> {
        let req = self.pending.take();
        if let Some(r) = &req {
            if r.is_read() {
                self.granted_reads += 1;
            } else {
                self.granted_writes += 1;
            }
        }
        req
    }

    /// Memory side: records one cycle of arbitration back-pressure.
    pub fn note_wait(&mut self) {
        self.wait_cycles += 1;
    }

    /// Memory side: enqueues a response that becomes visible to the
    /// master at `ready_cycle`.
    pub fn push_rsp(&mut self, ready_cycle: u64, rsp: MemRsp) {
        debug_assert!(
            self.rsps.back().is_none_or(|&(t, _)| t <= ready_cycle),
            "responses must stay in order"
        );
        self.rsps.push_back((ready_cycle, rsp));
    }

    /// Master side: pops the next response if it is ready at `now`.
    pub fn take_rsp(&mut self, now: u64) -> Option<MemRsp> {
        match self.rsps.front() {
            Some(&(ready, rsp)) if ready <= now => {
                self.rsps.pop_front();
                Some(rsp)
            }
            _ => None,
        }
    }

    /// Number of responses queued (in flight).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.rsps.len() + usize::from(self.pending.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_occupancy() {
        let mut p = MemPort::new();
        assert!(p.can_send());
        p.send(MemReq::read(0x10));
        assert!(!p.can_send());
        assert_eq!(p.take_pending(), Some(MemReq::read(0x10)));
        assert!(p.can_send());
        assert_eq!(p.granted_reads, 1);
    }

    #[test]
    fn responses_respect_ready_cycle() {
        let mut p = MemPort::new();
        p.push_rsp(5, MemRsp { data: 1 });
        p.push_rsp(6, MemRsp { data: 2 });
        assert_eq!(p.take_rsp(4), None);
        assert_eq!(p.take_rsp(5), Some(MemRsp { data: 1 }));
        assert_eq!(p.take_rsp(5), None);
        assert_eq!(p.take_rsp(7), Some(MemRsp { data: 2 }));
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn double_send_panics() {
        let mut p = MemPort::new();
        p.send(MemReq::read(0));
        p.send(MemReq::read(8));
    }

    #[test]
    fn write_helpers() {
        let w = MemReq::write_strb(0x8, 0xFF00, 0x02);
        assert!(!w.is_read());
        match w.op {
            MemOp::Write { data, strb } => {
                assert_eq!(data, 0xFF00);
                assert_eq!(strb, 0x02);
            }
            MemOp::Read => panic!("expected write"),
        }
    }
}
