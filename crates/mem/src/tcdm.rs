//! The cluster-local tightly-coupled data memory (TCDM).
//!
//! The paper's cluster has 32 banks of 8 KiB (256 KiB total),
//! word-interleaved, with single-cycle access and one grant per bank per
//! cycle; contending masters are arbitrated round-robin. Indirection's
//! random access patterns make bank conflicts the dominant cluster-level
//! loss (peak FPU utilization 0.8 → 0.71 in the paper, §IV-B).
//!
//! The same type also models the *ideal two-port data memory* used for
//! the paper's single-core experiments (§IV-A) by constructing it with
//! [`Tcdm::ideal`], which serves every port independently each cycle.

use crate::array::MemArray;
use crate::port::{MemOp, MemPort, MemRsp};

/// Statistics accumulated by the TCDM.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcdmStats {
    /// Requests granted (reads + writes).
    pub grants: u64,
    /// Requests deferred because their bank was taken this cycle.
    pub conflicts: u64,
    /// Requests deferred because the DMA engine claimed the bank.
    pub dma_conflicts: u64,
}

impl issr_trace::StatMerge for TcdmStats {
    fn merge_from(&mut self, other: &Self) {
        self.grants += other.grants;
        self.conflicts += other.conflicts;
        self.dma_conflicts += other.dma_conflicts;
    }
}

/// Banked, word-interleaved scratchpad memory.
#[derive(Clone, Debug)]
pub struct Tcdm {
    array: MemArray,
    n_banks: usize,
    /// `None` models an ideal multi-port memory (no arbitration).
    rr_next: Option<Vec<usize>>,
    stats: TcdmStats,
}

impl Tcdm {
    /// Creates a banked TCDM with round-robin per-bank arbitration.
    ///
    /// # Panics
    /// Panics if `n_banks` is zero or not a power of two.
    #[must_use]
    pub fn banked(base: u32, size: u32, n_banks: usize) -> Self {
        assert!(n_banks.is_power_of_two() && n_banks > 0, "bank count must be a power of two"); // gate-allow: host-API construction precondition
        assert!(n_banks <= 64, "bank count must fit the arbitration mask"); // gate-allow: host-API construction precondition
        Self {
            array: MemArray::new(base, size),
            n_banks,
            rr_next: Some(vec![0; n_banks]),
            stats: TcdmStats::default(),
        }
    }

    /// Creates an ideal conflict-free memory (one implicit bank per port),
    /// as used in the paper's single-CC evaluation.
    #[must_use]
    pub fn ideal(base: u32, size: u32) -> Self {
        Self {
            array: MemArray::new(base, size),
            n_banks: 1,
            rr_next: None,
            stats: TcdmStats::default(),
        }
    }

    /// The backing storage (for workload marshalling).
    #[must_use]
    pub fn array(&self) -> &MemArray {
        &self.array
    }

    /// Mutable backing storage (for workload marshalling and the DMA).
    pub fn array_mut(&mut self) -> &mut MemArray {
        &mut self.array
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TcdmStats {
        self.stats
    }

    /// Bank index of a byte address (word-interleaved).
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> usize {
        ((addr / 8) as usize) % self.n_banks
    }

    /// Services the ports for one cycle.
    ///
    /// `now` is the current cycle; read responses become visible at
    /// `now + 1`. `dma_claimed` marks banks the DMA engine occupies this
    /// cycle (it has priority, as in the Snitch cluster); pass `&[]` when
    /// no DMA is present. Accepts both owned port slices
    /// (`&mut [MemPort]`) and collected references (`&mut [&mut
    /// MemPort]`); the port's *position in the slice* is its identity
    /// for round-robin arbitration.
    pub fn tick<P: std::borrow::BorrowMut<MemPort>>(
        &mut self,
        now: u64,
        ports: &mut [P],
        dma_claimed: &[bool],
    ) {
        match self.rr_next.take() {
            None => {
                // Ideal memory: grant every pending request.
                for port in ports.iter_mut() {
                    let port = port.borrow_mut();
                    if let Some(req) = port.take_pending() {
                        self.serve(now, req, port);
                    }
                }
            }
            Some(mut rr) => {
                let n = ports.len();
                // Bitmask arbitration: one pass over the ports builds a
                // per-bank contender mask, then each active bank grants
                // in O(1) — the first contender at or after its
                // round-robin pointer is two shifts and a trailing-zero
                // count, with no rescan of the port list. Bank counts
                // are powers of two and ≤ 64 in every configuration
                // (the paper's cluster has 32), and a cluster exposes
                // well under 64 ports, so u64 masks always suffice.
                debug_assert!(self.n_banks <= 64, "bank mask width");
                assert!(n <= 64, "port count must fit the arbitration mask"); // gate-allow: host-API construction precondition
                let mut bank_ports = [0u64; 64];
                let mut port_bank = [0u8; 64];
                let mut active: u64 = 0;
                let mut pending_mask: u64 = 0;
                for (pi, port) in ports.iter_mut().enumerate() {
                    if let Some(req) = port.borrow_mut().pending() {
                        let bank = self.bank_of(req.addr);
                        active |= 1 << bank;
                        bank_ports[bank] |= 1 << pi;
                        port_bank[pi] = bank as u8;
                        pending_mask |= 1 << pi;
                    }
                }
                if pending_mask == 0 {
                    self.rr_next = Some(rr);
                    return;
                }
                let mut served_mask: u64 = 0;
                // Each active bank (ascending) grants its first
                // contender at or after the round-robin pointer,
                // wrapping. A port carries at most one request, so the
                // contender is still pending when its bank is reached.
                while active != 0 {
                    let bank = active.trailing_zeros() as usize;
                    active &= active - 1;
                    if dma_claimed.get(bank).copied().unwrap_or(false) {
                        continue;
                    }
                    let m = bank_ports[bank];
                    // The pointer may exceed the current port count (the
                    // slice shrinks when ports route to main memory);
                    // the scan always started from `rr % n`.
                    let start = rr[bank] % n;
                    let wrapped = m >> start;
                    let pi = if wrapped != 0 {
                        start + wrapped.trailing_zeros() as usize
                    } else {
                        m.trailing_zeros() as usize
                    };
                    let port = ports[pi].borrow_mut();
                    let req = port.take_pending().expect("contender tracked pending");
                    self.serve(now, req, port);
                    rr[bank] = (pi + 1) % n;
                    served_mask |= 1 << pi;
                }
                // Count contention on ports still pending.
                let mut waiting = pending_mask & !served_mask;
                while waiting != 0 {
                    let pi = waiting.trailing_zeros() as usize;
                    waiting &= waiting - 1;
                    let bank = usize::from(port_bank[pi]);
                    if dma_claimed.get(bank).copied().unwrap_or(false) {
                        self.stats.dma_conflicts += 1;
                    } else {
                        self.stats.conflicts += 1;
                    }
                    ports[pi].borrow_mut().note_wait();
                }
                self.rr_next = Some(rr);
            }
        }
    }

    fn serve(&mut self, now: u64, req: crate::port::MemReq, port: &mut MemPort) {
        self.stats.grants += 1;
        debug_assert!(self.array.contains(req.addr), "TCDM access {:#010x} out of range", req.addr);
        match req.op {
            MemOp::Read => {
                let data = self.array.read_word(req.addr);
                port.push_rsp(now + 1, MemRsp { data });
            }
            MemOp::Write { data, strb } => {
                self.array.write_word(req.addr, data, strb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::MemReq;

    #[test]
    fn ideal_memory_serves_all_ports_every_cycle() {
        let mut tcdm = Tcdm::ideal(0, 256);
        tcdm.array_mut().store_u64(0x10, 42);
        tcdm.array_mut().store_u64(0x18, 43);
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        p0.send(MemReq::read(0x10));
        p1.send(MemReq::read(0x18));
        tcdm.tick(0, &mut [&mut p0, &mut p1], &[]);
        assert_eq!(p0.take_rsp(1).unwrap().data, 42);
        assert_eq!(p1.take_rsp(1).unwrap().data, 43);
        assert_eq!(tcdm.stats().conflicts, 0);
    }

    #[test]
    fn responses_not_visible_same_cycle() {
        let mut tcdm = Tcdm::ideal(0, 64);
        let mut p = MemPort::new();
        p.send(MemReq::read(0x0));
        tcdm.tick(7, &mut [&mut p], &[]);
        assert_eq!(p.take_rsp(7), None);
        assert!(p.take_rsp(8).is_some());
    }

    #[test]
    fn same_bank_requests_conflict() {
        // 2 banks: addresses 0x00 and 0x10 are both bank 0.
        let mut tcdm = Tcdm::banked(0, 256, 2);
        tcdm.array_mut().store_u64(0x00, 1);
        tcdm.array_mut().store_u64(0x10, 2);
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        p0.send(MemReq::read(0x00));
        p1.send(MemReq::read(0x10));
        tcdm.tick(0, &mut [&mut p0, &mut p1], &[]);
        // Exactly one granted, the other still pending.
        let served = usize::from(p0.can_send()) + usize::from(p1.can_send());
        assert_eq!(served, 1);
        assert_eq!(tcdm.stats().conflicts, 1);
        tcdm.tick(1, &mut [&mut p0, &mut p1], &[]);
        assert!(p0.can_send() && p1.can_send());
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut tcdm = Tcdm::banked(0, 256, 2);
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        p0.send(MemReq::read(0x00)); // bank 0
        p1.send(MemReq::read(0x08)); // bank 1
        tcdm.tick(0, &mut [&mut p0, &mut p1], &[]);
        assert!(p0.can_send() && p1.can_send());
        assert_eq!(tcdm.stats().conflicts, 0);
    }

    #[test]
    fn round_robin_rotates_grants() {
        let mut tcdm = Tcdm::banked(0, 256, 1);
        let mut p0 = MemPort::new();
        let mut p1 = MemPort::new();
        // Cycle 0: both contend for bank 0; pointer starts at port 0.
        p0.send(MemReq::read(0x00));
        p1.send(MemReq::read(0x08));
        tcdm.tick(0, &mut [&mut p0, &mut p1], &[]);
        assert!(p0.can_send());
        assert!(!p1.can_send());
        // Cycle 1: p1 is granted; re-arm p0 — pointer now favours p1.
        p0.send(MemReq::read(0x00));
        tcdm.tick(1, &mut [&mut p0, &mut p1], &[]);
        assert!(p1.can_send());
        assert!(!p0.can_send());
    }

    #[test]
    fn dma_claim_blocks_bank() {
        let mut tcdm = Tcdm::banked(0, 256, 2);
        let mut p = MemPort::new();
        p.send(MemReq::read(0x00)); // bank 0
        tcdm.tick(0, &mut [&mut p], &[true, false]);
        assert!(!p.can_send());
        assert_eq!(tcdm.stats().dma_conflicts, 1);
        tcdm.tick(1, &mut [&mut p], &[false, false]);
        assert!(p.can_send());
    }

    #[test]
    fn writes_update_storage() {
        let mut tcdm = Tcdm::ideal(0x100, 64);
        let mut p = MemPort::new();
        p.send(MemReq::write(0x108, 0x55));
        tcdm.tick(0, &mut [&mut p], &[]);
        assert_eq!(tcdm.array().load_u64(0x108), 0x55);
    }

    #[test]
    fn bank_mapping_is_word_interleaved() {
        let tcdm = Tcdm::banked(0, 1 << 18, 32);
        assert_eq!(tcdm.bank_of(0x00), 0);
        assert_eq!(tcdm.bank_of(0x08), 1);
        assert_eq!(tcdm.bank_of(0xF8), 31);
        assert_eq!(tcdm.bank_of(0x100), 0);
    }
}
