//! Property tests for the observability layer (`issr-trace`):
//!
//! * **Exactness** — every unit's stall-cause breakdown sums exactly to
//!   the elapsed cycles it covers (ROI cycles for core-complex units,
//!   cluster cycles for the DMA engine), across randomized SpMSpV,
//!   SpGEMM and multi-cluster system runs. Attribution is recorded at
//!   the single place each cycle counter advances, so any drift is a
//!   bookkeeping bug.
//! * **Neutrality** — enabling the interval recorder changes neither a
//!   cycle count nor an output bit: tracing only reads state the
//!   simulation latches anyway. The same holds for the post-mortem
//!   flight recorders and the live wait-graph recorders.
//! * **Wait-graph soundness** — every blocked cycle of every unit maps
//!   to exactly one outgoing edge, so per-unit edge sums equal the
//!   breakdowns' blocked counts, the live recorder equals the derived
//!   graph, and the critical path partitions exactly within the ROI.

use issr_kernels::spgemm::run_spgemm;
use issr_kernels::spmspv::run_spmspv;
use issr_kernels::system_csrmv::{
    run_system_csrmv, run_system_csrmv_recorded, run_system_csrmv_traced,
};
use issr_kernels::variant::Variant;
use issr_snitch::attr::CcAttribution;
use issr_sparse::gen;
use issr_system::system::SystemParams;
use issr_trace::waitgraph::UnitClass;
use issr_trace::{is_blocked, CycleBreakdown, StatMerge, WaitGraph};
use proptest::prelude::*;

/// The blocked cycles of one breakdown (everything that is not Active,
/// Idle or Parked — the causes that map to a wait-graph edge).
fn blocked_cycles(b: &CycleBreakdown) -> u64 {
    b.iter().filter(|&(c, _)| is_blocked(c)).map(|(_, n)| n).sum()
}

/// Asserts one unit's edge contribution equals its blocked cycles —
/// "every blocked cycle has exactly one outgoing edge" over a real run.
fn assert_unit_edges(unit: UnitClass, b: &CycleBreakdown, what: &str) {
    let mut g = WaitGraph::new();
    g.add_breakdown(unit, b);
    assert_eq!(g.total(), blocked_cycles(b), "{what}: unit edge sum vs blocked stall cycles");
}

/// Asserts every table of one core complex's attribution totals `roi`.
fn assert_cc_sums(attr: &CcAttribution, roi: u64, what: &str) {
    assert_eq!(attr.hart.total(), roi, "{what}: hart table vs ROI cycles");
    for (i, lane) in attr.lanes.iter().enumerate() {
        assert_eq!(lane.total(), roi, "{what}: lane ft{i} table vs ROI cycles");
    }
    assert_eq!(attr.joiner.total(), roi, "{what}: joiner table vs ROI cycles");
    assert_eq!(attr.spacc.total(), roi, "{what}: spacc table vs ROI cycles");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Joiner-backed SpMSpV: attributed cycles sum exactly to the ROI
    /// cycle count for every unit of the core complex.
    #[test]
    fn spmspv_attribution_sums_to_roi_cycles(
        nrows in 1usize..24,
        ncols in 32usize..512,
        row_nnz in 1usize..24,
        x_nnz in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let row_nnz = row_nnz.min(ncols);
        let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, nrows, ncols, row_nnz);
        let x = gen::sparse_vector::<u16>(&mut rng, ncols, x_nnz.min(ncols));
        let run = run_spmspv(Variant::Issr, &m, &x).expect("spmspv run");
        let roi = run.summary.metrics.roi.cycles;
        prop_assert!(roi > 0, "the kernel must open a ROI");
        assert_cc_sums(&run.summary.attr, roi, "SpMSpV");
    }

    /// SpAcc-backed SpGEMM: same exactness invariant, now with the
    /// accumulator in the unit mix.
    #[test]
    fn spgemm_attribution_sums_to_roi_cycles(
        nrows in 1usize..10,
        inner in 1usize..24,
        ncols in 1usize..48,
        fill_a in 1usize..4,
        fill_b in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, nrows, inner, fill_a.min(inner));
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, inner, ncols, fill_b.min(ncols));
        let run = run_spgemm(Variant::Issr, &a, &b).expect("spgemm run");
        let roi = run.summary.metrics.roi.cycles;
        assert_cc_sums(&run.summary.attr, roi, "SpGEMM");
    }

    /// Wait-graph soundness over joiner-backed SpMSpV runs: every unit
    /// contributes exactly its blocked cycles (one edge per blocked
    /// cycle, none for active/idle/parked), so the whole graph's total
    /// is the attribution's blocked total, and the critical path is an
    /// exact partition bounded by the ROI.
    #[test]
    fn wait_graph_and_critical_path_are_sound(
        nrows in 1usize..24,
        ncols in 32usize..512,
        row_nnz in 1usize..24,
        x_nnz in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let row_nnz = row_nnz.min(ncols);
        let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, nrows, ncols, row_nnz);
        let x = gen::sparse_vector::<u16>(&mut rng, ncols, x_nnz.min(ncols));
        let run = run_spmspv(Variant::Issr, &m, &x).expect("spmspv run");
        let attr = &run.summary.attr;
        // Per-unit edge sums equal the breakdowns' blocked counts.
        assert_unit_edges(UnitClass::Hart, &attr.hart, "hart");
        for (i, lane) in attr.lanes.iter().enumerate() {
            assert_unit_edges(UnitClass::Lane, lane, &format!("ft{i}"));
        }
        assert_unit_edges(UnitClass::Joiner, &attr.joiner, "joiner");
        assert_unit_edges(UnitClass::SpAcc, &attr.spacc, "spacc");
        // Whole-graph total is the blocked total across every unit.
        let blocked: u64 = std::iter::once(&attr.hart)
            .chain(attr.lanes.iter())
            .chain([&attr.joiner, &attr.spacc])
            .map(blocked_cycles)
            .sum();
        prop_assert_eq!(attr.wait_graph().total(), blocked);
        // The critical path partitions exactly and fits inside the ROI.
        let path = attr.critical_path();
        prop_assert_eq!(path.length, attr.roi_cycles());
        prop_assert_eq!(path.compute + path.blocked(), path.length, "exact partition");
        prop_assert!(path.length <= run.summary.cycles, "ROI path fits in the elapsed run");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Multi-cluster system CsrMV: every worker's and the DMCC's tables
    /// sum to their own ROI cycles, and the DMA engine's table sums to
    /// the cluster's elapsed cycles.
    #[test]
    fn system_attribution_sums_per_cluster(
        nrows in 32usize..160,
        ncols in 32usize..160,
        density in 1usize..8,
        n_clusters in prop_oneof![Just(1usize), Just(2)],
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let nnz = (nrows * density).min(nrows * ncols);
        let m = gen::csr_uniform::<u16>(&mut rng, nrows, ncols, nnz);
        let x = gen::dense_vector(&mut rng, ncols);
        let run = run_system_csrmv(Variant::Issr, &m, &x, n_clusters).expect("system run");
        for (ci, c) in run.summary.clusters.iter().enumerate() {
            for (wi, (w, metrics)) in
                c.attr.workers.iter().zip(c.worker_metrics.iter()).enumerate()
            {
                assert_cc_sums(w, metrics.roi.cycles, &format!("c{ci}/hart{wi}"));
            }
            assert_cc_sums(&c.attr.dmcc, c.dmcc_metrics.roi.cycles, &format!("c{ci}/dmcc"));
            prop_assert_eq!(
                c.attr.dma.total(),
                c.cycles,
                "c{}: DMA table must sum to the cluster cycles", ci
            );
        }
    }

    /// Tracing neutrality: the instrumented run finishes in the same
    /// number of cycles and produces bit-identical output, and its
    /// Chrome export carries the expected metadata tracks.
    #[test]
    fn tracing_changes_no_bit_and_no_cycle(
        nrows in 32usize..128,
        ncols in 32usize..128,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let nnz = (nrows * 4).min(nrows * ncols);
        let m = gen::csr_uniform::<u16>(&mut rng, nrows, ncols, nnz);
        let x = gen::dense_vector(&mut rng, ncols);
        let params = SystemParams { n_clusters: 2, ..SystemParams::default() };
        let plain =
            run_system_csrmv(Variant::Issr, &m, &x, params.n_clusters).expect("plain run");
        let (traced, trace) =
            run_system_csrmv_traced(Variant::Issr, &m, &x, params, 4_096).expect("traced run");
        prop_assert_eq!(plain.summary.cycles, traced.summary.cycles, "cycle counts must match");
        let plain_bits: Vec<u64> = plain.y.iter().map(|v| v.to_bits()).collect();
        let traced_bits: Vec<u64> = traced.y.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(plain_bits, traced_bits, "output bits must match");
        // The export names one track per hart (workers + DMCC), per
        // stream lane and per DMA engine of each cluster.
        let events = trace.get("traceEvents").and_then(issr_trace::Json::as_arr)
            .expect("traceEvents array");
        let meta = events.iter()
            .filter(|e| e.get("ph").and_then(issr_trace::Json::as_str) == Some("M"))
            .count();
        let n_workers = params.cluster.n_workers;
        let lanes_per_worker = 2;
        let expect = params.n_clusters
            * (n_workers + n_workers * lanes_per_worker + 1 + 1);
        prop_assert_eq!(meta, expect, "one metadata record per registered track");
    }

    /// Flight-recorder and wait-graph neutrality: arming every recorder
    /// changes neither a cycle count nor an output bit, and the live
    /// wait graph equals the one derived from the attribution tables.
    #[test]
    fn recorders_change_no_bit_and_no_cycle(
        nrows in 32usize..128,
        ncols in 32usize..128,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let nnz = (nrows * 4).min(nrows * ncols);
        let m = gen::csr_uniform::<u16>(&mut rng, nrows, ncols, nnz);
        let x = gen::dense_vector(&mut rng, ncols);
        let params = SystemParams { n_clusters: 2, ..SystemParams::default() };
        let plain =
            run_system_csrmv(Variant::Issr, &m, &x, params.n_clusters).expect("plain run");
        let (recorded, live) =
            run_system_csrmv_recorded(Variant::Issr, &m, &x, params, 1 << 16)
                .expect("recorded run");
        prop_assert_eq!(plain.summary.cycles, recorded.summary.cycles, "cycles must match");
        let plain_bits: Vec<u64> = plain.y.iter().map(|v| v.to_bits()).collect();
        let rec_bits: Vec<u64> = recorded.y.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(plain_bits, rec_bits, "output bits must match");
        // The live recorder and the derived graph agree edge for edge.
        let mut derived = WaitGraph::new();
        for c in &recorded.summary.clusters {
            derived.merge_from(&c.attr.wait_graph());
        }
        prop_assert_eq!(live, derived, "live wait graph must equal the derived one");
        prop_assert!(derived.total() > 0, "a contended system run must block somewhere");
    }
}
