//! Property tests for the host profiler (`issr_trace::host`):
//!
//! * **Guest neutrality** — installing the ambient profiler changes
//!   neither a cycle count nor an output bit of any run shape
//!   (single-CC SpMSpV, single-CC SpGEMM, multi-cluster system CsrMV).
//!   The profiler only reads simulator state the tick already latched;
//!   any divergence is an instrumentation bug.
//! * **Census sanity** — a profiled run reports nonzero simulated
//!   cycles and unit ticks, and every idle count stays within its
//!   class's unit-tick total.

use issr_kernels::spgemm::run_spgemm;
use issr_kernels::spmspv::run_spmspv;
use issr_kernels::system_csrmv::run_system_csrmv;
use issr_kernels::variant::Variant;
use issr_sparse::gen;
use issr_trace::{host, Json};
use proptest::prelude::*;

/// Runs `f` twice — profiler off, then profiler on — and returns both
/// results plus the profiled run's host report.
fn with_and_without<T>(f: impl Fn() -> T) -> (T, T, Json) {
    host::uninstall();
    let plain = f();
    host::install();
    let profiled = f();
    let report = host::report().expect("profiler installed");
    host::uninstall();
    (plain, profiled, report)
}

/// Asserts the report's shape: nonzero cycles, nonzero unit ticks, and
/// idle counts bounded by their class totals.
fn assert_report_sane(report: &Json, what: &str) {
    let cycles = report.get("sim_cycles").and_then(Json::as_int).expect("sim_cycles");
    assert!(cycles > 0, "{what}: profiled run counted no simulated cycles");
    let Some(Json::Obj(classes)) = report.get("classes") else {
        panic!("{what}: host report carries no classes object");
    };
    assert!(!classes.is_empty(), "{what}: host report names no unit classes");
    let mut total_ticks = 0i64;
    for (name, class) in classes {
        let ticks = class.get("unit_ticks").and_then(Json::as_int).expect("unit_ticks");
        let idle = class.get("idle_unit_ticks").and_then(Json::as_int).expect("idle_unit_ticks");
        assert!(ticks > 0, "{what}/{name}: class recorded no unit ticks");
        assert!(
            (0..=ticks).contains(&idle),
            "{what}/{name}: idle ticks {idle} outside 0..={ticks}"
        );
        total_ticks += ticks;
    }
    assert!(total_ticks > 0, "{what}: no unit ticks across any class");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single-CC SpMSpV is bit- and cycle-identical under profiling.
    #[test]
    fn spmspv_is_profile_neutral(
        nrows in 1usize..24,
        ncols in 32usize..256,
        row_nnz in 1usize..16,
        x_nnz in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, nrows, ncols, row_nnz.min(ncols));
        let x = gen::sparse_vector::<u16>(&mut rng, ncols, x_nnz.min(ncols));
        let (plain, profiled, report) =
            with_and_without(|| run_spmspv(Variant::Issr, &m, &x).expect("spmspv run"));
        prop_assert_eq!(plain.summary.cycles, profiled.summary.cycles, "cycle counts must match");
        let plain_bits: Vec<u64> = plain.y.iter().map(|v| v.to_bits()).collect();
        let profiled_bits: Vec<u64> = profiled.y.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(plain_bits, profiled_bits, "output bits must match");
        assert_report_sane(&report, "SpMSpV");
    }

    /// Single-CC SpGEMM (SpAcc path) is bit- and cycle-identical under
    /// profiling.
    #[test]
    fn spgemm_is_profile_neutral(
        nrows in 1usize..10,
        inner in 1usize..24,
        ncols in 1usize..48,
        fill_a in 1usize..4,
        fill_b in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let a = gen::csr_fixed_row_nnz::<u16>(&mut rng, nrows, inner, fill_a.min(inner));
        let b = gen::csr_fixed_row_nnz::<u16>(&mut rng, inner, ncols, fill_b.min(ncols));
        let (plain, profiled, report) =
            with_and_without(|| run_spgemm(Variant::Issr, &a, &b).expect("spgemm run"));
        prop_assert_eq!(plain.summary.cycles, profiled.summary.cycles, "cycle counts must match");
        let plain_bits: Vec<u64> = plain.c.vals().iter().map(|v| v.to_bits()).collect();
        let profiled_bits: Vec<u64> = profiled.c.vals().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(plain_bits, profiled_bits, "output bits must match");
        assert_report_sane(&report, "SpGEMM");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Multi-cluster system CsrMV — the run shape with every unit class
    /// (workers, DMCC, DMA, memory) in play — is bit- and
    /// cycle-identical under profiling.
    #[test]
    fn system_csrmv_is_profile_neutral(
        nrows in 32usize..128,
        ncols in 32usize..128,
        n_clusters in prop_oneof![Just(1usize), Just(2)],
        seed in 0u64..1_000_000,
    ) {
        let mut rng = gen::rng(seed);
        let nnz = (nrows * 4).min(nrows * ncols);
        let m = gen::csr_uniform::<u16>(&mut rng, nrows, ncols, nnz);
        let x = gen::dense_vector(&mut rng, ncols);
        let (plain, profiled, report) = with_and_without(|| {
            run_system_csrmv(Variant::Issr, &m, &x, n_clusters).expect("system run")
        });
        prop_assert_eq!(plain.summary.cycles, profiled.summary.cycles, "cycle counts must match");
        let plain_bits: Vec<u64> = plain.y.iter().map(|v| v.to_bits()).collect();
        let profiled_bits: Vec<u64> = profiled.y.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(plain_bits, profiled_bits, "output bits must match");
        assert_report_sane(&report, "system CsrMV");
        // The cluster harness reports all four unit classes.
        let classes = report.get("classes").expect("classes");
        for class in ["workers", "dmcc", "dma", "mem"] {
            prop_assert!(classes.get(class).is_some(), "missing class {}", class);
        }
    }
}
