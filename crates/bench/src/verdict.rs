//! Bound verdicts for the three run-summary shapes.
//!
//! Thin adapters from the simulator's summaries to
//! [`issr_trace::analyze::classify`]: each one reduces a run to the
//! roofline inputs (words moved through the bounding interconnect,
//! flops against peak FPU throughput, the compute units' merged stall
//! table) so every bench binary can print the one-line verdict and
//! push the JSON section without repeating the bookkeeping.

use issr_cluster::cluster::ClusterSummary;
use issr_snitch::cc::RunSummary;
use issr_system::system::SystemSummary;
use issr_trace::analyze::{classify, RooflineInput, Verdict};

/// Words the wide cluster DMA port moves per cycle against a private
/// main memory (`issr_mem::dma::DMA_WORDS_PER_CYCLE`).
pub const CLUSTER_DMA_WORDS_PER_CYCLE: f64 = 8.0;

/// Classifies a single-CC run. The bounding interconnect is the data
/// memory's port set (one port per stream lane plus the hart's LSU);
/// words are everything the lanes, the joiner and the SpAcc moved plus
/// explicit LSU accesses — joiner-fed lanes and SpAcc drains fetch and
/// write behind the lane counters, so their traffic counts too. FP work
/// likewise includes the SpAcc's merge-adds: on the SpGEMM path the
/// accumulator, not the hart FPU, performs the reductions.
#[must_use]
pub fn cc_verdict(summary: &RunSummary) -> Verdict {
    let roi = summary.metrics.roi;
    let elapsed = if roi.cycles > 0 { roi.cycles } else { summary.cycles };
    let lane_words: u64 =
        summary.lane_stats.iter().map(|l| l.data_reads + l.data_writes + l.idx_words).sum();
    let joiner_words = summary.joiner_stats.idx_words + summary.joiner_stats.val_reads;
    let spacc_words = summary.spacc_stats.idx_words + summary.spacc_stats.out_words;
    classify(&RooflineInput {
        elapsed,
        flops: roi.fmadds + roi.fadds + summary.spacc_stats.merges,
        peak_flops_per_cycle: 1.0,
        words_moved: lane_words + joiner_words + spacc_words + roi.lsu_accesses,
        words_per_cycle: (summary.lane_stats.len() + 1) as f64,
        stalls: summary.attr.hart,
    })
}

/// Classifies a standalone-cluster run. The bounding interconnect is
/// the wide DMA port into main memory; the stall table is the workers'
/// merged hart breakdown.
#[must_use]
pub fn cluster_verdict(summary: &ClusterSummary) -> Verdict {
    let fadds: u64 = summary.worker_metrics.iter().map(|m| m.roi.fadds).sum();
    classify(&RooflineInput {
        elapsed: summary.cycles,
        flops: summary.total_fmadds() + fadds,
        peak_flops_per_cycle: summary.worker_metrics.len().max(1) as f64,
        words_moved: summary.dma_stats.words_in + summary.dma_stats.words_out,
        words_per_cycle: CLUSTER_DMA_WORDS_PER_CYCLE,
        stalls: summary.attr.merged_workers().hart,
    })
}

/// Classifies a multi-cluster system run against the shared memory's
/// aggregate word budget per cycle (`SystemParams::dma_words_per_cycle`).
#[must_use]
pub fn system_verdict(summary: &SystemSummary, words_per_cycle: u32) -> Verdict {
    let flops: u64 = summary
        .clusters
        .iter()
        .flat_map(|c| c.worker_metrics.iter())
        .map(|m| m.roi.fmadds + m.roi.fadds)
        .sum();
    let n_workers: usize = summary.clusters.iter().map(|c| c.worker_metrics.len()).sum();
    let stalls: issr_cluster::cluster::ClusterAttribution =
        issr_trace::merge::merge_all(summary.clusters.iter().map(|c| &c.attr));
    let stalls = stalls.merged_workers().hart;
    classify(&RooflineInput {
        elapsed: summary.cycles,
        flops,
        peak_flops_per_cycle: n_workers.max(1) as f64,
        words_moved: summary.total_dma_words(),
        words_per_cycle: f64::from(words_per_cycle),
        stalls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use issr_kernels::cluster_csrmv::run_cluster_csrmv;
    use issr_kernels::variant::Variant;
    use issr_sparse::gen;
    use issr_trace::Json;

    /// A real cluster run classifies to finite roofline fractions and a
    /// printable verdict line.
    #[test]
    fn cluster_csrmv_classifies_without_nans() {
        let mut rng = gen::rng(0x000F_1700);
        let m = gen::csr_fixed_row_nnz::<u16>(&mut rng, 64, 64, 12);
        let x = gen::dense_vector(&mut rng, 64);
        let run = run_cluster_csrmv(Variant::Issr, &m, &x).expect("run");
        let v = cluster_verdict(&run.summary);
        assert!(v.bw_fraction.is_finite() && v.bw_fraction >= 0.0);
        assert!(v.fp_fraction.is_finite() && v.fp_fraction >= 0.0);
        let line = v.line("cluster_csrmv");
        assert!(line.contains("-bound"), "{line}");
        assert!(v.to_json().get("bound").and_then(Json::as_str).is_some());
    }
}
