//! Markdown table rendering for the figure binaries.

pub use issr_trace::ratio;

/// Renders a markdown table from a header and rows of cells.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }
}
